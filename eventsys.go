// Package eventsys is a content-based publish/subscribe library with
// multi-stage filtering, reproducing "Event Systems: How to Have Your
// Cake and Eat It Too" (Eugster, Felber, Guerraoui, Handurukande; IEEE
// DEBS 2002).
//
// The library reconciles three properties the paper shows to be in
// tension:
//
//   - Event safety: events are application-defined Go types. Brokers
//     never execute application code or inspect object internals; the
//     subscriber runtime decodes and type-checks delivered objects.
//   - Subscription expressiveness: filters range over any exposed member
//     — equality, ordering, string patterns, existence — plus arbitrary
//     stateful Go predicates evaluated only at the subscriber.
//   - Filtering scalability: a hierarchy of broker stages pre-filters
//     events with automatically weakened (covering) filters, so no node
//     evaluates every subscription against every event.
//
// # Quick start
//
//	sys, _ := eventsys.New(eventsys.Options{})
//	defer sys.Close()
//	sys.Advertise("Stock", "symbol", "price")
//
//	type Stock struct{ Symbol string; Price float64 }
//	sub, _ := eventsys.SubscribeObject(sys, "me",
//	    `class = "Stock" && symbol = "ACME" && price < 10`,
//	    func(s Stock) { fmt.Println("buy!", s) })
//	defer sub.Unsubscribe()
//
//	eventsys.PublishObject(sys, "Stock", Stock{Symbol: "ACME", Price: 9.5})
package eventsys

import (
	"fmt"
	"sync"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
	"eventsys/internal/object"
	"eventsys/internal/obs"
	"eventsys/internal/overlay"
	"eventsys/internal/store"
	"eventsys/internal/typing"
)

// Event is the property-set representation of a published event: a class
// name, attributes, and an opaque payload for object events.
type Event = event.Event

// Value is a typed attribute value.
type Value = event.Value

// NodeStats is a per-node metrics snapshot (LC, RLC and MR derive from
// it; see the paper's Section 5.1).
type NodeStats = metrics.NodeStats

// Re-exported value constructors for building untyped events.
var (
	String = event.String
	Int    = event.Int
	Float  = event.Float
	Bool   = event.Bool
)

// NewEvent starts building an untyped event of the given class.
func NewEvent(class string) *event.Builder { return event.NewBuilder(class) }

// Options configure a System.
type Options struct {
	// Fanouts lists broker counts per stage, top down. Default {1, 4, 16}
	// (three broker stages plus the subscriber stage). The paper's
	// evaluation topology is {1, 10, 100}.
	Fanouts []int
	// TTL is the subscription lease period (Section 4.3); leases lapse
	// after 3×TTL without renewal. 0 means subscriptions never expire.
	TTL time.Duration
	// AutoMaintain renews and sweeps leases in the background (TTL > 0).
	AutoMaintain bool
	// Engine selects the matching engine at brokers: EngineNaive (the
	// paper's Figure 6 table, the default), EngineCounting (inverted
	// constraint indexes), EngineIndexed (per-operator predicate indexes
	// — sorted threshold cores, per-length prefix/suffix postings, paired
	// access∧threshold groups — sub-microsecond matching at million-scale
	// subscription populations), or EngineSharded (shards matched in
	// parallel — combine with Shards; Indexed single-threaded is usually
	// faster than sharded counting on any core count).
	Engine EngineKind
	// Shards is the shard count of the sharded engine (EngineSharded
	// only); 0 means GOMAXPROCS.
	Shards int
	// MaxBatch caps how many queued events a broker coalesces into one
	// matching pass (default 64; 1 disables coalescing). Larger batches
	// amortize per-event overhead and give the sharded engine more
	// parallel work per pass, at the cost of burstier delivery.
	MaxBatch int
	// Seed makes subscription placement deterministic.
	Seed uint64
	// DataDir, when non-empty, roots a durable event store there:
	// durable-subscription backlogs (Section 2.1's "events stored for
	// temporarily disconnected subscribers") are persisted to a segmented
	// append-only log and survive a full process restart. Reopening a
	// System on the same DataDir and re-subscribing with the same
	// subscriber ID recovers the stored backlog; Resume replays it in
	// order. Empty keeps backlogs in process memory only.
	DataDir string
	// Durability selects the store's fsync policy (DataDir only).
	Durability Durability
	// StoreMaxBytes bounds the durable store's retained log (DataDir
	// only): beyond it the oldest segments are evicted even if
	// unconsumed, keeping an abandoned backlog from pinning the disk.
	// 0 means unbounded.
	StoreMaxBytes int64
	// FlowPolicy selects the slow-consumer policy for event traffic at
	// every bounded queue on the delivery path (broker mailboxes and
	// subscriber delivery queues). FlowBlock, the default, is lossless
	// end-to-end backpressure: a slow subscriber stalls its broker, and
	// a saturated hierarchy stalls Publish itself. FlowDropNewest and
	// FlowDropOldest shed events at the saturated queue (counted in
	// NodeStats.Dropped). FlowSpillToStore diverts delivery-queue
	// overflow to the subscriber's backlog — the durable store for
	// durable subscriptions with a DataDir, the bounded in-memory
	// backlog otherwise — and replays it in order once the subscriber
	// catches up. Subscription, lease and barrier traffic is never
	// dropped by any policy.
	FlowPolicy FlowPolicy
	// FlowWindow bounds every queue on the delivery path when > 0 (one
	// knob replacing the per-queue defaults of 256 for mailboxes and 64
	// for delivery queues).
	FlowWindow int
	// ObsAddr, when non-empty, starts an observability HTTP listener
	// ("127.0.0.1:0" for ephemeral — read it back with System.ObsAddr)
	// serving /metrics in Prometheus text format, /healthz, /readyz,
	// /debug/status (JSON introspection) and /debug/pprof. Empty runs
	// without a listener.
	ObsAddr string
	// Trace enables hop-level latency tracing: each Publish stamps the
	// event and the match/forward/deliver stages record
	// elapsed-since-publish histograms, exposed as the
	// eventsys_hop_latency_seconds family on /metrics. Off by default —
	// the disabled path is a single atomic load per event.
	Trace bool
}

// EngineKind selects a matching-engine implementation at brokers.
type EngineKind int

const (
	// EngineNaive is the Figure 6 table: every filter evaluated against
	// every event. The default.
	EngineNaive EngineKind = iota
	// EngineCounting is the counting index: matching cost scales with
	// satisfied constraints instead of stored filters.
	EngineCounting
	// EngineSharded partitions subscriptions across shards (see
	// Options.Shards) and matches them in parallel, merging results
	// deterministically — per-subscriber delivery order is identical for
	// any shard count.
	EngineSharded
	// EngineIndexed is the predicate-indexed counting engine: every
	// operator class gets a dedicated index (hash postings for equality,
	// grouped sorted threshold cores with churn-absorbing delta buffers
	// for ordering, per-length postings for prefix/suffix, presence
	// lists), and two-constraint access∧threshold filters collapse into
	// paired groups consulted only on an access hit. Match cost tracks
	// satisfied constraints, staying sub-microsecond at a million
	// subscriptions.
	EngineIndexed
)

// String returns the flag-friendly engine name ("naive", "counting",
// "sharded", "indexed").
func (k EngineKind) String() string { return index.Kind(k).String() }

// FlowPolicy selects what a saturated queue does with new events — the
// system-wide slow-consumer policy (see Options.FlowPolicy).
type FlowPolicy int

const (
	// FlowBlock makes producers wait for space: lossless end-to-end
	// backpressure, the default.
	FlowBlock FlowPolicy = FlowPolicy(flow.Block)
	// FlowDropNewest discards the incoming event at a full queue.
	FlowDropNewest FlowPolicy = FlowPolicy(flow.DropNewest)
	// FlowDropOldest evicts the oldest queued event to admit the new
	// one, converging on the freshest window of traffic.
	FlowDropOldest FlowPolicy = FlowPolicy(flow.DropOldest)
	// FlowSpillToStore diverts overflow to backlog storage for in-order
	// replay (degrading to a counted drop where no backlog exists).
	FlowSpillToStore FlowPolicy = FlowPolicy(flow.SpillToStore)
)

// String returns the policy's flag spelling (block, drop-newest,
// drop-oldest, spill).
func (p FlowPolicy) String() string { return flow.Policy(p).String() }

// ParseFlowPolicy parses a policy name as spelled by String — the
// -flow-policy flag surface of cmd/broker and cmd/eventsim.
func ParseFlowPolicy(s string) (FlowPolicy, error) {
	p, err := flow.ParsePolicy(s)
	return FlowPolicy(p), err
}

// QueueStats is a point-in-time snapshot of one bounded queue's flow
// gauges: depth, window, high-water mark, and the enqueue/drop/spill/
// stall counts (see System.FlowStats and Broker.FlowStats).
type QueueStats = flow.Snapshot

// Durability is the fsync policy of the durable event store.
type Durability int

const (
	// DurabilityBatched groups fsyncs (every 64 appends or 100ms,
	// whichever comes first): near-async throughput, with a bounded
	// window in which a crash can lose the most recent stored events.
	// The default.
	DurabilityBatched Durability = iota
	// DurabilityAlways fsyncs every append: a stored event is on stable
	// storage before the runtime moves on. Strongest, slowest.
	DurabilityAlways
	// DurabilityOS never fsyncs explicitly; the operating system's page
	// cache decides when bytes reach disk. A process crash loses
	// nothing, a power failure may lose the tail — never the intact
	// prefix.
	DurabilityOS
)

// StoreStats is a snapshot of the durable event store's counters.
type StoreStats = store.Stats

// System is an in-process multi-stage event system: a broker hierarchy
// run on goroutines connected by channels. Create with New, stop with
// Close.
type System struct {
	ov  *overlay.System
	reg *typing.Registry
	st  *store.Store

	obsReg *obs.Registry
	obsSrv *obs.Server // nil without Options.ObsAddr
	tracer *obs.Tracer

	mu     sync.Mutex
	orders map[string][]string // class -> advertised attribute order
	stages int
}

// New starts a System.
func New(opts Options) (*System, error) {
	if opts.Fanouts == nil {
		opts.Fanouts = []int{1, 4, 16}
	}
	var st *store.Store
	if opts.DataDir != "" {
		sopts := store.Options{MaxBytes: opts.StoreMaxBytes}
		switch opts.Durability {
		case DurabilityAlways:
			sopts.SyncEvery = 1
		case DurabilityOS:
			sopts.SyncEvery = -1
		}
		var err error
		st, err = store.Open(opts.DataDir, sopts)
		if err != nil {
			return nil, err
		}
	}
	reg := typing.NewRegistry()
	tracer := obs.NewTracer()
	tracer.Enable(opts.Trace)
	ov, err := overlay.New(overlay.Config{
		Fanouts:      opts.Fanouts,
		TTL:          opts.TTL,
		AutoMaintain: opts.AutoMaintain,
		Registry:     reg,
		Engine:       index.Kind(opts.Engine),
		Shards:       opts.Shards,
		MaxBatch:     opts.MaxBatch,
		FlowPolicy:   flow.Policy(opts.FlowPolicy),
		FlowWindow:   opts.FlowWindow,
		Store:        st,
		Seed:         opts.Seed,
		Tracer:       tracer,
	})
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	s := &System{
		ov:     ov,
		reg:    reg,
		st:     st,
		obsReg: obs.NewRegistry(),
		tracer: tracer,
		orders: make(map[string][]string),
		stages: len(opts.Fanouts) + 1,
	}
	s.obsReg.Register(func(w *obs.MetricWriter) {
		obs.CollectNodeStats(w, s.ov.Stats()...)
		obs.CollectFlow(w, "system", s.ov.FlowStats())
		if s.st != nil {
			obs.CollectStore(w, "system", s.st.Stats())
		}
		s.tracer.Collect(w, "node", "system")
	})
	s.obsReg.RegisterStatus("system", func() any {
		status := map[string]any{
			"stages":  s.stages,
			"stats":   s.ov.Stats(),
			"flow":    s.ov.FlowStats(),
			"tracing": s.tracer.Enabled(),
		}
		if s.st != nil {
			status["store"] = s.st.Stats()
		}
		return status
	})
	if opts.ObsAddr != "" {
		srv, err := obs.Serve(opts.ObsAddr, s.obsReg)
		if err != nil {
			s.ov.Close()
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		s.obsSrv = srv
	}
	return s, nil
}

// ObsAddr returns the bound address of the observability listener, or
// "" when the System runs without one (Options.ObsAddr empty).
func (s *System) ObsAddr() string {
	if s.obsSrv == nil {
		return ""
	}
	return s.obsSrv.Addr()
}

// ObsRegistry exposes the System's observability registry so embedding
// applications can contribute their own metric and status sources, or
// serve it from an existing HTTP mux instead of Options.ObsAddr.
func (s *System) ObsRegistry() *obs.Registry { return s.obsReg }

// Close shuts the system down and waits for all of its goroutines. With a
// DataDir, the durable store is flushed (outstanding appends and cursors)
// and closed last, so a clean Close loses nothing.
func (s *System) Close() {
	// Flip health first: scrapers and load balancers see the drain
	// before the listener disappears.
	s.obsReg.SetHealthy(false)
	s.ov.Close()
	if s.st != nil {
		s.st.Close()
	}
	if s.obsSrv != nil {
		_ = s.obsSrv.Close()
	}
}

// RegisterType places an event class in the type hierarchy. Subscribing
// to a class then also matches events of its (transitive) subtypes —
// type-based publish/subscribe. An empty parent attaches the class below
// the implicit root.
func (s *System) RegisterType(name, parent string) error {
	return s.reg.Register(name, parent)
}

// Advertise announces an event class with its attributes ordered from
// most general to least general (the order drives automated filter
// weakening per stage — Section 4.1's attribute-stage association G_c,
// in its canonical drop-one-attribute-per-stage form).
func (s *System) Advertise(class string, attrs ...string) error {
	ad, err := typing.NewAdvertisement(class, s.stages, attrs...)
	if err != nil {
		return err
	}
	return s.AdvertiseCustom(ad)
}

// AdvertiseCustom announces a class with an explicit attribute-stage
// association (set Advertisement.StageAttrs before calling).
func (s *System) AdvertiseCustom(ad *typing.Advertisement) error {
	if err := s.ov.Advertise(ad); err != nil {
		return err
	}
	s.mu.Lock()
	s.orders[ad.Class] = append([]string(nil), ad.Attrs...)
	s.mu.Unlock()
	return nil
}

// attrOrder returns the advertised attribute order for a class.
func (s *System) attrOrder(class string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.orders[class]
}

// Publish injects an untyped event at the root of the hierarchy.
func (s *System) Publish(e *Event) error { return s.ov.Publish(e) }

// Subscription is a live subscription handle.
type Subscription struct {
	h *overlay.Handle
}

// Subscribe registers an untyped subscription. The subscription text is
// a disjunction of conjunctive filters, e.g.
//
//	class = "Stock" && symbol = "ACME" && price < 10 || class = "Bond"
//
// The handler runs on a dedicated goroutine and receives each matching
// event exactly once.
func (s *System) Subscribe(id, subscription string, handler func(*Event)) (*Subscription, error) {
	sub, err := filter.Parse(subscription)
	if err != nil {
		return nil, err
	}
	h, err := s.ov.Subscribe(id, sub, overlay.Handler(handler))
	if err != nil {
		return nil, err
	}
	return &Subscription{h: h}, nil
}

// SubscribeDurable is Subscribe with durable semantics (Section 2.1 of
// the paper: brokers store events for temporarily disconnected
// subscribers). Detach pauses delivery while the hierarchy keeps routing
// and buffering; Resume drains the backlog in order and goes live again.
//
// Persistence: with Options.DataDir set, the detached-period backlog
// lives in the durable event store and survives a full process restart —
// close the System, reopen it on the same DataDir, call SubscribeDurable
// with the same id, and the stored backlog is waiting; such a recovered
// subscription starts detached, and Resume replays the backlog in
// publish order before any live event. Limits: events delivered while
// the subscription is attached (live) are not persisted, and under
// DurabilityBatched a crash may lose events stored within the final
// fsync-batching window (at most 64 events or 100ms; use
// DurabilityAlways to close it). Without DataDir the backlog is
// process-memory only and a restart loses it.
func (s *System) SubscribeDurable(id, subscription string, handler func(*Event)) (*Subscription, error) {
	sub, err := filter.Parse(subscription)
	if err != nil {
		return nil, err
	}
	h, err := s.ov.SubscribeDurable(id, sub, overlay.Handler(handler))
	if err != nil {
		return nil, err
	}
	return &Subscription{h: h}, nil
}

// SubscribeWhere is Subscribe with an additional local predicate applied
// at the subscriber runtime after perfect filtering. The predicate may be
// stateful (the paper's BuyFilter example): it runs only at the edge,
// never at brokers.
func (s *System) SubscribeWhere(id, subscription string, pred func(*Event) bool, handler func(*Event)) (*Subscription, error) {
	if pred == nil {
		return nil, fmt.Errorf("eventsys: nil predicate")
	}
	return s.Subscribe(id, subscription, func(e *Event) {
		if pred(e) {
			handler(e)
		}
	})
}

// Unsubscribe cancels the subscription.
func (sub *Subscription) Unsubscribe() error { return sub.h.Unsubscribe() }

// Detach pauses a durable subscription; its events accumulate at the
// subscriber runtime until Resume. With Options.DataDir they accumulate
// in the durable store — fsynced per Options.Durability — and survive a
// process restart; without it they accumulate in a bounded in-memory
// backlog that a restart loses.
func (sub *Subscription) Detach() error { return sub.h.Detach() }

// Resume re-attaches a detached durable subscription: the backlog drains
// in FIFO order into the new handler, then live delivery continues. With
// Options.DataDir the drain replays the persisted backlog — including
// events stored by a previous process incarnation — exactly once per
// clean shutdown (a crash between replay and the next cursor sync
// redelivers from the last synced cursor: at-least-once, never loss).
func (sub *Subscription) Resume(handler func(*Event)) error {
	return sub.h.Resume(overlay.Handler(handler))
}

// Backlog reports events stored for a detached durable subscription
// (persisted events when Options.DataDir is set).
func (sub *Subscription) Backlog() int { return sub.h.Backlog() }

// Broker returns the ID of the broker that accepted the subscription
// (a stage-1 node normally; higher for wildcard subscriptions).
func (sub *Subscription) Broker() string { return sub.h.Node() }

// Delivered reports how many events passed perfect filtering and reached
// the handler.
func (sub *Subscription) Delivered() uint64 { return sub.h.Delivered() }

// Received reports how many events reached the subscriber runtime before
// perfect filtering (Received - Delivered is the residual imprecision of
// pre-filtering; the paper's MR at the subscriber is Delivered/Received).
func (sub *Subscription) Received() uint64 { return sub.h.Received() }

// PublishObject publishes an application object as an event of the given
// class. Attributes are extracted by reflection (exported fields and
// Get*-prefixed accessors, Section 3.4) into routing meta-data; the
// object itself travels as an opaque payload that only subscriber
// runtimes decode — brokers never see inside it.
func PublishObject[T any](s *System, class string, obj T) error {
	e, err := object.ToEvent(class, obj, s.attrOrder(class))
	if err != nil {
		return err
	}
	return s.Publish(e)
}

// SubscribeObject registers a type-safe subscription: the handler
// receives decoded T values. Events whose payload does not decode as T
// are dropped (a subscriber asking for a type never sees another).
func SubscribeObject[T any](s *System, id, subscription string, handler func(T)) (*Subscription, error) {
	return SubscribeObjectWhere(s, id, subscription, nil, handler)
}

// SubscribeObjectWhere is SubscribeObject with a typed local predicate
// evaluated at the subscriber runtime — arbitrary, possibly stateful Go
// code the brokers never run (the paper's end-to-end event safety).
func SubscribeObjectWhere[T any](s *System, id, subscription string, pred func(T) bool, handler func(T)) (*Subscription, error) {
	if handler == nil {
		return nil, fmt.Errorf("eventsys: nil handler")
	}
	return s.Subscribe(id, subscription, func(e *Event) {
		obj, err := object.Decode[T](e.Payload)
		if err != nil {
			return
		}
		if pred != nil && !pred(obj) {
			return
		}
		handler(obj)
	})
}

// Stats snapshots per-node metrics for every broker and subscriber:
// stored filters, events received/matched/forwarded/delivered/dropped,
// flow-control activity (stalls, spills, credit) and durable-store
// traffic. The paper's LC, RLC and MR metrics derive from these via the
// methods on NodeStats.
func (s *System) Stats() []NodeStats { return s.ov.Stats() }

// FlowStats snapshots every bounded queue on the delivery path — one
// entry per broker mailbox and per subscriber delivery queue — exposing
// depth, high-water mark, and the per-queue drop/spill/stall counts
// that show which layer absorbed an overload.
func (s *System) FlowStats() []QueueStats { return s.ov.FlowStats() }

// StoreStats snapshots the durable event store's counters (segments,
// bytes, appends, replays, evictions, pending backlog). ok is false when
// the System runs without a DataDir.
func (s *System) StoreStats() (st StoreStats, ok bool) {
	if s.st == nil {
		return StoreStats{}, false
	}
	return s.st.Stats(), true
}

// Maintain runs one synchronous lease renewal and sweep round at the
// given time (AutoMaintain does this continuously).
func (s *System) Maintain(now time.Time) { s.ov.Maintain(now) }

// Flush blocks until every previously published event has been fully
// processed and delivered. Useful in tests and batch pipelines.
func (s *System) Flush() { s.ov.Flush() }
