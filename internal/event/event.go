package event

import (
	"fmt"
	"sort"
	"strings"
)

// TypeAttr is the reserved attribute carrying the event's type (class)
// name. It is always the most general attribute: filtering on it alone
// degenerates to topic-based addressing (Section 3.4, filter g3).
const TypeAttr = "class"

// Attribute is a single name-value pair of an event.
type Attribute struct {
	Name  string
	Value Value
}

// Event is the low-level property-set representation of an event: an event
// type (class) name, an ordered attribute list, and an opaque payload
// carrying the original encapsulated object, if any.
//
// Attribute order is meaningful: publishers advertise attributes ordered
// from most general to least general (Section 4.1), and weakening keeps
// prefixes of that order. Events preserve the advertised order.
type Event struct {
	// Type is the event class name, also exposed as the TypeAttr attribute.
	Type string
	// Attrs are the exposed attributes, excluding TypeAttr.
	Attrs []Attribute
	// Payload is the opaque serialized application object. Brokers never
	// inspect it; only the subscriber runtime deserializes it.
	Payload []byte
	// ID is a publisher-assigned sequence identifier, used by the
	// evaluation harness to track duplicate-free delivery.
	ID uint64
}

// New constructs an event of the given type with a copy of the given
// attributes.
func New(eventType string, attrs ...Attribute) *Event {
	e := &Event{Type: eventType, Attrs: make([]Attribute, len(attrs))}
	copy(e.Attrs, attrs)
	return e
}

// Lookup returns the value of the named attribute. The reserved TypeAttr
// name resolves to the event type as a string value.
func (e *Event) Lookup(name string) (Value, bool) {
	if name == TypeAttr {
		return String(e.Type), true
	}
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return Value{}, false
}

// Has reports whether the event carries the named attribute.
func (e *Event) Has(name string) bool {
	_, ok := e.Lookup(name)
	return ok
}

// Set replaces the named attribute value, appending it if absent. Setting
// TypeAttr updates the event type.
func (e *Event) Set(name string, v Value) {
	if name == TypeAttr {
		e.Type = v.Str()
		return
	}
	for i, a := range e.Attrs {
		if a.Name == name {
			e.Attrs[i].Value = v
			return
		}
	}
	e.Attrs = append(e.Attrs, Attribute{Name: name, Value: v})
}

// Project returns a new event keeping only the attributes whose names are
// in keep (the event type and payload reference are always preserved).
// This is the event transformation of Section 3.3: the projected event
// covers the original for every filter expressed over the kept attributes.
func (e *Event) Project(keep func(name string) bool) *Event {
	p := &Event{Type: e.Type, Payload: e.Payload, ID: e.ID}
	for _, a := range e.Attrs {
		if keep(a.Name) {
			p.Attrs = append(p.Attrs, a)
		}
	}
	return p
}

// Clone returns a deep copy of the event (the payload bytes are shared, as
// they are immutable by convention).
func (e *Event) Clone() *Event {
	c := *e
	c.Attrs = make([]Attribute, len(e.Attrs))
	copy(c.Attrs, e.Attrs)
	return &c
}

// Names returns the attribute names in event order.
func (e *Event) Names() []string {
	names := make([]string, len(e.Attrs))
	for i, a := range e.Attrs {
		names[i] = a.Name
	}
	return names
}

// String renders the event in the paper's tuple notation:
// (class,"Stock") (symbol,"Foo") (price,10).
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s,%q)", TypeAttr, e.Type)
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " (%s,%s)", a.Name, a.Value)
	}
	return b.String()
}

// Equal reports structural equality of two events, ignoring payload and ID
// and treating attribute order as irrelevant.
func (e *Event) Equal(o *Event) bool {
	if e.Type != o.Type || len(e.Attrs) != len(o.Attrs) {
		return false
	}
	ea, oa := sortedAttrs(e.Attrs), sortedAttrs(o.Attrs)
	for i := range ea {
		if ea[i].Name != oa[i].Name || !ea[i].Value.Equal(oa[i].Value) {
			return false
		}
	}
	return true
}

func sortedAttrs(attrs []Attribute) []Attribute {
	s := make([]Attribute, len(attrs))
	copy(s, attrs)
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}
