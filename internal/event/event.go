package event

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// TypeAttr is the reserved attribute carrying the event's type (class)
// name. It is always the most general attribute: filtering on it alone
// degenerates to topic-based addressing (Section 3.4, filter g3).
const TypeAttr = "class"

// Attribute is a single name-value pair of an event.
type Attribute struct {
	Name  string
	Value Value
}

// View is the read interface filters and matching engines evaluate
// against: the decoded *Event and the zero-copy *Raw wire view both
// implement it, so the whole matching stack runs without forcing a
// materialization.
type View interface {
	// Class returns the event class name.
	Class() string
	// Lookup returns the named attribute's value; TypeAttr resolves to
	// the class as a string value.
	Lookup(name string) (Value, bool)
	// NumAttrs reports the number of exposed attributes.
	NumAttrs() int
	// AttrAt returns attribute i (0 ≤ i < NumAttrs) — the closure-free
	// iteration hot matching loops prefer.
	AttrAt(i int) (string, Value)
	// Range iterates the attributes in event order; fn returning false
	// stops the iteration.
	Range(fn func(name string, v Value) bool)
}

// Event is the low-level property-set representation of an event: an event
// type (class) name, an ordered attribute list, and an opaque payload
// carrying the original encapsulated object, if any.
//
// Attribute order is meaningful: publishers advertise attributes ordered
// from most general to least general (Section 4.1), and weakening keeps
// prefixes of that order. Events preserve the advertised order.
type Event struct {
	// Type is the event class name, also exposed as the TypeAttr attribute.
	Type string
	// Attrs are the exposed attributes, excluding TypeAttr.
	Attrs []Attribute
	// Payload is the opaque serialized application object. Brokers never
	// inspect it; only the subscriber runtime deserializes it.
	Payload []byte
	// ID is a publisher-assigned sequence identifier, used by the
	// evaluation harness to track duplicate-free delivery.
	ID uint64

	// idx is the lazily-built attribute index for wide events, published
	// atomically so concurrent Lookup calls (events are shared across
	// subscribers and matching shards) stay race-free. Set invalidates
	// it; Clone and Project drop it.
	idx atomic.Pointer[map[string]int]
	// raw is the at-most-once encoded form (see Raw): the spill and wire
	// paths of one process share a single encoding of the event.
	raw atomic.Pointer[Raw]

	// stamp is the hop-tracing arrival timestamp (obs.Nanotime units),
	// zero when tracing is off. Set before the event is shared.
	stamp int64
}

// SetStamp records the hop-tracing arrival timestamp. Call it only
// before the event is shared across goroutines.
func (e *Event) SetStamp(ns int64) { e.stamp = ns }

// Stamp returns the hop-tracing arrival timestamp, or zero when the
// event was not stamped (tracing disabled).
func (e *Event) Stamp() int64 { return e.stamp }

// Class returns the event class name (View).
func (e *Event) Class() string { return e.Type }

// NumAttrs reports the number of exposed attributes (View).
func (e *Event) NumAttrs() int { return len(e.Attrs) }

// AttrAt returns attribute i (View).
func (e *Event) AttrAt(i int) (string, Value) {
	return e.Attrs[i].Name, e.Attrs[i].Value
}

// Range iterates the attributes in event order (View); fn returning
// false stops the iteration.
func (e *Event) Range(fn func(name string, v Value) bool) {
	for _, a := range e.Attrs {
		if !fn(a.Name, a.Value) {
			return
		}
	}
}

// Raw returns the event's canonical encoded form, encoding at most once:
// every later call — from any goroutine — shares the same Raw, whose
// decoded cache points straight back at e (a local round trip never
// decodes). Mutating the event through Set invalidates the cache;
// mutating fields directly after Raw has been called is a contract
// violation (the encoding would go stale).
func (e *Event) Raw() *Raw {
	if r := e.raw.Load(); r != nil {
		return r
	}
	r := EncodeRaw(e)
	if !e.raw.CompareAndSwap(nil, r) {
		return e.raw.Load()
	}
	return r
}

// invalidate drops the lazy caches after a mutation.
func (e *Event) invalidate() {
	e.idx.Store(nil)
	e.raw.Store(nil)
}

// New constructs an event of the given type with a copy of the given
// attributes.
func New(eventType string, attrs ...Attribute) *Event {
	e := &Event{Type: eventType, Attrs: make([]Attribute, len(attrs))}
	copy(e.Attrs, attrs)
	return e
}

// lookupIndexMin is the attribute count past which Lookup builds (once)
// a name→position index instead of scanning linearly; on wide events the
// index is reused across every filter evaluation of the event.
const lookupIndexMin = 8

// Lookup returns the value of the named attribute. The reserved TypeAttr
// name resolves to the event type as a string value. Wide events index
// their attributes lazily, once, and the index is published atomically —
// an event shared by many subscribers or matching shards is looked up
// concurrently without races.
func (e *Event) Lookup(name string) (Value, bool) {
	if name == TypeAttr {
		return String(e.Type), true
	}
	if len(e.Attrs) >= lookupIndexMin {
		idx := e.idx.Load()
		if idx == nil {
			m := make(map[string]int, len(e.Attrs))
			// Walk backwards so the first occurrence of a duplicated name
			// wins, matching the linear scan.
			for i := len(e.Attrs) - 1; i >= 0; i-- {
				m[e.Attrs[i].Name] = i
			}
			e.idx.CompareAndSwap(nil, &m)
			idx = &m
		}
		if i, ok := (*idx)[name]; ok {
			return e.Attrs[i].Value, true
		}
		return Value{}, false
	}
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return Value{}, false
}

// Has reports whether the event carries the named attribute.
func (e *Event) Has(name string) bool {
	_, ok := e.Lookup(name)
	return ok
}

// Set replaces the named attribute value, appending it if absent. Setting
// TypeAttr updates the event type. Set drops the lazy lookup index and
// cached encoding; events already handed to Publish are immutable by
// convention and must not be Set concurrently with matching.
func (e *Event) Set(name string, v Value) {
	defer e.invalidate()
	if name == TypeAttr {
		e.Type = v.Str()
		return
	}
	for i, a := range e.Attrs {
		if a.Name == name {
			e.Attrs[i].Value = v
			return
		}
	}
	e.Attrs = append(e.Attrs, Attribute{Name: name, Value: v})
}

// Project returns a new event keeping only the attributes whose names are
// in keep (the event type and payload reference are always preserved).
// This is the event transformation of Section 3.3: the projected event
// covers the original for every filter expressed over the kept attributes.
func (e *Event) Project(keep func(name string) bool) *Event {
	p := &Event{Type: e.Type, Payload: e.Payload, ID: e.ID}
	for _, a := range e.Attrs {
		if keep(a.Name) {
			p.Attrs = append(p.Attrs, a)
		}
	}
	return p
}

// Clone returns a deep copy of the event (the payload bytes are shared,
// as they are immutable by convention; the lazy caches are not carried
// over — the clone exists to be mutated).
func (e *Event) Clone() *Event {
	c := &Event{Type: e.Type, Payload: e.Payload, ID: e.ID}
	c.Attrs = make([]Attribute, len(e.Attrs))
	copy(c.Attrs, e.Attrs)
	return c
}

// Names returns the attribute names in event order.
func (e *Event) Names() []string {
	names := make([]string, len(e.Attrs))
	for i, a := range e.Attrs {
		names[i] = a.Name
	}
	return names
}

// String renders the event in the paper's tuple notation:
// (class,"Stock") (symbol,"Foo") (price,10).
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s,%q)", TypeAttr, e.Type)
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " (%s,%s)", a.Name, a.Value)
	}
	return b.String()
}

// Equal reports structural equality of two events, ignoring payload and ID
// and treating attribute order as irrelevant.
func (e *Event) Equal(o *Event) bool {
	if e.Type != o.Type || len(e.Attrs) != len(o.Attrs) {
		return false
	}
	ea, oa := sortedAttrs(e.Attrs), sortedAttrs(o.Attrs)
	for i := range ea {
		if ea[i].Name != oa[i].Name || !ea[i].Value.Equal(oa[i].Value) {
			return false
		}
	}
	return true
}

func sortedAttrs(attrs []Attribute) []Attribute {
	s := make([]Attribute, len(attrs))
	copy(s, attrs)
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}
