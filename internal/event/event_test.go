package event

import (
	"testing"
)

func stockEvent() *Event {
	return NewBuilder("Stock").Str("symbol", "Foo").Float("price", 10.0).Int("volume", 32300).Build()
}

func TestLookup(t *testing.T) {
	e := stockEvent()
	tests := []struct {
		name  string
		want  Value
		found bool
	}{
		{"symbol", String("Foo"), true},
		{"price", Float(10.0), true},
		{"volume", Int(32300), true},
		{TypeAttr, String("Stock"), true},
		{"missing", Value{}, false},
	}
	for _, tt := range tests {
		got, ok := e.Lookup(tt.name)
		if ok != tt.found {
			t.Errorf("Lookup(%q) found=%v, want %v", tt.name, ok, tt.found)
			continue
		}
		if ok && !got.Equal(tt.want) {
			t.Errorf("Lookup(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestSet(t *testing.T) {
	e := stockEvent()
	e.Set("price", Float(12.5))
	if v, _ := e.Lookup("price"); !v.Equal(Float(12.5)) {
		t.Errorf("Set existing: got %v", v)
	}
	e.Set("exchange", String("NYSE"))
	if v, _ := e.Lookup("exchange"); !v.Equal(String("NYSE")) {
		t.Errorf("Set new: got %v", v)
	}
	e.Set(TypeAttr, String("Quote"))
	if e.Type != "Quote" {
		t.Errorf("Set class: got %q", e.Type)
	}
	if len(e.Attrs) != 4 {
		t.Errorf("attribute count = %d, want 4", len(e.Attrs))
	}
}

func TestProject(t *testing.T) {
	e := stockEvent()
	e.Payload = []byte("opaque")
	e.ID = 7
	keep := map[string]bool{"symbol": true}
	p := e.Project(func(n string) bool { return keep[n] })
	if p.Type != "Stock" || p.ID != 7 || string(p.Payload) != "opaque" {
		t.Fatalf("projection lost type/id/payload: %+v", p)
	}
	if len(p.Attrs) != 1 || p.Attrs[0].Name != "symbol" {
		t.Fatalf("projection attrs = %v", p.Attrs)
	}
	// Original untouched.
	if len(e.Attrs) != 3 {
		t.Fatalf("original mutated: %v", e.Attrs)
	}
}

func TestCloneIndependence(t *testing.T) {
	e := stockEvent()
	c := e.Clone()
	c.Set("price", Float(99))
	if v, _ := e.Lookup("price"); !v.Equal(Float(10.0)) {
		t.Fatalf("clone mutation leaked into original: %v", v)
	}
	if !e.Equal(stockEvent()) {
		t.Fatal("original changed")
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	a := NewBuilder("T").Str("x", "1").Int("y", 2).Build()
	b := NewBuilder("T").Int("y", 2).Str("x", "1").Build()
	if !a.Equal(b) {
		t.Error("attribute order should not affect equality")
	}
	c := NewBuilder("T").Str("x", "1").Int("y", 3).Build()
	if a.Equal(c) {
		t.Error("different values compared equal")
	}
	d := NewBuilder("U").Str("x", "1").Int("y", 2).Build()
	if a.Equal(d) {
		t.Error("different types compared equal")
	}
}

func TestString(t *testing.T) {
	e := New("Stock", Attribute{"symbol", String("Foo")}, Attribute{"price", Float(10)})
	got := e.String()
	want := `(class,"Stock") (symbol,"Foo") (price,10)`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestNames(t *testing.T) {
	e := stockEvent()
	names := e.Names()
	want := []string{"symbol", "price", "volume"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestBuilderAllKinds(t *testing.T) {
	e := NewBuilder("T").Str("s", "v").Int("i", 1).Float("f", 2.5).Bool("b", true).
		Val("v", Int(9)).Payload([]byte{1}).ID(3).Build()
	if len(e.Attrs) != 5 || e.ID != 3 || len(e.Payload) != 1 {
		t.Fatalf("builder produced %+v", e)
	}
}
