package event

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestProjectPreservesKeptAttributes (testing/quick): projection keeps
// exactly the requested attributes with unchanged values.
func TestProjectPreservesKeptAttributes(t *testing.T) {
	f := func(a, b, c int64, keepA, keepB, keepC bool) bool {
		e := NewBuilder("T").Int("a", a).Int("b", b).Int("c", c).Build()
		keep := map[string]bool{"a": keepA, "b": keepB, "c": keepC}
		p := e.Project(func(n string) bool { return keep[n] })
		for name, kept := range keep {
			v, ok := p.Lookup(name)
			if kept != ok {
				return false
			}
			if kept {
				orig, _ := e.Lookup(name)
				if !v.Equal(orig) {
					return false
				}
			}
		}
		return p.Type == e.Type
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSetLookupRoundTrip (testing/quick): Set followed by Lookup returns
// the stored value, for every supported kind. Integers are exercised
// within the documented exact range (±2⁵³, the float64-backed numeric
// family's precision).
func TestSetLookupRoundTrip(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool) bool {
		e := New("T")
		e.Set("s", String(s))
		i %= 1 << 53
		e.Set("i", Int(i))
		e.Set("b", Bool(b))
		if fl != fl { // skip NaN: Compare is undefined there by design
			return true
		}
		e.Set("f", Float(fl))
		vs, _ := e.Lookup("s")
		vi, _ := e.Lookup("i")
		vf, _ := e.Lookup("f")
		vb, _ := e.Lookup("b")
		return vs.Str() == s && vi.IntVal() == i && vf.Num() == fl && vb.BoolVal() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEqualIsEquivalenceRelation (testing/quick): event equality is
// reflexive and symmetric over randomly built events.
func TestEqualIsEquivalenceRelation(t *testing.T) {
	build := func(seed uint64) *Event {
		rng := rand.New(rand.NewPCG(seed, 1))
		b := NewBuilder([]string{"A", "B"}[rng.IntN(2)])
		for i := 0; i < rng.IntN(4); i++ {
			b.Int(string(rune('a'+rng.IntN(3))), int64(rng.IntN(3)))
		}
		return b.Build()
	}
	f := func(s1, s2 uint64) bool {
		e1, e2 := build(s1), build(s2)
		if !e1.Equal(e1) || !e2.Equal(e2) {
			return false // reflexivity
		}
		return e1.Equal(e2) == e2.Equal(e1) // symmetry
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
