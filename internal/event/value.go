// Package event defines the property-set event model used throughout the
// system: typed attribute values, named attributes, and events.
//
// An Event in this package is the low-level "name-value tuple" view from
// Section 3.1 of the paper. The high-level object view (encapsulated,
// application-defined types) lives in internal/object and is transformed
// into this representation for routing, preserving encapsulation: brokers
// only ever see the attributes a publisher chose to expose as meta-data.
package event

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the attribute value kinds understood by the filtering
// machinery. Kinds start at 1 so the zero Value is distinguishable from a
// deliberate one.
type Kind int

// Supported value kinds.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed attribute value. The zero Value has
// KindInvalid and matches nothing.
//
// Numeric values (KindInt, KindFloat) form one comparable family: an int
// attribute can be compared against a float constraint and vice versa.
// Comparison across any other kind pair is undefined and reported through
// the ok result of Compare.
type Value struct {
	kind Kind
	str  string
	num  float64 // used by KindInt, KindFloat and KindBool (0/1)
}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer value. The numeric family is backed by
// float64 so integer and floating-point attributes compare directly
// (price < 10 matches both Int(9) and Float(9.5)); integers are
// therefore exact within ±2⁵³ and lose low-order bits beyond that, the
// standard IEEE-754 double tradeoff.
func Int(i int64) Value { return Value{kind: KindInt, num: float64(i)} }

// Float constructs a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, num: f} }

// Bool constructs a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.num = 1
	}
	return v
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value carries a usable kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// IsNumeric reports whether the value belongs to the numeric family.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// Num returns the numeric payload as float64. Meaningful for numeric and
// boolean values.
func (v Value) Num() float64 { return v.num }

// IntVal returns the numeric payload truncated to int64.
func (v Value) IntVal() int64 { return int64(v.num) }

// BoolVal returns the boolean payload.
func (v Value) BoolVal() bool { return v.kind == KindBool && v.num != 0 }

// Comparable reports whether two values can be ordered/compared.
func (v Value) Comparable(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		return true
	}
	return v.kind == o.kind && v.kind != KindInvalid
}

// Compare orders v against o. It returns -1, 0 or +1 and ok=true when the
// two values are comparable; ok=false otherwise. Booleans order false<true.
// NaN is incomparable (IEEE semantics): every ordered comparison and
// equality test against it reports ok=false, so no relational constraint
// is ever satisfied by a NaN value.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if !v.Comparable(o) {
		return 0, false
	}
	if v.kind == KindString {
		return strings.Compare(v.str, o.str), true
	}
	if v.kind != KindBool && (math.IsNaN(v.num) || math.IsNaN(o.num)) {
		return 0, false
	}
	switch {
	case v.num < o.num:
		return -1, true
	case v.num > o.num:
		return 1, true
	default:
		return 0, true
	}
}

// Equal reports value equality. Values of incomparable kinds are unequal.
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	return ok && c == 0
}

// String renders the value in the literal syntax accepted by the filter
// parser: quoted strings, bare numbers, true/false.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.str)
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.num != 0)
	default:
		return "<invalid>"
	}
}

// ParseValue parses a literal in the syntax produced by Value.String:
// double-quoted strings, integers, floats, and the booleans true/false.
func ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Value{}, fmt.Errorf("event: empty value literal")
	case s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("event: bad string literal %s: %w", s, err)
		}
		return String(u), nil
	case s == "true":
		return Bool(true), nil
	case s == "false":
		return Bool(false), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return Value{}, fmt.Errorf("event: non-finite literal %q", s)
		}
		return Float(f), nil
	}
	return Value{}, fmt.Errorf("event: cannot parse value literal %q", s)
}
