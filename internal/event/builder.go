package event

// Builder assembles events fluently. The zero Builder is not usable; start
// with NewBuilder, which fixes the event type.
type Builder struct {
	ev *Event
}

// NewBuilder starts building an event of the given type.
func NewBuilder(eventType string) *Builder {
	return &Builder{ev: &Event{Type: eventType}}
}

// Str adds a string attribute.
func (b *Builder) Str(name, v string) *Builder { return b.attr(name, String(v)) }

// Int adds an integer attribute.
func (b *Builder) Int(name string, v int64) *Builder { return b.attr(name, Int(v)) }

// Float adds a floating-point attribute.
func (b *Builder) Float(name string, v float64) *Builder { return b.attr(name, Float(v)) }

// Bool adds a boolean attribute.
func (b *Builder) Bool(name string, v bool) *Builder { return b.attr(name, Bool(v)) }

// Val adds an attribute with an already-constructed value.
func (b *Builder) Val(name string, v Value) *Builder { return b.attr(name, v) }

// Payload attaches the opaque serialized object payload.
func (b *Builder) Payload(p []byte) *Builder {
	b.ev.Payload = p
	return b
}

// ID sets the publisher-assigned sequence identifier.
func (b *Builder) ID(id uint64) *Builder {
	b.ev.ID = id
	return b
}

func (b *Builder) attr(name string, v Value) *Builder {
	b.ev.Attrs = append(b.ev.Attrs, Attribute{Name: name, Value: v})
	return b
}

// Build returns the assembled event. The builder must not be reused after
// Build.
func (b *Builder) Build() *Event { return b.ev }
