package event

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func sampleEvent() *Event {
	return NewBuilder("Stock").
		Str("symbol", "ACME").
		Float("price", 9.75).
		Int("volume", -12).
		Bool("hot", true).
		Payload([]byte{1, 2, 3, 0xff}).
		ID(42).
		Build()
}

func TestEncodeRawAccessors(t *testing.T) {
	e := sampleEvent()
	r := EncodeRaw(e)
	if r.Class() != "Stock" || r.EventID() != 42 || r.NumAttrs() != 4 {
		t.Fatalf("header = %q/%d/%d", r.Class(), r.EventID(), r.NumAttrs())
	}
	if !bytes.Equal(r.Payload(), e.Payload) {
		t.Fatalf("payload = %v", r.Payload())
	}
	for _, a := range e.Attrs {
		v, ok := r.Lookup(a.Name)
		if !ok || !v.Equal(a.Value) || v.Kind() != a.Value.Kind() {
			t.Fatalf("Lookup(%s) = %v/%v, want %v", a.Name, v, ok, a.Value)
		}
	}
	if v, ok := r.Lookup(TypeAttr); !ok || v.Str() != "Stock" {
		t.Fatalf("Lookup(class) = %v/%v", v, ok)
	}
	if _, ok := r.Lookup("absent"); ok {
		t.Fatal("Lookup(absent) found something")
	}
}

func TestParseRawRoundTrip(t *testing.T) {
	e := sampleEvent()
	b := AppendEncoded(nil, e)
	r, err := ParseRaw(b, NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Bytes(), b) {
		t.Fatal("Bytes() differs from input")
	}
	got := r.Event()
	if !got.Equal(e) || got.ID != e.ID || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("materialized %v, want %v", got, e)
	}
	if r.Event() != got {
		t.Fatal("Event() materialized twice")
	}
}

func TestEncodeRawSharesDecodedEvent(t *testing.T) {
	e := sampleEvent()
	r := EncodeRaw(e)
	if r.Event() != e {
		t.Fatal("EncodeRaw should seed the decoded cache with the source event")
	}
	before := DecodeCount()
	_ = r.Event()
	if DecodeCount() != before {
		t.Fatal("local round trip decoded")
	}
}

func TestEventRawMemoized(t *testing.T) {
	e := sampleEvent()
	r1, r2 := e.Raw(), e.Raw()
	if r1 != r2 {
		t.Fatal("Event.Raw() encoded twice")
	}
	e.Set("price", Float(1))
	if e.Raw() == r1 {
		t.Fatal("Set did not invalidate the cached encoding")
	}
}

func TestRawRange(t *testing.T) {
	e := sampleEvent()
	r, err := ParseRaw(AppendEncoded(nil, e), nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	r.Range(func(name string, v Value) bool {
		names = append(names, name)
		return true
	})
	if strings.Join(names, ",") != "symbol,price,volume,hot" {
		t.Fatalf("range order = %v", names)
	}
	count := 0
	r.Range(func(string, Value) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop range visited %d", count)
	}
}

// TestWideEventLookupIndex exercises the lazy attribute index on both
// representations (satellite: O(attrs) Lookup fixed by a once-per-event
// index reused across evaluations).
func TestWideEventLookupIndex(t *testing.T) {
	b := NewBuilder("Wide")
	for i := 0; i < 32; i++ {
		b.Int("attr"+string(rune('a'+i)), int64(i))
	}
	e := b.Build()
	r, err := ParseRaw(AppendEncoded(nil, e), NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		name := "attr" + string(rune('a'+i))
		ev, ok1 := e.Lookup(name)
		rv, ok2 := r.Lookup(name)
		if !ok1 || !ok2 || ev.IntVal() != int64(i) || rv.IntVal() != int64(i) {
			t.Fatalf("%s: event %v/%v raw %v/%v", name, ev, ok1, rv, ok2)
		}
	}
	if _, ok := e.Lookup("nope"); ok {
		t.Fatal("indexed Lookup found a missing attribute")
	}
	// Set must invalidate the index.
	e.Set("attrz", Int(99))
	if v, ok := e.Lookup("attrz"); !ok || v.IntVal() != 99 {
		t.Fatal("Lookup after Set missed the new attribute")
	}
}

func TestParseRawMalformed(t *testing.T) {
	valid := AppendEncoded(nil, sampleEvent())
	for cut := 0; cut < len(valid); cut++ {
		if _, err := ParseRaw(valid[:cut], nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ParseRaw(append(append([]byte(nil), valid...), 0xAA), nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// FuzzRawEvent is the satellite fuzz target: malformed or truncated
// bytes must return errors — never panic — and whatever parses must
// round-trip canonically (materialize → re-encode → parse → equal), with
// the lazy accessors agreeing with the decoded form attribute by
// attribute.
func FuzzRawEvent(f *testing.F) {
	f.Add(AppendEncoded(nil, sampleEvent()))
	f.Add(AppendEncoded(nil, New("X")))
	f.Add(AppendEncoded(nil, NewBuilder("").Str("", "").Build()))
	wide := NewBuilder("W")
	for i := 0; i < 12; i++ {
		wide.Float("f"+string(rune('0'+i)), float64(i)/3)
	}
	f.Add(AppendEncoded(nil, wide.Build()))
	f.Add([]byte{0})
	f.Add([]byte{1, 'T', 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseRaw(data, NewInterner())
		if err != nil {
			return // rejected cleanly; that is the contract
		}
		// Everything the view promises must now be safe to read.
		dec := r.Event()
		if dec.Type != r.Class() || dec.ID != r.EventID() || len(dec.Attrs) != r.NumAttrs() {
			t.Fatalf("view disagrees with decode: %q/%d/%d vs %q/%d/%d",
				r.Class(), r.EventID(), r.NumAttrs(), dec.Type, dec.ID, len(dec.Attrs))
		}
		if !bytes.Equal(r.Payload(), dec.Payload) {
			t.Fatal("payload view disagrees with decode")
		}
		i := 0
		r.Range(func(name string, v Value) bool {
			a := dec.Attrs[i]
			if a.Name != name || !eqValue(a.Value, v) {
				t.Fatalf("attr %d: view (%s,%v) vs decoded (%s,%v)", i, name, v, a.Name, a.Value)
			}
			i++
			return true
		})
		// Canonical round trip: a re-encode of the decoded form must parse
		// and materialize back to a structurally identical event. (The raw
		// input may use non-minimal varints, so byte equality is only
		// guaranteed from the second encode onward.)
		enc := AppendEncoded(nil, dec)
		r2, err := ParseRaw(enc, nil)
		if err != nil {
			t.Fatalf("re-encode failed to parse: %v", err)
		}
		dec2 := r2.Event()
		if !dec2.Equal(dec) || dec2.ID != dec.ID || !bytes.Equal(dec2.Payload, dec.Payload) {
			t.Fatalf("round trip diverged: %v vs %v", dec2, dec)
		}
		if enc2 := AppendEncoded(nil, dec2); !bytes.Equal(enc, enc2) {
			t.Fatalf("second encode not canonical:\n%x\n%x", enc, enc2)
		}
	})
}

// eqValue compares values including kind (Equal alone admits int/float
// cross-kind equality, which would hide a kind corruption).
func eqValue(a, b Value) bool { return a.Kind() == b.Kind() && a.Equal(b) }

// TestRawConcurrentLookup hammers the lazy index and decode caches from
// many goroutines; run under -race this pins the atomic publication.
func TestRawConcurrentLookup(t *testing.T) {
	b := NewBuilder("Wide")
	for i := 0; i < 20; i++ {
		b.Int("a"+string(rune('a'+i)), int64(i))
	}
	e := b.Build()
	r, err := ParseRaw(AppendEncoded(nil, e), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewPCG(uint64(seed), 1))
			for i := 0; i < 2000; i++ {
				name := "a" + string(rune('a'+rng.IntN(20)))
				if v, ok := r.Lookup(name); !ok || v.Kind() != KindInt {
					t.Errorf("raw Lookup(%s) = %v/%v", name, v, ok)
					return
				}
				if v, ok := e.Lookup(name); !ok || v.Kind() != KindInt {
					t.Errorf("event Lookup(%s) = %v/%v", name, v, ok)
					return
				}
				_ = r.Event()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
