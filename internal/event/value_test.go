package event

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"string", String("x"), KindString},
		{"int", Int(42), KindInt},
		{"float", Float(3.5), KindFloat},
		{"bool", Bool(true), KindBool},
		{"zero", Value{}, KindInvalid},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Fatalf("Kind() = %v, want %v", got, tt.kind)
			}
			if tt.kind == KindInvalid && tt.v.IsValid() {
				t.Fatalf("zero value reported valid")
			}
		})
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		cmp  int
		ok   bool
	}{
		{"int lt int", Int(1), Int(2), -1, true},
		{"int eq int", Int(5), Int(5), 0, true},
		{"int gt int", Int(7), Int(2), 1, true},
		{"int vs float", Int(2), Float(2.5), -1, true},
		{"float vs int equal", Float(3), Int(3), 0, true},
		{"string order", String("abc"), String("abd"), -1, true},
		{"string eq", String("x"), String("x"), 0, true},
		{"bool order", Bool(false), Bool(true), -1, true},
		{"string vs int", String("1"), Int(1), 0, false},
		{"bool vs int", Bool(true), Int(1), 0, false},
		{"invalid vs invalid", Value{}, Value{}, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cmp, ok := tt.a.Compare(tt.b)
			if ok != tt.ok || (ok && cmp != tt.cmp) {
				t.Fatalf("Compare(%v,%v) = (%d,%v), want (%d,%v)", tt.a, tt.b, cmp, ok, tt.cmp, tt.ok)
			}
		})
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if String("3").Equal(Int(3)) {
		t.Error("String should not equal Int")
	}
	if (Value{}).Equal(Value{}) {
		t.Error("invalid values must not compare equal")
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	tests := []Value{
		String("hello"), String(`with "quotes"`), String(""),
		Int(0), Int(-12), Int(1 << 40),
		Float(3.25), Float(-0.5),
		Bool(true), Bool(false),
	}
	for _, v := range tests {
		t.Run(v.String(), func(t *testing.T) {
			got, err := ParseValue(v.String())
			if err != nil {
				t.Fatalf("ParseValue(%s): %v", v.String(), err)
			}
			if !got.Equal(v) || got.Kind() != v.Kind() {
				t.Fatalf("round trip %s -> %v (kind %v)", v, got, got.Kind())
			}
		})
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, s := range []string{"", `"unterminated`, "abc", "1.2.3", "NaN", "Inf"} {
		if _, err := ParseValue(s); err == nil {
			t.Errorf("ParseValue(%q) succeeded, want error", s)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Int(a).Compare(Int(b))
		c2, ok2 := Int(b).Compare(Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareStringProperty(t *testing.T) {
	f := func(a, b string) bool {
		c, ok := String(a).Compare(String(b))
		if !ok {
			return false
		}
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
