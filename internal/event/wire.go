package event

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// This file owns the compact binary encoding of values and events — the
// one representation an event has on the wire, in the durable store, and
// inside a Raw view. transport frames and store records embed it
// verbatim, so an event is encoded exactly once at publish and the same
// bytes travel every hop and land on disk unchanged.
//
// Layout of one encoded event:
//
//	str(class) uvarint(id) uvarint(nattrs) { str(name) value }* bytes(payload)
//
// where str and bytes are uvarint-length-prefixed and value is a 1-byte
// kind tag followed by the kind's payload.

// decodeCount counts full materializations of events from wire bytes
// (Raw.Event and Decode). It is a test hook: pipeline tests reset it,
// drive events through publish → forward → spill → replay → deliver, and
// assert the one-decode invariant. Never consulted by production code.
var decodeCount atomic.Uint64

// DecodeCount returns the number of full event materializations since
// process start (test hook for the decode-once invariant).
func DecodeCount() uint64 { return decodeCount.Load() }

// attrCapHint caps attribute-slice preallocation during decode and
// parse: attribute counts come off the wire, and a declared count must
// not reserve memory the bytes cannot back.
const attrCapHint = 1024

// AppendValue appends the wire encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, uint8(v.kind))
	switch v.kind {
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindInt:
		dst = binary.AppendVarint(dst, int64(v.num))
	case KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.num))
	case KindBool:
		if v.num != 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DecodeValue decodes one wire value from the front of b, returning the
// value and the number of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("event: truncated value kind")
	}
	k := Kind(b[0])
	off := 1
	switch k {
	case KindString:
		n, w := binary.Uvarint(b[off:])
		if w <= 0 || uint64(len(b)-off-w) < n {
			return Value{}, 0, fmt.Errorf("event: truncated string value")
		}
		off += w
		return String(string(b[off : off+int(n)])), off + int(n), nil
	case KindInt:
		v, w := binary.Varint(b[off:])
		if w <= 0 {
			return Value{}, 0, fmt.Errorf("event: bad int value")
		}
		return Int(v), off + w, nil
	case KindFloat:
		if len(b)-off < 8 {
			return Value{}, 0, fmt.Errorf("event: truncated float value")
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(b[off:]))), off + 8, nil
	case KindBool:
		if len(b)-off < 1 {
			return Value{}, 0, fmt.Errorf("event: truncated bool value")
		}
		return Bool(b[off] == 1), off + 1, nil
	default:
		return Value{}, 0, fmt.Errorf("event: unknown value kind %d", k)
	}
}

// AppendEncoded appends the wire encoding of e to dst and returns the
// extended slice. This is the single canonical event encoding: transport
// frames and store record bodies are byte-identical.
func AppendEncoded(dst []byte, e *Event) []byte {
	dst = appendString(dst, e.Type)
	dst = binary.AppendUvarint(dst, e.ID)
	dst = binary.AppendUvarint(dst, uint64(len(e.Attrs)))
	for _, a := range e.Attrs {
		dst = appendString(dst, a.Name)
		dst = AppendValue(dst, a.Value)
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.Payload)))
	return append(dst, e.Payload...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Decode materializes one event from b, which must contain exactly one
// encoded event with no trailing bytes.
func Decode(b []byte) (*Event, error) {
	e, n, err := decodeAt(b, 0, nil)
	if err != nil {
		return nil, err
	}
	if n != len(b) {
		return nil, fmt.Errorf("event: %d trailing bytes after event", len(b)-n)
	}
	return e, nil
}

// decodeAt materializes one event starting at off, interning attribute
// names through in (nil decodes without interning). It returns the event
// and the offset just past it.
func decodeAt(b []byte, off int, in *Interner) (*Event, int, error) {
	decodeCount.Add(1)
	class, off, err := readString(b, off, nil)
	if err != nil {
		return nil, 0, err
	}
	id, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return nil, 0, fmt.Errorf("event: bad id varint at offset %d", off)
	}
	off += w
	n, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return nil, 0, fmt.Errorf("event: bad attr count at offset %d", off)
	}
	off += w
	if n > uint64(len(b)-off) {
		return nil, 0, fmt.Errorf("event: attribute count %d exceeds buffer", n)
	}
	e := &Event{Type: class, ID: id}
	if n > 0 {
		capHint := n
		if capHint > attrCapHint {
			capHint = attrCapHint
		}
		e.Attrs = make([]Attribute, 0, capHint)
	}
	for i := uint64(0); i < n; i++ {
		var name string
		name, off, err = readString(b, off, in)
		if err != nil {
			return nil, 0, err
		}
		v, w, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, err
		}
		off += w
		e.Attrs = append(e.Attrs, Attribute{Name: name, Value: v})
	}
	pn, w := binary.Uvarint(b[off:])
	if w <= 0 || pn > uint64(len(b)-off-w) {
		return nil, 0, fmt.Errorf("event: truncated payload at offset %d", off)
	}
	off += w
	if pn > 0 {
		e.Payload = make([]byte, pn)
		copy(e.Payload, b[off:off+int(pn)])
	}
	return e, off + int(pn), nil
}

// readString reads one length-prefixed string at off. With a non-nil
// interner the string is deduplicated against the interner's pool
// (attribute and class names repeat heavily across a connection's
// events; interning makes their decode allocation-free in steady state).
func readString(b []byte, off int, in *Interner) (string, int, error) {
	n, w := binary.Uvarint(b[off:])
	if w <= 0 || n > uint64(len(b)-off-w) {
		return "", 0, fmt.Errorf("event: truncated string at offset %d", off)
	}
	off += w
	raw := b[off : off+int(n)]
	if in != nil {
		return in.Intern(raw), off + int(n), nil
	}
	return string(raw), off + int(n), nil
}
