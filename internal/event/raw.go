package event

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Raw is the canonical encoded representation of an event: the wire
// bytes wrapped in a validated, lazily-evaluated view. Class, ID and the
// attribute cursor are readable without materializing an *Event, so
// brokers match, batch, forward, persist and replay events as the very
// bytes the publisher encoded — one encode per publish, and a full
// decode only where a subscriber handler finally needs the object form.
//
// A Raw is immutable after construction; its byte slice is shared, never
// copied, and must not be mutated by the owner of the backing buffer.
// The lazy caches (attribute index, materialized event) build at most
// once via atomic publication, so concurrent readers — sharded matching,
// multiple local subscribers — are safe without locks.
type Raw struct {
	b     []byte
	class string
	id    uint64
	attrs []rawAttr
	// payOff/payLen bound the payload bytes inside b.
	payOff, payLen int

	// idx is the lazily-built attribute index for wide events (see
	// Lookup); dec is the at-most-once materialized *Event.
	idx atomic.Pointer[map[string]int]
	dec atomic.Pointer[Event]

	// stamp is the hop-tracing arrival timestamp (obs.Nanotime units),
	// zero when tracing is off. It rides the in-process view only — never
	// the wire bytes — and must be set before the Raw is shared.
	stamp int64
}

// rawAttr locates one attribute inside the encoded bytes: its interned
// (or copied) name, and the offset of its value encoding.
type rawAttr struct {
	name string
	off  int32
}

// Interner deduplicates attribute and class names decoded from wire
// bytes. Names repeat heavily across a connection's events (every Stock
// tick carries "symbol" and "price"), so a per-connection interner makes
// name decode allocation-free in steady state. Not safe for concurrent
// use; give each connection (or replay scan) its own.
type Interner struct {
	pool map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{pool: make(map[string]string)} }

// maxInternerEntries bounds an interner's pool: past it, new names are
// returned as plain copies instead of being retained. Legitimate
// workloads publish a bounded set of attribute and class names, so the
// cap never bites them; a hostile stream of unique names costs itself
// allocations instead of growing the broker's memory without bound.
const maxInternerEntries = 4096

// Intern returns the pooled string equal to b, adding it on first sight.
// The map lookup keyed by a converted byte slice does not allocate.
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.pool[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.pool) < maxInternerEntries {
		in.pool[s] = s
	}
	return s
}

// EncodeRaw encodes e once and wraps the bytes in a Raw view. The view's
// cursor metadata is built directly from e — no validation re-walk — and
// the decoded form is pre-seeded with e itself, so a local round trip
// (encode at publish, deliver in-process) never decodes at all.
func EncodeRaw(e *Event) *Raw {
	b := AppendEncoded(nil, e)
	r := &Raw{b: b, class: e.Type, id: e.ID, stamp: e.stamp}
	// Re-derive attribute offsets with a cheap skip-walk (names and value
	// framing only; values are not decoded).
	off := skipString(b, 0)
	_, w := binary.Uvarint(b[off:])
	off += w // id
	n, w := binary.Uvarint(b[off:])
	off += w // attr count
	if n > 0 {
		r.attrs = make([]rawAttr, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		off = skipString(b, off)
		r.attrs = append(r.attrs, rawAttr{name: e.Attrs[i].Name, off: int32(off)})
		off = skipValue(b, off)
	}
	pn, w := binary.Uvarint(b[off:])
	r.payOff, r.payLen = off+w, int(pn)
	r.dec.Store(e)
	return r
}

// skipString advances past one length-prefixed string (caller guarantees
// validity — EncodeRaw walks bytes it just produced).
func skipString(b []byte, off int) int {
	n, w := binary.Uvarint(b[off:])
	return off + w + int(n)
}

// skipValue advances past one encoded value (caller guarantees validity).
func skipValue(b []byte, off int) int {
	switch Kind(b[off]) {
	case KindString:
		return skipString(b, off+1)
	case KindInt:
		_, w := binary.Varint(b[off+1:])
		return off + 1 + w
	case KindFloat:
		return off + 9
	case KindBool:
		return off + 2
	}
	return off + 1
}

// ParseRaw validates b as exactly one encoded event and returns its Raw
// view. The view aliases b — callers hand over ownership; the buffer
// must stay immutable for the Raw's lifetime (never a pooled buffer).
// Malformed or truncated input returns an error, never panics, and a
// successful parse guarantees every later cursor read is in-bounds.
func ParseRaw(b []byte, in *Interner) (*Raw, error) {
	r, off, err := ParseRawAt(b, 0, in)
	if err != nil {
		return nil, err
	}
	if off != len(b) {
		return nil, fmt.Errorf("event: %d trailing bytes after event", len(b)-off)
	}
	return r, nil
}

// ParseRawAt validates one encoded event starting at off inside b and
// returns its Raw view plus the offset just past it. The view aliases
// b[off:end] — frames carrying several events share one buffer. in, when
// non-nil, interns class and attribute names.
func ParseRawAt(b []byte, off int, in *Interner) (*Raw, int, error) {
	start := off
	class, off, err := readString(b, off, in)
	if err != nil {
		return nil, 0, err
	}
	id, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return nil, 0, fmt.Errorf("event: bad id varint at offset %d", off)
	}
	off += w
	n, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return nil, 0, fmt.Errorf("event: bad attr count at offset %d", off)
	}
	off += w
	if n > uint64(len(b)-off) {
		return nil, 0, fmt.Errorf("event: attribute count %d exceeds buffer", n)
	}
	r := &Raw{class: class, id: id}
	if n > 0 {
		// The count is attacker-controlled: cap the preallocation so one
		// cheap frame cannot reserve hundreds of MiB; the slice grows as
		// attributes prove real.
		capHint := n
		if capHint > attrCapHint {
			capHint = attrCapHint
		}
		r.attrs = make([]rawAttr, 0, capHint)
	}
	for i := uint64(0); i < n; i++ {
		var name string
		name, off, err = readString(b, off, in)
		if err != nil {
			return nil, 0, err
		}
		valOff := off
		// Validate the value fully now, so cursor reads cannot fail later.
		if _, w, err = DecodeValue(b[off:]); err != nil {
			return nil, 0, err
		}
		off += w
		r.attrs = append(r.attrs, rawAttr{name: name, off: int32(valOff - start)})
	}
	pn, w := binary.Uvarint(b[off:])
	if w <= 0 || pn > uint64(len(b)-off-w) {
		return nil, 0, fmt.Errorf("event: truncated payload at offset %d", off)
	}
	off += w
	r.payOff, r.payLen = off-start, int(pn)
	off += int(pn)
	r.b = b[start:off:off]
	return r, off, nil
}

// SetStamp records the hop-tracing arrival timestamp. Call it only on
// the goroutine that constructed the Raw, before any concurrent sharing.
func (r *Raw) SetStamp(ns int64) { r.stamp = ns }

// Stamp returns the hop-tracing arrival timestamp, or zero when the
// event was not stamped (tracing disabled).
func (r *Raw) Stamp() int64 { return r.stamp }

// Bytes returns the encoded event, exactly as it travels on the wire and
// lands in the store. Callers must not mutate it.
func (r *Raw) Bytes() []byte { return r.b }

// Class returns the event class name (the reserved "class" attribute).
func (r *Raw) Class() string { return r.class }

// EventID returns the publisher-assigned sequence identifier.
func (r *Raw) EventID() uint64 { return r.id }

// NumAttrs reports the number of exposed attributes.
func (r *Raw) NumAttrs() int { return len(r.attrs) }

// AttrAt returns attribute i, its value decoded on demand (View).
func (r *Raw) AttrAt(i int) (string, Value) {
	return r.attrs[i].name, r.valueAt(i)
}

// Payload returns the opaque payload bytes (aliasing the encoding; do
// not mutate).
func (r *Raw) Payload() []byte {
	if r.payLen == 0 {
		return nil
	}
	return r.b[r.payOff : r.payOff+r.payLen : r.payOff+r.payLen]
}

// Lookup returns the named attribute's value, decoded on demand from the
// wire bytes; TypeAttr resolves to the class. Wide events build an
// attribute index on first use (lookupIndexMin, shared with *Event) and
// reuse it across all filter evaluations of the event; the index is
// published atomically, so concurrent matchers (sharded engines,
// parallel subscribers) are safe.
func (r *Raw) Lookup(name string) (Value, bool) {
	if name == TypeAttr {
		return String(r.class), true
	}
	if len(r.attrs) >= lookupIndexMin {
		idx := r.idx.Load()
		if idx == nil {
			m := make(map[string]int, len(r.attrs))
			// First binding wins on duplicate names, matching linear scan.
			for i := len(r.attrs) - 1; i >= 0; i-- {
				m[r.attrs[i].name] = i
			}
			r.idx.CompareAndSwap(nil, &m)
			idx = &m
		}
		i, ok := (*idx)[name]
		if !ok {
			return Value{}, false
		}
		return r.valueAt(i), true
	}
	for i := range r.attrs {
		if r.attrs[i].name == name {
			return r.valueAt(i), true
		}
	}
	return Value{}, false
}

// Has reports whether the event carries the named attribute.
func (r *Raw) Has(name string) bool {
	_, ok := r.Lookup(name)
	return ok
}

// Range iterates the attributes in event order, decoding each value on
// demand; fn returning false stops the iteration.
func (r *Raw) Range(fn func(name string, v Value) bool) {
	for i := range r.attrs {
		if !fn(r.attrs[i].name, r.valueAt(i)) {
			return
		}
	}
}

// valueAt decodes attribute i's value from the wire bytes. ParseRaw
// validated every value, so this cannot fail. String values alias the
// encoding instead of copying: r.b is immutable for the Raw's lifetime,
// so the unsafe.String view is sound, and per-constraint evaluation of
// string attributes stays allocation-free.
func (r *Raw) valueAt(i int) Value {
	off := int(r.attrs[i].off)
	if Kind(r.b[off]) == KindString {
		n, w := binary.Uvarint(r.b[off+1:])
		s := r.b[off+1+w : off+1+w+int(n)]
		if len(s) == 0 {
			return String("")
		}
		return String(unsafe.String(&s[0], len(s)))
	}
	v, _, _ := DecodeValue(r.b[off:])
	return v
}

// Event materializes the full *Event, at most once: the first call
// decodes (counted by the DecodeCount test hook) and later calls — from
// any goroutine — share the same immutable decoded event. Local
// subscribers of one broker therefore all see a single decoded instance
// instead of a clone each.
func (r *Raw) Event() *Event {
	if e := r.dec.Load(); e != nil {
		return e
	}
	e, _, err := decodeAt(r.b, 0, nil)
	if err != nil {
		// ParseRaw validated the bytes; a failure here means the backing
		// buffer was mutated, which the Raw contract forbids.
		panic(fmt.Sprintf("event: validated raw failed to decode: %v", err))
	}
	e.stamp = r.stamp
	if !r.dec.CompareAndSwap(nil, e) {
		return r.dec.Load()
	}
	return e
}
