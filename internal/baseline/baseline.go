// Package baseline implements the two non-overlay architectures of
// Section 2.1 against which multi-stage filtering is evaluated:
//
//   - Centralized: a single server stores every subscription and filters
//     every event. By construction its relative load complexity is 1 —
//     the normalization point of the paper's RLC metric.
//   - Broadcast: every event reaches every subscriber, which filters
//     locally. Total filtering work is (#events × #subscribers) spread
//     across the edge, and per-subscriber load grows with the global
//     event rate — the paper's argument for why broadcast does not scale.
//
// Both deliver exactly the same event sets as the multi-stage system,
// which the simulator uses as a cross-validation oracle.
package baseline

import (
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
)

// Centralized is the single-server architecture.
type Centralized struct {
	table    index.Engine
	conf     filter.Conformance
	counters *metrics.Counters
	subs     int
}

// NewCentralized builds a centralized server with the given matching
// engine (nil selects the naive table).
func NewCentralized(conf filter.Conformance, engine index.Engine) *Centralized {
	if engine == nil {
		engine = index.NewNaiveTable(conf)
	}
	return &Centralized{table: engine, conf: conf, counters: &metrics.Counters{}}
}

// Subscribe registers a subscriber's filter at the server.
func (c *Centralized) Subscribe(id string, f *filter.Filter) {
	c.table.Insert(f, id)
	c.subs++
	c.counters.SetFilters(c.table.Len())
}

// Publish filters the event against every subscription and returns the
// subscriber IDs to deliver to.
func (c *Centralized) Publish(e *event.Event) []string {
	c.counters.AddReceived(1)
	ids, matched := c.table.Match(e)
	if matched > 0 {
		c.counters.AddMatched(1)
	}
	c.counters.AddForwarded(uint64(len(ids)))
	return ids
}

// Stats snapshots the server's counters.
func (c *Centralized) Stats() metrics.NodeStats {
	return c.counters.Stats("central", 0)
}

// Subscribers returns the number of registered subscriptions.
func (c *Centralized) Subscribers() int { return c.subs }

// Broadcast is the flooding architecture: group-communication delivery of
// every event to every subscriber, with purely local filtering.
type Broadcast struct {
	conf      filter.Conformance
	collector *metrics.Collector
	order     []string
	filters   map[string]*filter.Filter
}

// NewBroadcast builds an empty broadcast group.
func NewBroadcast(conf filter.Conformance) *Broadcast {
	return &Broadcast{
		conf:      conf,
		collector: &metrics.Collector{},
		filters:   make(map[string]*filter.Filter),
	}
}

// Subscribe adds a member with its local filter.
func (b *Broadcast) Subscribe(id string, f *filter.Filter) {
	if _, ok := b.filters[id]; !ok {
		b.order = append(b.order, id)
	}
	b.filters[id] = f
	c := b.collector.Counters(id, 0)
	c.SetFilters(1)
}

// Publish floods the event to every member and returns the IDs whose
// local filters matched (the delivered set).
func (b *Broadcast) Publish(e *event.Event) []string {
	var delivered []string
	for _, id := range b.order {
		c := b.collector.Counters(id, 0)
		c.AddReceived(1)
		if b.filters[id].Matches(e, b.conf) {
			c.AddMatched(1)
			c.AddDelivered(1)
			delivered = append(delivered, id)
		}
	}
	return delivered
}

// Stats snapshots every member's counters.
func (b *Broadcast) Stats() []metrics.NodeStats { return b.collector.Snapshot() }

// Members returns the number of group members.
func (b *Broadcast) Members() int { return len(b.order) }
