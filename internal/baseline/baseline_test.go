package baseline

import (
	"fmt"
	"sort"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/workload"
)

func TestCentralizedRLCIsOne(t *testing.T) {
	c := NewCentralized(nil, nil)
	stocks, err := workload.NewStocks(1, workload.DefaultStocks())
	if err != nil {
		t.Fatal(err)
	}
	const subs, events = 40, 500
	for i := 0; i < subs; i++ {
		c.Subscribe(fmt.Sprintf("s%d", i), stocks.Subscription(workload.SubscriptionOptions{}))
	}
	for i := 0; i < events; i++ {
		c.Publish(stocks.Event())
	}
	stats := c.Stats()
	if got := stats.RLC(events, subs); got != 1 {
		t.Errorf("centralized RLC = %v, want exactly 1", got)
	}
	if c.Subscribers() != subs {
		t.Errorf("Subscribers = %d", c.Subscribers())
	}
}

func TestCentralizedDelivery(t *testing.T) {
	c := NewCentralized(nil, nil)
	c.Subscribe("a", filter.MustParseFilter(`class = "Stock" && symbol = "X"`))
	c.Subscribe("b", filter.MustParseFilter(`class = "Stock" && price < 5`))
	e := event.NewBuilder("Stock").Str("symbol", "X").Float("price", 3).Build()
	got := c.Publish(e)
	if fmt.Sprint(got) != "[a b]" {
		t.Errorf("delivered = %v, want [a b]", got)
	}
	miss := event.NewBuilder("Stock").Str("symbol", "Y").Float("price", 9).Build()
	if got := c.Publish(miss); len(got) != 0 {
		t.Errorf("delivered = %v, want none", got)
	}
}

func TestBroadcastEveryoneReceives(t *testing.T) {
	b := NewBroadcast(nil)
	b.Subscribe("a", filter.MustParseFilter(`class = "Stock" && symbol = "X"`))
	b.Subscribe("c", filter.MustParseFilter(`class = "Bond"`))
	const events = 100
	stocks, _ := workload.NewStocks(2, workload.DefaultStocks())
	for i := 0; i < events; i++ {
		b.Publish(stocks.Event())
	}
	for _, s := range b.Stats() {
		if s.Received != events {
			t.Errorf("%s received %d, want %d (broadcast must flood)", s.NodeID, s.Received, events)
		}
	}
	if b.Members() != 2 {
		t.Errorf("Members = %d", b.Members())
	}
}

func TestBroadcastAndCentralizedAgree(t *testing.T) {
	c := NewCentralized(nil, nil)
	b := NewBroadcast(nil)
	stocks, _ := workload.NewStocks(3, workload.DefaultStocks())
	for i := 0; i < 30; i++ {
		f := stocks.Subscription(workload.SubscriptionOptions{WildcardProb: 0.2})
		id := fmt.Sprintf("s%d", i)
		c.Subscribe(id, f)
		b.Subscribe(id, f)
	}
	for i := 0; i < 500; i++ {
		e := stocks.Event()
		cd, bd := c.Publish(e), b.Publish(e)
		sort.Strings(cd)
		sort.Strings(bd)
		if got, want := fmt.Sprint(cd), fmt.Sprint(bd); got != want {
			t.Fatalf("event %d: centralized %s vs broadcast %s", i, got, want)
		}
	}
}

func TestBroadcastResubscribeReplacesFilter(t *testing.T) {
	b := NewBroadcast(nil)
	b.Subscribe("a", filter.MustParseFilter(`x = 1`))
	b.Subscribe("a", filter.MustParseFilter(`x = 2`))
	if b.Members() != 1 {
		t.Fatalf("Members = %d, want 1", b.Members())
	}
	e := event.NewBuilder("T").Int("x", 2).Build()
	if got := b.Publish(e); len(got) != 1 {
		t.Errorf("delivered = %v", got)
	}
}
