package filter

import "eventsys/internal/event"

// Covers implements Definition 2: it reports whether weak covers strong
// (weak ⊒ strong), i.e. every event matched by strong is matched by weak.
//
// The check is conservative (sound for pre-filtering): it may return false
// for filter pairs whose covering cannot be proven from the canonical
// per-attribute domains, but when it returns true the relation holds.
// The trivially-false filter (a contradictory strong filter) is covered by
// everything; the trivially-true filter f_T (zero Filter) covers
// everything.
func Covers(weak, strong *Filter, conf Conformance) bool {
	if conf == nil {
		conf = ExactTypes{}
	}
	// Vacuous case: an unsatisfiable strong filter is covered by all.
	if !strong.Satisfiable() {
		return true
	}
	// Class: weak's class must subsume strong's.
	if weak.Class != "" && weak.Class != RootType {
		if strong.Class == "" || !conf.Conforms(strong.Class, weak.Class) {
			return false
		}
	}
	// Each attribute constrained by weak must be constrained by strong
	// (presence) and the strong domain must sit inside the weak domain.
	for _, attr := range weak.Attrs() {
		wd := buildDomain(weak.ConstraintsOn(attr))
		sc := strong.ConstraintsOn(attr)
		if len(sc) == 0 {
			return false // strong does not even guarantee presence
		}
		if !wd.superset(buildDomain(sc)) {
			return false
		}
	}
	return true
}

// CoversEvent implements Definition 3: event e covers event e' for filter
// f when f(e') implies f(e). Unlike filter covering this is directly
// decidable by evaluation.
func CoversEvent(f *Filter, e, ePrime *event.Event, conf Conformance) bool {
	return !f.Matches(ePrime, conf) || f.Matches(e, conf)
}

// Collapse reduces a set of filters to a minimal antichain under covering:
// any filter covered by another member is dropped (the paper's "collapsing
// subscriptions", Section 3.4: keep g1, drop f1). The result preserves the
// union of matched events. Order of survivors follows the input.
func Collapse(filters []*Filter, conf Conformance) []*Filter {
	keep := make([]bool, len(filters))
	for i := range keep {
		keep[i] = true
	}
	for i, fi := range filters {
		if !keep[i] {
			continue
		}
		for j, fj := range filters {
			if i == j || !keep[j] {
				continue
			}
			// Drop fj if fi covers it. Ties (mutual covering, i.e.
			// equivalent filters) keep the earlier one.
			if Covers(fi, fj, conf) {
				if Covers(fj, fi, conf) && j < i {
					continue
				}
				keep[j] = false
			}
		}
	}
	out := make([]*Filter, 0, len(filters))
	for i, f := range filters {
		if keep[i] {
			out = append(out, f)
		}
	}
	return out
}

// StrongestCovering returns the index of the most specific filter among
// candidates that covers f, or -1 when none covers it. "Most specific"
// means covered by every other covering candidate whenever that relation
// is provable; ties resolve to the first. This is the search performed by
// the subscription placement protocol (Fig. 5): find the strongest stored
// filter covering the new subscription.
func StrongestCovering(candidates []*Filter, f *Filter, conf Conformance) int {
	best := -1
	for i, c := range candidates {
		if !Covers(c, f, conf) {
			continue
		}
		if best == -1 || Covers(candidates[best], c, conf) {
			best = i
		}
	}
	return best
}
