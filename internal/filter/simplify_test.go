package filter

import (
	"math/rand/v2"
	"testing"

	"eventsys/internal/event"
)

func TestSimplifyTable(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"tighter lt", `price < 10 && price < 11`, `price < 10`},
		{"tighter gt", `price > 5 && price > 3`, `price > 5`},
		{"interval", `price > 1 && price < 10 && price >= 0 && price <= 20`, `price > 1 && price < 10`},
		{"eq absorbs bounds", `price = 5 && price < 10`, `price = 5`},
		{"eq absorbs ne", `price = 5 && price != 7`, `price = 5`},
		{"wildcard absorbed", `price any && price < 10`, `price < 10`},
		{"exists absorbed", `price exists && price = 3`, `price = 3`},
		{"only wildcard", `price any`, `price any`},
		{"only exists", `price exists`, `price any`},
		{"dup ne", `x != 5 && x != 5`, `x != 5`},
		{"ne outside interval", `x < 10 && x != 15`, `x < 10`},
		{"ne inside interval kept", `x < 10 && x != 5`, `x < 10 && x != 5`},
		{"prefix implied", `s prefix "ab" && s prefix "a"`, `s prefix "ab"`},
		{"suffix implied", `s suffix "xyz" && s suffix "z"`, `s suffix "xyz"`},
		{"contains implied", `s contains "abc" && s contains "b"`, `s contains "abc"`},
		{"dup prefix", `s prefix "a" && s prefix "a"`, `s prefix "a"`},
		{"le lt same bound", `x <= 10 && x < 10`, `x < 10`},
		{"multi attr", `a = 1 && b < 5 && b < 4`, `a = 1 && b < 4`},
		{"class kept", `class = "Stock" && price < 10 && price < 12`, `class = "Stock" && price < 10`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MustParseFilter(tt.in).Simplify()
			want := MustParseFilter(tt.want)
			// Compare canonically: mutual covering plus same size.
			if !Covers(got, want, nil) || !Covers(want, got, nil) {
				t.Fatalf("Simplify(%s) = %s, want ≡ %s", tt.in, got, want)
			}
			if len(got.Constraints) != len(want.Constraints) {
				t.Errorf("Simplify(%s) = %s (%d constraints), want %s (%d)",
					tt.in, got, len(got.Constraints), want, len(want.Constraints))
			}
		})
	}
}

func TestSimplifyUnsatisfiableUntouched(t *testing.T) {
	f := MustParseFilter(`x = 1 && x = 2`)
	got := f.Simplify()
	if len(got.Constraints) != 2 {
		t.Errorf("unsatisfiable filter altered: %s", got)
	}
}

// TestSimplifyEquivalenceProperty: simplification never changes matching
// semantics.
func TestSimplifyEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	shrunk := 0
	for round := 0; round < 2000; round++ {
		f := randomFilter(rng)
		// Make duplication likely: append mutated copies of existing
		// constraints.
		if len(f.Constraints) > 0 && rng.IntN(2) == 0 {
			c := f.Constraints[rng.IntN(len(f.Constraints))]
			if c.Op.NeedsOperand() && c.Operand.IsNumeric() {
				c.Operand = event.Float(c.Operand.Num() + float64(rng.IntN(3)-1))
			}
			f.Constraints = append(f.Constraints, c)
		}
		s := f.Simplify()
		if len(s.Constraints) > len(f.Constraints) {
			t.Fatalf("Simplify grew %s -> %s", f, s)
		}
		if len(s.Constraints) < len(f.Constraints) {
			shrunk++
		}
		for i := 0; i < 120; i++ {
			e := randomEvent(rng)
			if f.Matches(e, nil) != s.Matches(e, nil) {
				t.Fatalf("semantics changed:\n  f %s\n  s %s\n  e %s", f, s, e)
			}
		}
	}
	if shrunk == 0 {
		t.Error("property test never exercised an actual simplification")
	}
}

func TestSimplifyIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 104))
	for round := 0; round < 500; round++ {
		f := randomFilter(rng)
		once := f.Simplify()
		twice := once.Simplify()
		if !once.Equal(twice) {
			t.Fatalf("not idempotent:\n  f %s\n  once %s\n  twice %s", f, once, twice)
		}
	}
}
