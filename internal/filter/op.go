package filter

import (
	"strings"

	"eventsys/internal/event"
)

// Op is a constraint operator.
type Op int

// Supported constraint operators. OpAny is the wildcard attribute filter
// (Attr, "ALL", =) of Section 4.4: it requires attribute presence but
// accepts any value; OpExists is the user-facing existence predicate with
// the same semantics (the paper's "(volume, ∃)").
const (
	OpInvalid Op = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix
	OpSuffix
	OpContains
	OpExists
	OpAny
)

// String returns the parser token for the operator.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpPrefix:
		return "prefix"
	case OpSuffix:
		return "suffix"
	case OpContains:
		return "contains"
	case OpExists:
		return "exists"
	case OpAny:
		return "any"
	default:
		return "invalid"
	}
}

// NeedsOperand reports whether the operator takes a right-hand literal.
func (op Op) NeedsOperand() bool {
	return op != OpExists && op != OpAny && op != OpInvalid
}

// eval applies the operator to an attribute value v with operand w.
// Ordering and equality across incomparable kinds evaluate to false;
// OpNe is pure negated equality, so values of incomparable kinds satisfy
// it (they are certainly not equal).
func (op Op) eval(v, w event.Value) bool {
	switch op {
	case OpExists, OpAny:
		return true
	case OpEq:
		return v.Equal(w)
	case OpNe:
		return !v.Equal(w)
	case OpLt:
		c, ok := v.Compare(w)
		return ok && c < 0
	case OpLe:
		c, ok := v.Compare(w)
		return ok && c <= 0
	case OpGt:
		c, ok := v.Compare(w)
		return ok && c > 0
	case OpGe:
		c, ok := v.Compare(w)
		return ok && c >= 0
	case OpPrefix:
		return v.Kind() == event.KindString && w.Kind() == event.KindString &&
			strings.HasPrefix(v.Str(), w.Str())
	case OpSuffix:
		return v.Kind() == event.KindString && w.Kind() == event.KindString &&
			strings.HasSuffix(v.Str(), w.Str())
	case OpContains:
		return v.Kind() == event.KindString && w.Kind() == event.KindString &&
			strings.Contains(v.Str(), w.Str())
	default:
		return false
	}
}
