package filter

import (
	"strings"

	"eventsys/internal/event"
)

// domain is the canonical form of all constraints a filter places on a
// single attribute: an optional exact value, excluded values, an interval,
// and string-pattern requirements. Covering (Definition 2) reduces to a
// per-attribute superset check between domains.
//
// The canonicalization is conservative: combinations it cannot reason
// about are marked unsupported, and unsupported domains never claim to
// cover anything. For pre-filtering this is the safe direction — a missed
// covering keeps an extra filter around, whereas a wrongly claimed
// covering would drop events.
type domain struct {
	contradictory bool // provably unsatisfiable
	unsupported   bool // cannot reason; never claim coverage either way
	wildcardOnly  bool // only OpAny/OpExists constraints: any present value

	eq       *event.Value
	ne       []event.Value
	lo, hi   *bound
	prefixes []string
	suffixes []string
	contains []string
}

// bound is one end of an interval.
type bound struct {
	v      event.Value
	strict bool
}

// family classifies the value kinds a domain's constraints speak about.
type family int

const (
	famNone family = iota
	famNumeric
	famString
	famBool
	famMixed
)

func familyOf(v event.Value) family {
	switch v.Kind() {
	case event.KindString:
		return famString
	case event.KindInt, event.KindFloat:
		return famNumeric
	case event.KindBool:
		return famBool
	default:
		return famMixed
	}
}

// buildDomain canonicalizes the constraints on one attribute.
func buildDomain(cs []Constraint) *domain {
	d := &domain{wildcardOnly: true}
	fam := famNone
	join := func(v event.Value) bool {
		f := familyOf(v)
		if f == famMixed {
			d.unsupported = true
			return false
		}
		if fam == famNone {
			fam = f
			return true
		}
		if fam != f {
			// A single value cannot be comparable to two different
			// families; the conjunction is unsatisfiable.
			d.contradictory = true
			return false
		}
		return true
	}
	for _, c := range cs {
		if c.IsWildcard() {
			continue
		}
		d.wildcardOnly = false
		switch c.Op {
		case OpEq:
			if !join(c.Operand) {
				return d
			}
			if d.eq != nil && !d.eq.Equal(c.Operand) {
				d.contradictory = true
				return d
			}
			v := c.Operand
			d.eq = &v
		case OpNe:
			// Ne is pure exclusion: it imposes no kind family (values of
			// other kinds trivially satisfy it), so no join here.
			d.ne = append(d.ne, c.Operand)
		case OpLt, OpLe:
			if !join(c.Operand) {
				return d
			}
			nb := &bound{v: c.Operand, strict: c.Op == OpLt}
			if d.hi == nil || tighterHigh(nb, d.hi) {
				d.hi = nb
			}
		case OpGt, OpGe:
			if !join(c.Operand) {
				return d
			}
			nb := &bound{v: c.Operand, strict: c.Op == OpGt}
			if d.lo == nil || tighterLow(nb, d.lo) {
				d.lo = nb
			}
		case OpPrefix, OpSuffix, OpContains:
			if c.Operand.Kind() != event.KindString {
				d.contradictory = true
				return d
			}
			if fam == famNone {
				fam = famString
			} else if fam != famString {
				d.contradictory = true
				return d
			}
			switch c.Op {
			case OpPrefix:
				d.prefixes = append(d.prefixes, c.Operand.Str())
			case OpSuffix:
				d.suffixes = append(d.suffixes, c.Operand.Str())
			default:
				d.contains = append(d.contains, c.Operand.Str())
			}
		default:
			d.unsupported = true
			return d
		}
	}
	d.checkContradictions()
	return d
}

// tighterHigh reports whether a is a strictly tighter upper bound than b.
func tighterHigh(a, b *bound) bool {
	c, ok := a.v.Compare(b.v)
	if !ok {
		return false
	}
	return c < 0 || (c == 0 && a.strict && !b.strict)
}

// tighterLow reports whether a is a strictly tighter lower bound than b.
func tighterLow(a, b *bound) bool {
	c, ok := a.v.Compare(b.v)
	if !ok {
		return false
	}
	return c > 0 || (c == 0 && a.strict && !b.strict)
}

func (d *domain) checkContradictions() {
	if d.contradictory || d.unsupported {
		return
	}
	if d.lo != nil && d.hi != nil {
		c, ok := d.lo.v.Compare(d.hi.v)
		if !ok {
			d.contradictory = true
			return
		}
		if c > 0 || (c == 0 && (d.lo.strict || d.hi.strict)) {
			d.contradictory = true
			return
		}
	}
	if d.eq != nil {
		if !d.admitsValue(*d.eq) {
			d.contradictory = true
		}
	}
}

// admitsValue reports whether the domain's interval, exclusions and
// patterns allow the given value. (eq is not consulted by design: callers
// use it to validate eq itself.)
func (d *domain) admitsValue(v event.Value) bool {
	if d.lo != nil {
		c, ok := v.Compare(d.lo.v)
		if !ok || c < 0 || (c == 0 && d.lo.strict) {
			return false
		}
	}
	if d.hi != nil {
		c, ok := v.Compare(d.hi.v)
		if !ok || c > 0 || (c == 0 && d.hi.strict) {
			return false
		}
	}
	for _, x := range d.ne {
		if v.Equal(x) {
			return false
		}
	}
	if len(d.prefixes)+len(d.suffixes)+len(d.contains) > 0 {
		if v.Kind() != event.KindString {
			return false
		}
		s := v.Str()
		for _, p := range d.prefixes {
			if !strings.HasPrefix(s, p) {
				return false
			}
		}
		for _, p := range d.suffixes {
			if !strings.HasSuffix(s, p) {
				return false
			}
		}
		for _, p := range d.contains {
			if !strings.Contains(s, p) {
				return false
			}
		}
	}
	return true
}

// superset reports whether every value admitted by s is admitted by w
// ("w is weaker than or equal to s" on this attribute). Conservative:
// returns false when it cannot prove the relation.
func (w *domain) superset(s *domain) bool {
	if s.contradictory {
		return true // vacuous
	}
	if w.contradictory {
		return false // nothing satisfies w, but something satisfies s
	}
	if w.wildcardOnly {
		return true
	}
	if w.unsupported || s.unsupported {
		return false
	}
	// Exact value on the weak side: the strong side must force it.
	if w.eq != nil {
		if s.eq != nil && s.eq.Equal(*w.eq) {
			return w.residualAdmits(s)
		}
		if s.degenerateAt(*w.eq) {
			return w.residualAdmits(s)
		}
		return false
	}
	// Interval bounds.
	if w.lo != nil && !s.guaranteesLow(w.lo) {
		return false
	}
	if w.hi != nil && !s.guaranteesHigh(w.hi) {
		return false
	}
	// Exclusions: every value w rejects must already be rejected by s.
	for _, x := range w.ne {
		if !s.excludes(x) {
			return false
		}
	}
	// Patterns.
	for _, p := range w.prefixes {
		if !s.guaranteesPrefix(p) {
			return false
		}
	}
	for _, p := range w.suffixes {
		if !s.guaranteesSuffix(p) {
			return false
		}
	}
	for _, p := range w.contains {
		if !s.guaranteesContains(p) {
			return false
		}
	}
	return true
}

// residualAdmits checks w's exclusions and patterns against the single
// value s is pinned to (used when w.eq is satisfied exactly).
func (w *domain) residualAdmits(s *domain) bool {
	v := w.eq
	if s.eq != nil {
		v = s.eq
	}
	return w.admitsValue(*v)
}

// degenerateAt reports whether s's interval pins values to exactly v.
func (s *domain) degenerateAt(v event.Value) bool {
	if s.lo == nil || s.hi == nil || s.lo.strict || s.hi.strict {
		return false
	}
	cl, ok1 := s.lo.v.Compare(v)
	ch, ok2 := s.hi.v.Compare(v)
	return ok1 && ok2 && cl == 0 && ch == 0
}

// guaranteesLow reports whether s guarantees the weak lower bound wb.
func (s *domain) guaranteesLow(wb *bound) bool {
	if s.eq != nil {
		c, ok := s.eq.Compare(wb.v)
		return ok && (c > 0 || (c == 0 && !wb.strict))
	}
	if s.lo == nil {
		return false
	}
	c, ok := s.lo.v.Compare(wb.v)
	if !ok {
		return false
	}
	// s: v >(=) s.lo ; needs to imply v >(=) wb.v
	return c > 0 || (c == 0 && (!wb.strict || s.lo.strict))
}

// guaranteesHigh reports whether s guarantees the weak upper bound wb.
func (s *domain) guaranteesHigh(wb *bound) bool {
	if s.eq != nil {
		c, ok := s.eq.Compare(wb.v)
		return ok && (c < 0 || (c == 0 && !wb.strict))
	}
	if s.hi == nil {
		return false
	}
	c, ok := s.hi.v.Compare(wb.v)
	if !ok {
		return false
	}
	return c < 0 || (c == 0 && (!wb.strict || s.hi.strict))
}

// excludes reports whether s provably rejects value x (no value admitted
// by s is equal to x).
func (s *domain) excludes(x event.Value) bool {
	if s.eq != nil {
		// s pins the value to exactly eq; x is excluded iff it differs.
		return !s.eq.Equal(x)
	}
	if s.lo != nil {
		c, ok := x.Compare(s.lo.v)
		if !ok {
			// Admitted values must be comparable with the bound; x is not.
			return true
		}
		if c < 0 || (c == 0 && s.lo.strict) {
			return true
		}
	}
	if s.hi != nil {
		c, ok := x.Compare(s.hi.v)
		if !ok {
			return true
		}
		if c > 0 || (c == 0 && s.hi.strict) {
			return true
		}
	}
	for _, y := range s.ne {
		if y.Equal(x) {
			return true
		}
	}
	if x.Kind() == event.KindString {
		for _, p := range s.prefixes {
			if !strings.HasPrefix(x.Str(), p) {
				return true
			}
		}
		for _, p := range s.suffixes {
			if !strings.HasSuffix(x.Str(), p) {
				return true
			}
		}
		for _, p := range s.contains {
			if !strings.Contains(x.Str(), p) {
				return true
			}
		}
	} else if len(s.prefixes)+len(s.suffixes)+len(s.contains) > 0 {
		return true // patterns force string kind; x is not a string
	}
	return false
}

// guaranteesPrefix reports whether every value in s starts with p.
func (s *domain) guaranteesPrefix(p string) bool {
	if s.eq != nil {
		return s.eq.Kind() == event.KindString && strings.HasPrefix(s.eq.Str(), p)
	}
	for _, q := range s.prefixes {
		if strings.HasPrefix(q, p) {
			return true
		}
	}
	return false
}

// guaranteesSuffix reports whether every value in s ends with p.
func (s *domain) guaranteesSuffix(p string) bool {
	if s.eq != nil {
		return s.eq.Kind() == event.KindString && strings.HasSuffix(s.eq.Str(), p)
	}
	for _, q := range s.suffixes {
		if strings.HasSuffix(q, p) {
			return true
		}
	}
	return false
}

// guaranteesContains reports whether every value in s contains p.
func (s *domain) guaranteesContains(p string) bool {
	if s.eq != nil {
		return s.eq.Kind() == event.KindString && strings.Contains(s.eq.Str(), p)
	}
	for _, q := range s.contains {
		if strings.Contains(q, p) {
			return true
		}
	}
	for _, q := range s.prefixes {
		if strings.Contains(q, p) {
			return true
		}
	}
	for _, q := range s.suffixes {
		if strings.Contains(q, p) {
			return true
		}
	}
	return false
}

// Satisfiable reports whether the filter is not provably contradictory.
// Unsupported combinations are assumed satisfiable.
func (f *Filter) Satisfiable() bool {
	for _, attr := range f.Attrs() {
		if buildDomain(f.ConstraintsOn(attr)).contradictory {
			return false
		}
	}
	return true
}
