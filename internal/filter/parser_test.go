package filter

import (
	"testing"

	"eventsys/internal/event"
)

func TestParseBasic(t *testing.T) {
	f, err := ParseFilter(`class = "Stock" && symbol = "Foo" && price < 10.0`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Class != "Stock" {
		t.Errorf("class = %q", f.Class)
	}
	want := []Constraint{
		C("symbol", OpEq, event.String("Foo")),
		C("price", OpLt, event.Float(10.0)),
	}
	if len(f.Constraints) != len(want) {
		t.Fatalf("constraints = %v", f.Constraints)
	}
	for i, c := range want {
		got := f.Constraints[i]
		if got.Attr != c.Attr || got.Op != c.Op || !got.Operand.Equal(c.Operand) {
			t.Errorf("constraint %d = %v, want %v", i, got, c)
		}
	}
}

func TestParseOperators(t *testing.T) {
	tests := []struct {
		src string
		op  Op
	}{
		{`x = 1`, OpEq},
		{`x == 1`, OpEq},
		{`x != 1`, OpNe},
		{`x < 1`, OpLt},
		{`x <= 1`, OpLe},
		{`x > 1`, OpGt},
		{`x >= 1`, OpGe},
		{`x prefix "a"`, OpPrefix},
		{`x suffix "a"`, OpSuffix},
		{`x contains "a"`, OpContains},
	}
	for _, tt := range tests {
		f, err := ParseFilter(tt.src)
		if err != nil {
			t.Errorf("%s: %v", tt.src, err)
			continue
		}
		if len(f.Constraints) != 1 || f.Constraints[0].Op != tt.op {
			t.Errorf("%s parsed to %v, want op %v", tt.src, f.Constraints, tt.op)
		}
	}
}

func TestParseSpecialForms(t *testing.T) {
	f := MustParseFilter(`volume exists && symbol any && price = ALL`)
	if len(f.Constraints) != 3 {
		t.Fatalf("constraints = %v", f.Constraints)
	}
	if f.Constraints[0].Op != OpExists || f.Constraints[1].Op != OpAny || f.Constraints[2].Op != OpAny {
		t.Errorf("ops = %v %v %v", f.Constraints[0].Op, f.Constraints[1].Op, f.Constraints[2].Op)
	}
}

func TestParseLiterals(t *testing.T) {
	f := MustParseFilter(`s = "a \"b\"" && i = -3 && fl = 2.5e3 && b1 = true && b0 = false`)
	tests := []struct {
		attr string
		want event.Value
	}{
		{"s", event.String(`a "b"`)},
		{"i", event.Int(-3)},
		{"fl", event.Float(2500)},
		{"b1", event.Bool(true)},
		{"b0", event.Bool(false)},
	}
	for _, tt := range tests {
		cs := f.ConstraintsOn(tt.attr)
		if len(cs) != 1 || !cs[0].Operand.Equal(tt.want) {
			t.Errorf("%s = %v, want %v", tt.attr, cs, tt.want)
		}
	}
}

func TestParseDisjunction(t *testing.T) {
	sub, err := Parse(`class = "Stock" && price < 5 || class = "Auction" or x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 3 {
		t.Fatalf("got %d filters, want 3", len(sub))
	}
	if sub[0].Class != "Stock" || sub[1].Class != "Auction" || sub[2].Class != "" {
		t.Errorf("classes = %q %q %q", sub[0].Class, sub[1].Class, sub[2].Class)
	}
}

func TestParseAndKeyword(t *testing.T) {
	f := MustParseFilter(`x = 1 and y = 2 AND z = 3`)
	if len(f.Constraints) != 3 {
		t.Fatalf("constraints = %v", f.Constraints)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`x`,
		`x =`,
		`x = $`,
		`= 1`,
		`x & y`,
		`x | y`,
		`x ~ 1`,
		`x = 1 &&`,
		`x = 1 extra`,
		`class < "Stock"`,
		`class = 5`,
		`class exists`,
		`class any`,
		`x prefix`,
		`s = "unterminated`,
		`class = "A" && class = "B"`,
		`x = ALL < 3`,
		`x != ALL`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	// Filter.String uses the paper tuple notation, not the parser syntax,
	// so round-trip via a manual rebuild: parse, render, compare semantics.
	srcs := []string{
		`class = "Stock" && symbol = "Foo" && price < 10.0`,
		`year = 2002 && conference prefix "IC"`,
		`x any && y exists`,
	}
	for _, src := range srcs {
		f := MustParseFilter(src)
		g := MustParseFilter(src)
		if !f.Equal(g) {
			t.Errorf("parsing %q twice differs: %s vs %s", src, f, g)
		}
	}
}

func TestParseDuplicateClassConsistent(t *testing.T) {
	f, err := ParseFilter(`class = "A" && class = "A"`)
	if err != nil {
		t.Fatalf("consistent duplicate class should parse: %v", err)
	}
	if f.Class != "A" {
		t.Errorf("class = %q", f.Class)
	}
}
