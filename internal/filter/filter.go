package filter

import (
	"fmt"
	"strings"

	"eventsys/internal/event"
)

// Conformance decides event type (class) subtyping. typing.Registry
// implements it; ExactTypes is the registry-less fallback.
type Conformance interface {
	// Conforms reports whether sub is super or a subtype of super.
	Conforms(sub, super string) bool
}

// ExactTypes is a Conformance with no hierarchy: a type conforms only to
// itself and to the root type "Event".
type ExactTypes struct{}

// Conforms implements Conformance by exact name comparison.
func (ExactTypes) Conforms(sub, super string) bool {
	return sub == super || super == RootType
}

// RootType mirrors typing.RootType without importing it, keeping this
// package's dependencies limited to the event substrate.
const RootType = "Event"

// Constraint is one name-value-operator tuple of a filter.
type Constraint struct {
	Attr    string
	Op      Op
	Operand event.Value // unused for OpExists/OpAny
}

// Matches evaluates the constraint against an event view (decoded or
// raw): the attribute must be present and the operator must hold.
func (c Constraint) Matches(e event.View) bool {
	v, ok := e.Lookup(c.Attr)
	if !ok {
		return false
	}
	return c.Op.eval(v, c.Operand)
}

// MatchesValue evaluates the constraint's operator against an
// already-looked-up attribute value (presence has been established by the
// caller). Matching engines use it to avoid repeated attribute lookups.
func (c Constraint) MatchesValue(v event.Value) bool { return c.Op.eval(v, c.Operand) }

// IsWildcard reports whether the constraint accepts any present value.
func (c Constraint) IsWildcard() bool { return c.Op == OpAny || c.Op == OpExists }

// String renders the constraint in the paper's tuple notation.
func (c Constraint) String() string {
	if !c.Op.NeedsOperand() {
		if c.Op == OpAny {
			return fmt.Sprintf("(%s, ALL, =)", c.Attr)
		}
		return fmt.Sprintf("(%s, ∃)", c.Attr)
	}
	return fmt.Sprintf("(%s, %s, %s)", c.Attr, c.Operand, c.Op)
}

// Filter is a conjunction of constraints plus an optional class constraint
// with conformance (subtype) semantics. The zero Filter is f_T: it matches
// every event.
type Filter struct {
	// Class restricts matching to events whose type conforms to it.
	// Empty (or RootType) accepts every type.
	Class string
	// Constraints must all hold for the filter to match.
	Constraints []Constraint
}

// New constructs a filter for the given class with the given constraints.
func New(class string, cs ...Constraint) *Filter {
	f := &Filter{Class: class, Constraints: make([]Constraint, len(cs))}
	copy(f.Constraints, cs)
	return f
}

// C is shorthand for building a Constraint.
func C(attr string, op Op, operand event.Value) Constraint {
	return Constraint{Attr: attr, Op: op, Operand: operand}
}

// Wild builds the wildcard constraint (attr, ALL, =).
func Wild(attr string) Constraint { return Constraint{Attr: attr, Op: OpAny} }

// Matches implements Definition 1: it reports whether the event satisfies
// the class constraint (under conf) and every attribute constraint. It
// accepts any event view — the decoded *event.Event or the zero-copy
// *event.Raw wire form — so brokers evaluate filters directly over wire
// bytes without materializing events.
func (f *Filter) Matches(e event.View, conf Conformance) bool {
	if f == nil {
		return true
	}
	if f.Class != "" && f.Class != RootType {
		if conf == nil {
			conf = ExactTypes{}
		}
		if !conf.Conforms(e.Class(), f.Class) {
			return false
		}
	}
	for _, c := range f.Constraints {
		if !c.Matches(e) {
			return false
		}
	}
	return true
}

// ConstraintsOn returns the constraints expressed on the named attribute.
func (f *Filter) ConstraintsOn(attr string) []Constraint {
	var out []Constraint
	for _, c := range f.Constraints {
		if c.Attr == attr {
			out = append(out, c)
		}
	}
	return out
}

// Attrs returns the distinct constrained attribute names in first-seen
// order (excluding the class).
func (f *Filter) Attrs() []string {
	seen := make(map[string]bool, len(f.Constraints))
	var out []string
	for _, c := range f.Constraints {
		if !seen[c.Attr] {
			seen[c.Attr] = true
			out = append(out, c.Attr)
		}
	}
	return out
}

// WildcardAttrs returns the attributes constrained only by wildcards, in
// first-seen order. These are the set C of HANDLE-WILDCARD-SUBS (§4.5).
func (f *Filter) WildcardAttrs() []string {
	wild := make(map[string]bool)
	var order []string
	for _, c := range f.Constraints {
		if _, seen := wild[c.Attr]; !seen {
			wild[c.Attr] = true
			order = append(order, c.Attr)
		}
		if !c.IsWildcard() {
			wild[c.Attr] = false
		}
	}
	var out []string
	for _, a := range order {
		if wild[a] {
			out = append(out, a)
		}
	}
	return out
}

// HasWildcards reports whether the filter contains any wildcard-only
// attribute.
func (f *Filter) HasWildcards() bool { return len(f.WildcardAttrs()) > 0 }

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	c := &Filter{Class: f.Class, Constraints: make([]Constraint, len(f.Constraints))}
	copy(c.Constraints, f.Constraints)
	return c
}

// Equal reports structural equality (same class, same constraints in the
// same order).
func (f *Filter) Equal(o *Filter) bool {
	if f.Class != o.Class || len(f.Constraints) != len(o.Constraints) {
		return false
	}
	for i, c := range f.Constraints {
		oc := o.Constraints[i]
		if c.Attr != oc.Attr || c.Op != oc.Op {
			return false
		}
		if c.Op.NeedsOperand() && !(c.Operand.Equal(oc.Operand) && c.Operand.Kind() == oc.Operand.Kind()) {
			return false
		}
	}
	return true
}

// Key returns a canonical string identity for the filter, usable as a map
// key for deduplication in routing tables.
func (f *Filter) Key() string { return f.String() }

// String renders the filter in the paper's notation, e.g.
// (class, "Stock", =) (symbol, "Foo", =) (price, 5, >).
func (f *Filter) String() string {
	var b strings.Builder
	if f.Class != "" {
		fmt.Fprintf(&b, "(%s, %q, =)", event.TypeAttr, f.Class)
	}
	for _, c := range f.Constraints {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.String())
	}
	if b.Len() == 0 {
		return "(f_T)"
	}
	return b.String()
}

// Subscription is a disjunction of filters: it matches when at least one
// filter matches. A subscriber's registered interest is a Subscription.
type Subscription []*Filter

// Matches reports whether any filter of the subscription matches.
func (s Subscription) Matches(e event.View, conf Conformance) bool {
	for _, f := range s {
		if f.Matches(e, conf) {
			return true
		}
	}
	return false
}

// String joins the member filters with "||".
func (s Subscription) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	return strings.Join(parts, " || ")
}
