package filter

import (
	"math/rand/v2"
	"testing"

	"eventsys/internal/event"
)

func TestExample2Covering(t *testing.T) {
	// Filters f', f'', f''' of Example 2 all cover f of Example 1.
	f := paperFilter()
	fp := New("", C("symbol", OpEq, event.String("Foo")))
	fpp := New("", C("price", OpGt, event.Float(5.0)))
	fppp := New("",
		C("symbol", OpEq, event.String("Foo")),
		C("price", OpGe, event.Float(4.5)),
	)
	for name, weak := range map[string]*Filter{"f'": fp, "f''": fpp, "f'''": fppp} {
		if !Covers(weak, f, nil) {
			t.Errorf("%s should cover f", name)
		}
		if Covers(f, weak, nil) {
			t.Errorf("f should not cover %s", name)
		}
	}
}

func TestSection34Covering(t *testing.T) {
	// f1, g1 of Section 3.4: weakening makes g1 cover f1.
	f1 := MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10.0`)
	g1 := MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 11.0`)
	g2 := MustParseFilter(`class = "Stock" && symbol = "Foo"`)
	g3 := MustParseFilter(`class = "Stock"`)
	if !Covers(g1, f1, nil) {
		t.Error("g1 should cover f1")
	}
	if !Covers(g2, g1, nil) {
		t.Error("g2 should cover g1")
	}
	if !Covers(g3, g2, nil) {
		t.Error("g3 should cover g2")
	}
	// Transitively g3 covers f1.
	if !Covers(g3, f1, nil) {
		t.Error("g3 should cover f1 transitively")
	}
	if Covers(f1, g1, nil) {
		t.Error("f1 must not cover the weaker g1")
	}
}

func TestCoveringTable(t *testing.T) {
	tests := []struct {
		name       string
		weak, strg string
		want       bool
	}{
		{"wider lt", `price < 11`, `price < 10`, true},
		{"narrower lt", `price < 10`, `price < 11`, false},
		{"same bound", `price < 10`, `price < 10`, true},
		{"le covers lt same", `price <= 10`, `price < 10`, true},
		{"lt not covers le same", `price < 10`, `price <= 10`, false},
		{"gt dual", `price > 5`, `price > 6`, true},
		{"ge covers gt", `price >= 5`, `price > 5`, true},
		{"gt not covers ge", `price > 5`, `price >= 5`, false},
		{"eq inside range", `price < 10`, `price = 7`, true},
		{"eq outside range", `price < 10`, `price = 12`, false},
		{"eq at strict bound", `price < 10`, `price = 10`, false},
		{"eq at loose bound", `price <= 10`, `price = 10`, true},
		{"eq vs eq same", `sym = "A"`, `sym = "A"`, true},
		{"eq vs eq diff", `sym = "A"`, `sym = "B"`, false},
		{"missing attr in strong", `price < 10`, `sym = "A"`, false},
		{"extra attr in strong", `price < 10`, `price < 9 && sym = "A"`, true},
		{"wildcard covers all", `price any`, `price = 3`, true},
		{"wildcard covers wildcard", `price any`, `price any`, true},
		{"eq not covers wildcard", `price = 3`, `price any`, false},
		{"exists covers eq", `price exists`, `price = 3`, true},
		{"range covers range", `price > 1 && price < 10`, `price > 2 && price < 9`, true},
		{"range partial overlap", `price > 2 && price < 10`, `price > 1 && price < 9`, false},
		{"interval covers point interval", `price < 10`, `price >= 3 && price <= 3`, true},
		{"ne covers ne", `x != 5`, `x != 5`, true},
		{"ne not cover unconstrained", `x != 5`, `x > 0`, false},
		{"ne covered by disjoint range", `x != 5`, `x > 6`, true},
		{"ne covered by eq other", `x != 5`, `x = 4`, true},
		{"ne not covered by eq same", `x != 5`, `x = 5`, false},
		{"prefix covers longer prefix", `s prefix "ab"`, `s prefix "abc"`, true},
		{"prefix not covers shorter", `s prefix "abc"`, `s prefix "ab"`, false},
		{"prefix covers eq", `s prefix "ab"`, `s = "abide"`, true},
		{"prefix not covers eq", `s prefix "ab"`, `s = "ba"`, false},
		{"suffix covers eq", `s suffix "de"`, `s = "abide"`, true},
		{"contains covers eq", `s contains "bid"`, `s = "abide"`, true},
		{"contains via prefix", `s contains "ab"`, `s prefix "abc"`, true},
		{"contains via contains", `s contains "b"`, `s contains "abc"`, true},
		{"string order", `s < "m"`, `s < "k"`, true},
		{"string order fail", `s < "k"`, `s < "m"`, false},
		{"numeric int float", `price < 10.5`, `price < 10`, true},
		{"unsatisfiable strong vacuous", `price < 10`, `x = 1 && x = 2`, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := MustParseFilter(tt.weak)
			s := MustParseFilter(tt.strg)
			if got := Covers(w, s, nil); got != tt.want {
				t.Errorf("Covers(%s, %s) = %v, want %v", tt.weak, tt.strg, got, tt.want)
			}
		})
	}
}

func TestCoveringKindMismatchBounds(t *testing.T) {
	// price < "a" admits only strings; price < 10 admits only numbers.
	// Each filter is individually satisfiable but neither may claim to
	// cover the other.
	w := MustParseFilter(`price < 10`)
	s := MustParseFilter(`price < "a"`)
	if Covers(w, s, nil) {
		t.Error("numeric bound must not cover string bound")
	}
	if Covers(s, w, nil) {
		t.Error("string bound must not cover numeric bound")
	}
}

func TestClassCovering(t *testing.T) {
	conf := fakeConformance{
		"Stock":     {"Quote", RootType},
		"TechStock": {"Stock", "Quote", RootType},
		"Quote":     {RootType},
	}
	tests := []struct {
		weak, strg string
		want       bool
	}{
		{"Quote", "Stock", true},
		{"Quote", "TechStock", true},
		{"Stock", "Quote", false},
		{"", "Stock", true},
		{"Stock", "", false}, // weak constrains class, strong does not
		{RootType, "Stock", true},
		{"Stock", "Stock", true},
	}
	for _, tt := range tests {
		w, s := New(tt.weak), New(tt.strg)
		if got := Covers(w, s, conf); got != tt.want {
			t.Errorf("Covers(class %q, class %q) = %v, want %v", tt.weak, tt.strg, got, tt.want)
		}
	}
}

func TestCoversEventExample3(t *testing.T) {
	e1, _ := paperEvents()
	f := paperFilter()
	// e'1 of Example 3 drops the volume attribute.
	e1p := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 10.0).Build()
	if !CoversEvent(f, e1p, e1, nil) {
		t.Error("e'1 should cover e1 for f")
	}
	// With an existence filter on volume, e'1 no longer covers e1.
	fVol := New("", C("volume", OpExists, event.Value{}))
	if CoversEvent(fVol, e1p, e1, nil) {
		t.Error("e'1 must not cover e1 for (volume, ∃)")
	}
}

func TestCollapse(t *testing.T) {
	f1 := MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10.0`)
	g1 := MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 11.0`)
	h := MustParseFilter(`class = "Auction" && product = "Vehicle"`)
	out := Collapse([]*Filter{f1, g1, h}, nil)
	if len(out) != 2 {
		t.Fatalf("Collapse kept %d filters, want 2: %v", len(out), out)
	}
	if !out[0].Equal(g1) || !out[1].Equal(h) {
		t.Errorf("Collapse kept %v", out)
	}
	// Equivalent filters: exactly one survives.
	a := MustParseFilter(`x = 1`)
	b := MustParseFilter(`x = 1`)
	out2 := Collapse([]*Filter{a, b}, nil)
	if len(out2) != 1 {
		t.Fatalf("Collapse of equivalent filters kept %d", len(out2))
	}
	if got := Collapse(nil, nil); len(got) != 0 {
		t.Errorf("Collapse(nil) = %v", got)
	}
}

func TestStrongestCovering(t *testing.T) {
	sub := MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 9`)
	candidates := []*Filter{
		MustParseFilter(`class = "Stock"`),                                 // weakest cover
		MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 11`), // strongest cover
		MustParseFilter(`class = "Stock" && symbol = "Foo"`),               // middle cover
		MustParseFilter(`class = "Stock" && symbol = "Bar"`),               // no cover
		MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 8`),  // no cover (too strong)
	}
	got := StrongestCovering(candidates, sub, nil)
	if got != 1 {
		t.Fatalf("StrongestCovering = %d, want 1", got)
	}
	if got := StrongestCovering(candidates[3:], sub, nil); got != -1 {
		t.Fatalf("StrongestCovering with no cover = %d, want -1", got)
	}
}

// --- property-based validation of Covers against direct evaluation ---

// randomValue draws from a deliberately small universe so random filters
// and events collide often.
func randomValue(rng *rand.Rand) event.Value {
	switch rng.IntN(3) {
	case 0:
		return event.Int(int64(rng.IntN(8)))
	case 1:
		return event.Float(float64(rng.IntN(16)) / 2)
	default:
		return event.String(string(rune('a' + rng.IntN(4))))
	}
}

var propAttrs = []string{"a", "b", "c"}

func randomFilter(rng *rand.Rand) *Filter {
	f := &Filter{}
	n := 1 + rng.IntN(3)
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAny, OpExists, OpPrefix}
	for range n {
		op := ops[rng.IntN(len(ops))]
		c := Constraint{Attr: propAttrs[rng.IntN(len(propAttrs))], Op: op}
		if op.NeedsOperand() {
			if op == OpPrefix {
				c.Operand = event.String(string(rune('a' + rng.IntN(4))))
			} else {
				c.Operand = randomValue(rng)
			}
		}
		f.Constraints = append(f.Constraints, c)
	}
	return f
}

func randomEvent(rng *rand.Rand) *event.Event {
	b := event.NewBuilder("T")
	for _, a := range propAttrs {
		if rng.IntN(4) > 0 { // attribute present with prob 3/4
			b.Val(a, randomValue(rng))
		}
	}
	return b.Build()
}

// TestCoversSoundnessProperty: whenever Covers claims w covers s, no event
// may match s without matching w.
func TestCoversSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const trials = 2000
	claimed := 0
	for i := 0; i < trials; i++ {
		w, s := randomFilter(rng), randomFilter(rng)
		if !Covers(w, s, nil) {
			continue
		}
		claimed++
		for j := 0; j < 200; j++ {
			e := randomEvent(rng)
			if s.Matches(e, nil) && !w.Matches(e, nil) {
				t.Fatalf("unsound covering claim:\n  weak  %s\n  strong %s\n  event %s",
					w, s, e)
			}
		}
	}
	if claimed == 0 {
		t.Fatal("property test never exercised a positive covering claim")
	}
	t.Logf("verified %d positive covering claims", claimed)
}

// TestCoversReflexiveProperty: every satisfiable random filter covers
// itself.
func TestCoversReflexiveProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		f := randomFilter(rng)
		if !f.Satisfiable() {
			continue
		}
		if !Covers(f, f, nil) {
			// Reflexivity may fail only for unsupported domains; our
			// generator produces none, so this is a real failure.
			t.Fatalf("filter does not cover itself: %s", f)
		}
	}
}

// TestCoversTransitiveProperty: covering is transitive on the claims the
// checker makes.
func TestCoversTransitiveProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	checked := 0
	for i := 0; i < 20000 && checked < 200; i++ {
		a, b, c := randomFilter(rng), randomFilter(rng), randomFilter(rng)
		if Covers(a, b, nil) && Covers(b, c, nil) {
			checked++
			// Transitivity must hold semantically: verify via sampling
			// rather than requiring the conservative checker to prove it.
			for j := 0; j < 100; j++ {
				e := randomEvent(rng)
				if c.Matches(e, nil) && !a.Matches(e, nil) {
					t.Fatalf("transitivity violated semantically: a=%s b=%s c=%s e=%s", a, b, c, e)
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no transitive chains found")
	}
}

func TestCollapsePreservesUnionProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 300; i++ {
		var fs []*Filter
		n := 2 + rng.IntN(4)
		for range n {
			fs = append(fs, randomFilter(rng))
		}
		collapsed := Collapse(fs, nil)
		if len(collapsed) > len(fs) {
			t.Fatal("collapse grew the set")
		}
		for j := 0; j < 100; j++ {
			e := randomEvent(rng)
			if Subscription(fs).Matches(e, nil) != Subscription(collapsed).Matches(e, nil) {
				t.Fatalf("collapse changed semantics:\n  in  %v\n  out %v\n  e %s", fs, collapsed, e)
			}
		}
	}
}
