// Package filter implements the subscription language of the paper:
// conjunctive filters over typed attributes (Definition 1), the covering
// relations on filters and events (Definitions 2 and 3), wildcard
// attribute filters and the standard subscription filter format
// (Section 4.4), and a text parser for subscriptions.
//
// A filter is a conjunction of constraints, each of the paper's
// name-value-operator tuple form, plus an optional event class constraint
// with subtype (conformance) semantics. Disjunctions are represented one
// level up as Subscription, a set of filters of which at least one must
// match.
//
// Concurrency and ownership: Filter and Subscription values are
// immutable after construction by convention — every consumer that
// stores one long-term (routing tables, matching engines) clones it
// first, so a caller may reuse or mutate its own copy freely. Matching
// (Filter.Matches, Covers) reads shared state only and is safe to call
// concurrently on the same filter; Conformance implementations injected
// for class matching must themselves be concurrency-safe (the typing
// registry is).
package filter
