package filter

import (
	"strings"

	"eventsys/internal/event"
)

// Simplify returns a semantically equivalent filter with redundant
// constraints removed and per-attribute constraints put into canonical
// form:
//
//   - multiple ordering bounds on one attribute collapse to the tightest
//     interval (price < 10 && price < 11 → price < 10);
//   - equality makes every other satisfiable constraint on the attribute
//     redundant;
//   - wildcard/exists constraints are absorbed by any other constraint on
//     the same attribute;
//   - duplicate exclusions and patterns deduplicate;
//   - exclusions already implied by the interval drop out.
//
// Provably unsatisfiable filters return unchanged (they match nothing
// either way, and keeping them intact aids debugging). Attribute order
// follows first appearance; constraint order within an attribute is
// eq, bounds, exclusions, patterns, matching the paper's tuple notation.
func (f *Filter) Simplify() *Filter {
	out := &Filter{Class: f.Class}
	for _, attr := range f.Attrs() {
		cs := f.ConstraintsOn(attr)
		d := buildDomain(cs)
		if d.contradictory || d.unsupported {
			// Leave pathological attribute sets untouched.
			out.Constraints = append(out.Constraints, cs...)
			continue
		}
		out.Constraints = append(out.Constraints, d.constraints(attr)...)
	}
	return out
}

// constraints re-emits a canonical constraint list for the domain.
func (d *domain) constraints(attr string) []Constraint {
	if d.wildcardOnly {
		return []Constraint{Wild(attr)}
	}
	var out []Constraint
	if d.eq != nil {
		out = append(out, Constraint{Attr: attr, Op: OpEq, Operand: *d.eq})
		// Exclusions and patterns were validated against eq during
		// canonicalization; they are redundant.
		return out
	}
	if d.lo != nil {
		op := OpGe
		if d.lo.strict {
			op = OpGt
		}
		out = append(out, Constraint{Attr: attr, Op: op, Operand: d.lo.v})
	}
	if d.hi != nil {
		op := OpLe
		if d.hi.strict {
			op = OpLt
		}
		out = append(out, Constraint{Attr: attr, Op: op, Operand: d.hi.v})
	}
	seen := make(map[string]bool)
	for _, x := range d.ne {
		key := x.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		// Drop exclusions outside the interval: the bounds already
		// reject those values.
		if !d.intervalAdmits(x) {
			continue
		}
		out = append(out, Constraint{Attr: attr, Op: OpNe, Operand: x})
	}
	for _, p := range reduceImplied(d.prefixes, strings.HasPrefix) {
		out = append(out, Constraint{Attr: attr, Op: OpPrefix, Operand: event.String(p)})
	}
	for _, p := range reduceImplied(d.suffixes, strings.HasSuffix) {
		out = append(out, Constraint{Attr: attr, Op: OpSuffix, Operand: event.String(p)})
	}
	for _, p := range reduceImplied(d.contains, strings.Contains) {
		out = append(out, Constraint{Attr: attr, Op: OpContains, Operand: event.String(p)})
	}
	return out
}

// reduceImplied deduplicates the pattern list and drops patterns implied
// by a stronger one: implies(q, p) means any value satisfying pattern q
// also satisfies p (e.g. prefix "abc" implies prefix "ab").
func reduceImplied(in []string, implies func(q, p string) bool) []string {
	patterns := dedupStrings(in)
	out := patterns[:0:0]
	for i, p := range patterns {
		redundant := false
		for j, q := range patterns {
			if i == j {
				continue
			}
			if implies(q, p) && !(implies(p, q) && j > i) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, p)
		}
	}
	return out
}

// intervalAdmits reports whether the interval part of the domain admits
// v (ignoring exclusions and patterns).
func (d *domain) intervalAdmits(v event.Value) bool {
	if d.lo != nil {
		c, ok := v.Compare(d.lo.v)
		if !ok || c < 0 || (c == 0 && d.lo.strict) {
			return false
		}
	}
	if d.hi != nil {
		c, ok := v.Compare(d.hi.v)
		if !ok || c > 0 || (c == 0 && d.hi.strict) {
			return false
		}
	}
	return true
}

func dedupStrings(in []string) []string {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]bool, len(in))
	out := in[:0:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
