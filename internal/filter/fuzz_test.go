package filter

import (
	"testing"

	"eventsys/internal/event"
)

// FuzzParse ensures the parser never panics and that accepted inputs
// round-trip consistently: parsing twice yields equal subscriptions, and
// matching is deterministic.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`class = "Stock" && symbol = "Foo" && price < 10.0`,
		`a = 1 || b = 2`,
		`x any && y exists && z = ALL`,
		`s prefix "a" && s suffix "z" && s contains "m"`,
		`price >= -3.5e2`,
		`&&`,
		`class = `,
		`"lit" = x`,
		`x != true && y = false`,
		`𝓪 = 1`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	probe := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 5).Build()
	f.Fuzz(func(t *testing.T, src string) {
		sub1, err1 := Parse(src)
		sub2, err2 := Parse(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic parse of %q: %v vs %v", src, err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(sub1) != len(sub2) {
			t.Fatalf("parse of %q differs in size", src)
		}
		for i := range sub1 {
			if !sub1[i].Equal(sub2[i]) {
				t.Fatalf("parse of %q differs at filter %d", src, i)
			}
		}
		if sub1.Matches(probe, nil) != sub2.Matches(probe, nil) {
			t.Fatalf("matching of %q nondeterministic", src)
		}
		// Rendering must not panic either.
		_ = sub1.String()
	})
}
