package filter

// Schema describes the advertised attribute order of an event class,
// most general first. typing.Advertisement provides it; the indirection
// keeps this package free of upward dependencies.
type Schema interface {
	// AttrOrder returns the advertised attribute names, most general first.
	AttrOrder() []string
}

// schemaFunc adapts a plain attribute list to Schema.
type schemaFunc []string

func (s schemaFunc) AttrOrder() []string { return s }

// SchemaOf wraps an ordered attribute list as a Schema.
func SchemaOf(attrs ...string) Schema { return schemaFunc(attrs) }

// Standardize converts the filter to the standard subscription filter
// format of Section 4.4: every advertised attribute appears, in advertised
// (generality) order; attributes the subscriber left unspecified become
// wildcard attribute filters (Attr, "ALL", =). Constraints on attributes
// outside the schema are preserved after the schema-ordered ones, in their
// original order.
//
// The conversion assumes the paper's event model: every published event of
// the class carries all advertised attributes, so adding presence-only
// wildcards does not change which events match.
func (f *Filter) Standardize(schema Schema) *Filter {
	std := &Filter{Class: f.Class}
	inSchema := make(map[string]bool)
	for _, attr := range schema.AttrOrder() {
		inSchema[attr] = true
		cs := f.ConstraintsOn(attr)
		if len(cs) == 0 {
			std.Constraints = append(std.Constraints, Wild(attr))
			continue
		}
		std.Constraints = append(std.Constraints, cs...)
	}
	for _, c := range f.Constraints {
		if !inSchema[c.Attr] {
			std.Constraints = append(std.Constraints, c)
		}
	}
	return std
}

// IsStandard reports whether the filter already follows the standard
// format for the schema: one leading run of constraints per schema
// attribute, in schema order, with every schema attribute present.
func (f *Filter) IsStandard(schema Schema) bool {
	order := schema.AttrOrder()
	i := 0
	for _, attr := range order {
		cs := f.ConstraintsOn(attr)
		if len(cs) == 0 {
			return false
		}
		for range cs {
			if i >= len(f.Constraints) || f.Constraints[i].Attr != attr {
				return false
			}
			i++
		}
	}
	return true
}

// Project returns a copy of the filter keeping only the class and the
// constraints on attributes accepted by keep. This is the attribute-
// removal half of filter weakening (Section 4, Stage-2: "the least
// general set of attributes ... are removed").
func (f *Filter) Project(keep func(attr string) bool) *Filter {
	p := &Filter{Class: f.Class}
	for _, c := range f.Constraints {
		if keep(c.Attr) {
			p.Constraints = append(p.Constraints, c)
		}
	}
	return p
}
