package filter

import (
	"fmt"
	"strings"
	"unicode"

	"eventsys/internal/event"
)

// Parse parses a subscription in disjunctive normal form:
//
//	subscription := conjunction { "||" conjunction }
//	conjunction  := term { "&&" term }
//	term         := attr op literal | attr "exists" | attr "any"
//	op           := "=" | "==" | "!=" | "<" | "<=" | ">" | ">=" |
//	                "prefix" | "suffix" | "contains"
//
// "and"/"or" are accepted as synonyms of "&&"/"||". Literals are
// double-quoted strings, integers, floats, or true/false. The reserved
// attribute "class" with "=" selects the event type (with subtype
// semantics at matching time); it accepts no other operator.
//
// Examples:
//
//	class = "Stock" && symbol = "Foo" && price < 10.0
//	class = "Auction" || class = "Stock" && volume >= 1000
func Parse(src string) (Subscription, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.lex.err; err != nil {
		return nil, err
	}
	sub, err := p.parseSubscription()
	if err != nil {
		return nil, fmt.Errorf("filter: parse %q: %w", src, err)
	}
	return sub, nil
}

// ParseFilter parses a single conjunctive filter (no "||").
func ParseFilter(src string) (*Filter, error) {
	sub, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(sub) != 1 {
		return nil, fmt.Errorf("filter: %q is a disjunction of %d filters, want a single conjunction", src, len(sub))
	}
	return sub[0], nil
}

// MustParseFilter is ParseFilter for tests and static tables; it panics on
// error.
func MustParseFilter(src string) *Filter {
	f, err := ParseFilter(src)
	if err != nil {
		panic(err)
	}
	return f
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokOp  // comparison operator symbols
	tokAnd // && / and
	tokOr  // || / or
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src    string
	pos    int
	tokens []token
	err    error
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '"':
			l.lexString()
		case c == '&':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '&' {
				l.emit(tokAnd, "&&", 2)
			} else {
				l.fail("expected &&")
				return
			}
		case c == '|':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
				l.emit(tokOr, "||", 2)
			} else {
				l.fail("expected ||")
				return
			}
		case c == '=' || c == '<' || c == '>' || c == '!':
			l.lexOp()
		case c == '-' || c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			l.fail(fmt.Sprintf("unexpected character %q", c))
			return
		}
		if l.err != nil {
			return
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
}

func (l *lexer) emit(k tokenKind, text string, width int) {
	l.tokens = append(l.tokens, token{kind: k, text: text, pos: l.pos})
	l.pos += width
}

func (l *lexer) fail(msg string) {
	l.err = fmt.Errorf("filter: lex error at offset %d: %s", l.pos, msg)
}

func (l *lexer) lexString() {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			l.pos += 2
		case '"':
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: l.src[start:l.pos], pos: start})
			return
		default:
			l.pos++
		}
	}
	l.err = fmt.Errorf("filter: lex error at offset %d: unterminated string", start)
}

func (l *lexer) lexOp() {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=":
		l.pos += 2
		text := two
		if text == "==" {
			text = "="
		}
		l.tokens = append(l.tokens, token{kind: tokOp, text: text, pos: start})
		return
	}
	one := l.src[l.pos]
	if one == '=' || one == '<' || one == '>' {
		l.pos++
		l.tokens = append(l.tokens, token{kind: tokOp, text: string(one), pos: start})
		return
	}
	l.fail(fmt.Sprintf("unknown operator starting with %q", one))
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
			(c == '-' || c == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
			l.pos++
			continue
		}
		break
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	lex *lexer
	idx int
}

func (p *parser) peek() token { return p.lex.tokens[p.idx] }
func (p *parser) next() token {
	t := p.lex.tokens[p.idx]
	if t.kind != tokEOF {
		p.idx++
	}
	return t
}

func (p *parser) parseSubscription() (Subscription, error) {
	var sub Subscription
	for {
		f, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		sub = append(sub, f)
		t := p.peek()
		switch {
		case t.kind == tokOr || t.kind == tokIdent && strings.EqualFold(t.text, "or"):
			p.next()
		case t.kind == tokEOF:
			return sub, nil
		default:
			return nil, fmt.Errorf("unexpected token %q at offset %d", t.text, t.pos)
		}
	}
}

func (p *parser) parseConjunction() (*Filter, error) {
	f := &Filter{}
	for {
		if err := p.parseTerm(f); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind == tokAnd || t.kind == tokIdent && strings.EqualFold(t.text, "and") {
			p.next()
			continue
		}
		return f, nil
	}
}

var keywordOps = map[string]Op{
	"prefix":   OpPrefix,
	"suffix":   OpSuffix,
	"contains": OpContains,
}

var symbolOps = map[string]Op{
	"=":  OpEq,
	"!=": OpNe,
	"<":  OpLt,
	"<=": OpLe,
	">":  OpGt,
	">=": OpGe,
}

func (p *parser) parseTerm(f *Filter) error {
	attrTok := p.next()
	if attrTok.kind != tokIdent {
		return fmt.Errorf("expected attribute name, got %q at offset %d", attrTok.text, attrTok.pos)
	}
	attr := attrTok.text
	opTok := p.next()
	var op Op
	switch opTok.kind {
	case tokOp:
		op = symbolOps[opTok.text]
	case tokIdent:
		lower := strings.ToLower(opTok.text)
		if lower == "exists" {
			if attr == event.TypeAttr {
				return fmt.Errorf(`"class" supports only "=", got exists at offset %d`, opTok.pos)
			}
			f.Constraints = append(f.Constraints, Constraint{Attr: attr, Op: OpExists})
			return nil
		}
		if lower == "any" {
			if attr == event.TypeAttr {
				return fmt.Errorf(`"class" supports only "=", got any at offset %d`, opTok.pos)
			}
			f.Constraints = append(f.Constraints, Wild(attr))
			return nil
		}
		op = keywordOps[lower]
	}
	if op == OpInvalid {
		return fmt.Errorf("expected operator after %q, got %q at offset %d", attr, opTok.text, opTok.pos)
	}
	litTok := p.next()
	var lit event.Value
	switch litTok.kind {
	case tokString, tokNumber:
		v, err := event.ParseValue(litTok.text)
		if err != nil {
			return err
		}
		lit = v
	case tokIdent:
		switch litTok.text {
		case "true":
			lit = event.Bool(true)
		case "false":
			lit = event.Bool(false)
		case "ALL":
			if op != OpEq {
				return fmt.Errorf(`wildcard "ALL" requires "=" at offset %d`, litTok.pos)
			}
			f.Constraints = append(f.Constraints, Wild(attr))
			return nil
		default:
			return fmt.Errorf("expected literal, got %q at offset %d", litTok.text, litTok.pos)
		}
	default:
		return fmt.Errorf("expected literal after operator, got %q at offset %d", litTok.text, litTok.pos)
	}
	if attr == event.TypeAttr {
		if op != OpEq || lit.Kind() != event.KindString {
			return fmt.Errorf(`"class" constraint must be class = "TypeName" (offset %d)`, attrTok.pos)
		}
		if f.Class != "" && f.Class != lit.Str() {
			return fmt.Errorf("conflicting class constraints %q and %q", f.Class, lit.Str())
		}
		f.Class = lit.Str()
		return nil
	}
	f.Constraints = append(f.Constraints, Constraint{Attr: attr, Op: op, Operand: lit})
	return nil
}
