package filter

import (
	"testing"

	"eventsys/internal/event"
)

// e1, e2 are the stock-quote events of Example 1.
func paperEvents() (*event.Event, *event.Event) {
	e1 := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 10.0).Int("volume", 32300).Build()
	e2 := event.NewBuilder("Stock").Str("symbol", "Bar").Float("price", 15.0).Int("volume", 25600).Build()
	return e1, e2
}

// paperFilter is f of Example 1: (symbol,"Foo",=) (price,5.0,>).
func paperFilter() *Filter {
	return New("",
		C("symbol", OpEq, event.String("Foo")),
		C("price", OpGt, event.Float(5.0)),
	)
}

func TestExample1(t *testing.T) {
	e1, e2 := paperEvents()
	f := paperFilter()
	if !f.Matches(e1, nil) {
		t.Error("f(e1) = false, paper says true")
	}
	if f.Matches(e2, nil) {
		t.Error("f(e2) = true, paper says false")
	}
}

func TestConstraintMatrix(t *testing.T) {
	e := event.NewBuilder("T").
		Str("s", "hello world").
		Int("i", 10).
		Float("f", 2.5).
		Bool("b", true).
		Build()
	tests := []struct {
		c    Constraint
		want bool
	}{
		{C("s", OpEq, event.String("hello world")), true},
		{C("s", OpEq, event.String("nope")), false},
		{C("s", OpNe, event.String("nope")), true},
		{C("s", OpNe, event.String("hello world")), false},
		{C("s", OpPrefix, event.String("hello")), true},
		{C("s", OpPrefix, event.String("world")), false},
		{C("s", OpSuffix, event.String("world")), true},
		{C("s", OpSuffix, event.String("hello")), false},
		{C("s", OpContains, event.String("lo wo")), true},
		{C("s", OpContains, event.String("xyz")), false},
		{C("s", OpLt, event.String("zzz")), true},
		{C("s", OpGt, event.String("zzz")), false},
		{C("i", OpEq, event.Int(10)), true},
		{C("i", OpEq, event.Float(10)), true},
		{C("i", OpLt, event.Int(11)), true},
		{C("i", OpLt, event.Int(10)), false},
		{C("i", OpLe, event.Int(10)), true},
		{C("i", OpGt, event.Int(9)), true},
		{C("i", OpGe, event.Int(10)), true},
		{C("i", OpGe, event.Int(11)), false},
		{C("f", OpGt, event.Float(2.0)), true},
		{C("f", OpLt, event.Int(3)), true},
		{C("b", OpEq, event.Bool(true)), true},
		{C("b", OpNe, event.Bool(false)), true},
		// Cross-kind comparisons never match.
		{C("s", OpEq, event.Int(10)), false},
		{C("i", OpEq, event.String("10")), false},
		{C("i", OpNe, event.String("10")), true}, // Ne is pure negated equality
		{C("i", OpPrefix, event.String("1")), false},
		// Missing attribute never matches, even for exists.
		{C("missing", OpExists, event.Value{}), false},
		{C("missing", OpAny, event.Value{}), false},
		// Present attribute satisfies exists and wildcard.
		{C("s", OpExists, event.Value{}), true},
		{Wild("i"), true},
	}
	for _, tt := range tests {
		t.Run(tt.c.String(), func(t *testing.T) {
			got := (&Filter{Constraints: []Constraint{tt.c}}).Matches(e, nil)
			if got != tt.want {
				t.Errorf("match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClassMatching(t *testing.T) {
	e := event.NewBuilder("Stock").Str("symbol", "Foo").Build()
	conf := fakeConformance{"Stock": {"Quote", RootType}}
	tests := []struct {
		class string
		want  bool
	}{
		{"", true},
		{RootType, true},
		{"Stock", true},
		{"Quote", true}, // supertype via conformance
		{"Auction", false},
	}
	for _, tt := range tests {
		f := New(tt.class)
		if got := f.Matches(e, conf); got != tt.want {
			t.Errorf("class %q match = %v, want %v", tt.class, got, tt.want)
		}
	}
	// Without conformance, exact matching applies.
	if New("Quote").Matches(e, nil) {
		t.Error("exact matching should reject supertype")
	}
	if !New("Stock").Matches(e, nil) {
		t.Error("exact matching should accept same type")
	}
}

// fakeConformance maps a type to its proper supertypes.
type fakeConformance map[string][]string

func (f fakeConformance) Conforms(sub, super string) bool {
	if sub == super || super == RootType {
		return true
	}
	for _, s := range f[sub] {
		if s == super {
			return true
		}
	}
	return false
}

func TestZeroFilterMatchesAll(t *testing.T) {
	e1, e2 := paperEvents()
	var f Filter
	if !f.Matches(e1, nil) || !f.Matches(e2, nil) {
		t.Error("zero filter must match everything (f_T)")
	}
	var nilF *Filter
	if !nilF.Matches(e1, nil) {
		t.Error("nil filter must match everything")
	}
}

func TestWildcardAttrs(t *testing.T) {
	f := New("Stock",
		Wild("symbol"),
		C("price", OpLt, event.Float(100)),
		Wild("volume"),
	)
	got := f.WildcardAttrs()
	if len(got) != 2 || got[0] != "symbol" || got[1] != "volume" {
		t.Fatalf("WildcardAttrs = %v", got)
	}
	if !f.HasWildcards() {
		t.Error("HasWildcards = false")
	}
	// An attribute with both a wildcard and a real constraint is not wild.
	g := New("", Wild("price"), C("price", OpLt, event.Float(1)))
	if len(g.WildcardAttrs()) != 0 {
		t.Errorf("mixed constraints should not be wildcard: %v", g.WildcardAttrs())
	}
}

func TestStandardize(t *testing.T) {
	schema := SchemaOf("year", "conference", "author", "title")
	f := New("Biblio", C("author", OpEq, event.String("Knuth")))
	std := f.Standardize(schema)
	attrs := std.Attrs()
	want := []string{"year", "conference", "author", "title"}
	for i := range want {
		if attrs[i] != want[i] {
			t.Fatalf("standard attrs = %v, want %v", attrs, want)
		}
	}
	if !std.IsStandard(schema) {
		t.Error("standardized filter not recognized as standard")
	}
	if f.IsStandard(schema) {
		t.Error("partial filter should not be standard")
	}
	wild := std.WildcardAttrs()
	if len(wild) != 3 {
		t.Errorf("wildcards = %v, want year/conference/title", wild)
	}
	// Standardization preserves matching on full-schema events.
	e := event.NewBuilder("Biblio").
		Int("year", 2002).Str("conference", "ICDCS").Str("author", "Knuth").Str("title", "X").Build()
	if f.Matches(e, nil) != std.Matches(e, nil) {
		t.Error("standardization changed matching")
	}
	// Off-schema constraints survive standardization.
	g := New("", C("extra", OpEq, event.Int(1)), C("year", OpEq, event.Int(2002)))
	stdG := g.Standardize(schema)
	if len(stdG.ConstraintsOn("extra")) != 1 {
		t.Error("off-schema constraint dropped")
	}
}

func TestSubscriptionDisjunction(t *testing.T) {
	e1, e2 := paperEvents()
	sub := Subscription{
		New("", C("symbol", OpEq, event.String("Bar"))),
		New("", C("price", OpLt, event.Float(11))),
	}
	if !sub.Matches(e1, nil) { // price 10 < 11
		t.Error("disjunction should match e1 via second filter")
	}
	if !sub.Matches(e2, nil) { // symbol Bar
		t.Error("disjunction should match e2 via first filter")
	}
	empty := Subscription{}
	if empty.Matches(e1, nil) {
		t.Error("empty subscription matches nothing")
	}
}

func TestFilterEqualAndClone(t *testing.T) {
	f := paperFilter()
	g := f.Clone()
	if !f.Equal(g) {
		t.Error("clone not equal")
	}
	g.Constraints[1].Operand = event.Float(6)
	if f.Equal(g) {
		t.Error("mutated clone still equal")
	}
	if v := f.Constraints[1].Operand; !v.Equal(event.Float(5)) {
		t.Errorf("original mutated: %v", v)
	}
	// Operand kind matters for equality (Int(5) vs Float(5)).
	a := New("", C("x", OpEq, event.Int(5)))
	b := New("", C("x", OpEq, event.Float(5)))
	if a.Equal(b) {
		t.Error("Int(5) and Float(5) operands should not be Equal filters")
	}
}

func TestFilterString(t *testing.T) {
	f := New("Stock", C("symbol", OpEq, event.String("Foo")), C("price", OpGt, event.Float(5)))
	want := `(class, "Stock", =) (symbol, "Foo", =) (price, 5, >)`
	if got := f.String(); got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
	if got := (&Filter{}).String(); got != "(f_T)" {
		t.Errorf("zero filter String = %s", got)
	}
	if got := Wild("x").String(); got != "(x, ALL, =)" {
		t.Errorf("wildcard String = %s", got)
	}
}

func TestSatisfiable(t *testing.T) {
	tests := []struct {
		name string
		f    *Filter
		want bool
	}{
		{"plain", paperFilter(), true},
		{"empty", &Filter{}, true},
		{"eq conflict", New("", C("x", OpEq, event.Int(1)), C("x", OpEq, event.Int(2))), false},
		{"interval empty", New("", C("x", OpGt, event.Int(5)), C("x", OpLt, event.Int(5))), false},
		{"interval point ok", New("", C("x", OpGe, event.Int(5)), C("x", OpLe, event.Int(5))), true},
		{"eq outside interval", New("", C("x", OpEq, event.Int(9)), C("x", OpLt, event.Int(5))), false},
		{"eq excluded", New("", C("x", OpEq, event.Int(9)), C("x", OpNe, event.Int(9))), false},
		{"family conflict", New("", C("x", OpEq, event.Int(9)), C("x", OpEq, event.String("a"))), false},
		{"pattern on number", New("", C("x", OpLt, event.Int(5)), C("x", OpPrefix, event.String("a"))), false},
		{"eq fails prefix", New("", C("x", OpEq, event.String("b")), C("x", OpPrefix, event.String("a"))), false},
		{"eq meets prefix", New("", C("x", OpEq, event.String("ab")), C("x", OpPrefix, event.String("a"))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Satisfiable(); got != tt.want {
				t.Errorf("Satisfiable = %v, want %v", got, tt.want)
			}
		})
	}
}
