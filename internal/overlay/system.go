package overlay

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
	"eventsys/internal/obs"
	"eventsys/internal/routing"
	"eventsys/internal/store"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
)

// Config parameterizes an overlay System.
type Config struct {
	// Fanouts lists broker counts per stage from the top down (the paper
	// evaluates {1, 10, 100}). Required.
	Fanouts []int
	// TTL is the lease renewal period (Section 4.3); 0 disables expiry.
	TTL time.Duration
	// AutoMaintain runs a background renewal/sweep loop every TTL/2.
	// Ignored when TTL is 0. Without it, call Maintain explicitly.
	AutoMaintain bool
	// Registry resolves event type conformance (type-based subscribing);
	// nil means exact type names.
	Registry *typing.Registry
	// Engine selects the matching engine at brokers (naive, counting,
	// sharded, or indexed). The zero value is the naive Figure 6 table.
	Engine index.Kind
	// Shards is the shard count of the sharded engine (Engine ==
	// index.KindSharded); 0 means GOMAXPROCS.
	Shards int
	// MaxBatch caps how many queued events a broker actor coalesces into
	// one matching pass (default 64; 1 disables coalescing). Larger
	// batches amortize per-event actor overhead and give the sharded
	// engine more parallel work per pass, at the cost of burstier
	// downstream delivery.
	MaxBatch int
	// InboxSize buffers node inboxes (default 256).
	InboxSize int
	// DeliveryBuffer buffers each subscriber's channel (default 64).
	DeliveryBuffer int
	// FlowPolicy selects the slow-consumer policy applied to event
	// traffic at every bounded queue in the overlay: actor mailboxes and
	// subscriber delivery queues. The default, flow.Block, is lossless
	// end-to-end backpressure — a slow subscriber stalls its broker,
	// full mailboxes stall their upstreams, and a saturated root stalls
	// Publish itself. flow.DropNewest / flow.DropOldest shed events at
	// the saturated queue (counted in NodeStats.Dropped). With
	// flow.SpillToStore, a saturated delivery queue diverts overflow to
	// the durable store (durable subscriptions with a Store) or the
	// bounded in-memory backlog, replaying in order once the subscriber
	// catches up; mailboxes — where events are not yet matched to a
	// subscriber — treat SpillToStore as Block. Control messages
	// (placement, leases, barriers) are never dropped by any policy.
	FlowPolicy flow.Policy
	// FlowWindow overrides both InboxSize and DeliveryBuffer when > 0:
	// one knob bounding every queue on the delivery path.
	FlowWindow int
	// DurableBuffer bounds the per-subscriber backlog stored while a
	// durable subscription is detached (default 4096; oldest events are
	// evicted beyond it). Ignored when Store is set: the store's own
	// retention policy bounds the persisted backlog instead.
	DurableBuffer int
	// Store, when non-nil, persists durable-subscription backlogs to disk
	// instead of process memory: events arriving while a durable handle
	// is detached are appended to the store, survive a process restart,
	// and replay in order on Resume. The caller owns the store and closes
	// it after the overlay shuts down.
	Store *store.Store
	// Seed drives placement randomness deterministically.
	Seed uint64
	// Tracer, when non-nil and enabled, records hop-level latency:
	// Publish stamps the event, and the match, delivery-queue and
	// handler-handoff stages record elapsed-since-publish histograms.
	// Nil is a no-op.
	Tracer *obs.Tracer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.FlowWindow > 0 {
		out.InboxSize = out.FlowWindow
		out.DeliveryBuffer = out.FlowWindow
	}
	if out.InboxSize <= 0 {
		out.InboxSize = 256
	}
	if out.DeliveryBuffer <= 0 {
		out.DeliveryBuffer = 64
	}
	if out.DurableBuffer <= 0 {
		out.DurableBuffer = 4096
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = DefaultMaxBatch
	}
	return out
}

// DefaultMaxBatch is the default cap on events coalesced per matching
// pass.
const DefaultMaxBatch = 64

// System is a running overlay. Create with New, stop with Close.
type System struct {
	cfg       Config
	conf      filter.Conformance
	ads       *typing.AdvertisementSet
	weakener  *weaken.Weakener
	collector *metrics.Collector

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	actors map[routing.NodeID]*actor
	root   *actor

	mu     sync.RWMutex
	subs   map[routing.NodeID]*Handle
	closed bool

	pubSeq atomic.Uint64
}

// actor owns one routing.Node; only its goroutine touches the core.
type actor struct {
	sys   *System
	node  *routing.Node
	inbox *flow.Queue[message]
	rng   *rand.Rand
	// views is the reusable batch-matching scratch (core-owned).
	views []event.View
}

// mailboxPolicy maps the configured flow policy onto inlet queues:
// mailboxes hold events that are not yet matched to a subscriber, so
// SpillToStore (a per-subscriber concept) degrades to lossless Block.
func mailboxPolicy(p flow.Policy) flow.Policy {
	if p == flow.SpillToStore {
		return flow.Block
	}
	return p
}

// evictableMessage marks the mailbox items a drop policy may discard:
// published events only — placement, lease, and barrier traffic always
// survives saturation.
func evictableMessage(m message) bool {
	switch m.(type) {
	case pubMsg, pubBatchMsg:
		return true
	}
	return false
}

// eventsIn counts the events a mailbox message carries (drop accounting
// counts events, not envelopes).
func eventsIn(m message) uint64 {
	switch msg := m.(type) {
	case pubMsg:
		return 1
	case pubBatchMsg:
		return uint64(len(msg.evs))
	}
	return 0
}

// New builds and starts the overlay.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Fanouts) == 0 {
		return nil, fmt.Errorf("overlay: Fanouts required")
	}
	for i, n := range cfg.Fanouts {
		if n <= 0 {
			return nil, fmt.Errorf("overlay: Fanouts[%d] = %d, want > 0", i, n)
		}
	}
	var conf filter.Conformance = filter.ExactTypes{}
	if cfg.Registry != nil {
		conf = cfg.Registry
	}
	s := &System{
		cfg:       cfg,
		conf:      conf,
		ads:       &typing.AdvertisementSet{},
		collector: &metrics.Collector{},
		actors:    make(map[routing.NodeID]*actor),
		subs:      make(map[routing.NodeID]*Handle),
	}
	s.weakener = weaken.New(s.ads, conf)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.buildActors()
	for _, a := range s.actors {
		s.wg.Add(1)
		go a.run()
	}
	if cfg.TTL > 0 && cfg.AutoMaintain {
		s.wg.Add(1)
		go s.maintainLoop()
	}
	return s, nil
}

// buildActors instantiates the broker tree (same layout as the
// simulator: children spread evenly under the level above).
func (s *System) buildActors() {
	stages := len(s.cfg.Fanouts)
	ids := make([][]routing.NodeID, stages)
	for level, count := range s.cfg.Fanouts {
		stage := stages - level
		ids[level] = make([]routing.NodeID, count)
		for i := 0; i < count; i++ {
			ids[level][i] = routing.NodeID(fmt.Sprintf("N%d.%d", stage, i+1))
		}
	}
	seq := uint64(0)
	for level, count := range s.cfg.Fanouts {
		stage := stages - level
		for i := 0; i < count; i++ {
			id := ids[level][i]
			var parent routing.NodeID
			if level > 0 {
				parent = ids[level-1][i*len(ids[level-1])/count]
			}
			var children []routing.NodeID
			if level+1 < stages {
				below := len(ids[level+1])
				for j := 0; j < below; j++ {
					if j*count/below == i {
						children = append(children, ids[level+1][j])
					}
				}
			}
			node := routing.NewNode(routing.Config{
				ID: id, Stage: stage, Parent: parent, Children: children,
				TTL: s.cfg.TTL, Conf: s.conf, Weakener: s.weakener,
				Counters: s.collector.Counters(string(id), stage),
				Engine: index.Config{
					Kind:   s.cfg.Engine,
					Conf:   s.conf,
					Shards: s.cfg.Shards,
				},
			})
			seq++
			counters := s.collector.Counters(string(id), stage)
			a := &actor{
				sys:  s,
				node: node,
				inbox: flow.New(flow.Config[message]{
					Window:    s.cfg.InboxSize,
					Policy:    mailboxPolicy(s.cfg.FlowPolicy),
					Evictable: evictableMessage,
					OnDrop:    func(m message) { counters.AddDroppedFor(metrics.DropQueueFull, eventsIn(m)) },
					OnStall:   func() { counters.AddStalled(1) },
					Stop:      s.ctx.Done(),
				}),
				rng: rand.New(rand.NewPCG(s.cfg.Seed, seq)),
			}
			s.actors[id] = a
			if parent == "" && stage == stages {
				s.root = a
			}
		}
	}
}

// send delivers a message to an actor, giving up when the system stops.
// Event messages go through the mailbox's flow policy (Block waits,
// drop policies shed — counted at the receiving node); control messages
// always enqueue, waiting for space if they must.
func (s *System) send(to routing.NodeID, m message) error {
	a, ok := s.actors[to]
	if !ok {
		return fmt.Errorf("overlay: unknown node %q", to)
	}
	if s.ctx.Err() != nil {
		return fmt.Errorf("overlay: system closed")
	}
	var out flow.Outcome
	switch m.(type) {
	case pubMsg, pubBatchMsg:
		out = a.inbox.Push(m)
	default:
		out = a.inbox.PushWait(m)
	}
	if out == flow.Stopped {
		return fmt.Errorf("overlay: system closed")
	}
	return nil
}

// run is the actor loop: serialize all access to the routing core.
// Publishes queued in the mailbox are drained into batches (capped at
// Config.MaxBatch) and matched in one table pass; every other message
// kind is handled one at a time, in mailbox order, so the FIFO reasoning
// behind Flush still holds.
func (a *actor) run() {
	defer a.sys.wg.Done()
	var batch []*event.Event
	for {
		m, ok := a.inbox.Pop() // aborts on system shutdown
		if !ok {
			return
		}
		batch = a.dispatch(m, batch[:0])
	}
}

// dispatch handles one dequeued message, opportunistically coalescing a
// run of queued publishes into one matching batch. It returns the batch
// slice (emptied) so run can reuse its backing array.
func (a *actor) dispatch(m message, batch []*event.Event) []*event.Event {
	for {
		switch msg := m.(type) {
		case pubMsg:
			batch = append(batch, msg.ev)
		case pubBatchMsg:
			batch = append(batch, msg.evs...)
		default:
			// A control message interleaved with publishes: flush what
			// was coalesced so far, then handle it — mailbox order holds.
			a.flushBatch(batch)
			batch = batch[:0]
			a.handle(m)
			return batch
		}
		if len(batch) >= a.sys.cfg.MaxBatch {
			a.flushBatch(batch)
			batch = batch[:0]
		}
		var ok bool
		if m, ok = a.inbox.TryPop(); !ok {
			a.flushBatch(batch)
			return batch[:0]
		}
	}
}

// flushBatch matches a coalesced batch in one table pass and fans the
// results out: per-destination event runs forward to child actors as one
// pubBatchMsg (order preserved), and deliveries to local subscribers
// happen in event order — per-subscriber FIFO is never reordered.
func (a *actor) flushBatch(events []*event.Event) {
	if len(events) == 0 {
		return
	}
	a.views = a.views[:0]
	for _, ev := range events {
		a.views = append(a.views, ev)
	}
	routes := a.node.HandleEventBatch(a.views)
	if t := a.sys.cfg.Tracer; t.Enabled() {
		for _, ev := range events {
			t.Observe(obs.HopMatch, ev.Stamp())
		}
	}
	if len(events) == 1 {
		// Common un-coalesced case: skip the grouping allocations.
		for _, id := range routes[0] {
			if _, ok := a.sys.actors[id]; ok {
				_ = a.sys.send(id, pubMsg{ev: events[0]})
				continue
			}
			a.sys.deliver(id, events[0])
		}
		return
	}
	var order []routing.NodeID
	byDest := make(map[routing.NodeID][]*event.Event)
	for i, ids := range routes {
		for _, id := range ids {
			if _, ok := byDest[id]; !ok {
				order = append(order, id)
			}
			byDest[id] = append(byDest[id], events[i])
		}
	}
	for _, id := range order {
		evs := byDest[id]
		if _, ok := a.sys.actors[id]; ok {
			if len(evs) == 1 {
				_ = a.sys.send(id, pubMsg{ev: evs[0]})
			} else {
				_ = a.sys.send(id, pubBatchMsg{evs: evs})
			}
			continue
		}
		for _, ev := range evs {
			a.sys.deliver(id, ev)
		}
	}
}

func (a *actor) handle(m message) {
	switch msg := m.(type) {
	case subMsg:
		res := a.node.HandleSubscribe(msg.f, msg.sid, a.rng, time.Now())
		select {
		case msg.reply <- res:
		case <-a.sys.ctx.Done():
		}
	case reqInsertMsg:
		up := a.node.HandleReqInsert(msg.f, msg.child, time.Now())
		if a.node.IsRoot() {
			up = nil
		}
		select {
		case msg.reply <- up:
		case <-a.sys.ctx.Done():
		}
	case renewMsg:
		a.node.HandleRenew(msg.f, msg.id, msg.now)
	case unsubMsg:
		a.node.HandleUnsubscribe(msg.f, msg.id)
	case renewTickMsg:
		if !a.node.IsRoot() {
			for _, f := range a.node.RenewalsDue() {
				_ = a.sys.send(a.node.Parent(), renewMsg{f: f, id: a.node.ID(), now: msg.now})
			}
		}
	case sweepMsg:
		removed := a.node.Sweep(msg.now)
		// Drop durable cursors of expired subscribers that no longer
		// have a live handle — an abandoned subscription must not pin
		// stored segments forever. Live handles keep their cursors (the
		// subscriber may still Resume; Maintain renews it).
		if st := a.sys.cfg.Store; st != nil && len(removed) > 0 {
			var gone []routing.NodeID
			a.sys.mu.RLock()
			for _, id := range removed {
				if _, live := a.sys.subs[id]; !live {
					gone = append(gone, id)
				}
			}
			a.sys.mu.RUnlock()
			for _, id := range gone {
				st.Forget(string(id))
			}
		}
	case flushMsg:
		for _, child := range a.node.Children() {
			fm := flushMsg{ack: msg.ack}
			_ = a.sys.send(child, fm)
		}
		select {
		case msg.ack <- struct{}{}:
		case <-a.sys.ctx.Done():
		}
	}
}

// deliver hands an event to a subscriber runtime under its flow policy:
// Block waits for queue space (lossless backpressure into the broker
// actor), the drop policies shed, and SpillToStore diverts to the
// subscriber's backlog for in-order replay.
func (s *System) deliver(id routing.NodeID, ev *event.Event) {
	s.mu.RLock()
	h := s.subs[id]
	s.mu.RUnlock()
	if h == nil {
		return // unsubscribed; residual routing state will expire
	}
	h.send(ev)
}

// Advertise registers an event class advertisement system-wide. In this
// in-process runtime the advertisement set is shared by all brokers, so
// one call makes the schema (and its attribute-stage association) visible
// everywhere — modeling the paper's advertisement dissemination.
func (s *System) Advertise(ad *typing.Advertisement) error {
	want := len(s.cfg.Fanouts) + 1
	if ad.Stages() != want {
		return fmt.Errorf("overlay: advertisement for %q covers %d stages, hierarchy needs %d",
			ad.Class, ad.Stages(), want)
	}
	return s.ads.Put(ad)
}

// Publish injects an event at the root (the top-most stage, Section 4).
// The event is stamped with a system-wide sequence ID.
func (s *System) Publish(e *event.Event) error {
	if e == nil {
		return fmt.Errorf("overlay: nil event")
	}
	e.ID = s.pubSeq.Add(1)
	if s.cfg.Tracer.Enabled() {
		e.SetStamp(obs.Nanotime())
	}
	return s.send(s.root.node.ID(), pubMsg{ev: e})
}

// Flush blocks until every event published before the call has been
// processed by every broker and delivered to subscriber handlers.
func (s *System) Flush() {
	// Phase 1: tree barrier over brokers.
	ack := make(chan struct{}, len(s.actors))
	if err := s.send(s.root.node.ID(), flushMsg{ack: ack}); err != nil {
		return
	}
	for i := 0; i < len(s.actors); i++ {
		select {
		case <-ack:
		case <-s.ctx.Done():
			return
		}
	}
	// Phase 2: barrier through each subscriber's delivery queue.
	s.mu.RLock()
	handles := make([]*Handle, 0, len(s.subs))
	for _, h := range s.subs {
		handles = append(handles, h)
	}
	s.mu.RUnlock()
	for _, h := range handles {
		done := make(chan struct{})
		if h.q.PushWait(delivery{flush: done}) != flow.Enqueued {
			continue // subscriber stopped (or system closing)
		}
		select {
		case <-done:
		case <-h.done:
		case <-s.ctx.Done():
			return
		}
	}
}

// Maintain performs one synchronous renewal round followed by a sweep at
// the given time. Tests drive it with a fake clock; AutoMaintain drives
// it with the wall clock.
func (s *System) Maintain(now time.Time) {
	// Subscriber renewals first, then broker-to-parent renewals.
	s.mu.RLock()
	handles := make([]*Handle, 0, len(s.subs))
	for _, h := range s.subs {
		handles = append(handles, h)
	}
	s.mu.RUnlock()
	for _, h := range handles {
		node, stored := h.renewTarget()
		if node != "" {
			_ = s.send(node, renewMsg{f: stored, id: h.id, now: now})
		}
	}
	for id := range s.actors {
		_ = s.send(id, renewTickMsg{now: now})
	}
	s.Flush()
	for id := range s.actors {
		_ = s.send(id, sweepMsg{now: now})
	}
	s.Flush()
}

func (s *System) maintainLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.TTL / 2)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-ticker.C:
			s.Maintain(now)
		}
	}
}

// Stats snapshots every broker's and subscriber's counters.
func (s *System) Stats() []metrics.NodeStats { return s.collector.Snapshot() }

// FlowStats snapshots every bounded queue on the delivery path — one
// entry per actor mailbox ("mailbox/<node>") and one per subscriber
// delivery queue ("delivery/<id>") — ordered by name.
func (s *System) FlowStats() []flow.Snapshot {
	out := make([]flow.Snapshot, 0, len(s.actors))
	for id, a := range s.actors {
		out = append(out, a.inbox.Snapshot("mailbox/"+string(id)))
	}
	s.mu.RLock()
	for id, h := range s.subs {
		out = append(out, h.q.Snapshot("delivery/"+string(id)))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Conformance exposes the system's type conformance (for subscriber-side
// perfect filtering).
func (s *System) Conformance() filter.Conformance { return s.conf }

// Close stops all goroutines and waits for them. Safe to call twice.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	handles := make([]*Handle, 0, len(s.subs))
	for _, h := range s.subs {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	for _, h := range handles {
		h.stop()
	}
}
