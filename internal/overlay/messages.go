package overlay

import (
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/routing"
)

// message is the sum type processed by node actors.
type message interface{ isMessage() }

// pubMsg carries a published event down the tree. The full event travels
// with the envelope; brokers match on it directly (equivalent to matching
// the stage projection, Proposition 2) while subscribers need the full
// attributes and payload for perfect filtering and object decoding.
type pubMsg struct {
	ev *event.Event
}

// pubBatchMsg carries a coalesced run of published events in mailbox
// order. Actors produce it when forwarding a matched batch to a child:
// the child appends the whole run to its own next batch, so coalescing
// survives each hop down the tree. Order within the slice is exactly the
// order the events were dequeued upstream — per-subscriber FIFO depends
// on it.
type pubBatchMsg struct {
	evs []*event.Event
}

// subMsg runs one step of the Figure 5 placement protocol.
type subMsg struct {
	f     *filter.Filter
	sid   routing.NodeID
	reply chan routing.SubscribeResult
}

// reqInsertMsg propagates a weakened filter from child to parent. The
// reply carries the further-weakened filter the parent wants propagated
// (nil when propagation stops), letting the placement walk drive the
// upward chain synchronously — a subscription is fully routable the
// moment Subscribe returns.
type reqInsertMsg struct {
	f     *filter.Filter
	child routing.NodeID
	reply chan *filter.Filter
}

// renewMsg refreshes the lease of (f, id) as of now. Carrying the time
// in the message keeps renewals and sweeps on one clock, so tests can
// drive maintenance with a synthetic clock.
type renewMsg struct {
	f   *filter.Filter
	id  routing.NodeID
	now time.Time
}

// unsubMsg removes the (f, id) association immediately.
type unsubMsg struct {
	f  *filter.Filter
	id routing.NodeID
}

// renewTickMsg makes a node renew its own filters with its parent as of
// now.
type renewTickMsg struct {
	now time.Time
}

// sweepMsg expires stale leases as of now.
type sweepMsg struct {
	now time.Time
}

// flushMsg implements the tree barrier: a node forwards the flush to all
// broker children and acknowledges. Because inboxes are FIFO and events
// only flow parent-to-child, every event enqueued before the flush is
// processed before the acknowledgment.
type flushMsg struct {
	ack chan struct{}
}

func (pubMsg) isMessage()       {}
func (pubBatchMsg) isMessage()  {}
func (subMsg) isMessage()       {}
func (reqInsertMsg) isMessage() {}
func (renewMsg) isMessage()     {}
func (unsubMsg) isMessage()     {}
func (renewTickMsg) isMessage() {}
func (sweepMsg) isMessage()     {}
func (flushMsg) isMessage()     {}

// delivery is the unit sent to subscriber runtimes.
type delivery struct {
	ev *event.Event
	// flush, when non-nil, is a barrier token instead of an event.
	flush chan struct{}
	// resume, when true, is a control token making the runtime drain its
	// durable backlog and go live again (FIFO order preserved: events
	// queued between Detach and Resume sit in the backlog ahead of it).
	resume bool
	// drain, when true, is a best-effort wake-up after a SpillToStore
	// overflow: the runtime checks for a pending spill backlog once the
	// queued (older) events are delivered. Losing one is harmless — the
	// runtime re-checks whenever its queue runs empty.
	drain bool
}
