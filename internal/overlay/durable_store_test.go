package overlay

import (
	"sync"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/store"
)

// openStore opens a store at dir that outlives the overlay (closed by
// cleanup, like the facade does after overlay shutdown).
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestDurableStorePersistsDetachedBacklog(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	sys := newStockSystem(t, Config{Seed: 25, Store: st})
	h, err := sys.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := sys.Publish(stockEvent("A", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	if h.Backlog() != 4 {
		t.Fatalf("backlog = %d, want 4", h.Backlog())
	}
	// The backlog lives in the store, not the handle.
	if got := st.Pending("d1"); got != 4 {
		t.Fatalf("store pending = %d, want 4", got)
	}

	var got []uint64
	var mu sync.Mutex
	if err := h.Resume(func(e *event.Event) {
		mu.Lock()
		got = append(got, e.ID)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 4 {
		t.Fatalf("resumed deliveries = %v, want 4", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated: %v", got)
		}
	}
	if st.Pending("d1") != 0 {
		t.Fatalf("store pending after resume = %d", st.Pending("d1"))
	}
}

// TestDroppedCounterSurfacesInStats: in-memory backlog evictions count
// as drops in the per-node Stats snapshot (the durable store has no such
// evictions short of retention pressure).
func TestDroppedCounterSurfacesInStats(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 27, DurableBuffer: 3})
	h, err := sys.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.Publish(stockEvent("A", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	var found bool
	for _, st := range sys.Stats() {
		if st.NodeID == "d1" {
			found = true
			if st.Dropped != 7 {
				t.Fatalf("Dropped = %d, want 7", st.Dropped)
			}
		}
	}
	if !found {
		t.Fatal("no stats entry for d1")
	}
}

// TestDurableStoreRecoversAcrossOverlayRestart is the overlay-level
// restart story: a second overlay on the same store sees the first one's
// backlog and starts the re-subscription detached.
func TestDurableStoreRecoversAcrossOverlayRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys := newStockSystem(t, Config{Seed: 26, Store: st})
	h, err := sys.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sys.Publish(stockEvent("A", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	sys.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	sys2 := newStockSystem(t, Config{Seed: 26, Store: st2})
	h2, err := sys2.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Backlog() != 3 {
		t.Fatalf("recovered backlog = %d, want 3", h2.Backlog())
	}
	var count int
	var mu sync.Mutex
	if err := h2.Resume(func(*event.Event) {
		mu.Lock()
		count++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	sys2.Flush()
	mu.Lock()
	defer mu.Unlock()
	if count != 3 {
		t.Fatalf("replayed %d, want 3", count)
	}
}
