// Package overlay is the concurrent in-process runtime of the multi-stage
// event system (Section 4's architecture on goroutines and channels):
// every broker node runs as an actor owning a routing.Node core,
// connected to its hierarchy neighbors by channels. Publishers inject
// events at the root; events cascade down stage by stage, filtered with
// progressively stronger (less weakened) filters; subscriber runtimes
// apply the original subscription — and any stateful application
// predicate — end to end (Figure 3).
//
// Concurrency and ownership invariants:
//
//   - One inbox per node — a flow.Queue — drained by exactly one
//     goroutine, so the routing core needs no locks. Only that
//     goroutine ever touches its routing.Node.
//   - Actors drain queued publishes into batches (capped at
//     Config.MaxBatch) and match each batch in one table pass; batches
//     forward to child actors as a unit, so coalescing survives each hop
//     down the tree. Control messages are handled singly, in mailbox
//     order — the FIFO reasoning behind Flush's tree barrier is
//     unaffected by batching.
//   - Per-subscriber delivery order equals publish order: batches
//     preserve mailbox order, per-destination grouping preserves
//     intra-batch order, and each subscriber's buffered channel is
//     drained by one dedicated goroutine. This holds for every engine
//     kind and shard count.
//   - Inter-node sends abort on the system context, making shutdown
//     deadlock-free. Saturation follows Config.FlowPolicy at every
//     bounded queue (mailboxes, delivery queues): under flow.Block a
//     slow subscriber backpressures its stage-1 broker — and
//     transitively the publisher — rather than dropping events; the
//     drop policies shed (counted), and flow.SpillToStore diverts
//     delivery overflow to the subscriber's backlog for in-order
//     replay. Control messages are exempt from every policy.
//   - The durable store (Config.Store) is owned by the caller; the
//     overlay only appends/replays through its own handle goroutines.
package overlay
