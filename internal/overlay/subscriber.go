package overlay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/metrics"
	"eventsys/internal/obs"
	"eventsys/internal/routing"
)

// Handler consumes delivered events at a subscriber runtime. Handlers run
// on the subscriber's own goroutine; a slow handler backpressures its
// stage-1 broker but never loses events.
//
// The delivered event is shared: every local subscriber matching the
// same publish receives the same immutable *event.Event (and a durable
// replay materializes each stored record once, shared the same way) —
// there is no per-subscriber clone on the delivery path. Handlers must
// treat it as read-only.
type Handler func(*event.Event)

// Handle is a live subscription: the subscriber's identity, its original
// filter (applied end-to-end), the broker that accepted it, and the
// delivery pipeline.
//
// A durable handle (SubscribeDurable) may Detach: the subscription stays
// registered in the hierarchy and its broker keeps forwarding, while the
// runtime buffers events in a bounded backlog — the paper's "storing
// events for temporarily disconnected subscribers with durable
// subscriptions" (Section 2.1). Resume drains the backlog in FIFO order
// and goes live again.
//
// With a Config.Store, the backlog is persisted: detached-period events
// are appended to the durable store and survive a process restart. A
// SubscribeDurable whose ID has a stored backlog starts detached, so the
// recovered events replay (in order, before any live event) on the next
// Resume.
type Handle struct {
	id       routing.NodeID
	original filter.Subscription
	sys      *System
	durable  bool

	mu      sync.Mutex // guards node, stored, state, handler, backlog
	node    routing.NodeID
	stored  *filter.Filter
	handler Handler
	// detached marks a durable handle whose runtime buffers instead of
	// delivering.
	detached bool
	backlog  []*event.Event
	backCap  int
	// storeBroken is set when a store append fails mid-detachment: all
	// later events of this detachment go to the in-memory backlog so the
	// drain (store first, then memory) still delivers in publish order.
	// Cleared by the next successful drain.
	storeBroken bool
	// spillPending marks a live handle whose delivery queue overflowed
	// under flow.SpillToStore: overflow went to the backlog (store or
	// memory), and — to preserve FIFO — every later event follows it
	// there until the runtime drains the spill. Guarded by mu.
	spillPending bool

	policy   flow.Policy
	counters *metrics.Counters
	q        *flow.Queue[delivery]
	stopOnce sync.Once
	done     chan struct{}

	received  atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	drainTok  atomic.Bool // a drain token is already queued
}

// renewTarget returns the broker and filter to renew against.
func (h *Handle) renewTarget() (routing.NodeID, *filter.Filter) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.node, h.stored
}

// Subscribe registers a subscriber with the given original subscription
// (a disjunction of conjunctive filters). Each member filter is placed
// independently through the Figure 5 protocol; the handler receives each
// matching event exactly once per placement path.
//
// The returned Handle reports where the subscription landed and counts
// deliveries. The handler runs until Unsubscribe or system Close.
func (s *System) Subscribe(id string, sub filter.Subscription, handler Handler) (*Handle, error) {
	return s.subscribe(id, sub, handler, false)
}

// SubscribeDurable is Subscribe with durable semantics: Detach keeps the
// subscription alive while buffering events (bounded by DurableBuffer);
// Resume drains the backlog and continues live delivery.
func (s *System) SubscribeDurable(id string, sub filter.Subscription, handler Handler) (*Handle, error) {
	return s.subscribe(id, sub, handler, true)
}

func (s *System) subscribe(id string, sub filter.Subscription, handler Handler, durable bool) (*Handle, error) {
	if len(sub) == 0 {
		return nil, fmt.Errorf("overlay: empty subscription")
	}
	if handler == nil {
		return nil, fmt.Errorf("overlay: nil handler")
	}
	sid := routing.NodeID(id)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("overlay: system closed")
	}
	if _, dup := s.subs[sid]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("overlay: subscriber %q already registered", id)
	}
	h := &Handle{
		id:       sid,
		original: sub,
		sys:      s,
		durable:  durable,
		handler:  handler,
		backCap:  s.cfg.DurableBuffer,
		policy:   s.cfg.FlowPolicy,
		counters: s.collector.Counters(id, 0),
		done:     make(chan struct{}),
	}
	h.q = flow.New(flow.Config[delivery]{
		Window: s.cfg.DeliveryBuffer,
		Policy: s.cfg.FlowPolicy,
		// Barrier, resume and drain tokens are control traffic; only
		// event deliveries are subject to the policy.
		Evictable: func(d delivery) bool { return d.ev != nil },
		Spill:     h.spillFromQueue,
		OnDrop: func(d delivery) {
			h.dropped.Add(1)
			h.counters.AddDroppedFor(metrics.DropQueueFull, 1)
		},
		OnStall: func() { h.counters.AddStalled(1) },
		Stop:    h.done,
		AltStop: s.ctx.Done(),
	})
	if durable && s.cfg.Store != nil {
		pending, existed, err := s.cfg.Store.Register(id)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		// A recovered subscription with a stored backlog starts detached:
		// the backlog replays ahead of live traffic on the next Resume.
		if existed && pending > 0 {
			h.detached = true
		}
	}
	s.subs[sid] = h
	s.mu.Unlock()

	// Place each member filter via the Figure 5 protocol. The current
	// Handle supports a single stored filter per subscriber for renewal
	// purposes; disjunctions place the first filter through the protocol
	// and the rest directly at the accepting node, which keeps exactly-
	// once delivery per node.
	for i, f := range sub {
		node, stored, err := s.place(sid, f)
		if err != nil {
			s.mu.Lock()
			delete(s.subs, sid)
			s.mu.Unlock()
			return nil, err
		}
		if i == 0 {
			h.mu.Lock()
			h.node, h.stored = node, stored
			h.mu.Unlock()
		}
	}

	s.wg.Add(1)
	go h.loop()
	return h, nil
}

// place walks one filter down from the root (Figure 5), then drives the
// req-Insert chain back up so the subscription is routable everywhere
// before Subscribe returns.
func (s *System) place(sid routing.NodeID, f *filter.Filter) (routing.NodeID, *filter.Filter, error) {
	cur := s.root.node.ID()
	for hop := 0; hop < len(s.cfg.Fanouts)+2; hop++ {
		reply := make(chan routing.SubscribeResult, 1)
		if err := s.send(cur, subMsg{f: f, sid: sid, reply: reply}); err != nil {
			return "", nil, err
		}
		var res routing.SubscribeResult
		select {
		case res = <-reply:
		case <-s.ctx.Done():
			return "", nil, fmt.Errorf("overlay: system closed during placement")
		}
		if res.Action == routing.ActionRedirect {
			cur = res.Target
			continue
		}
		if err := s.propagateUp(cur, res.Up); err != nil {
			return "", nil, err
		}
		return cur, res.Stored, nil
	}
	return "", nil, fmt.Errorf("overlay: placement did not terminate for %s", f)
}

// propagateUp walks a req-Insert chain from the accepting node to the
// root, one synchronous hop at a time.
func (s *System) propagateUp(from routing.NodeID, up *filter.Filter) error {
	at := from
	for up != nil {
		parent := s.actors[at].node.Parent()
		if parent == "" {
			return nil
		}
		reply := make(chan *filter.Filter, 1)
		if err := s.send(parent, reqInsertMsg{f: up, child: at, reply: reply}); err != nil {
			return err
		}
		select {
		case up = <-reply:
		case <-s.ctx.Done():
			return fmt.Errorf("overlay: system closed during propagation")
		}
		at = parent
	}
	return nil
}

// loop is the subscriber runtime: drain deliveries, apply the original
// subscription (perfect end-to-end filtering, Figure 3), invoke the
// handler — or, while detached, buffer into the durable backlog.
func (h *Handle) loop() {
	defer h.sys.wg.Done()
	h.counters.SetFilters(len(h.original))
	for {
		d, ok := h.q.Pop() // aborts on Unsubscribe or system shutdown
		if !ok {
			return
		}
		switch {
		case d.flush != nil:
			// The barrier promises every earlier event reached the
			// handler — spilled overflow is older than the barrier, so
			// it drains first, completely.
			h.drainSpill(true)
			close(d.flush)
		case d.resume:
			h.drainBacklog(h.counters)
		case d.drain:
			h.drainTok.Store(false)
			h.drainSpill(false)
		default:
			h.consume(d.ev, h.counters)
			// Queue ran dry: whatever spilled during the burst is next
			// in FIFO order.
			if h.policy == flow.SpillToStore && h.q.Len() == 0 {
				h.drainSpill(false)
			}
		}
	}
}

// send routes one event into the delivery pipeline under the handle's
// flow policy. Once a spill has started, every later event follows the
// backlog (never the queue) until the runtime drains it — per-subscriber
// FIFO survives saturation.
func (h *Handle) send(ev *event.Event) {
	if h.policy == flow.SpillToStore {
		h.mu.Lock()
		if h.spillPending {
			h.spillLocked(ev)
			h.mu.Unlock()
			h.wakeDrain()
			return
		}
		h.mu.Unlock()
	}
	switch h.q.Push(delivery{ev: ev}) {
	case flow.Spilled:
		h.wakeDrain()
	case flow.Enqueued:
		h.sys.cfg.Tracer.Observe(obs.HopForward, ev.Stamp())
	}
}

// spillFromQueue is the delivery queue's SpillToStore hook: the queue is
// full, so the event starts (or extends) the spill backlog. Called with
// the queue lock held; takes h.mu (always in that order).
func (h *Handle) spillFromQueue(d delivery) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.spillPending = true
	h.spillLocked(d.ev)
	return true
}

// spillLocked appends one overflow event to the spill backlog: the
// durable store for durable subscriptions (falling back to memory when
// the store fails, preserving store-then-memory drain order), the
// bounded in-memory backlog otherwise. Caller holds h.mu.
func (h *Handle) spillLocked(ev *event.Event) {
	h.counters.AddSpilled(1)
	if st := h.sys.cfg.Store; st != nil && h.durable && !h.storeBroken && st.Known(string(h.id)) {
		// ev.Raw() encodes at most once per event: when one publish spills
		// for several durable subscribers, they all share one encoding.
		if _, n, err := st.Append(string(h.id), ev.Raw()); err == nil {
			h.counters.AddStoreAppended(1)
			h.counters.AddStoredBytes(uint64(n))
			return
		}
		h.storeBroken = true
	}
	h.bufferLocked(ev, h.counters)
}

// wakeDrain nudges the runtime to drain the spill backlog with a
// best-effort drain token. A full queue refuses it — harmless: the
// runtime re-checks whenever its queue runs empty.
func (h *Handle) wakeDrain() {
	if h.drainTok.CompareAndSwap(false, true) {
		if !h.q.TryPush(delivery{drain: true}) {
			h.drainTok.Store(false)
		}
	}
}

// drainSpill replays the spill backlog — stored events first, then any
// in-memory overflow — in FIFO order, then goes back to queue delivery.
// With full=true (a flush barrier) it loops until the backlog is gone;
// otherwise one pass, with producers re-waking it for anything that
// raced in. No-op while detached: Resume owns that drain.
func (h *Handle) drainSpill(full bool) {
	for {
		h.mu.Lock()
		if h.detached {
			h.mu.Unlock()
			return
		}
		st := h.sys.cfg.Store
		useStore := st != nil && h.durable
		pending := h.spillPending || len(h.backlog) > 0 ||
			(useStore && st.Pending(string(h.id)) > 0)
		if !pending {
			h.mu.Unlock()
			return
		}
		backlog := h.backlog
		h.backlog = nil
		handler := h.handler
		h.mu.Unlock()
		if useStore {
			n, err := st.Replay(string(h.id), func(ev *event.Raw) bool {
				h.deliverOne(ev.Event(), handler, h.counters)
				return true
			})
			if n > 0 {
				h.counters.AddStoreReplayed(uint64(n))
			}
			if err != nil {
				// Leave the remainder pending and restore the memory
				// overflow behind it, so the next drain still replays
				// store-then-memory in publish order.
				h.mu.Lock()
				h.backlog = append(backlog, h.backlog...)
				h.mu.Unlock()
				return
			}
		}
		for _, ev := range backlog {
			h.deliverOne(ev, handler, h.counters)
		}
		h.mu.Lock()
		done := len(h.backlog) == 0 && (!useStore || st.Pending(string(h.id)) == 0)
		if done {
			h.spillPending = false
			h.storeBroken = false
		}
		h.mu.Unlock()
		if done || !full {
			return
		}
	}
}

// consume handles one incoming event: buffer when detached (to the
// durable store when configured, else process memory), otherwise filter
// perfectly and deliver.
func (h *Handle) consume(ev *event.Event, counters *metrics.Counters) {
	h.mu.Lock()
	if h.detached {
		// The Known guard stops an in-flight event racing Unsubscribe
		// from resurrecting a just-Forgotten cursor (which nothing would
		// ever Forget again, pinning segments forever).
		if st := h.sys.cfg.Store; st != nil && !h.storeBroken && st.Known(string(h.id)) {
			h.mu.Unlock()
			if _, n, err := st.Append(string(h.id), ev.Raw()); err == nil {
				counters.AddStoreAppended(1)
				counters.AddStoredBytes(uint64(n))
			} else {
				// The store failed (disk full, closed mid-shutdown):
				// fall back to the in-memory backlog rather than lose
				// the event while the process lives — and keep using it
				// for the rest of this detachment, so the drain (store
				// first, then memory) preserves publish order.
				h.mu.Lock()
				h.storeBroken = true
				h.bufferLocked(ev, counters)
				h.mu.Unlock()
			}
			return
		}
		h.bufferLocked(ev, counters)
		h.mu.Unlock()
		return
	}
	handler := h.handler
	h.mu.Unlock()
	h.deliverOne(ev, handler, counters)
}

// bufferLocked appends to the bounded in-memory backlog; the caller holds
// h.mu.
func (h *Handle) bufferLocked(ev *event.Event, counters *metrics.Counters) {
	if h.backCap > 0 && len(h.backlog) >= h.backCap {
		// Bounded store: oldest events give way (the paper leaves
		// the durable store unbounded; production cannot).
		h.backlog = h.backlog[1:]
		h.dropped.Add(1)
		counters.AddDroppedFor(metrics.DropQueueFull, 1)
	}
	h.backlog = append(h.backlog, ev)
}

// drainBacklog processes the durable backlog — stored events first, then
// any in-memory overflow — in FIFO order and goes live.
func (h *Handle) drainBacklog(counters *metrics.Counters) {
	h.mu.Lock()
	backlog := h.backlog
	h.backlog = nil
	h.detached = false
	handler := h.handler
	h.mu.Unlock()
	if st := h.sys.cfg.Store; st != nil && h.durable {
		// Replay the persisted backlog. Only this goroutine consumes for
		// this handle, so no new events interleave until the drain ends;
		// a failed replay leaves the rest pending for the next Resume.
		// Each stored record materializes exactly once; the decoded event
		// is shared by every later consumer of the same Raw.
		n, err := st.Replay(string(h.id), func(ev *event.Raw) bool {
			h.deliverOne(ev.Event(), handler, counters)
			return true
		})
		if n > 0 {
			counters.AddStoreReplayed(uint64(n))
		}
		if err != nil {
			// The drain failed partway: going live now would deliver new
			// events ahead of the stranded older ones. Stay detached —
			// the backlog keeps accumulating and the next Resume retries.
			h.mu.Lock()
			h.detached = true
			h.backlog = append(backlog, h.backlog...)
			h.mu.Unlock()
			return
		}
	}
	// Then any in-memory overflow from a store-failure window: those
	// events are strictly newer than everything in the store (consume
	// stops using the store for the rest of the detachment on failure).
	for _, ev := range backlog {
		h.deliverOne(ev, handler, counters)
	}
	h.mu.Lock()
	h.storeBroken = false
	h.spillPending = false // a spill backlog drains with the rest
	h.mu.Unlock()
}

func (h *Handle) deliverOne(ev *event.Event, handler Handler, counters *metrics.Counters) {
	h.received.Add(1)
	counters.AddReceived(1)
	if !h.original.Matches(ev, h.sys.conf) {
		return
	}
	counters.AddMatched(1)
	counters.AddDelivered(1)
	h.delivered.Add(1)
	h.sys.cfg.Tracer.Observe(obs.HopDeliver, ev.Stamp())
	handler(ev)
}

// ID returns the subscriber identity.
func (h *Handle) ID() string { return string(h.id) }

// Node returns the broker that accepted the (first) filter — stage 1 for
// ordinary subscriptions, higher for wildcard ones (Section 4.4).
func (h *Handle) Node() string {
	node, _ := h.renewTarget()
	return string(node)
}

// StoredFilter returns the weakened filter the accepting broker stores
// for this subscriber.
func (h *Handle) StoredFilter() *filter.Filter {
	_, stored := h.renewTarget()
	return stored.Clone()
}

// Received reports events that reached the subscriber runtime (before
// perfect filtering); Delivered reports events passed to the handler.
func (h *Handle) Received() uint64 { return h.received.Load() }

// Delivered reports events that passed perfect filtering.
func (h *Handle) Delivered() uint64 { return h.delivered.Load() }

// Detach pauses a durable subscription: the hierarchy keeps routing its
// events, which accumulate in a bounded backlog until Resume. Lease
// renewal continues (Maintain/AutoMaintain still covers the handle), so
// a detached durable subscription survives as long as the system renews
// it. Detach on a non-durable handle is an error.
func (h *Handle) Detach() error {
	if !h.durable {
		return fmt.Errorf("overlay: subscriber %q is not durable", h.id)
	}
	h.mu.Lock()
	h.detached = true
	h.mu.Unlock()
	return nil
}

// Resume re-attaches a detached durable subscription with a (possibly
// new) handler. Backlogged events are delivered first, in FIFO order,
// then live delivery continues.
func (h *Handle) Resume(handler Handler) error {
	if !h.durable {
		return fmt.Errorf("overlay: subscriber %q is not durable", h.id)
	}
	if handler == nil {
		return fmt.Errorf("overlay: nil handler")
	}
	h.mu.Lock()
	h.handler = handler
	h.mu.Unlock()
	// The resume token travels through the delivery queue, so events
	// enqueued before it land in the backlog and drain ahead of later
	// live events — FIFO preserved end to end. Control tokens wait for
	// space; no flow policy ever drops them.
	if h.q.PushWait(delivery{resume: true}) != flow.Enqueued {
		return fmt.Errorf("overlay: subscriber %q stopped or system closed", h.id)
	}
	return nil
}

// Backlog reports the number of events currently stored for a detached
// durable subscription (persisted events plus any in-memory overflow).
func (h *Handle) Backlog() int {
	h.mu.Lock()
	mem := len(h.backlog)
	h.mu.Unlock()
	if st := h.sys.cfg.Store; st != nil && h.durable {
		return st.Pending(string(h.id)) + mem
	}
	return mem
}

// Dropped reports events evicted from a full durable backlog.
func (h *Handle) Dropped() uint64 { return h.dropped.Load() }

// Renew refreshes the subscription lease once (AutoMaintain does this
// periodically when enabled).
func (h *Handle) Renew() error {
	node, stored := h.renewTarget()
	return h.sys.send(node, renewMsg{f: stored, id: h.id, now: time.Now()})
}

// Unsubscribe removes the subscription immediately at its broker and
// stops the handler. Upstream routing state decays via lease expiry.
func (h *Handle) Unsubscribe() error {
	node, stored := h.renewTarget()
	err := h.sys.send(node, unsubMsg{f: stored, id: h.id})
	h.sys.mu.Lock()
	delete(h.sys.subs, h.id)
	h.sys.mu.Unlock()
	if st := h.sys.cfg.Store; st != nil && h.durable {
		// Drop the durable cursor: an unsubscribed identity has no claim
		// on its stored backlog, and forgetting it unpins compaction.
		st.Forget(string(h.id))
	}
	h.stop()
	// Wait for the broker to process the removal so no further
	// deliveries race into a stopped runtime.
	h.sys.Flush()
	return err
}

func (h *Handle) stop() {
	h.stopOnce.Do(func() { close(h.done) })
}
