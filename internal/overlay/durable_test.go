package overlay

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

func TestDurableDetachResume(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 20})
	var live []uint64
	var mu sync.Mutex
	record := func(e *event.Event) {
		mu.Lock()
		live = append(live, e.ID)
		mu.Unlock()
	}
	h, err := sys.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		record)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: live delivery.
	if err := sys.Publish(stockEvent("A", 1)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if h.Delivered() != 1 {
		t.Fatalf("live delivery = %d", h.Delivered())
	}

	// Phase 2: detach; events buffer instead of delivering.
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sys.Publish(stockEvent("A", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	if h.Delivered() != 1 {
		t.Fatalf("detached handle delivered %d, want 1", h.Delivered())
	}
	if h.Backlog() != 5 {
		t.Fatalf("backlog = %d, want 5", h.Backlog())
	}

	// Phase 3: resume with a new handler; backlog drains in order, then
	// live delivery continues.
	if err := h.Resume(record); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(stockEvent("A", 99)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if h.Delivered() != 7 {
		t.Fatalf("total delivered = %d, want 7", h.Delivered())
	}
	if h.Backlog() != 0 {
		t.Fatalf("backlog after resume = %d", h.Backlog())
	}
	// FIFO: IDs strictly increasing.
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(live); i++ {
		if live[i] <= live[i-1] {
			t.Fatalf("delivery order violated: %v", live)
		}
	}
}

func TestDurableBacklogBounded(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 21, DurableBuffer: 3})
	h, err := sys.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.Publish(stockEvent("A", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	if h.Backlog() != 3 {
		t.Errorf("backlog = %d, want bound 3", h.Backlog())
	}
	if h.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", h.Dropped())
	}
	// The survivors are the newest three.
	var got []uint64
	var mu sync.Mutex
	if err := h.Resume(func(e *event.Event) {
		mu.Lock()
		got = append(got, e.ID)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("resumed deliveries = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated: %v", got)
		}
	}
}

func TestNonDurableCannotDetach(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 22})
	h, err := sys.Subscribe("p1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err == nil {
		t.Error("Detach on non-durable should fail")
	}
	if err := h.Resume(func(*event.Event) {}); err == nil {
		t.Error("Resume on non-durable should fail")
	}
}

func TestDurableResumeValidation(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 23})
	h, err := sys.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Resume(nil); err == nil {
		t.Error("nil handler should fail")
	}
}

func TestDurableSurvivesMaintain(t *testing.T) {
	// A detached durable subscription keeps its leases alive through
	// Maintain, so no events are lost during the detachment window.
	sys := newStockSystem(t, Config{Seed: 24, TTL: minuteTTL})
	var count atomic.Uint64
	h, err := sys.SubscribeDurable("d1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	// Two maintenance rounds well past the original 3×TTL deadline.
	sys.Maintain(timeNowPlus(2))
	sys.Maintain(timeNowPlus(4))
	if err := sys.Publish(stockEvent("A", 5)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if h.Backlog() != 1 {
		t.Fatalf("backlog = %d; lease expired while detached?", h.Backlog())
	}
	if err := h.Resume(func(*event.Event) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("delivered = %d, want 1", count.Load())
	}
}

// test clock helpers shared by the durable tests.
const minuteTTL = time.Minute

func timeNowPlus(minutes int) time.Time {
	return time.Now().Add(time.Duration(minutes) * time.Minute)
}
