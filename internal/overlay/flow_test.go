package overlay

import (
	"sync"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/store"
	"eventsys/internal/typing"
)

// flowFixture is a tiny hierarchy under one flow policy with one slow
// subscriber recording delivered event IDs.
type flowFixture struct {
	sys     *System
	h       *Handle
	handler Handler

	mu  sync.Mutex
	got []uint64
}

func (f *flowFixture) ids() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.got...)
}

// newFlowFixture builds the system, subscribes the slow consumer
// (handler sleeps delay per event), and publishes n stock events.
func newFlowFixture(t *testing.T, policy flow.Policy, window int, st *store.Store, durable bool, delay time.Duration, n int) *flowFixture {
	t.Helper()
	sys, err := New(Config{
		Fanouts:    []int{1, 2},
		Seed:       7,
		FlowPolicy: policy,
		FlowWindow: window,
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	ad, err := typing.NewAdvertisement("Stock", 3, "symbol", "price")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advertise(ad); err != nil {
		t.Fatal(err)
	}
	f := &flowFixture{sys: sys}
	f.handler = func(e *event.Event) {
		if delay > 0 {
			time.Sleep(delay)
		}
		f.mu.Lock()
		f.got = append(f.got, e.ID)
		f.mu.Unlock()
	}
	sub := filter.Subscription{filter.MustParseFilter(`class = "Stock"`)}
	if durable {
		f.h, err = sys.SubscribeDurable("slow", sub, f.handler)
	} else {
		f.h, err = sys.Subscribe("slow", sub, f.handler)
	}
	if err != nil {
		t.Fatal(err)
	}
	f.publish(t, n)
	return f
}

func (f *flowFixture) publish(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := f.sys.Publish(stockEvent("ACME", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

func ascending(t *testing.T, ids []uint64) {
	t.Helper()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("order violated at %d: %d after %d", i, ids[i], ids[i-1])
		}
	}
}

// TestOverlayFlowBlockLossless: under Block a slow subscriber stalls
// the pipeline instead of losing anything; Flush sees every event
// through, in order, with bounded queues.
func TestOverlayFlowBlockLossless(t *testing.T) {
	const n = 400
	f := newFlowFixture(t, flow.Block, 16, nil, false, 100*time.Microsecond, n)
	f.sys.Flush()
	got := f.ids()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	ascending(t, got)
	if f.h.Dropped() != 0 {
		t.Fatalf("Block dropped %d", f.h.Dropped())
	}
	for _, qs := range f.sys.FlowStats() {
		if qs.Dropped != 0 || qs.Spilled != 0 {
			t.Fatalf("queue %s shed under Block: %+v", qs.Name, qs)
		}
	}
}

// TestOverlayFlowDropPolicies: the drop policies shed at the saturated
// queue, count every loss, and never reorder what survives.
func TestOverlayFlowDropPolicies(t *testing.T) {
	for _, policy := range []flow.Policy{flow.DropNewest, flow.DropOldest} {
		t.Run(policy.String(), func(t *testing.T) {
			const n = 400
			f := newFlowFixture(t, policy, 8, nil, false, 200*time.Microsecond, n)
			f.sys.Flush()
			got := f.ids()
			ascending(t, got)
			var dropped uint64
			for _, st := range f.sys.Stats() {
				dropped += st.Dropped
			}
			if uint64(len(got))+dropped != n {
				t.Fatalf("delivered %d + dropped %d != published %d", len(got), dropped, n)
			}
			if dropped == 0 {
				t.Fatal("slow consumer never saturated the window; policy untested")
			}
			if f.h.Delivered() != uint64(len(got)) {
				t.Fatalf("handle delivered %d, handler saw %d", f.h.Delivered(), len(got))
			}
		})
	}
}

// TestOverlayFlowSpillMemory: SpillToStore without a store spills a
// non-durable subscriber's overflow to the bounded in-memory backlog
// and replays it in order — nothing lost while the backlog fits.
func TestOverlayFlowSpillMemory(t *testing.T) {
	const n = 400
	f := newFlowFixture(t, flow.SpillToStore, 8, nil, false, 100*time.Microsecond, n)
	f.sys.Flush()
	got := f.ids()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d (spilled events must replay)", len(got), n)
	}
	ascending(t, got)
	if f.h.Dropped() != 0 {
		t.Fatalf("spill dropped %d with room in the backlog", f.h.Dropped())
	}
	var spilled uint64
	for _, st := range f.sys.Stats() {
		spilled += st.Spilled
	}
	if spilled == 0 {
		t.Fatal("no spill recorded; slow consumer never saturated the window")
	}
}

// TestOverlayFlowSpillDurableStore: a durable subscriber under
// SpillToStore spills overflow to the durable store and replays it in
// order; the store drains back to empty once the consumer catches up.
func TestOverlayFlowSpillDurableStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 400
	f := newFlowFixture(t, flow.SpillToStore, 8, st, true, 100*time.Microsecond, n)
	f.sys.Flush()
	got := f.ids()
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	ascending(t, got)
	var appended, replayed uint64
	for _, ns := range f.sys.Stats() {
		appended += ns.StoreAppended
		replayed += ns.StoreReplayed
	}
	if appended == 0 || appended != replayed {
		t.Fatalf("store traffic appended=%d replayed=%d: spill must round-trip the store", appended, replayed)
	}
	if p := st.Pending("slow"); p != 0 {
		t.Fatalf("store still holds %d events after Flush", p)
	}
}

// TestOverlayFlowSpillThenDetachResume: a spill backlog and a durable
// detachment share the same drain; Detach mid-spill and Resume must
// deliver everything exactly once, in order.
func TestOverlayFlowSpillThenDetachResume(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const before, after = 200, 100
	f := newFlowFixture(t, flow.SpillToStore, 8, st, true, 100*time.Microsecond, before)
	if err := f.h.Detach(); err != nil {
		t.Fatal(err)
	}
	f.publish(t, after)
	f.sys.Flush()
	if err := f.h.Resume(f.handler); err != nil {
		t.Fatal(err)
	}
	f.sys.Flush()
	// Everything published reached the handler exactly once — the spill
	// backlog, the detached backlog, and live traffic, never reordered
	// against each other.
	if got := f.ids(); len(got) != before+after {
		t.Fatalf("handler saw %d events, want %d", len(got), before+after)
	}
	if total := f.h.Received(); total != before+after {
		t.Fatalf("handle received %d events, want %d", total, before+after)
	}
	if p := st.Pending("slow"); p != 0 {
		t.Fatalf("store still holds %d events after Resume", p)
	}
}
