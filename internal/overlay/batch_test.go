package overlay

import (
	"fmt"
	"sync"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
)

// TestBatchedDeliveryOrder verifies the batched pipeline's core
// invariant: per-subscriber delivery order equals publish order, for
// every engine kind and shard count, with coalescing forced by a tiny
// MaxBatch-to-inbox ratio.
func TestBatchedDeliveryOrder(t *testing.T) {
	for _, tc := range []struct {
		name   string
		engine index.Kind
		shards int
		batch  int
	}{
		{"naive-batch8", index.KindNaive, 0, 8},
		{"counting-batch64", index.KindCounting, 0, 64},
		{"sharded-1", index.KindSharded, 1, 16},
		{"sharded-2", index.KindSharded, 2, 16},
		{"sharded-8", index.KindSharded, 8, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := New(Config{
				Fanouts:  []int{1, 2, 4},
				Seed:     42,
				Engine:   tc.engine,
				Shards:   tc.shards,
				MaxBatch: tc.batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			const subscribers = 8
			const events = 400
			var mu sync.Mutex
			got := make(map[string][]uint64)
			for i := 0; i < subscribers; i++ {
				id := fmt.Sprintf("s%d", i)
				sub := filter.Subscription{filter.MustParseFilter(
					fmt.Sprintf(`class = "Tick" && lane = %d`, i%4))}
				_, err := sys.Subscribe(id, sub, func(e *event.Event) {
					mu.Lock()
					got[id] = append(got[id], e.ID)
					mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < events; i++ {
				e := event.NewBuilder("Tick").Int("lane", int64(i%4)).Build()
				if err := sys.Publish(e); err != nil {
					t.Fatal(err)
				}
			}
			sys.Flush()

			mu.Lock()
			defer mu.Unlock()
			total := 0
			for id, seq := range got {
				total += len(seq)
				if len(seq) != events/4 {
					t.Errorf("%s received %d events, want %d", id, len(seq), events/4)
				}
				for j := 1; j < len(seq); j++ {
					if seq[j] <= seq[j-1] {
						t.Fatalf("%s out of order at %d: %d after %d", id, j, seq[j], seq[j-1])
					}
				}
			}
			if total != subscribers*events/4 {
				t.Errorf("total deliveries = %d, want %d", total, subscribers*events/4)
			}

			// The batch counters must account for every received event.
			for _, st := range sys.Stats() {
				if st.Stage == 0 {
					continue
				}
				if st.BatchesMatched == 0 && st.Received > 0 {
					t.Errorf("broker %s received %d events but recorded no batches", st.NodeID, st.Received)
				}
				if st.BatchSizeSum != st.Received {
					t.Errorf("broker %s: BatchSizeSum = %d, Received = %d", st.NodeID, st.BatchSizeSum, st.Received)
				}
			}
		})
	}
}

// TestBatchedDeliveryIdenticalAcrossShards publishes one deterministic
// stream per configuration and asserts the full per-subscriber delivery
// sequences are byte-identical for 1, 2 and 8 shards — the acceptance
// contract of the deterministic merge.
func TestBatchedDeliveryIdenticalAcrossShards(t *testing.T) {
	run := func(shards int) map[string][]uint64 {
		sys, err := New(Config{
			Fanouts:  []int{1, 4},
			Seed:     7,
			Engine:   index.KindSharded,
			Shards:   shards,
			MaxBatch: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		var mu sync.Mutex
		got := make(map[string][]uint64)
		for i := 0; i < 6; i++ {
			id := fmt.Sprintf("s%d", i)
			sub := filter.Subscription{filter.MustParseFilter(
				fmt.Sprintf(`class = "Tick" && lane = %d`, i%3))}
			if _, err := sys.Subscribe(id, sub, func(e *event.Event) {
				mu.Lock()
				got[id] = append(got[id], e.ID)
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 300; i++ {
			e := event.NewBuilder("Tick").Int("lane", int64(i%3)).Build()
			if err := sys.Publish(e); err != nil {
				t.Fatal(err)
			}
		}
		sys.Flush()
		mu.Lock()
		defer mu.Unlock()
		return got
	}
	want := run(1)
	for _, shards := range []int{2, 8} {
		got := run(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d subscribers delivered, want %d", shards, len(got), len(want))
		}
		for id, seq := range want {
			other := got[id]
			if len(other) != len(seq) {
				t.Fatalf("shards=%d %s: %d events, want %d", shards, id, len(other), len(seq))
			}
			for j := range seq {
				if other[j] != seq[j] {
					t.Fatalf("shards=%d %s: event %d = %d, want %d", shards, id, j, other[j], seq[j])
				}
			}
		}
	}
}
