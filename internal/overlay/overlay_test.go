package overlay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
	"eventsys/internal/typing"
	"eventsys/internal/workload"
)

// newStockSystem starts a small overlay advertising the Stock class with
// the Example 5 stage association.
func newStockSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Fanouts == nil {
		cfg.Fanouts = []int{1, 2, 4}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	ad, err := typing.NewAdvertisement("Stock", len(cfg.Fanouts)+1, "symbol", "price")
	if err != nil {
		t.Fatal(err)
	}
	ad.StageAttrs = []int{2, 2, 1, 0}
	if err := sys.Advertise(ad); err != nil {
		t.Fatal(err)
	}
	return sys
}

func stockEvent(sym string, price float64) *event.Event {
	return event.NewBuilder("Stock").Str("symbol", sym).Float("price", price).Build()
}

func TestPublishSubscribeEndToEnd(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 1})
	var got []string
	var mu sync.Mutex
	h, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10`)},
		func(e *event.Event) {
			v, _ := e.Lookup("price")
			mu.Lock()
			got = append(got, fmt.Sprintf("%s@%v", "Foo", v.Num()))
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{5, 15, 9.5} {
		if err := sys.Publish(stockEvent("Foo", p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Publish(stockEvent("Bar", 1)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("handler saw %v, want 2 deliveries", got)
	}
	if h.Delivered() != 2 {
		t.Errorf("Delivered = %d, want 2", h.Delivered())
	}
	if h.Node() == "" || h.StoredFilter() == nil {
		t.Error("handle missing placement info")
	}
}

func TestConcurrentPublishers(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 2})
	var count atomic.Uint64
	_, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "SYM"`)},
		func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	const publishers, perPub = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if err := sys.Publish(stockEvent("SYM", float64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sys.Flush()
	if got := count.Load(); got != publishers*perPub {
		t.Errorf("delivered %d, want %d", got, publishers*perPub)
	}
}

func TestManySubscribersExactlyOnce(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 3, Fanouts: []int{1, 3, 9}})
	type sub struct {
		h    *Handle
		want string
		seen map[uint64]int
		mu   sync.Mutex
	}
	subs := make([]*sub, 0, 30)
	for i := 0; i < 30; i++ {
		sc := &sub{want: fmt.Sprintf("S%d", i%5), seen: make(map[uint64]int)}
		h, err := sys.Subscribe(fmt.Sprintf("sub%d", i),
			filter.Subscription{filter.MustParseFilter(
				fmt.Sprintf(`class = "Stock" && symbol = %q && price < 50`, sc.want))},
			func(e *event.Event) {
				sc.mu.Lock()
				sc.seen[e.ID]++
				sc.mu.Unlock()
			})
		if err != nil {
			t.Fatal(err)
		}
		sc.h = h
		subs = append(subs, sc)
	}
	stocks, err := workload.NewStocks(9, workload.StocksConfig{Symbols: 5, MinPrice: 1, MaxPrice: 100})
	if err != nil {
		t.Fatal(err)
	}
	published := make([]*event.Event, 0, 300)
	for i := 0; i < 300; i++ {
		e := stocks.Event()
		published = append(published, e)
		if err := sys.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	// Oracle: every subscriber gets exactly the matching events, once.
	for _, sc := range subs {
		f := filter.MustParseFilter(fmt.Sprintf(`class = "Stock" && symbol = %q && price < 50`, sc.want))
		want := 0
		for _, e := range published {
			if f.Matches(e, nil) {
				want++
			}
		}
		sc.mu.Lock()
		if len(sc.seen) != want {
			t.Errorf("%s: delivered %d distinct, want %d", sc.h.ID(), len(sc.seen), want)
		}
		for id, n := range sc.seen {
			if n != 1 {
				t.Errorf("%s: event %d delivered %d times", sc.h.ID(), id, n)
			}
		}
		sc.mu.Unlock()
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 4})
	var count atomic.Uint64
	h, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(stockEvent("A", 1)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if count.Load() != 1 {
		t.Fatalf("pre-unsubscribe delivered %d", count.Load())
	}
	if err := h.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sys.Publish(stockEvent("A", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("post-unsubscribe delivered %d, want 1", count.Load())
	}
}

func TestLeaseExpiryWithoutRenewal(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 5, TTL: time.Minute})
	var count atomic.Uint64
	_, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// A sweep far in the future expires every lease (nobody renewed in
	// between because AutoMaintain is off and we sweep without renewing).
	for id := range sys.actors {
		_ = sys.send(id, sweepMsg{now: time.Now().Add(10 * time.Minute)})
	}
	sys.Flush()
	if err := sys.Publish(stockEvent("A", 1)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if count.Load() != 0 {
		t.Errorf("expired subscription still delivered %d events", count.Load())
	}
}

func TestMaintainKeepsLeasesAlive(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 6, TTL: time.Minute})
	var count atomic.Uint64
	_, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// Renew now, then sweep at a time still inside the renewed window.
	sys.Maintain(time.Now().Add(2 * time.Minute))
	if err := sys.Publish(stockEvent("A", 1)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("maintained subscription delivered %d, want 1", count.Load())
	}
}

func TestSubscribeValidation(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 7})
	if _, err := sys.Subscribe("x", nil, func(*event.Event) {}); err == nil {
		t.Error("empty subscription should fail")
	}
	if _, err := sys.Subscribe("x",
		filter.Subscription{filter.MustParseFilter(`class = "Stock"`)}, nil); err == nil {
		t.Error("nil handler should fail")
	}
	if _, err := sys.Subscribe("dup",
		filter.Subscription{filter.MustParseFilter(`class = "Stock"`)}, func(*event.Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Subscribe("dup",
		filter.Subscription{filter.MustParseFilter(`class = "Stock"`)}, func(*event.Event) {}); err == nil {
		t.Error("duplicate subscriber id should fail")
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing fanouts should fail")
	}
	if _, err := New(Config{Fanouts: []int{0}}); err == nil {
		t.Error("zero fanout should fail")
	}
	sys, err := New(Config{Fanouts: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ad, _ := typing.NewAdvertisement("X", 2, "a")
	if err := sys.Advertise(ad); err == nil {
		t.Error("stage-count mismatch should fail")
	}
	if err := sys.Publish(nil); err == nil {
		t.Error("nil event should fail")
	}
}

func TestDisjunctionSubscription(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 8})
	var count atomic.Uint64
	_, err := sys.Subscribe("s1", filter.Subscription{
		filter.MustParseFilter(`class = "Stock" && symbol = "A"`),
		filter.MustParseFilter(`class = "Stock" && symbol = "B"`),
	}, func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	sys.Publish(stockEvent("A", 1))
	sys.Publish(stockEvent("B", 2))
	sys.Publish(stockEvent("C", 3))
	sys.Flush()
	if count.Load() != 2 {
		t.Errorf("disjunction delivered %d, want 2", count.Load())
	}
}

func TestTypeBasedSubscribing(t *testing.T) {
	reg := typing.NewRegistry()
	reg.MustRegister("Quote", "")
	reg.MustRegister("Stock", "Quote")
	reg.MustRegister("Bond", "Quote")
	sys, err := New(Config{Fanouts: []int{1, 2}, Registry: reg, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var kinds sync.Map
	_, err = sys.Subscribe("all-quotes",
		filter.Subscription{filter.MustParseFilter(`class = "Quote"`)},
		func(e *event.Event) { kinds.Store(e.Type, true) })
	if err != nil {
		t.Fatal(err)
	}
	sys.Publish(event.NewBuilder("Stock").Str("symbol", "A").Build())
	sys.Publish(event.NewBuilder("Bond").Str("issuer", "B").Build())
	sys.Publish(event.NewBuilder("Auction").Str("product", "C").Build())
	sys.Flush()
	for _, want := range []string{"Stock", "Bond"} {
		if _, ok := kinds.Load(want); !ok {
			t.Errorf("subtype %s not delivered to supertype subscription", want)
		}
	}
	if _, ok := kinds.Load("Auction"); ok {
		t.Error("unrelated type delivered")
	}
}

func TestStatsPopulated(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 10})
	_, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sys.Publish(stockEvent("A", float64(i)))
	}
	sys.Flush()
	stats := sys.Stats()
	var rootRecv, subRecv uint64
	for _, st := range stats {
		if st.Stage == len(sys.cfg.Fanouts) {
			rootRecv += st.Received
		}
		if st.Stage == 0 {
			subRecv += st.Received
		}
	}
	if rootRecv != 10 {
		t.Errorf("root received %d, want 10", rootRecv)
	}
	if subRecv != 10 {
		t.Errorf("subscriber received %d, want 10", subRecv)
	}
}

func TestCloseIdempotentAndSafe(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 11})
	_, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock"`)},
		func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close() // idempotent
	if err := sys.Publish(stockEvent("A", 1)); err == nil {
		t.Error("publish after close should fail")
	}
	if _, err := sys.Subscribe("s2",
		filter.Subscription{filter.MustParseFilter(`class = "Stock"`)},
		func(*event.Event) {}); err == nil {
		t.Error("subscribe after close should fail")
	}
}

func TestAutoMaintainLoop(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 12, TTL: 40 * time.Millisecond, AutoMaintain: true})
	var count atomic.Uint64
	_, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A"`)},
		func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	// Survive several TTL periods thanks to the auto-renewal loop.
	time.Sleep(250 * time.Millisecond)
	if err := sys.Publish(stockEvent("A", 1)); err != nil {
		t.Fatal(err)
	}
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("auto-maintained subscription delivered %d, want 1", count.Load())
	}
}

func TestCountingEngineOverlay(t *testing.T) {
	sys := newStockSystem(t, Config{Seed: 13, Engine: index.KindCounting})
	var count atomic.Uint64
	_, err := sys.Subscribe("s1",
		filter.Subscription{filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 5`)},
		func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	sys.Publish(stockEvent("A", 3))
	sys.Publish(stockEvent("A", 7))
	sys.Flush()
	if count.Load() != 1 {
		t.Errorf("delivered %d, want 1", count.Load())
	}
}
