package typing

import (
	"strings"
	"testing"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, reg := range []struct{ name, parent string }{
		{"Quote", ""},
		{"Stock", "Quote"},
		{"TechStock", "Stock"},
		{"Bond", "Quote"},
		{"Auction", ""},
	} {
		if err := r.Register(reg.name, reg.parent); err != nil {
			t.Fatalf("Register(%q,%q): %v", reg.name, reg.parent, err)
		}
	}
	return r
}

func TestConforms(t *testing.T) {
	r := newTestRegistry(t)
	tests := []struct {
		sub, super string
		want       bool
	}{
		{"Stock", "Stock", true},
		{"Stock", "Quote", true},
		{"TechStock", "Quote", true},
		{"TechStock", RootType, true},
		{"Quote", "Stock", false},
		{"Bond", "Stock", false},
		{"Auction", "Quote", false},
		{"Unknown", RootType, true},
		{"Unknown", "Quote", false},
		{"Unknown", "Unknown", true},
	}
	for _, tt := range tests {
		if got := r.Conforms(tt.sub, tt.super); got != tt.want {
			t.Errorf("Conforms(%q,%q) = %v, want %v", tt.sub, tt.super, got, tt.want)
		}
	}
}

func TestRegisterErrors(t *testing.T) {
	r := newTestRegistry(t)
	if err := r.Register("Stock", ""); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register("X", "NoSuchParent"); err == nil {
		t.Error("unknown parent should fail")
	}
	if err := r.Register("", ""); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.Register(RootType, ""); err == nil {
		t.Error("shadowing RootType should fail")
	}
}

func TestChain(t *testing.T) {
	r := newTestRegistry(t)
	got := r.Chain("TechStock")
	want := []string{"TechStock", "Stock", "Quote", RootType}
	if len(got) != len(want) {
		t.Fatalf("Chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Chain = %v, want %v", got, want)
		}
	}
	if c := r.Chain(RootType); len(c) != 1 || c[0] != RootType {
		t.Fatalf("Chain(root) = %v", c)
	}
}

func TestSubtypes(t *testing.T) {
	r := newTestRegistry(t)
	got := r.Subtypes("Quote")
	want := []string{"Bond", "Quote", "Stock", "TechStock"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Subtypes(Quote) = %v, want %v", got, want)
	}
	all := r.Subtypes(RootType)
	if len(all) != r.Len()+1 {
		t.Fatalf("Subtypes(root) = %v", all)
	}
}

func TestAdvertisementCanonical(t *testing.T) {
	// Example 6: auction with 5 attributes in a 4-stage hierarchy.
	ad, err := NewAdvertisement("Auction", 4, "product", "kind", "capacity", "price", "color")
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.Validate(); err != nil {
		t.Fatal(err)
	}
	wantCounts := []int{5, 4, 3, 0}
	for i, w := range wantCounts {
		if ad.StageAttrs[i] != w {
			t.Errorf("StageAttrs[%d] = %d, want %d", i, ad.StageAttrs[i], w)
		}
	}
	if !ad.KeepsAt(1, "price") || ad.KeepsAt(1, "color") {
		t.Error("stage 1 should keep price but drop color")
	}
	if ad.KeepsAt(3, "product") {
		t.Error("top stage keeps only the class")
	}
}

func TestAdvertisementTopStageFor(t *testing.T) {
	ad, err := NewAdvertisement("Biblio", 4, "year", "conference", "author", "title")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		attr string
		top  int
		ok   bool
	}{
		{"year", 2, true}, // kept through stage 2 (counts 4,3,2,0)
		{"conference", 2, true},
		{"author", 1, true},
		{"title", 0, true},
		{"nosuch", 0, false},
	}
	for _, tt := range tests {
		top, ok := ad.TopStageFor(tt.attr)
		if ok != tt.ok || (ok && top != tt.top) {
			t.Errorf("TopStageFor(%q) = (%d,%v), want (%d,%v)", tt.attr, top, ok, tt.top, tt.ok)
		}
	}
}

func TestAdvertisementValidateRejects(t *testing.T) {
	ad := &Advertisement{Class: "X", Attrs: []string{"a", "b"}, StageAttrs: []int{2, 1, 2}}
	if err := ad.Validate(); err == nil {
		t.Error("increasing stage counts should fail validation")
	}
	ad2 := &Advertisement{Class: "X", Attrs: []string{"a"}, StageAttrs: []int{0}}
	if err := ad2.Validate(); err == nil {
		t.Error("stage 0 must keep all attributes")
	}
	if _, err := NewAdvertisement("", 3, "a"); err == nil {
		t.Error("empty class should fail")
	}
	if _, err := NewAdvertisement("X", 0, "a"); err == nil {
		t.Error("zero stages should fail")
	}
	if _, err := NewAdvertisement("X", 3, "a", "a"); err == nil {
		t.Error("duplicate attrs should fail")
	}
}

func TestAdvertisementSet(t *testing.T) {
	var s AdvertisementSet
	ad, _ := NewAdvertisement("Stock", 4, "symbol", "price")
	if err := s.Put(ad); err != nil {
		t.Fatal(err)
	}
	ad2, _ := NewAdvertisement("Auction", 4, "product")
	if err := s.Put(ad2); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("Stock"); !ok || got.Class != "Stock" {
		t.Fatalf("Get(Stock) = %v,%v", got, ok)
	}
	classes := s.Classes()
	if len(classes) != 2 || classes[0] != "Auction" || classes[1] != "Stock" {
		t.Fatalf("Classes = %v", classes)
	}
	c := s.Clone()
	ad3, _ := NewAdvertisement("Bond", 4, "rating")
	if err := c.Put(ad3); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("Bond"); ok {
		t.Error("clone mutation leaked into original")
	}
}

func TestAdvertisementGeneralityAndString(t *testing.T) {
	ad, _ := NewAdvertisement("Stock", 3, "symbol", "price")
	if pos, ok := ad.Generality("class"); !ok || pos != -1 {
		t.Errorf("Generality(class) = %d,%v", pos, ok)
	}
	if pos, ok := ad.Generality("price"); !ok || pos != 1 {
		t.Errorf("Generality(price) = %d,%v", pos, ok)
	}
	if _, ok := ad.Generality("zzz"); ok {
		t.Error("unknown attribute should not have generality")
	}
	if s := ad.String(); !strings.Contains(s, "Stage-0: symbol,price") {
		t.Errorf("String() = %s", s)
	}
}
