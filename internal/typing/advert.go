package typing

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Advertisement describes an event class a publisher intends to publish:
// its attribute schema ordered from most general to least general, and the
// attribute-stage association G_c (Section 4.1) telling each broker stage
// which attribute prefix its weakened filters keep.
//
// Gc is the sets {s_0 ... s_n} of the paper represented compactly: since
// attributes are ordered by generality and every stage keeps a prefix,
// StageAttrs[i] is the number of attributes kept by weakened filters at
// stage i. Stage 0 keeps all attributes (perfect filtering); higher stages
// keep fewer; the top stage typically keeps none beyond the class.
type Advertisement struct {
	// Class is the advertised event type name.
	Class string
	// Attrs is the attribute schema, most general first. The implicit
	// class attribute is not listed; it precedes Attrs[0] in generality.
	Attrs []string
	// StageAttrs[i] is the number of leading attributes retained by
	// weakened filters at stage i. StageAttrs[0] == len(Attrs).
	StageAttrs []int
}

// NewAdvertisement builds an advertisement for the given class and
// generality-ordered attributes, with the canonical stage association: a
// hierarchy of `stages` stages where stage i drops the i least-general
// attributes (never dropping below zero). This mirrors Example 6: with 4
// stages and attributes (1..5), s_0 keeps 5, s_1 keeps 4, s_2 keeps 3, and
// the top stage keeps only the class. A custom association can be set by
// assigning StageAttrs directly.
func NewAdvertisement(class string, stages int, attrs ...string) (*Advertisement, error) {
	if class == "" {
		return nil, fmt.Errorf("typing: advertisement needs a class name")
	}
	if stages < 1 {
		return nil, fmt.Errorf("typing: advertisement needs at least one stage, got %d", stages)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("typing: empty attribute name in advertisement for %q", class)
		}
		if seen[a] {
			return nil, fmt.Errorf("typing: duplicate attribute %q in advertisement for %q", a, class)
		}
		seen[a] = true
	}
	ad := &Advertisement{
		Class:      class,
		Attrs:      append([]string(nil), attrs...),
		StageAttrs: make([]int, stages),
	}
	for i := range ad.StageAttrs {
		ad.StageAttrs[i] = max(len(attrs)-i, 0)
	}
	if stages > 1 {
		// The top stage filters on type only (Example 5, Stage-3).
		ad.StageAttrs[stages-1] = 0
	}
	return ad, nil
}

// Validate checks internal consistency: stage attribute counts must be a
// non-increasing sequence starting at len(Attrs).
func (ad *Advertisement) Validate() error {
	if ad.Class == "" {
		return fmt.Errorf("typing: advertisement without class")
	}
	if len(ad.StageAttrs) == 0 {
		return fmt.Errorf("typing: advertisement for %q without stages", ad.Class)
	}
	if ad.StageAttrs[0] != len(ad.Attrs) {
		return fmt.Errorf("typing: advertisement for %q: stage 0 must keep all %d attributes, keeps %d",
			ad.Class, len(ad.Attrs), ad.StageAttrs[0])
	}
	prev := ad.StageAttrs[0]
	for i, n := range ad.StageAttrs {
		if n < 0 || n > len(ad.Attrs) {
			return fmt.Errorf("typing: advertisement for %q: stage %d keeps %d of %d attributes",
				ad.Class, i, n, len(ad.Attrs))
		}
		if n > prev {
			return fmt.Errorf("typing: advertisement for %q: stage %d keeps more attributes (%d) than stage %d (%d)",
				ad.Class, i, n, i-1, prev)
		}
		prev = n
	}
	return nil
}

// Stages returns the number of stages covered by the association.
func (ad *Advertisement) Stages() int { return len(ad.StageAttrs) }

// KeptAt returns the attribute names retained at the given stage, in
// generality order. Stages beyond the association keep only the class.
func (ad *Advertisement) KeptAt(stage int) []string {
	if stage < 0 || stage >= len(ad.StageAttrs) {
		return nil
	}
	return ad.Attrs[:ad.StageAttrs[stage]]
}

// KeepsAt reports whether the named attribute survives weakening at the
// given stage.
func (ad *Advertisement) KeepsAt(stage int, attr string) bool {
	for _, a := range ad.KeptAt(stage) {
		if a == attr {
			return true
		}
	}
	return false
}

// TopStageFor returns the highest stage at which the named attribute is
// still used, and ok=false when the attribute is not part of the schema.
// This is the "top most Stage j at which Attr_mg is used" lookup of the
// HANDLE-WILDCARD-SUBS procedure (Section 4.5).
func (ad *Advertisement) TopStageFor(attr string) (stage int, ok bool) {
	idx := -1
	for i, a := range ad.Attrs {
		if a == attr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, false
	}
	top := -1
	for s, n := range ad.StageAttrs {
		if idx < n {
			top = s
		}
	}
	if top < 0 {
		return 0, false
	}
	return top, true
}

// Generality returns the position of the attribute in the generality order
// (0 = most general) and ok=false for unknown attributes. The class
// attribute is more general than every listed attribute and reports -1.
func (ad *Advertisement) Generality(attr string) (pos int, ok bool) {
	if attr == "class" {
		return -1, true
	}
	for i, a := range ad.Attrs {
		if a == attr {
			return i, true
		}
	}
	return 0, false
}

// String renders the association in the paper's notation.
func (ad *Advertisement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "G_%s = {", ad.Class)
	for i := range ad.StageAttrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "<Stage-%d: %s>", i, strings.Join(ad.KeptAt(i), ","))
	}
	b.WriteString("}")
	return b.String()
}

// AdvertisementSet is a collection of advertisements keyed by class,
// typically the union of everything advertised in the system. The zero
// value is ready to use. It is safe for concurrent use; individual
// Advertisement values are treated as immutable once Put.
type AdvertisementSet struct {
	mu      sync.RWMutex
	byClass map[string]*Advertisement
}

// Put inserts or replaces the advertisement for its class.
func (s *AdvertisementSet) Put(ad *Advertisement) error {
	if err := ad.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byClass == nil {
		s.byClass = make(map[string]*Advertisement)
	}
	s.byClass[ad.Class] = ad
	return nil
}

// Get returns the advertisement for a class.
func (s *AdvertisementSet) Get(class string) (*Advertisement, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ad, ok := s.byClass[class]
	return ad, ok
}

// Classes returns the advertised class names, sorted.
func (s *AdvertisementSet) Classes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byClass))
	for c := range s.byClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clone returns a shallow copy sharing the (immutable) advertisements.
func (s *AdvertisementSet) Clone() *AdvertisementSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &AdvertisementSet{byClass: make(map[string]*Advertisement, len(s.byClass))}
	for k, v := range s.byClass {
		c.byClass[k] = v
	}
	return c
}
