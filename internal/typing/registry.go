// Package typing implements the event type hierarchy and advertisement
// machinery of the paper.
//
// Events are instances of application-defined abstract types arranged in a
// single-inheritance hierarchy (Section 2.1, "Event Safety"): a subscriber
// registering interest in a type receives events of that type and all its
// subtypes. Publishers advertise event classes together with their attribute
// schema and the attribute-stage association G_c (Section 4.1) that drives
// automated filter weakening.
package typing

import (
	"fmt"
	"sort"
	"sync"
)

// RootType is the implicit ancestor of every registered event type.
// Subscribing to it is equivalent to the always-true filter f_T.
const RootType = "Event"

// Registry maintains the event type hierarchy. The zero Registry is ready
// to use; RootType is implicitly present. Registry is safe for concurrent
// use.
type Registry struct {
	mu     sync.RWMutex
	parent map[string]string // type name -> parent name
}

// NewRegistry returns an empty type registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds an event type below the given parent. Registering with an
// empty parent attaches the type directly below RootType. It is an error
// to register a type twice, to use an unregistered parent, or to shadow
// RootType.
func (r *Registry) Register(name, parent string) error {
	if name == "" || name == RootType {
		return fmt.Errorf("typing: invalid type name %q", name)
	}
	if parent == "" {
		parent = RootType
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.parent == nil {
		r.parent = make(map[string]string)
	}
	if _, dup := r.parent[name]; dup {
		return fmt.Errorf("typing: type %q already registered", name)
	}
	if parent != RootType {
		if _, ok := r.parent[parent]; !ok {
			return fmt.Errorf("typing: parent type %q not registered", parent)
		}
	}
	r.parent[name] = parent
	return nil
}

// MustRegister is Register for static initialization; it panics on error.
func (r *Registry) MustRegister(name, parent string) {
	if err := r.Register(name, parent); err != nil {
		panic(err)
	}
}

// Known reports whether the type name is registered (RootType is always
// known).
func (r *Registry) Known(name string) bool {
	if name == RootType {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.parent[name]
	return ok
}

// Conforms reports whether sub is the same type as super or a (transitive)
// subtype of it. Every known type conforms to RootType. Unknown types
// conform only to themselves and RootType, so a registry-less deployment
// degrades to exact-name matching.
func (r *Registry) Conforms(sub, super string) bool {
	if super == RootType || sub == super {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for cur := sub; ; {
		p, ok := r.parent[cur]
		if !ok {
			return false
		}
		if p == super {
			return true
		}
		cur = p
	}
}

// Chain returns the inheritance chain of the type from itself up to (and
// including) RootType.
func (r *Registry) Chain(name string) []string {
	chain := []string{name}
	if name == RootType {
		return chain
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for cur := name; ; {
		p, ok := r.parent[cur]
		if !ok {
			chain = append(chain, RootType)
			return chain
		}
		chain = append(chain, p)
		if p == RootType {
			return chain
		}
		cur = p
	}
}

// Subtypes returns the names of all registered types conforming to super,
// including super itself when registered, sorted for determinism.
func (r *Registry) Subtypes(super string) []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.parent)+1)
	for n := range r.parent {
		names = append(names, n)
	}
	r.mu.RUnlock()
	var out []string
	if super == RootType {
		out = append(out, RootType)
	}
	for _, n := range names {
		if r.Conforms(n, super) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered types (excluding RootType).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.parent)
}
