package typing

import (
	"fmt"
	"testing"
	"testing/quick"
)

// quickRegistry builds a deterministic chain hierarchy T0 <- T1 <- ... so
// conformance is decidable arithmetically for cross-checking.
func quickRegistry(depth int) *Registry {
	r := NewRegistry()
	for i := 0; i < depth; i++ {
		parent := ""
		if i > 0 {
			parent = fmt.Sprintf("T%d", i-1)
		}
		r.MustRegister(fmt.Sprintf("T%d", i), parent)
	}
	return r
}

// TestConformsMatchesChainArithmetic (testing/quick): in a chain
// hierarchy, Conforms(Ti, Tj) holds exactly when i >= j.
func TestConformsMatchesChainArithmetic(t *testing.T) {
	const depth = 12
	r := quickRegistry(depth)
	f := func(i, j uint8) bool {
		a, b := int(i)%depth, int(j)%depth
		got := r.Conforms(fmt.Sprintf("T%d", a), fmt.Sprintf("T%d", b))
		return got == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConformsTransitiveProperty (testing/quick): conformance is
// transitive over random triples in the chain.
func TestConformsTransitiveProperty(t *testing.T) {
	const depth = 10
	r := quickRegistry(depth)
	name := func(i uint8) string { return fmt.Sprintf("T%d", int(i)%depth) }
	f := func(a, b, c uint8) bool {
		if r.Conforms(name(a), name(b)) && r.Conforms(name(b), name(c)) {
			return r.Conforms(name(a), name(c))
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestChainLengthProperty (testing/quick): the inheritance chain of Ti
// has exactly i+2 entries (Ti .. T0, root).
func TestChainLengthProperty(t *testing.T) {
	const depth = 10
	r := quickRegistry(depth)
	f := func(i uint8) bool {
		a := int(i) % depth
		return len(r.Chain(fmt.Sprintf("T%d", a))) == a+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
