package sim

import "fmt"

// FaultKind names a failure-injector action.
type FaultKind uint8

const (
	// FaultCrash kills a broker at At and restarts it after Duration:
	// RAM state (queued deliveries, routing and federation tables) is
	// lost, the durable link spool and local subscription registry
	// survive, and neighbors resync on restart.
	FaultCrash FaultKind = iota
	// FaultPartition takes a link down in both directions at At and
	// heals it after Duration; traffic spools at the senders and
	// replays, behind a control resync, on heal.
	FaultPartition
	// FaultStall freezes one subscriber's consumption for Duration —
	// the slow-consumer case the flow policies exist for.
	FaultStall
)

// String returns the fault-kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultPartition:
		return "partition"
	default:
		return "stall"
	}
}

// Fault is one scheduled failure.
type Fault struct {
	// At is the injection time (virtual microseconds).
	At int64
	// Duration is the time to recovery; 0 means the fault never heals.
	Duration int64
	// Kind selects the action.
	Kind FaultKind
	// Broker targets FaultCrash.
	Broker int
	// Link targets FaultPartition (an edge of the topology).
	Link [2]int
	// Sub targets FaultStall: the index into the sorted live
	// subscription IDs at injection time, or -1 to draw one from the
	// fault RNG stream.
	Sub int
}

func (f Fault) validate(brokers int, edges [][2]int) error {
	switch f.Kind {
	case FaultCrash:
		if f.Broker < 0 || f.Broker >= brokers {
			return fmt.Errorf("sim: crash fault targets broker %d of %d", f.Broker, brokers)
		}
	case FaultPartition:
		for _, e := range edges {
			if e == f.Link || (e[0] == f.Link[1] && e[1] == f.Link[0]) {
				return nil
			}
		}
		return fmt.Errorf("sim: partition fault targets non-edge %v", f.Link)
	}
	return nil
}
