package sim

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"eventsys/internal/broker"
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/obs"
	"eventsys/internal/typing"
)

// ObsExperiment (A8) exercises the observability layer end-to-end: a
// networked broker with tracing enabled serves its own metrics over
// HTTP, the experiment drives publish load through it, then scrapes
// /metrics like a Prometheus server would — validating the exposition
// with the repo's own linter, checking counter monotonicity across
// scrapes, and confirming the hop-latency histograms populated.
func ObsExperiment(seed uint64, o Options) (string, error) {
	events := o.Subscribers // reuse the population knob as the load knob
	if events <= 0 {
		events = 500
	}

	reg := obs.NewRegistry()
	srv, err := broker.Serve(broker.ServerConfig{
		ID: "obs-root", Stage: 1, ListenAddr: "127.0.0.1:0",
		Seed: seed, Obs: reg, Trace: true,
	})
	if err != nil {
		return "", err
	}
	defer srv.Close()
	osrv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		return "", err
	}
	defer osrv.Close()
	base := "http://" + osrv.Addr()

	pub, err := broker.DialPublisher(srv.Addr(), "obs-pub")
	if err != nil {
		return "", err
	}
	defer pub.Close()
	ad, err := typing.NewAdvertisement("Stock", 2, "symbol", "price")
	if err != nil {
		return "", err
	}
	if err := pub.Advertise(ad); err != nil {
		return "", err
	}
	time.Sleep(50 * time.Millisecond)
	delivered := make(chan struct{}, events)
	sub, err := broker.DialSubscriber(srv.Addr(), "obs-sub",
		filter.MustParseFilter(`class = "Stock" && price < 1000000`),
		broker.SubscriberOptions{}, func(e *event.Event) { delivered <- struct{}{} })
	if err != nil {
		return "", err
	}
	defer sub.Close()

	publish := func(n int) error {
		for i := 0; i < n; i++ {
			e := event.NewBuilder("Stock").
				Str("symbol", fmt.Sprintf("S%d", i%7)).
				Float("price", float64(i)).Build()
			if err := pub.Publish(e); err != nil {
				return err
			}
		}
		deadline := time.After(10 * time.Second)
		for i := 0; i < n; i++ {
			select {
			case <-delivered:
			case <-deadline:
				return fmt.Errorf("obs: only %d/%d events delivered", i, n)
			}
		}
		return nil
	}

	scrape := func() (string, error) {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("obs: /metrics status %d", resp.StatusCode)
		}
		if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
			return "", fmt.Errorf("obs: malformed exposition: %w", err)
		}
		return string(body), nil
	}

	if err := publish(events / 2); err != nil {
		return "", err
	}
	first, err := scrape()
	if err != nil {
		return "", err
	}
	if err := publish(events - events/2); err != nil {
		return "", err
	}
	second, err := scrape()
	if err != nil {
		return "", err
	}

	recv1 := seriesValue(first, "eventsys_node_received_events_total", `node="obs-root"`)
	recv2 := seriesValue(second, "eventsys_node_received_events_total", `node="obs-root"`)
	if recv2 < recv1 || recv2 < float64(events) {
		return "", fmt.Errorf("obs: received counter not monotonic under load: %v then %v (published %d)",
			recv1, recv2, events)
	}
	hops := seriesValue(second, "eventsys_hop_latency_seconds_count", `hop="match"`)
	if hops <= 0 {
		return "", fmt.Errorf("obs: hop-latency histogram empty with tracing on")
	}
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		if err == nil {
			resp.Body.Close()
		}
		return "", fmt.Errorf("obs: /healthz not healthy while serving")
	} else {
		resp.Body.Close()
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Experiment A8 — observability self-scrape (seed=%d, events=%d)\n\n", seed, events)
	fmt.Fprintf(&b, "%-34s %12s %12s\n", "Series", "Scrape 1", "Scrape 2")
	fmt.Fprintf(&b, "%-34s %12.0f %12.0f\n", "node_received_events_total", recv1, recv2)
	fmt.Fprintf(&b, "%-34s %12.0f %12.0f\n", "node_forwarded_events_total",
		seriesValue(first, "eventsys_node_forwarded_events_total", `node="obs-root"`),
		seriesValue(second, "eventsys_node_forwarded_events_total", `node="obs-root"`))
	fmt.Fprintf(&b, "%-34s %12.0f %12.0f\n", "hop_latency_seconds_count{match}",
		seriesValue(first, "eventsys_hop_latency_seconds_count", `hop="match"`), hops)
	fmt.Fprintf(&b, "\nExposition valid (both scrapes), counters monotonic, histograms\npopulated under load, /healthz 200. Families exported: %d.\n",
		strings.Count(second, "# TYPE "))
	return b.String(), nil
}

// seriesValue extracts the first sample of name whose label block
// contains labelFrag, summing across matching lines (histogram counts
// and reason-labeled counters aggregate naturally). Missing series
// read 0.
func seriesValue(exposition, name, labelFrag string) float64 {
	total := 0.0
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+"{") {
			continue
		}
		if !strings.Contains(line, labelFrag) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err == nil {
			total += v
		}
	}
	return total
}
