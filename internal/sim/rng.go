package sim

import "math/rand/v2"

// Streams partitions the cluster simulation's randomness per subsystem,
// following the inference-sim determinism plan: each concern draws from
// its own seeded PCG stream, so adding a fault to a scenario cannot
// perturb workload content, and reordering link construction cannot
// perturb fault schedules. rand/v2's PCG is stable across Go versions
// and platforms, which is what lets golden digests pin behavior.
type Streams struct {
	// WorkloadSeed seeds the workload generator, which owns its RNG.
	WorkloadSeed uint64
	// Topology drives random topology construction (unused by fixed
	// scenario topologies, reserved for generated meshes).
	Topology *rand.Rand
	// Faults drives fault-schedule draws (random fault targets).
	Faults *rand.Rand
	// Network drives per-frame loss/retransmission draws.
	Network *rand.Rand
	// Placement drives the routing protocol's random descent (unused at
	// stage-1 brokers, supplied for API completeness).
	Placement *rand.Rand
}

// NewStreams derives the per-subsystem streams from one scenario seed.
func NewStreams(seed uint64) *Streams {
	return &Streams{
		WorkloadSeed: seed ^ 0x776f726b6c6f6164, // "workload"
		Topology:     rand.New(rand.NewPCG(seed, 0x746f706f6c6f6779)),
		Faults:       rand.New(rand.NewPCG(seed, 0x6661756c74730000)),
		Network:      rand.New(rand.NewPCG(seed, 0x6e6574776f726b00)),
		Placement:    rand.New(rand.NewPCG(seed, 0x706c6163656d656e)),
	}
}
