package sim

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eventsys/internal/flow"
	"eventsys/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/cluster_digests.txt from the current behavior")

const goldenSeed = 1

// TestScenarioDeterminism is the core regression gate: every scenario,
// run twice with the same seed, must produce byte-identical digests —
// the full ordered delivery trace, ledger, and per-broker stats hash.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := RunScenario(sc.Name, goldenSeed)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := RunScenario(sc.Name, goldenSeed)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.Digest != b.Digest {
				t.Fatalf("same seed, different digests:\n  %s\n  %s", a.Digest, b.Digest)
			}
			if a.DigestLines != b.DigestLines {
				t.Fatalf("same seed, different trace lengths: %d vs %d", a.DigestLines, b.DigestLines)
			}
			if a.Ledger != b.Ledger {
				t.Fatalf("same seed, different ledgers:\n  %+v\n  %+v", a.Ledger, b.Ledger)
			}
		})
	}
}

// TestScenarioSeedsDiffer guards digest coverage: a different seed must
// change the trace (if it didn't, the digest would not be pinning the
// behavior it claims to pin).
func TestScenarioSeedsDiffer(t *testing.T) {
	a, err := RunScenario("steady-tree", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario("steady-tree", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 1 and 2 produced the same digest %s", a.Digest)
	}
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "cluster_digests.txt")
}

// TestScenarioGoldenDigests pins every scenario's digest. An intentional
// behavior change regenerates the file with `go test ./internal/sim
// -run TestScenarioGoldenDigests -update`; an unintentional change fails
// here (and in the CI sim-determinism job via scripts/sim_digests.sh).
func TestScenarioGoldenDigests(t *testing.T) {
	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# scenario seed digest — regenerate with: go test ./internal/sim -run TestScenarioGoldenDigests -update\n")
		for _, sc := range Scenarios() {
			res, err := RunScenario(sc.Name, goldenSeed)
			if err != nil {
				t.Fatalf("%s: %v", sc.Name, err)
			}
			fmt.Fprintf(&sb, "%s %d %s\n", sc.Name, goldenSeed, res.Digest)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	f, err := os.Open(goldenPath(t))
	if err != nil {
		t.Fatalf("golden digests missing (run with -update to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]+" "+fields[1]] = fields[2]
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	for _, sc := range Scenarios() {
		key := fmt.Sprintf("%s %d", sc.Name, goldenSeed)
		exp, ok := want[key]
		if !ok {
			t.Errorf("%s: no golden digest (regenerate with -update)", sc.Name)
			continue
		}
		res, err := RunScenario(sc.Name, goldenSeed)
		if err != nil {
			t.Errorf("%s: %v", sc.Name, err)
			continue
		}
		if got := res.Digest.String(); got != exp {
			t.Errorf("%s: digest drifted\n  golden:  %s\n  current: %s\n(an intentional behavior change regenerates with -update)",
				sc.Name, exp, got)
		}
	}
}

// TestCrashRecoveryMatchesLiveChaos is the acceptance gate mirroring the
// live federation chaos restart test: a relay broker crashes mid-stream
// and restarts, and every subscriber still sees a duplicate-free,
// in-order, gap-free stream — reproduced in virtual time in well under a
// second of wall clock.
func TestCrashRecoveryMatchesLiveChaos(t *testing.T) {
	start := time.Now()
	res, err := RunScenario("crash-recovery-chain", goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Errorf("crash-recovery scenario took %v wall clock; the point of simulation is < 1s", wall)
	}
	if res.Ledger.Delivered == 0 {
		t.Fatal("no deliveries")
	}
	// The relay went down and came back: its stats prove the outage.
	relay := res.Brokers[1]
	if !relay.Up {
		t.Fatal("relay broker did not restart")
	}
	if res.Ledger.DeferredOps != 0 {
		t.Errorf("no client is homed at the relay, yet %d ops were deferred", res.Ledger.DeferredOps)
	}
	if res.Ledger.FrameSpooled == 0 {
		t.Error("the outage should have spooled frames at the chain ends")
	}
	if res.Ledger.Stored != 0 || res.Ledger.FramePending != 0 {
		t.Errorf("undrained state at end of run: stored=%d framePending=%d", res.Ledger.Stored, res.Ledger.FramePending)
	}
}

// TestConservationUnderPolicyFaultGrid sweeps every flow policy against
// crash, partition, and stall schedules and asserts the copy ledger
// balances: published copies are delivered, edge-filtered, dropped, or
// still stored — never silently vanished or double-counted.
func TestConservationUnderPolicyFaultGrid(t *testing.T) {
	policies := map[string]flow.Policy{
		"block":      flow.Block,
		"dropnew":    flow.DropNewest,
		"dropold":    flow.DropOldest,
		"spillstore": flow.SpillToStore,
	}
	schedules := map[string][]Fault{
		"none":      nil,
		"crash":     {{At: 9_000, Duration: 6_000, Kind: FaultCrash, Broker: 1}},
		"crashperm": {{At: 9_000, Duration: 0, Kind: FaultCrash, Broker: 1}},
		"partition": {{At: 9_000, Duration: 6_000, Kind: FaultPartition, Link: [2]int{1, 2}}},
		"stall":     {{At: 9_000, Duration: 8_000, Kind: FaultStall, Sub: -1}},
		"pile-up": {
			{At: 8_000, Duration: 4_000, Kind: FaultPartition, Link: [2]int{0, 1}},
			{At: 10_000, Duration: 5_000, Kind: FaultCrash, Broker: 3},
			{At: 12_000, Duration: 6_000, Kind: FaultStall, Sub: -1},
		},
	}
	w := workload.DefaultCluster(2_000)
	w.Subs, w.Publishes, w.ChurnOps = 40, 300, 30
	w.FlashCrowds, w.ChurnStorms = 1, 1
	w.CrowdSubs, w.CrowdPubs, w.StormSize = 20, 80, 20
	for pname, policy := range policies {
		for sname, faults := range schedules {
			t.Run(pname+"/"+sname, func(t *testing.T) {
				res, err := RunCluster(ClusterConfig{
					Seed:      7,
					Topology:  Chain(4),
					Workload:  w,
					Policy:    policy,
					Window:    8,
					Faults:    faults,
					PublishAt: -1, SubscribeAt: -1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Ledger.Conserved() {
					t.Fatalf("copy ledger does not balance: %+v", res.Ledger)
				}
				l := res.Ledger
				if got := l.FrameArrived + l.FrameDropped + l.FrameLost + l.FramePending; got != l.Frames {
					t.Fatalf("frame ledger does not balance: sent=%d accounted=%d (%+v)", l.Frames, got, l)
				}
				if l.Delivered == 0 {
					t.Fatal("nothing delivered")
				}
			})
		}
	}
}

// TestDeferredClientOps pins the client-retry path: crashing a broker
// that homes clients defers their ops to the restart instead of losing
// them, and the stream stays conserved.
func TestDeferredClientOps(t *testing.T) {
	w := workload.DefaultCluster(1_000)
	w.Subs, w.Publishes = 30, 200
	w.ChurnOps, w.FlashCrowds, w.ChurnStorms = 0, 0, 0
	res, err := RunCluster(ClusterConfig{
		Seed:      3,
		Topology:  Chain(3),
		Workload:  w,
		Policy:    flow.Block,
		Faults:    []Fault{{At: 6_000, Duration: 8_000, Kind: FaultCrash, Broker: 0}},
		PublishAt: -1, SubscribeAt: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.DeferredOps == 0 {
		t.Fatal("broker 0 homes a third of all clients; its outage must defer ops")
	}
	if !res.Ledger.Conserved() {
		t.Fatalf("ledger does not balance: %+v", res.Ledger)
	}
	if res.Ledger.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestTopologyValidation rejects malformed broker graphs and accepts
// redundant (cyclic) meshes, which the election handles.
func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{Brokers: 0},
		{Brokers: 3, Edges: [][2]int{{0, 1}}},                 // disconnected
		{Brokers: 2, Edges: [][2]int{{0, 0}}},                 // self-loop
		{Brokers: 2, Edges: [][2]int{{0, 5}}},                 // out of range
		{Brokers: 3, Edges: [][2]int{{0, 1}, {1, 0}, {1, 2}}}, // duplicate edge
	}
	for i, topo := range bad {
		cfg := ClusterConfig{Seed: 1, Topology: topo, Workload: workload.DefaultCluster(100),
			PublishAt: -1, SubscribeAt: -1}
		if _, err := RunCluster(cfg); err == nil {
			t.Errorf("case %d: topology %+v accepted", i, topo)
		}
	}
	good := []Topology{
		Chain(5), Star(5), Tree(9, 2), RandomTree(6, NewStreams(11)),
		Ring(3), Ring(6),
		{Brokers: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}}}, // redundant mesh
	}
	for _, topo := range good {
		if err := topo.validate(); err != nil {
			t.Errorf("topology %+v rejected: %v", topo, err)
		}
	}
}

// TestRingElection pins the initial election on a redundant mesh: the
// Kruskal order keeps the two lowest edges of a triangle active and
// holds (1,2) standby, with no frames spent — flags only.
func TestRingElection(t *testing.T) {
	w := workload.DefaultCluster(100)
	w.Subs, w.Publishes, w.ChurnOps, w.FlashCrowds, w.ChurnStorms = 5, 20, 0, 0, 0
	res, err := RunCluster(ClusterConfig{
		Seed: 1, Topology: Ring(3), Workload: w,
		PublishAt: -1, SubscribeAt: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ledger.Conserved() {
		t.Fatalf("ledger does not balance: %+v", res.Ledger)
	}
	if res.Failovers != 0 {
		t.Fatalf("no fault was injected, yet %d failovers ran", res.Failovers)
	}
}
