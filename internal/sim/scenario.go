package sim

import (
	"fmt"
	"strings"
	"time"

	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/workload"
)

// Scenario is one named, seeded cluster simulation with its own
// invariant checks. The scenario set is the simulation regression suite:
// CI runs every scenario twice per seed and asserts byte-identical
// digests, and compares the digests against the golden file in
// internal/sim/testdata (see scripts/sim_digests.sh).
type Scenario struct {
	// Name is the CLI and golden-file key.
	Name string
	// About is a one-line description.
	About string
	// Config builds the scenario configuration for a seed.
	Config func(seed uint64) ClusterConfig
	// Check validates scenario-specific invariants beyond conservation.
	Check func(*ClusterResult) error
}

// Scenarios returns the scenario suite in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:  "steady-tree",
			About: "7-broker tree, full default workload (churn, crowds, storms), Block policy",
			Config: func(seed uint64) ClusterConfig {
				return ClusterConfig{
					Seed:      seed,
					Topology:  Tree(7, 2),
					Workload:  workload.DefaultCluster(10_000),
					Policy:    flow.Block,
					Engine:    index.KindCounting,
					PublishAt: -1, SubscribeAt: -1,
				}
			},
			Check: func(r *ClusterResult) error {
				if r.Ledger.Delivered == 0 {
					return fmt.Errorf("steady-tree delivered nothing")
				}
				return nil
			},
		},
		{
			Name:  "flash-crowd-star",
			About: "5-broker star, flash-crowd bursts overrun delivery windows, DropOldest sheds",
			Config: func(seed uint64) ClusterConfig {
				w := workload.DefaultCluster(5_000)
				w.FlashCrowds, w.CrowdSubs, w.CrowdPubs = 3, 60, 400
				return ClusterConfig{
					Seed:      seed,
					Topology:  Star(5),
					Workload:  w,
					Policy:    flow.DropOldest,
					Window:    16,
					ConsumeUS: 40,
					PublishAt: -1, SubscribeAt: -1,
				}
			},
			Check: func(r *ClusterResult) error {
				if r.Ledger.Dropped == 0 {
					return fmt.Errorf("flash-crowd-star shed nothing: the crowd burst should overrun 16-slot windows")
				}
				return nil
			},
		},
		{
			Name:  "churn-storm-chain",
			About: "4-broker chain, correlated churn storms against SpillToStore",
			Config: func(seed uint64) ClusterConfig {
				w := workload.DefaultCluster(20_000)
				w.ChurnOps, w.ChurnStorms, w.StormSize = 200, 3, 80
				w.FlashCrowds = 0
				return ClusterConfig{
					Seed:      seed,
					Topology:  Chain(4),
					Workload:  w,
					Policy:    flow.SpillToStore,
					PublishAt: -1, SubscribeAt: -1,
				}
			},
			Check: func(r *ClusterResult) error {
				if r.Ledger.Delivered == 0 {
					return fmt.Errorf("churn-storm-chain delivered nothing")
				}
				return nil
			},
		},
		{
			Name:  "crash-recovery-chain",
			About: "3-broker chain, middle relay crashes and restarts; oracle proves loss-free in-order recovery",
			Config: func(seed uint64) ClusterConfig {
				w := quiescedWorkload(300, 60, 500, 200)
				// Publishes run [6100, 106100); the crash lands 100us after
				// publish #150, when the relay's queues have drained (the
				// live chaos test quiesces before the kill for the same
				// reason), and heals 20ms later, mid-publish-phase.
				return ClusterConfig{
					Seed:      seed,
					Topology:  Chain(3),
					Workload:  w,
					Policy:    flow.Block,
					PublishAt: 0, SubscribeAt: -1,
					Home: func(client uint64, brokers int) int {
						if client%2 == 0 {
							return 0
						}
						return brokers - 1
					},
					Faults: []Fault{{At: 36_200, Duration: 20_000, Kind: FaultCrash, Broker: 1}},
					Oracle: true,
				}
			},
			Check: func(r *ClusterResult) error {
				if err := oracleClean(r); err != nil {
					return err
				}
				if r.Ledger.FrameLost != 0 || r.Ledger.Dropped != 0 {
					return fmt.Errorf("crash-recovery-chain lost traffic: %d frames, %d copies", r.Ledger.FrameLost, r.Ledger.Dropped)
				}
				if r.Ledger.FrameSpooled == 0 {
					return fmt.Errorf("crash-recovery-chain never spooled: the outage should have forced the durable path")
				}
				return nil
			},
		},
		{
			Name:  "partition-heal-mesh",
			About: "8-broker random tree, a link partitions and heals; oracle proves loss-free in-order delivery",
			Config: func(seed uint64) ClusterConfig {
				topo := RandomTree(8, NewStreams(seed))
				return ClusterConfig{
					Seed:      seed,
					Topology:  topo,
					Workload:  quiescedWorkload(2_000, 120, 600, 100),
					Policy:    flow.Block,
					PublishAt: 0, SubscribeAt: -1,
					Faults: []Fault{{At: 32_100, Duration: 15_000, Kind: FaultPartition, Link: topo.Edges[3]}},
					Oracle: true,
				}
			},
			Check: func(r *ClusterResult) error {
				if err := oracleClean(r); err != nil {
					return err
				}
				if r.Ledger.FrameLost != 0 || r.Ledger.Dropped != 0 {
					return fmt.Errorf("partition-heal-mesh lost traffic: %d frames, %d copies", r.Ledger.FrameLost, r.Ledger.Dropped)
				}
				return nil
			},
		},
		{
			Name:  "broker-death-heal",
			About: "3-broker ring, the hub dies mid-stream; the standby edge promotes and re-routes its spool — oracle-verified",
			Config: func(seed uint64) ClusterConfig {
				// Triangle: the election picks (0,1) and (0,2), so broker 0
				// is the traffic hub, and holds (1,2) standby. Clients live
				// only at 1 and 2; the hub carries their cross-traffic.
				// The crash lands 10us before a publish, when the hub's
				// queues have drained (nothing in its RAM to lose), and the
				// hub stays dead past the end of publishing (106_100) — the
				// whole second half of the stream rides the promoted edge.
				return ClusterConfig{
					Seed:      seed,
					Topology:  Ring(3),
					Workload:  quiescedWorkload(300, 60, 500, 200),
					Policy:    flow.Block,
					PublishAt: 1, SubscribeAt: -1,
					Home: func(client uint64, brokers int) int {
						return 1 + int(client%2)
					},
					Faults: []Fault{{At: 36_090, Duration: 80_000, Kind: FaultCrash, Broker: 0}},
					Oracle: true,
				}
			},
			Check: func(r *ClusterResult) error {
				if err := oracleClean(r); err != nil {
					return err
				}
				if r.Ledger.FrameLost != 0 || r.Ledger.Dropped != 0 {
					return fmt.Errorf("broker-death-heal lost traffic: %d frames, %d copies", r.Ledger.FrameLost, r.Ledger.Dropped)
				}
				if r.Failovers == 0 {
					return fmt.Errorf("the hub died with a standby path available, yet no failover ran")
				}
				if r.Ledger.FrameSpooled == 0 {
					return fmt.Errorf("the dead hub's links should have spooled before the handoff")
				}
				if r.Rerouted == 0 {
					return fmt.Errorf("failover completed without re-routing any orphaned frames")
				}
				if r.Ledger.Stored != 0 || r.Ledger.FramePending != 0 {
					return fmt.Errorf("undrained state at end of run: stored=%d framePending=%d", r.Ledger.Stored, r.Ledger.FramePending)
				}
				return nil
			},
		},
		{
			Name:  "slow-consumer-stall",
			About: "5-broker tree, stalled subscribers back up into SpillToStore; oracle proves complete delivery",
			Config: func(seed uint64) ClusterConfig {
				return ClusterConfig{
					Seed:     seed,
					Topology: Tree(5, 2),
					Workload: quiescedWorkload(1_000, 80, 400, 100),
					Policy:   flow.SpillToStore,
					// Single publish broker: the oracle's order check assumes
					// per-source FIFO from one source.
					PublishAt: 0, SubscribeAt: -1,
					Faults: []Fault{
						{At: 13_100, Duration: 20_000, Kind: FaultStall, Sub: 0},
						{At: 18_100, Duration: 15_000, Kind: FaultStall, Sub: -1},
					},
					Oracle: true,
				}
			},
			Check: func(r *ClusterResult) error {
				if err := oracleClean(r); err != nil {
					return err
				}
				if r.Ledger.Dropped != 0 {
					return fmt.Errorf("slow-consumer-stall dropped %d copies under a lossless policy", r.Ledger.Dropped)
				}
				return nil
			},
		},
		{
			Name:  "lossy-links",
			About: "3-broker chain over 5%-lossy links; retransmission delays, never loses — oracle-verified",
			Config: func(seed uint64) ClusterConfig {
				return ClusterConfig{
					Seed:     seed,
					Topology: Chain(3),
					Link:     LinkProfile{Loss: 0.05},
					Workload: quiescedWorkload(500, 60, 400, 100),
					Policy:   flow.Block,
					// Oracle order checking needs a single publish broker: the
					// delivery guarantee is per-source FIFO, not a global total
					// order across publishers.
					PublishAt: 0, SubscribeAt: -1,
					Oracle: true,
				}
			},
			Check: oracleClean,
		},
		{
			Name:  "million-clients",
			About: "6-broker star, million-client identity space, sharded matching engine",
			Config: func(seed uint64) ClusterConfig {
				w := workload.DefaultCluster(1_000_000)
				w.Subs, w.Publishes = 400, 3_000
				return ClusterConfig{
					Seed:      seed,
					Topology:  Star(6),
					Workload:  w,
					Policy:    flow.Block,
					Engine:    index.KindSharded,
					PublishAt: -1, SubscribeAt: -1,
				}
			},
			Check: func(r *ClusterResult) error {
				if r.Ledger.Delivered == 0 {
					return fmt.Errorf("million-clients delivered nothing")
				}
				return nil
			},
		},
		{
			Name:  "partitioned-scale",
			About: "4 replicas share 64 partitions under a CPU service-time model; aggregate throughput scales near-linearly",
			Config: func(seed uint64) ClusterConfig {
				return PartitionedScale(seed, 4)
			},
			Check: func(r *ClusterResult) error {
				if r.Ledger.Delivered == 0 {
					return fmt.Errorf("partitioned-scale delivered nothing")
				}
				for _, bs := range r.Brokers {
					if bs.Received == 0 {
						return fmt.Errorf("partitioned-scale: broker %d processed nothing — partition placement is not spreading ingress", bs.ID)
					}
				}
				if r.LatencyP50US <= 0 || r.LatencyP99US < r.LatencyP50US {
					return fmt.Errorf("partitioned-scale latency percentiles degenerate: p50=%dus p99=%dus", r.LatencyP50US, r.LatencyP99US)
				}
				return nil
			},
		},
	}
}

// PartitionedScale builds the partitioned-scale configuration for a
// replica count: one fixed workload (4000 publishes arriving every 5µs)
// against brokers that each need 40µs of CPU per event — a single
// broker is 8x oversubscribed, so completion time is CPU-bound and the
// partition map's ingress spreading is what buys throughput. The
// scenario pins replicas=4; PartitionExperiment sweeps 1/2/4/8.
func PartitionedScale(seed uint64, replicas int) ClusterConfig {
	return ClusterConfig{
		Seed:       seed,
		Topology:   Chain(replicas),
		Workload:   quiescedWorkload(800, 64, 4_000, 5),
		Policy:     flow.Block,
		Partitions: 64,
		ProcUS:     40,
		PublishAt:  -1, SubscribeAt: -1,
	}
}

// quiescedWorkload is the oracle-compatible workload shape: no churn, no
// crowds, no storms, and publish pacing slow enough that the control
// plane fully propagates before publishing starts.
func quiescedWorkload(clients, subs, publishes int, pubGap int64) workload.ClusterConfig {
	return workload.ClusterConfig{
		Clients:        clients,
		Topics:         16,
		TopicSkew:      1.2,
		ValueRange:     1000,
		Subs:           subs,
		ValueBoundProb: 0.3,
		Publishes:      publishes,
		PubGap:         pubGap,
	}
}

func oracleClean(r *ClusterResult) error {
	if r.OracleMissing != 0 || r.OracleExtra != 0 || r.Duplicates != 0 || r.OrderViolations != 0 {
		return fmt.Errorf("oracle violated: missing=%d extra=%d duplicates=%d order=%d",
			r.OracleMissing, r.OracleExtra, r.Duplicates, r.OrderViolations)
	}
	return nil
}

// ScenarioByName finds a scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RunScenario runs one named scenario and applies its checks plus the
// universal conservation invariant.
func RunScenario(name string, seed uint64) (*ClusterResult, error) {
	sc, ok := ScenarioByName(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown scenario %q", name)
	}
	res, err := RunCluster(sc.Config(seed))
	if err != nil {
		return nil, err
	}
	if !res.Ledger.Conserved() {
		return res, fmt.Errorf("sim: %s violates copy conservation: %+v", name, res.Ledger)
	}
	if sc.Check != nil {
		if err := sc.Check(res); err != nil {
			return res, fmt.Errorf("sim: %s: %w", name, err)
		}
	}
	return res, nil
}

// ClusterExperiment runs the full cluster scenario suite once (A9) and
// reports one line per scenario: scale, outcome counters, virtual and
// wall time, and the digest that pins the run.
func ClusterExperiment(seed uint64) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Experiment A9 — cluster simulation scenarios (seed=%d)\n\n", seed)
	fmt.Fprintf(&sb, "%-22s %7s %9s %9s %7s %8s %9s %8s %8s %9s  %s\n",
		"scenario", "brokers", "delivered", "dropped", "spooled", "virtual", "events", "p50-del", "p99-del", "wall", "digest")
	for _, sc := range Scenarios() {
		res, err := RunScenario(sc.Name, seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-22s %7d %9d %9d %7d %7.0fms %9d %7dus %7dus %9s  %s…\n",
			sc.Name, len(res.Brokers), res.Ledger.Delivered, res.Ledger.Dropped,
			res.Ledger.FrameSpooled, float64(res.VirtualUS)/1000, res.Events,
			res.LatencyP50US, res.LatencyP99US,
			res.Wall.Round(time.Millisecond), res.Digest.String()[:12])
	}
	sb.WriteString("\nEvery scenario passed its conservation and oracle checks.\n")
	return sb.String(), nil
}

// HealExperiment (A10) runs the broker-death-heal scenario across seeds
// and reports the self-healing numbers: how many dead-link failovers the
// election drove, how many orphaned spool frames were re-routed onto the
// promoted standby edge, and how long (virtual time) the mesh took to
// hand traffic over — all while the oracle holds every delivery
// duplicate-free, loss-free, and in order.
func HealExperiment(seed uint64) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Experiment A10 — broker-death failover and self-healing (base seed=%d)\n\n", seed)
	fmt.Fprintf(&sb, "%-6s %9s %9s %8s %9s %9s %9s  %s\n",
		"seed", "failovers", "rerouted", "spooled", "deliv", "heal_us", "wall", "digest")
	for i := uint64(0); i < 3; i++ {
		s := seed + i
		res, err := RunScenario("broker-death-heal", s)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-6d %9d %9d %8d %9d %9d %9s  %s…\n",
			s, res.Failovers, res.Rerouted, res.Ledger.FrameSpooled,
			res.Ledger.Delivered, res.HealUS,
			res.Wall.Round(time.Millisecond), res.Digest.String()[:12])
	}
	sb.WriteString("\nThe hub broker died mid-stream; the standby ring edge promoted,\n")
	sb.WriteString("the orphaned spools re-routed onto it, and every subscriber's\n")
	sb.WriteString("stream stayed duplicate-free, loss-free, and in order.\n")
	return sb.String(), nil
}

// PartitionExperiment (A11) sweeps the partitioned-scale workload over
// replica counts and reports aggregate throughput: events processed
// across all brokers per virtual second, with delivery-latency
// percentiles. The run errs if 4 replicas fail to reach 3x the single
// broker's aggregate rate — the scenario's acceptance gate, enforced
// here and in the sim tests.
func PartitionExperiment(seed uint64) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Experiment A11 — partitioned scale-out across replicas (seed=%d)\n\n", seed)
	fmt.Fprintf(&sb, "%-9s %10s %10s %9s %12s %9s %9s %9s\n",
		"replicas", "processed", "delivered", "virtual", "events/vsec", "speedup", "p50-del", "p99-del")
	var base float64
	for _, replicas := range []int{1, 2, 4, 8} {
		res, err := RunCluster(PartitionedScale(seed, replicas))
		if err != nil {
			return "", err
		}
		if !res.Ledger.Conserved() {
			return "", fmt.Errorf("sim: partitioned-scale at %d replicas violates copy conservation: %+v", replicas, res.Ledger)
		}
		var processed uint64
		for _, b := range res.Brokers {
			processed += b.Received
		}
		rate := res.AggregateRate()
		if replicas == 1 {
			base = rate
		}
		speedup := rate / base
		fmt.Fprintf(&sb, "%-9d %10d %10d %8.1fms %12.0f %8.2fx %8dus %8dus\n",
			replicas, processed, res.Ledger.Delivered,
			float64(res.VirtualUS)/1000, rate, speedup,
			res.LatencyP50US, res.LatencyP99US)
		if replicas == 4 && speedup < 3 {
			return "", fmt.Errorf("sim: partitioned-scale at 4 replicas reached only %.2fx aggregate throughput (acceptance: >= 3x)", speedup)
		}
	}
	sb.WriteString("\nPublishes fan in to each event's partition owner, so ingress CPU is\n")
	sb.WriteString("spread across the replica group: aggregate forwarded-events per\n")
	sb.WriteString("virtual second scales near-linearly while every copy ledger balances.\n")
	return sb.String(), nil
}

// ScenarioDigests runs every scenario and returns "name seed digest"
// lines — the format of testdata/cluster_digests.txt, consumed by
// scripts/sim_digests.sh for the CI determinism gate.
func ScenarioDigests(seed uint64) (string, error) {
	var sb strings.Builder
	for _, sc := range Scenarios() {
		res, err := RunScenario(sc.Name, seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%s %d %s\n", sc.Name, seed, res.Digest)
	}
	return sb.String(), nil
}
