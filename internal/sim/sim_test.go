package sim

import (
	"strings"
	"testing"

	"eventsys/internal/index"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed, 120, 800)
	cfg.Fanouts = []int{1, 4, 16}
	return cfg
}

func TestRunValidatesAgainstOracle(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Validate = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseNegatives != 0 {
		t.Errorf("false negatives = %d (pre-filtering dropped wanted events)", res.FalseNegatives)
	}
	if res.OracleDisagreements != 0 {
		t.Errorf("oracle disagreements = %d", res.OracleDisagreements)
	}
	if res.Duplicates != 0 {
		t.Errorf("duplicate deliveries = %d", res.Duplicates)
	}
	if res.Delivered == 0 {
		t.Error("nothing was delivered; workload or placement broken")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := smallConfig(7)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Delivered != r2.Delivered || r1.GlobalRLC != r2.GlobalRLC ||
		r1.BrokerFilters != r2.BrokerFilters || r1.ForwardTotal != r2.ForwardTotal {
		t.Errorf("same seed diverged: %+v vs %+v", r1, r2)
	}
	cfg.Seed = 8
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Delivered == r3.Delivered && r1.ForwardTotal == r3.ForwardTotal {
		t.Error("different seeds produced identical traffic (suspicious)")
	}
}

func TestCountingEngineEquivalence(t *testing.T) {
	cfg := smallConfig(3)
	naive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = index.KindCounting
	counting, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Delivered != counting.Delivered || naive.ForwardTotal != counting.ForwardTotal {
		t.Errorf("engines disagree: naive %d/%d vs counting %d/%d",
			naive.Delivered, naive.ForwardTotal, counting.Delivered, counting.ForwardTotal)
	}
}

func TestRLCShape(t *testing.T) {
	res, err := Run(DefaultConfig(11, 300, 2000))
	if err != nil {
		t.Fatal(err)
	}
	byStage := make(map[int]float64)
	for _, s := range res.Summaries {
		byStage[s.Stage] = s.AvgRLC
	}
	// Paper shape: per-node RLC grows from stage 0 towards the middle
	// stages and every broker is far below the centralized server's 1.
	if byStage[0] >= byStage[1] {
		t.Errorf("stage0 avg RLC %v should be below stage1 %v", byStage[0], byStage[1])
	}
	if byStage[1] >= byStage[2] {
		t.Errorf("stage1 avg RLC %v should be below stage2 %v", byStage[1], byStage[2])
	}
	for stage, rlc := range byStage {
		if rlc >= 1 {
			t.Errorf("stage %d avg RLC %v not below centralized 1", stage, rlc)
		}
	}
	// Global total ≈ 1 claim: within a factor of a few.
	if res.GlobalRLC < 0.1 || res.GlobalRLC > 3 {
		t.Errorf("global RLC = %v, want ≈ 1", res.GlobalRLC)
	}
}

func TestSubscriberMRShape(t *testing.T) {
	res, err := Run(DefaultConfig(13, 300, 3000))
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated near the paper's 0.87 (see workload.BiblioConfig).
	if res.SubscriberAvgMR < 0.7 || res.SubscriberAvgMR > 1.0 {
		t.Errorf("subscriber avg MR = %v, want in [0.7, 1.0] near 0.87", res.SubscriberAvgMR)
	}
	// Subscribers see more relevant traffic than the stage-1 brokers
	// feeding them: that is what pre-filtering buys at the edge.
	byStage := make(map[int]float64)
	for _, s := range res.Summaries {
		byStage[s.Stage] = s.AvgMR
	}
	if byStage[0] <= byStage[1] {
		t.Errorf("subscriber MR %v not above stage-1 MR %v (pre-filtering is not helping)",
			byStage[0], byStage[1])
	}
}

func TestWildcardPopulationRuns(t *testing.T) {
	cfg := smallConfig(17)
	cfg.WildcardProb = 0.3
	cfg.Validate = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseNegatives != 0 || res.Duplicates != 0 {
		t.Errorf("wildcard run broke delivery: FN=%d dup=%d", res.FalseNegatives, res.Duplicates)
	}
}

func TestRandomPlacementStoresMoreFilters(t *testing.T) {
	cfg := DefaultConfig(19, 400, 500)
	clustered, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RandomPlacement = true
	random, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if random.BrokerFilters <= clustered.BrokerFilters {
		t.Errorf("random placement should store more filters: random=%d clustered=%d",
			random.BrokerFilters, clustered.BrokerFilters)
	}
	if random.Delivered != clustered.Delivered {
		t.Errorf("placement changed delivery: %d vs %d", random.Delivered, clustered.Delivered)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Fanouts: []int{1}, Subscribers: 0, Events: 10},
		{Fanouts: []int{1}, Subscribers: 10, Events: 0},
		{Fanouts: []int{0}, Subscribers: 10, Events: 10},
		{Fanouts: []int{1, 2}, Subscribers: 10, Events: 10, StageAttrs: []int{4, 3}}, // wrong len
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, name := range Experiments() {
		t.Run(name, func(t *testing.T) {
			out, err := RunExperiment(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) == 0 || !strings.Contains(out, "Experiment") {
				t.Errorf("report malformed:\n%s", out)
			}
		})
	}
	if _, err := RunExperiment("nosuch", 1); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestSubscriberFilters(t *testing.T) {
	cfg := smallConfig(23)
	fs, err := SubscriberFilters(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != cfg.Subscribers {
		t.Errorf("filters = %d, want %d", len(fs), cfg.Subscribers)
	}
	for id, f := range fs {
		if f == nil || f.Class != "Biblio" {
			t.Errorf("filter for %s = %v", id, f)
		}
	}
}
