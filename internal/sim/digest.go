package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
)

// Digest is the unit of simulation regression testing: a SHA-256 over
// the ordered delivery trace plus the final conservation counters and
// per-broker statistics. Two runs of the same scenario with the same
// seed must produce byte-identical digests; a digest change is a
// behavior change — an intentional one updates the golden file, an
// unintentional one fails CI.
//
// Everything hashed is integer-valued or drawn from fixed string pools
// (the cluster workload never fabricates floats), so digests are stable
// across architectures and Go releases.
type Digest [sha256.Size]byte

// String returns the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// digestWriter accumulates the hashed trace incrementally so million-op
// runs never materialize the trace in memory.
type digestWriter struct {
	h     hash.Hash
	lines uint64
}

func newDigestWriter() *digestWriter {
	return &digestWriter{h: sha256.New()}
}

// delivery records one delivered event copy: virtual time, subscriber,
// event ID.
func (w *digestWriter) delivery(at int64, subID string, evID uint64) {
	fmt.Fprintf(w.h, "d %d %s %d\n", at, subID, evID)
	w.lines++
}

// line appends one pre-formatted summary line (ledger counters,
// per-broker stats).
func (w *digestWriter) line(format string, args ...interface{}) {
	fmt.Fprintf(w.h, format, args...)
	fmt.Fprint(w.h, "\n")
	w.lines++
}

// sum finalizes the digest.
func (w *digestWriter) sum() Digest {
	var d Digest
	copy(d[:], w.h.Sum(nil))
	return d
}
