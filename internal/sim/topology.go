package sim

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/mesh"
	"eventsys/internal/typing"
	"eventsys/internal/workload"
)

// TopologyComparison (experiment A4) evaluates the non-hierarchical
// configurations of Section 4's footnote 1: the same subscription and
// event populations routed over differently shaped acyclic broker
// graphs, measuring stored filter state and per-node load. Delivery is
// identical by construction (verified), so the comparison isolates the
// topology's effect on state and load distribution.
func TopologyComparison(seed uint64) (string, error) {
	const brokers, subs, events = 16, 200, 2000

	bib, err := workload.NewBiblio(seed, workload.DefaultBiblio())
	if err != nil {
		return "", err
	}
	type subscription struct {
		id string
		f  *filter.Filter
	}
	population := make([]subscription, subs)
	for i := range population {
		population[i] = subscription{id: fmt.Sprintf("s%03d", i), f: bib.Subscription(0, true)}
	}
	eventsList := make([]*event.Event, events)
	for i := range eventsList {
		eventsList[i] = bib.Event()
	}

	var ads typing.AdvertisementSet
	ad, err := bib.Generator().Advertisement(4)
	if err != nil {
		return "", err
	}
	ad.StageAttrs = []int{4, 3, 2, 1}
	if err := ads.Put(ad); err != nil {
		return "", err
	}

	topologies := []struct {
		name    string
		connect func(m *mesh.Mesh, ids []mesh.BrokerID, rng *rand.Rand) error
	}{
		{"star", func(m *mesh.Mesh, ids []mesh.BrokerID, _ *rand.Rand) error {
			for _, id := range ids[1:] {
				if err := m.Connect(ids[0], id); err != nil {
					return err
				}
			}
			return nil
		}},
		{"line", func(m *mesh.Mesh, ids []mesh.BrokerID, _ *rand.Rand) error {
			for i := 1; i < len(ids); i++ {
				if err := m.Connect(ids[i-1], ids[i]); err != nil {
					return err
				}
			}
			return nil
		}},
		{"balanced-tree", func(m *mesh.Mesh, ids []mesh.BrokerID, _ *rand.Rand) error {
			for i := 1; i < len(ids); i++ {
				if err := m.Connect(ids[(i-1)/2], ids[i]); err != nil {
					return err
				}
			}
			return nil
		}},
		{"random-tree", func(m *mesh.Mesh, ids []mesh.BrokerID, rng *rand.Rand) error {
			for i := 1; i < len(ids); i++ {
				if err := m.Connect(ids[rng.IntN(i)], ids[i]); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Experiment A4 — acyclic topology comparison (seed=%d, brokers=%d, subs=%d, events=%d)\n\n",
		seed, brokers, subs, events)
	fmt.Fprintf(&b, "%-14s %14s %14s %14s %12s %11s %11s\n",
		"Topology", "Stored filters", "Max node RLC", "Global RLC", "Delivered", "Propagated", "Suppressed")

	var reference []string
	for _, topo := range topologies {
		rng := rand.New(rand.NewPCG(seed, 77))
		m := mesh.New(mesh.Config{Ads: &ads, MaxStage: 3})
		ids := make([]mesh.BrokerID, brokers)
		for i := range ids {
			ids[i] = mesh.BrokerID(fmt.Sprintf("B%02d", i))
			if err := m.AddBroker(ids[i]); err != nil {
				return "", err
			}
		}
		if err := topo.connect(m, ids, rng); err != nil {
			return "", err
		}
		attach := rand.New(rand.NewPCG(seed, 88))
		for _, s := range population {
			if err := m.Subscribe(ids[attach.IntN(len(ids))], s.id, s.f); err != nil {
				return "", err
			}
		}
		publishAt := rand.New(rand.NewPCG(seed, 99))
		var deliveredLog []string
		for _, ev := range eventsList {
			got, err := m.Publish(ids[publishAt.IntN(len(ids))], ev.Clone())
			if err != nil {
				return "", err
			}
			deliveredLog = append(deliveredLog, strings.Join(got, ","))
		}
		if reference == nil {
			reference = deliveredLog
		} else if !equalLogs(reference, deliveredLog) {
			return "", fmt.Errorf("sim: topology %q delivered differently", topo.name)
		}
		stats := m.Stats()
		var maxRLC, global float64
		var delivered uint64
		for _, st := range stats {
			r := st.RLC(uint64(events), uint64(subs))
			global += r
			if r > maxRLC {
				maxRLC = r
			}
			delivered += st.Delivered
		}
		propagated, suppressed := m.PropagationStats()
		fmt.Fprintf(&b, "%-14s %14d %14.4f %14.4f %12d %11d %11d\n",
			topo.name, m.StoredFilters(), maxRLC, global, delivered, propagated, suppressed)
	}
	b.WriteString("\nAll topologies deliver identically; flatter graphs concentrate state\nand load at hubs, deeper graphs spread it (the hierarchy's rationale).\nPropagated vs suppressed shows covering-based pruning's state economy:\nevery suppressed entry is a subscription a link never had to carry.\n")
	return b.String(), nil
}

func equalLogs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Delivery order within one event may differ; compare as sets.
		as := strings.Split(a[i], ",")
		bs := strings.Split(b[i], ",")
		sort.Strings(as)
		sort.Strings(bs)
		if strings.Join(as, ",") != strings.Join(bs, ",") {
			return false
		}
	}
	return true
}
