package sim

import (
	"fmt"
	"sort"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
	"eventsys/internal/partition"
	"eventsys/internal/peering"
	"eventsys/internal/routing"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
	"eventsys/internal/workload"
)

// This file is the discrete-event cluster simulator: simulated broker
// processes wrapping the real routing.Node (local matching), peering.Core
// (federation routing) and flow.Queue (delivery and link queues), joined
// by simulated links with latency/bandwidth/loss and driven by the
// virtual-clock scheduler in clock.go. The same seed yields bit-identical
// delivery traces and digests; see docs/ARCHITECTURE.md ("Simulation").

// Topology is a connected broker graph. Cycles are allowed: like the
// live mesh, the simulator elects a deterministic spanning forest over
// the configured edges (Kruskal over (min, max)-sorted edges), routes
// only across elected edges, and holds the redundant edges as standby
// failover paths that promote when an elected link dies.
type Topology struct {
	// Brokers is the broker count; brokers are numbered 0..Brokers-1.
	Brokers int
	// Edges are the undirected peer links.
	Edges [][2]int
}

// Chain returns a line topology 0–1–…–n-1.
func Chain(n int) Topology {
	t := Topology{Brokers: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]int{i - 1, i})
	}
	return t
}

// Star returns a hub-and-spoke topology with broker 0 as the hub.
func Star(n int) Topology {
	t := Topology{Brokers: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]int{0, i})
	}
	return t
}

// Tree returns a complete k-ary tree over n brokers (0 the root).
func Tree(n, fanout int) Topology {
	t := Topology{Brokers: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]int{(i - 1) / fanout, i})
	}
	return t
}

// Ring returns a cycle topology 0–1–…–n-1–0 (n ≥ 3): the minimal
// redundant mesh. The election holds one edge standby, so any single
// broker death leaves a path between every surviving pair.
func Ring(n int) Topology {
	t := Chain(n)
	if n >= 3 {
		t.Edges = append(t.Edges, [2]int{0, n - 1})
	}
	return t
}

// RandomTree draws a uniform random recursive tree over n brokers from
// the topology RNG stream: broker i attaches to a uniform earlier broker.
// Arbitrary acyclic meshes, not just the paper hierarchy.
func RandomTree(n int, streams *Streams) Topology {
	t := Topology{Brokers: n}
	for i := 1; i < n; i++ {
		t.Edges = append(t.Edges, [2]int{streams.Topology.IntN(i), i})
	}
	return t
}

func (t Topology) validate() error {
	if t.Brokers <= 0 {
		return fmt.Errorf("sim: topology needs brokers, got %d", t.Brokers)
	}
	// Union-find connectivity. Cycles are fine — redundant edges become
	// standby failover paths — but the graph must be connected, edges
	// must be real pairs, and no pair may be configured twice (a double
	// edge would alias one link's queues and spool).
	parent := make([]int, t.Brokers)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	seen := make(map[[2]int]bool, len(t.Edges))
	for _, e := range t.Edges {
		if e[0] < 0 || e[0] >= t.Brokers || e[1] < 0 || e[1] >= t.Brokers || e[0] == e[1] {
			return fmt.Errorf("sim: bad edge %v", e)
		}
		k := [2]int{min(e[0], e[1]), max(e[0], e[1])}
		if seen[k] {
			return fmt.Errorf("sim: duplicate edge %v", e)
		}
		seen[k] = true
		parent[find(e[0])] = find(e[1])
	}
	for i := 1; i < t.Brokers; i++ {
		if find(i) != find(0) {
			return fmt.Errorf("sim: topology is disconnected (broker %d unreachable from 0)", i)
		}
	}
	return nil
}

// LinkProfile shapes every simulated link.
type LinkProfile struct {
	// LatencyUS is the one-way propagation delay in virtual microseconds
	// (default 30).
	LatencyUS int64
	// TxUS is the per-frame serialization time — the bandwidth model: a
	// link transmits one frame per TxUS and queues behind it (default 1).
	TxUS int64
	// Loss is the probability one transmission attempt is lost. The link
	// is reliable like TCP: a lost attempt is retransmitted after
	// RetransUS, costing delay, never data or order. Draws come from the
	// network RNG stream, and only when Loss > 0 — lossless scenarios
	// never consume it.
	Loss float64
	// RetransUS is the added delay per lost attempt (default
	// 2*LatencyUS + TxUS, a retransmit timeout).
	RetransUS int64
}

func (p LinkProfile) withDefaults() LinkProfile {
	if p.LatencyUS <= 0 {
		p.LatencyUS = 30
	}
	if p.TxUS <= 0 {
		p.TxUS = 1
	}
	if p.RetransUS <= 0 {
		p.RetransUS = 2*p.LatencyUS + p.TxUS
	}
	return p
}

// ClusterConfig parameterizes one cluster simulation run.
type ClusterConfig struct {
	// Seed derives every RNG stream (see Streams).
	Seed uint64
	// Topology is the broker graph.
	Topology Topology
	// Link shapes every link.
	Link LinkProfile
	// Workload generates the client op stream.
	Workload workload.ClusterConfig
	// Faults is the failure schedule.
	Faults []Fault
	// Policy and Window govern every event queue (per-subscriber delivery
	// queues and per-link outbound queues). Window defaults to 64.
	Policy flow.Policy
	Window int
	// ConsumeUS is a subscriber's per-event consumption time (default 20).
	ConsumeUS int64
	// ProcUS is a broker's per-event service time: each broker processes
	// one event (local publish or arriving frame) per ProcUS of virtual
	// time, serialized — the CPU model that makes a single broker a
	// bottleneck and a partitioned replica group scale. 0 processes
	// inline with no service time (every pre-existing scenario), leaving
	// those digests untouched.
	ProcUS int64
	// Partitions, when > 0, shards the event key space: the brokers form
	// one replica group under a rendezvous-hashed partition map (the same
	// internal/partition map live brokers derive from the link-state
	// database) and every publish executes at its partition's owner —
	// the simulator's mirror of partition-aware publisher fan-in. 0 keeps
	// the PublishAt/Home placement.
	Partitions int
	// Engine selects the local matching engine at brokers.
	Engine index.Kind
	// MaxStage clamps hop-distance weakening of federation interests
	// (0 = full filters propagate everywhere).
	MaxStage int
	// PublishAt pins every publish to one broker (-1 = hash the client).
	PublishAt int
	// SubscribeAt pins every subscription to one broker (-1 = hash).
	SubscribeAt int
	// Home optionally maps a client to its home broker when the
	// corresponding pin is -1, replacing the default client-hash
	// placement. Must be a pure function for determinism.
	Home func(client uint64, brokers int) int
	// Oracle tracks the exact expected delivery set per subscriber and
	// verifies it at the end: duplicate-free, loss-free, in publish
	// order. Valid only for scenarios whose control plane quiesces before
	// publishing (no churn) and whose policy is lossless (Block or
	// SpillToStore), with a single publish broker for a total order.
	Oracle bool
}

// Ledger is the simulation's conservation accounting. The copy ledger
// counts per-subscriber event copies from the moment the home broker's
// matching engine selects the subscriber; the frame ledger counts
// broker-to-broker event frames. The invariant the tests pin:
//
//	Copies == Delivered + EdgeFiltered + Dropped + Stored
//
// where Stored is the backlog still queued, spilled, or blocked upstream
// when the run ends (nonzero only under unhealed faults or stalls).
type Ledger struct {
	// Published counts publish ops executed at an up broker.
	Published uint64
	// Copies counts subscriber copies enqueued toward delivery queues.
	Copies uint64
	// Delivered counts copies consumed by subscriber handlers.
	Delivered uint64
	// EdgeFiltered counts copies the subscriber runtime's perfect filter
	// rejected (broker-side matching is stage-weakened, like the live
	// edge).
	EdgeFiltered uint64
	// Dropped counts copies discarded: by queue policy, or with a crashed
	// broker's RAM.
	Dropped uint64
	// Stored counts copies still undelivered at the end of the run.
	Stored uint64
	// Frames counts event frames handed to links; FrameArrived those
	// processed by the receiving broker; FrameSpooled those that went
	// through a durable link spool; FrameDropped those a link queue's
	// policy discarded; FrameLost those destroyed with a crashed broker's
	// RAM; FramePending those still spooled or queued at the end.
	Frames       uint64
	FrameArrived uint64
	FrameSpooled uint64
	FrameDropped uint64
	FrameLost    uint64
	FramePending uint64
	// DeferredOps counts client ops that waited for a crashed home broker
	// to restart.
	DeferredOps uint64
}

// Conserved reports whether the copy ledger balances.
func (l Ledger) Conserved() bool {
	return l.Copies == l.Delivered+l.EdgeFiltered+l.Dropped+l.Stored
}

// BrokerSimStats is one simulated broker's final accounting.
type BrokerSimStats struct {
	ID       int
	Up       bool
	Received uint64 // event frames + local publishes processed
	Sent     uint64 // event frames handed to links
	Lost     uint64 // frames destroyed with this broker's RAM at a crash
	Spooled  uint64 // frames that transited this broker's durable spools
	Pending  uint64 // frames still spooled/queued at the end
	Filters  int    // federation filter count (locals + interests)
}

// ClusterResult is the outcome of one cluster simulation.
type ClusterResult struct {
	// Digest is the seed-stable SHA-256 over the ordered delivery trace,
	// the ledger, and per-broker stats — the regression unit.
	Digest Digest
	// DigestLines is the number of hashed lines (trace length guard).
	DigestLines uint64
	// Ledger is the conservation accounting.
	Ledger Ledger
	// Brokers is the per-broker accounting.
	Brokers []BrokerSimStats
	// VirtualUS is the final virtual clock; Events the scheduler events
	// run; Wall the host time the run took.
	VirtualUS int64
	Events    uint64
	Wall      time.Duration
	// Oracle verification (Oracle configs only): copies a subscriber
	// should have received but did not, copies it should not have
	// received, duplicate deliveries, and out-of-order deliveries.
	OracleMissing, OracleExtra, Duplicates, OrderViolations int
	// Failovers counts election-driven dead-link handoffs; Rerouted the
	// orphaned spool frames re-routed onto promoted standby links; HealUS
	// the virtual time from the first failover mark to the last completed
	// handoff (0 when no failover ran).
	Failovers uint64
	Rerouted  uint64
	HealUS    int64
	// LatencyP50US and LatencyP99US are delivery-latency percentiles in
	// virtual microseconds: publish to handler consumption, over every
	// delivered copy. Reported, never hashed into the digest — the trace
	// already pins delivery times line by line.
	LatencyP50US int64
	LatencyP99US int64
}

// AggregateRate returns the cluster's aggregate processing rate in
// events per virtual second: every event a broker processed (local
// publishes plus arriving forwarded frames, summed across brokers)
// divided by the run's virtual duration — the scaling metric of the
// partitioned-scale scenario.
func (r *ClusterResult) AggregateRate() float64 {
	if r.VirtualUS <= 0 {
		return 0
	}
	var n uint64
	for _, b := range r.Brokers {
		n += b.Received
	}
	return float64(n) * 1e6 / float64(r.VirtualUS)
}

// --- simulated broker and link state ---

type frameKind uint8

const (
	frEvent frameKind = iota
	frUpdate
	frResync
)

type linkFrame struct {
	kind    frameKind
	ev      *event.Event
	entry   peering.Entry
	entries []peering.Entry
}

// outLink is one direction of a peer link: the sender-side queues and
// the wire model. ctrl is the priority control channel (never dropped,
// like the live writer's control lane); q is the policy-governed event
// queue; spool is the durable FIFO that survives the sender's crash;
// blocked holds Block-policy overflow (RAM, upstream backpressure).
// epoch invalidates scheduled transmissions and arrivals when the link
// goes down; down marks this direction severed until the re-establish.
type outLink struct {
	from, to  int
	epoch     uint64
	down      bool
	busyUntil int64
	pumping   bool
	ctrl      []linkFrame
	q         *flow.Queue[linkFrame]
	blocked   []linkFrame
	spool     []linkFrame
	inflight  []linkFrame
}

type simSub struct {
	id       string
	broker   int
	orig     *filter.Filter
	stored   *filter.Filter // node-side weakened form, for unsubscribe
	q        *flow.Queue[*event.Event]
	backlog  []*event.Event // durable spill backlog (FIFO behind q)
	waiting  []*event.Event // Block-policy overflow (RAM)
	consume  bool           // a consume tick is scheduled
	stallTil int64
}

type simBroker struct {
	id      int
	up      bool
	node    *routing.Node
	fed     *peering.Core
	peers   []int // sorted neighbor ids
	out     map[int]*outLink
	locals  map[string]*simSub // durable registry: clients re-attach on restart
	persist map[peering.LinkID][]peering.Entry

	// Control-plane state mirroring the live broker's election. active
	// marks elected (traffic-carrying) links and, like the persisted peer
	// state on disk, survives a crash — a restarted broker routes replayed
	// traffic over its pre-crash elected links until the next election.
	// pending marks promoted links whose resync has not landed; promoted
	// the standby→active transitions of the in-progress election round;
	// failover dead links awaiting the make-before-break spool handoff.
	// The last three are RAM: a crash clears them.
	active   map[int]bool
	pending  map[int]bool
	promoted map[int]bool
	failover map[int]bool

	counters *metrics.Counters
	deferred []workload.Op

	// procBusy is the broker's CPU horizon under the ProcUS service-time
	// model: the next admitted event starts processing no earlier.
	procBusy int64

	received, sent, lost, spooled uint64
}

type clusterSim struct {
	cfg     ClusterConfig
	sched   scheduler
	streams *Streams
	ads     *typing.AdvertisementSet
	brokers []*simBroker
	subs    map[string]*simSub
	dw      *digestWriter
	ledger  Ledger
	// failover accounting: election-driven dead-link handoffs, frames
	// re-routed from orphaned spools onto promoted links, and the virtual
	// time from the first failover mark to the last completed handoff.
	failovers uint64
	rerouted  uint64
	healStart int64
	healUS    int64
	// partition placement (Partitions > 0): the rendezvous map over the
	// broker set and the partition → broker-index table derived from it.
	pmap      *partition.Map
	partOwner []int
	// delivery-latency accounting: publish time per event ID, and one
	// latency sample per delivered copy.
	pubAt map[uint64]int64
	lats  []int64
	// oracle state
	expected map[string][]uint64
	got      map[string][]uint64
	base     time.Time
}

// RunCluster executes one cluster simulation.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	start := time.Now()
	s, gen, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	s.scheduleFaults()
	s.scheduleNextOp(gen)
	for s.sched.step() {
	}
	return s.finish(start), nil
}

func buildCluster(cfg ClusterConfig) (*clusterSim, *workload.Cluster, error) {
	if err := cfg.Topology.validate(); err != nil {
		return nil, nil, err
	}
	cfg.Link = cfg.Link.withDefaults()
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.ConsumeUS <= 0 {
		cfg.ConsumeUS = 20
	}
	streams := NewStreams(cfg.Seed)
	gen, err := workload.NewCluster(streams.WorkloadSeed, cfg.Workload)
	if err != nil {
		return nil, nil, err
	}
	for _, f := range cfg.Faults {
		if err := f.validate(cfg.Topology.Brokers, cfg.Topology.Edges); err != nil {
			return nil, nil, err
		}
	}
	// The Tick advertisement with three stages: stage 0 perfect, stage 1
	// keeps the topic, stage 2+ class only — the broker-side weakening of
	// the live edge. MaxStage clamps how far federation interests weaken.
	ad, err := gen.Advertisement(3)
	if err != nil {
		return nil, nil, err
	}
	ads := &typing.AdvertisementSet{}
	if err := ads.Put(ad); err != nil {
		return nil, nil, err
	}
	s := &clusterSim{
		cfg:       cfg,
		streams:   streams,
		ads:       ads,
		subs:      make(map[string]*simSub),
		dw:        newDigestWriter(),
		pubAt:     make(map[uint64]int64),
		healStart: -1,
		base:      time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	if cfg.Partitions > 0 {
		// The replica group is the whole broker set, under the same
		// rendezvous map the live brokers derive from their link-state
		// database — so the simulated placement is the placement the live
		// partition-aware publisher computes.
		reps := make([]partition.Replica, cfg.Topology.Brokers)
		for i := range reps {
			id := fmt.Sprintf("B%d", i)
			reps[i] = partition.Replica{ID: id, Addr: id}
		}
		s.pmap = partition.New(cfg.Partitions, reps)
		s.partOwner = make([]int, cfg.Partitions)
		for p := range s.partOwner {
			s.partOwner[p] = brokerOf(peering.LinkID(s.pmap.Owner(p).ID))
		}
	}
	if cfg.Oracle {
		s.expected = make(map[string][]uint64)
		s.got = make(map[string][]uint64)
	}
	neighbors := make([][]int, cfg.Topology.Brokers)
	for _, e := range cfg.Topology.Edges {
		neighbors[e[0]] = append(neighbors[e[0]], e[1])
		neighbors[e[1]] = append(neighbors[e[1]], e[0])
	}
	for i := 0; i < cfg.Topology.Brokers; i++ {
		sort.Ints(neighbors[i])
		b := &simBroker{
			id:       i,
			up:       true,
			peers:    neighbors[i],
			out:      make(map[int]*outLink),
			locals:   make(map[string]*simSub),
			persist:  make(map[peering.LinkID][]peering.Entry),
			active:   make(map[int]bool),
			pending:  make(map[int]bool),
			promoted: make(map[int]bool),
			failover: make(map[int]bool),
		}
		b.counters = &metrics.Counters{}
		s.initBrokerState(b)
		for _, n := range b.peers {
			b.out[n] = s.newOutLink(i, n)
		}
		s.brokers = append(s.brokers, b)
	}
	// Initial election: flags only, no frames — the elected links start
	// active, cycle edges start standby. On a tree every edge is elected,
	// which is exactly the pre-election default.
	want := s.electForest()
	for _, b := range s.brokers {
		for _, n := range b.peers {
			b.active[n] = want[b.id][n]
			b.fed.SetActive(linkID(n), want[b.id][n])
		}
	}
	return s, gen, nil
}

// initBrokerState builds the RAM state a broker loses in a crash: the
// routing node and the federation core (links registered in sorted
// neighbor order for deterministic MatchLinks iteration).
func (s *clusterSim) initBrokerState(b *simBroker) {
	b.node = routing.NewNode(routing.Config{
		ID:       routing.NodeID(fmt.Sprintf("B%d", b.id)),
		Stage:    1,
		Weakener: weaken.New(s.ads, nil),
		Counters: b.counters,
		Engine:   index.Config{Kind: s.cfg.Engine},
	})
	b.fed = peering.New(peering.Config{
		Ads:      s.ads,
		MaxStage: s.cfg.MaxStage,
		Counters: b.counters,
	})
	for _, n := range b.peers {
		b.fed.AddLink(linkID(n))
	}
}

func (s *clusterSim) newOutLink(from, to int) *outLink {
	l := &outLink{from: from, to: to}
	l.q = flow.New(flow.Config[linkFrame]{
		Window: s.cfg.Window,
		Policy: s.cfg.Policy,
		Spill: func(fr linkFrame) bool {
			l.spool = append(l.spool, fr)
			s.brokers[from].spooled++
			s.ledger.FrameSpooled++
			return true
		},
		OnDrop: func(linkFrame) { s.ledger.FrameDropped++ },
	})
	return l
}

func linkID(broker int) peering.LinkID {
	return peering.LinkID(fmt.Sprintf("B%d", broker))
}

func (s *clusterSim) vtime() time.Time {
	return s.base.Add(time.Duration(s.sched.now) * time.Microsecond)
}

func (s *clusterSim) brokerFor(client uint64, pinned int) int {
	if pinned >= 0 {
		return pinned
	}
	if s.cfg.Home != nil {
		return s.cfg.Home(client, len(s.brokers))
	}
	return int(client % uint64(len(s.brokers)))
}

// --- client operations ---

// scheduleNextOp streams the workload: one pending op event at a time,
// so memory scales with live state, never with the op count.
func (s *clusterSim) scheduleNextOp(gen *workload.Cluster) {
	op, ok := gen.Next()
	if !ok {
		return
	}
	s.sched.schedule(op.Time, kindOp, func() {
		s.applyOp(op)
		s.scheduleNextOp(gen)
	})
}

func (s *clusterSim) applyOp(op workload.Op) {
	pin := s.cfg.SubscribeAt
	if op.Kind == workload.OpPublish {
		pin = s.cfg.PublishAt
	}
	b := s.brokers[s.brokerFor(op.Client, pin)]
	if op.Kind == workload.OpPublish && s.pmap != nil {
		// Partitioned deployment: the publisher fans the event directly to
		// its partition's owner, whatever broker the client is homed at.
		b = s.brokers[s.partOwner[s.pmap.PartitionOf(partition.KeyOf(op.Event))]]
	}
	if !b.up {
		// The client's home broker is down: the client retries after the
		// restart (deterministically, in arrival order).
		b.deferred = append(b.deferred, op)
		s.ledger.DeferredOps++
		return
	}
	switch op.Kind {
	case workload.OpSubscribe:
		s.subscribe(b, op.SubID, op.Filter)
	case workload.OpUnsubscribe:
		s.unsubscribe(op.SubID)
	case workload.OpPublish:
		s.publish(b, op.Event)
	}
}

func (s *clusterSim) subscribe(b *simBroker, subID string, f *filter.Filter) {
	if _, dup := s.subs[subID]; dup {
		return
	}
	sub := &simSub{id: subID, broker: b.id, orig: f}
	sub.q = flow.New(flow.Config[*event.Event]{
		Window: s.cfg.Window,
		Policy: s.cfg.Policy,
		Spill: func(e *event.Event) bool {
			sub.backlog = append(sub.backlog, e)
			return true
		},
		OnDrop: func(*event.Event) { s.ledger.Dropped++ },
	})
	s.subs[subID] = sub
	b.locals[subID] = sub
	s.attach(b, sub)
	s.fanUpdates(b, b.fed.Subscribe(subID, f))
}

// attach registers the subscription with the broker's RAM matching state
// (also used to re-attach surviving clients after a restart).
func (s *clusterSim) attach(b *simBroker, sub *simSub) {
	res := b.node.HandleSubscribe(sub.orig, routing.NodeID(sub.id), s.streams.Placement, s.vtime())
	if res.Action != routing.ActionAccept {
		panic("sim: stage-1 node did not accept a subscription")
	}
	sub.stored = res.Stored
}

func (s *clusterSim) unsubscribe(subID string) {
	sub, ok := s.subs[subID]
	if !ok {
		return
	}
	delete(s.subs, subID)
	b := s.brokers[sub.broker]
	delete(b.locals, subID)
	if b.up {
		b.node.HandleUnsubscribe(sub.stored, routing.NodeID(subID))
		b.fed.Unsubscribe(subID)
	}
	// Undelivered copies go with the subscription: counted, conserved.
	s.ledger.Dropped += s.drainSub(sub)
}

func (s *clusterSim) drainSub(sub *simSub) uint64 {
	var n uint64
	for {
		if _, ok := sub.q.TryPop(); !ok {
			break
		}
		n++
	}
	n += uint64(len(sub.backlog) + len(sub.waiting))
	sub.backlog, sub.waiting = nil, nil
	return n
}

func (s *clusterSim) publish(b *simBroker, e *event.Event) {
	s.ledger.Published++
	if s.expected != nil {
		// Oracle: every live subscription whose original filter matches
		// must receive this event exactly once, in publish order.
		ids := make([]string, 0, 8)
		for id, sub := range s.subs {
			if sub.orig.Matches(e, nil) {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		for _, id := range ids {
			s.expected[id] = append(s.expected[id], e.ID)
		}
	}
	s.pubAt[e.ID] = s.sched.now
	s.ingest(b, e, "")
}

// ingest admits one event to a broker's CPU. Without a service-time
// model it processes inline (the pre-existing behavior, digest-
// identical); with ProcUS > 0 the broker serializes: each event occupies
// the CPU for ProcUS of virtual time and later arrivals queue behind
// the horizon. An event queued at a broker that crashes before its
// service slot is simply not processed — its copies were never offered,
// so the ledgers stay balanced.
func (s *clusterSim) ingest(b *simBroker, e *event.Event, from peering.LinkID) {
	if s.cfg.ProcUS <= 0 {
		s.processEvent(b, e, from)
		return
	}
	at := s.sched.now
	if b.procBusy > at {
		at = b.procBusy
	}
	b.procBusy = at + s.cfg.ProcUS
	s.sched.schedule(b.procBusy, kindDrain, func() {
		if b.up {
			s.processEvent(b, e, from)
		}
	})
}

// processEvent is a broker's event plane: forward on matching active
// federation links (reverse-path over the elected forest, so loop-free
// even when the configured mesh has cycles), match locals through the
// routing node, and enqueue subscriber copies under the flow policy.
func (s *clusterSim) processEvent(b *simBroker, e *event.Event, from peering.LinkID) {
	b.received++
	for _, lid := range b.fed.MatchLinks(e, from) {
		s.sendFrame(b, lid, linkFrame{kind: frEvent, ev: e})
	}
	for _, id := range b.node.HandleEvent(e) {
		sub, ok := b.locals[string(id)]
		if !ok {
			continue // lease raced an unsubscribe; nothing to deliver to
		}
		s.offerCopy(sub)
		s.enqueueCopy(sub, e)
	}
}

func (s *clusterSim) offerCopy(sub *simSub) { s.ledger.Copies++ }

func (s *clusterSim) enqueueCopy(sub *simSub, e *event.Event) {
	// FIFO rule: once a backlog exists, new copies append behind it —
	// whatever the policy, reordering is never an option (the live
	// broker's routeToSubscriber does the same).
	if len(sub.backlog) > 0 && s.cfg.Policy == flow.SpillToStore {
		sub.backlog = append(sub.backlog, e)
		s.startConsume(sub)
		return
	}
	if len(sub.waiting) > 0 {
		sub.waiting = append(sub.waiting, e)
		s.startConsume(sub)
		return
	}
	switch sub.q.Offer(e) {
	case flow.Enqueued, flow.Spilled:
		s.startConsume(sub)
	case flow.WouldBlock:
		// Block policy: the producer chain stalls; the copy waits
		// upstream and re-enters the queue as the consumer drains.
		sub.waiting = append(sub.waiting, e)
		s.startConsume(sub)
	case flow.Dropped:
		// Counted by OnDrop.
	case flow.Stopped:
		s.ledger.Dropped++
	}
}

// --- subscriber consumption ---

func (s *clusterSim) startConsume(sub *simSub) {
	if sub.consume {
		return
	}
	sub.consume = true
	at := s.sched.now
	if sub.stallTil > at {
		at = sub.stallTil
	}
	s.sched.schedule(at+s.cfg.ConsumeUS, kindDrain, func() { s.consumeTick(sub) })
}

func (s *clusterSim) consumeTick(sub *simSub) {
	sub.consume = false
	if _, live := s.subs[sub.id]; !live {
		return
	}
	if sub.stallTil > s.sched.now {
		// Stalled mid-schedule: resume when the stall heals.
		s.startConsume(sub)
		return
	}
	if sub.q.Len() == 0 && len(sub.backlog) > 0 {
		sub.q.TryPush(sub.backlog[0])
		sub.backlog = sub.backlog[1:]
	}
	e, ok := sub.q.TryPop()
	if !ok {
		return
	}
	// The subscriber runtime's perfect filter: broker-side matching is
	// stage-weakened, the edge re-checks the original (Figure 3's
	// end-to-end stage, exactly like the live DialSubscriber path).
	if sub.orig.Matches(e, nil) {
		s.ledger.Delivered++
		s.dw.delivery(s.sched.now, sub.id, e.ID)
		if at, ok := s.pubAt[e.ID]; ok {
			s.lats = append(s.lats, s.sched.now-at)
		}
		if s.got != nil {
			s.got[sub.id] = append(s.got[sub.id], e.ID)
		}
	} else {
		s.ledger.EdgeFiltered++
	}
	// Refill from the blocked producers, then keep draining.
	for len(sub.waiting) > 0 && sub.q.TryPush(sub.waiting[0]) {
		sub.waiting = sub.waiting[1:]
	}
	if sub.q.Len() > 0 || len(sub.backlog) > 0 || len(sub.waiting) > 0 {
		s.startConsume(sub)
	}
}

// --- control plane ---

func (s *clusterSim) fanUpdates(b *simBroker, ups []peering.Update) {
	for _, u := range ups {
		to := brokerOf(u.Link)
		if !s.linkUp(b.id, to) {
			continue // the resync on reconnect repairs subscription state
		}
		s.sendCtrl(b.out[to], linkFrame{kind: frUpdate, entry: u.Entry})
	}
}

func (s *clusterSim) sendCtrl(l *outLink, fr linkFrame) {
	l.ctrl = append(l.ctrl, fr)
	s.pump(l)
}

func brokerOf(id peering.LinkID) int {
	var n int
	fmt.Sscanf(string(id), "B%d", &n)
	return n
}

// --- spanning-forest election ---
//
// The live broker runs the election per node over a flooded link-state
// database; the simulator models the converged view — every broker sees
// the same live-edge set, so the global recompute below is what each
// broker's local recompute converges to, without simulating LSA frames.

// electForest returns, per broker, the set of neighbors its elected
// forest edges connect it to: Kruskal with union-find over the live
// edges (both endpoints up, neither direction severed) sorted by
// (min, max) broker id — the deterministic order every live broker uses.
func (s *clusterSim) electForest() []map[int]bool {
	edges := make([][2]int, 0, len(s.cfg.Topology.Edges))
	for _, e := range s.cfg.Topology.Edges {
		a, b := min(e[0], e[1]), max(e[0], e[1])
		if s.linkUp(a, b) {
			edges = append(edges, [2]int{a, b})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	parent := make([]int, len(s.brokers))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	want := make([]map[int]bool, len(s.brokers))
	for i := range want {
		want[i] = make(map[int]bool)
	}
	for _, e := range edges {
		a, b := find(e[0]), find(e[1])
		if a == b {
			continue // cycle edge: stays a standby failover path
		}
		parent[a] = b
		want[e[0]][e[1]] = true
		want[e[1]][e[0]] = true
	}
	return want
}

// recompute reconciles every up broker's links against the elected
// forest, mirroring the live recomputeTopology two-pass structure: a
// live link the forest wants promotes (activate, resync, make-before-
// break bookkeeping); a live active link the forest dropped demotes to
// standby (interests withdrawn); then — only after every promotion of
// the round is known — a dead active link the forest dropped enters
// failover when a promoted replacement exists. With no replacement it
// stays active and spooling, awaiting reconnect: the original durable-
// link semantics, which keeps every tree topology's behavior (and
// digest) untouched.
func (s *clusterSim) recompute() {
	want := s.electForest()
	for _, b := range s.brokers {
		if !b.up {
			continue
		}
		// A pending resync whose link died can never land: drop it so
		// failover completion is not gated on it.
		for n := range b.pending {
			if !s.linkUp(b.id, n) {
				delete(b.pending, n)
			}
		}
		for _, n := range b.peers {
			switch {
			case want[b.id][n] && !b.active[n] && s.linkUp(b.id, n):
				// Promotion: activate, then resync so the peer learns the
				// interests this link now carries. Reconnect resyncs of
				// already-active links ride bringUp instead, so promotion
				// here is always a genuine standby→active transition.
				b.active[n] = true
				b.fed.SetActive(linkID(n), true)
				entries := b.fed.Sync(linkID(n))
				s.sendCtrl(b.out[n], linkFrame{kind: frResync, entries: entries})
				b.pending[n] = true
				b.promoted[n] = true
			case b.active[n] && !want[b.id][n] && s.linkUp(b.id, n):
				// Healthy demotion: withdraw the interests so no new
				// traffic matches; frames already queued or spooled still
				// drain over the live connection.
				s.fanUpdates(b, b.fed.Replace(linkID(n), nil))
				b.fed.SetActive(linkID(n), false)
				b.active[n] = false
			}
		}
		for _, n := range b.peers {
			if b.active[n] && !want[b.id][n] && !s.linkUp(b.id, n) &&
				!b.failover[n] && len(b.promoted) > 0 {
				b.failover[n] = true
				s.failovers++
				if s.healStart < 0 {
					s.healStart = s.sched.now
				}
			}
		}
		s.maybeCompleteFailover(b)
	}
}

// maybeCompleteFailover finishes a broker's failover once every promoted
// link's resync has landed: each dead link's orphaned spool drains in
// order, every event re-matching against the promoted links only — they
// carried no interests before their resync, so nothing was double-routed
// — and events no promoted path wants stay spooled awaiting the original
// peer's return. Atomic with the resync arrival (one scheduler event),
// so no window exists where both the dead and the promoted link match.
func (s *clusterSim) maybeCompleteFailover(b *simBroker) {
	for n := range b.promoted {
		if b.pending[n] {
			return
		}
	}
	var failed, targets []int
	for _, n := range b.peers {
		if b.failover[n] {
			failed = append(failed, n)
		}
		if b.promoted[n] && b.active[n] && s.linkUp(b.id, n) {
			targets = append(targets, n)
		}
	}
	if len(failed) == 0 {
		clear(b.promoted)
		return
	}
	for _, n := range failed {
		l := b.out[n]
		var keep []linkFrame
		for _, fr := range l.spool {
			if fr.kind != frEvent {
				keep = append(keep, fr)
				continue
			}
			routed := false
			for _, t := range targets {
				if b.fed.MatchLink(fr.ev, linkID(t)) {
					if routed {
						// Fan-out beyond the first target is a fresh frame;
						// the first reuses the orphan's original accounting.
						s.ledger.Frames++
						b.sent++
					}
					s.enqueueFrame(b, t, fr)
					routed = true
				}
			}
			if routed {
				s.rerouted++
			} else {
				keep = append(keep, fr)
			}
		}
		l.spool = keep
		b.failover[n] = false
		s.fanUpdates(b, b.fed.Replace(linkID(n), nil))
		b.fed.SetActive(linkID(n), false)
		b.active[n] = false
	}
	s.healUS = s.sched.now - s.healStart
	clear(b.promoted)
}

// --- link transmission ---

// linkUp reports whether the connection between two brokers is
// established: both endpoints alive and neither direction severed.
func (s *clusterSim) linkUp(a, b int) bool {
	return s.brokers[a].up && s.brokers[b].up &&
		!s.brokers[a].out[b].down && !s.brokers[b].out[a].down
}

// sendFrame hands an event frame to a directed link under the flow
// policy. A down link, or one still replaying its spool, spools the
// frame durably (FIFO); an up link offers it to the bounded queue.
func (s *clusterSim) sendFrame(b *simBroker, lid peering.LinkID, fr linkFrame) {
	to := brokerOf(lid)
	s.ledger.Frames++
	b.sent++
	s.enqueueFrame(b, to, fr)
}

// enqueueFrame admits a frame to a directed link without the send
// accounting — the failover reroute path uses it directly, because a
// rerouted orphan was already counted when it was first sent.
func (s *clusterSim) enqueueFrame(b *simBroker, to int, fr linkFrame) {
	l := b.out[to]
	if !s.linkUp(b.id, to) || len(l.spool) > 0 {
		l.spool = append(l.spool, fr)
		b.spooled++
		s.ledger.FrameSpooled++
		return
	}
	switch l.q.Offer(fr) {
	case flow.Enqueued, flow.Spilled:
		s.pump(l)
	case flow.WouldBlock:
		l.blocked = append(l.blocked, fr)
	case flow.Dropped, flow.Stopped:
		// Counted by OnDrop.
	}
}

// pump schedules the link's next transmission if it is idle and has work.
func (s *clusterSim) pump(l *outLink) {
	if l.pumping || !s.linkUp(l.from, l.to) {
		return
	}
	if len(l.ctrl) == 0 && l.q.Len() == 0 && len(l.spool) == 0 {
		return
	}
	l.pumping = true
	at := s.sched.now
	if l.busyUntil > at {
		at = l.busyUntil
	}
	epoch := l.epoch
	s.sched.schedule(at, kindDrain, func() { s.transmit(l, epoch) })
}

// transmit serializes one frame onto the wire: control lane first, then
// the event queue (older traffic), then the spool replay.
func (s *clusterSim) transmit(l *outLink, epoch uint64) {
	l.pumping = false
	if epoch != l.epoch || !s.linkUp(l.from, l.to) {
		return
	}
	var fr linkFrame
	switch {
	case len(l.ctrl) > 0:
		fr, l.ctrl = l.ctrl[0], l.ctrl[1:]
	default:
		var ok bool
		if fr, ok = l.q.TryPop(); ok {
			// A slot freed: admit one blocked producer, keeping order.
			if len(l.blocked) > 0 && l.q.TryPush(l.blocked[0]) {
				l.blocked = l.blocked[1:]
			}
		} else if len(l.spool) > 0 {
			fr, l.spool = l.spool[0], l.spool[1:]
		} else {
			return
		}
	}
	p := s.cfg.Link
	tx := p.TxUS
	if p.Loss > 0 {
		// Reliable-link retransmission: each lost attempt costs RetransUS.
		for s.streams.Network.Float64() < p.Loss {
			tx += p.RetransUS
		}
	}
	depart := s.sched.now
	l.busyUntil = depart + tx
	arrival := l.busyUntil + p.LatencyUS
	l.inflight = append(l.inflight, fr)
	epoch = l.epoch
	s.sched.schedule(arrival, kindFrame, func() { s.arrive(l, epoch) })
	s.pump(l)
}

func (s *clusterSim) arrive(l *outLink, epoch uint64) {
	if epoch != l.epoch {
		return // the link went down in flight; the frame was salvaged
	}
	fr := l.inflight[0]
	l.inflight = l.inflight[1:]
	b := s.brokers[l.to]
	from := linkID(l.from)
	switch fr.kind {
	case frEvent:
		s.ledger.FrameArrived++
		s.ingest(b, fr.ev, from)
	case frUpdate:
		s.fanUpdates(b, b.fed.Apply(from, fr.entry))
	case frResync:
		s.fanUpdates(b, b.fed.Replace(from, fr.entries))
		// A promoted link's resync landing is what failover completion
		// waits for: the re-routing below this point sees the promoted
		// path's real interests, installed by the Replace above.
		if b.pending[l.from] {
			delete(b.pending, l.from)
			s.maybeCompleteFailover(b)
		}
	}
}

// --- failure injector ---

func (s *clusterSim) scheduleFaults() {
	for _, f := range s.cfg.Faults {
		f := f
		s.sched.schedule(f.At, kindFault, func() { s.inject(f) })
		if f.Duration > 0 && f.Kind != FaultStall {
			s.sched.schedule(f.At+f.Duration, kindFault, func() { s.heal(f) })
		}
	}
}

func (s *clusterSim) inject(f Fault) {
	switch f.Kind {
	case FaultCrash:
		s.crash(s.brokers[f.Broker])
		s.recompute()
	case FaultPartition:
		s.takeDown(f.Link[0], f.Link[1])
		s.takeDown(f.Link[1], f.Link[0])
		s.recompute()
	case FaultStall:
		s.stall(f)
	}
}

func (s *clusterSim) heal(f Fault) {
	switch f.Kind {
	case FaultCrash:
		s.restart(s.brokers[f.Broker])
	case FaultPartition:
		s.bringUp(f.Link[0], f.Link[1])
		s.bringUp(f.Link[1], f.Link[0])
		s.recompute()
	}
}

func (s *clusterSim) stall(f Fault) {
	ids := make([]string, 0, len(s.subs))
	for id := range s.subs {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids)
	i := f.Sub
	if i < 0 {
		i = s.streams.Faults.IntN(len(ids))
	}
	sub := s.subs[ids[i%len(ids)]]
	til := s.sched.now + f.Duration
	if til > sub.stallTil {
		sub.stallTil = til
	}
}

// crash kills a broker: its RAM — matching tables, federation interests,
// link queues, subscriber delivery queues — is gone; the durable link
// spools, the persisted per-link interest snapshots, and the local
// subscription registry (clients re-attach on restart) survive.
func (s *clusterSim) crash(b *simBroker) {
	if !b.up {
		return
	}
	// Persist the per-link learned interests (the live broker writes
	// DataDir/peers continuously; the crash snapshot is the last state).
	for _, n := range b.peers {
		b.persist[linkID(n)] = b.fed.Entries(linkID(n))
	}
	// Die first: takeDown's salvage is for surviving senders, and a
	// crashed broker's RAM outbound queues are not among the survivors.
	b.up = false
	b.node, b.fed = nil, nil
	for _, n := range b.peers {
		s.takeDown(b.id, n) // b's side: sever; RAM destroyed below
		s.takeDown(n, b.id) // neighbor's side: salvage into its spool
	}
	// RAM queue contents die with the process (the durable spool stays).
	for _, n := range b.peers {
		l := b.out[n]
		var ramFrames uint64
		for _, fr := range append(append([]linkFrame{}, l.blocked...), l.inflight...) {
			if fr.kind == frEvent {
				ramFrames++
			}
		}
		for {
			fr, ok := l.q.TryPop()
			if !ok {
				break
			}
			if fr.kind == frEvent {
				ramFrames++
			}
		}
		l.blocked, l.inflight, l.ctrl = nil, nil, nil
		b.lost += ramFrames
		s.ledger.FrameLost += ramFrames
	}
	ids := make([]string, 0, len(b.locals))
	for id := range b.locals {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.ledger.Dropped += s.drainSub(b.locals[id])
	}
	// Election RAM dies with the process; the active map survives like
	// the persisted peer state it mirrors.
	b.pending = make(map[int]bool)
	b.promoted = make(map[int]bool)
	b.failover = make(map[int]bool)
}

// restart brings a broker back: RAM state is rebuilt, persisted interests
// reload so replayed events route onward before any resync lands, local
// clients re-attach, and every link re-establishes with a SubSet resync
// followed by the spool replay.
func (s *clusterSim) restart(b *simBroker) {
	if b.up {
		return
	}
	b.up = true
	s.initBrokerState(b)
	for _, n := range b.peers {
		// Restore the persisted activation mirror: links the pre-crash
		// election held standby must not match replayed traffic.
		if !b.active[n] {
			b.fed.SetActive(linkID(n), false)
		}
		if ent := b.persist[linkID(n)]; len(ent) > 0 {
			// Recovered interests route events; onward propagation is the
			// resyncs' job, so the returned updates are discarded.
			b.fed.Replace(linkID(n), ent)
		}
	}
	ids := make([]string, 0, len(b.locals))
	for id := range b.locals {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sub := b.locals[id]
		s.attach(b, sub)
		b.fed.Subscribe(id, sub.orig) // propagation via the resyncs below
	}
	for _, n := range b.peers {
		s.bringUp(b.id, n)
		s.bringUp(n, b.id)
	}
	// Re-elect now that the broker is back: on a tree this is a no-op;
	// on a redundant mesh it restores the canonical forest, promoting the
	// returned links and demoting the failover paths back to standby.
	s.recompute()
	ops := b.deferred
	b.deferred = nil
	for _, op := range ops {
		op := op
		s.sched.schedule(s.sched.now, kindOp, func() { s.applyOp(op) })
	}
}

// takeDown severs one link direction: in-flight frames (the reliable
// transport's unacked window) and the RAM queues salvage into the
// durable spool, in order, when the sender survives; control frames are
// discarded — the resync on reconnect rebuilds subscription state.
func (s *clusterSim) takeDown(from, to int) {
	b := s.brokers[from]
	l := b.out[to]
	l.epoch++
	l.down = true
	l.pumping = false
	if !b.up {
		return
	}
	salvage := make([]linkFrame, 0, len(l.inflight))
	for _, fr := range l.inflight {
		if fr.kind == frEvent {
			salvage = append(salvage, fr)
		}
	}
	l.inflight = nil
	for {
		fr, ok := l.q.TryPop()
		if !ok {
			break
		}
		if fr.kind == frEvent {
			salvage = append(salvage, fr)
		}
	}
	salvage = append(salvage, l.blocked...)
	l.blocked, l.ctrl = nil, nil
	if len(salvage) > 0 {
		b.spooled += uint64(len(salvage))
		s.ledger.FrameSpooled += uint64(len(salvage))
		l.spool = append(l.spool, salvage...)
	}
}

// bringUp re-establishes one link direction: the sender recomputes the
// link's full SubSet (resync) ahead of the spool replay and new traffic.
func (s *clusterSim) bringUp(from, to int) {
	if !s.brokers[from].up || !s.brokers[to].up {
		return
	}
	b := s.brokers[from]
	l := b.out[to]
	if !l.down {
		return
	}
	l.down = false
	if l.busyUntil < s.sched.now {
		l.busyUntil = s.sched.now
	}
	// Only an active link resyncs on reconnect; a standby (or demoted-
	// during-failover) link carries nothing until the election promotes
	// it, and the promotion sends its own resync.
	if b.active[to] {
		entries := b.fed.Sync(linkID(to))
		l.ctrl = append(l.ctrl, linkFrame{kind: frResync, entries: entries})
	}
	// The connection is established once both directions come up;
	// bringUp runs in pairs, so the second call starts both pumps.
	if s.linkUp(from, to) {
		s.pump(l)
		s.pump(s.brokers[to].out[from])
	}
}

// --- result assembly ---

func (s *clusterSim) finish(start time.Time) *ClusterResult {
	res := &ClusterResult{
		Ledger:    s.ledger,
		VirtualUS: s.sched.now,
		Events:    s.sched.ran,
		Failovers: s.failovers,
		Rerouted:  s.rerouted,
		HealUS:    s.healUS,
	}
	// Residuals: copies and frames still parked when the run ends.
	subIDs := make([]string, 0, len(s.subs))
	for id := range s.subs {
		subIDs = append(subIDs, id)
	}
	sort.Strings(subIDs)
	for _, id := range subIDs {
		sub := s.subs[id]
		res.Ledger.Stored += uint64(sub.q.Len() + len(sub.backlog) + len(sub.waiting))
	}
	for _, b := range s.brokers {
		var pending uint64
		for _, n := range b.peers {
			l := b.out[n]
			pending += uint64(len(l.spool) + l.q.Len() + len(l.blocked))
			for _, fr := range l.inflight {
				if fr.kind == frEvent {
					pending++
				}
			}
		}
		filters := 0
		if b.up {
			filters = b.fed.FilterCount()
		}
		res.Ledger.FramePending += pending
		res.Brokers = append(res.Brokers, BrokerSimStats{
			ID: b.id, Up: b.up,
			Received: b.received, Sent: b.sent, Lost: b.lost,
			Spooled: b.spooled, Pending: pending, Filters: filters,
		})
	}
	if s.expected != nil {
		s.verifyOracle(res)
	}
	// Delivery-latency percentiles: reported beside the digest, never part
	// of it — the hashed trace pins each delivery's time already.
	if len(s.lats) > 0 {
		sort.Slice(s.lats, func(i, j int) bool { return s.lats[i] < s.lats[j] })
		res.LatencyP50US = s.lats[len(s.lats)*50/100]
		res.LatencyP99US = s.lats[len(s.lats)*99/100]
	}
	// Hash the summary behind the delivery trace: the ledger and the
	// per-broker counters are part of the regression surface.
	l := res.Ledger
	s.dw.line("ledger pub=%d copies=%d deliv=%d edge=%d drop=%d stored=%d frames=%d arrived=%d spool=%d fdrop=%d flost=%d fpend=%d defer=%d",
		l.Published, l.Copies, l.Delivered, l.EdgeFiltered, l.Dropped, l.Stored,
		l.Frames, l.FrameArrived, l.FrameSpooled, l.FrameDropped, l.FrameLost,
		l.FramePending, l.DeferredOps)
	for _, bs := range res.Brokers {
		s.dw.line("broker %d up=%t recv=%d sent=%d lost=%d spooled=%d pending=%d filters=%d",
			bs.ID, bs.Up, bs.Received, bs.Sent, bs.Lost, bs.Spooled, bs.Pending, bs.Filters)
	}
	// Failover accounting joins the digest only when a failover ran, so
	// every pre-existing scenario's digest stays byte-identical.
	if s.failovers > 0 {
		s.dw.line("failover count=%d rerouted=%d heal_us=%d", s.failovers, s.rerouted, s.healUS)
	}
	res.Digest = s.dw.sum()
	res.DigestLines = s.dw.lines
	res.Wall = time.Since(start)
	return res
}

// verifyOracle compares each subscriber's deliveries with the expected
// sequence: equal means loss-free, duplicate-free, in publish order.
func (s *clusterSim) verifyOracle(res *ClusterResult) {
	ids := make(map[string]bool, len(s.expected)+len(s.got))
	for id := range s.expected {
		ids[id] = true
	}
	for id := range s.got {
		ids[id] = true
	}
	for id := range ids {
		want, got := s.expected[id], s.got[id]
		seen := make(map[uint64]int, len(got))
		for _, ev := range got {
			seen[ev]++
		}
		for _, n := range seen {
			if n > 1 {
				res.Duplicates += n - 1
			}
		}
		wantSet := make(map[uint64]bool, len(want))
		for _, ev := range want {
			wantSet[ev] = true
			if seen[ev] == 0 {
				res.OracleMissing++
			}
		}
		for ev := range seen {
			if !wantSet[ev] {
				res.OracleExtra += seen[ev]
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				res.OrderViolations++
			}
		}
	}
}
