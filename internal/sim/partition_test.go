package sim

import (
	"testing"
)

// Partitioned scale-out acceptance tests: the aggregate-throughput
// scaling gate behind the partitioned-scale scenario, and the pinned
// delivery-latency windows that ride next to the golden digests.

// TestPartitionedScaleSpeedup is the scaling acceptance gate: the same
// CPU-bound workload through 4 partitioned replicas must reach at least
// 3x the single broker's aggregate processing rate (events across all
// brokers per virtual second).
func TestPartitionedScaleSpeedup(t *testing.T) {
	rate := func(replicas int) float64 {
		res, err := RunCluster(PartitionedScale(goldenSeed, replicas))
		if err != nil {
			t.Fatalf("%d replicas: %v", replicas, err)
		}
		if !res.Ledger.Conserved() {
			t.Fatalf("%d replicas: ledger does not balance: %+v", replicas, res.Ledger)
		}
		if res.Ledger.Dropped != 0 || res.Ledger.Stored != 0 {
			t.Fatalf("%d replicas: lossless run left dropped=%d stored=%d",
				replicas, res.Ledger.Dropped, res.Ledger.Stored)
		}
		return res.AggregateRate()
	}
	base := rate(1)
	scaled := rate(4)
	if speedup := scaled / base; speedup < 3 {
		t.Fatalf("4 replicas reached %.2fx aggregate throughput (%.0f vs %.0f events/vsec); acceptance is >= 3x",
			speedup, scaled, base)
	}
}

// TestPartitionedPlacementDelivers pins that sharding ingress changes
// where events execute, not what subscribers see: the partitioned run
// delivers exactly as many copies as the same workload through one
// broker (the delivered count is workload-determined, placement-free).
func TestPartitionedPlacementDelivers(t *testing.T) {
	one, err := RunCluster(PartitionedScale(goldenSeed, 1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunCluster(PartitionedScale(goldenSeed, 4))
	if err != nil {
		t.Fatal(err)
	}
	// EdgeFiltered is not compared: federation interests propagate as
	// full filters (pre-filtered at the link), while local matching is
	// stage-weakened and edge-filters later — so the split between the
	// two buckets shifts with placement, but their delivered sum cannot.
	if one.Ledger.Delivered != four.Ledger.Delivered {
		t.Fatalf("partitioning changed delivery: 1 replica delivered=%d, 4 replicas delivered=%d",
			one.Ledger.Delivered, four.Ledger.Delivered)
	}
}

// TestScenarioLatencyBounds pins delivery-latency percentile windows for
// the steady and partitioned scenarios at the golden seed, next to the
// digests that pin their traces. The windows guard the latency
// computation itself (a unit slip or a zeroed metric trips them) while
// leaving room for intended workload rebalancing — which would change
// the digest too, forcing a joint, deliberate regeneration.
func TestScenarioLatencyBounds(t *testing.T) {
	bounds := []struct {
		scenario     string
		p50Lo, p50Hi int64
		p99Lo, p99Hi int64
	}{
		// Measured at seed 1: p50=113us p99=3590us. Unsaturated tree:
		// latency is hops plus short queueing tails.
		{"steady-tree", 40, 400, 900, 14_000},
		// Measured at seed 1: p50=71175us p99=133446us. 8x CPU
		// oversubscription: latency is dominated by the ingress backlog.
		{"partitioned-scale", 20_000, 110_000, 60_000, 180_000},
	}
	for _, b := range bounds {
		res, err := RunScenario(b.scenario, goldenSeed)
		if err != nil {
			t.Fatalf("%s: %v", b.scenario, err)
		}
		p50, p99 := res.LatencyP50US, res.LatencyP99US
		if p50 < b.p50Lo || p50 > b.p50Hi {
			t.Errorf("%s: p50 delivery latency %dus outside pinned [%d, %d]us",
				b.scenario, p50, b.p50Lo, b.p50Hi)
		}
		if p99 < b.p99Lo || p99 > b.p99Hi {
			t.Errorf("%s: p99 delivery latency %dus outside pinned [%d, %d]us",
				b.scenario, p99, b.p99Lo, b.p99Hi)
		}
		if p99 < p50 {
			t.Errorf("%s: p99 %dus < p50 %dus", b.scenario, p99, p50)
		}
	}
}
