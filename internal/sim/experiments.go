package sim

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"eventsys/internal/baseline"
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
	"eventsys/internal/overlay"
	"eventsys/internal/transport"
	"eventsys/internal/typing"
	"eventsys/internal/workload"
)

// Experiment identifiers; the A-numbers index the ablations in report
// order (see the eventsim table in docs/TUNING.md).
const (
	ExpTable1      = "table1"      // §5.3 RLC table
	ExpFigure7     = "fig7"        // Fig. 7 matching-rate series
	ExpGlobal      = "global"      // global RLC ≈ 1 claim
	ExpCentralized = "centralized" // centralized baseline RLC = 1
	ExpBroadcast   = "broadcast"   // broadcast per-subscriber load
	ExpPlacement   = "placement"   // A1: clustering vs random placement
	ExpPrefilter   = "prefilter"   // A2: pre-filtering vs none
	ExpTopology    = "topology"    // A4: acyclic topology comparison
	ExpEngines     = "engines"     // A5: matching-engine scaling
	ExpFlow        = "flow"        // A6: slow-consumer flow policies
	ExpRawPath     = "rawpath"     // A7: raw vs decoded forwarding path
	ExpObs         = "obs"         // A8: observability self-scrape
	ExpCluster     = "cluster"     // A9: cluster simulation scenario suite
	ExpHeal        = "heal"        // A10: broker-death failover and self-healing
	ExpPartition   = "partition"   // A11: partitioned scale-out across replicas
)

// Experiments lists all experiment identifiers in report order.
func Experiments() []string {
	return []string{ExpTable1, ExpFigure7, ExpGlobal, ExpCentralized,
		ExpBroadcast, ExpPlacement, ExpPrefilter, ExpTopology, ExpEngines,
		ExpFlow, ExpRawPath, ExpObs, ExpCluster, ExpHeal, ExpPartition}
}

// Options tunes experiments from the command line; the zero value keeps
// every experiment's defaults. Consumed by the engines (A5) and flow
// (A6) experiments.
type Options struct {
	// Shards is the sharded engine's shard count (0 = GOMAXPROCS).
	Shards int
	// MaxBatch is the matching batch size (0 = 64).
	MaxBatch int
	// Subscribers overrides the A5 population size (0 = 5000).
	Subscribers int
	// FlowWindow is the A6 delivery-queue window (0 = 64).
	FlowWindow int
}

// RunExperiment executes one named experiment with default options and
// returns its report.
func RunExperiment(name string, seed uint64) (string, error) {
	return RunExperimentOpts(name, seed, Options{})
}

// RunExperimentOpts executes one named experiment and returns its report.
func RunExperimentOpts(name string, seed uint64, o Options) (string, error) {
	switch name {
	case ExpTable1:
		return Table1(seed)
	case ExpFigure7:
		return Figure7(seed)
	case ExpGlobal:
		return GlobalRLCExperiment(seed)
	case ExpCentralized:
		return CentralizedComparison(seed)
	case ExpBroadcast:
		return BroadcastComparison(seed)
	case ExpPlacement:
		return PlacementAblation(seed)
	case ExpPrefilter:
		return PrefilterAblation(seed)
	case ExpTopology:
		return TopologyComparison(seed)
	case ExpEngines:
		return EnginesExperiment(seed, o)
	case ExpFlow:
		return FlowExperiment(seed, o)
	case ExpRawPath:
		return RawPathExperiment(seed, o)
	case ExpObs:
		return ObsExperiment(seed, o)
	case ExpCluster:
		return ClusterExperiment(seed)
	case ExpHeal:
		return HealExperiment(seed)
	case ExpPartition:
		return PartitionExperiment(seed)
	default:
		return "", fmt.Errorf("sim: unknown experiment %q (have %v)", name, Experiments())
	}
}

// Table1 reproduces the Section 5.3 RLC table: per-stage node average of
// RLC and per-stage totals, on the 1/10/100 hierarchy with 1000
// subscribers (the population the paper's stage-0 numbers imply).
func Table1(seed uint64) (string, error) {
	cfg := DefaultConfig(seed, 1000, 5000)
	res, err := Run(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment T1 — §5.3 RLC table (seed=%d, subs=%d, events=%d)\n\n",
		seed, cfg.Subscribers, cfg.Events)
	b.WriteString(metrics.RenderRLCTable(res.Summaries))
	fmt.Fprintf(&b, "\nGlobal RLC total: %.4f (paper: ≈ 1)\n", res.GlobalRLC)
	fmt.Fprintf(&b, "Paper reference rows: stage0 avg 2e-7 total 2e-4 | stage1 avg 2e-4 total 2e-1 | stage2 avg 0.1 total 1 | stage3 0.02\n")
	return b.String(), nil
}

// Figure7 reproduces the matching-rate figure: MR per node for 150
// subscribers, 100 level-1 nodes, 10 level-2 nodes (plus the root).
func Figure7(seed uint64) (string, error) {
	cfg := DefaultConfig(seed, 150, 5000)
	res, err := Run(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment F7 — Fig. 7 matching rates (seed=%d, subs=%d, events=%d)\n\n",
		seed, cfg.Subscribers, cfg.Events)
	b.WriteString(metrics.RenderMRSeries(res.Stats))
	fmt.Fprintf(&b, "\nSubscriber average MR: %.3f (paper: 0.87)\n", res.SubscriberAvgMR)
	return b.String(), nil
}

// GlobalRLCExperiment verifies the claim that the sum of RLC over all
// nodes is around 1 across population sizes.
func GlobalRLCExperiment(seed uint64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment C1 — global RLC total vs population (seed=%d)\n\n", seed)
	fmt.Fprintf(&b, "%-12s %-10s %12s\n", "Subscribers", "Events", "Global RLC")
	for _, subs := range []int{100, 300, 1000} {
		cfg := DefaultConfig(seed, subs, 3000)
		res, err := Run(cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12d %-10d %12.4f\n", subs, cfg.Events, res.GlobalRLC)
	}
	b.WriteString("\nPaper: the global total of RLCs in the system is around 1.\n")
	return b.String(), nil
}

// CentralizedComparison contrasts per-node RLC of the multi-stage system
// with the centralized server's constant RLC = 1.
func CentralizedComparison(seed uint64) (string, error) {
	cfg := DefaultConfig(seed, 500, 3000)
	res, err := Run(cfg)
	if err != nil {
		return "", err
	}
	// Feed the identical subscription population and event stream to a
	// centralized server.
	subs, err := SubscriberFilters(cfg)
	if err != nil {
		return "", err
	}
	central := baseline.NewCentralized(nil, nil)
	for id, f := range subs {
		central.Subscribe(id, f)
	}
	bib, err := workload.NewBiblio(cfg.Seed, cfg.Biblio)
	if err != nil {
		return "", err
	}
	for i := 0; i < cfg.Events; i++ {
		central.Publish(bib.Event())
	}
	cs := central.Stats()
	var maxNodeRLC float64
	for _, st := range res.Stats {
		if st.Stage > 0 {
			if r := st.RLC(res.TotalEvents, res.TotalSubs); r > maxNodeRLC {
				maxNodeRLC = r
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment C2 — centralized vs multi-stage (seed=%d, subs=%d, events=%d)\n\n",
		seed, cfg.Subscribers, cfg.Events)
	fmt.Fprintf(&b, "Centralized server RLC: %.4f (paper: exactly 1)\n",
		cs.RLC(res.TotalEvents, res.TotalSubs))
	fmt.Fprintf(&b, "Multi-stage worst broker RLC: %.4f\n", maxNodeRLC)
	fmt.Fprintf(&b, "Multi-stage global RLC: %.4f\n", res.GlobalRLC)
	fmt.Fprintf(&b, "Reduction at the hottest node: %.1fx\n", 1/maxNodeRLC)
	return b.String(), nil
}

// BroadcastComparison quantifies the broadcast architecture's
// per-subscriber load growth with event rate (Section 2.1's scaling
// argument).
func BroadcastComparison(seed uint64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment C3 — broadcast per-subscriber load vs event rate (seed=%d)\n\n", seed)
	fmt.Fprintf(&b, "%-8s %22s %22s\n", "Events", "Broadcast recv/sub", "Multi-stage recv/sub")
	for _, events := range []int{500, 1000, 2000, 4000} {
		cfg := DefaultConfig(seed, 200, events)
		res, err := Run(cfg)
		if err != nil {
			return "", err
		}
		subs, err := SubscriberFilters(cfg)
		if err != nil {
			return "", err
		}
		bcast := baseline.NewBroadcast(nil)
		for id, f := range subs {
			bcast.Subscribe(id, f)
		}
		bib, err := workload.NewBiblio(cfg.Seed, cfg.Biblio)
		if err != nil {
			return "", err
		}
		for i := 0; i < events; i++ {
			bcast.Publish(bib.Event())
		}
		var bRecv, mRecv uint64
		var bn, mn int
		for _, st := range bcast.Stats() {
			bRecv += st.Received
			bn++
		}
		for _, st := range res.Stats {
			if st.Stage == 0 {
				mRecv += st.Received
				mn++
			}
		}
		fmt.Fprintf(&b, "%-8d %22.1f %22.1f\n", events,
			float64(bRecv)/float64(bn), float64(mRecv)/float64(mn))
	}
	b.WriteString("\nBroadcast load grows linearly with the event rate; multi-stage\nsubscribers receive only events surviving pre-filtering.\n")
	return b.String(), nil
}

// PlacementAblation compares the Figure 5 covering-search placement with
// random placement (A1): stored filters and forwarded event copies.
func PlacementAblation(seed uint64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment A1 — subscription placement ablation (seed=%d)\n\n", seed)
	fmt.Fprintf(&b, "%-22s %16s %18s %14s\n", "Placement", "Broker filters", "Forwarded copies", "Delivered")
	for _, random := range []bool{false, true} {
		cfg := DefaultConfig(seed, 500, 3000)
		cfg.RandomPlacement = random
		res, err := Run(cfg)
		if err != nil {
			return "", err
		}
		name := "covering-search"
		if random {
			name = "random"
		}
		fmt.Fprintf(&b, "%-22s %16d %18d %14d\n", name, res.BrokerFilters, res.ForwardTotal, res.Delivered)
	}
	b.WriteString("\nClustering similar subscriptions stores fewer covering filters and\nforwards events along fewer duplicate paths (Section 4.2).\n")
	return b.String(), nil
}

// PrefilterAblation compares multi-stage pre-filtering with a hierarchy
// whose intermediate nodes filter on class only (A2): the traffic
// reaching subscribers and their matching rates.
func PrefilterAblation(seed uint64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment A2 — pre-filtering ablation (seed=%d)\n\n", seed)
	fmt.Fprintf(&b, "%-14s %18s %16s %14s\n", "Mode", "Recv per sub", "Subscriber MR", "Delivered")
	for _, mode := range []string{"multi-stage", "class-only"} {
		cfg := DefaultConfig(seed, 300, 3000)
		if mode == "class-only" {
			// Intermediate stages keep no attributes: every Biblio event
			// floods the whole tree (no pre-filtering beyond the type).
			cfg.StageAttrs = []int{4, 0, 0, 0}
		}
		res, err := Run(cfg)
		if err != nil {
			return "", err
		}
		var recv uint64
		var n int
		for _, st := range res.Stats {
			if st.Stage == 0 {
				recv += st.Received
				n++
			}
		}
		fmt.Fprintf(&b, "%-14s %18.1f %16.3f %14d\n", mode,
			float64(recv)/float64(n), res.SubscriberAvgMR, res.Delivered)
	}
	b.WriteString("\nIdentical delivery with and without pre-filtering; pre-filtering cuts\nthe irrelevant traffic reaching the edge (MR → 1, Figure 3).\n")
	return b.String(), nil
}

// EnginesExperiment (A5) contrasts the four matching engines on one
// subscription population: the naive Figure 6 table, the counting index,
// the sharded parallel engine, and the predicate-indexed engine,
// matching the same event stream in batches. Unlike the other
// experiments this one reports wall-clock numbers — batch throughput
// plus per-event match-latency percentiles from an individually timed
// pass — reproducible with `go test -bench 'BenchmarkShardedMatch|
// BenchmarkIndexedMatch' ./internal/index`.
func EnginesExperiment(seed uint64, o Options) (string, error) {
	subs := o.Subscribers
	if subs <= 0 {
		subs = 5000
	}
	maxBatch := o.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64
	}
	const events = 512
	bib, err := workload.NewBiblio(seed, workload.DefaultBiblio())
	if err != nil {
		return "", err
	}
	population := make([]*filter.Filter, subs)
	for i := range population {
		population[i] = bib.Subscription(0.1, true)
	}
	stream := make([]event.View, events)
	for i := range stream {
		stream[i] = bib.Event()
	}
	engines := []index.Config{
		{Kind: index.KindNaive},
		{Kind: index.KindCounting},
		{Kind: index.KindSharded, Shards: o.Shards},
		{Kind: index.KindIndexed},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment A5 — matching engines (seed=%d, subs=%d, events=%d, batch=%d, GOMAXPROCS=%d)\n\n",
		seed, subs, events, maxBatch, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-10s %8s %14s %12s %10s %12s %12s\n",
		"Engine", "Shards", "Events/sec", "Forwarded", "Speedup", "p50-match", "p99-match")
	var base float64
	for _, ecfg := range engines {
		eng := index.New(ecfg)
		for i, f := range population {
			eng.Insert(f, fmt.Sprintf("s%d", i))
		}
		shards := 1
		if se, ok := eng.(*index.ShardedEngine); ok {
			shards = se.Shards()
		}
		var forwarded uint64
		start := time.Now()
		for off := 0; off < len(stream); off += maxBatch {
			end := off + maxBatch
			if end > len(stream) {
				end = len(stream)
			}
			for _, r := range index.MatchEach(eng, stream[off:end]) {
				forwarded += uint64(len(r.IDs))
			}
		}
		rate := float64(len(stream)) / time.Since(start).Seconds()
		// Per-event match-latency percentiles from an individually timed
		// pass (the batch pass above warmed the engine).
		lat := make([]time.Duration, len(stream))
		for i, e := range stream {
			t0 := time.Now()
			eng.Match(e)
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		if ecfg.Kind == index.KindNaive {
			base = rate
		}
		fmt.Fprintf(&b, "%-10s %8d %14.0f %12d %9.2fx %12s %12s\n",
			ecfg.Kind, shards, rate, forwarded, rate/base,
			lat[len(lat)*50/100], lat[len(lat)*99/100])
	}
	b.WriteString("\nAll engines forward identical copies; sharded scales with cores,\nindexed keeps per-event latency flat as the population grows.\n")
	return b.String(), nil
}

// FlowExperiment (A6) contrasts the four slow-consumer flow policies on
// a live two-stage overlay with one deliberately slow subscriber: a
// publisher bursts events much faster than the subscriber's handler
// consumes them, and each policy resolves the overload differently —
// Block backpressures the publisher (zero loss, publish slows), the
// drop policies shed (newest-first keeps the oldest backlog, oldest-
// first keeps the freshest), and spill diverts overflow to the
// subscriber's backlog for in-order replay. The table reports what each
// policy did with the same traffic.
func FlowExperiment(seed uint64, o Options) (string, error) {
	window := o.FlowWindow
	if window <= 0 {
		window = 64
	}
	const events = 800
	policies := []flow.Policy{flow.Block, flow.DropNewest, flow.DropOldest, flow.SpillToStore}
	var b strings.Builder
	fmt.Fprintf(&b, "Experiment A6 — slow-consumer flow policies (seed=%d, events=%d, window=%d)\n\n",
		seed, events, window)
	fmt.Fprintf(&b, "%-12s %10s %9s %9s %8s %8s %10s\n",
		"Policy", "Delivered", "Dropped", "Spilled", "Stalls", "MaxQ", "Total(ms)")
	for _, p := range policies {
		sys, err := overlay.New(overlay.Config{
			Fanouts:    []int{1, 2},
			Seed:       seed,
			FlowPolicy: p,
			FlowWindow: window,
		})
		if err != nil {
			return "", err
		}
		ad, err := typing.NewAdvertisement("Tick", 3, "n")
		if err != nil {
			sys.Close()
			return "", err
		}
		if err := sys.Advertise(ad); err != nil {
			sys.Close()
			return "", err
		}
		sub := filter.Subscription{filter.MustParseFilter(`class = "Tick"`)}
		h, err := sys.Subscribe("slow", sub, func(*event.Event) {
			time.Sleep(200 * time.Microsecond) // the slow consumer
		})
		if err != nil {
			sys.Close()
			return "", err
		}
		start := time.Now()
		for i := 0; i < events; i++ {
			e := event.NewBuilder("Tick").Int("n", int64(i)).Build()
			if err := sys.Publish(e); err != nil {
				sys.Close()
				return "", err
			}
		}
		sys.Flush()
		total := time.Since(start)
		var dropped, spilled, stalled uint64
		for _, st := range sys.Stats() {
			dropped += st.Dropped
			spilled += st.Spilled
			stalled += st.Stalled
		}
		maxQ := 0
		for _, qs := range sys.FlowStats() {
			if qs.DepthMax > maxQ {
				maxQ = qs.DepthMax
			}
		}
		fmt.Fprintf(&b, "%-12s %10d %9d %9d %8d %8d %10.1f\n",
			p, h.Delivered(), dropped, spilled, stalled, maxQ,
			float64(total.Microseconds())/1000)
		sys.Close()
	}
	b.WriteString("\nBlock publishes slowest but loses nothing; the drop policies bound\n")
	b.WriteString("latency by shedding (counted); spill defers overflow to the backlog\n")
	b.WriteString("and replays it in order once the consumer catches up.\n")
	return b.String(), nil
}

// RawPathExperiment (A7) quantifies the zero-copy event path: one broker
// forward hop — read an inbound Forward frame, match it against the
// subscription table, frame it for the next peer — measured on the two
// event representations. The raw path matches lazily over the wire bytes
// and relays them untouched; the decoded path is the pre-refactor cost
// model (materialize the event, match the decoded form, re-encode for
// the next hop). Reproduce with `go test -bench BenchmarkForwardPath .`.
func RawPathExperiment(seed uint64, o Options) (string, error) {
	subs := o.Subscribers
	if subs <= 0 {
		subs = 2000
	}
	const ring = 256
	const rounds = 40
	bib, err := workload.NewBiblio(seed, workload.DefaultBiblio())
	if err != nil {
		return "", err
	}
	table := index.NewCountingTable(nil)
	for i := 0; i < subs; i++ {
		table.Insert(bib.Subscription(0.1, true), fmt.Sprintf("s%d", i))
	}
	var stream bytes.Buffer
	for i := 0; i < ring; i++ {
		ev := bib.Event()
		ev.ID = uint64(i + 1)
		if err := transport.WriteFrame(&stream, transport.Forward{Event: event.EncodeRaw(ev)}); err != nil {
			return "", err
		}
	}
	frames := stream.Bytes()

	run := func(decoded bool) (rate float64, allocPerEvent float64, err error) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		n := 0
		for round := 0; round < rounds; round++ {
			rd := bytes.NewReader(frames)
			fr := transport.NewFrameReader(rd)
			for rd.Len() > 0 {
				m, err := fr.ReadFrame()
				if err != nil {
					return 0, 0, err
				}
				fwd := m.(transport.Forward)
				if decoded {
					ev := fwd.Event.Event()
					table.Match(ev)
					if err := transport.WriteFrame(io.Discard, transport.Forward{Event: event.EncodeRaw(ev.Clone())}); err != nil {
						return 0, 0, err
					}
				} else {
					table.Match(fwd.Event)
					if err := transport.WriteFrame(io.Discard, fwd); err != nil {
						return 0, 0, err
					}
				}
				n++
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return float64(n) / elapsed.Seconds(),
			float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n), nil
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Experiment A7 — raw vs decoded forwarding path (seed=%d, subs=%d, events=%d)\n\n",
		seed, subs, ring*rounds)
	fmt.Fprintf(&b, "%-10s %14s %14s %10s\n", "Path", "Events/sec", "Alloc B/ev", "Speedup")
	decRate, decAlloc, err := run(true)
	if err != nil {
		return "", err
	}
	rawRate, rawAlloc, err := run(false)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-10s %14.0f %14.0f %9.2fx\n", "decoded", decRate, decAlloc, 1.0)
	fmt.Fprintf(&b, "%-10s %14.0f %14.0f %9.2fx\n", "raw", rawRate, rawAlloc, rawRate/decRate)
	b.WriteString("\nThe raw path matches lazily over wire bytes and relays them\nuntouched: one encode per publish, one decode per delivery, and the\nbroker hop itself allocates only the frame views.\n")
	return b.String(), nil
}
