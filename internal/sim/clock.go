package sim

import "container/heap"

// evKind orders simultaneous scheduler events. At equal timestamps,
// faults fire before control frames, control before event frames (a
// resync completing "now" is visible to a frame arriving "now"), frames
// before queue drains, and workload injection last. Within a kind, the
// scheduling sequence number breaks the tie — the full (timestamp,
// kind, seq) key is total, so pop order is unique.
type evKind uint8

const (
	kindFault evKind = iota
	kindControl
	kindFrame
	kindDrain
	kindOp
)

type schedEvent struct {
	at   int64 // virtual microseconds
	kind evKind
	seq  uint64
	run  func()
}

type eventHeap []*schedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*schedEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// scheduler is the discrete-event core: a virtual clock advanced by
// popping the earliest scheduled event. Strictly single-threaded — the
// simulation's determinism rests on every state change happening inside
// a popped event's run function, in heap order.
type scheduler struct {
	heap eventHeap
	now  int64
	seq  uint64
	ran  uint64
}

// schedule enqueues run at virtual time at (clamped to now: the past is
// not addressable).
func (s *scheduler) schedule(at int64, kind evKind, run func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.heap, &schedEvent{at: at, kind: kind, seq: s.seq, run: run})
}

// step pops and runs the next event; it reports whether one existed.
func (s *scheduler) step() bool {
	if len(s.heap) == 0 {
		return false
	}
	ev := heap.Pop(&s.heap).(*schedEvent)
	s.now = ev.at
	s.ran++
	ev.run()
	return true
}
