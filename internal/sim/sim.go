// Package sim is the deterministic simulator reproducing the paper's
// evaluation (Section 5): a four-level hierarchy (1 stage-3 root, 10
// stage-2 nodes, 100 stage-1 nodes, N subscribers at stage 0) filtering
// pseudo-randomly generated bibliographic events, measured with the LC,
// RLC and MR metrics of Section 5.1.
//
// The simulator drives the same routing.Node core as the concurrent
// overlay and the TCP brokers, single-threaded and fully seeded, so every
// number in EXPERIMENTS.md is reproducible.
//
// Beyond the paper's hierarchy harness, the package holds a
// discrete-event cluster simulator (cluster.go): federated brokers built
// from the real routing, peering, and flow code, run under a virtual
// clock (clock.go) with simulated links, fault injection (fault.go), and
// RNG partitioned per subsystem (rng.go) so one seed reproduces a run
// bit for bit. Delivery traces hash into a digest (digest.go); the
// scenario suite (scenario.go) pins those digests as golden files and CI
// re-checks them on every push — see docs/ARCHITECTURE.md, "Simulation".
package sim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"eventsys/internal/baseline"
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
	"eventsys/internal/routing"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
	"eventsys/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	// Seed drives every random choice in the run.
	Seed uint64
	// Fanouts lists broker counts per stage from the top down; the paper
	// uses {1, 10, 100}. The hierarchy has len(Fanouts) broker stages.
	Fanouts []int
	// Subscribers is the stage-0 population size.
	Subscribers int
	// Events is the number of events published at the root.
	Events int
	// Biblio configures the workload; the zero value selects
	// workload.DefaultBiblio().
	Biblio workload.BiblioConfig
	// WildcardProb leaves attributes unspecified in subscriptions
	// (Section 4.4).
	WildcardProb float64
	// Anchor generates subscriptions correlated with traffic (see
	// workload.Biblio.Subscription); the paper's evaluation implies
	// subscriptions that match real events.
	Anchor bool
	// StageAttrs overrides the advertisement's attribute-stage
	// association. Length must be len(Fanouts)+1 (stages 0..top). The
	// default reproduces Section 5.2: stage-1 drops title, stage-2 drops
	// author, stage-3 keeps year only.
	StageAttrs []int
	// Engine selects the matching engine at brokers (identical results
	// for every kind); the zero value is the naive Figure 6 table.
	Engine index.Kind
	// Shards is the shard count of the sharded engine; 0 = GOMAXPROCS.
	Shards int
	// RandomPlacement disables the covering-search clustering of the
	// Figure 5 protocol: subscribers descend randomly to a stage-1 node.
	// Used by the placement ablation (A1).
	RandomPlacement bool
	// Validate cross-checks delivery against an exhaustive oracle and
	// against the centralized baseline (slower).
	Validate bool
}

// DefaultConfig returns the paper's Section 5.2 setup with the given
// subscriber population.
func DefaultConfig(seed uint64, subscribers, events int) Config {
	return Config{
		Seed:        seed,
		Fanouts:     []int{1, 10, 100},
		Subscribers: subscribers,
		Events:      events,
		Biblio:      workload.DefaultBiblio(),
		Anchor:      true,
		// Section 5.2: stage-3 keeps year; stage-2 year+conference;
		// stage-1 adds author; stage-0 the full filter.
		StageAttrs: []int{4, 3, 2, 1},
	}
}

// Result carries the measurements of a run.
type Result struct {
	// Stats holds one snapshot per broker and subscriber.
	Stats []metrics.NodeStats
	// Summaries aggregates Stats per stage.
	Summaries []metrics.StageSummary
	// GlobalRLC is the sum of RLC over all nodes (paper claim: ≈ 1).
	GlobalRLC float64
	// TotalEvents and TotalSubs are the RLC denominators.
	TotalEvents, TotalSubs uint64
	// Delivered counts deliveries to subscribers (after perfect edge
	// filtering).
	Delivered uint64
	// SubscriberAvgMR is the average matching rate over subscribers that
	// received at least one event (paper: 0.87). MR is undefined for a
	// subscriber that never received anything.
	SubscriberAvgMR float64
	// BrokerFilters is the total number of filters stored at brokers.
	BrokerFilters int
	// ForwardTotal is the total number of broker-to-broker/subscriber
	// event copies sent.
	ForwardTotal uint64
	// Duplicates counts duplicate (event, subscriber) deliveries; must
	// be zero.
	Duplicates int
	// FalseNegatives counts events a subscriber wanted but never
	// received (oracle check, Validate only); must be zero.
	FalseNegatives int
	// OracleDisagreements counts mismatches against the centralized
	// baseline (Validate only); must be zero.
	OracleDisagreements int
}

// simulator holds the live state of a run.
type simulator struct {
	cfg       Config
	rng       *rand.Rand
	bib       *workload.Biblio
	weakener  *weaken.Weakener
	collector *metrics.Collector
	nodes     map[routing.NodeID]*routing.Node
	root      *routing.Node
	// subscriber state
	subFilters map[routing.NodeID]*filter.Filter
	delivered  map[routing.NodeID]map[uint64]int
	oracle     *baseline.Centralized
	now        time.Time
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, err
	}
	s.placeSubscribers()
	return s.publishAll()
}

func build(cfg Config) (*simulator, error) {
	if len(cfg.Fanouts) == 0 {
		return nil, fmt.Errorf("sim: at least one broker stage required")
	}
	for i, n := range cfg.Fanouts {
		if n <= 0 {
			return nil, fmt.Errorf("sim: fanout[%d] = %d, want > 0", i, n)
		}
	}
	if cfg.Subscribers <= 0 || cfg.Events <= 0 {
		return nil, fmt.Errorf("sim: need positive subscribers and events, got %d/%d",
			cfg.Subscribers, cfg.Events)
	}
	if cfg.Biblio == (workload.BiblioConfig{}) {
		cfg.Biblio = workload.DefaultBiblio()
	}
	bib, err := workload.NewBiblio(cfg.Seed, cfg.Biblio)
	if err != nil {
		return nil, err
	}
	stages := len(cfg.Fanouts)
	ad, err := bib.Generator().Advertisement(stages + 1)
	if err != nil {
		return nil, err
	}
	if cfg.StageAttrs != nil {
		if len(cfg.StageAttrs) != stages+1 {
			return nil, fmt.Errorf("sim: StageAttrs needs %d entries, got %d", stages+1, len(cfg.StageAttrs))
		}
		ad.StageAttrs = append([]int(nil), cfg.StageAttrs...)
		if err := ad.Validate(); err != nil {
			return nil, err
		}
	}
	var ads typing.AdvertisementSet
	if err := ads.Put(ad); err != nil {
		return nil, err
	}
	s := &simulator{
		cfg:        cfg,
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0x5eed)),
		bib:        bib,
		weakener:   weaken.New(&ads, nil),
		collector:  &metrics.Collector{},
		nodes:      make(map[routing.NodeID]*routing.Node),
		subFilters: make(map[routing.NodeID]*filter.Filter),
		delivered:  make(map[routing.NodeID]map[uint64]int),
		now:        time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	s.buildHierarchy()
	if cfg.Validate {
		s.oracle = baseline.NewCentralized(nil, nil)
	}
	return s, nil
}

// buildHierarchy instantiates brokers per Fanouts: Fanouts[0] nodes at the
// top stage, children spread evenly under the level above.
func (s *simulator) buildHierarchy() {
	stages := len(s.cfg.Fanouts)
	ids := make([][]routing.NodeID, stages) // ids[i] = nodes at Fanouts[i]
	for level, count := range s.cfg.Fanouts {
		stage := stages - level
		ids[level] = make([]routing.NodeID, count)
		for i := 0; i < count; i++ {
			ids[level][i] = routing.NodeID(fmt.Sprintf("N%d.%d", stage, i+1))
		}
	}
	for level, count := range s.cfg.Fanouts {
		stage := stages - level
		for i := 0; i < count; i++ {
			id := ids[level][i]
			var parent routing.NodeID
			if level > 0 {
				above := len(ids[level-1])
				parent = ids[level-1][i*above/count]
			}
			var children []routing.NodeID
			if level+1 < stages {
				below := len(ids[level+1])
				for j := 0; j < below; j++ {
					if j*count/below == i {
						children = append(children, ids[level+1][j])
					}
				}
			}
			ecfg := index.Config{
				Kind:   s.cfg.Engine,
				Shards: s.cfg.Shards,
			}
			n := routing.NewNode(routing.Config{
				ID: id, Stage: stage, Parent: parent, Children: children,
				Weakener: s.weakener,
				Counters: s.collector.Counters(string(id), stage),
				Engine:   ecfg,
			})
			s.nodes[id] = n
			if parent == "" && stage == stages {
				s.root = n
			}
		}
	}
}

// placeSubscribers runs the Figure 5 protocol (or random placement for
// the ablation) for every subscriber.
func (s *simulator) placeSubscribers() {
	stage1 := s.stage1Nodes()
	for i := 0; i < s.cfg.Subscribers; i++ {
		sid := routing.NodeID(fmt.Sprintf("S%04d", i))
		f := s.bib.Subscription(s.cfg.WildcardProb, s.cfg.Anchor)
		s.subFilters[sid] = f
		// The subscriber runtime holds its own (single) original filter —
		// the stage-0 "perfect filtering" work the paper's table counts.
		s.collector.Counters(string(sid), 0).SetFilters(1)
		if s.oracle != nil {
			s.oracle.Subscribe(string(sid), f)
		}
		if s.cfg.RandomPlacement {
			s.placeRandom(sid, f, stage1)
			continue
		}
		s.placeProtocol(sid, f)
	}
}

func (s *simulator) stage1Nodes() []routing.NodeID {
	level := len(s.cfg.Fanouts) - 1
	count := s.cfg.Fanouts[level]
	out := make([]routing.NodeID, count)
	for i := 0; i < count; i++ {
		out[i] = routing.NodeID(fmt.Sprintf("N1.%d", i+1))
	}
	return out
}

// placeProtocol walks the subscription down from the root per Figure 5.
func (s *simulator) placeProtocol(sid routing.NodeID, f *filter.Filter) {
	cur := s.root
	for hop := 0; hop < len(s.cfg.Fanouts)+2; hop++ {
		res := cur.HandleSubscribe(f, sid, s.rng, s.now)
		if res.Action == routing.ActionRedirect {
			cur = s.nodes[res.Target]
			continue
		}
		s.propagateUp(cur, res.Up)
		return
	}
	panic("sim: subscription placement did not terminate")
}

// placeRandom attaches the subscriber at a uniformly random stage-1 node
// (the ablation baseline for A1).
func (s *simulator) placeRandom(sid routing.NodeID, f *filter.Filter, stage1 []routing.NodeID) {
	n := s.nodes[stage1[s.rng.IntN(len(stage1))]]
	res := n.HandleSubscribe(f, sid, s.rng, s.now) // stage-1 always accepts
	s.propagateUp(n, res.Up)
}

func (s *simulator) propagateUp(from *routing.Node, up *filter.Filter) {
	at := from
	for up != nil && !at.IsRoot() {
		parent := s.nodes[at.Parent()]
		up = parent.HandleReqInsert(up, at.ID(), s.now)
		at = parent
	}
}

// publishAll drives every event through the hierarchy and assembles the
// result.
func (s *simulator) publishAll() (*Result, error) {
	type frame struct {
		node *routing.Node
		ev   *event.Event
	}
	res := &Result{
		TotalEvents: uint64(s.cfg.Events),
		TotalSubs:   uint64(s.cfg.Subscribers),
	}
	stack := make([]frame, 0, 64)
	for i := 0; i < s.cfg.Events; i++ {
		e := s.bib.Event()
		var oracleIDs []string
		if s.oracle != nil {
			oracleIDs = s.oracle.Publish(e)
		}
		gotIDs := make(map[string]bool)
		stack = append(stack[:0], frame{node: s.root, ev: e})
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, id := range fr.node.HandleEvent(fr.ev) {
				if child, ok := s.nodes[id]; ok {
					stack = append(stack, frame{node: child, ev: fr.node.TransformEventFor(e, child.Stage())})
					continue
				}
				s.deliver(id, e, gotIDs, res)
			}
		}
		if s.oracle != nil {
			for _, want := range oracleIDs {
				if !gotIDs[want] {
					res.FalseNegatives++
				}
			}
			if len(oracleIDs) != len(gotIDs) {
				res.OracleDisagreements++
			}
		}
	}
	s.finishResult(res)
	return res, nil
}

// deliver runs the subscriber runtime: perfect filtering with the
// original subscription on the full event (Figure 3's end-to-end stage).
func (s *simulator) deliver(sid routing.NodeID, e *event.Event, gotIDs map[string]bool, res *Result) {
	c := s.collector.Counters(string(sid), 0)
	c.AddReceived(1)
	f := s.subFilters[sid]
	if f == nil || !f.Matches(e, nil) {
		return
	}
	c.AddMatched(1)
	c.AddDelivered(1)
	res.Delivered++
	if gotIDs[string(sid)] {
		res.Duplicates++
	}
	gotIDs[string(sid)] = true
	if s.cfg.Validate {
		if s.delivered[sid] == nil {
			s.delivered[sid] = make(map[uint64]int)
		}
		s.delivered[sid][e.ID]++
	}
}

func (s *simulator) finishResult(res *Result) {
	res.Stats = s.collector.Snapshot()
	res.Summaries = metrics.Summarize(res.Stats, res.TotalEvents, res.TotalSubs)
	res.GlobalRLC = metrics.GlobalRLC(res.Stats, res.TotalEvents, res.TotalSubs)
	var mrSum float64
	var active int
	for _, st := range res.Stats {
		if st.Stage == 0 {
			if st.Received > 0 {
				mrSum += st.MR()
				active++
			}
		} else {
			res.BrokerFilters += st.Filters
			res.ForwardTotal += st.Forwarded
		}
	}
	if active > 0 {
		res.SubscriberAvgMR = mrSum / float64(active)
	}
}

// SubscriberFilters exposes the generated subscriptions (tests and
// experiments reuse them for baselines).
func SubscriberFilters(cfg Config) (map[string]*filter.Filter, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, err
	}
	s.placeSubscribers()
	out := make(map[string]*filter.Filter, len(s.subFilters))
	for id, f := range s.subFilters {
		out[string(id)] = f
	}
	return out, nil
}
