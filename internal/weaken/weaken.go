// Package weaken implements the filter and event transformations of
// Section 3.3 and the automated, advertisement-driven weakening process of
// Section 4.1.
//
// Filter weakening (Proposition 1) produces a covering filter usable for
// pre-filtering at intermediate stages: attributes below the stage's
// generality cut (per the advertised attribute-stage association G_c) are
// dropped, and value bounds of same-shape sibling filters are relaxed to
// the weakest bound when merging (Example 5, Stage-1: price<10 and
// price<11 merge to price<11).
//
// Event transformation (Proposition 2) projects published events onto the
// attribute set used at a stage, producing a covering event: every
// weakened filter evaluates identically on the projection and on the full
// event.
package weaken

import (
	"strings"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

// Weakener derives stage-appropriate filters and events from the
// advertised attribute-stage associations. The zero value weakens without
// schema knowledge: it keeps full filters at stage 0 and class-only
// filters above (always sound, maximally imprecise).
type Weakener struct {
	// Ads supplies per-class advertisements. May be nil.
	Ads *typing.AdvertisementSet
	// Conf supplies class conformance for covering checks during merging.
	// May be nil (exact type matching).
	Conf filter.Conformance
}

// New constructs a Weakener over the given advertisements and conformance.
func New(ads *typing.AdvertisementSet, conf filter.Conformance) *Weakener {
	return &Weakener{Ads: ads, Conf: conf}
}

// advert returns the advertisement for the filter's class, if any.
func (w *Weakener) advert(class string) (*typing.Advertisement, bool) {
	if w == nil || w.Ads == nil || class == "" {
		return nil, false
	}
	return w.Ads.Get(class)
}

// Filter weakens f for use at the given stage. The result covers f
// (Proposition 1): stage 0 returns the filter unchanged; higher stages
// keep only the attributes the advertisement associates with the stage,
// in generality order; stages past the association — or filters on
// unadvertised classes — keep only the class constraint.
func (w *Weakener) Filter(f *filter.Filter, stage int) *filter.Filter {
	if stage <= 0 {
		return f.Clone()
	}
	ad, ok := w.advert(f.Class)
	if !ok {
		return &filter.Filter{Class: f.Class}
	}
	if stage >= ad.Stages() {
		return &filter.Filter{Class: f.Class}
	}
	std := f.Standardize(schemaAdapter{ad})
	kept := make(map[string]bool)
	for _, a := range ad.KeptAt(stage) {
		kept[a] = true
	}
	// Off-schema constraints are dropped above stage 0: intermediate
	// nodes cannot weaken what was never advertised.
	return std.Project(func(attr string) bool { return kept[attr] })
}

// Event transforms e for matching at the given stage: attributes the
// stage's filters cannot reference are projected away, which is the
// meta-data "covering event" of Proposition 2. Stage 0 returns the event
// unchanged (the subscriber runtime needs everything).
func (w *Weakener) Event(e *event.Event, stage int) *event.Event {
	if stage <= 0 {
		return e
	}
	ad, ok := w.advert(e.Type)
	if !ok {
		return e.Project(func(string) bool { return false })
	}
	if stage >= ad.Stages() {
		return e.Project(func(string) bool { return false })
	}
	kept := make(map[string]bool)
	for _, a := range ad.KeptAt(stage) {
		kept[a] = true
	}
	return e.Project(func(attr string) bool { return kept[attr] })
}

// schemaAdapter exposes a typing.Advertisement as a filter.Schema.
type schemaAdapter struct{ ad *typing.Advertisement }

func (s schemaAdapter) AttrOrder() []string { return s.ad.Attrs }

// StageSet computes the filter table a stage-s node stores for the given
// child subscriptions: each is weakened for the stage, same-shape filters
// merge to their weakest bounds, and covered filters collapse away. The
// result is the minimal pre-filter set that forwards every event any
// child wants.
func (w *Weakener) StageSet(subs []*filter.Filter, stage int) []*filter.Filter {
	weakened := make([]*filter.Filter, len(subs))
	for i, f := range subs {
		weakened[i] = w.Filter(f, stage)
	}
	conf := w.conf()
	return filter.Collapse(MergeSimilar(weakened), conf)
}

func (w *Weakener) conf() filter.Conformance {
	if w == nil || w.Conf == nil {
		return filter.ExactTypes{}
	}
	return w.Conf
}

// MergeSimilar merges filters that differ only in the bounds of their
// ordering constraints into a single filter with the weakest bounds
// (Section 4.1's "<"/">"-relation weakening). Filters with distinct
// shapes pass through unchanged. The output order follows first
// occurrence of each shape.
func MergeSimilar(fs []*filter.Filter) []*filter.Filter {
	type group struct {
		merged *filter.Filter
	}
	groups := make(map[string]*group)
	var order []string
	for _, f := range fs {
		key := shapeKey(f)
		g, ok := groups[key]
		if !ok {
			groups[key] = &group{merged: f.Clone()}
			order = append(order, key)
			continue
		}
		relaxInto(g.merged, f)
	}
	out := make([]*filter.Filter, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k].merged)
	}
	return out
}

// shapeKey identifies the mergeable shape of a filter: class plus the
// sequence of (attribute, operator category, and — for non-relaxable
// operators — operand). Two filters with equal keys differ at most in the
// bounds of <,<=,>,>= constraints of the same value family.
func shapeKey(f *filter.Filter) string {
	var b strings.Builder
	b.WriteString(f.Class)
	for _, c := range f.Constraints {
		b.WriteByte(0)
		b.WriteString(c.Attr)
		b.WriteByte(1)
		switch c.Op {
		case filter.OpLt, filter.OpLe:
			b.WriteString("<")
			b.WriteString(familyTag(c.Operand))
		case filter.OpGt, filter.OpGe:
			b.WriteString(">")
			b.WriteString(familyTag(c.Operand))
		default:
			b.WriteString(c.Op.String())
			b.WriteByte(1)
			if c.Op.NeedsOperand() {
				b.WriteString(c.Operand.String())
			}
		}
	}
	return b.String()
}

func familyTag(v event.Value) string {
	switch v.Kind() {
	case event.KindString:
		return "s"
	case event.KindBool:
		return "b"
	default:
		return "n"
	}
}

// relaxInto widens dst's relaxable bounds to also admit everything src
// admits. dst and src must share a shape key.
func relaxInto(dst, src *filter.Filter) {
	for i := range dst.Constraints {
		dc := &dst.Constraints[i]
		sc := src.Constraints[i]
		switch dc.Op {
		case filter.OpLt, filter.OpLe:
			c, ok := sc.Operand.Compare(dc.Operand)
			if !ok {
				continue
			}
			srcLoose := sc.Op == filter.OpLe
			dstLoose := dc.Op == filter.OpLe
			if c > 0 || (c == 0 && srcLoose && !dstLoose) {
				dc.Op, dc.Operand = sc.Op, sc.Operand
			}
		case filter.OpGt, filter.OpGe:
			c, ok := sc.Operand.Compare(dc.Operand)
			if !ok {
				continue
			}
			srcLoose := sc.Op == filter.OpGe
			dstLoose := dc.Op == filter.OpGe
			if c < 0 || (c == 0 && srcLoose && !dstLoose) {
				dc.Op, dc.Operand = sc.Op, sc.Operand
			}
		}
	}
}

// InferOrder derives a generality ordering for the attributes observed in
// a sample of events: attributes with fewer distinct values divide the
// event space into fewer, larger sub-categories and are therefore more
// general (Section 4.1, "Grouping the attributes"). Ties break
// alphabetically for determinism. Attributes absent from every event are
// not reported.
func InferOrder(sample []*event.Event) []string {
	distinct := make(map[string]map[string]struct{})
	var order []string
	for _, e := range sample {
		for _, a := range e.Attrs {
			set, ok := distinct[a.Name]
			if !ok {
				set = make(map[string]struct{})
				distinct[a.Name] = set
				order = append(order, a.Name)
			}
			set[a.Value.String()] = struct{}{}
		}
	}
	// Insertion sort by (cardinality, name): sample sizes are small and
	// stability is irrelevant given the total tie-break.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			ca, cb := len(distinct[a]), len(distinct[b])
			if cb < ca || (cb == ca && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}
