package weaken

import (
	"math/rand/v2"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
)

// example5Weakener reproduces the advertisement setup of Example 5: a
// four-stage hierarchy with Stock (symbol, price; stage-1 keeps both) and
// Auction (product, kind, capacity, price; canonical drop-one-per-stage).
func example5Weakener(t *testing.T) *Weakener {
	t.Helper()
	var ads typing.AdvertisementSet
	stock, err := typing.NewAdvertisement("Stock", 4, "symbol", "price")
	if err != nil {
		t.Fatal(err)
	}
	// Example 5 keeps price at stage 1 (weakened by bound merging).
	stock.StageAttrs = []int{2, 2, 1, 0}
	if err := stock.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ads.Put(stock); err != nil {
		t.Fatal(err)
	}
	auction, err := typing.NewAdvertisement("Auction", 4, "product", "kind", "capacity", "price")
	if err != nil {
		t.Fatal(err)
	}
	if err := ads.Put(auction); err != nil {
		t.Fatal(err)
	}
	return New(&ads, nil)
}

func example5Subscriptions() []*filter.Filter {
	return []*filter.Filter{
		filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`),
		filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 11.0`),
		filter.MustParseFilter(`class = "Stock" && symbol = "GHI" && price < 8.0`),
		filter.MustParseFilter(`class = "Auction" && product = "Vehicle" && kind = "Car" && capacity < 2000 && price < 10000`),
	}
}

func TestExample5Stage1(t *testing.T) {
	w := example5Weakener(t)
	got := w.StageSet(example5Subscriptions(), 1)
	want := []*filter.Filter{
		filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 11.0`),                           // g1
		filter.MustParseFilter(`class = "Stock" && symbol = "GHI" && price < 8.0`),                            // g2
		filter.MustParseFilter(`class = "Auction" && product = "Vehicle" && kind = "Car" && capacity < 2000`), // g3
	}
	assertFilterSet(t, got, want)
}

func TestExample5Stage2(t *testing.T) {
	w := example5Weakener(t)
	got := w.StageSet(example5Subscriptions(), 2)
	want := []*filter.Filter{
		filter.MustParseFilter(`class = "Stock" && symbol = "DEF"`),                        // h1
		filter.MustParseFilter(`class = "Stock" && symbol = "GHI"`),                        // h2
		filter.MustParseFilter(`class = "Auction" && product = "Vehicle" && kind = "Car"`), // h3
	}
	assertFilterSet(t, got, want)
}

func TestExample5Stage3(t *testing.T) {
	w := example5Weakener(t)
	got := w.StageSet(example5Subscriptions(), 3)
	want := []*filter.Filter{
		filter.MustParseFilter(`class = "Stock"`),   // i1
		filter.MustParseFilter(`class = "Auction"`), // i2
	}
	assertFilterSet(t, got, want)
}

func assertFilterSet(t *testing.T, got, want []*filter.Filter) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d filters, want %d:\n got %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		// Compare semantically: mutual covering.
		if !filter.Covers(got[i], want[i], nil) || !filter.Covers(want[i], got[i], nil) {
			t.Errorf("filter %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}

func TestWeakenUnadvertisedClass(t *testing.T) {
	w := New(nil, nil)
	f := filter.MustParseFilter(`class = "Mystery" && x = 1`)
	for stage := 1; stage <= 3; stage++ {
		g := w.Filter(f, stage)
		if g.Class != "Mystery" || len(g.Constraints) != 0 {
			t.Errorf("stage %d: unadvertised weakening = %s, want class-only", stage, g)
		}
	}
	if g := w.Filter(f, 0); !g.Equal(f) {
		t.Errorf("stage 0 must be identity, got %s", g)
	}
}

func TestWeakenBeyondStages(t *testing.T) {
	w := example5Weakener(t)
	f := example5Subscriptions()[0]
	g := w.Filter(f, 99)
	if g.Class != "Stock" || len(g.Constraints) != 0 {
		t.Errorf("beyond-stages weakening = %s, want class-only", g)
	}
}

func TestMergeSimilar(t *testing.T) {
	tests := []struct {
		name string
		in   []string
		want []string
	}{
		{
			"lt bounds",
			[]string{`sym = "A" && p < 10`, `sym = "A" && p < 12`, `sym = "A" && p < 11`},
			[]string{`sym = "A" && p < 12`},
		},
		{
			"le beats lt at same bound",
			[]string{`p < 10`, `p <= 10`},
			[]string{`p <= 10`},
		},
		{
			"gt bounds take min",
			[]string{`p > 5`, `p > 3`},
			[]string{`p > 3`},
		},
		{
			"ge beats gt at same bound",
			[]string{`p > 3`, `p >= 3`},
			[]string{`p >= 3`},
		},
		{
			"different eq not merged",
			[]string{`sym = "A" && p < 10`, `sym = "B" && p < 12`},
			[]string{`sym = "A" && p < 10`, `sym = "B" && p < 12`},
		},
		{
			"different shape not merged",
			[]string{`p < 10`, `p > 10`},
			[]string{`p < 10`, `p > 10`},
		},
		{
			"string bounds merge",
			[]string{`s < "m"`, `s < "q"`},
			[]string{`s < "q"`},
		},
		{
			"family mismatch not merged",
			[]string{`p < 10`, `p < "a"`},
			[]string{`p < 10`, `p < "a"`},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := make([]*filter.Filter, len(tt.in))
			for i, s := range tt.in {
				in[i] = filter.MustParseFilter(s)
			}
			want := make([]*filter.Filter, len(tt.want))
			for i, s := range tt.want {
				want[i] = filter.MustParseFilter(s)
			}
			assertFilterSet(t, MergeSimilar(in), want)
		})
	}
}

func TestMergeDoesNotMutateInput(t *testing.T) {
	f1 := filter.MustParseFilter(`p < 10`)
	f2 := filter.MustParseFilter(`p < 12`)
	MergeSimilar([]*filter.Filter{f1, f2})
	if !f1.Equal(filter.MustParseFilter(`p < 10`)) {
		t.Errorf("input filter mutated: %s", f1)
	}
}

func TestInferOrder(t *testing.T) {
	var sample []*event.Event
	for i := range 20 {
		sample = append(sample, event.NewBuilder("Biblio").
			Int("year", int64(2000+i%2)).                    // 2 distinct
			Str("conference", []string{"A", "B", "C"}[i%3]). // 3 distinct
			Str("author", string(rune('a'+i%5))).            // 5 distinct
			Str("title", string(rune('a'+i))).               // 20 distinct
			Build())
	}
	got := InferOrder(sample)
	want := []string{"year", "conference", "author", "title"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InferOrder = %v, want %v", got, want)
		}
	}
	if len(InferOrder(nil)) != 0 {
		t.Error("InferOrder(nil) should be empty")
	}
}

// --- property tests of Propositions 1 and 2 ---

var biblioSchema = []string{"year", "conference", "author", "title"}

func biblioWeakener(t testing.TB) *Weakener {
	var ads typing.AdvertisementSet
	ad, err := typing.NewAdvertisement("Biblio", 4, biblioSchema...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ads.Put(ad); err != nil {
		t.Fatal(err)
	}
	return New(&ads, nil)
}

func randomBiblioEvent(rng *rand.Rand) *event.Event {
	return event.NewBuilder("Biblio").
		Int("year", int64(1995+rng.IntN(10))).
		Str("conference", []string{"ICDCS", "SOSP", "OSDI", "PODC"}[rng.IntN(4)]).
		Str("author", string(rune('a'+rng.IntN(6)))).
		Str("title", string(rune('A'+rng.IntN(26)))).
		Build()
}

func randomBiblioFilter(rng *rand.Rand) *filter.Filter {
	f := &filter.Filter{Class: "Biblio"}
	ops := []filter.Op{filter.OpEq, filter.OpLt, filter.OpLe, filter.OpGt, filter.OpGe, filter.OpNe}
	for _, attr := range biblioSchema {
		if rng.IntN(2) == 0 {
			continue
		}
		op := ops[rng.IntN(len(ops))]
		var v event.Value
		switch attr {
		case "year":
			v = event.Int(int64(1995 + rng.IntN(10)))
		case "conference":
			v = event.String([]string{"ICDCS", "SOSP", "OSDI", "PODC"}[rng.IntN(4)])
		case "author":
			v = event.String(string(rune('a' + rng.IntN(6))))
		default:
			v = event.String(string(rune('A' + rng.IntN(26))))
		}
		f.Constraints = append(f.Constraints, filter.C(attr, op, v))
	}
	return f
}

// TestProposition1Property: the weakened filter covers the standardized
// original, both by the conservative checker and semantically on sampled
// full-schema events.
func TestProposition1Property(t *testing.T) {
	w := biblioWeakener(t)
	ad, _ := w.Ads.Get("Biblio")
	rng := rand.New(rand.NewPCG(11, 13))
	for range 500 {
		f := randomBiblioFilter(rng)
		std := f.Standardize(filter.SchemaOf(ad.Attrs...))
		for stage := 0; stage < 4; stage++ {
			g := w.Filter(f, stage)
			if !filter.Covers(g, std, nil) {
				t.Fatalf("stage %d weakening does not cover original:\n  f %s\n  g %s", stage, std, g)
			}
			for range 50 {
				e := randomBiblioEvent(rng)
				if f.Matches(e, nil) && !g.Matches(e, nil) {
					t.Fatalf("stage %d: event matches f but not weakened g:\n  f %s\n  g %s\n  e %s", stage, f, g, e)
				}
			}
		}
	}
}

// TestProposition2Property: the projected (covering) event is
// indistinguishable from the original under every weakened filter of the
// same stage.
func TestProposition2Property(t *testing.T) {
	w := biblioWeakener(t)
	rng := rand.New(rand.NewPCG(17, 19))
	for range 500 {
		f := randomBiblioFilter(rng)
		e := randomBiblioEvent(rng)
		for stage := 0; stage < 4; stage++ {
			g := w.Filter(f, stage)
			ew := w.Event(e, stage)
			if g.Matches(ew, nil) != g.Matches(e, nil) {
				t.Fatalf("stage %d: projection changed matching:\n  g %s\n  e %s\n  e' %s", stage, g, e, ew)
			}
			if !filter.CoversEvent(g, ew, e, nil) {
				t.Fatalf("stage %d: projected event does not cover original for %s", stage, g)
			}
		}
	}
}

// TestStageSetForwardingInvariant: an event matching any original
// subscription matches the stage set at every stage (no false negatives
// in pre-filtering).
func TestStageSetForwardingInvariant(t *testing.T) {
	w := biblioWeakener(t)
	rng := rand.New(rand.NewPCG(23, 29))
	for range 100 {
		var subs []*filter.Filter
		for range 1 + rng.IntN(6) {
			subs = append(subs, randomBiblioFilter(rng))
		}
		stageSets := make([][]*filter.Filter, 4)
		for s := range stageSets {
			stageSets[s] = w.StageSet(subs, s)
		}
		for range 100 {
			e := randomBiblioEvent(rng)
			matchesOriginal := filter.Subscription(subs).Matches(e, nil)
			if !matchesOriginal {
				continue
			}
			for s, set := range stageSets {
				ew := w.Event(e, s)
				if !filter.Subscription(set).Matches(ew, nil) {
					t.Fatalf("stage %d dropped a wanted event:\n  subs %v\n  set %v\n  e %s", s, subs, set, e)
				}
			}
		}
	}
}

func TestStageSetShrinks(t *testing.T) {
	w := biblioWeakener(t)
	rng := rand.New(rand.NewPCG(31, 37))
	var subs []*filter.Filter
	for range 40 {
		subs = append(subs, randomBiblioFilter(rng))
	}
	prev := len(w.StageSet(subs, 0))
	for s := 1; s < 4; s++ {
		cur := len(w.StageSet(subs, s))
		if cur > prev {
			t.Errorf("stage %d set grew: %d -> %d", s, prev, cur)
		}
		prev = cur
	}
	top := w.StageSet(subs, 3)
	if len(top) != 1 { // all Biblio-class subs collapse to (class=Biblio)
		t.Errorf("top stage set = %v, want single class filter", top)
	}
}
