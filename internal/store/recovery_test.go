package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"eventsys/internal/event"
)

// segFiles returns the store directory's segment paths ordered by base.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	return files
}

// writeBacklog opens a store at dir, appends n events for sub "w" and
// closes it cleanly without consuming anything.
func writeBacklog(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll reopens dir and returns the replayed "n" attribute values.
func replayAll(t *testing.T, dir string) []int64 {
	t.Helper()
	s := openTest(t, dir, Options{})
	var got []int64
	if _, err := s.Replay("w", func(e *event.Raw) bool {
		v, _ := e.Lookup("n")
		got = append(got, v.IntVal())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestTornTailTruncatedAtEveryOffset simulates a crash mid-append at
// every byte offset of the final segment: the reopened store must replay
// exactly the intact record prefix, in order, and discard the torn tail.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	writeBacklog(t, master, 12, Options{})
	segs := segFiles(t, master)
	if len(segs) != 1 {
		t.Fatalf("want a single segment, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries of the intact file.
	boundaries := map[int64]int{} // offset -> records wholly before it
	off, count := 0, 0
	for off < len(data) {
		boundaries[int64(off)] = count
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		count++
	}
	boundaries[int64(len(data))] = count

	for cut := int64(0); cut <= int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Intact records = records wholly before the largest boundary ≤ cut.
		wantRecords := 0
		for b, n := range boundaries {
			if b <= cut && n > wantRecords {
				wantRecords = n
			}
		}
		got := replayAll(t, dir)
		if len(got) != wantRecords {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), wantRecords)
		}
		for i, v := range got {
			if v != int64(i) {
				t.Fatalf("cut at %d: replay out of order: %v", cut, got)
			}
		}
	}
}

// TestCorruptedByteDiscardsSuffix flips one byte inside a record body:
// recovery must keep the records before it and discard it and everything
// after (the CRC catches the corruption).
func TestCorruptedByteDiscardsSuffix(t *testing.T) {
	dir := t.TempDir()
	writeBacklog(t, dir, 10, Options{})
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the 6th record's body and flip a byte in it.
	off := 0
	for i := 0; i < 5; i++ {
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	data[off+recordHeader] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 5 {
		t.Fatalf("replayed %d records after corruption, want the 5 intact ones", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("intact prefix out of order: %v", got)
		}
	}
}

// TestTornMiddleSegmentDropsLaterSegments: a torn record in a non-final
// segment truncates there AND removes every later segment, keeping the
// log a contiguous prefix.
func TestTornMiddleSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	writeBacklog(t, dir, 60, Options{SegmentBytes: 256})
	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥ 3 segments, got %d", len(segs))
	}
	// Tear the middle segment in half.
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mid, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) == 0 || len(got) >= 60 {
		t.Fatalf("replayed %d records, want a proper prefix", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("prefix out of order: %v", got)
		}
	}
	// Later segments are gone from disk.
	for _, f := range segFiles(t, dir) {
		if f > mid {
			t.Fatalf("segment %s should have been removed", filepath.Base(f))
		}
	}
}

// TestRecoveryAcrossManySegments tears the final segment at several
// offsets with a multi-segment log: earlier segments replay whole.
func TestRecoveryAcrossManySegments(t *testing.T) {
	master := t.TempDir()
	writeBacklog(t, master, 60, Options{SegmentBytes: 512})
	segs := segFiles(t, master)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	last := segs[len(segs)-1]
	lastData, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.33, 0.71, 1} {
		cut := int64(frac * float64(len(lastData)))
		dir := t.TempDir()
		for _, f := range segs[:len(segs)-1] {
			b, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(f)), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(last)), lastData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir)
		if len(got) == 0 {
			t.Fatalf("cut %.2f: nothing replayed", frac)
		}
		for i, v := range got {
			if v != int64(i) {
				t.Fatalf("cut %.2f: replay out of order: %v", frac, got)
			}
		}
	}
}

// TestCursorBeyondTruncatedLogIsClamped: a cursor snapshot can outlive
// the log tail it refers to (cursors fsync on save; segments may not,
// under SyncEvery<0). Recovery must clamp such cursors to the recovered
// end, or post-recovery appends land below the cursor — invisible to
// Replay and eligible for compaction.
func TestCursorBeyondTruncatedLogIsClamped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Replay("w", func(*event.Raw) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // cursor = 7 persisted
		t.Fatal(err)
	}
	// Lose the last two records (power failure took the tail but the
	// cursor snapshot survived).
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 4; i++ {
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := os.WriteFile(seg, data[:off], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, Options{})
	// New appends must be replayable despite the stale high cursor.
	if _, _, err := re.Append("w", testEvent(100)); err != nil {
		t.Fatal(err)
	}
	var got []int64
	if _, err := re.Replay("w", func(e *event.Raw) bool {
		v, _ := e.Lookup("n")
		got = append(got, v.IntVal())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("replayed %v, want just the new event [100]", got)
	}
}

// TestAppendsContinueAfterRecovery: a store that truncated a torn tail
// keeps accepting appends, and the new records replay after the intact
// prefix.
func TestAppendsContinueAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	writeBacklog(t, dir, 6, Options{})
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{})
	if _, _, err := s.Append("w", testEvent(100)); err != nil {
		t.Fatal(err)
	}
	var got []int64
	if _, err := s.Replay("w", func(e *event.Raw) bool {
		v, _ := e.Lookup("n")
		got = append(got, v.IntVal())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 3, 4, 100}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
}
