package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// cursorsFile holds the per-subscription durable cursors: for each
// subscription id, the next sequence number to replay (everything below
// it has been consumed). The file is rewritten atomically (temp file +
// rename) and checksummed; a missing or corrupt file degrades to empty
// cursors, i.e. replay from the start of the retained log —
// at-least-once rather than data loss.
const cursorsFile = "CURSORS"

var cursorsMagic = []byte("EVCU")

func encodeCursors(cursors map[string]uint64) []byte {
	ids := make([]string, 0, len(cursors))
	for id := range cursors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	b := append([]byte(nil), cursorsMagic...)
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(len(id)))
		b = append(b, id...)
		b = binary.AppendUvarint(b, cursors[id])
	}
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

func decodeCursors(b []byte) (map[string]uint64, error) {
	if len(b) < len(cursorsMagic)+4 || string(b[:4]) != string(cursorsMagic) {
		return nil, fmt.Errorf("store: bad cursors header")
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("store: cursors CRC mismatch")
	}
	body = body[len(cursorsMagic):]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("store: bad cursors count")
	}
	body = body[n:]
	out := make(map[string]uint64, count)
	for i := uint64(0); i < count; i++ {
		idLen, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body)-n) < idLen {
			return nil, fmt.Errorf("store: bad cursor id")
		}
		id := string(body[n : n+int(idLen)])
		body = body[n+int(idLen):]
		seq, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("store: bad cursor seq")
		}
		body = body[n:]
		out[id] = seq
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("store: %d trailing cursor bytes", len(body))
	}
	return out, nil
}

// loadCursors reads the cursor snapshot. ok reports whether a valid
// snapshot was found; absence or corruption yields an empty map and
// false, telling recovery to re-derive cursors from the log itself.
func loadCursors(dir string) (cursors map[string]uint64, ok bool) {
	b, err := os.ReadFile(filepath.Join(dir, cursorsFile))
	if err != nil {
		return map[string]uint64{}, false
	}
	cur, err := decodeCursors(b)
	if err != nil {
		return map[string]uint64{}, false
	}
	return cur, true
}

// saveCursors atomically replaces the cursor snapshot.
func saveCursors(dir string, cursors map[string]uint64) error {
	tmp := filepath.Join(dir, cursorsFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: write cursors: %w", err)
	}
	if _, err := f.Write(encodeCursors(cursors)); err != nil {
		f.Close()
		return fmt.Errorf("store: write cursors: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync cursors: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close cursors: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, cursorsFile)); err != nil {
		return fmt.Errorf("store: install cursors: %w", err)
	}
	syncDir(dir)
	return nil
}
