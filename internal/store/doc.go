// Package store implements the durable event store backing durable
// subscriptions (the paper's Section 2.1: brokers "store events for
// temporarily disconnected subscribers"). It is a segmented append-only
// log of (subscription, event) records with CRC-framed entries,
// configurable fsync batching, per-subscription durable cursors,
// compaction of fully-consumed segments, bounded retention, and crash
// recovery that truncates torn tails on open.
//
// On-disk layout of a store directory:
//
//	000000000000000001.seg   segment files, named by first sequence number
//	000000000000004096.seg
//	CURSORS                  per-subscription cursor snapshot (atomic rename)
//	LOCK                     flock guard against double-open
//
// Each segment is a sequence of framed records:
//
//	[4-byte BE body length][4-byte BE CRC-32C of body][body]
//	body := uvarint(seq) ++ uvarint(len(subID)) ++ subID ++ event
//
// The event bytes reuse the transport wire codec (transport.AppendEvent),
// so a stored event is byte-identical to a Publish frame body. A record
// whose frame is truncated or whose CRC mismatches marks the torn tail of
// a crashed append: recovery keeps the intact prefix and discards the
// rest.
//
// Concurrency and ownership: a Store is safe for concurrent use — one
// mutex serializes all mutation (appends, cursor moves, compaction); the
// background flush goroutine only syncs under that lock. AppendBatch
// amortizes the lock acquisition and the fsync decision over a run of
// events for one subscription, which is the broker's publish-batch spill
// path. The store owns its directory exclusively (flock-guarded): open
// the same DataDir twice and the second Open fails rather than
// interleave segments. Callers own the *Store handle and must Close it;
// events passed to Append are encoded immediately and never retained.
package store
