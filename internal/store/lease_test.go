package store

import (
	"testing"
	"time"
)

func TestLeaseClaimCompleteWatermark(t *testing.T) {
	lt := NewLeaseTable()
	var base time.Time
	dl := base.Add(time.Second)
	s1 := lt.Claim("a", dl)
	s2 := lt.Claim("b", dl)
	s3 := lt.Claim("a", dl)
	if s1 != 1 || s2 != 2 || s3 != 3 {
		t.Fatalf("seqs = %d,%d,%d; want 1,2,3", s1, s2, s3)
	}
	if lt.Outstanding() != 3 || lt.LowWatermark() != 0 {
		t.Fatalf("outstanding=%d low=%d", lt.Outstanding(), lt.LowWatermark())
	}
	// Out-of-order completion: watermark waits for the gap.
	if !lt.Complete(s2) {
		t.Fatal("Complete(s2) = false")
	}
	if lt.LowWatermark() != 0 {
		t.Fatalf("low=%d; want 0 (s1 still open)", lt.LowWatermark())
	}
	if !lt.Complete(s1) {
		t.Fatal("Complete(s1) = false")
	}
	if lt.LowWatermark() != 2 {
		t.Fatalf("low=%d; want 2", lt.LowWatermark())
	}
	if lt.Complete(s1) {
		t.Fatal("double Complete reported an open lease")
	}
	if !lt.Complete(s3) || lt.LowWatermark() != 3 || lt.Outstanding() != 0 {
		t.Fatalf("after all complete: low=%d outstanding=%d", lt.LowWatermark(), lt.Outstanding())
	}
}

func TestLeaseExpiry(t *testing.T) {
	lt := NewLeaseTable()
	var base time.Time
	lt.Claim("a", base.Add(10*time.Millisecond))
	s2 := lt.Claim("b", base.Add(10*time.Second))
	lt.Claim("a", base.Add(20*time.Millisecond))
	exp := lt.Expired(base.Add(time.Second))
	if len(exp) != 2 || exp[0].Seq != 1 || exp[1].Seq != 3 {
		t.Fatalf("Expired = %+v; want seqs 1,3", exp)
	}
	if lt.Outstanding() != 1 {
		t.Fatalf("outstanding=%d; want 1", lt.Outstanding())
	}
	// Expired leases count as complete for the watermark: only s2 gates.
	if lt.LowWatermark() != 1 {
		t.Fatalf("low=%d; want 1", lt.LowWatermark())
	}
	lt.Complete(s2)
	if lt.LowWatermark() != 3 {
		t.Fatalf("low=%d; want 3", lt.LowWatermark())
	}
	if lt.Expired(base.Add(time.Hour)) != nil {
		t.Fatal("second Expired sweep returned leases")
	}
}

func TestLeaseOwnedBy(t *testing.T) {
	lt := NewLeaseTable()
	var base time.Time
	dl := base.Add(time.Minute)
	lt.Claim("dead", dl)
	s2 := lt.Claim("live", dl)
	lt.Claim("dead", dl)
	got := lt.OwnedBy("dead")
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Fatalf("OwnedBy = %+v; want seqs 1,3", got)
	}
	if lt.OwnedBy("dead") != nil {
		t.Fatal("OwnedBy drained twice")
	}
	if lt.Outstanding() != 1 {
		t.Fatalf("outstanding=%d; want 1", lt.Outstanding())
	}
	lt.Complete(s2)
	if lt.LowWatermark() != 3 {
		t.Fatalf("low=%d; want 3", lt.LowWatermark())
	}
}
