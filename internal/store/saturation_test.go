package store

import (
	"sync"
	"testing"
	"time"

	"eventsys/internal/event"
)

// TestSpillCompactReplayUnderSaturation models a sustained saturation
// spell: a producer spills a long run of events into the store while a
// consumer replays concurrently, with small segments so compaction of
// fully-consumed segments runs throughout. Every event must come back
// exactly once and in order — no gaps, no duplicates — however the
// appends, replays and compactions interleave. Run under -race.
func TestSpillCompactReplayUnderSaturation(t *testing.T) {
	st, err := Open(t.TempDir(), Options{
		SegmentBytes: 2 << 10, // many segments: compaction stays busy
		SyncEvery:    -1,      // saturation spills should not be fsync-bound
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.Register("slow"); err != nil {
		t.Fatal(err)
	}

	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the saturated producer: spill everything
		defer wg.Done()
		for i := 1; i <= n; i++ {
			ev := event.EncodeRaw(event.NewBuilder("T").Int("n", int64(i)).ID(uint64(i)).Build())
			if _, _, err := st.Append("slow", ev); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	// The concurrent consumer: replay whatever is pending, repeatedly,
	// until every event has been seen. Each Replay advances the cursor
	// and compacts fully-consumed segments behind it.
	var got []uint64
	deadline := time.Now().Add(30 * time.Second)
	for len(got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: replayed %d of %d", len(got), n)
		}
		if _, err := st.Replay("slow", func(ev *event.Raw) bool {
			got = append(got, ev.EventID())
			return true
		}); err != nil {
			t.Fatalf("replay after %d events: %v", len(got), err)
		}
	}
	wg.Wait()

	if len(got) != n {
		t.Fatalf("replayed %d events, want %d", len(got), n)
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("replay position %d has id %d: gap or duplicate", i, id)
		}
	}
	if p := st.Pending("slow"); p != 0 {
		t.Fatalf("pending after full replay = %d, want 0", p)
	}
	// Compaction must have reclaimed the consumed prefix: with ~2 KiB
	// segments and 5000 events the log would otherwise hold dozens.
	if s := st.Stats(); s.Segments > 3 {
		t.Fatalf("compaction left %d segments behind a fully-consumed log", s.Segments)
	}
}

// TestRetentionEvictionAccountsExactlyOnce saturates a store bounded by
// MaxBytes until retention evicts unconsumed records, then checks the
// dead-letter ledger at the store layer: appended records are replayed,
// still pending, or counted evicted — each exactly once.
func TestRetentionEvictionAccountsExactlyOnce(t *testing.T) {
	st, err := Open(t.TempDir(), Options{
		SegmentBytes: 1 << 10,
		MaxBytes:     4 << 10, // a handful of segments, then eviction
		SyncEvery:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.Register("slow"); err != nil {
		t.Fatal(err)
	}

	const n = 2000
	for i := 1; i <= n; i++ {
		ev := event.EncodeRaw(event.NewBuilder("T").Int("n", int64(i)).ID(uint64(i)).Build())
		if _, _, err := st.Append("slow", ev); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	var got []uint64
	if _, err := st.Replay("slow", func(ev *event.Raw) bool {
		got = append(got, ev.EventID())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Evicted == 0 {
		t.Fatal("retention never evicted despite MaxBytes pressure")
	}
	if total := uint64(len(got)) + s.Evicted + uint64(s.Pending); total != n {
		t.Fatalf("replayed %d + evicted %d + pending %d = %d, want %d (each record exactly once)",
			len(got), s.Evicted, s.Pending, total, n)
	}
	// Survivors are the newest suffix, in order, no duplicates.
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("survivor sequence broken at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if len(got) > 0 && got[len(got)-1] != n {
		t.Fatalf("newest record %d missing from survivors (last replayed %d)", n, got[len(got)-1])
	}
}
