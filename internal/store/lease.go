package store

import (
	"sort"
	"time"
)

// LeaseTable tracks in-flight consumer-group deliveries. Each delivery
// attempt claims a lease: a monotonically increasing sequence number
// bound to the member it was handed to and a redelivery deadline. The
// member acknowledges the sequence after processing; a lease whose
// deadline passes without an acknowledgment is surfaced by Expired so
// the broker can redeliver the event to a surviving member. Sequence
// numbers identify delivery attempts, not events — a redelivered event
// gets a fresh claim — which keeps acknowledgment handling trivially
// idempotent.
//
// The table also maintains the group's low watermark: the highest
// sequence below which every claim has completed. The broker advances
// the durable cursor for the group's stored backlog only at replay
// time, so the watermark is a liveness signal (and test observable),
// not a persistence trigger.
//
// LeaseTable is not safe for concurrent use; the broker confines each
// table to its core goroutine.
type LeaseTable struct {
	next      uint64
	low       uint64 // all seqs <= low are complete
	open      map[uint64]Lease
	completed map[uint64]struct{} // completed seqs above low
}

// Lease is one outstanding delivery attempt.
type Lease struct {
	Seq      uint64
	Owner    string
	Deadline time.Time
}

// NewLeaseTable returns an empty table; the first claim is sequence 1.
func NewLeaseTable() *LeaseTable {
	return &LeaseTable{
		open:      make(map[uint64]Lease),
		completed: make(map[uint64]struct{}),
	}
}

// Claim records a delivery attempt to owner and returns its sequence.
func (t *LeaseTable) Claim(owner string, deadline time.Time) uint64 {
	t.next++
	t.open[t.next] = Lease{Seq: t.next, Owner: owner, Deadline: deadline}
	return t.next
}

// Complete marks a sequence done (acknowledged, or abandoned because
// the attempt was superseded by a redelivery). Unknown or already
// completed sequences are ignored; returns whether the call closed an
// open lease.
func (t *LeaseTable) Complete(seq uint64) bool {
	if _, ok := t.open[seq]; !ok {
		return false
	}
	delete(t.open, seq)
	t.completed[seq] = struct{}{}
	for {
		if _, ok := t.completed[t.low+1]; !ok {
			break
		}
		t.low++
		delete(t.completed, t.low)
	}
	return true
}

// Expired removes and returns every open lease whose deadline is at or
// before now, sorted by sequence. The caller owns redelivery: each
// returned lease's event must be re-claimed or spilled to the store.
func (t *LeaseTable) Expired(now time.Time) []Lease {
	var out []Lease
	for seq, l := range t.open {
		if !l.Deadline.After(now) {
			out = append(out, l)
			delete(t.open, seq)
			t.completed[seq] = struct{}{}
		}
	}
	if out == nil {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	for {
		if _, ok := t.completed[t.low+1]; !ok {
			break
		}
		t.low++
		delete(t.completed, t.low)
	}
	return out
}

// OwnedBy removes and returns every open lease held by owner, sorted by
// sequence — the dead-member path, mirroring Expired.
func (t *LeaseTable) OwnedBy(owner string) []Lease {
	var out []Lease
	for seq, l := range t.open {
		if l.Owner == owner {
			out = append(out, l)
			delete(t.open, seq)
			t.completed[seq] = struct{}{}
		}
	}
	if out == nil {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	for {
		if _, ok := t.completed[t.low+1]; !ok {
			break
		}
		t.low++
		delete(t.completed, t.low)
	}
	return out
}

// Outstanding returns the number of open leases.
func (t *LeaseTable) Outstanding() int { return len(t.open) }

// LowWatermark returns the highest sequence with no open lease at or
// below it.
func (t *LeaseTable) LowWatermark() uint64 { return t.low }
