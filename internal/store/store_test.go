package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"eventsys/internal/event"
)

func testEvent(i int) *event.Raw {
	return event.EncodeRaw(event.NewBuilder("Job").Str("queue", "builds").Int("n", int64(i)).
		Payload([]byte(fmt.Sprintf("payload-%d", i))).ID(uint64(i + 1)).Build())
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendReplayRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if _, existed, err := s.Register("w"); err != nil || existed {
		t.Fatalf("Register = existed %v, err %v", existed, err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Pending("w"); got != n {
		t.Fatalf("Pending = %d, want %d", got, n)
	}
	var got []*event.Raw
	count, err := s.Replay("w", func(e *event.Raw) bool { got = append(got, e); return true })
	if err != nil {
		t.Fatal(err)
	}
	if count != n || len(got) != n {
		t.Fatalf("replayed %d (%d events), want %d", count, len(got), n)
	}
	for i, e := range got {
		want := testEvent(i)
		if !e.Event().Equal(want.Event()) || string(e.Payload()) != string(want.Payload()) ||
			e.EventID() != want.EventID() {
			t.Fatalf("event %d = %v (payload %q), want %v", i, e.Event(), e.Payload(), want.Event())
		}
	}
	if got := s.Pending("w"); got != 0 {
		t.Fatalf("Pending after replay = %d, want 0", got)
	}
	// Replaying again delivers nothing: the cursor moved.
	count, err = s.Replay("w", func(*event.Raw) bool { return true })
	if err != nil || count != 0 {
		t.Fatalf("second replay = %d, %v; want 0, nil", count, err)
	}
}

func TestPerSubscriptionCursorsAreIndependent(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	for _, id := range []string{"a", "b"} {
		if _, _, err := s.Register(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		owner := "a"
		if i%2 == 1 {
			owner = "b"
		}
		if _, _, err := s.Append(owner, testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	var aGot []int64
	if _, err := s.Replay("a", func(e *event.Raw) bool {
		v, _ := e.Lookup("n")
		aGot = append(aGot, v.IntVal())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(aGot) != 5 {
		t.Fatalf("a replayed %v, want 5 even-numbered events", aGot)
	}
	for i, v := range aGot {
		if v != int64(i*2) {
			t.Fatalf("a replayed %v, want evens in order", aGot)
		}
	}
	if got := s.Pending("b"); got != 5 {
		t.Fatalf("b pending = %d, want 5 (unaffected by a's replay)", got)
	}
}

func TestReopenPreservesBacklogAndCursors(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Consume the first half, then close cleanly.
	half := 0
	if _, err := s.Replay("w", func(*event.Raw) bool { half++; return true }); err != nil {
		t.Fatal(err)
	}
	if half != 8 {
		t.Fatalf("replayed %d, want 8", half)
	}
	for i := 8; i < 12; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, Options{})
	pending, existed, err := re.Register("w")
	if err != nil {
		t.Fatal(err)
	}
	if !existed || pending != 4 {
		t.Fatalf("after reopen: existed %v pending %d, want true 4", existed, pending)
	}
	var got []int64
	if _, err := re.Replay("w", func(e *event.Raw) bool {
		v, _ := e.Lookup("n")
		got = append(got, v.IntVal())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []int64{8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v (exactly once, in order)", got, want)
		}
	}
}

func TestSegmentRollAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 256})
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want several with 256-byte rolling", st.Segments)
	}
	if _, err := s.Replay("w", func(*event.Raw) bool { return true }); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Segments != 1 {
		t.Fatalf("segments after full consumption = %d, want 1 (fully-consumed segments compacted)", after.Segments)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+segExt))
	if len(files) != after.Segments {
		t.Fatalf("on-disk segments %d != tracked %d", len(files), after.Segments)
	}
}

func TestForgetUnblocksCompaction(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{SegmentBytes: 256})
	for _, id := range []string{"gone", "live"} {
		if _, _, err := s.Register(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, _, err := s.Append("gone", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// "gone" pins old segments; "live" is at the end.
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("segments = %d, want several", st.Segments)
	}
	s.Forget("gone")
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("segments after Forget = %d, want 1", st.Segments)
	}
	if s.Known("gone") || !s.Known("live") {
		t.Fatal("Known bookkeeping wrong after Forget")
	}
}

func TestBoundedRetentionEvictsOldest(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{SegmentBytes: 256, MaxBytes: 1024})
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 1024+256 {
		t.Fatalf("retained %d bytes, want ≈ MaxBytes", st.Bytes)
	}
	if st.Evicted == 0 {
		t.Fatal("expected evictions under MaxBytes pressure")
	}
	var got []int64
	if _, err := s.Replay("w", func(e *event.Raw) bool {
		v, _ := e.Lookup("n")
		got = append(got, v.IntVal())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) == n {
		t.Fatalf("replayed %d of %d, want a proper suffix", len(got), n)
	}
	// Whatever survives is a contiguous suffix, in order.
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("replay not contiguous: %v", got)
		}
	}
	if got[len(got)-1] != n-1 {
		t.Fatalf("suffix must end at the newest event, got %v", got[len(got)-1])
	}
	if int(st.Evicted)+len(got) != n {
		t.Fatalf("evicted %d + replayed %d != appended %d", st.Evicted, len(got), n)
	}
}

func TestSyncEveryOneSurvivesWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon the store without Close (simulating a crash after
	// acknowledged appends): with SyncEvery=1 everything must be on disk.
	// A real crash releases the flock with the process; stand in for
	// that by closing just the lock handle.
	if s.lock != nil {
		s.lock.Close()
	}
	re := openTest(t, dir, Options{})
	pending, existed, err := re.Register("w")
	if err != nil {
		t.Fatal(err)
	}
	if !existed || pending != 5 {
		t.Fatalf("after crash: existed %v pending %d, want true 5", existed, pending)
	}
	s.Close() // release the abandoned handle's file descriptor
}

func TestCorruptCursorsFileDegradesToReplayAll(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Replay("w", func(*event.Raw) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, cursorsFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTest(t, dir, Options{})
	// Cursor snapshot lost: recovery re-derives cursors from the log, so
	// the retained records replay again — at-least-once, never silent
	// loss. The fully consumed log compacted down to the active segment,
	// whose 6 records reappear as pending.
	pending, existed, err := re.Register("w")
	if err != nil {
		t.Fatal(err)
	}
	if !existed || pending != 6 {
		t.Fatalf("after cursor loss: existed %v pending %d, want true 6 (redelivery)", existed, pending)
	}
}

func TestDoubleOpenRefused(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if s.lock == nil {
		t.Skip("no flock on this platform")
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a live store directory must fail")
	}
	// Closing the first store releases the lock.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	re.Close()
}

func TestStoreStats(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if _, _, err := s.Register("w"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, _, err := s.Append("w", testEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Replay("w", func(*event.Raw) bool { return true }); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Appended != 7 || st.Replayed != 7 || st.Pending != 0 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}
