package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"eventsys/internal/event"
	"eventsys/internal/transport"
)

// recordHeader is the framing overhead per record: 4-byte length plus
// 4-byte CRC.
const recordHeader = 8

// maxRecord bounds one record body, mirroring transport.MaxFrame so any
// event the wire accepts fits in the store and vice versa.
const maxRecord = transport.MaxFrame

// castagnoli is the CRC-32C table (the polynomial used by ext4, iSCSI
// and most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one stored entry: an event owned by a durable subscription,
// stamped with the store-wide append sequence number. The event is kept
// in its canonical encoded form — the Raw view the wire carries — so the
// spill path persists the publisher's bytes verbatim (no decode, no
// re-encode) and replay hands the same bytes back.
type Record struct {
	Seq   uint64
	SubID string
	Event *event.Raw
}

// AppendRecord appends the framed encoding of r to dst and returns the
// extended slice. The event portion of the body is r.Event's existing
// bytes, copied — never re-encoded.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	evb := r.Event.Bytes()
	body := make([]byte, 0, 2*binary.MaxVarintLen64+len(r.SubID)+len(evb))
	body = binary.AppendUvarint(body, r.Seq)
	body = binary.AppendUvarint(body, uint64(len(r.SubID)))
	body = append(body, r.SubID...)
	body = append(body, evb...)
	if len(body) > maxRecord {
		return nil, fmt.Errorf("store: record of %d bytes exceeds limit", len(body))
	}
	var hdr [recordHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, body...), nil
}

// DecodeRecord decodes one framed record from the front of b. It returns
// the record and the number of bytes consumed. Any framing violation —
// truncated header, truncated body, oversized length, CRC mismatch,
// malformed body — returns an error; callers treat an error at the tail
// of the last segment as a torn append and truncate there. The record's
// event is validated but not materialized: it stays a Raw view over the
// record bytes.
func DecodeRecord(b []byte) (Record, int, error) {
	return decodeRecord(b, nil)
}

// decodeRecord is DecodeRecord with name interning: segment scans hand
// one interner to every record of the scan, so repeated attribute and
// class names decode allocation-free.
func decodeRecord(b []byte, in *event.Interner) (Record, int, error) {
	if len(b) < recordHeader {
		return Record{}, 0, fmt.Errorf("store: truncated record header (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b[:4])
	if n > maxRecord {
		return Record{}, 0, fmt.Errorf("store: record of %d bytes exceeds limit", n)
	}
	want := binary.BigEndian.Uint32(b[4:8])
	if uint64(len(b)-recordHeader) < uint64(n) {
		return Record{}, 0, fmt.Errorf("store: truncated record body (%d of %d bytes)", len(b)-recordHeader, n)
	}
	body := b[recordHeader : recordHeader+int(n)]
	if got := crc32.Checksum(body, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("store: CRC mismatch (%08x != %08x)", got, want)
	}
	rec, err := decodeBody(body, in)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, recordHeader + int(n), nil
}

func decodeBody(body []byte, in *event.Interner) (Record, error) {
	seq, n := binary.Uvarint(body)
	if n <= 0 {
		return Record{}, fmt.Errorf("store: bad sequence varint")
	}
	body = body[n:]
	idLen, n := binary.Uvarint(body)
	if n <= 0 || uint64(len(body)-n) < idLen {
		return Record{}, fmt.Errorf("store: bad subscriber id length")
	}
	subID := string(body[n : n+int(idLen)])
	// Copy the event bytes out of the scan buffer: segment scans read the
	// whole file into one slice, and a replayed Raw that merely subsliced
	// it would pin the entire segment in memory for as long as the event
	// sits in an outbound queue. The copy keeps replay memory O(events
	// queued); the bytes are still never decoded here.
	evb := append([]byte(nil), body[n+int(idLen):]...)
	raw, err := event.ParseRaw(evb, in)
	if err != nil {
		return Record{}, err
	}
	return Record{Seq: seq, SubID: subID, Event: raw}, nil
}
