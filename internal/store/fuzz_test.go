package store

import (
	"bytes"
	"testing"

	"eventsys/internal/event"
)

// FuzzDecodeRecord ensures the on-disk record codec never panics or
// over-allocates on adversarial bytes, and that anything it accepts
// re-encodes to the identical frame (the CRC makes acceptance of
// corrupted input overwhelmingly unlikely; structural round-tripping
// must hold for whatever passes).
func FuzzDecodeRecord(f *testing.F) {
	seed := func(r Record) {
		b, err := AppendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(Record{Seq: 1, SubID: "w", Event: event.EncodeRaw(event.NewBuilder("Job").Str("queue", "builds").Int("n", 7).Build())})
	seed(Record{Seq: 1 << 40, SubID: "subscriber-with-long-name", Event: event.EncodeRaw(event.NewBuilder("X").
		Float("f", 3.14).Bool("b", true).Payload([]byte("payload")).ID(9).Build())})
	seed(Record{Event: event.EncodeRaw(event.NewBuilder("").Build())})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if rec.Event == nil {
			t.Fatal("accepted record with nil event")
		}
		out, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", data[:n], out)
		}
	})
}
