package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"eventsys/internal/event"
)

// segExt is the segment file extension.
const segExt = ".seg"

// segment is one append-only log file. base is the sequence number of the
// first record ever appended to it; records inside are strictly
// ascending. The highest-based segment is the active one.
type segment struct {
	base  uint64
	path  string
	size  int64
	count int    // intact records
	last  uint64 // seq of the last intact record; base-1 when empty
}

func segmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", base, segExt))
}

// listSegments returns the segments present in dir, ordered by base
// sequence number. Sizes and record counts are filled in by scan.
func listSegments(dir string) ([]*segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var segs []*segment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, segExt) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segExt), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		segs = append(segs, &segment{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// scan reads every record of the segment, invoking fn for each intact
// one, and returns the byte offset of the first torn or corrupt record
// (== file size when the whole segment is intact). Read errors other
// than decode failures are returned as err.
func (s *segment) scan(fn func(Record)) (goodOff int64, err error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return 0, fmt.Errorf("store: read segment: %w", err)
	}
	// One interner per scan: attribute and class names repeat across the
	// segment's records, and the Raw views the scan yields intern them.
	in := event.NewInterner()
	off := 0
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:], in)
		if err != nil {
			return int64(off), nil
		}
		if fn != nil {
			fn(rec)
		}
		off += n
	}
	return int64(off), nil
}

// recover scans the segment, truncating a torn tail in place. It updates
// size, count and last from the intact prefix, invoking fn per record.
func (s *segment) recover(fn func(Record)) error {
	s.count, s.last = 0, s.base-1
	good, err := s.scan(func(r Record) {
		s.count++
		s.last = r.Seq
		if fn != nil {
			fn(r)
		}
	})
	if err != nil {
		return err
	}
	info, err := os.Stat(s.path)
	if err != nil {
		return fmt.Errorf("store: stat segment: %w", err)
	}
	if good < info.Size() {
		if err := os.Truncate(s.path, good); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	s.size = good
	return nil
}

// syncDir fsyncs a directory so segment creations and removals are
// durable. Best-effort: some platforms reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
