//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK so two processes
// (or two Stores in one process) cannot append to the same log and
// clobber each other's cursors. The lock dies with the process, so a
// crash never leaves the store locked.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another store (flock: %w)", dir, err)
	}
	return f, nil
}
