package store

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"

	"eventsys/internal/event"
)

// Options tune a Store.
type Options struct {
	// SegmentBytes rolls the active segment to a fresh file once it
	// exceeds this many bytes (default 4 MiB). Compaction removes whole
	// segments, so smaller segments reclaim space sooner.
	SegmentBytes int64
	// SyncEvery fsyncs the active segment after this many appends:
	// 1 syncs every append (strongest durability), 0 selects the default
	// batch of 64, negative disables explicit fsync entirely (the OS page
	// cache decides; a power failure may lose recent appends but never
	// corrupts the intact prefix).
	SyncEvery int
	// SyncInterval bounds how long a batched append may stay unsynced
	// before the background flusher forces an fsync (default 100ms;
	// negative disables the flusher). Ignored when SyncEvery is 1.
	SyncInterval time.Duration
	// MaxBytes bounds the retained log size. When appends push the total
	// past it, the oldest segments are evicted even if not fully
	// consumed; affected cursors skip forward and the skipped records
	// count as Evicted. 0 means unbounded.
	MaxBytes int64
	// Logger receives the store's operational logs: the recovery summary
	// on Open, compaction passes, and retention evictions (the only
	// deliberate data loss the store ever inflicts). Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// Stats is a point-in-time snapshot of store-wide counters.
type Stats struct {
	// Segments and Bytes describe the retained log.
	Segments int
	Bytes    int64
	// Appended and Replayed count records since Open.
	Appended uint64
	Replayed uint64
	// Evicted counts unconsumed records lost to the MaxBytes bound.
	Evicted uint64
	// Pending is the total backlog over all cursors.
	Pending int
}

// Store is a durable event store: one segmented append-only log shared by
// all durable subscriptions of a process, plus a durable cursor per
// subscription. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	log  *slog.Logger

	mu         sync.Mutex
	segs       []*segment // ascending base; last is active
	active     *os.File
	nextSeq    uint64
	cursors    map[string]uint64 // subID -> next seq to replay
	pending    map[string]int    // subID -> appended but unconsumed records
	unsynced   int
	dirty      bool // cursors changed since last save
	appended   uint64
	replayed   uint64
	evicted    uint64
	totalBytes int64
	closed     bool
	// recoverUnknown is set when the cursor snapshot was missing or
	// corrupt: recovery then re-derives a cursor for every subscription
	// found in the log (redelivery over silent loss). With an intact
	// snapshot, log records for unknown subscriptions belong to
	// deliberately forgotten cursors and stay forgotten.
	recoverUnknown bool

	lock *os.File // exclusive flock on dir/LOCK (nil on non-unix)
	done chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the store rooted at dir and runs crash
// recovery: every segment is scanned, CRC-checked, and the first torn or
// corrupt record — a crashed append — truncates the log from that point.
// The directory is guarded by an exclusive flock: a second Open of the
// same dir (same or another process) fails instead of corrupting the
// log, and the lock dies with the process.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	cursors, haveSnapshot := loadCursors(dir)
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Store{
		dir:            dir,
		opts:           opts,
		log:            logger,
		cursors:        cursors,
		recoverUnknown: !haveSnapshot,
		pending:        map[string]int{},
		lock:           lock,
		done:           make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}
	if opts.SyncEvery != 1 && opts.SyncInterval > 0 {
		s.wg.Add(1)
		go s.flushLoop()
	}
	s.log.Info("store recovered",
		"dir", dir, "segments", len(s.segs), "bytes", s.totalBytes,
		"cursors", len(s.cursors), "snapshot", haveSnapshot)
	return s, nil
}

// recover scans all segments in order, truncating at the first framing
// violation: a torn tail in the newest segment is the expected trace of a
// crashed append; one in an older segment additionally discards every
// later segment (the log is a prefix or it is nothing).
func (s *Store) recover() error {
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	s.nextSeq = 1
	for i := 0; i < len(segs); i++ {
		seg := segs[i]
		sizeBefore, _ := fileSize(seg.path)
		if err := seg.recover(func(r Record) {
			cur, ok := s.cursors[r.SubID]
			if !ok && s.recoverUnknown {
				s.cursors[r.SubID] = r.Seq
				s.dirty = true
				cur, ok = r.Seq, true
			}
			if ok && r.Seq >= cur {
				s.pending[r.SubID]++
			}
		}); err != nil {
			return err
		}
		torn := seg.size < sizeBefore
		s.segs = append(s.segs, seg)
		s.totalBytes += seg.size
		if seg.count > 0 {
			s.nextSeq = seg.last + 1
		} else if seg.base > s.nextSeq {
			s.nextSeq = seg.base
		}
		if torn && i < len(segs)-1 {
			for _, later := range segs[i+1:] {
				_ = os.Remove(later.path)
			}
			syncDir(s.dir)
			break
		}
	}
	// Clamp cursors to the recovered log end: truncation can leave a
	// snapshot cursor beyond nextSeq (e.g. cursors were fsynced but the
	// segment tail was lost), and new appends would then land below the
	// cursor — invisible to Replay and fatally attractive to compaction.
	for id, cur := range s.cursors {
		if cur > s.nextSeq {
			s.cursors[id] = s.nextSeq
			s.dirty = true
		}
	}
	// Open (or create) the active segment for appending.
	if len(s.segs) == 0 {
		return s.rollLocked()
	}
	activePath := s.segs[len(s.segs)-1].path
	f, err := os.OpenFile(activePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open active segment: %w", err)
	}
	s.active = f
	return nil
}

func fileSize(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// rollLocked closes the active segment and starts a fresh one based at
// nextSeq. Callers hold s.mu (or are inside Open).
func (s *Store) rollLocked() error {
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: sync segment: %w", err)
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("store: close segment: %w", err)
		}
		s.active = nil
	}
	seg := &segment{base: s.nextSeq, path: segmentPath(s.dir, s.nextSeq), last: s.nextSeq - 1}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	syncDir(s.dir)
	s.active = f
	s.segs = append(s.segs, seg)
	return nil
}

// Register creates the durable cursor for a subscription, placed at the
// end of the log so only future appends count as its backlog. When the
// cursor already exists (a subscription recovered across a restart) it is
// left where it was; existed reports which case occurred, and pending the
// backlog awaiting replay.
func (s *Store) Register(subID string) (pending int, existed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false, fmt.Errorf("store: closed")
	}
	if _, ok := s.cursors[subID]; ok {
		return s.pending[subID], true, nil
	}
	s.cursors[subID] = s.nextSeq
	s.dirty = true
	return 0, false, nil
}

// Known reports whether the subscription has a durable cursor.
func (s *Store) Known(subID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.cursors[subID]
	return ok
}

// Pending reports the subscription's stored backlog (appended records not
// yet replayed).
func (s *Store) Pending(subID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending[subID]
}

// Forget drops the subscription's cursor and backlog accounting (its
// records become garbage for compaction to reclaim).
func (s *Store) Forget(subID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return // a late Forget must not touch files a new Open now owns
	}
	if _, ok := s.cursors[subID]; !ok {
		return
	}
	delete(s.cursors, subID)
	delete(s.pending, subID)
	s.dirty = true
	s.compactLocked()
}

// Append durably stores one event for the subscription, returning its
// store-wide sequence number and the bytes written. Durability follows
// the fsync policy: with SyncEvery=1 the record is on stable storage when
// Append returns; batched modes bound the exposure window by SyncEvery
// and SyncInterval.
func (s *Store) Append(subID string, ev *event.Raw) (seq uint64, n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("store: closed")
	}
	return s.appendLocked(subID, ev)
}

// AppendBatch durably stores a run of events for one subscription,
// returning the number appended and the bytes written. The batch
// amortizes what Append pays per event: one lock acquisition, at most
// one fsync, and one retention check. Durability follows the policy
// exactly as for per-event Append: with SyncEvery=1 the whole batch is
// fsynced once after its last record, so every event is on stable
// storage before a successful AppendBatch returns; batched policies
// (SyncEvery>1) keep their usual exposure window — the batch syncs only
// when it pushes the unsynced count over the threshold. Events land in
// slice order; on error the already-appended prefix stays stored (but
// unsynced until the next sync trigger) and is reported in n.
func (s *Store) AppendBatch(subID string, evs []*event.Raw) (n int, bytes int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("store: closed")
	}
	for _, ev := range evs {
		_, nb, err := s.appendRecordLocked(subID, ev)
		if err != nil {
			return n, bytes, err
		}
		n++
		bytes += nb
	}
	if s.opts.SyncEvery > 0 && s.unsynced >= s.opts.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return n, bytes, err
		}
	}
	if s.opts.MaxBytes > 0 && s.totalBytes > s.opts.MaxBytes {
		s.enforceRetentionLocked()
	}
	return n, bytes, nil
}

// appendLocked appends one record and applies the per-append fsync and
// retention policies; the caller holds s.mu.
func (s *Store) appendLocked(subID string, ev *event.Raw) (seq uint64, n int, err error) {
	seq, n, err = s.appendRecordLocked(subID, ev)
	if err != nil {
		return 0, 0, err
	}
	if s.opts.SyncEvery > 0 && s.unsynced >= s.opts.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return 0, 0, err
		}
	}
	if s.opts.MaxBytes > 0 && s.totalBytes > s.opts.MaxBytes {
		s.enforceRetentionLocked()
	}
	return seq, n, nil
}

// appendRecordLocked writes one record to the active segment (rolling it
// when full) without syncing or enforcing retention; the caller holds
// s.mu.
func (s *Store) appendRecordLocked(subID string, ev *event.Raw) (seq uint64, n int, err error) {
	seq = s.nextSeq
	buf, err := AppendRecord(nil, Record{Seq: seq, SubID: subID, Event: ev})
	if err != nil {
		return 0, 0, err
	}
	seg := s.segs[len(s.segs)-1]
	if seg.size > 0 && seg.size+int64(len(buf)) > s.opts.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			return 0, 0, err
		}
		seg = s.segs[len(s.segs)-1]
	}
	if _, err := s.active.Write(buf); err != nil {
		// A partial write leaves torn bytes at the tail that would
		// swallow every later append (scan stops at the first bad
		// record). Cut the file back to the last good record; if even
		// that fails, roll to a fresh segment so the log stays clean.
		if terr := s.active.Truncate(seg.size); terr != nil {
			if rerr := s.rollLocked(); rerr != nil {
				return 0, 0, fmt.Errorf("store: append failed and segment unrecoverable: %w", err)
			}
		}
		return 0, 0, fmt.Errorf("store: append: %w", err)
	}
	s.nextSeq++
	seg.size += int64(len(buf))
	seg.count++
	seg.last = seq
	s.totalBytes += int64(len(buf))
	s.appended++
	if _, ok := s.cursors[subID]; !ok {
		// Implicit registration: the record must stay replayable.
		s.cursors[subID] = seq
		s.dirty = true
	}
	s.pending[subID]++
	s.unsynced++
	return seq, len(buf), nil
}

// Replay delivers the subscription's stored backlog to fn in append
// order, advances its cursor past everything delivered, and compacts any
// segment that became fully consumed. fn returns whether to continue: on
// false the replay stops and the undelivered remainder stays pending for
// the next Replay. It returns the number of events replayed. Appends
// racing with a replay are not delivered; they too remain pending.
func (s *Store) Replay(subID string, fn func(*event.Raw) bool) (int, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("store: closed")
	}
	cursor, ok := s.cursors[subID]
	if !ok || s.pending[subID] == 0 {
		s.mu.Unlock()
		return 0, nil
	}
	end := s.nextSeq // replay [cursor, end)
	var paths []string
	for _, seg := range s.segs {
		if seg.count > 0 && seg.last >= cursor {
			paths = append(paths, seg.path)
		}
	}
	// No pre-scan fsync needed: os.ReadFile goes through the page cache,
	// which sees every same-process write immediately.
	s.mu.Unlock()

	var seqs []uint64 // delivered records, ascending
	stopped := false
	for _, path := range paths {
		if stopped {
			break
		}
		seg := &segment{path: path}
		if _, err := seg.scan(func(r Record) {
			if stopped || r.SubID != subID || r.Seq < cursor || r.Seq >= end {
				return
			}
			if !fn(r.Event) {
				stopped = true
				return
			}
			seqs = append(seqs, r.Seq)
		}); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // segment evicted mid-replay; its records are gone
			}
			return len(seqs), err
		}
	}
	count := len(seqs)
	newCursor := end
	if stopped {
		newCursor = cursor
		if count > 0 {
			newCursor = seqs[count-1] + 1
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Close raced the scan: the flock is released and another Open
		// may own the directory now. The events were delivered, but the
		// cursor cannot advance — they stay pending (at-least-once).
		return count, nil
	}
	if cur, ok := s.cursors[subID]; ok && newCursor > cur {
		// A concurrent MaxBytes eviction may have advanced the cursor
		// and decremented pending for records we also delivered; only
		// deliveries at or beyond the current cursor are ours to count.
		mine := sort.Search(count, func(i int) bool { return seqs[i] >= cur })
		s.cursors[subID] = newCursor
		s.pending[subID] -= count - mine
		if s.pending[subID] < 0 {
			s.pending[subID] = 0
		}
		s.dirty = true
	}
	s.replayed += uint64(count)
	s.compactLocked()
	if s.opts.SyncEvery == 1 {
		if err := s.syncLocked(); err != nil {
			return count, err
		}
	}
	return count, nil
}

// compactLocked removes leading segments every cursor has fully
// consumed. The active segment always stays. A cursor with no pending
// records owns nothing in [cursor, nextSeq), so it first advances to the
// log end rather than pinning segments full of other subscriptions'
// records.
func (s *Store) compactLocked() {
	for id, cur := range s.cursors {
		if s.pending[id] == 0 && cur < s.nextSeq {
			s.cursors[id] = s.nextSeq
			s.dirty = true
		}
	}
	min := s.nextSeq
	for _, cur := range s.cursors {
		if cur < min {
			min = cur
		}
	}
	removed := 0
	for len(s.segs) > 1 {
		seg := s.segs[0]
		if seg.count > 0 && seg.last >= min {
			break
		}
		_ = os.Remove(seg.path)
		s.totalBytes -= seg.size
		s.segs = s.segs[1:]
		removed++
	}
	if removed > 0 {
		syncDir(s.dir)
		s.log.Debug("store compacted",
			"segments_removed", removed, "segments", len(s.segs), "bytes", s.totalBytes)
	}
}

// enforceRetentionLocked evicts the oldest segments until the log fits
// MaxBytes, skipping affected cursors forward over the records they lose.
func (s *Store) enforceRetentionLocked() {
	evictedBefore, segsBefore := s.evicted, len(s.segs)
	for len(s.segs) > 1 && s.totalBytes > s.opts.MaxBytes {
		seg := s.segs[0]
		_, _ = seg.scan(func(r Record) {
			if cur, ok := s.cursors[r.SubID]; ok && r.Seq >= cur {
				s.cursors[r.SubID] = r.Seq + 1
				s.dirty = true
				if s.pending[r.SubID] > 0 {
					s.pending[r.SubID]--
				}
				s.evicted++
			}
		})
		_ = os.Remove(seg.path)
		s.totalBytes -= seg.size
		s.segs = s.segs[1:]
	}
	syncDir(s.dir)
	if n := s.evicted - evictedBefore; n > 0 {
		s.log.Warn("retention evicted unconsumed records",
			"records", n, "segments_removed", segsBefore-len(s.segs), "bytes", s.totalBytes)
	}
}

// syncLocked flushes the active segment (per policy) and persists dirty
// cursors.
func (s *Store) syncLocked() error {
	if s.unsynced > 0 && s.opts.SyncEvery > 0 {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
	}
	s.unsynced = 0
	if s.dirty {
		if err := saveCursors(s.dir, s.cursors); err != nil {
			return err
		}
		s.dirty = false
	}
	return nil
}

// Sync forces an fsync of outstanding appends and a cursor snapshot,
// regardless of the batching policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.unsynced > 0 {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: fsync: %w", err)
		}
		s.unsynced = 0
	}
	if s.dirty {
		if err := saveCursors(s.dir, s.cursors); err != nil {
			return err
		}
		s.dirty = false
	}
	return nil
}

// flushLoop is the background fsync batcher: it bounds the window during
// which an acknowledged append can be lost to a crash.
func (s *Store) flushLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && (s.unsynced > 0 || s.dirty) {
				_ = s.syncLocked()
			}
			s.mu.Unlock()
		}
	}
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments: len(s.segs),
		Bytes:    s.totalBytes,
		Appended: s.appended,
		Replayed: s.replayed,
		Evicted:  s.evicted,
	}
	for _, n := range s.pending {
		st.Pending += n
	}
	return st
}

// Close flushes everything (appends and cursors) and releases the store.
// A clean Close followed by Open loses nothing and replays nothing twice.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	var err error
	if s.unsynced > 0 {
		err = s.active.Sync()
		s.unsynced = 0
	}
	if s.dirty {
		if e := saveCursors(s.dir, s.cursors); err == nil {
			err = e
		}
		s.dirty = false
	}
	if e := s.active.Close(); err == nil {
		err = e
	}
	if s.lock != nil {
		_ = s.lock.Close() // releases the flock
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
