//go:build !unix

package store

import "os"

// lockDir is a no-op on platforms without flock: the store still works,
// but double-opening the same directory is not detected.
func lockDir(dir string) (*os.File, error) { return nil, nil }
