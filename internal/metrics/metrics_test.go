package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNodeStatsDerived(t *testing.T) {
	s := NodeStats{Filters: 10, Received: 100, Matched: 87}
	if got := s.LC(); got != 1000 {
		t.Errorf("LC = %v, want 1000", got)
	}
	if got := s.RLC(1000, 100); got != 0.01 {
		t.Errorf("RLC = %v, want 0.01", got)
	}
	if got := s.MR(); math.Abs(got-0.87) > 1e-12 {
		t.Errorf("MR = %v, want 0.87", got)
	}
}

func TestNodeStatsZeroDenominators(t *testing.T) {
	s := NodeStats{Filters: 10, Received: 0}
	if s.MR() != 0 {
		t.Error("MR with zero received should be 0")
	}
	if s.RLC(0, 10) != 0 || s.RLC(10, 0) != 0 {
		t.Error("RLC with zero totals should be 0")
	}
}

func TestCentralizedServerRLCIsOne(t *testing.T) {
	// Sanity anchor from Section 5.1: a centralized server holding all
	// subscriptions and receiving all events has RLC = 1.
	const events, subs = 5000, 300
	s := NodeStats{Filters: subs, Received: events}
	if got := s.RLC(events, subs); got != 1 {
		t.Errorf("centralized RLC = %v, want 1", got)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Counters("n1", 2).AddReceived(1)
				c.Counters("n1", 2).AddMatched(1)
			}
		}()
	}
	wg.Wait()
	stats := c.Snapshot()
	if len(stats) != 1 {
		t.Fatalf("nodes = %d, want 1", len(stats))
	}
	if stats[0].Received != 8000 || stats[0].Matched != 8000 {
		t.Errorf("counters = %+v, want 8000/8000", stats[0])
	}
	if stats[0].Stage != 2 {
		t.Errorf("stage = %d", stats[0].Stage)
	}
}

func TestSnapshotOrdering(t *testing.T) {
	var c Collector
	c.Counters("b", 1)
	c.Counters("a", 1)
	c.Counters("root", 3)
	c.Counters("mid", 2)
	stats := c.Snapshot()
	ids := make([]string, len(stats))
	for i, s := range stats {
		ids[i] = s.NodeID
	}
	want := "root mid a b"
	if got := strings.Join(ids, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}

func TestSummarize(t *testing.T) {
	stats := []NodeStats{
		{NodeID: "r", Stage: 1, Filters: 2, Received: 100, Matched: 50},
		{NodeID: "s", Stage: 1, Filters: 4, Received: 50, Matched: 50},
		{NodeID: "t", Stage: 0, Filters: 1, Received: 10, Matched: 9},
	}
	sums := Summarize(stats, 100, 10)
	if len(sums) != 2 {
		t.Fatalf("summaries = %v", sums)
	}
	if sums[0].Stage != 0 || sums[1].Stage != 1 {
		t.Fatalf("stage order = %v", sums)
	}
	s1 := sums[1]
	// Node r: LC=200, RLC=0.2. Node s: LC=200, RLC=0.2.
	if math.Abs(s1.TotalRLC-0.4) > 1e-12 || math.Abs(s1.AvgRLC-0.2) > 1e-12 {
		t.Errorf("stage1 RLC = avg %v total %v", s1.AvgRLC, s1.TotalRLC)
	}
	if math.Abs(s1.AvgMR-0.75) > 1e-12 { // (0.5 + 1.0)/2
		t.Errorf("stage1 AvgMR = %v, want 0.75", s1.AvgMR)
	}
	if s1.Nodes != 2 || s1.Filters != 6 || s1.Received != 150 {
		t.Errorf("stage1 aggregates = %+v", s1)
	}
}

func TestGlobalRLC(t *testing.T) {
	stats := []NodeStats{
		{Filters: 10, Received: 100},
		{Filters: 10, Received: 100},
	}
	got := GlobalRLC(stats, 100, 20)
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("GlobalRLC = %v, want 1", got)
	}
}

func TestRenderRLCTable(t *testing.T) {
	out := RenderRLCTable([]StageSummary{
		{Stage: 0, Nodes: 1000, AvgRLC: 2e-7, TotalRLC: 2e-4, AvgMR: 0.87},
		{Stage: 3, Nodes: 1, AvgRLC: 0.02, TotalRLC: 0.02, AvgMR: 0.5},
	})
	if !strings.Contains(out, "2.0e-07") {
		t.Errorf("table missing scientific RLC:\n%s", out)
	}
	if !strings.Contains(out, "0.02") {
		t.Errorf("table missing plain RLC:\n%s", out)
	}
	if !strings.Contains(out, "Stage") {
		t.Errorf("table missing header:\n%s", out)
	}
}

func TestRenderMRSeries(t *testing.T) {
	out := RenderMRSeries([]NodeStats{
		{NodeID: "n2", Stage: 1, Received: 10, Matched: 5},
		{NodeID: "n1", Stage: 0, Received: 10, Matched: 9},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[1], "n1") || !strings.Contains(lines[1], "0.900") {
		t.Errorf("first data row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "n2") || !strings.Contains(lines[2], "0.500") {
		t.Errorf("second data row = %q", lines[2])
	}
}

func TestForwardedDeliveredCounters(t *testing.T) {
	var c Collector
	cnt := c.Counters("x", 0)
	cnt.AddForwarded(3)
	cnt.AddDelivered(2)
	cnt.SetFilters(7)
	s := c.Snapshot()[0]
	if s.Forwarded != 3 || s.Delivered != 2 || s.Filters != 7 {
		t.Errorf("snapshot = %+v", s)
	}
}
