// Package metrics implements the evaluation metrics of Section 5.1:
//
//   - Load Complexity: LC = (#events received) × (#filters stored),
//     the per-node filtering work.
//   - Relative Load Complexity: RLC = LC / (total #events × total #subs),
//     the per-node share of the work a centralized server would perform
//     (a centralized server scores RLC = 1).
//   - Matching Rate: MR = matched events / received events, the fraction
//     of traffic reaching a node that it actually wants.
//
// Beyond the paper's three, the counters track the production concerns
// grown onto the reproduction: drops at saturated queues, durable-store
// traffic (appends, replays, bytes), and batch efficiency —
// BatchesMatched counts batched matching passes and BatchSizeSum the
// events they carried, so BatchSizeSum/BatchesMatched is the observed
// average coalescing of the publish pipeline (1.0 means batching never
// kicked in).
//
// Concurrency and ownership: Counters methods are atomic and safe for
// concurrent use — the concurrent overlay runtime, the networked broker
// and the single-threaded simulator share one implementation. A
// Collector hands out *Counters by node ID under its own mutex and
// retains ownership; snapshots (Stats, Snapshot) are immutable copies
// that never lock out writers.
package metrics
