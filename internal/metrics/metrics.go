package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DropReason classifies why an event was dropped, so every drop site in
// the system maps to exactly one exported series
// (eventsys_node_dropped_events_total{reason=...}). The reasons
// partition NodeStats.Dropped: the per-reason counts always sum to it.
type DropReason uint8

const (
	// DropQueueFull: a bounded queue's drop policy (DropNewest /
	// DropOldest) shed the event at a saturated mailbox, delivery queue
	// or outbound connection queue.
	DropQueueFull DropReason = iota
	// DropInletShed: the broker's core inlet shed an inbound event
	// frame under a drop policy (its credit was repaid to the sender).
	DropInletShed
	// DropControlFull: a control frame was refused by a connection's
	// saturated control channel (a wedged writer); lease renewal
	// repairs any lost subscription state.
	DropControlFull
	// DropConnClosed: the destination connection vanished mid-route and
	// the event had no durable cursor to land in.
	DropConnClosed
	// DropLinkLost: a federation peer link died with undeliverable
	// events in its queue and no spool could absorb them in order.
	DropLinkLost
	// DropStoreError: the durable store failed to append an event that
	// was bound for it.
	DropStoreError
	// DropNoStore: an event needed backlog storage (spill, detached
	// durable subscriber, saturated peer link) but the node runs
	// without a store or the target has no cursor.
	DropNoStore
	// NumDropReasons bounds the reason space (array sizing).
	NumDropReasons
)

// String returns the reason's exported label value.
func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue_full"
	case DropInletShed:
		return "inlet_shed"
	case DropControlFull:
		return "control_full"
	case DropConnClosed:
		return "conn_closed"
	case DropLinkLost:
		return "link_lost"
	case DropStoreError:
		return "store_error"
	case DropNoStore:
		return "no_store"
	}
	return "unknown"
}

// Counters accumulates per-node event statistics. All methods are safe
// for concurrent use.
type Counters struct {
	received  atomic.Uint64
	matched   atomic.Uint64
	forwarded atomic.Uint64
	delivered atomic.Uint64
	filters   atomic.Int64

	dropped       atomic.Uint64
	droppedBy     [NumDropReasons]atomic.Uint64
	storeAppended atomic.Uint64
	storeReplayed atomic.Uint64
	storedBytes   atomic.Uint64

	stalled       atomic.Uint64
	spilled       atomic.Uint64
	creditGranted atomic.Uint64
	creditWaits   atomic.Uint64

	batchesMatched atomic.Uint64
	batchSizeSum   atomic.Uint64

	peerPropagated atomic.Uint64
	peerSuppressed atomic.Uint64
	peerForwarded  atomic.Uint64
	peerResyncs    atomic.Uint64
}

// AddReceived records n events received for filtering.
func (c *Counters) AddReceived(n uint64) { c.received.Add(n) }

// AddMatched records n events that matched at least one local filter.
func (c *Counters) AddMatched(n uint64) { c.matched.Add(n) }

// AddForwarded records n event messages sent to children (one per child
// per event).
func (c *Counters) AddForwarded(n uint64) { c.forwarded.Add(n) }

// AddDelivered records n events delivered to a local subscriber.
func (c *Counters) AddDelivered(n uint64) { c.delivered.Add(n) }

// SetFilters records the current number of filters stored at the node.
func (c *Counters) SetFilters(n int) { c.filters.Store(int64(n)) }

// AddDropped records n messages dropped on the floor — e.g. events
// enqueued for a saturated peer's outbound queue in the networked broker.
//
// Deprecated: use AddDroppedFor with an explicit reason; this records
// under DropQueueFull, the historical meaning of most call sites.
func (c *Counters) AddDropped(n uint64) { c.AddDroppedFor(DropQueueFull, n) }

// AddDroppedFor records n messages dropped for the given reason. The
// total (Dropped) and the per-reason count move together, so the
// reason-labeled series always sum to the total.
func (c *Counters) AddDroppedFor(r DropReason, n uint64) {
	if r >= NumDropReasons {
		r = DropQueueFull
	}
	c.dropped.Add(n)
	c.droppedBy[r].Add(n)
}

// AddStoreAppended records n events appended to the durable store on
// behalf of this node's subscription.
func (c *Counters) AddStoreAppended(n uint64) { c.storeAppended.Add(n) }

// AddStoreReplayed records n events replayed from the durable store.
func (c *Counters) AddStoreReplayed(n uint64) { c.storeReplayed.Add(n) }

// AddStoredBytes records n bytes written to the durable store.
func (c *Counters) AddStoredBytes(n uint64) { c.storedBytes.Add(n) }

// AddStalled records n times a Block-policy queue made a producer wait
// for space — the footprint of lossless backpressure in action.
func (c *Counters) AddStalled(n uint64) { c.stalled.Add(n) }

// AddSpilled records n events a saturated queue diverted to backlog
// storage (the durable store or a bounded in-memory backlog) under the
// SpillToStore policy, to be replayed in order later.
func (c *Counters) AddSpilled(n uint64) { c.spilled.Add(n) }

// AddCreditGranted records n event credits granted to senders on this
// node's connections (credit-based flow control).
func (c *Counters) AddCreditGranted(n uint64) { c.creditGranted.Add(n) }

// AddCreditWaits records n times an outbound writer ran out of credit
// and had to wait for a grant — upstream throttling in action.
func (c *Counters) AddCreditWaits(n uint64) { c.creditWaits.Add(n) }

// AddBatchesMatched records one batched matching pass over the node's
// table (a batch of one still counts: BatchSizeSum/BatchesMatched is the
// observed average coalescing).
func (c *Counters) AddBatchesMatched(n uint64) { c.batchesMatched.Add(n) }

// AddBatchSizeSum records the number of events carried by matched batches.
func (c *Counters) AddBatchSizeSum(n uint64) { c.batchSizeSum.Add(n) }

// AddPeerPropagated records n subscription entries propagated to peer
// links on the federation plane.
func (c *Counters) AddPeerPropagated(n uint64) { c.peerPropagated.Add(n) }

// AddPeerSuppressed records n subscription entries pruned by covering
// instead of propagated (the federation plane's state economy).
func (c *Counters) AddPeerSuppressed(n uint64) { c.peerSuppressed.Add(n) }

// AddPeerForwarded records n events forwarded to peer links.
func (c *Counters) AddPeerForwarded(n uint64) { c.peerForwarded.Add(n) }

// AddPeerResyncs records n peer-link resyncs (SubSet exchanges after a
// link is established or re-established).
func (c *Counters) AddPeerResyncs(n uint64) { c.peerResyncs.Add(n) }

// Received returns the events-received count.
func (c *Counters) Received() uint64 { return c.received.Load() }

// Matched returns the events-matched count.
func (c *Counters) Matched() uint64 { return c.matched.Load() }

// Forwarded returns the forwarded-copies count.
func (c *Counters) Forwarded() uint64 { return c.forwarded.Load() }

// Delivered returns the delivered-events count.
func (c *Counters) Delivered() uint64 { return c.delivered.Load() }

// Dropped returns the dropped-messages count (all reasons).
func (c *Counters) Dropped() uint64 { return c.dropped.Load() }

// DroppedFor returns the dropped-messages count for one reason.
func (c *Counters) DroppedFor(r DropReason) uint64 {
	if r >= NumDropReasons {
		return 0
	}
	return c.droppedBy[r].Load()
}

// StoreAppended returns the events-appended-to-store count.
func (c *Counters) StoreAppended() uint64 { return c.storeAppended.Load() }

// StoreReplayed returns the events-replayed-from-store count.
func (c *Counters) StoreReplayed() uint64 { return c.storeReplayed.Load() }

// StoredBytes returns the bytes-written-to-store count.
func (c *Counters) StoredBytes() uint64 { return c.storedBytes.Load() }

// Stalled returns the blocked-producer count (Block-policy waits).
func (c *Counters) Stalled() uint64 { return c.stalled.Load() }

// Spilled returns the events-diverted-to-backlog count (SpillToStore).
func (c *Counters) Spilled() uint64 { return c.spilled.Load() }

// CreditGranted returns the event credits granted to senders.
func (c *Counters) CreditGranted() uint64 { return c.creditGranted.Load() }

// CreditWaits returns how often outbound writers waited for credit.
func (c *Counters) CreditWaits() uint64 { return c.creditWaits.Load() }

// BatchesMatched returns the batched-matching-pass count.
func (c *Counters) BatchesMatched() uint64 { return c.batchesMatched.Load() }

// BatchSizeSum returns the total events carried by matched batches.
func (c *Counters) BatchSizeSum() uint64 { return c.batchSizeSum.Load() }

// PeerPropagated returns the peer-subscription-entries-propagated count.
func (c *Counters) PeerPropagated() uint64 { return c.peerPropagated.Load() }

// PeerSuppressed returns the covering-pruned peer-entry count.
func (c *Counters) PeerSuppressed() uint64 { return c.peerSuppressed.Load() }

// PeerForwarded returns the events-forwarded-to-peer-links count.
func (c *Counters) PeerForwarded() uint64 { return c.peerForwarded.Load() }

// PeerResyncs returns the peer-link-resync count.
func (c *Counters) PeerResyncs() uint64 { return c.peerResyncs.Load() }

// Filters returns the recorded stored-filter count.
func (c *Counters) Filters() int { return int(c.filters.Load()) }

// Stats assembles a snapshot of the counters under the given identity.
func (c *Counters) Stats(nodeID string, stage int) NodeStats {
	var by [NumDropReasons]uint64
	for r := range by {
		by[r] = c.droppedBy[r].Load()
	}
	return NodeStats{
		NodeID:         nodeID,
		Stage:          stage,
		Filters:        c.Filters(),
		Received:       c.Received(),
		Matched:        c.Matched(),
		Forwarded:      c.Forwarded(),
		Delivered:      c.Delivered(),
		Dropped:        c.Dropped(),
		DroppedBy:      by,
		StoreAppended:  c.StoreAppended(),
		StoreReplayed:  c.StoreReplayed(),
		StoredBytes:    c.StoredBytes(),
		Stalled:        c.Stalled(),
		Spilled:        c.Spilled(),
		CreditGranted:  c.CreditGranted(),
		CreditWaits:    c.CreditWaits(),
		BatchesMatched: c.BatchesMatched(),
		BatchSizeSum:   c.BatchSizeSum(),
		PeerPropagated: c.PeerPropagated(),
		PeerSuppressed: c.PeerSuppressed(),
		PeerForwarded:  c.PeerForwarded(),
		PeerResyncs:    c.PeerResyncs(),
	}
}

// NodeStats is an immutable snapshot of one node's counters.
type NodeStats struct {
	NodeID    string
	Stage     int
	Filters   int
	Received  uint64
	Matched   uint64
	Forwarded uint64
	Delivered uint64
	// Dropped counts messages lost at this node: events bound for a
	// saturated peer's outbound queue in the networked broker, or events
	// evicted from a bounded in-memory durable backlog. DroppedBy breaks
	// the same total down by DropReason (indexed by reason; the entries
	// always sum to Dropped), so the conservation identity published ==
	// delivered + dropped + stored can be audited per cause.
	Dropped   uint64
	DroppedBy [NumDropReasons]uint64
	// StoreAppended, StoreReplayed and StoredBytes describe the node's
	// durable-store traffic: events persisted for detached durable
	// subscriptions, events replayed from the store on Resume or after a
	// restart, and the bytes written doing so.
	StoreAppended uint64
	StoreReplayed uint64
	StoredBytes   uint64
	// Stalled, Spilled, CreditGranted and CreditWaits describe the
	// node's flow control: producers made to wait by a Block-policy
	// queue, events diverted to backlog storage by SpillToStore, event
	// credits granted to senders, and outbound writers that ran dry and
	// waited for a grant. Together with Dropped they tell which layer
	// absorbed an overload and how.
	Stalled       uint64
	Spilled       uint64
	CreditGranted uint64
	CreditWaits   uint64
	// BatchesMatched and BatchSizeSum describe the node's batched
	// matching passes: BatchSizeSum/BatchesMatched is the average number
	// of events coalesced per pass (1.0 means batching never kicked in).
	BatchesMatched uint64
	BatchSizeSum   uint64
	// PeerPropagated, PeerSuppressed, PeerForwarded and PeerResyncs
	// describe the node's federation plane: subscription entries sent to
	// peer brokers, entries pruned by covering instead (state economy),
	// events forwarded along peer links, and link resyncs performed.
	PeerPropagated uint64
	PeerSuppressed uint64
	PeerForwarded  uint64
	PeerResyncs    uint64
}

// LC returns the load complexity of the node (Section 5.1).
func (s NodeStats) LC() float64 { return float64(s.Received) * float64(s.Filters) }

// RLC returns the relative load complexity given the system-wide totals.
// It reports 0 when either total is zero.
func (s NodeStats) RLC(totalEvents, totalSubs uint64) float64 {
	denom := float64(totalEvents) * float64(totalSubs)
	if denom == 0 {
		return 0
	}
	return s.LC() / denom
}

// MR returns the matching rate; nodes that received nothing report 0.
func (s NodeStats) MR() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.Matched) / float64(s.Received)
}

// Collector tracks counters for a set of nodes. The zero value is ready
// to use; it is safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	nodes map[string]*entry
}

type entry struct {
	stage    int
	counters Counters
}

// Counters returns (creating if needed) the counters of the identified
// node at the given stage.
func (c *Collector) Counters(nodeID string, stage int) *Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nodes == nil {
		c.nodes = make(map[string]*entry)
	}
	e, ok := c.nodes[nodeID]
	if !ok {
		e = &entry{stage: stage}
		c.nodes[nodeID] = e
	}
	return &e.counters
}

// Snapshot returns the current statistics of every node, ordered by stage
// descending (top of the hierarchy first) then node ID.
func (c *Collector) Snapshot() []NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStats, 0, len(c.nodes))
	for id, e := range c.nodes {
		out = append(out, e.counters.Stats(id, e.stage))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage > out[j].Stage
		}
		return out[i].NodeID < out[j].NodeID
	})
	return out
}

// StageSummary aggregates statistics over all nodes of one stage, in the
// shape of the paper's Section 5.3 table: the node average of RLC and the
// stage total ("total node avg of RLC" = average × node count = stage sum).
//
// AvgMR averages the matching rate over active nodes only (nodes that
// received at least one event): MR is undefined for idle nodes, and the
// clustering placement deliberately leaves parts of the hierarchy idle.
type StageSummary struct {
	Stage       int
	Nodes       int
	ActiveNodes int
	Filters     int
	Received    uint64
	Matched     uint64
	AvgRLC      float64
	TotalRLC    float64
	AvgMR       float64
}

// Summarize groups node statistics by stage. totalEvents and totalSubs
// are the system-wide denominators of RLC.
func Summarize(stats []NodeStats, totalEvents, totalSubs uint64) []StageSummary {
	byStage := make(map[int]*StageSummary)
	mrSums := make(map[int]float64)
	for _, s := range stats {
		sum, ok := byStage[s.Stage]
		if !ok {
			sum = &StageSummary{Stage: s.Stage}
			byStage[s.Stage] = sum
		}
		sum.Nodes++
		sum.Filters += s.Filters
		sum.Received += s.Received
		sum.Matched += s.Matched
		sum.TotalRLC += s.RLC(totalEvents, totalSubs)
		if s.Received > 0 {
			sum.ActiveNodes++
			mrSums[s.Stage] += s.MR()
		}
	}
	out := make([]StageSummary, 0, len(byStage))
	for stage, sum := range byStage {
		sum.AvgRLC = sum.TotalRLC / float64(sum.Nodes)
		if sum.ActiveNodes > 0 {
			sum.AvgMR = mrSums[stage] / float64(sum.ActiveNodes)
		}
		out = append(out, *sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// GlobalRLC sums RLC over every node: the paper's global-total claim is
// that this is ≈ 1, i.e. multi-stage filtering performs no more total
// work than a centralized server.
func GlobalRLC(stats []NodeStats, totalEvents, totalSubs uint64) float64 {
	var total float64
	for _, s := range stats {
		total += s.RLC(totalEvents, totalSubs)
	}
	return total
}

// RenderRLCTable renders stage summaries in the layout of the paper's
// Section 5.3 table.
func RenderRLCTable(summaries []StageSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %9s %16s %20s %10s\n",
		"Stage", "Nodes", "Filters", "Node avg of RLC", "Total node avg RLC", "Avg MR")
	for _, s := range summaries {
		fmt.Fprintf(&b, "%-6d %8d %9d %16s %20s %10.3f\n",
			s.Stage, s.Nodes, s.Filters, sci(s.AvgRLC), sci(s.TotalRLC), s.AvgMR)
	}
	return b.String()
}

// RenderMRSeries renders the per-node matching rate series of Figure 7:
// one "processID  stage  MR" row per node, ordered by stage then ID.
func RenderMRSeries(stats []NodeStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %8s\n", "Process", "Stage", "MR")
	sorted := make([]NodeStats, len(stats))
	copy(sorted, stats)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Stage != sorted[j].Stage {
			return sorted[i].Stage < sorted[j].Stage
		}
		return sorted[i].NodeID < sorted[j].NodeID
	})
	for _, s := range sorted {
		fmt.Fprintf(&b, "%-10s %-6d %8.3f\n", s.NodeID, s.Stage, s.MR())
	}
	return b.String()
}

// sci formats small floats in compact scientific-style notation matching
// the paper's table (e.g. 2e-07, 0.1).
func sci(f float64) string {
	if f != 0 && (f < 1e-3 || f >= 1e6) {
		return fmt.Sprintf("%.1e", f)
	}
	return fmt.Sprintf("%.4g", f)
}
