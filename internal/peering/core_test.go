package peering

import (
	"fmt"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/metrics"
	"eventsys/internal/typing"
)

func biblioAds(t *testing.T) *typing.AdvertisementSet {
	t.Helper()
	var ads typing.AdvertisementSet
	ad, err := typing.NewAdvertisement("Biblio", 4, "year", "conference", "author", "title")
	if err != nil {
		t.Fatal(err)
	}
	if err := ads.Put(ad); err != nil {
		t.Fatal(err)
	}
	return &ads
}

func TestSubscribePropagatesOncePerLink(t *testing.T) {
	c := New(Config{})
	c.AddLink("B")
	c.AddLink("C")
	ups := c.Subscribe("s1", filter.MustParseFilter(`x = 1`))
	if len(ups) != 2 {
		t.Fatalf("updates = %d, want 2", len(ups))
	}
	for i, want := range []LinkID{"B", "C"} {
		if ups[i].Link != want || ups[i].Hops != 1 {
			t.Errorf("update %d = %+v, want link %s hops 1", i, ups[i], want)
		}
	}
	if !c.HasLocal("s1") || c.FilterCount() != 1 {
		t.Errorf("locals not stored: count=%d", c.FilterCount())
	}
}

func TestCoveringPrunesPropagation(t *testing.T) {
	counters := &metrics.Counters{}
	c := New(Config{Counters: counters})
	c.AddLink("B")
	if ups := c.Subscribe("broad", filter.MustParseFilter(`class = "Stock" && price < 100`)); len(ups) != 1 {
		t.Fatalf("broad updates = %d, want 1", len(ups))
	}
	// A covered narrower filter must be suppressed.
	if ups := c.Subscribe("narrow", filter.MustParseFilter(`class = "Stock" && price < 10`)); len(ups) != 0 {
		t.Fatalf("narrow updates = %v, want none (covered)", ups)
	}
	// A disjoint filter still propagates.
	if ups := c.Subscribe("other", filter.MustParseFilter(`class = "Bond"`)); len(ups) != 1 {
		t.Fatalf("bond updates = %d, want 1", len(ups))
	}
	ls := c.LinkStats()
	if len(ls) != 1 || ls[0].Propagated != 2 || ls[0].Suppressed != 1 {
		t.Errorf("link stats = %+v, want propagated 2 suppressed 1", ls)
	}
	if counters.PeerPropagated() != 2 || counters.PeerSuppressed() != 1 {
		t.Errorf("aggregate counters = %d/%d, want 2/1",
			counters.PeerPropagated(), counters.PeerSuppressed())
	}
}

func TestApplyStoresWeakenedAndForwardsOnward(t *testing.T) {
	ads := biblioAds(t)
	c := New(Config{Ads: ads, MaxStage: 3})
	c.AddLink("A")
	c.AddLink("C")
	f := filter.MustParseFilter(
		`class = "Biblio" && year = 2002 && conference = "X" && author = "Y" && title = "Z"`)
	ups := c.Apply("A", Entry{Filter: f, Hops: 1})
	if len(ups) != 1 || ups[0].Link != "C" || ups[0].Hops != 2 {
		t.Fatalf("onward updates = %+v, want one toward C at hops 2", ups)
	}
	// Stage-1 weakening drops title: an event differing only in title
	// still matches the stored interest.
	e := event.NewBuilder("Biblio").Int("year", 2002).Str("conference", "X").
		Str("author", "Y").Str("title", "Other").Build()
	if links := c.MatchLinks(e, ""); len(links) != 1 || links[0] != "A" {
		t.Errorf("MatchLinks = %v, want [A]", links)
	}
	// An event differing in author (kept at stage 1) does not match.
	e2 := event.NewBuilder("Biblio").Int("year", 2002).Str("conference", "X").
		Str("author", "Other").Str("title", "Z").Build()
	if links := c.MatchLinks(e2, ""); len(links) != 0 {
		t.Errorf("MatchLinks = %v, want none", links)
	}
	// The onward entry still carries the ORIGINAL filter so the next hop
	// can weaken exactly.
	if !ups[0].Filter.Equal(f) {
		t.Errorf("onward filter = %s, want original", ups[0].Filter)
	}
}

func TestMatchLinksExcludesArrival(t *testing.T) {
	c := New(Config{})
	c.AddLink("A")
	c.AddLink("B")
	f := filter.MustParseFilter(`x = 1`)
	c.Apply("A", Entry{Filter: f, Hops: 1})
	c.Apply("B", Entry{Filter: f, Hops: 1})
	e := event.NewBuilder("T").Int("x", 1).Build()
	if links := c.MatchLinks(e, "A"); fmt.Sprint(links) != "[B]" {
		t.Errorf("MatchLinks from A = %v, want [B]", links)
	}
	if links := c.MatchLinks(e, ""); fmt.Sprint(links) != "[A B]" {
		t.Errorf("MatchLinks = %v, want [A B]", links)
	}
}

func TestReplaceResyncsInterestSet(t *testing.T) {
	c := New(Config{})
	c.AddLink("A")
	c.Apply("A", Entry{Filter: filter.MustParseFilter(`x = 1`), Hops: 1})
	c.Apply("A", Entry{Filter: filter.MustParseFilter(`x = 2`), Hops: 2})
	if got := c.Entries("A"); len(got) != 2 {
		t.Fatalf("entries = %d, want 2", len(got))
	}
	c.Replace("A", []Entry{{Filter: filter.MustParseFilter(`x = 3`), Hops: 1}})
	got := c.Entries("A")
	if len(got) != 1 || got[0].Hops != 1 {
		t.Fatalf("entries after replace = %+v", got)
	}
	e := event.NewBuilder("T").Int("x", 1).Build()
	if links := c.MatchLinks(e, ""); len(links) != 0 {
		t.Errorf("stale interest survived replace: %v", links)
	}
	e3 := event.NewBuilder("T").Int("x", 3).Build()
	if links := c.MatchLinks(e3, ""); len(links) != 1 {
		t.Errorf("replaced interest not matching: %v", links)
	}
}

func TestSyncSnapshotsFullState(t *testing.T) {
	c := New(Config{})
	c.AddLink("A")
	c.Subscribe("s1", filter.MustParseFilter(`x = 1`))
	c.Apply("A", Entry{Filter: filter.MustParseFilter(`y = 1`), Hops: 2})

	// A new link C joins: its SubSet must carry the local at hops 1 and
	// A's interest at hops 3.
	entries := c.Sync("C")
	if len(entries) != 2 {
		t.Fatalf("sync entries = %+v, want 2", entries)
	}
	if entries[0].Hops != 1 || entries[1].Hops != 3 {
		t.Errorf("hops = %d,%d, want 1,3", entries[0].Hops, entries[1].Hops)
	}

	// Re-sync after a reconnect resets sent state and re-offers the same
	// snapshot (idempotent, not doubled).
	again := c.Sync("C")
	if len(again) != len(entries) {
		t.Errorf("resync entries = %d, want %d", len(again), len(entries))
	}
	ls := c.LinkStats()
	for _, l := range ls {
		if l.Link == "C" && l.Sent != 2 {
			t.Errorf("sent after resync = %d, want 2", l.Sent)
		}
	}
}

func TestSubscribeReplaceSameIDDoesNotError(t *testing.T) {
	c := New(Config{})
	c.AddLink("B")
	c.Subscribe("s", filter.MustParseFilter(`x = 1`))
	// Re-subscribing with the same filter is pruned by covering (the
	// link already carries it) — the reconnect-with-same-ID path.
	if ups := c.Subscribe("s", filter.MustParseFilter(`x = 1`)); len(ups) != 0 {
		t.Errorf("re-subscribe updates = %v, want none", ups)
	}
	if c.FilterCount() != 1 {
		t.Errorf("filter count = %d, want 1", c.FilterCount())
	}
}

func TestUnsubscribeRemovesLocalOnly(t *testing.T) {
	c := New(Config{})
	c.AddLink("B")
	c.Subscribe("s", filter.MustParseFilter(`x = 1`))
	if !c.Unsubscribe("s") || c.Unsubscribe("s") {
		t.Fatal("unsubscribe existence reporting wrong")
	}
	if c.HasLocal("s") {
		t.Error("local survived unsubscribe")
	}
	e := event.NewBuilder("T").Int("x", 1).Build()
	if got := c.MatchLocals(e); len(got) != 0 {
		t.Errorf("MatchLocals = %v, want none", got)
	}
}

// TestWeakeningClampsAtMaxStage: beyond MaxStage the stored filter stays
// at the top weakening stage instead of vanishing.
func TestWeakeningClampsAtMaxStage(t *testing.T) {
	ads := biblioAds(t)
	c := New(Config{Ads: ads, MaxStage: 2})
	c.AddLink("FAR")
	f := filter.MustParseFilter(
		`class = "Biblio" && year = 2002 && conference = "X" && author = "Y" && title = "Z"`)
	c.Apply("FAR", Entry{Filter: f, Hops: 9})
	// Stage-2 keeps year and conference; an event matching those but not
	// author/title must match the clamped interest.
	e := event.NewBuilder("Biblio").Int("year", 2002).Str("conference", "X").
		Str("author", "Q").Str("title", "Q").Build()
	if links := c.MatchLinks(e, ""); len(links) != 1 {
		t.Errorf("MatchLinks = %v, want [FAR]", links)
	}
	// Wrong year (kept at every stage) never matches.
	e2 := event.NewBuilder("Biblio").Int("year", 1999).Str("conference", "X").
		Str("author", "Y").Str("title", "Z").Build()
	if links := c.MatchLinks(e2, ""); len(links) != 0 {
		t.Errorf("MatchLinks = %v, want none", links)
	}
}

func TestMultiFilterLocalSurvivesSync(t *testing.T) {
	// One subscriber ID holding several filters (disjuncts, or a child
	// broker's aggregate) must keep all of them: a later filter must not
	// replace an earlier one, and a link (re)sync must carry every one.
	c := New(Config{})
	c.AddLink("B")
	f1 := filter.MustParseFilter(`class = "Stock" && symbol = "ACME"`)
	f2 := filter.MustParseFilter(`class = "Bond"`)
	if ups := c.Subscribe("s", f1); len(ups) != 1 {
		t.Fatalf("f1 updates = %d, want 1", len(ups))
	}
	if ups := c.Subscribe("s", f2); len(ups) != 1 {
		t.Fatalf("f2 updates = %d, want 1", len(ups))
	}
	if c.FilterCount() != 2 {
		t.Fatalf("filter count = %d, want 2 (both filters kept)", c.FilterCount())
	}
	// A resync recomputed from locals must still offer both.
	if entries := c.Sync("B"); len(entries) != 2 {
		t.Fatalf("sync entries = %d, want 2: %+v", len(entries), entries)
	}
	// Both filters match their respective events.
	stock := event.NewBuilder("Stock").Str("symbol", "ACME").Build()
	bond := event.NewBuilder("Bond").Build()
	for _, e := range []*event.Event{stock, bond} {
		if got := c.MatchLocals(e); len(got) != 1 || got[0] != "s" {
			t.Errorf("MatchLocals(%s) = %v, want [s]", e, got)
		}
	}
	// A filter covered by an existing one for the same ID is absorbed.
	narrow := filter.MustParseFilter(`class = "Bond" && rate < 3`)
	if ups := c.Subscribe("s", narrow); len(ups) != 0 {
		t.Fatalf("covered filter propagated: %+v", ups)
	}
	if c.FilterCount() != 2 {
		t.Fatalf("filter count after covered add = %d, want 2", c.FilterCount())
	}
	// Unsubscribe drops the whole ID.
	if !c.Unsubscribe("s") || c.HasLocal("s") || c.FilterCount() != 0 {
		t.Fatalf("unsubscribe did not clear all filters: count=%d", c.FilterCount())
	}
}

func TestMatchLocalsSorted(t *testing.T) {
	// The simulator hashes delivery traces, so local match order must not
	// depend on map iteration. Many matching IDs exercise the sort.
	c := New(Config{})
	var want []string
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("sub-%02d", i)
		c.Subscribe(id, filter.MustParseFilter(`x = 1`))
		want = append(want, id)
	}
	e := event.NewBuilder("T").Int("x", 1).Build()
	for trial := 0; trial < 5; trial++ {
		got := c.MatchLocals(e)
		if len(got) != len(want) {
			t.Fatalf("MatchLocals len = %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MatchLocals[%d] = %s, want %s (unsorted result)", i, got[i], want[i])
			}
		}
	}
}
