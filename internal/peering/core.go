// Package peering is the transport-agnostic core of SIENA-style
// server-to-server federation: the per-broker routing and weakening
// state that both the in-process mesh (internal/mesh) and the networked
// broker federation (internal/broker over TCP) share.
//
// One Core holds a single broker's view of an acyclic peer graph:
//
//   - locals — the broker's own subscribers with their original
//     (stage-0) filters;
//   - per link, interests — filters received from that neighbor: an
//     event matching any of them is forwarded there (reverse-path
//     forwarding);
//   - per link, sent — the filters this broker has propagated to that
//     neighbor, kept for covering-based pruning: a filter already
//     covered by one on the link is suppressed, never sent.
//
// Subscription state travels as Entry values: the subscriber's original
// filter plus the receiver's hop distance from the subscriber's home
// broker. Receivers store the hop-weakened form (multi-stage weakening
// generalized to distance) and re-derive exact weakenings for onward
// hops from the original — no monotonicity assumption on the
// advertisement's stage association is needed.
//
// The Core is deliberately passive and single-threaded: every mutation
// returns the Updates (entries to send on which links) for the caller's
// transport to carry — synchronous recursion in the mesh, wire frames in
// the networked broker. Callers own synchronization.
//
// The event plane's flow control likewise belongs to the transports:
// the networked broker runs each link's outbound traffic through a
// policy-governed flow.Queue with credit-based sender gating, spilling
// to the durable store under the link's "@peer/" cursor when the policy
// says so. The Core only decides where events and entries go — never
// how fast, and never what saturation costs.
package peering

import (
	"sort"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/metrics"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
)

// LinkID names a peer link (the neighbor broker's identity).
type LinkID string

// Entry is one element of exchanged subscription state: a subscriber's
// original filter plus the receiving broker's hop distance from the
// subscriber's home broker.
type Entry struct {
	// Filter is the subscriber's original (stage-0) filter.
	Filter *filter.Filter
	// Hops is the receiver's distance from the home broker (1 for the
	// home broker's direct neighbor).
	Hops int
}

// Update instructs the caller to send Entry over Link.
type Update struct {
	Link LinkID
	Entry
}

// Config parameterizes a Core.
type Config struct {
	// Conformance resolves type subtyping; nil = exact names.
	Conformance filter.Conformance
	// Ads supplies advertisements for distance-based weakening; nil
	// disables weakening (full filters propagate everywhere).
	Ads *typing.AdvertisementSet
	// MaxStage clamps the hop-distance weakening stage; 0 disables
	// weakening even with Ads set.
	MaxStage int
	// Counters, when non-nil, receives aggregate propagation metrics
	// (subs propagated / suppressed by covering).
	Counters *metrics.Counters
}

// LinkStats snapshots one link's subscription-state counters.
type LinkStats struct {
	Link LinkID
	// Interests is the number of filters received from the link.
	Interests int
	// Sent is the number of filters propagated to the link.
	Sent int
	// Propagated counts entries emitted toward the link over its
	// lifetime (resyncs included).
	Propagated uint64
	// Suppressed counts entries pruned by covering instead of sent.
	Suppressed uint64
}

// interest is one filter received from a link: the original for exact
// onward weakening, the hop-weakened form for event matching.
type interest struct {
	orig   *filter.Filter
	stored *filter.Filter
	hops   int
}

type link struct {
	id        LinkID
	interests []interest
	sent      []*filter.Filter
	// standby inverts the activation flag so the zero value is an active
	// link (the mesh and pre-election transports never touch it). A
	// standby link is a registered failover edge: it receives no
	// propagated subscription state and matches no events until the
	// spanning-tree election activates it.
	standby bool

	propagated uint64
	suppressed uint64
}

// Core is one broker's federation state. Not safe for concurrent use;
// callers (mesh mutex, broker core goroutine) serialize access.
type Core struct {
	conf     filter.Conformance
	weak     *weaken.Weakener
	maxStage int
	counters *metrics.Counters

	links  map[LinkID]*link
	order  []LinkID // deterministic iteration
	locals map[string][]*filter.Filter
}

// New creates an empty Core.
func New(cfg Config) *Core {
	conf := cfg.Conformance
	if conf == nil {
		conf = filter.ExactTypes{}
	}
	c := &Core{
		conf:     conf,
		maxStage: cfg.MaxStage,
		counters: cfg.Counters,
		links:    make(map[LinkID]*link),
		locals:   make(map[string][]*filter.Filter),
	}
	if cfg.Ads != nil {
		c.weak = weaken.New(cfg.Ads, conf)
	}
	return c
}

// AddLink registers a peer link; it reports whether the link is new.
// Re-adding an existing link keeps its state (a reconnecting transport
// must not lose the interests accumulated for the link).
func (c *Core) AddLink(id LinkID) bool {
	if _, ok := c.links[id]; ok {
		return false
	}
	c.links[id] = &link{id: id}
	c.order = append(c.order, id)
	return true
}

// SetActive switches a link between active (participating in routing
// and subscription propagation — the default) and standby (a registered
// failover edge that carries nothing until promoted). Unknown links are
// ignored.
func (c *Core) SetActive(id LinkID, active bool) {
	if l, ok := c.links[id]; ok {
		l.standby = !active
	}
}

// Active reports whether the link is registered and active.
func (c *Core) Active(id LinkID) bool {
	l, ok := c.links[id]
	return ok && !l.standby
}

// HasLink reports whether the link is registered.
func (c *Core) HasLink(id LinkID) bool {
	_, ok := c.links[id]
	return ok
}

// Links returns the registered link IDs in registration order.
func (c *Core) Links() []LinkID {
	return append([]LinkID(nil), c.order...)
}

// HasLocal reports whether a local subscriber is registered.
func (c *Core) HasLocal(subID string) bool {
	return len(c.locals[subID]) > 0
}

// weakenFor returns the filter weakened for hop distance h (clamped to
// MaxStage); without advertisements or with MaxStage 0 it clones.
func (c *Core) weakenFor(f *filter.Filter, hops int) *filter.Filter {
	if c.weak == nil || c.maxStage <= 0 {
		return f.Clone()
	}
	stage := hops
	if stage > c.maxStage {
		stage = c.maxStage
	}
	return c.weak.Filter(f, stage)
}

// offer propagates one entry toward a link if no filter already sent
// there covers its weakened form; it returns the update to send, or nil
// when pruned.
func (c *Core) offer(l *link, e Entry) *Update {
	wf := c.weakenFor(e.Filter, e.Hops)
	for _, g := range l.sent {
		if filter.Covers(g, wf, c.conf) {
			l.suppressed++
			if c.counters != nil {
				c.counters.AddPeerSuppressed(1)
			}
			return nil // link already carries a superset
		}
	}
	l.sent = append(l.sent, wf)
	l.propagated++
	if c.counters != nil {
		c.counters.AddPeerPropagated(1)
	}
	return &Update{Link: l.id, Entry: Entry{Filter: e.Filter.Clone(), Hops: e.Hops}}
}

// Subscribe adds a filter to a local subscriber (one subscriber may hold
// several — disjuncts, or the child-broker aggregates the networked
// broker registers under one key) and returns the entries to propagate:
// the filter at hop distance 1, once per link, pruned by covering. A
// filter already covered by one of the subscriber's existing filters is
// absorbed — it adds no matches and no propagation.
func (c *Core) Subscribe(subID string, f *filter.Filter) []Update {
	for _, g := range c.locals[subID] {
		if filter.Covers(g, f, c.conf) {
			return nil
		}
	}
	c.locals[subID] = append(c.locals[subID], f.Clone())
	var out []Update
	for _, id := range c.order {
		if c.links[id].standby {
			continue
		}
		if u := c.offer(c.links[id], Entry{Filter: f, Hops: 1}); u != nil {
			out = append(out, *u)
		}
	}
	return out
}

// Unsubscribe removes a local subscriber with all of its filters,
// reporting whether it existed. Like the mesh (and SIENA's basic
// protocol), propagated state is not retracted: remote brokers keep the
// weakened filter until a link resync rebuilds their interest set —
// over-forwarding, never under-delivery.
func (c *Core) Unsubscribe(subID string) bool {
	if len(c.locals[subID]) == 0 {
		return false
	}
	delete(c.locals, subID)
	return true
}

// Apply stores an entry received from a link and returns the onward
// updates: the entry at Hops+1 toward every other link, pruned by
// covering. Unknown links are registered implicitly.
func (c *Core) Apply(from LinkID, e Entry) []Update {
	c.AddLink(from)
	l := c.links[from]
	l.interests = append(l.interests, interest{
		orig:   e.Filter.Clone(),
		stored: c.weakenFor(e.Filter, e.Hops),
		hops:   e.Hops,
	})
	var out []Update
	for _, id := range c.order {
		if id == from || c.links[id].standby {
			continue
		}
		if u := c.offer(c.links[id], Entry{Filter: e.Filter, Hops: e.Hops + 1}); u != nil {
			out = append(out, *u)
		}
	}
	return out
}

// Replace substitutes the link's whole interest set (a SubSet resync)
// and returns the onward updates for every entry, pruned by covering.
func (c *Core) Replace(from LinkID, entries []Entry) []Update {
	c.AddLink(from)
	c.links[from].interests = nil
	var out []Update
	for _, e := range entries {
		out = append(out, c.Apply(from, e)...)
	}
	return out
}

// Sync recomputes the full entry set for a (re-)established link: the
// sent state is reset, then every local subscription (hops 1) and every
// interest from other links (hops+1) is offered again. The returned
// entries are what a transport sends as the link's SubSet.
func (c *Core) Sync(to LinkID) []Entry {
	c.AddLink(to)
	l := c.links[to]
	l.sent = nil
	var out []Entry
	// Locals in sorted order for determinism.
	ids := make([]string, 0, len(c.locals))
	for id := range c.locals {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, f := range c.locals[id] {
			if u := c.offer(l, Entry{Filter: f, Hops: 1}); u != nil {
				out = append(out, u.Entry)
			}
		}
	}
	for _, from := range c.order {
		if from == to {
			continue
		}
		for _, in := range c.links[from].interests {
			if u := c.offer(l, Entry{Filter: in.orig, Hops: in.hops + 1}); u != nil {
				out = append(out, u.Entry)
			}
		}
	}
	return out
}

// Entries returns the link's current interest set as entries (original
// filters with their hop distances) — the state a transport persists to
// rebuild the link after a restart.
func (c *Core) Entries(from LinkID) []Entry {
	l, ok := c.links[from]
	if !ok {
		return nil
	}
	out := make([]Entry, len(l.interests))
	for i, in := range l.interests {
		out[i] = Entry{Filter: in.orig.Clone(), Hops: in.hops}
	}
	return out
}

// MatchLocals returns the local subscriber IDs with at least one
// original filter matching the event (perfect filtering at the home
// broker), sorted so the result is independent of map iteration order —
// a requirement of the deterministic simulator, and cheap enough for
// the live path.
func (c *Core) MatchLocals(e event.View) []string {
	var out []string
	for id, fs := range c.locals {
		for _, f := range fs {
			if f.Matches(e, c.conf) {
				out = append(out, id)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// MatchLinks returns the active links (excluding from) with at least
// one interest matching the event — the reverse paths the event must
// follow. Standby links hold no interests in steady state, but during a
// failover handoff a dead link keeps its interests while demoted edges
// must not double-route, so the activation flag gates matching too.
// Order is link registration order.
func (c *Core) MatchLinks(e event.View, from LinkID) []LinkID {
	var out []LinkID
	for _, id := range c.order {
		if id == from || c.links[id].standby {
			continue
		}
		for _, in := range c.links[id].interests {
			if in.stored.Matches(e, c.conf) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// MatchLink reports whether the given link holds an interest matching
// the event, regardless of activation — the re-routing probe failover
// uses to re-home a dead link's orphaned spool onto freshly promoted
// edges.
func (c *Core) MatchLink(e event.View, id LinkID) bool {
	l, ok := c.links[id]
	if !ok {
		return false
	}
	for _, in := range l.interests {
		if in.stored.Matches(e, c.conf) {
			return true
		}
	}
	return false
}

// FilterCount reports the broker's total stored filters (locals plus
// per-link interests), the quantity the paper's LC counts.
func (c *Core) FilterCount() int {
	n := 0
	for _, fs := range c.locals {
		n += len(fs)
	}
	for _, l := range c.links {
		n += len(l.interests)
	}
	return n
}

// LinkStats snapshots every link's counters, in registration order.
func (c *Core) LinkStats() []LinkStats {
	out := make([]LinkStats, 0, len(c.order))
	for _, id := range c.order {
		l := c.links[id]
		out = append(out, LinkStats{
			Link:       id,
			Interests:  len(l.interests),
			Sent:       len(l.sent),
			Propagated: l.propagated,
			Suppressed: l.suppressed,
		})
	}
	return out
}
