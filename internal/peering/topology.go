package peering

import "sort"

// TopologyView is one broker's link-state database over the federation's
// configured link set. Every broker floods a link-state advertisement
// (LSA) — its own ID, a monotonically increasing sequence number, and
// the set of neighbors it currently holds live links to — whenever that
// set changes. Receivers keep the newest record per origin and re-flood
// only records that advanced the database, so floods terminate even when
// the configured links form cycles.
//
// From the converged database every broker derives the same undirected
// edge set (an edge exists only when both endpoints advertise each
// other) and runs the same deterministic spanning-forest election:
// Kruskal over the edges sorted lexicographically by (min, max) broker
// ID with union-find. Identical views therefore elect identical forests
// everywhere with no coordination rounds — redundant configured links
// become standby failover paths, and routing stays loop-free because
// traffic only crosses forest edges.
//
// A TopologyView is owned by its broker's core goroutine; it is not safe
// for concurrent use.
type TopologyView struct {
	self      string
	selfAddr  string
	selfGroup string
	seq       uint64
	recs      map[string]lsaRecord
}

type lsaRecord struct {
	seq   uint64
	peers []string // sorted
	addr  string   // client listen address, for partition redirects
	group string   // partition replica group ("" = unpartitioned)
}

// LSA is one database record, the wire-shaped (origin, seq, peers,
// addr, group) tuple a broker ships to a newly connected peer. Addr and
// Group ride the same flood the adjacency does: the partition map is
// derived from the converged database, never separately gossiped.
type LSA struct {
	Origin string
	Seq    uint64
	Peers  []string
	Addr   string
	Group  string
}

// NewTopologyView creates an empty database for the given broker ID.
func NewTopologyView(self string) *TopologyView {
	return &TopologyView{self: self, recs: make(map[string]lsaRecord)}
}

// SetSelf records the broker's own client listen address and partition
// replica group, included in every subsequent Announce.
func (t *TopologyView) SetSelf(addr, group string) {
	t.selfAddr, t.selfGroup = addr, group
}

// Announce records the broker's own adjacency under a freshly bumped
// sequence number and returns that number — the caller floods the
// resulting LSA to every connected link.
func (t *TopologyView) Announce(peers []string) uint64 {
	t.seq++
	ps := append([]string(nil), peers...)
	sort.Strings(ps)
	t.recs[t.self] = lsaRecord{seq: t.seq, peers: ps, addr: t.selfAddr, group: t.selfGroup}
	return t.seq
}

// Merge folds a received LSA into the database. newer reports that the
// record advanced the database (the caller re-floods it); selfEcho
// reports that a peer replayed this broker's own record from before a
// restart with a sequence number at or above the current one — the
// caller must re-announce, which Merge guarantees will win by lifting
// the local sequence past the echo.
func (t *TopologyView) Merge(origin string, seq uint64, peers []string, addr, group string) (newer, selfEcho bool) {
	if origin == t.self {
		if seq >= t.seq {
			t.seq = seq
			return false, true
		}
		return false, false
	}
	if r, ok := t.recs[origin]; ok && r.seq >= seq {
		return false, false
	}
	ps := append([]string(nil), peers...)
	sort.Strings(ps)
	t.recs[origin] = lsaRecord{seq: seq, peers: ps, addr: addr, group: group}
	return true, false
}

// Records returns the whole database sorted by origin — what a broker
// sends to a newly connected peer so it inherits the mesh view without
// waiting for every origin to re-announce.
func (t *TopologyView) Records() []LSA {
	out := make([]LSA, 0, len(t.recs))
	for origin, r := range t.recs {
		out = append(out, LSA{Origin: origin, Seq: r.seq,
			Peers: append([]string(nil), r.peers...), Addr: r.addr, Group: r.group})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// GroupMembers returns the database records whose origin advertises the
// given non-empty partition replica group, sorted by origin — the
// replica set a partition map is derived from. Every broker converged
// on the same database computes the same member list, so the derived
// maps (and their epochs) agree without a coordination round.
func (t *TopologyView) GroupMembers(group string) []LSA {
	if group == "" {
		return nil
	}
	var out []LSA
	for origin, r := range t.recs {
		if r.group == group {
			out = append(out, LSA{Origin: origin, Seq: r.seq,
				Peers: append([]string(nil), r.peers...), Addr: r.addr, Group: r.group})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Brokers returns the number of brokers the database has records for.
func (t *TopologyView) Brokers() int { return len(t.recs) }

// Known reports whether the database holds a record for the broker. The
// election must not demote or fail over links whose peer it knows
// nothing about — absence of a record (a fresh database after restart,
// a first-ever connect before the peer's LSA lands) is ignorance, not
// evidence of death.
func (t *TopologyView) Known(origin string) bool {
	_, ok := t.recs[origin]
	return ok
}

// Edges returns the agreed undirected edges — pairs where both
// endpoints' records list each other — sorted lexicographically by
// (min, max) broker ID. A one-sided claim (one broker's conn died, the
// other hasn't noticed yet) is not an edge: the election only trusts
// links both ends can use.
func (t *TopologyView) Edges() [][2]string {
	var out [][2]string
	for origin, r := range t.recs {
		for _, p := range r.peers {
			if origin >= p {
				continue // count each pair once, from its low endpoint
			}
			if back, ok := t.recs[p]; ok && contains(back.peers, origin) {
				out = append(out, [2]string{origin, p})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Forest returns the elected spanning forest: Kruskal over Edges() in
// its deterministic order, union-find keyed by broker ID. Every broker
// with the same database computes the same forest.
func (t *TopologyView) Forest() [][2]string {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	var forest [][2]string
	for _, e := range t.Edges() {
		a, b := find(e[0]), find(e[1])
		if a == b {
			continue // cycle edge: stays a standby failover path
		}
		parent[a] = b
		forest = append(forest, e)
	}
	return forest
}

// ActiveNeighbors returns the set of neighbors this broker's forest
// edges connect it to — the links the election says should carry
// traffic.
func (t *TopologyView) ActiveNeighbors() map[string]bool {
	out := make(map[string]bool)
	for _, e := range t.Forest() {
		switch t.self {
		case e[0]:
			out[e[1]] = true
		case e[1]:
			out[e[0]] = true
		}
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
