package peering

import (
	"fmt"
	"testing"
)

func TestTopologyAnnounceBumpsSeq(t *testing.T) {
	v := NewTopologyView("A")
	if s := v.Announce([]string{"C", "B"}); s != 1 {
		t.Fatalf("first announce seq = %d, want 1", s)
	}
	if s := v.Announce([]string{"B"}); s != 2 {
		t.Fatalf("second announce seq = %d, want 2", s)
	}
	recs := v.Records()
	if len(recs) != 1 || recs[0].Origin != "A" || recs[0].Seq != 2 {
		t.Fatalf("records = %+v", recs)
	}
	if fmt.Sprint(recs[0].Peers) != "[B]" {
		t.Fatalf("latest announce must replace the peer set, got %v", recs[0].Peers)
	}
}

func TestTopologyMergeOrdering(t *testing.T) {
	v := NewTopologyView("A")
	if newer, _ := v.Merge("B", 3, []string{"A", "C"}, "", ""); !newer {
		t.Fatal("first record for an origin must be newer")
	}
	if newer, _ := v.Merge("B", 3, []string{"A"}, "", ""); newer {
		t.Fatal("same seq must not advance the database")
	}
	if newer, _ := v.Merge("B", 2, []string{"A"}, "", ""); newer {
		t.Fatal("stale seq must not advance the database")
	}
	if newer, _ := v.Merge("B", 4, []string{"A"}, "", ""); !newer {
		t.Fatal("higher seq must advance the database")
	}
	recs := v.Records()
	if len(recs) != 1 || recs[0].Seq != 4 || fmt.Sprint(recs[0].Peers) != "[A]" {
		t.Fatalf("records = %+v", recs)
	}
}

// TestTopologySelfEcho pins the restart rule: a peer replaying this
// broker's own pre-restart record at or above the local sequence must
// report selfEcho so the caller re-announces, and Merge must lift the
// local counter so that re-announce wins the flood.
func TestTopologySelfEcho(t *testing.T) {
	v := NewTopologyView("A")
	v.Announce([]string{"B"}) // seq 1
	newer, echo := v.Merge("A", 7, []string{"B", "C"}, "", "")
	if newer || !echo {
		t.Fatalf("merge of own echoed record: newer=%v selfEcho=%v, want false/true", newer, echo)
	}
	if s := v.Announce([]string{"B"}); s != 8 {
		t.Fatalf("re-announce seq = %d, want 8 (past the echo)", s)
	}
	// A genuinely stale echo is ignored outright.
	if newer, echo := v.Merge("A", 2, nil, "", ""); newer || echo {
		t.Fatalf("stale self echo: newer=%v selfEcho=%v, want false/false", newer, echo)
	}
}

func TestTopologyKnown(t *testing.T) {
	v := NewTopologyView("A")
	if v.Known("B") {
		t.Fatal("empty database must report ignorance")
	}
	v.Merge("B", 1, []string{"A"}, "", "")
	if !v.Known("B") {
		t.Fatal("merged origin must be known")
	}
	if v.Known("A") {
		t.Fatal("self is unknown until the first announce")
	}
	v.Announce([]string{"B"})
	if !v.Known("A") {
		t.Fatal("self must be known after announcing")
	}
}

// TestTopologyEdgesRequireAgreement: a one-sided claim (one conn died,
// the other end hasn't noticed) is not an edge.
func TestTopologyEdgesRequireAgreement(t *testing.T) {
	v := NewTopologyView("A")
	v.Announce([]string{"B", "C"})
	v.Merge("B", 1, []string{"A"}, "", "")
	v.Merge("C", 1, nil, "", "") // C does not list A back
	if got := fmt.Sprint(v.Edges()); got != "[[A B]]" {
		t.Fatalf("edges = %s, want [[A B]]", got)
	}
	// C's next LSA restores agreement.
	v.Merge("C", 2, []string{"A"}, "", "")
	if got := fmt.Sprint(v.Edges()); got != "[[A B] [A C]]" {
		t.Fatalf("edges = %s, want [[A B] [A C]]", got)
	}
}

// TestTopologyForestDeterminism: Kruskal over (min, max)-sorted edges on
// a triangle keeps the two lexicographically lowest edges and leaves the
// (B, C) edge out as a standby, from every broker's point of view.
func TestTopologyForestDeterminism(t *testing.T) {
	for _, self := range []string{"A", "B", "C"} {
		v := NewTopologyView(self)
		ring := map[string][]string{"A": {"B", "C"}, "B": {"A", "C"}, "C": {"A", "B"}}
		v.Announce(ring[self])
		for origin, peers := range ring {
			if origin != self {
				v.Merge(origin, 1, peers, "", "")
			}
		}
		if got := fmt.Sprint(v.Forest()); got != "[[A B] [A C]]" {
			t.Errorf("%s elects %s, want [[A B] [A C]]", self, got)
		}
		active := v.ActiveNeighbors()
		switch self {
		case "A":
			if !active["B"] || !active["C"] {
				t.Errorf("A active = %v, want B and C", active)
			}
		case "B":
			if !active["A"] || active["C"] {
				t.Errorf("B active = %v, want A only (B-C is standby)", active)
			}
		case "C":
			if !active["A"] || active["B"] {
				t.Errorf("C active = %v, want A only (B-C is standby)", active)
			}
		}
	}
}

// TestTopologyForestAfterDeath: removing the hub's record from the
// agreed edge set promotes the former standby edge — the ring heals.
func TestTopologyForestAfterDeath(t *testing.T) {
	v := NewTopologyView("B")
	v.Announce([]string{"A", "C"})
	v.Merge("A", 1, []string{"B", "C"}, "", "")
	v.Merge("C", 1, []string{"A", "B"}, "", "")
	if got := fmt.Sprint(v.ActiveNeighbors()); got != "map[A:true]" {
		t.Fatalf("before death: active = %s", got)
	}
	// A dies: B and C drop it from their adjacency and re-announce.
	v.Announce([]string{"C"})
	v.Merge("C", 2, []string{"B"}, "", "")
	if got := fmt.Sprint(v.Forest()); got != "[[B C]]" {
		t.Fatalf("after death: forest = %s, want [[B C]]", got)
	}
	if got := v.ActiveNeighbors(); !got["C"] || got["A"] {
		t.Fatalf("after death: active = %v, want C only", got)
	}
}

func TestTopologyRecordsSorted(t *testing.T) {
	v := NewTopologyView("M")
	v.Merge("Z", 1, nil, "", "")
	v.Merge("A", 5, []string{"M"}, "", "")
	v.Announce([]string{"A"})
	recs := v.Records()
	if len(recs) != 3 || recs[0].Origin != "A" || recs[1].Origin != "M" || recs[2].Origin != "Z" {
		t.Fatalf("records not sorted by origin: %+v", recs)
	}
	if v.Brokers() != 3 {
		t.Fatalf("brokers = %d, want 3", v.Brokers())
	}
}
