// Package flow is the system's unified flow-control core: one bounded
// queue abstraction with pluggable slow-consumer policies, and a credit
// gate/meter pair for propagating admission control across TCP hops.
//
// Before this package, the delivery path handled overload with three
// disjoint mechanisms — overlay mailboxes that blocked, broker outbound
// queues that dropped, and peer links that spilled to the durable store
// — so behavior under heavy traffic depended on which layer saturated
// first. Every queue in the path (actor mailboxes, subscriber delivery
// queues, the broker's core inlet, per-connection outbound queues, and
// federation peer links) is now a flow.Queue governed by one Policy:
//
//   - Block: producers wait for space. Saturation propagates upstream
//     hop by hop — through in-process channels and, over TCP, through
//     withheld credit grants — until the publisher itself stalls. No
//     event is ever lost.
//   - DropNewest: the incoming event is discarded when the queue is
//     full. Cheapest; freshest backlog survives.
//   - DropOldest: the oldest queued event is evicted to admit the new
//     one. The queue converges to the most recent window of traffic.
//   - SpillToStore: overflow is handed to a spill function (the durable
//     store in the broker and overlay); events survive saturation and
//     replay in order once the consumer catches up. Queues with no
//     spill target treat a failed spill as a drop.
//
// Control messages (subscription state, leases, barriers, credit
// grants) are never subject to a drop policy: they enqueue with
// PushWait, which blocks for space regardless of the configured policy,
// so overload degrades event delivery — per policy — without ever
// corrupting routing state.
package flow

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Policy selects what a saturated queue does with new events.
type Policy uint8

const (
	// Block makes producers wait for space: lossless end-to-end
	// backpressure. The default everywhere.
	Block Policy = iota
	// DropNewest discards the incoming event when the queue is full.
	DropNewest
	// DropOldest evicts the oldest queued event to admit the new one.
	DropOldest
	// SpillToStore hands overflow to the queue's Spill function —
	// normally the durable store — falling back to a counted drop when
	// spilling is impossible.
	SpillToStore
)

// String returns the policy's canonical flag spelling.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case SpillToStore:
		return "spill"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy parses a policy name as spelled by String (flag surface).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "block":
		return Block, nil
	case "drop-newest", "dropnewest":
		return DropNewest, nil
	case "drop-oldest", "dropoldest":
		return DropOldest, nil
	case "spill", "spill-to-store", "spilltostore":
		return SpillToStore, nil
	}
	return Block, fmt.Errorf("flow: unknown policy %q (want block, drop-newest, drop-oldest, or spill)", s)
}

// Outcome reports what Push did with an item.
type Outcome uint8

const (
	// Enqueued: the item is in the queue. Under DropOldest an older
	// evictable item may have been dropped to make room (OnDrop saw it).
	Enqueued Outcome = iota
	// Dropped: the item itself was discarded per policy (OnDrop saw it).
	Dropped
	// Spilled: the item was handed to the Spill function successfully.
	Spilled
	// Stopped: the queue was closed or a stop channel fired before the
	// item could be placed; the caller still owns it.
	Stopped
	// WouldBlock: Offer found the queue full under the Block policy; the
	// caller still owns the item and should retry after the next Pop.
	// Push never returns this — only the non-blocking Offer does.
	WouldBlock
)

// Config parameterizes a Queue.
type Config[T any] struct {
	// Window bounds the queue depth (default 64). Non-evictable items
	// pushed under a drop policy enqueue past it rather than drop:
	// policies bound event backlog, never routing state.
	Window int
	// Policy selects the slow-consumer behavior on a full queue.
	Policy Policy
	// Evictable reports whether an item may be dropped by policy. Nil
	// means every item is evictable. Items that are not evictable are
	// enqueued past the window rather than lost (control traffic).
	Evictable func(T) bool
	// Spill receives overflow under SpillToStore and reports whether it
	// was persisted; nil or false degrades the push to a drop.
	Spill func(T) bool
	// OnDrop observes every item the queue discards (policy drops and
	// evictions), before Push returns. Queues carrying batches use it to
	// count per-event drops exactly once.
	OnDrop func(T)
	// OnStall observes each time a Block push had to wait for space.
	OnStall func()
	// Stop and AltStop abort blocked pushes and pops when closed (e.g. a
	// connection's done channel and the server's shutdown context).
	Stop    <-chan struct{}
	AltStop <-chan struct{}
}

// Queue is a bounded multi-producer multi-consumer queue with a
// slow-consumer policy. The zero value is not usable; create with New.
type Queue[T any] struct {
	cfg Config[T]

	mu     sync.Mutex
	buf    []T // ring buffer
	head   int
	n      int
	closed bool

	avail chan struct{} // 1-token signal: an item was enqueued
	space chan struct{} // 1-token signal: a slot was freed

	// gauges (atomic: snapshots race with the core)
	depthMax atomic.Int64
	enqueued atomic.Uint64
	dropped  atomic.Uint64
	spilled  atomic.Uint64
	stalls   atomic.Uint64
}

// New builds a queue from cfg.
func New[T any](cfg Config[T]) *Queue[T] {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	return &Queue[T]{
		cfg:   cfg,
		buf:   make([]T, nextPow2(cfg.Window+1)),
		avail: make(chan struct{}, 1),
		space: make(chan struct{}, 1),
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

func (q *Queue[T]) stopped() bool {
	select {
	case <-q.cfg.Stop:
		return true
	default:
	}
	if q.cfg.AltStop == nil {
		return false
	}
	select {
	case <-q.cfg.AltStop:
		return true
	default:
		return false
	}
}

// grow doubles the ring (PushWait admits control traffic past the
// window; the ring must keep up). Caller holds q.mu.
func (q *Queue[T]) growLocked() {
	next := make([]T, len(q.buf)*2)
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = next
	q.head = 0
}

func (q *Queue[T]) enqueueLocked(item T) {
	if q.n == len(q.buf) {
		q.growLocked()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = item
	q.n++
	q.enqueued.Add(1)
	if d := int64(q.n); d > q.depthMax.Load() {
		q.depthMax.Store(d)
	}
}

// Push places an event item under the configured policy. The returned
// Outcome says what happened to it; OnDrop has already seen any victim.
func (q *Queue[T]) Push(item T) Outcome {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			signal(q.space) // cascade the close to other waiting producers
			return Stopped
		}
		if q.n < q.cfg.Window {
			q.enqueueLocked(item)
			q.mu.Unlock()
			signal(q.avail)
			return Enqueued
		}
		switch q.cfg.Policy {
		case DropNewest:
			out := q.dropNewestLocked(item)
			q.mu.Unlock()
			if out == Enqueued {
				signal(q.avail)
			}
			return out
		case DropOldest:
			out := q.dropOldestLocked(item)
			q.mu.Unlock()
			signal(q.avail)
			return out
		case SpillToStore:
			// Spill under the lock: overflow ordering between concurrent
			// producers must match their queue ordering, and the spill
			// target (the durable store) serializes internally anyway.
			out := q.spillLocked(item)
			q.mu.Unlock()
			if out == Enqueued {
				signal(q.avail)
			}
			return out
		default: // Block
			q.stalls.Add(1)
			if q.cfg.OnStall != nil {
				q.cfg.OnStall()
			}
			q.mu.Unlock()
			select {
			case <-q.space:
			case <-q.cfg.Stop:
				return Stopped
			case <-altStop(q.cfg.AltStop):
				return Stopped
			}
		}
	}
}

// Offer places an event item under the configured policy without ever
// parking the calling goroutine. It behaves exactly like Push for the
// drop and spill policies; under Block a full queue returns WouldBlock
// instead of waiting, leaving the item with the caller. This is the
// discrete-event-simulation seam: a simulated broker single-steps every
// queue on a virtual clock, so "producer waits for space" must surface
// as a schedulable fact (WouldBlock → retry after the next drain tick)
// rather than a blocked goroutine.
func (q *Queue[T]) Offer(item T) Outcome {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		signal(q.space)
		return Stopped
	}
	if q.n < q.cfg.Window {
		q.enqueueLocked(item)
		q.mu.Unlock()
		signal(q.avail)
		return Enqueued
	}
	switch q.cfg.Policy {
	case DropNewest:
		out := q.dropNewestLocked(item)
		q.mu.Unlock()
		if out == Enqueued {
			signal(q.avail)
		}
		return out
	case DropOldest:
		out := q.dropOldestLocked(item)
		q.mu.Unlock()
		signal(q.avail)
		return out
	case SpillToStore:
		out := q.spillLocked(item)
		q.mu.Unlock()
		if out == Enqueued {
			signal(q.avail)
		}
		return out
	default: // Block
		q.stalls.Add(1)
		if q.cfg.OnStall != nil {
			q.cfg.OnStall()
		}
		q.mu.Unlock()
		return WouldBlock
	}
}

// altStop returns ch, or a never-firing channel when ch is nil (select
// arms cannot be conditional).
func altStop(ch <-chan struct{}) <-chan struct{} {
	if ch == nil {
		return neverCh
	}
	return ch
}

var neverCh = make(chan struct{})

func (q *Queue[T]) dropNewestLocked(item T) Outcome {
	if q.cfg.Evictable != nil && !q.cfg.Evictable(item) {
		q.enqueueLocked(item) // control traffic exceeds the window rather than drop
		return Enqueued
	}
	q.dropped.Add(1)
	if q.cfg.OnDrop != nil {
		q.cfg.OnDrop(item)
	}
	return Dropped
}

func (q *Queue[T]) dropOldestLocked(item T) Outcome {
	// Evict the oldest evictable item; control items are skipped.
	for i := 0; i < q.n; i++ {
		idx := (q.head + i) & (len(q.buf) - 1)
		if q.cfg.Evictable != nil && !q.cfg.Evictable(q.buf[idx]) {
			continue
		}
		victim := q.buf[idx]
		// Shift the prefix [head, head+i) forward one slot to close the
		// gap; O(i) only on the saturated path.
		for j := i; j > 0; j-- {
			to := (q.head + j) & (len(q.buf) - 1)
			from := (q.head + j - 1) & (len(q.buf) - 1)
			q.buf[to] = q.buf[from]
		}
		var zero T
		q.buf[q.head] = zero
		q.head = (q.head + 1) & (len(q.buf) - 1)
		q.n--
		q.dropped.Add(1)
		if q.cfg.OnDrop != nil {
			q.cfg.OnDrop(victim)
		}
		q.enqueueLocked(item)
		return Enqueued
	}
	// Nothing evictable queued: fall back to DropNewest semantics.
	return q.dropNewestLocked(item)
}

func (q *Queue[T]) spillLocked(item T) Outcome {
	if q.cfg.Evictable != nil && !q.cfg.Evictable(item) {
		q.enqueueLocked(item)
		return Enqueued
	}
	if q.cfg.Spill != nil && q.cfg.Spill(item) {
		q.spilled.Add(1)
		return Spilled
	}
	q.dropped.Add(1)
	if q.cfg.OnDrop != nil {
		q.cfg.OnDrop(item)
	}
	return Dropped
}

// PushWait enqueues regardless of policy, waiting for space when the
// queue is full — the control-traffic path: a lease renewal or flush
// barrier is never dropped, whatever the event policy is.
func (q *Queue[T]) PushWait(item T) Outcome {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			signal(q.space) // cascade the close to other waiting producers
			return Stopped
		}
		if q.n < q.cfg.Window {
			q.enqueueLocked(item)
			q.mu.Unlock()
			signal(q.avail)
			return Enqueued
		}
		q.stalls.Add(1)
		if q.cfg.OnStall != nil {
			q.cfg.OnStall()
		}
		q.mu.Unlock()
		select {
		case <-q.space:
		case <-q.cfg.Stop:
			return Stopped
		case <-altStop(q.cfg.AltStop):
			return Stopped
		}
	}
}

// TryPush enqueues without blocking and without applying any policy; it
// reports false when the queue is at its window (or closed).
func (q *Queue[T]) TryPush(item T) bool {
	q.mu.Lock()
	if q.closed || q.n >= q.cfg.Window {
		q.mu.Unlock()
		return false
	}
	q.enqueueLocked(item)
	q.mu.Unlock()
	signal(q.avail)
	return true
}

// Requeue pushes an item back to the front unconditionally (a writer
// returning an in-flight item on teardown so salvage still sees it). It
// never drops, never blocks, and bypasses gauges.
func (q *Queue[T]) Requeue(item T) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	if q.n == len(q.buf) {
		q.growLocked()
	}
	q.head = (q.head - 1 + len(q.buf)) & (len(q.buf) - 1)
	q.buf[q.head] = item
	q.n++
	q.mu.Unlock()
	signal(q.avail)
}

// Pop removes the oldest item, blocking until one is available or a
// stop channel fires (ok=false; also after Close once drained).
func (q *Queue[T]) Pop() (item T, ok bool) {
	for {
		if item, ok = q.TryPop(); ok {
			return item, true
		}
		q.mu.Lock()
		closed, n := q.closed, q.n
		q.mu.Unlock()
		if closed && n == 0 {
			signal(q.avail) // cascade the close to other waiting consumers
			return item, false
		}
		if n > 0 {
			continue // raced another consumer; retry
		}
		select {
		case <-q.avail:
		case <-q.cfg.Stop:
			return item, false
		case <-altStop(q.cfg.AltStop):
			return item, false
		}
	}
}

// TryPop removes the oldest item without blocking.
func (q *Queue[T]) TryPop() (item T, ok bool) {
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		return item, false
	}
	item = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	n := q.n
	q.mu.Unlock()
	signal(q.space)
	if n > 0 {
		signal(q.avail) // cascade to other waiting consumers
	}
	return item, true
}

// Ready returns the item-available signal channel for callers that need
// to select over the queue alongside other channels (the broker's write
// loop). Receiving from it consumes at most one wake token; follow with
// TryPop in a loop.
func (q *Queue[T]) Ready() <-chan struct{} { return q.avail }

// Len reports the current depth.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Full reports whether the queue is at (or past) its window.
func (q *Queue[T]) Full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n >= q.cfg.Window
}

// Close marks the queue closed: pushes return Stopped, pops drain what
// remains and then report ok=false. Idempotent. Waiters cascade the
// wake-up to each other, so every blocked producer and consumer exits.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	signal(q.avail)
	signal(q.space)
}

// Snapshot is a point-in-time view of one queue's gauges.
type Snapshot struct {
	// Name identifies the queue (e.g. "mailbox/N1.2", "out/sub-7").
	Name string
	// Depth is the current occupancy; Window the policy bound; DepthMax
	// the high-water mark.
	Depth    int
	Window   int
	DepthMax int
	// Enqueued, Dropped, Spilled and Stalls count items admitted, items
	// discarded by policy, items handed to the spill target, and Block
	// pushes that had to wait.
	Enqueued uint64
	Dropped  uint64
	Spilled  uint64
	Stalls   uint64
}

// Snapshot reads the queue's gauges.
func (q *Queue[T]) Snapshot(name string) Snapshot {
	q.mu.Lock()
	depth := q.n
	q.mu.Unlock()
	return Snapshot{
		Name:     name,
		Depth:    depth,
		Window:   q.cfg.Window,
		DepthMax: int(q.depthMax.Load()),
		Enqueued: q.enqueued.Load(),
		Dropped:  q.dropped.Load(),
		Spilled:  q.spilled.Load(),
		Stalls:   q.stalls.Load(),
	}
}
