package flow

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type item struct {
	seq  int
	ctrl bool
}

func evictable(it item) bool { return !it.ctrl }

func TestPushPopFIFO(t *testing.T) {
	q := New(Config[item]{Window: 8})
	for i := 0; i < 5; i++ {
		if out := q.Push(item{seq: i}); out != Enqueued {
			t.Fatalf("push %d: outcome %d", i, out)
		}
	}
	for i := 0; i < 5; i++ {
		it, ok := q.Pop()
		if !ok || it.seq != i {
			t.Fatalf("pop %d: got %+v ok=%v", i, it, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
}

func TestBlockPolicyBlocksAndResumes(t *testing.T) {
	stop := make(chan struct{})
	q := New(Config[item]{Window: 2, Policy: Block, Stop: stop})
	q.Push(item{seq: 0})
	q.Push(item{seq: 1})
	done := make(chan Outcome, 1)
	go func() { done <- q.Push(item{seq: 2}) }()
	select {
	case <-done:
		t.Fatal("push into full Block queue returned early")
	case <-time.After(20 * time.Millisecond):
	}
	if it, ok := q.Pop(); !ok || it.seq != 0 {
		t.Fatalf("pop: %+v %v", it, ok)
	}
	select {
	case out := <-done:
		if out != Enqueued {
			t.Fatalf("unblocked push outcome %d", out)
		}
	case <-time.After(time.Second):
		t.Fatal("push did not unblock after pop")
	}
	snap := q.Snapshot("q")
	if snap.Stalls == 0 {
		t.Fatal("Block stall not counted")
	}
}

func TestBlockPolicyStopAborts(t *testing.T) {
	stop := make(chan struct{})
	q := New(Config[item]{Window: 1, Policy: Block, Stop: stop})
	q.Push(item{seq: 0})
	done := make(chan Outcome, 1)
	go func() { done <- q.Push(item{seq: 1}) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	if out := <-done; out != Stopped {
		t.Fatalf("stop during blocked push: outcome %d", out)
	}
	// Pop also aborts on stop once empty.
	q.TryPop()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after stop returned ok")
	}
}

func TestDropNewest(t *testing.T) {
	var drops []int
	q := New(Config[item]{
		Window: 2, Policy: DropNewest, Evictable: evictable,
		OnDrop: func(it item) { drops = append(drops, it.seq) },
	})
	q.Push(item{seq: 0})
	q.Push(item{seq: 1})
	if out := q.Push(item{seq: 2}); out != Dropped {
		t.Fatalf("outcome %d", out)
	}
	if len(drops) != 1 || drops[0] != 2 {
		t.Fatalf("drops = %v", drops)
	}
	// Control items exceed the window instead of dropping.
	if out := q.Push(item{seq: 3, ctrl: true}); out != Enqueued {
		t.Fatalf("control push outcome %d", out)
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestDropOldestSkipsControl(t *testing.T) {
	var drops []int
	q := New(Config[item]{
		Window: 3, Policy: DropOldest, Evictable: evictable,
		OnDrop: func(it item) { drops = append(drops, it.seq) },
	})
	q.Push(item{seq: 0, ctrl: true})
	q.Push(item{seq: 1})
	q.Push(item{seq: 2})
	if out := q.Push(item{seq: 3}); out != Enqueued {
		t.Fatalf("outcome %d", out)
	}
	if len(drops) != 1 || drops[0] != 1 {
		t.Fatalf("drops = %v (oldest evictable is 1, not the control 0)", drops)
	}
	want := []int{0, 2, 3}
	for _, w := range want {
		it, ok := q.Pop()
		if !ok || it.seq != w {
			t.Fatalf("pop got %+v, want seq %d", it, w)
		}
	}
}

func TestDropOldestAllControlFallsBack(t *testing.T) {
	var drops []int
	q := New(Config[item]{
		Window: 2, Policy: DropOldest, Evictable: evictable,
		OnDrop: func(it item) { drops = append(drops, it.seq) },
	})
	q.Push(item{seq: 0, ctrl: true})
	q.Push(item{seq: 1, ctrl: true})
	if out := q.Push(item{seq: 2}); out != Dropped {
		t.Fatalf("outcome %d", out)
	}
	if len(drops) != 1 || drops[0] != 2 {
		t.Fatalf("drops = %v", drops)
	}
}

func TestSpillToStore(t *testing.T) {
	var spilled []int
	ok := true
	q := New(Config[item]{
		Window: 1, Policy: SpillToStore, Evictable: evictable,
		Spill: func(it item) bool {
			if !ok {
				return false
			}
			spilled = append(spilled, it.seq)
			return true
		},
	})
	q.Push(item{seq: 0})
	if out := q.Push(item{seq: 1}); out != Spilled {
		t.Fatalf("outcome %d", out)
	}
	ok = false
	if out := q.Push(item{seq: 2}); out != Dropped {
		t.Fatalf("failed spill outcome %d", out)
	}
	if len(spilled) != 1 || spilled[0] != 1 {
		t.Fatalf("spilled = %v", spilled)
	}
	snap := q.Snapshot("q")
	if snap.Spilled != 1 || snap.Dropped != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestPushWaitIgnoresPolicy(t *testing.T) {
	q := New(Config[item]{Window: 1, Policy: DropNewest, Evictable: evictable})
	q.Push(item{seq: 0})
	done := make(chan Outcome, 1)
	go func() { done <- q.PushWait(item{seq: 1}) }()
	select {
	case <-done:
		t.Fatal("PushWait returned while full")
	case <-time.After(20 * time.Millisecond):
	}
	q.Pop()
	if out := <-done; out != Enqueued {
		t.Fatalf("outcome %d", out)
	}
}

func TestRequeueFront(t *testing.T) {
	q := New(Config[item]{Window: 2})
	q.Push(item{seq: 1})
	q.Requeue(item{seq: 0})
	it, _ := q.Pop()
	if it.seq != 0 {
		t.Fatalf("front is %d, want requeued 0", it.seq)
	}
}

func TestCloseDrainsAndCascades(t *testing.T) {
	q := New(Config[item]{Window: 4})
	q.Push(item{seq: 0})
	q.Close()
	if out := q.Push(item{seq: 1}); out != Stopped {
		t.Fatalf("push after close: %d", out)
	}
	if it, ok := q.Pop(); !ok || it.seq != 0 {
		t.Fatalf("drain after close: %+v %v", it, ok)
	}
	// Several consumers blocked on an empty closed queue all wake.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := q.Pop(); ok {
				t.Error("Pop on closed empty queue returned ok")
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New(Config[item]{Window: 64, Policy: Block, Stop: make(chan struct{})})
	const producers, per = 8, 500
	var got atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if q.Push(item{seq: p*per + i}) != Enqueued {
					t.Error("push failed")
					return
				}
			}
		}(p)
	}
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				if _, ok := q.Pop(); !ok {
					return
				}
				got.Add(1)
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	if got.Load() != producers*per {
		t.Fatalf("consumed %d, want %d", got.Load(), producers*per)
	}
}

func TestPerProducerFIFOUnderContention(t *testing.T) {
	q := New(Config[item]{Window: 16, Policy: Block, Stop: make(chan struct{})})
	const producers, per = 4, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(item{seq: p*per + i})
			}
		}(p)
	}
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < producers*per; n++ {
			it, ok := q.Pop()
			if !ok {
				t.Error("queue closed early")
				return
			}
			p, s := it.seq/per, it.seq%per
			if s <= last[p] {
				t.Errorf("producer %d out of order: %d after %d", p, s, last[p])
				return
			}
			last[p] = s
		}
	}()
	wg.Wait()
	<-done
}

func TestGateDisabledUntilGrant(t *testing.T) {
	g := NewGate()
	if !g.TryAcquire(100) {
		t.Fatal("disabled gate refused acquisition")
	}
	g.Grant(2)
	if !g.Enabled() {
		t.Fatal("gate not enabled after grant")
	}
	if !g.TryAcquire(1) || !g.TryAcquire(1) {
		t.Fatal("granted credit refused")
	}
	if g.TryAcquire(1) {
		t.Fatal("dry gate allowed acquisition")
	}
}

func TestGateOvershoot(t *testing.T) {
	g := NewGate()
	g.Grant(1)
	if !g.TryAcquire(10) {
		t.Fatal("positive balance refused a batch")
	}
	if g.Balance() != -9 {
		t.Fatalf("balance %d, want -9", g.Balance())
	}
	if g.TryAcquire(1) {
		t.Fatal("negative balance allowed acquisition")
	}
	g.Grant(9)
	if g.TryAcquire(1) {
		t.Fatal("deficit not repaid before next acquisition")
	}
	g.Grant(1)
	if !g.TryAcquire(1) {
		t.Fatal("repaid gate refused acquisition")
	}
}

func TestGateAcquireBlocksUntilGrant(t *testing.T) {
	g := NewGate()
	g.Grant(1)
	g.TryAcquire(1)
	stop := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- g.Acquire(1, stop, nil) }()
	select {
	case <-got:
		t.Fatal("Acquire returned while dry")
	case <-time.After(20 * time.Millisecond):
	}
	g.Grant(1)
	if ok := <-got; !ok {
		t.Fatal("Acquire failed after grant")
	}
	if g.Waits() == 0 {
		t.Fatal("wait not counted")
	}
	// Stop aborts a dry wait.
	go func() { got <- g.Acquire(1, stop, nil) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	if ok := <-got; ok {
		t.Fatal("Acquire succeeded after stop")
	}
}

func TestMeterGrantsHalfWindows(t *testing.T) {
	m := NewMeter(100)
	total := 0
	for i := 0; i < 99; i++ {
		total += m.Consume(1)
	}
	if total < 49 {
		t.Fatalf("granted %d over 99 events, want >= 49", total)
	}
	if g := m.Consume(1); total+g != 100 {
		t.Fatalf("granted %d over 100 events, want exactly 100", total+g)
	}
	if m.Consume(0) != 0 {
		t.Fatal("zero consume granted credit")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Block, DropNewest, DropOldest, SpillToStore} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy parsed")
	}
	if p, err := ParsePolicy(""); err != nil || p != Block {
		t.Fatal("empty policy should default to block")
	}
}

func TestOfferNeverBlocks(t *testing.T) {
	// Block policy: a full queue returns WouldBlock immediately and the
	// caller keeps the item.
	q := New(Config[item]{Window: 2, Policy: Block})
	q.Push(item{seq: 0})
	q.Push(item{seq: 1})
	if out := q.Offer(item{seq: 2}); out != WouldBlock {
		t.Fatalf("Offer on full Block queue: outcome %d, want WouldBlock", out)
	}
	if snap := q.Snapshot("q"); snap.Stalls != 1 {
		t.Fatalf("WouldBlock stall not counted: %d", snap.Stalls)
	}
	// After a Pop there is space again.
	q.Pop()
	if out := q.Offer(item{seq: 2}); out != Enqueued {
		t.Fatalf("Offer after drain: outcome %d, want Enqueued", out)
	}
	if it, ok := q.Pop(); !ok || it.seq != 1 {
		t.Fatalf("pop after offer: %+v %v", it, ok)
	}
	if it, ok := q.Pop(); !ok || it.seq != 2 {
		t.Fatalf("offered item lost: %+v %v", it, ok)
	}
}

func TestOfferAppliesDropAndSpillPolicies(t *testing.T) {
	// DropNewest: the offered item is the victim.
	q := New(Config[item]{Window: 1, Policy: DropNewest, Evictable: evictable})
	q.Offer(item{seq: 0})
	if out := q.Offer(item{seq: 1}); out != Dropped {
		t.Fatalf("DropNewest Offer: outcome %d, want Dropped", out)
	}
	// DropOldest: the queued item is evicted, the offered one admitted.
	q = New(Config[item]{Window: 1, Policy: DropOldest, Evictable: evictable})
	q.Offer(item{seq: 0})
	if out := q.Offer(item{seq: 1}); out != Enqueued {
		t.Fatalf("DropOldest Offer: outcome %d, want Enqueued", out)
	}
	if it, _ := q.Pop(); it.seq != 1 {
		t.Fatalf("DropOldest kept the wrong item: %+v", it)
	}
	// SpillToStore: overflow goes to the spill function.
	var spilled []int
	q = New(Config[item]{
		Window: 1, Policy: SpillToStore, Evictable: evictable,
		Spill: func(it item) bool { spilled = append(spilled, it.seq); return true },
	})
	q.Offer(item{seq: 0})
	if out := q.Offer(item{seq: 1}); out != Spilled {
		t.Fatalf("SpillToStore Offer: outcome %d, want Spilled", out)
	}
	if len(spilled) != 1 || spilled[0] != 1 {
		t.Fatalf("spill saw %v, want [1]", spilled)
	}
	// Control traffic enqueues past the window under every policy.
	if out := q.Offer(item{seq: 2, ctrl: true}); out != Enqueued {
		t.Fatalf("control Offer: outcome %d, want Enqueued", out)
	}
	// Closed queue: Stopped.
	q.Close()
	if out := q.Offer(item{seq: 3}); out != Stopped {
		t.Fatalf("Offer on closed queue: outcome %d, want Stopped", out)
	}
}
