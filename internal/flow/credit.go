package flow

import (
	"sync"
	"sync/atomic"
)

// Gate is the sender half of credit-based flow control over a
// connection: the remote receiver grants credit (one unit per event),
// the local writer acquires credit before transmitting event-bearing
// frames, and runs dry when the receiver stops granting — which is how
// a saturated downstream broker throttles upstream publishers without
// stalling control traffic.
//
// A Gate starts disabled (acquisitions succeed unconditionally) and
// enables itself on the first Grant, so senders interoperate with
// receivers that predate — or opt out of — credit flow control.
//
// Acquire semantics are deliberately TCP-like: a batch may overshoot
// the remaining credit (credit goes negative) as long as any credit was
// available, so an oversized batch can never wedge a link; the deficit
// is repaid before the next acquisition succeeds.
type Gate struct {
	mu      sync.Mutex
	enabled bool
	credit  int64
	avail   chan struct{} // 1-token signal: credit was granted

	granted atomic.Uint64
	waits   atomic.Uint64
}

// NewGate returns a disabled gate; the first Grant enables it.
func NewGate() *Gate {
	return &Gate{avail: make(chan struct{}, 1)}
}

// Grant adds n credits (a Credit frame arrived) and enables the gate.
func (g *Gate) Grant(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.enabled = true
	g.credit += int64(n)
	g.mu.Unlock()
	g.granted.Add(uint64(n))
	signal(g.avail)
}

// TryAcquire takes n credits if any credit is available (the balance may
// go negative — see the type comment); it reports false when the gate is
// enabled and dry.
func (g *Gate) TryAcquire(n int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.enabled || g.credit > 0 {
		if g.enabled {
			g.credit -= int64(n)
		}
		return true
	}
	return false
}

// Acquire blocks until n credits are taken or a stop channel fires
// (returns false). stop2 may be nil.
func (g *Gate) Acquire(n int, stop, stop2 <-chan struct{}) bool {
	for {
		if g.TryAcquire(n) {
			return true
		}
		g.waits.Add(1)
		select {
		case <-g.avail:
		case <-stop:
			return false
		case <-altStop(stop2):
			return false
		}
	}
}

// Avail returns the grant signal channel for callers that select over
// the gate alongside other channels; follow a receive with TryAcquire.
func (g *Gate) Avail() <-chan struct{} { return g.avail }

// Enabled reports whether a Grant has ever arrived.
func (g *Gate) Enabled() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.enabled
}

// Balance reports the current credit (negative after an overshoot).
func (g *Gate) Balance() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int(g.credit)
}

// Granted reports total credits ever granted; Waits how often an
// acquisition had to block.
func (g *Gate) Granted() uint64 { return g.granted.Load() }

// Waits reports how many times Acquire found the gate dry.
func (g *Gate) Waits() uint64 { return g.waits.Load() }

// Meter is the receiver half: it tracks how many events have been
// consumed from a sender since the last grant and says when (and how
// much) to re-grant. Grants are issued in half-window batches so one
// Credit frame amortizes over many events, while the outstanding window
// never exceeds Window.
//
// The receiver decides when "consumed" happens — the broker counts an
// event at the moment its core has matched and routed it (with every
// downstream enqueue subject to that broker's own queue policy), so
// under Block a slow consumer slows the core, the meter stops
// re-granting, and the stall propagates upstream.
type Meter struct {
	mu       sync.Mutex
	window   int
	consumed int
}

// NewMeter returns a meter for the given grant window.
func NewMeter(window int) *Meter {
	if window <= 0 {
		window = DefaultCreditWindow
	}
	return &Meter{window: window}
}

// DefaultCreditWindow is the per-connection event credit window granted
// to senders when none is configured.
const DefaultCreditWindow = 1024

// Window returns the meter's grant window (the initial grant).
func (m *Meter) Window() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.window
}

// Consume records n events processed from the sender and returns the
// credit to grant back now: 0 most of the time, a batch once the
// consumed count crosses half the window.
func (m *Meter) Consume(n int) (grant int) {
	if n <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.consumed += n
	if m.consumed >= m.window/2 {
		grant = m.consumed
		m.consumed = 0
	}
	return grant
}
