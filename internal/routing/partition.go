package routing

import (
	"sync/atomic"

	"eventsys/internal/event"
	"eventsys/internal/partition"
)

// PartitionFilter makes the routing layer partition-aware: it holds the
// current partition map and answers, per event, whether this replica
// owns the event's partition and who does. The broker's core installs a
// new map whenever the link-state database changes the replica set;
// readers (the publish path, stats) load it atomically, so the filter
// is safe for concurrent use.
//
// Ownership is load placement, not a correctness gate: interests are
// flooded to every broker, so any ingress broker delivers completely.
// A broker receiving an event it does not own still processes it — the
// filter only drives the redirect that steers future publishes to the
// owner.
type PartitionFilter struct {
	self string
	m    atomic.Pointer[partition.Map]
}

// NewPartitionFilter creates a filter for the replica with the given
// broker ID, initially holding no map (unpartitioned: owns everything).
func NewPartitionFilter(self string) *PartitionFilter {
	return &PartitionFilter{self: self}
}

// Install publishes a new partition map (nil reverts to unpartitioned).
func (p *PartitionFilter) Install(m *partition.Map) { p.m.Store(m) }

// Map returns the current partition map, nil when unpartitioned.
func (p *PartitionFilter) Map() *partition.Map { return p.m.Load() }

// Epoch returns the current map's epoch, 0 when unpartitioned.
func (p *PartitionFilter) Epoch() uint64 {
	if m := p.m.Load(); m != nil {
		return m.Epoch
	}
	return 0
}

// Owns reports whether this replica owns the event's partition. With no
// map installed every event is owned (unpartitioned behavior).
func (p *PartitionFilter) Owns(e event.View) bool {
	m := p.m.Load()
	if m == nil || len(m.Replicas) == 0 {
		return true
	}
	return m.Owns(p.self, m.PartitionOf(partition.KeyOf(e)))
}

// OwnerOf returns the replica owning the event's partition; the zero
// Replica when unpartitioned.
func (p *PartitionFilter) OwnerOf(e event.View) partition.Replica {
	m := p.m.Load()
	if m == nil {
		return partition.Replica{}
	}
	return m.OwnerOf(e)
}
