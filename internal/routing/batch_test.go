package routing

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
)

// TestTableMatchBatchEquivalence: the batch path must return exactly what
// per-event Match returns, for every engine kind.
func TestTableMatchBatchEquivalence(t *testing.T) {
	for _, cfg := range []index.Config{
		{Kind: index.KindNaive},
		{Kind: index.KindCounting},
		{Kind: index.KindSharded, Shards: 4},
	} {
		t.Run(cfg.Kind.String(), func(t *testing.T) {
			tab := NewTable(cfg)
			exp := time.Now().Add(time.Hour)
			for i := 0; i < 20; i++ {
				f := filter.MustParseFilter(fmt.Sprintf(`class = "Tick" && lane = %d`, i%5))
				tab.Insert(f, NodeID(fmt.Sprintf("n%d", i)), exp)
			}
			evs := make([]event.View, 30)
			for i := range evs {
				evs[i] = event.NewBuilder("Tick").Int("lane", int64(i%7)).Build()
			}
			ids, matched := tab.MatchBatch(evs)
			for i, e := range evs {
				wantIDs, wantMatched := tab.Match(e)
				if !reflect.DeepEqual(ids[i], wantIDs) {
					t.Fatalf("event %d: batch IDs %v, Match %v", i, ids[i], wantIDs)
				}
				if (matched[i] > 0) != (wantMatched > 0) {
					t.Fatalf("event %d: batch matched %d, Match %d", i, matched[i], wantMatched)
				}
			}
		})
	}
}

// TestHandleEventBatchCounters verifies the Section 5.1 counter semantics
// of the batch path (identical to per-event HandleEvent) plus the
// batch-efficiency counters.
func TestHandleEventBatchCounters(t *testing.T) {
	n := NewNode(Config{ID: "b", Stage: 1, Parent: "root",
		Engine: index.Config{Kind: index.KindCounting}})
	// Insert the exact filter directly (bypassing the per-stage weakener,
	// which would store a class-only filter without an advertisement).
	n.Table().Insert(filter.MustParseFilter(`class = "Tick" && lane = 1`),
		"s1", time.Now().Add(time.Hour))
	evs := []event.View{
		event.NewBuilder("Tick").Int("lane", 1).Build(),
		event.NewBuilder("Tick").Int("lane", 2).Build(),
		event.NewBuilder("Tick").Int("lane", 1).Build(),
	}
	routes := n.HandleEventBatch(evs)
	if len(routes) != 3 || len(routes[0]) != 1 || len(routes[1]) != 0 || len(routes[2]) != 1 {
		t.Fatalf("routes = %v, want s1 for events 0 and 2", routes)
	}
	st := n.Counters().Stats("b", 1)
	if st.Received != 3 || st.Matched != 2 || st.Forwarded != 2 {
		t.Errorf("received/matched/forwarded = %d/%d/%d, want 3/2/2",
			st.Received, st.Matched, st.Forwarded)
	}
	if st.BatchesMatched != 1 || st.BatchSizeSum != 3 {
		t.Errorf("batches/sizeSum = %d/%d, want 1/3", st.BatchesMatched, st.BatchSizeSum)
	}
	if n.HandleEventBatch(nil) != nil {
		t.Error("empty batch should route nowhere")
	}
	if st := n.Counters().Stats("b", 1); st.BatchesMatched != 1 {
		t.Error("empty batch must not count as a matching pass")
	}
}
