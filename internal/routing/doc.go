// Package routing implements the broker-node core of the multi-stage
// filtering architecture (Section 4): the filtering and forwarding table
// (Figure 6), the subscription placement automaton (Figure 5), TTL-based
// soft-state leases (Section 4.3), and wildcard subscription handling
// (Sections 4.4–4.5).
//
// The package is pure logic: no I/O, no goroutines, no wall clock. Time
// flows in through method parameters, randomness through injected
// generators, so the deterministic simulator, the concurrent overlay and
// the TCP broker runtime all share identical behavior.
//
// Concurrency and ownership invariants: Node and Table are NOT safe for
// concurrent use — every runtime serializes all access to a node's core
// behind exactly one goroutine (the overlay actor, the broker core
// loop, or the single-threaded simulator). The matching engine inside a
// Table is owned by that table; when the sharded engine is selected it
// parallelizes internally across its own worker goroutines, but the
// Table-facing API remains single-caller. HandleEventBatch matches a
// run of events in one table pass with per-event counter semantics
// identical to HandleEvent — batching changes throughput, never
// observable routing results or per-destination order.
package routing
