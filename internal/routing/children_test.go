package routing

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"eventsys/internal/filter"
	"eventsys/internal/index"
)

func TestDynamicChildren(t *testing.T) {
	n := NewNode(Config{ID: "p", Stage: 2, TTL: time.Minute, Weakener: nil})
	if n.IsChild("c1") {
		t.Error("no children yet")
	}
	n.AddChild("c1")
	n.AddChild("c2")
	n.AddChild("c1") // duplicate: no-op
	kids := n.Children()
	if len(kids) != 2 || kids[0] != "c1" || kids[1] != "c2" {
		t.Fatalf("Children = %v", kids)
	}
	if !n.IsChild("c1") || !n.IsChild("c2") {
		t.Error("IsChild false for registered children")
	}
	n.RemoveChild("c1")
	n.RemoveChild("zz") // absent: no-op
	kids = n.Children()
	if len(kids) != 1 || kids[0] != "c2" {
		t.Fatalf("after removal Children = %v", kids)
	}
	if n.IsChild("c1") {
		t.Error("removed child still reported")
	}
}

func TestDynamicChildUsedForPlacement(t *testing.T) {
	// A stage-2 node with dynamically added children must use them for
	// random descent.
	n := NewNode(Config{ID: "p", Stage: 2, TTL: time.Minute})
	n.AddChild("leaf")
	rng := rand.New(rand.NewPCG(1, 1))
	res := n.HandleSubscribe(filter.MustParseFilter(`x = 1`), "s1", rng, t0)
	if res.Action != ActionRedirect || res.Target != "leaf" {
		t.Fatalf("result = %+v, want redirect to leaf", res)
	}
}

func TestTableIDsFor(t *testing.T) {
	tab := NewTable(index.Config{})
	f := filter.MustParseFilter(`x = 1`)
	tab.Insert(f, "b", t0.Add(time.Hour))
	tab.Insert(f, "a", t0.Add(time.Hour))
	ids := tab.IDsFor(f)
	if fmt.Sprint(ids) != "[a b]" {
		t.Errorf("IDsFor = %v", ids)
	}
	if got := tab.IDsFor(filter.MustParseFilter(`y = 2`)); got != nil {
		t.Errorf("IDsFor absent filter = %v", got)
	}
}

func TestStandardizeWithoutAdvertisement(t *testing.T) {
	// Nodes without schema knowledge must pass filters through
	// unmodified (both for classless filters and unadvertised classes).
	n := NewNode(Config{ID: "n", Stage: 1, TTL: time.Minute})
	rng := rand.New(rand.NewPCG(2, 2))
	f := filter.MustParseFilter(`class = "Mystery" && a = 1`)
	res := n.HandleSubscribe(f, "s1", rng, t0)
	if res.Action != ActionAccept {
		t.Fatalf("action = %v", res.Action)
	}
	// Stored filter keeps only the class above stage 0 for unadvertised
	// classes; at stage 1 the weakener has no advert, so class-only.
	if res.Stored.Class != "Mystery" {
		t.Errorf("stored = %s", res.Stored)
	}
	g := filter.MustParseFilter(`b = 2`) // no class at all
	res2 := n.HandleSubscribe(g, "s2", rng, t0)
	if res2.Action != ActionAccept {
		t.Fatalf("action = %v", res2.Action)
	}
}

func TestWildcardInsertStageWithoutAds(t *testing.T) {
	// Without advertisements the wildcard rule cannot apply; descent
	// proceeds normally and terminates at stage 1.
	h := newHierarchy(t, nil, time.Minute)
	n := h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = ALL`))
	if n.Stage() != 1 {
		t.Errorf("landed at stage %d, want 1", n.Stage())
	}
}
