package routing

import (
	"sort"
	"time"
	"unsafe"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
)

// NodeID identifies a broker node or subscriber in the overlay.
type NodeID string

// Table is a broker's filtering and forwarding table: entries of the form
// <filter, id-list> (Figure 6) with a lease per (filter, id) association
// (Section 4.3). Table is not safe for concurrent use; runtimes serialize
// access per node.
type Table struct {
	engine  index.Engine
	filters map[string]*filter.Filter // key -> stored filter
	leases  map[string]map[NodeID]time.Time
}

// NewTable creates a table backed by the matching engine cfg selects.
// The engine choice is explicit: the zero Config names the naive Figure 6
// table with exact type matching, and overlay, broker and simulator all
// state their choice through the same index.Config — there is no nil
// fallback path.
func NewTable(cfg index.Config) *Table {
	return &Table{
		engine:  index.New(cfg),
		filters: make(map[string]*filter.Filter),
		leases:  make(map[string]map[NodeID]time.Time),
	}
}

// ShardLoads reports per-shard live-subscription counts when the table
// is backed by the sharded parallel engine, nil otherwise. Unlike the
// rest of Table, it is safe to call concurrently with core access: it
// reads only the engine (immutable after construction), and the sharded
// engine locks per shard.
func (t *Table) ShardLoads() []int {
	if se, ok := t.engine.(*index.ShardedEngine); ok {
		return se.ShardLoads()
	}
	return nil
}

// Insert associates id with f under a lease expiring at expiry. Inserting
// an existing association refreshes its lease.
func (t *Table) Insert(f *filter.Filter, id NodeID, expiry time.Time) {
	key := f.Key()
	if _, ok := t.filters[key]; !ok {
		t.filters[key] = f.Clone()
		t.leases[key] = make(map[NodeID]time.Time)
	}
	t.engine.Insert(f, string(id))
	t.leases[key][id] = expiry
}

// Renew extends the lease of the (f, id) association; it reports whether
// the association existed.
func (t *Table) Renew(f *filter.Filter, id NodeID, expiry time.Time) bool {
	key := f.Key()
	ids, ok := t.leases[key]
	if !ok {
		return false
	}
	if _, ok := ids[id]; !ok {
		return false
	}
	ids[id] = expiry
	return true
}

// Remove drops the (f, id) association immediately (explicit unsubscribe,
// the optional optimization of Section 4.3).
func (t *Table) Remove(f *filter.Filter, id NodeID) {
	key := f.Key()
	ids, ok := t.leases[key]
	if !ok {
		return
	}
	delete(ids, id)
	t.engine.Remove(f, string(id))
	if len(ids) == 0 {
		delete(t.leases, key)
		delete(t.filters, key)
	}
}

// Sweep removes every association whose lease expired at or before now
// and returns the IDs removed (with duplicates when an ID held several
// filters).
func (t *Table) Sweep(now time.Time) []NodeID {
	var removed []NodeID
	for key, ids := range t.leases {
		f := t.filters[key]
		for id, expiry := range ids {
			if !expiry.After(now) {
				delete(ids, id)
				t.engine.Remove(f, string(id))
				removed = append(removed, id)
			}
		}
		if len(ids) == 0 {
			delete(t.leases, key)
			delete(t.filters, key)
		}
	}
	return removed
}

// Match returns the IDs to forward the event to (sorted, deduplicated)
// and the number of distinct filters that matched. The event may be a
// decoded *event.Event or a zero-copy *event.Raw wire view.
func (t *Table) Match(e event.View) ([]NodeID, int) {
	ids, matched := t.engine.Match(e)
	return idsAsNodeIDs(ids), matched
}

// idsAsNodeIDs reinterprets the engine's ID slice as []NodeID without
// copying: NodeID's underlying type is string, so the layouts are
// identical, and the engine hands each result slice over — nothing else
// aliases it.
func idsAsNodeIDs(ids []string) []NodeID {
	return *(*[]NodeID)(unsafe.Pointer(&ids))
}

// MatchBatch matches a batch of events in one engine pass, using the
// engine's native batch path when it has one (the sharded engine matches
// the whole batch across shards in parallel). Results align positionally
// with events; each ID list is sorted and deduplicated, so per-event
// output is identical to calling Match event by event.
func (t *Table) MatchBatch(events []event.View) (ids [][]NodeID, matched []int) {
	rs := index.MatchEach(t.engine, events)
	ids = make([][]NodeID, len(rs))
	matched = make([]int, len(rs))
	for i, r := range rs {
		ids[i] = idsAsNodeIDs(r.IDs)
		matched[i] = r.Matched
	}
	return ids, matched
}

// Filters returns the distinct stored filters in deterministic (key)
// order.
func (t *Table) Filters() []*filter.Filter {
	keys := make([]string, 0, len(t.filters))
	for k := range t.filters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*filter.Filter, len(keys))
	for i, k := range keys {
		out[i] = t.filters[k]
	}
	return out
}

// Len reports the number of distinct stored filters.
func (t *Table) Len() int { return len(t.filters) }

// HasID reports whether any stored filter is still associated with id.
func (t *Table) HasID(id NodeID) bool {
	for _, ids := range t.leases {
		if _, ok := ids[id]; ok {
			return true
		}
	}
	return false
}

// IDsFor returns the IDs associated with the filter, sorted.
func (t *Table) IDsFor(f *filter.Filter) []NodeID {
	ids, ok := t.leases[f.Key()]
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindCovering searches for the strongest stored filter covering f whose
// association includes at least one ID accepted by validTarget, and
// returns that ID. This is the covering search of the Figure 5 placement
// protocol. validTarget guards against redirecting a subscriber to
// another subscriber: only broker children are valid redirect targets
// (an ambiguity the paper's pseudo-code leaves open).
func (t *Table) FindCovering(f *filter.Filter, conf filter.Conformance, validTarget func(NodeID) bool) (NodeID, bool) {
	var bestFilter *filter.Filter
	var bestID NodeID
	for key, stored := range t.filters {
		if !filter.Covers(stored, f, conf) {
			continue
		}
		var candidate NodeID
		found := false
		for _, id := range t.idsSorted(key) {
			if validTarget == nil || validTarget(id) {
				candidate = id
				found = true
				break
			}
		}
		if !found {
			continue
		}
		if bestFilter == nil || filter.Covers(bestFilter, stored, conf) {
			bestFilter = stored
			bestID = candidate
		}
	}
	if bestFilter == nil {
		return "", false
	}
	return bestID, true
}

func (t *Table) idsSorted(key string) []NodeID {
	ids := t.leases[key]
	out := make([]NodeID, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
