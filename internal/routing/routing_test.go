package routing

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// hierarchy is a minimal in-memory assembly of routing Nodes mirroring
// Figure 4: one stage-3 root, two stage-2 nodes, four stage-1 nodes.
type hierarchy struct {
	nodes map[NodeID]*Node
	root  *Node
	rng   *rand.Rand
	now   time.Time
	// delivered maps subscriber id -> events that reached it.
	delivered map[NodeID][]*event.Event
	// placed maps subscriber id -> the node that accepted it.
	placed map[NodeID]*Node
	// seq numbers published events for duplicate detection.
	seq uint64
	// original maps subscriber id -> original subscription filter.
	original map[NodeID]*filter.Filter
}

func stockWeakener(t testing.TB) *weaken.Weakener {
	t.Helper()
	var ads typing.AdvertisementSet
	stock, err := typing.NewAdvertisement("Stock", 4, "symbol", "price")
	if err != nil {
		t.Fatal(err)
	}
	stock.StageAttrs = []int{2, 2, 1, 0}
	if err := ads.Put(stock); err != nil {
		t.Fatal(err)
	}
	auction, err := typing.NewAdvertisement("Auction", 4, "product", "kind", "capacity", "price")
	if err != nil {
		t.Fatal(err)
	}
	if err := ads.Put(auction); err != nil {
		t.Fatal(err)
	}
	return weaken.New(&ads, nil)
}

func newHierarchy(t testing.TB, w *weaken.Weakener, ttl time.Duration) *hierarchy {
	t.Helper()
	h := &hierarchy{
		nodes:     make(map[NodeID]*Node),
		rng:       rand.New(rand.NewPCG(100, 200)),
		now:       t0,
		delivered: make(map[NodeID][]*event.Event),
		placed:    make(map[NodeID]*Node),
		original:  make(map[NodeID]*filter.Filter),
	}
	add := func(id NodeID, stage int, parent NodeID, children ...NodeID) *Node {
		n := NewNode(Config{
			ID: id, Stage: stage, Parent: parent, Children: children,
			TTL: ttl, Weakener: w,
		})
		h.nodes[id] = n
		return n
	}
	h.root = add("N3.1", 3, "", "N2.1", "N2.2")
	add("N2.1", 2, "N3.1", "N1.1", "N1.2")
	add("N2.2", 2, "N3.1", "N1.3", "N1.4")
	for _, id := range []NodeID{"N1.1", "N1.2"} {
		add(id, 1, "N2.1")
	}
	for _, id := range []NodeID{"N1.3", "N1.4"} {
		add(id, 1, "N2.2")
	}
	return h
}

// subscribe runs the full Figure 5 protocol for a subscriber.
func (h *hierarchy) subscribe(t testing.TB, sid NodeID, f *filter.Filter) *Node {
	t.Helper()
	h.original[sid] = f
	cur := h.root
	for hops := 0; ; hops++ {
		if hops > 10 {
			t.Fatalf("subscription for %s did not terminate", sid)
		}
		res := cur.HandleSubscribe(f, sid, h.rng, h.now)
		switch res.Action {
		case ActionRedirect:
			next, ok := h.nodes[res.Target]
			if !ok {
				t.Fatalf("redirect to unknown node %q", res.Target)
			}
			cur = next
		case ActionAccept:
			h.placed[sid] = cur
			// Propagate req-Insert up the chain.
			up, at := res.Up, cur
			for up != nil && !at.IsRoot() {
				parent := h.nodes[at.Parent()]
				up = parent.HandleReqInsert(up, at.ID(), h.now)
				at = parent
			}
			return cur
		default:
			t.Fatalf("unexpected action %v", res.Action)
		}
	}
}

// publish drives an event from the root down to subscribers, applying
// per-stage event transformation and end-to-end perfect filtering.
func (h *hierarchy) publish(e *event.Event) {
	h.seq++
	e.ID = h.seq
	var walk func(n *Node, ev *event.Event)
	walk = func(n *Node, ev *event.Event) {
		for _, id := range n.HandleEvent(ev) {
			if child, ok := h.nodes[id]; ok {
				walk(child, n.TransformEventFor(e, child.Stage()))
				continue
			}
			// Direct subscriber: perfect end-to-end filtering with the
			// original filter on the full event.
			if f := h.original[id]; f != nil && f.Matches(e, nil) {
				h.delivered[id] = append(h.delivered[id], e)
			}
		}
	}
	walk(h.root, e)
}

func TestPlacementClustersSimilarSubscriptions(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	f1 := filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`)
	f2 := filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 11.0`)
	n1 := h.subscribe(t, "s1", f1)
	n2 := h.subscribe(t, "s2", f2)
	if n1.Stage() != 1 {
		t.Fatalf("s1 landed at stage %d", n1.Stage())
	}
	if n1.ID() != n2.ID() {
		t.Errorf("similar subscriptions placed apart: %s vs %s", n1.ID(), n2.ID())
	}
	// The shared stage-1 node holds two filters; its parent only one
	// (the covering weakened filter is shared).
	parent := h.nodes[n1.Parent()]
	if got := parent.Table().Len(); got != 1 {
		t.Errorf("parent stores %d filters, want 1 (clustered)", got)
	}
	// Root holds one class filter pointing at the parent's subtree.
	if got := h.root.Table().Len(); got != 1 {
		t.Errorf("root stores %d filters, want 1", got)
	}
}

func TestPlacementSameClassFunnelsThroughSubtree(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	n1 := h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`))
	n3 := h.subscribe(t, "s3", filter.MustParseFilter(`class = "Stock" && symbol = "GHI" && price < 8.0`))
	// Both are Stock subscriptions: the root's class filter funnels the
	// second into the same stage-2 subtree.
	if h.nodes[n1.Parent()].ID() != h.nodes[n3.Parent()].ID() {
		t.Errorf("same-class subscriptions in different subtrees: %s vs %s",
			n1.Parent(), n3.Parent())
	}
}

func TestEventForwardingEndToEnd(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`))
	h.subscribe(t, "s2", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 11.0`))
	h.subscribe(t, "s3", filter.MustParseFilter(`class = "Stock" && symbol = "GHI" && price < 8.0`))

	pub := func(sym string, price float64) *event.Event {
		return event.NewBuilder("Stock").Str("symbol", sym).Float("price", price).Build()
	}
	h.publish(pub("DEF", 9.5))                                               // matches s1, s2
	h.publish(pub("DEF", 10.5))                                              // matches s2 only
	h.publish(pub("GHI", 7.0))                                               // matches s3 only
	h.publish(pub("ZZZ", 1.0))                                               // matches nobody
	h.publish(event.NewBuilder("Auction").Str("product", "Vehicle").Build()) // nobody

	want := map[NodeID]int{"s1": 1, "s2": 2, "s3": 1}
	for sid, n := range want {
		if got := len(h.delivered[sid]); got != n {
			t.Errorf("%s delivered %d, want %d", sid, got, n)
		}
	}
	// No duplicates anywhere.
	for sid, evs := range h.delivered {
		seen := map[uint64]bool{}
		for _, e := range evs {
			if seen[e.ID] {
				t.Errorf("%s received duplicate event %d", sid, e.ID)
			}
			seen[e.ID] = true
		}
	}
}

func TestPreFilteringLimitsTraffic(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`))
	// Publish one matching and many irrelevant events.
	h.publish(event.NewBuilder("Stock").Str("symbol", "DEF").Float("price", 5).Build())
	for i := range 20 {
		h.publish(event.NewBuilder("Auction").Str("product", "X").Int("capacity", int64(i)).Build())
	}
	// The root received everything; the stage-1 node only the match.
	stage1 := h.placed["s1"]
	if got := h.root.Counters().Received(); got != 21 {
		t.Errorf("root received %d, want 21", got)
	}
	if got := stage1.Counters().Received(); got != 1 {
		t.Errorf("stage-1 received %d, want 1 (pre-filtering failed)", got)
	}
}

func TestRenewalKeepsSubscriptionAlive(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	f := filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`)
	node := h.subscribe(t, "s1", f)
	stored := node.Table().Filters()[0]

	// Before 3×TTL the lease is alive.
	h.now = t0.Add(2 * time.Minute)
	if removed := node.Sweep(h.now); len(removed) != 0 {
		t.Fatalf("premature expiry: %v removed", removed)
	}
	// Renewal extends the lease past the original deadline.
	if !node.HandleRenew(stored, "s1", h.now) {
		t.Fatal("renewal rejected for live association")
	}
	h.now = t0.Add(4 * time.Minute) // original deadline (3m) passed
	if removed := node.Sweep(h.now); len(removed) != 0 {
		t.Fatalf("renewed lease expired early: %v removed", removed)
	}
	// Without further renewals the association dies at 2m+3m.
	h.now = t0.Add(6 * time.Minute)
	if removed := node.Sweep(h.now); len(removed) != 1 {
		t.Fatalf("expired lease not removed: %v", removed)
	}
	if node.Table().Len() != 0 {
		t.Error("table not empty after expiry")
	}
}

func TestRenewalUnknownAssociation(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	f := filter.MustParseFilter(`class = "Stock" && symbol = "X"`)
	if h.root.HandleRenew(f, "ghost", h.now) {
		t.Error("renewing an unknown association should fail")
	}
}

func TestRenewalsDue(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`))
	node := h.placed["s1"]
	due := node.RenewalsDue()
	if len(due) != 1 {
		t.Fatalf("RenewalsDue = %v", due)
	}
	want := filter.MustParseFilter(`class = "Stock" && symbol = "DEF"`)
	if !filter.Covers(due[0], want, nil) || !filter.Covers(want, due[0], nil) {
		t.Errorf("renewal filter = %s, want equivalent of %s", due[0], want)
	}
	if h.root.RenewalsDue() != nil {
		t.Error("root should have no renewals due")
	}
}

func TestExpiryCascadesUpward(t *testing.T) {
	// When a stage-1 node stops renewing, the parent's lease expires and
	// events stop flowing into the abandoned subtree.
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`))
	leaf := h.placed["s1"]
	parent := h.nodes[leaf.Parent()]

	// Simulate the leaf's renewal task running once at +2m.
	h.now = t0.Add(2 * time.Minute)
	for _, f := range leaf.RenewalsDue() {
		if !parent.HandleRenew(f, leaf.ID(), h.now) {
			t.Fatal("parent rejected renewal")
		}
	}
	// At +4m the parent still holds the association (renewed until +5m);
	// the root (never renewed) dropped its lease from +3m.
	h.now = t0.Add(4 * time.Minute)
	parent.Sweep(h.now)
	h.root.Sweep(h.now)
	if parent.Table().Len() != 1 {
		t.Error("parent lost renewed association")
	}
	if h.root.Table().Len() != 0 {
		t.Error("root kept unrenewed association")
	}
}

func TestWildcardSubscriptionPlacement(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	// fx of Section 4.4: price unspecified. With the Example 5 Stock
	// association (price used through stage 1), the subscriber attaches
	// at stage 2.
	fx := filter.MustParseFilter(`class = "Stock" && symbol = "DEF"`)
	n := h.subscribe(t, "w1", fx)
	if n.Stage() != 2 {
		t.Errorf("wildcard subscription landed at stage %d, want 2", n.Stage())
	}
	// Events still reach the subscriber exactly once.
	h.publish(event.NewBuilder("Stock").Str("symbol", "DEF").Float("price", 42).Build())
	h.publish(event.NewBuilder("Stock").Str("symbol", "GHI").Float("price", 1).Build())
	if got := len(h.delivered["w1"]); got != 1 {
		t.Errorf("wildcard subscriber got %d events, want 1", got)
	}
}

func TestWildcardOnMostGeneralAttributeGoesToRoot(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	// symbol is the most general Stock attribute (used through stage 2),
	// so a subscription leaving it open attaches at stage 3 (the root).
	fy := filter.MustParseFilter(`class = "Stock" && price < 100`)
	n := h.subscribe(t, "w2", fy)
	if n.Stage() != 3 {
		t.Errorf("broad wildcard landed at stage %d, want 3 (root)", n.Stage())
	}
	h.publish(event.NewBuilder("Stock").Str("symbol", "ANY").Float("price", 5).Build())
	if got := len(h.delivered["w2"]); got != 1 {
		t.Errorf("delivered %d, want 1", got)
	}
}

func TestSubscriberNeverUsedAsRedirectTarget(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	// A wildcard subscriber attaches at stage 2 with a broad filter.
	h.subscribe(t, "w1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF"`))
	// A narrower subscription covered by w1's stored filter must not be
	// redirected to the subscriber id; it must land at a broker.
	n := h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10`))
	if _, ok := h.nodes[n.ID()]; !ok {
		t.Fatalf("subscription landed at non-broker %q", n.ID())
	}
	if n.Stage() != 1 {
		t.Errorf("covered subscription landed at stage %d, want 1", n.Stage())
	}
}

func TestUnsubscribeImmediate(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	f := filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`)
	node := h.subscribe(t, "s1", f)
	stored := node.Table().Filters()[0]
	node.HandleUnsubscribe(stored, "s1")
	if node.Table().Len() != 0 {
		t.Error("unsubscribe left the filter behind")
	}
	h.publish(event.NewBuilder("Stock").Str("symbol", "DEF").Float("price", 5).Build())
	if len(h.delivered["s1"]) != 0 {
		t.Error("unsubscribed subscriber still received events")
	}
}

func TestZeroTTLMeansNoExpiry(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), 0)
	node := h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF"`))
	h.now = t0.Add(24 * 365 * time.Hour)
	if removed := node.Sweep(h.now); len(removed) != 0 {
		t.Errorf("zero TTL expired %v associations", removed)
	}
}

func TestDegenerateHierarchySingleNode(t *testing.T) {
	w := stockWeakener(t)
	root := NewNode(Config{ID: "only", Stage: 1, TTL: time.Minute, Weakener: w})
	rng := rand.New(rand.NewPCG(1, 1))
	res := root.HandleSubscribe(filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 1`), "s1", rng, t0)
	if res.Action != ActionAccept {
		t.Fatalf("single-node hierarchy should accept directly, got %v", res.Action)
	}
	if res.Up != nil {
		t.Error("root must not propagate upward")
	}
	ids := root.HandleEvent(event.NewBuilder("Stock").Str("symbol", "A").Float("price", 0.5).Build())
	if len(ids) != 1 || ids[0] != "s1" {
		t.Errorf("forwarding = %v, want [s1]", ids)
	}
}

func TestTableFindCoveringPrefersStrongest(t *testing.T) {
	tab := NewTable(index.Config{})
	weakF := filter.MustParseFilter(`class = "Stock"`)
	strongF := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	tab.Insert(weakF, "cWeak", t0.Add(time.Hour))
	tab.Insert(strongF, "cStrong", t0.Add(time.Hour))
	sub := filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 5`)
	id, ok := tab.FindCovering(sub, nil, nil)
	if !ok || id != "cStrong" {
		t.Errorf("FindCovering = %q,%v; want cStrong", id, ok)
	}
	// validTarget masks the strong candidate.
	id, ok = tab.FindCovering(sub, nil, func(n NodeID) bool { return n == "cWeak" })
	if !ok || id != "cWeak" {
		t.Errorf("FindCovering masked = %q,%v; want cWeak", id, ok)
	}
	// No candidate at all.
	if _, ok := tab.FindCovering(filter.MustParseFilter(`class = "Auction"`), nil, nil); ok {
		t.Error("FindCovering should fail for uncovered filter")
	}
}

func TestTableSweepBoundary(t *testing.T) {
	tab := NewTable(index.Config{})
	f := filter.MustParseFilter(`x = 1`)
	tab.Insert(f, "a", t0.Add(time.Minute))
	if n := tab.Sweep(t0.Add(time.Minute - time.Nanosecond)); len(n) != 0 {
		t.Errorf("swept %v before expiry", n)
	}
	if n := tab.Sweep(t0.Add(time.Minute)); len(n) != 1 {
		t.Errorf("sweep at expiry = %v, want 1", n)
	}
}

func TestHandleEventCounters(t *testing.T) {
	h := newHierarchy(t, stockWeakener(t), time.Minute)
	h.subscribe(t, "s1", filter.MustParseFilter(`class = "Stock" && symbol = "DEF" && price < 10.0`))
	h.publish(event.NewBuilder("Stock").Str("symbol", "DEF").Float("price", 5).Build())
	h.publish(event.NewBuilder("Stock").Str("symbol", "OTHER").Float("price", 5).Build())
	if got := h.root.Counters().Received(); got != 2 {
		t.Errorf("root received = %d, want 2", got)
	}
	if got := h.root.Counters().Matched(); got != 2 {
		// Root filters on class only: both Stock events match.
		t.Errorf("root matched = %d, want 2", got)
	}
	leaf := h.placed["s1"]
	if got := leaf.Counters().Matched(); got != 1 {
		t.Errorf("leaf matched = %d, want 1", got)
	}
}

func BenchmarkHandleSubscribePlacement(b *testing.B) {
	w := stockWeakener(b)
	h := newHierarchy(b, w, time.Minute)
	rng := rand.New(rand.NewPCG(9, 9))
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		sym := fmt.Sprintf("S%d", rng.IntN(50))
		f := filter.New("Stock",
			filter.C("symbol", filter.OpEq, event.String(sym)),
			filter.C("price", filter.OpLt, event.Float(float64(rng.IntN(100)))),
		)
		h.subscribe(b, NodeID(fmt.Sprintf("s%d", i)), f)
	}
}
