package routing

import (
	"math/rand/v2"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
	"eventsys/internal/weaken"
)

// Config assembles a broker node.
type Config struct {
	// ID is the node's identity in the overlay.
	ID NodeID
	// Stage is the node's filtering stage (1 = closest to subscribers;
	// the root carries the highest stage). Stage 0 is the subscriber
	// runtime, which is not a Node.
	Stage int
	// Parent is the node's parent, empty for the root.
	Parent NodeID
	// Children are the broker children (used for random placement
	// descent; subscriber associations are added dynamically).
	Children []NodeID
	// TTL is the subscription lease renewal period. Associations expire
	// after 3×TTL without renewal (Section 4.3). Zero disables expiry.
	TTL time.Duration
	// Conf resolves event type conformance; nil means exact matching.
	Conf filter.Conformance
	// Weakener derives stage filters/events; nil constructs a schema-less
	// weakener (class-only filters above stage 0).
	Weakener *weaken.Weakener
	// Counters receives the node's statistics; nil allocates private
	// counters.
	Counters *metrics.Counters
	// Engine selects and parameterizes the matching engine. The zero
	// value explicitly names the naive Figure 6 table; Engine.Conf
	// defaults to this node's Conf when left nil.
	Engine index.Config
}

// Node is a broker in the multi-stage hierarchy. It is pure logic, not
// safe for concurrent use; runtimes serialize access per node.
type Node struct {
	id       NodeID
	stage    int
	parent   NodeID
	children map[NodeID]bool
	childIDs []NodeID
	ttl      time.Duration
	conf     filter.Conformance
	weak     *weaken.Weakener
	table    *Table
	counters *metrics.Counters
}

// NewNode builds a node from the configuration.
func NewNode(cfg Config) *Node {
	n := &Node{
		id:       cfg.ID,
		stage:    cfg.Stage,
		parent:   cfg.Parent,
		children: make(map[NodeID]bool, len(cfg.Children)),
		ttl:      cfg.TTL,
		conf:     cfg.Conf,
		weak:     cfg.Weakener,
		counters: cfg.Counters,
	}
	if n.conf == nil {
		n.conf = filter.ExactTypes{}
	}
	if n.weak == nil {
		n.weak = weaken.New(nil, n.conf)
	}
	if n.counters == nil {
		n.counters = &metrics.Counters{}
	}
	ecfg := cfg.Engine
	if ecfg.Conf == nil {
		ecfg.Conf = n.conf
	}
	n.table = NewTable(ecfg)
	for _, c := range cfg.Children {
		n.children[c] = true
		n.childIDs = append(n.childIDs, c)
	}
	return n
}

// ID returns the node identity.
func (n *Node) ID() NodeID { return n.id }

// Stage returns the node's filtering stage.
func (n *Node) Stage() int { return n.stage }

// Parent returns the node's parent ID ("" at the root).
func (n *Node) Parent() NodeID { return n.parent }

// IsRoot reports whether the node has no parent.
func (n *Node) IsRoot() bool { return n.parent == "" }

// Table exposes the routing table (primarily for inspection and tests).
func (n *Node) Table() *Table { return n.table }

// Counters exposes the node's statistics counters.
func (n *Node) Counters() *metrics.Counters { return n.counters }

// leaseExpiry computes the lease deadline for an association created or
// renewed at now: 3×TTL per Section 4.3 ("REMOVE INVALID FILTERS at the
// end of each 3×TTL periods").
func (n *Node) leaseExpiry(now time.Time) time.Time {
	if n.ttl == 0 {
		// Effectively immortal.
		return now.Add(100 * 365 * 24 * time.Hour)
	}
	return now.Add(3 * n.ttl)
}

// SubscribeAction tells the subscriber what to do next in the Figure 5
// placement protocol.
type SubscribeAction int

const (
	// ActionRedirect: re-send the subscription to Target (join-At).
	ActionRedirect SubscribeAction = iota + 1
	// ActionAccept: the subscriber joined this node (accepted-At).
	ActionAccept
)

// SubscribeResult is the node's response to a Subscription(fsub) message.
type SubscribeResult struct {
	Action SubscribeAction
	// Target is the child to re-send the subscription to (redirect only).
	Target NodeID
	// Stored is the weakened filter this node stored for the subscriber
	// (accept only); the subscriber renews this filter.
	Stored *filter.Filter
	// Up is the filter to req-Insert at the parent (accept only, nil at
	// the root or when the stored filter was already known).
	Up *filter.Filter
}

// HandleSubscribe implements the node side of the Figure 5(b) automaton
// for a Subscription(fsub) received from subscriber sid. rng drives the
// random descent (step 3); now drives lease creation on acceptance.
func (n *Node) HandleSubscribe(fsub *filter.Filter, sid NodeID, rng *rand.Rand, now time.Time) SubscribeResult {
	fstd := n.standardize(fsub)
	if n.stage > 1 {
		// Step 2: strongest stored covering filter wins; only broker
		// children are valid redirect targets.
		if target, ok := n.table.FindCovering(fstd, n.conf, func(id NodeID) bool { return n.children[id] }); ok {
			return SubscribeResult{Action: ActionRedirect, Target: target}
		}
		// Step 3: wildcard subscriptions attach at the stage just above
		// the top stage using their most general wildcard attribute.
		if wilds := fstd.WildcardAttrs(); len(wilds) > 0 {
			if insertStage, ok := n.wildcardInsertStage(fstd, wilds); ok {
				if n.stage == insertStage {
					return n.insertSubscriber(fstd, sid, now)
				}
				// Descend toward the insert stage (or stage 1 if the
				// computed stage is below us on this path).
			}
		}
		if len(n.childIDs) == 0 {
			// Degenerate hierarchy (no broker children): accept here.
			return n.insertSubscriber(fstd, sid, now)
		}
		child := n.childIDs[rng.IntN(len(n.childIDs))]
		return SubscribeResult{Action: ActionRedirect, Target: child}
	}
	// Step 4: stage-1 nodes accept the subscriber.
	return n.insertSubscriber(fstd, sid, now)
}

// SubscribeLocal accepts a subscription at this node unconditionally,
// bypassing the Figure 5 placement walk. Consumer groups need this:
// every member must land at the broker it dialed, or one group would
// split across brokers into independently-consuming halves.
func (n *Node) SubscribeLocal(fsub *filter.Filter, sid NodeID, now time.Time) SubscribeResult {
	return n.insertSubscriber(n.standardize(fsub), sid, now)
}

// standardize converts fsub to the standard subscription filter format
// (Section 4.4) when the class is advertised.
func (n *Node) standardize(fsub *filter.Filter) *filter.Filter {
	if n.weak == nil || n.weak.Ads == nil || fsub.Class == "" {
		return fsub
	}
	ad, ok := n.weak.Ads.Get(fsub.Class)
	if !ok {
		return fsub
	}
	return fsub.Standardize(filter.SchemaOf(ad.Attrs...))
}

// wildcardInsertStage computes the stage at which a wildcard subscription
// should attach: one above the top stage at which its most general
// wildcard attribute is still used (HANDLE-WILDCARD-SUBS, Section 4.5),
// clamped to this hierarchy's stages.
func (n *Node) wildcardInsertStage(fstd *filter.Filter, wilds []string) (int, bool) {
	if n.weak == nil || n.weak.Ads == nil || fstd.Class == "" {
		return 0, false
	}
	ad, ok := n.weak.Ads.Get(fstd.Class)
	if !ok {
		return 0, false
	}
	// The standard form orders attributes most general first, so the
	// first wildcard in it is the most general one.
	attrMG := wilds[0]
	top, ok := ad.TopStageFor(attrMG)
	if !ok {
		return 0, false
	}
	insert := top + 1
	if insert < 1 {
		insert = 1
	}
	if insert > n.stage {
		insert = n.stage // clamp: cannot attach above the current path
	}
	return insert, true
}

// insertSubscriber is INSERT-SUBSCRIBER of Figure 5(b): store the filter
// weakened for this stage against the subscriber ID, and compute the
// further-weakened filter to req-Insert at the parent.
func (n *Node) insertSubscriber(fstd *filter.Filter, sid NodeID, now time.Time) SubscribeResult {
	stored := n.weak.Filter(fstd, n.stage)
	isNew := n.insert(stored, sid, now)
	res := SubscribeResult{Action: ActionAccept, Stored: stored}
	if !n.IsRoot() && isNew {
		res.Up = n.weak.Filter(fstd, n.stage+1)
	}
	return res
}

// HandleReqInsert processes req-Insert(fc, child): store the association
// and return the filter to propagate to the parent (nil at the root or
// when fc was already stored, in which case the parent already knows).
func (n *Node) HandleReqInsert(fc *filter.Filter, child NodeID, now time.Time) (up *filter.Filter) {
	isNew := n.insert(fc, child, now)
	if n.IsRoot() || !isNew {
		return nil
	}
	return n.weak.Filter(fc, n.stage+1)
}

// insert adds the association and reports whether the filter itself was
// new to the table.
func (n *Node) insert(f *filter.Filter, id NodeID, now time.Time) bool {
	before := n.table.Len()
	n.table.Insert(f, id, n.leaseExpiry(now))
	n.counters.SetFilters(n.table.Len())
	return n.table.Len() > before
}

// HandleRenew refreshes the lease on (f, id); it reports whether the
// association was known (a false result tells the sender to re-subscribe).
func (n *Node) HandleRenew(f *filter.Filter, id NodeID, now time.Time) bool {
	return n.table.Renew(f, id, n.leaseExpiry(now))
}

// HandleUnsubscribe removes the association immediately (the explicit
// complement of lease expiry).
func (n *Node) HandleUnsubscribe(f *filter.Filter, id NodeID) {
	n.table.Remove(f, id)
	n.counters.SetFilters(n.table.Len())
}

// Sweep expires stale associations; it returns the number removed.
func (n *Node) Sweep(now time.Time) []NodeID {
	removed := n.table.Sweep(now)
	if len(removed) > 0 {
		n.counters.SetFilters(n.table.Len())
	}
	return removed
}

// RenewalsDue returns the distinct filters this node must renew with its
// parent: the parent-stage weakening of every stored filter. Computing
// from the live table keeps renewals exact after sweeps — filters no
// longer needed simply stop being renewed and expire upstream.
func (n *Node) RenewalsDue() []*filter.Filter {
	if n.IsRoot() {
		return nil
	}
	seen := make(map[string]*filter.Filter)
	var order []string
	for _, f := range n.table.Filters() {
		up := n.weak.Filter(f, n.stage+1)
		key := up.Key()
		if _, ok := seen[key]; !ok {
			seen[key] = up
			order = append(order, key)
		}
	}
	out := make([]*filter.Filter, len(order))
	for i, k := range order {
		out[i] = seen[k]
	}
	return out
}

// HandleEvent filters an incoming event and returns the IDs to forward it
// to (broker children and directly attached subscribers). Counters are
// updated per Section 5.1: every received event counts, an event counts
// as matched when at least one filter accepted it, and each forwarded
// copy counts individually.
func (n *Node) HandleEvent(e event.View) []NodeID {
	n.counters.AddReceived(1)
	ids, matched := n.table.Match(e)
	if matched > 0 {
		n.counters.AddMatched(1)
	}
	n.counters.AddForwarded(uint64(len(ids)))
	return ids
}

// HandleEventBatch filters a batch of incoming events in one table pass
// and returns, positionally aligned with events, the IDs to forward each
// event to. Per-event counter semantics match HandleEvent exactly; in
// addition the pass is recorded in the batch-efficiency counters
// (BatchesMatched, BatchSizeSum). Runtimes that coalesce queued publishes
// call this instead of per-event HandleEvent so the matching engine can
// amortize — and, with the sharded engine, parallelize — the batch.
func (n *Node) HandleEventBatch(events []event.View) [][]NodeID {
	if len(events) == 0 {
		return nil
	}
	ids, matched := n.table.MatchBatch(events)
	var matchedEvents, forwarded uint64
	for i := range events {
		if matched[i] > 0 {
			matchedEvents++
		}
		forwarded += uint64(len(ids[i]))
	}
	n.counters.AddReceived(uint64(len(events)))
	n.counters.AddMatched(matchedEvents)
	n.counters.AddForwarded(forwarded)
	n.counters.AddBatchesMatched(1)
	n.counters.AddBatchSizeSum(uint64(len(events)))
	return ids
}

// TransformEventFor projects the event for transmission toward a child at
// the given stage (Proposition 2). Runtimes may call this to model the
// meta-data-only representation traveling through upper stages.
func (n *Node) TransformEventFor(e *event.Event, stage int) *event.Event {
	return n.weak.Event(e, stage)
}

// IsChild reports whether id is a broker child of this node.
func (n *Node) IsChild(id NodeID) bool { return n.children[id] }

// Children returns the broker children in configuration order.
func (n *Node) Children() []NodeID { return n.childIDs }

// AddChild registers a broker child at runtime (networked deployments
// where children connect dynamically). Duplicate adds are no-ops.
func (n *Node) AddChild(id NodeID) {
	if n.children[id] {
		return
	}
	n.children[id] = true
	n.childIDs = append(n.childIDs, id)
}

// RemoveChild unregisters a broker child (e.g. on disconnect). Routing
// state referring to the child remains until its leases expire.
func (n *Node) RemoveChild(id NodeID) {
	if !n.children[id] {
		return
	}
	delete(n.children, id)
	for i, c := range n.childIDs {
		if c == id {
			n.childIDs = append(n.childIDs[:i], n.childIDs[i+1:]...)
			break
		}
	}
}
