package broker

import (
	"strings"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/metrics"
	"eventsys/internal/obs"
	"eventsys/internal/routing"
	"eventsys/internal/store"
	"eventsys/internal/transport"
)

// Consumer groups — all state here is core-owned.
//
// A consumer group is N subscribers sharing one logical subscription:
// each matching event goes to exactly one member (round-robin) instead
// of every member, so adding members divides the stream. The group
// subscribes under a reserved routing ID ("@group/<name>") via
// routing.Node.SubscribeLocal — bypassing the Figure 5 placement walk,
// because a group split across brokers would be two groups — and owns
// one durable cursor under that ID: events arriving with no member
// connected (or none with queue space) spill there and replay, oldest
// first, when a member returns.
//
// Delivery is at-least-once. Every live delivery claims a lease
// (store.LeaseTable): the member acknowledges the delivery's sequence
// after its handler runs, and an unacknowledged lease redelivers to a
// surviving member when the holder disconnects — immediately — or when
// its deadline lapses (GroupLeaseTTL, swept on the TTL tick). A
// redelivered event may land behind younger traffic; groups trade
// per-source ordering for shared throughput, exactly like competing
// consumers everywhere else.

// groupSubPrefix namespaces group routing IDs inside the reserved "@"
// space (alongside "@peer/" spools and "@child/" aggregates), so a plain
// subscriber can never collide with a group's cursor.
const groupSubPrefix = "@group/"

// DefaultGroupLeaseTTL is the redelivery deadline for unacknowledged
// group deliveries when GroupLeaseTTL is unset.
const DefaultGroupLeaseTTL = 10 * time.Second

type consumerGroup struct {
	name string
	gid  string // groupSubPrefix + name: routing ID and durable cursor
	// members in join order; next is the round-robin cursor.
	members []*peerConn
	next    int
	// filters refcounts the stored filters the members registered, so
	// the subscription survives until the last member holding a filter
	// leaves gracefully.
	filters map[string]*groupFilter
	// leases tracks in-flight deliveries; pending maps each open lease's
	// sequence to the event awaiting acknowledgment.
	leases  *store.LeaseTable
	pending map[uint64]*event.Raw

	delivered   uint64
	redelivered uint64
}

type groupFilter struct {
	stored *filter.Filter
	refs   int
}

func (s *Server) groupLeaseDeadline() time.Time {
	return time.Now().Add(s.cfg.GroupLeaseTTL)
}

// handleGroupSubscribe admits a connection as a member of the named
// group, creating the group on first join.
func (s *Server) handleGroupSubscribe(pc *peerConn, msg transport.Subscribe) {
	if msg.SubscriberID == "" || strings.HasPrefix(msg.SubscriberID, "@") ||
		strings.HasPrefix(msg.Group, "@") {
		s.log.Warn("rejecting group subscribe",
			"group", msg.Group, "member", msg.SubscriberID)
		s.sendTo(pc, transport.SubscribeReply{Accepted: false})
		return
	}
	gid := groupSubPrefix + msg.Group
	g := s.groups[gid]
	if g == nil {
		g = &consumerGroup{
			name:    msg.Group,
			gid:     gid,
			filters: make(map[string]*groupFilter),
			leases:  store.NewLeaseTable(),
			pending: make(map[uint64]*event.Raw),
		}
		s.groups[gid] = g
	}
	res := s.node.SubscribeLocal(msg.Filter, routing.NodeID(gid), time.Now())
	if gf := g.filters[res.Stored.Key()]; gf != nil {
		gf.refs++
	} else {
		g.filters[res.Stored.Key()] = &groupFilter{stored: res.Stored, refs: 1}
	}
	if s.store != nil {
		if _, _, err := s.store.Register(gid); err != nil {
			s.log.Warn("store register failed", "group", g.name, "err", err)
		}
	}
	g.members = append(g.members, pc)
	s.groupOf[pc] = g
	s.sendTo(pc, transport.SubscribeReply{Accepted: true, Stored: res.Stored})
	if res.Up != nil && s.parent != nil {
		s.sendTo(s.parent, transport.ReqInsert{ChildID: s.cfg.ID, Filter: res.Up})
	}
	// The group's interest joins the federation plane under its own ID,
	// so events published at peer brokers route here too.
	s.fanUpdates(s.fed.Subscribe(gid, msg.Filter))
	s.log.Info("consumer group member joined",
		"group", g.name, "member", msg.SubscriberID, "members", len(g.members))
	// Backlog accrued while the group had no (free) member drains to the
	// newcomer and its peers — after the reply, before any live event.
	s.replayGroup(g)
}

// routeToGroup hands one matched event to the group: durable backlog
// first (FIFO against the group's cursor, exactly as routeToSubscriber
// keeps it for individuals), then competing delivery to a live member,
// spilling to the cursor when no member can take it.
func (s *Server) routeToGroup(g *consumerGroup, ev *event.Raw) {
	if s.store != nil && s.store.Pending(g.gid) > 0 && s.replayGroup(g) > 0 {
		if s.storeFor(g.gid, ev) {
			s.counters.AddSpilled(1)
		} else {
			s.counters.AddDroppedFor(metrics.DropNoStore, 1)
		}
		return
	}
	if s.deliverToGroup(g, ev, false) {
		return
	}
	if !s.storeFor(g.gid, ev) {
		s.counters.AddDroppedFor(metrics.DropConnClosed, 1)
	}
}

// deliverToGroup claims a lease and pushes ev to the next member. The
// first pass is non-blocking for every member — a saturated member must
// not starve a free one, which is the point of competing consumers.
// Only when every member is full does the blocking fallback engage, and
// only without a durable cursor to spill to (try suppresses it too:
// replay must never stall the core). An attempt whose push failed
// completes its lease — the event is re-claimed under a fresh sequence
// wherever it lands next.
func (s *Server) deliverToGroup(g *consumerGroup, ev *event.Raw, try bool) bool {
	if s.pushToMember(g, ev, true) {
		return true
	}
	if try || (s.store != nil && s.store.Known(g.gid)) {
		return false // caller spills to the durable cursor
	}
	return s.pushToMember(g, ev, false)
}

// pushToMember tries each live member once, round-robin, leasing the
// delivery on success.
func (s *Server) pushToMember(g *consumerGroup, ev *event.Raw, try bool) bool {
	for range g.members {
		pc := g.members[g.next%len(g.members)]
		g.next++
		seq := g.leases.Claim(pc.id, s.groupLeaseDeadline())
		ok := false
		if try {
			ok = pc.out.TryPush(transport.Deliver{Seq: seq, Event: ev})
		} else {
			ok = pc.out.Push(transport.Deliver{Seq: seq, Event: ev}) != flow.Stopped
		}
		if ok {
			g.pending[seq] = ev
			g.delivered++
			s.tracer.Observe(obs.HopForward, ev.Stamp())
			return true
		}
		g.leases.Complete(seq)
	}
	return false
}

// replayGroup drains the group's stored backlog into its members'
// queues (round-robin, leased like live traffic, non-blocking) and
// returns the backlog still pending.
func (s *Server) replayGroup(g *consumerGroup) (remaining int) {
	if s.store == nil {
		return 0
	}
	if len(g.members) == 0 || s.store.Pending(g.gid) == 0 {
		return s.store.Pending(g.gid)
	}
	n, err := s.store.Replay(g.gid, func(ev *event.Raw) bool {
		return s.deliverToGroup(g, ev, true)
	})
	if err != nil {
		s.log.Warn("group replay failed", "group", g.name, "err", err)
	}
	if n > 0 {
		s.counters.AddStoreReplayed(uint64(n))
		s.log.Info("replayed group backlog", "group", g.name, "events", n)
	}
	return s.store.Pending(g.gid)
}

// ackGroupDelivery completes a member's acknowledged lease. Unknown or
// duplicate sequences (a slow member acknowledging after its lease
// expired and redelivered) are ignored — acknowledgment is idempotent.
func (s *Server) ackGroupDelivery(g *consumerGroup, seq uint64) {
	if g.leases.Complete(seq) {
		delete(g.pending, seq)
	}
}

// redeliverGroupLeases re-routes the events behind a batch of forfeited
// leases (an expired deadline, or a dead member's outstanding claims):
// to a surviving member when one can take them, else to the durable
// cursor.
func (s *Server) redeliverGroupLeases(g *consumerGroup, leases []store.Lease) {
	for _, l := range leases {
		ev := g.pending[l.Seq]
		delete(g.pending, l.Seq)
		if ev == nil {
			continue
		}
		g.redelivered++
		if s.deliverToGroup(g, ev, false) {
			continue
		}
		if !s.storeFor(g.gid, ev) {
			s.counters.AddDroppedFor(metrics.DropConnClosed, 1)
		}
	}
}

// sweepGroupLeases redelivers every group delivery whose lease deadline
// passed without an acknowledgment — the silent-stall safety net behind
// the immediate disconnect path.
func (s *Server) sweepGroupLeases(now time.Time) {
	for _, g := range s.groups {
		exp := g.leases.Expired(now)
		if len(exp) == 0 {
			continue
		}
		s.log.Warn("group leases expired; redelivering",
			"group", g.name, "count", len(exp))
		s.redeliverGroupLeases(g, exp)
	}
}

// removeGroupMember detaches a connection from its group. Death
// (graceful=false) redelivers the member's in-flight events and keeps
// the subscription — backlog accrues durably for the survivors or a
// rejoin. A graceful leave also releases the member's filter reference;
// when the last reference goes, the group unsubscribes and its cursor
// is forgotten.
func (s *Server) removeGroupMember(pc *peerConn, g *consumerGroup, graceful bool, f *filter.Filter) {
	delete(s.groupOf, pc)
	for i, m := range g.members {
		if m == pc {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	s.redeliverGroupLeases(g, g.leases.OwnedBy(pc.id))
	if !graceful {
		s.log.Warn("consumer group member lost",
			"group", g.name, "member", pc.id, "members", len(g.members))
		return
	}
	if f != nil {
		if gf := g.filters[f.Key()]; gf != nil {
			gf.refs--
			if gf.refs <= 0 {
				delete(g.filters, f.Key())
				s.node.HandleUnsubscribe(gf.stored, routing.NodeID(g.gid))
			}
		}
	}
	if len(g.members) == 0 && len(g.filters) == 0 {
		delete(s.groups, g.gid)
		if s.store != nil {
			s.store.Forget(g.gid)
		}
		s.fed.Unsubscribe(g.gid)
		s.log.Info("consumer group dissolved", "group", g.name)
	}
}

// dropGroup discards a group whose routing lease lapsed (tickSweep
// found its table entry expired): detach any lingering members and drop
// the delivery state. The generic sweep path already forgot the cursor
// and left the federation plane. No-op for non-group IDs.
func (s *Server) dropGroup(id string) {
	g := s.groups[id]
	if g == nil {
		return
	}
	delete(s.groups, id)
	for _, pc := range g.members {
		delete(s.groupOf, pc)
	}
	s.log.Info("consumer group lapsed", "group", g.name)
}
