package broker

import (
	"io"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/transport"
)

// TestOneDecodePerProcessPipeline pins the zero-copy invariant across
// the whole networked pipeline — publish → broker match/forward → peer
// relay → store spill → replay → deliver: the only full event
// materializations in this process are the ones the subscriber clients
// perform on delivered events (one per delivered event, counted by the
// event.DecodeCount test hook). Brokers match, forward, spill and
// replay raw bytes without ever building an *event.Event.
func TestOneDecodePerProcessPipeline(t *testing.T) {
	dir := t.TempDir()
	a := startPeer(t, "A", ServerConfig{})
	b := startPeer(t, "B", ServerConfig{DataDir: dir, SyncEvery: 1}, a.Addr())
	waitPeersUp(t, a, 1)
	waitPeersUp(t, b, 1)

	f := filter.MustParseFilter(`class = "Stock" && symbol = "X"`)
	// Subscribe by hand so the connection can later be severed without
	// unsubscribing (a crashing client keeps its durable cursor).
	c := rawSubscribe(t, b.Addr(), "carol", f)
	waitFor(t, "A to learn carol's interest", func() bool {
		return a.FederationFilters() == 1
	})

	pub, err := DialPublisher(a.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	base := event.DecodeCount()

	// Phase 1: live path. Publish 3 events at A; 2 match carol's filter
	// and cross the peer link to B; 1 does not match and dies at A
	// without ever being decoded anywhere.
	for i, sym := range []string{"X", "Y", "X"} {
		ev := event.NewBuilder("Stock").Str("symbol", sym).ID(uint64(i + 1)).Build()
		if err := pub.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	ids := []uint64{readDeliver(t, c).ID, readDeliver(t, c).ID}
	if ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("live deliveries = %v, want [1 3]", ids)
	}
	// Two delivered events were materialized by readDeliver above; the
	// brokers and the non-matching event contributed zero.
	if d := event.DecodeCount() - base; d != 2 {
		t.Fatalf("live path decoded %d times, want 2 (one per delivered event)", d)
	}

	// Phase 2: spill path. Sever the connection; matching events now
	// persist in B's durable store — straight from the wire bytes, no
	// materialization.
	c.Close()
	waitFor(t, "B to drop carol's connection", func() bool {
		gone := false
		b.coreQuery(func() { _, ok := b.byID["carol"]; gone = !ok })
		return gone
	})
	base = event.DecodeCount()
	for i := 0; i < 3; i++ {
		ev := event.NewBuilder("Stock").Str("symbol", "X").ID(uint64(10 + i)).Build()
		if err := pub.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "spill to B's store", func() bool { return b.store.Pending("carol") == 3 })
	if d := event.DecodeCount() - base; d != 0 {
		t.Fatalf("spill path decoded %d times, want 0", d)
	}

	// Phase 3: replay path. Reconnect; the backlog replays — raw bytes
	// from disk to the wire — and only the subscriber client decodes.
	base = event.DecodeCount()
	var replayed collector
	sub2, err := DialSubscriber(b.Addr(), "carol", f, SubscriberOptions{}, replayed.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	waitFor(t, "replayed deliveries", func() bool { return replayed.len() == 3 })
	if d := event.DecodeCount() - base; d != 3 {
		t.Fatalf("replay path decoded %d times, want 3 (one per replayed event)", d)
	}
}

// TestForwardPathAllocs bounds the per-event work of the raw forward
// path: matching a raw event against a filter allocates nothing, and
// framing it for the next hop runs from the pooled write buffer.
func TestForwardPathAllocs(t *testing.T) {
	ev := event.NewBuilder("Stock").Str("symbol", "X").Float("price", 9.5).ID(1).Build()
	raw, err := event.ParseRaw(event.AppendEncoded(nil, ev), event.NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	f := filter.MustParseFilter(`class = "Stock" && symbol = "X" && price < 10`)
	if avg := testing.AllocsPerRun(200, func() {
		if !f.Matches(raw, nil) {
			t.Fatal("must match")
		}
	}); avg > 0 {
		t.Errorf("raw filter match allocates %.1f/op, want 0", avg)
	}
	// Pre-box the message: on the broker's write path the frame is
	// already a Message by the time it reaches the writer.
	var frame transport.Message = transport.Forward{Event: raw}
	if avg := testing.AllocsPerRun(200, func() {
		if err := transport.WriteFrame(io.Discard, frame); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Errorf("raw frame write allocates %.1f/op, want 0", avg)
	}
}
