// Package broker implements the networked deployment of the multi-stage
// event system: each broker node is a TCP server owning a routing.Node
// core. Child brokers dial their parents (announcing their own listen
// address), publishers inject events at the root, and subscribers walk
// the Figure 5 placement protocol by following join-At redirects from
// broker to broker.
//
// Beyond the parent/child hierarchy, brokers federate as peers over an
// acyclic mesh (ServerConfig.Peers): each link exchanges hop-weakened
// subscription state with covering-based pruning (internal/peering, the
// same core the in-process mesh runs), and events follow the reverse
// paths as Forward/ForwardBatch frames. A lost peer link keeps its
// learned interests; matching events spill to the durable store while
// the link is down and replay in order on reconnect, after a SubSet
// resync. See peer.go.
//
// Concurrency model mirrors the in-process overlay: one core goroutine
// owns the routing state; a reader goroutine per connection feeds it; a
// writer goroutine per connection drains the connection's outbound
// queues. Each connection has two: a priority channel for control
// frames (replies, subscription state, leases, credit grants) and a
// flow.Queue for event frames governed by ServerConfig.FlowPolicy —
// Block (lossless backpressure, the default), DropNewest, DropOldest,
// or SpillToStore (persist overflow to the durable store and replay in
// order). The core inlet is a flow.Queue under the same policy.
//
// Flow control propagates across TCP hops with Credit/CreditAck frames:
// the broker grants event credits to publishers, parents and federation
// peers as its core processes their events, and its own writers acquire
// credit granted by children, subscribers and peers before transmitting
// event frames. A saturated broker therefore stops granting, its
// upstreams stop sending, and — under Block — the original publisher
// itself stalls instead of anything being dropped. Control frames are
// never gated or shed. With a DataDir, events for a saturated or
// disconnected subscriber are persisted to the durable store and
// replayed when the subscriber re-subscribes with the same ID — so a
// leaf broker's undelivered backlog survives even its own restart.
package broker

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/index"
	"eventsys/internal/metrics"
	"eventsys/internal/obs"
	"eventsys/internal/peering"
	"eventsys/internal/routing"
	"eventsys/internal/store"
	"eventsys/internal/transport"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
)

// ServerConfig configures one broker process.
type ServerConfig struct {
	// ID is the broker's identity in the hierarchy (e.g. "N2.1").
	ID string
	// Stage is the broker's filtering stage (1 = leaf).
	Stage int
	// ListenAddr is the TCP address to listen on (":0" for ephemeral).
	ListenAddr string
	// ParentAddr is the parent broker's address; empty at the root.
	ParentAddr string
	// TTL is the lease period (Section 4.3); 0 disables expiry.
	TTL time.Duration
	// Registry resolves type conformance; nil = exact names.
	Registry *typing.Registry
	// Engine selects the matching engine (naive, counting, sharded, or indexed).
	// The zero value is the naive Figure 6 table.
	Engine index.Kind
	// Shards is the shard count of the sharded engine (Engine ==
	// index.KindSharded); 0 means GOMAXPROCS.
	Shards int
	// MaxBatch caps how many queued publish events the core coalesces
	// into one matching pass (default 64; 1 disables coalescing).
	MaxBatch int
	// Seed drives placement randomness.
	Seed uint64
	// Logger receives operational logs; nil discards them.
	Logger *slog.Logger
	// DataDir, when non-empty, roots a durable event store: events routed
	// to a disconnected (or saturated) subscriber are persisted instead
	// of dropped, survive a broker restart, and replay to the subscriber
	// when it reconnects with the same ID. Empty disables the store.
	DataDir string
	// SyncEvery is the store's fsync batching (see store.Options): 0 for
	// the default batch, 1 to fsync every append, negative to leave
	// syncing to the OS.
	SyncEvery int
	// StoreMaxBytes bounds the store's retained log; oldest segments are
	// evicted beyond it (0 = unbounded).
	StoreMaxBytes int64
	// Peers lists peer broker addresses to dial and keep dialed (with
	// reconnect) for mesh federation. Each edge is configured on exactly
	// one side — the other side only accepts — and the set is mutable at
	// runtime via AddPeer/RemovePeer/SetPeers. Cycles are allowed and
	// useful: the brokers elect a spanning tree over the links that are
	// up, and redundant edges stand by as failover paths that activate
	// when a broker or link dies.
	Peers []string
	// HeartbeatInterval paces PeerPing frames on federation links and the
	// dead-link scan (default 2s; negative disables heartbeats). TCP
	// resets already tear links down; the heartbeat catches the silent
	// failures — frozen processes, black-holed routes — that leave a
	// socket open but dead.
	HeartbeatInterval time.Duration
	// DeadLinkTimeout closes a federation link that has received no
	// frame for this long (default 4× HeartbeatInterval). Closing it
	// triggers the same reconnect-and-reelect path as a TCP reset.
	DeadLinkTimeout time.Duration
	// PeerMaxStage clamps hop-distance weakening of subscription state
	// propagated to peers (the mesh's MaxStage): a filter h hops from
	// its subscriber is stored in its stage-min(h, PeerMaxStage) form.
	// 0 propagates full filters (no weakening) — always exact, most
	// state.
	PeerMaxStage int
	// FlowPolicy selects the slow-consumer policy for event traffic at
	// the broker's bounded queues: the core inlet and every connection's
	// outbound event queue. flow.Block (the default) is lossless
	// end-to-end backpressure — a saturated queue stalls its producer,
	// and withheld credit grants carry the stall across TCP hops to the
	// publisher. flow.DropNewest / flow.DropOldest shed events at the
	// saturated queue (counted in NodeStats.Dropped). flow.SpillToStore
	// diverts overflow to the durable store (subscriber queues and peer
	// links with a DataDir; degrades to a counted drop without one, and
	// to Block at the inlet) and replays it in order. Control frames are
	// exempt from every policy.
	FlowPolicy flow.Policy
	// FlowWindow bounds each of those queues and sets the event credit
	// window granted to senders (default 1024).
	FlowWindow int
	// Obs, when non-nil, receives the broker's observability surfaces:
	// node counters (with reason-labeled drops), queue gauges, peer-link
	// and store families, hop-latency histograms, and a /debug/status
	// section. Several brokers may share one registry — every series
	// carries a node label.
	Obs *obs.Registry
	// Trace enables hop-level latency tracing: inbound events are
	// stamped on arrival and the match/forward/deliver stages record
	// elapsed-since-arrival histograms. Off (the default), the stamp
	// path is a single atomic load per frame.
	Trace bool
	// ReplicaOf names the replica group this broker belongs to for
	// partitioned scale-out. Brokers sharing a group (normally federated
	// as peers) derive a common partition map from the link-state
	// database — no coordination round — and redirect publishers toward
	// each event partition's owner. Empty disables partitioning.
	ReplicaOf string
	// Partitions is the partition count of the replica group's event
	// space (default 64 when ReplicaOf is set). Every replica in a group
	// must configure the same count: the map epoch hashes it, so a
	// mismatch shows up as disagreeing epochs rather than silent
	// misrouting.
	Partitions int
	// GroupLeaseTTL bounds how long a consumer-group member may hold an
	// unacknowledged delivery before the broker redelivers it to another
	// member (default 10s). Expiry runs on the TTL sweep tick, so it
	// needs cfg.TTL > 0; member disconnects redeliver immediately either
	// way.
	GroupLeaseTTL time.Duration
}

// Server is a running broker node.
type Server struct {
	cfg    ServerConfig
	log    *slog.Logger
	node   *routing.Node
	ads    *typing.AdvertisementSet
	rng    *rand.Rand
	store  *store.Store // nil without DataDir
	tracer *obs.Tracer

	ln     net.Listener
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	inlet  *flow.Queue[coreEvent]
	parent *peerConn

	mu    sync.Mutex
	conns map[*peerConn]struct{}

	// Control plane: the reconciler compares the intended peer set with
	// the running dial workers and starts/cancels workers to close the
	// gap (see control.go). intentMu guards both maps; reconcileCh (1-
	// buffered) wakes the reconciler after a mutation.
	intentMu    sync.Mutex
	intent      map[string]struct{}
	workers     map[string]*peerWorker
	reconcileCh chan struct{}
	reconciles  atomic.Uint64
	deadLinks   atomic.Uint64

	// stallLogNS rate-limits flow-stall logging: backpressure engaging
	// is operator-relevant, but a sustained stall fires OnStall per
	// push and must not flood the log.
	stallLogNS atomic.Int64

	// core-owned state (no locking needed):
	views     []event.View // reusable batch-matching scratch
	byID      map[routing.NodeID]*peerConn
	counters  *metrics.Counters
	fed       *peering.Core        // federation routing state
	peerLinks map[string]*peerLink // by peer broker ID
	// peerDirty marks links whose persisted interest set is stale; the
	// flusher goroutine rewrites them in batches instead of on every
	// incremental SubUpdate.
	peerDirty map[string]struct{}
	// topo is the link-state database driving the spanning-tree election
	// (see topology.go); pendingResync tracks promoted links whose
	// SubSet exchange is still in flight, and promoted the links
	// activated by the in-progress failover — the only legal re-routing
	// targets for a dead link's orphaned spool.
	topo          *peering.TopologyView
	pendingResync map[string]struct{}
	promoted      map[string]struct{}
	failovers     uint64
	reroutes      uint64
	// pmap is the partition-aware routing filter (see partition.go). The
	// core installs recomputed maps; stats and tests read it atomically.
	// With ReplicaOf unset it stays empty and every event is owned.
	pmap          *routing.PartitionFilter
	partRedirects uint64
	partAbsorbed  uint64
	// groups holds the consumer groups anchored at this broker, keyed by
	// their reserved routing ID ("@group/<name>"); groupOf maps each
	// member connection to its group (see group.go).
	groups  map[string]*consumerGroup
	groupOf map[*peerConn]*consumerGroup
}

type coreEvent struct {
	pc    *peerConn
	msg   transport.Message
	gone  bool
	tick  tickKind
	query chan int // ChildBrokers snapshot request
	call  func()   // generic core-context query (PeerStats etc.)
	// replay asks the core to try draining the connection's stored
	// backlog (posted when a credit grant frees the writer: without it,
	// events spilled at the tail of a burst would strand in the spool
	// until the next matching event or a reconnect).
	replay bool
}

type tickKind int

const (
	tickNone tickKind = iota
	tickRenew
	tickSweep
)

// evictableCoreEvent marks inlet items a drop policy may shed: inbound
// event frames only — connection lifecycle, queries, ticks and
// subscription control always survive saturation.
func evictableCoreEvent(ev coreEvent) bool { return coreEventCount(ev) > 0 }

// coreEventCount returns how many events an inlet item carries (the
// frame switch is eventCount's; control items carry none).
func coreEventCount(ev coreEvent) int {
	if ev.gone || ev.query != nil || ev.call != nil || ev.tick != tickNone || ev.replay || ev.msg == nil {
		return 0
	}
	return eventCount(ev.msg)
}

// DefaultMaxBatch is the default cap on events coalesced per matching
// pass in the broker core.
const DefaultMaxBatch = 64

// peerConn is one TCP connection with its outbound queues and credit
// state.
type peerConn struct {
	kind transport.PeerKind
	id   string
	addr string // child broker's advertised listen address

	// dialed marks connections this broker initiated (parent dials, peer
	// supervisors dial); link is the federation link once a PeerHello
	// names the peer (core-owned).
	dialed bool
	link   *peerLink

	c net.Conn
	// out carries event frames under the configured flow policy; ctl
	// carries control frames, which the writer drains with priority and
	// which no policy ever sheds.
	out *flow.Queue[transport.Message]
	ctl chan transport.Message
	// gate holds event credit granted by the remote end; the writer
	// acquires from it before transmitting event frames. Disabled (no
	// gating) until the remote's first Credit arrives.
	gate *flow.Gate
	// meter paces the credit this broker grants the remote; set on
	// connections the broker expects inbound events from (publishers,
	// the parent, federation peers). Atomic: the core installs it, but
	// repayment also happens from reader goroutines (inlet drops).
	meter atomic.Pointer[flow.Meter]
	// pendingGrant accumulates credit owed to the remote; the writer
	// flushes it as a Credit frame when it next touches the socket, so
	// granting never blocks the core — a remote that stops reading
	// wedges only its own connection.
	pendingGrant atomic.Int64
	grantSig     chan struct{} // 1-token: pendingGrant became non-zero
	// acked flips when the first Credit from the remote has been
	// answered with a CreditAck (readLoop-owned).
	acked bool
	// peerAcked reports the remote acknowledged our grants (stats).
	peerAcked atomic.Bool

	// lastRecv is the Nanotime of the most recent inbound frame; the
	// heartbeat loop closes federation links whose silence exceeds the
	// dead-link timeout.
	lastRecv atomic.Int64

	// redirEpoch is the partition-map epoch this connection was last sent
	// a PartitionRedirect for (core-owned): one redirect per epoch per
	// publisher, however many stale publishes it sends meanwhile.
	redirEpoch uint64

	done chan struct{} // closed with the connection (supervisor redial cue)
	// writerDone is closed when the write loop exits; after that,
	// whatever remains in out was never written and can be salvaged.
	writerDone chan struct{}
	once       sync.Once
}

// ctlBuffer bounds each connection's control-frame channel. Control
// traffic is low-volume; the writer drains it ahead of events.
const ctlBuffer = 256

func (s *Server) newPeerConn(c net.Conn) *peerConn {
	pc := &peerConn{
		c:        c,
		ctl:      make(chan transport.Message, ctlBuffer),
		gate:     flow.NewGate(),
		grantSig: make(chan struct{}, 1),
		done:     make(chan struct{}), writerDone: make(chan struct{}),
	}
	pc.lastRecv.Store(obs.Nanotime())
	pc.out = flow.New(flow.Config[transport.Message]{
		Window: s.cfg.FlowWindow,
		Policy: s.cfg.FlowPolicy,
		Spill:  func(m transport.Message) bool { return s.spillConn(pc, m) },
		OnDrop: func(m transport.Message) { s.dropConn(pc, m) },
		OnStall: func() {
			s.counters.AddStalled(1)
			s.logStall("out/" + pc.id)
		},
		Stop:    pc.done,
		AltStop: s.ctx.Done(),
	})
	return pc
}

// tryCtl enqueues a control frame without blocking; a full channel (a
// wedged writer) refuses it — nothing on the broker ever blocks on one
// connection's control plane.
func (pc *peerConn) tryCtl(m transport.Message) bool {
	select {
	case pc.ctl <- m:
		return true
	default:
		return false
	}
}

// logStall logs a Block-policy stall — the operator-visible trace of
// end-to-end backpressure engaging — at most once per 5 seconds across
// all of the broker's queues; the per-queue stall counters carry the
// full picture.
func (s *Server) logStall(queue string) {
	now := obs.Nanotime()
	last := s.stallLogNS.Load()
	if now-last < int64(5*time.Second) || !s.stallLogNS.CompareAndSwap(last, now) {
		return
	}
	s.log.Warn("flow stall: backpressure engaged", "queue", queue)
}

// addGrant credits the remote with g events: the amount accumulates on
// the connection and the writer flushes it as one Credit frame when it
// next touches the socket. Never blocks, coalesces bursts, and loses
// nothing a live connection could still use — a torn-down connection's
// unsent grant dies with its sender state.
func (s *Server) addGrant(pc *peerConn, g int) {
	if g <= 0 {
		return
	}
	pc.pendingGrant.Add(int64(g))
	s.counters.AddCreditGranted(uint64(g))
	select {
	case pc.grantSig <- struct{}{}:
	default:
	}
}

// setIdentity records who a connection is. s.mu makes the identity
// readable off-core (FlowStats); the core itself reads it lock-free, as
// the single writer.
func (s *Server) setIdentity(pc *peerConn, kind transport.PeerKind, id, addr string) {
	s.mu.Lock()
	pc.kind, pc.id, pc.addr = kind, id, addr
	s.mu.Unlock()
}

// eventsOf returns the events an outbound frame carries (nil for
// control frames). Events stay in their raw wire form throughout.
func eventsOf(m transport.Message) []*event.Raw {
	switch f := m.(type) {
	case transport.Publish:
		return []*event.Raw{f.Event}
	case transport.PublishBatch:
		return f.Events
	case transport.Deliver:
		return []*event.Raw{f.Event}
	case transport.Forward:
		return []*event.Raw{f.Event}
	case transport.ForwardBatch:
		return f.Events
	}
	return nil
}

// eventCount returns how many event credits a frame costs.
func eventCount(m transport.Message) int {
	switch f := m.(type) {
	case transport.Publish, transport.Deliver, transport.Forward:
		return 1
	case transport.PublishBatch:
		return len(f.Events)
	case transport.ForwardBatch:
		return len(f.Events)
	}
	return 0
}

// spillConn is the outbound queue's SpillToStore hook: overflow for a
// durable subscriber or a federation peer link goes to the durable
// store under the connection's cursor, to replay in order later. It
// reports false (degrading the push to a counted drop) when the broker
// has no store or the connection has no durable identity. Runs in the
// core goroutine (only the core pushes event frames), so touching
// core-owned link state is safe.
func (s *Server) spillConn(pc *peerConn, m transport.Message) bool {
	evs := eventsOf(m)
	if len(evs) == 0 {
		return false
	}
	key := ""
	switch {
	case pc.link != nil:
		key = spoolKey(pc.link.id)
	case pc.kind == transport.PeerSubscriber && pc.id != "":
		key = pc.id
	default:
		return false // child brokers have no cursor: drop, counted
	}
	if !s.storeBatchFor(key, evs) {
		return false
	}
	s.counters.AddSpilled(uint64(len(evs)))
	if pc.link != nil {
		pc.link.spooled += uint64(len(evs))
	}
	return true
}

// dropConn counts the events a queue policy discarded — exactly once
// per event, whatever frame carried them. Runs in the core goroutine.
func (s *Server) dropConn(pc *peerConn, m transport.Message) {
	n := uint64(eventCount(m))
	if n == 0 {
		return
	}
	s.counters.AddDroppedFor(metrics.DropQueueFull, n)
	if pc.link != nil {
		pc.link.dropped += n
	}
	s.log.Warn("outbound queue full; dropping", "peer", pc.id, "events", n)
}

// Serve starts a broker and returns once it is listening.
func Serve(cfg ServerConfig) (*Server, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("broker: ID required")
	}
	if cfg.Stage < 1 {
		return nil, fmt.Errorf("broker: stage must be >= 1, got %d", cfg.Stage)
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("broker: listen %s: %w", cfg.ListenAddr, err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:       cfg,
		log:       logger.With("broker", cfg.ID, "stage", cfg.Stage),
		ads:       &typing.AdvertisementSet{},
		rng:       rand.New(rand.NewPCG(cfg.Seed, uint64(cfg.Stage))),
		ln:        ln,
		conns:     make(map[*peerConn]struct{}),
		byID:      make(map[routing.NodeID]*peerConn),
		peerLinks: make(map[string]*peerLink),
		peerDirty: make(map[string]struct{}),

		intent:        make(map[string]struct{}),
		workers:       make(map[string]*peerWorker),
		reconcileCh:   make(chan struct{}, 1),
		topo:          peering.NewTopologyView(cfg.ID),
		pendingResync: make(map[string]struct{}),
		promoted:      make(map[string]struct{}),
		pmap:          routing.NewPartitionFilter(cfg.ID),
		groups:        make(map[string]*consumerGroup),
		groupOf:       make(map[*peerConn]*consumerGroup),
	}
	if s.cfg.MaxBatch <= 0 {
		s.cfg.MaxBatch = DefaultMaxBatch
	}
	if s.cfg.GroupLeaseTTL <= 0 {
		s.cfg.GroupLeaseTTL = DefaultGroupLeaseTTL
	}
	if s.cfg.ReplicaOf != "" {
		if s.cfg.Partitions <= 0 {
			s.cfg.Partitions = DefaultPartitions
		}
		// The LSAs this broker floods carry its listen address and replica
		// group, so every converged broker derives the same map (see
		// partition.go). Seed the single-replica map before the core
		// starts: a lone replica owns everything under a real epoch.
		s.topo.SetSelf(s.Addr(), s.cfg.ReplicaOf)
		s.recomputePartitionMap()
	}
	if s.cfg.FlowWindow <= 0 {
		s.cfg.FlowWindow = flow.DefaultCreditWindow
	}
	var conf filter.Conformance = filter.ExactTypes{}
	if cfg.Registry != nil {
		conf = cfg.Registry
	}
	engine := cfg.Engine
	s.counters = &metrics.Counters{}
	s.tracer = obs.NewTracer()
	s.tracer.Enable(cfg.Trace)
	parentID := routing.NodeID("")
	if cfg.ParentAddr != "" {
		parentID = "parent" // real ID unknown until dial; only IsRoot matters
	}
	s.node = routing.NewNode(routing.Config{
		ID:       routing.NodeID(cfg.ID),
		Stage:    cfg.Stage,
		Parent:   parentID,
		TTL:      cfg.TTL,
		Conf:     conf,
		Weakener: weaken.New(s.ads, conf),
		Counters: s.counters,
		Engine: index.Config{
			Kind: engine, Conf: conf, Shards: cfg.Shards,
			Warn: func(msg string) { s.log.Warn(msg) },
		},
	})
	s.fed = peering.New(peering.Config{
		Conformance: conf,
		Ads:         s.ads,
		MaxStage:    cfg.PeerMaxStage,
		Counters:    s.counters,
	})
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, store.Options{SyncEvery: cfg.SyncEvery, MaxBytes: cfg.StoreMaxBytes, Logger: s.log})
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.store = st
		// Rebuild peer links (and their learned interests) persisted by a
		// previous incarnation, so events replayed by reconnecting peers
		// route onward even before every neighbor link is back up.
		if err := s.loadPeerState(); err != nil {
			s.log.Warn("peer state recovery failed", "err", err)
		}
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	// The core inlet runs the configured policy on publish traffic, with
	// SpillToStore degrading to Block: inlet events are not yet matched,
	// so there is no per-subscriber cursor to spill them under. Control
	// events (handshakes, queries, ticks) always enqueue.
	inletPolicy := s.cfg.FlowPolicy
	if inletPolicy == flow.SpillToStore {
		inletPolicy = flow.Block
	}
	s.inlet = flow.New(flow.Config[coreEvent]{
		Window:    s.cfg.FlowWindow,
		Policy:    inletPolicy,
		Evictable: evictableCoreEvent,
		OnDrop: func(ev coreEvent) {
			if n := coreEventCount(ev); n > 0 {
				s.counters.AddDroppedFor(metrics.DropInletShed, uint64(n))
				// A shed event is consumed all the same: repay its
				// credit, or drops would bleed the sender's window dry
				// and turn a shedding policy into a permanent stall.
				s.grantTo(ev.pc, n)
			}
		},
		OnStall: func() {
			s.counters.AddStalled(1)
			s.logStall("inlet")
		},
		Stop: s.ctx.Done(),
	})

	if cfg.ParentAddr != "" {
		pc, err := s.dialParent()
		if err != nil {
			ln.Close()
			if s.store != nil {
				_ = s.store.Close() // release the flock for the next attempt
			}
			return nil, err
		}
		s.parent = pc
	}

	s.wg.Add(2)
	go s.acceptLoop()
	go s.core()
	// The control plane owns the peer set from here on: cfg.Peers is just
	// the initial intent, mutable at runtime via AddPeer/RemovePeer.
	for _, addr := range cfg.Peers {
		s.intent[addr] = struct{}{}
	}
	s.wg.Add(1)
	go s.reconciler()
	s.kickReconcile()
	if hb := s.heartbeatEvery(); hb > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop(hb)
	}
	if s.store != nil {
		s.wg.Add(1)
		go s.peerStateFlusher()
	}
	if cfg.TTL > 0 {
		s.wg.Add(1)
		go s.ticker()
	}
	if cfg.Obs != nil {
		s.registerObs(cfg.Obs)
	}
	s.log.Info("broker listening", "addr", s.Addr())
	return s, nil
}

// Tracer returns the broker's hop-latency tracer (never nil).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// StoreStats snapshots the durable store's counters; the zero value
// without a DataDir.
func (s *Server) StoreStats() store.Stats {
	if s.store == nil {
		return store.Stats{}
	}
	return s.store.Stats()
}

// registerObs contributes the broker's metric and status sources to
// reg. Node, queue, store and hop-latency families read atomics and
// never block. Peer-link stats live in core-owned state, so that
// source snapshots through the core with a deadline and serves the
// last good snapshot when the core is stalled — a Block-policy wedge
// must not take /metrics down with it.
func (s *Server) registerObs(reg *obs.Registry) {
	var peerMu sync.Mutex
	var peerLast []PeerLinkStats
	peerSnap := func() []PeerLinkStats {
		fresh := make(chan []PeerLinkStats, 1)
		go func() { fresh <- s.PeerStats() }()
		select {
		case st := <-fresh:
			peerMu.Lock()
			peerLast = st
			peerMu.Unlock()
			return st
		case <-time.After(200 * time.Millisecond):
			peerMu.Lock()
			defer peerMu.Unlock()
			return peerLast
		}
	}
	reg.Register(func(w *obs.MetricWriter) {
		obs.CollectNodeStats(w, s.Stats())
		obs.CollectFlow(w, s.cfg.ID, s.FlowStats())
		if s.store != nil {
			obs.CollectStore(w, s.cfg.ID, s.store.Stats())
		}
		s.tracer.Collect(w, "node", s.cfg.ID)
		for _, st := range peerSnap() {
			l := []string{"node", s.cfg.ID, "peer", st.Peer}
			up := 0.0
			if st.Up {
				up = 1
			}
			w.Gauge("eventsys_peer_link_up",
				"Whether the federation link is currently connected.", up, l...)
			w.Gauge("eventsys_peer_link_interests",
				"Interest filters learned from the peer.", float64(st.Interests), l...)
			w.Counter("eventsys_peer_link_sent_updates_total",
				"Subscription updates sent over the link.", float64(st.Sent), l...)
			w.Counter("eventsys_peer_link_forwarded_events_total",
				"Events forwarded to the peer.", float64(st.Forwards), l...)
			w.Counter("eventsys_peer_link_spooled_events_total",
				"Events spooled to the store while the link was down or saturated.",
				float64(st.Spooled), l...)
			w.Counter("eventsys_peer_link_dropped_events_total",
				"Events for the peer dropped (no store to spool to).", float64(st.Dropped), l...)
			w.Counter("eventsys_peer_link_resyncs_total",
				"Full SubSet resyncs on reconnect.", float64(st.Resyncs), l...)
			w.Gauge("eventsys_peer_link_pending_events",
				"Spooled backlog awaiting replay to the peer.", float64(st.Pending), l...)
			active := 0.0
			if st.Active {
				active = 1
			}
			w.Gauge("eventsys_peer_link_active",
				"Whether the spanning-tree election selected the link to carry traffic.",
				active, l...)
		}
		for i, n := range s.ShardLoads() {
			w.Gauge("eventsys_engine_shard_subscriptions",
				"Live subscriptions held by each matching-engine shard.",
				float64(n), "node", s.cfg.ID, "shard", fmt.Sprint(i))
		}
		ts := s.TopologyStats()
		tl := []string{"node", s.cfg.ID}
		w.Gauge("eventsys_topology_brokers",
			"Brokers in the link-state database.", float64(ts.Brokers), tl...)
		w.Gauge("eventsys_topology_edges",
			"Agreed undirected federation edges.", float64(ts.Edges), tl...)
		w.Gauge("eventsys_topology_active_links",
			"Links elected into the spanning tree.", float64(len(ts.ActivePeers)), tl...)
		w.Gauge("eventsys_topology_standby_links",
			"Connected links held as failover paths.", float64(len(ts.StandbyPeers)), tl...)
		w.Counter("eventsys_topology_failovers_total",
			"Dead-link handoffs to promoted standby paths.", float64(ts.Failovers), tl...)
		w.Counter("eventsys_topology_rerouted_events_total",
			"Events re-routed from dead links' spools onto promoted paths.",
			float64(ts.Reroutes), tl...)
		w.Counter("eventsys_topology_reconciles_total",
			"Control-plane passes that changed the dial-worker set.",
			float64(ts.Reconciles), tl...)
		w.Counter("eventsys_topology_dead_link_closes_total",
			"Connections closed by the heartbeat monitor.", float64(ts.DeadLinkCloses), tl...)
	})
	reg.RegisterStatus("broker/"+s.cfg.ID, func() any {
		return map[string]any{
			"id":         s.cfg.ID,
			"stage":      s.cfg.Stage,
			"addr":       s.Addr(),
			"stats":      s.Stats(),
			"shardLoads": s.ShardLoads(),
			"flow":       s.FlowStats(),
			"peers":      peerSnap(),
			"topology":   s.TopologyStats(),
			"store":      s.StoreStats(),
			"tracing":    s.tracer.Enabled(),
			"dataDir":    s.cfg.DataDir,
			"flowPolicy": s.cfg.FlowPolicy.String(),
		}
	})
}

// Addr returns the broker's bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the broker's counters.
func (s *Server) Stats() metrics.NodeStats {
	return s.counters.Stats(s.cfg.ID, s.cfg.Stage)
}

// ShardLoads reports per-shard live-subscription counts when the broker
// runs a sharded matching engine, nil otherwise. Safe to call from any
// goroutine: it bypasses the core and locks each shard briefly.
func (s *Server) ShardLoads() []int {
	return s.node.Table().ShardLoads()
}

// HasAdvertisement reports whether this broker has seen an advertisement
// for the class — the observable signal that dissemination reached it
// (Section 4.1 floods advertisements to every node).
func (s *Server) HasAdvertisement(class string) bool {
	var ok bool
	s.coreQuery(func() { _, ok = s.ads.Get(class) })
	return ok
}

// ConnectedClients counts currently connected local publisher and
// subscriber connections (child brokers and federation peers excluded).
func (s *Server) ConnectedClients() int {
	var n int
	s.coreQuery(func() {
		for _, pc := range s.byID {
			if pc.kind == transport.PeerPublisher || pc.kind == transport.PeerSubscriber {
				n++
			}
		}
	})
	return n
}

// Close shuts the broker down and waits for all goroutines. The durable
// store (if any) is flushed and closed last.
func (s *Server) Close() {
	// Final peer-state flush while the core still runs, so debounced
	// interest updates reach disk before shutdown.
	s.coreQuery(s.flushPeerState)
	s.cancel()
	s.ln.Close()
	s.mu.Lock()
	for pc := range s.conns {
		pc.close()
	}
	if s.parent != nil {
		s.parent.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.store != nil {
		_ = s.store.Close()
	}
}

func (s *Server) dialParent() (*peerConn, error) {
	c, err := net.Dial("tcp", s.cfg.ParentAddr)
	if err != nil {
		return nil, fmt.Errorf("broker: dial parent %s: %w", s.cfg.ParentAddr, err)
	}
	pc := s.newPeerConn(c)
	pc.kind, pc.id, pc.dialed = transport.PeerChildBroker, "parent", true
	hello := transport.Hello{Kind: transport.PeerChildBroker, ID: s.cfg.ID, Addr: s.Addr()}
	if err := transport.WriteFrame(c, hello); err != nil {
		c.Close()
		return nil, fmt.Errorf("broker: parent handshake: %w", err)
	}
	// The parent will send events down this connection: grant it an
	// initial credit window and meter out replenishments as the core
	// processes what it sends. The write loop has not started, so the
	// grant goes straight to the socket.
	pc.meter.Store(flow.NewMeter(s.cfg.FlowWindow))
	if err := transport.WriteFrame(c, transport.Credit{Grant: uint32(s.cfg.FlowWindow)}); err != nil {
		c.Close()
		return nil, fmt.Errorf("broker: parent credit grant: %w", err)
	}
	s.counters.AddCreditGranted(uint64(s.cfg.FlowWindow))
	s.wg.Add(2)
	go s.readLoop(pc)
	go s.writeLoop(pc)
	return pc, nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.log.Warn("accept failed", "err", err)
			continue
		}
		pc := s.newPeerConn(c)
		s.mu.Lock()
		s.conns[pc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go s.readLoop(pc)
		go s.writeLoop(pc)
	}
}

// readLoop feeds a connection's frames to the core — except credit
// frames, which it applies to the writer's gate directly: a core
// blocked on a saturated queue (Block policy) must still see grants, or
// the very stall the grant would clear could never clear. The
// FrameReader interns attribute and class names per connection, so the
// steady-state decode of repeated event shapes allocates only the Raw
// views.
func (s *Server) readLoop(pc *peerConn) {
	defer s.wg.Done()
	fr := transport.NewFrameReader(pc.c)
	for {
		m, err := fr.ReadFrame()
		if err != nil {
			s.post(coreEvent{pc: pc, gone: true})
			return
		}
		// Any inbound frame proves the link alive; the heartbeat loop
		// closes connections whose stamp goes stale.
		pc.lastRecv.Store(obs.Nanotime())
		switch cm := m.(type) {
		case transport.PeerPing:
			// Liveness only — the lastRecv stamp above was the payload.
			continue
		case transport.Credit:
			pc.gate.Grant(int(cm.Grant))
			if !pc.acked {
				pc.acked = true
				_ = pc.tryCtl(transport.CreditAck{Window: cm.Grant}) // informational; droppable
			}
			if s.store != nil {
				// Fresh credit may free a writer whose target has a
				// stored backlog; let the core try a replay.
				s.post(coreEvent{pc: pc, replay: true})
			}
			continue
		case transport.CreditAck:
			pc.peerAcked.Store(true)
			continue
		}
		// Stamp inbound events for hop tracing while this reader still
		// owns the views exclusively (one atomic load when disabled).
		if s.tracer.Enabled() {
			if evs := eventsOf(m); len(evs) > 0 {
				now := obs.Nanotime()
				for _, ev := range evs {
					ev.SetStamp(now)
				}
			}
		}
		s.post(coreEvent{pc: pc, msg: m})
	}
}

// writeLoop drains a connection's outbound queues: control frames
// first, then event frames — each gated on credit granted by the
// remote. While waiting for credit (or for work) control frames keep
// flowing, so a throttled link still renews leases, exchanges
// subscription state, and grants its own credits.
func (s *Server) writeLoop(pc *peerConn) {
	defer s.wg.Done()
	defer close(pc.writerDone)
	for {
		// Owed credit first — a grant is what unwedges the remote.
		if g := pc.pendingGrant.Swap(0); g > 0 {
			if !s.writeFrame(pc, transport.Credit{Grant: uint32(g)}) {
				return
			}
			continue
		}
		select {
		case m := <-pc.ctl:
			if !s.writeFrame(pc, m) {
				return
			}
			continue
		default:
		}
		m, ok := pc.out.TryPop()
		if !ok {
			select {
			case m2 := <-pc.ctl:
				if !s.writeFrame(pc, m2) {
					return
				}
			case <-pc.grantSig:
			case <-pc.out.Ready():
			case <-pc.done:
				// Connection torn down: stop draining so undelivered
				// frames stay in the queue for dropPeer to salvage.
				return
			case <-s.ctx.Done():
				return
			}
			continue
		}
		waited := false
		for n := eventCount(m); n > 0 && !pc.gate.TryAcquire(n); {
			if !waited {
				waited = true
				s.counters.AddCreditWaits(1)
			}
			if g := pc.pendingGrant.Swap(0); g > 0 {
				if !s.writeFrame(pc, transport.Credit{Grant: uint32(g)}) {
					pc.out.Requeue(m)
					return
				}
				continue
			}
			select {
			case m2 := <-pc.ctl:
				if !s.writeFrame(pc, m2) {
					pc.out.Requeue(m)
					return
				}
			case <-pc.grantSig:
			case <-pc.gate.Avail():
			case <-pc.done:
				pc.out.Requeue(m) // salvage still sees it
				return
			case <-s.ctx.Done():
				pc.out.Requeue(m)
				return
			}
		}
		if !s.writeFrame(pc, m) {
			return
		}
		if s.tracer.Enabled() {
			for _, ev := range eventsOf(m) {
				s.tracer.Observe(obs.HopDeliver, ev.Stamp())
			}
		}
	}
}

// writeFrame writes one frame, tearing the connection down on error.
func (s *Server) writeFrame(pc *peerConn, m transport.Message) bool {
	if err := transport.WriteFrame(pc.c, m); err != nil {
		pc.close()
		return false
	}
	return true
}

// post hands an event to the core. Inbound event frames go through the
// inlet's flow policy (Block stalls this reader — and, via withheld
// grants, the remote sender); everything else always enqueues.
func (s *Server) post(ev coreEvent) {
	if coreEventCount(ev) > 0 {
		s.inlet.Push(ev)
		return
	}
	s.inlet.PushWait(ev)
}

// sendTo enqueues a control frame for a peer without blocking the core.
// A saturated control channel (a wedged writer) drops the frame,
// counted — lease renewal repairs subscription state if it ever hits.
func (s *Server) sendTo(pc *peerConn, m transport.Message) {
	if !pc.tryCtl(m) {
		s.counters.AddDroppedFor(metrics.DropControlFull, 1)
		s.log.Warn("control channel full; dropping", "peer", pc.id, "type", fmt.Sprintf("%T", m))
	}
}

// grantTo meters out credit to a sender whose events were consumed —
// processed by the core, or terminally shed by the inlet's drop policy
// (a dropped event must still repay its credit, or shedding would
// slowly strangle the sender's window into a permanent stall).
func (s *Server) grantTo(pc *peerConn, n int) {
	if pc == nil {
		return
	}
	m := pc.meter.Load()
	if m == nil {
		return
	}
	s.addGrant(pc, m.Consume(n))
}

func (pc *peerConn) close() {
	pc.once.Do(func() {
		pc.c.Close()
		close(pc.done)
	})
}

func (s *Server) ticker() {
	defer s.wg.Done()
	renew := time.NewTicker(s.cfg.TTL / 2)
	sweep := time.NewTicker(s.cfg.TTL)
	defer renew.Stop()
	defer sweep.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-renew.C:
			s.post(coreEvent{tick: tickRenew})
		case <-sweep.C:
			s.post(coreEvent{tick: tickSweep})
		}
	}
}

// core is the single goroutine owning routing state. Publish and
// PublishBatch frames queued in the inlet are drained into batches
// (capped at MaxBatch) and matched in one table pass; every other core
// event is handled one at a time, in queue order.
func (s *Server) core() {
	defer s.wg.Done()
	var batch []*event.Raw
	var owed []pcDebt
	for {
		ev, ok := s.inlet.Pop() // aborts on shutdown
		if !ok {
			return
		}
		batch, owed = s.dispatchCore(ev, batch[:0], owed[:0])
	}
}

// pcDebt tracks credit owed to one sender for events the core consumed
// from its connection during the current coalescing run.
type pcDebt struct {
	pc *peerConn
	n  int
}

// owe records credit debt, merging consecutive events from one sender.
func owe(owed []pcDebt, pc *peerConn, n int) []pcDebt {
	if pc == nil || pc.meter.Load() == nil || n == 0 {
		return owed
	}
	if len(owed) > 0 && owed[len(owed)-1].pc == pc {
		owed[len(owed)-1].n += n
		return owed
	}
	return append(owed, pcDebt{pc: pc, n: n})
}

// settle grants the accumulated credit debts — called after the batch
// they paid for has been flushed downstream, so under Block a slow
// downstream delays the grants and the stall propagates upstream.
func (s *Server) settle(owed []pcDebt) []pcDebt {
	for _, d := range owed {
		s.grantTo(d.pc, d.n)
	}
	return owed[:0]
}

// dispatchCore handles one dequeued core event, opportunistically
// coalescing a run of queued publishes into one matching batch. It
// returns the batch and debt slices (emptied) so core can reuse their
// backing arrays.
func (s *Server) dispatchCore(ev coreEvent, batch []*event.Raw, owed []pcDebt) ([]*event.Raw, []pcDebt) {
	for {
		collected := false
		if !ev.gone && ev.query == nil && ev.call == nil && ev.tick == tickNone {
			switch m := ev.msg.(type) {
			case transport.Publish:
				if m.Event != nil {
					batch = append(batch, m.Event)
				}
				s.checkPublishEpoch(ev.pc, m.Epoch)
				owed = owe(owed, ev.pc, 1)
				collected = true
			case transport.PublishBatch:
				for _, e := range m.Events {
					if e != nil {
						batch = append(batch, e)
					}
				}
				s.checkPublishEpoch(ev.pc, m.Epoch)
				owed = owe(owed, ev.pc, len(m.Events))
				collected = true
			}
		}
		if !collected {
			// A non-publish event interleaved with publishes: flush what
			// was coalesced so far, then handle it — queue order holds.
			// (Peer Forward frames take this path too: they carry their
			// own arrival link for echo suppression, so they never mix
			// into a locally-published batch.)
			s.flushPublishBatch(batch, "")
			batch = batch[:0]
			owed = s.settle(owed)
			s.handleCore(ev)
			return batch, owed
		}
		if len(batch) >= s.cfg.MaxBatch {
			s.flushPublishBatch(batch, "")
			batch = batch[:0]
			owed = s.settle(owed)
		}
		var ok bool
		if ev, ok = s.inlet.TryPop(); !ok {
			s.flushPublishBatch(batch, "")
			return batch[:0], s.settle(owed)
		}
	}
}

func (s *Server) handleCore(ev coreEvent) {
	switch {
	case ev.call != nil:
		ev.call()
	case ev.query != nil:
		n := 0
		for _, pc := range s.byID {
			if pc.kind == transport.PeerChildBroker {
				n++
			}
		}
		ev.query <- n
	case ev.tick == tickRenew:
		if s.parent != nil {
			for _, f := range s.node.RenewalsDue() {
				s.sendTo(s.parent, transport.Renew{ID: s.cfg.ID, Filter: f})
			}
		}
	case ev.tick == tickSweep:
		s.sweepGroupLeases(time.Now())
		if removed := s.node.Sweep(time.Now()); len(removed) > 0 {
			s.log.Info("leases expired", "removed", len(removed))
			// An expired lease is the system's signal that the
			// subscriber abandoned the subscription: drop its durable
			// cursor too, or its stored backlog pins segments forever.
			// Keep the cursor while the subscriber is still connected or
			// still holds other live filters (only one lease lapsed).
			// Forget is a no-op for IDs without cursors (child brokers).
			if s.store != nil {
				for _, id := range removed {
					if _, connected := s.byID[id]; connected || s.node.Table().HasID(id) {
						continue
					}
					s.store.Forget(string(id))
				}
			}
			// Expired subscribers also leave the federation plane (their
			// propagated state stays until link resyncs, like the mesh).
			// A consumer group whose members all stopped renewing lapses
			// the same way: its broker-side state goes with the lease.
			for _, id := range removed {
				if !s.node.Table().HasID(id) {
					s.fed.Unsubscribe(string(id))
					s.dropGroup(string(id))
				}
			}
		}
	case ev.replay:
		s.handleReplayTick(ev.pc)
	case ev.gone:
		s.dropPeer(ev.pc)
	default:
		s.handleMessage(ev.pc, ev.msg)
	}
}

// handleReplayTick drains a connection's stored backlog into its freed
// outbound queue — the spool-to-socket handoff after a credit grant.
func (s *Server) handleReplayTick(pc *peerConn) {
	if s.store == nil {
		return
	}
	switch {
	case pc.link != nil:
		if pc.link.pc == pc {
			s.replayPeerSpool(pc.link)
		}
	case pc.kind == transport.PeerSubscriber && pc.id != "":
		if g := s.groupOf[pc]; g != nil {
			s.replayGroup(g)
		} else {
			s.replayStored(pc)
		}
	}
}

func (s *Server) dropPeer(pc *peerConn) {
	pc.close()
	// The write loop exits promptly once the connection is closed (an
	// in-flight write errors out); after that, frames still queued in
	// pc.out were never written and can be salvaged.
	<-pc.writerDone
	s.mu.Lock()
	delete(s.conns, pc)
	s.mu.Unlock()
	if pc == s.parent {
		s.log.Warn("parent link lost")
		return
	}
	if pc.link != nil {
		// A federation link went down: keep its learned interests so
		// matching events keep spilling to the durable store; the dial
		// worker reconnects and the election resyncs on promotion.
		if pc.link.pc == pc {
			pc.link.pc = nil
			pc.link.synced = false
			s.log.Warn("peer link down", "peer", pc.link.id)
		}
		s.salvageQueued(pc, spoolKey(pc.link.id), pc.link)
		// Re-announce and re-elect once the link is ownerless (covers
		// connections sendCtrl already detached); a replaced duplicate
		// connection leaves the live link alone.
		if pc.link.pc == nil {
			s.topologyLinkDown()
		}
		return
	}
	if pc.id != "" {
		if cur, ok := s.byID[routing.NodeID(pc.id)]; ok && cur == pc {
			delete(s.byID, routing.NodeID(pc.id))
			if pc.kind == transport.PeerChildBroker {
				s.node.RemoveChild(routing.NodeID(pc.id))
			}
		}
		if pc.kind == transport.PeerSubscriber {
			if g := s.groupOf[pc]; g != nil {
				// A dead member's in-flight deliveries redeliver to the
				// survivors (or spill to the group's durable cursor); its
				// queued-but-unwritten frames are covered by the same
				// leases, so no separate salvage.
				s.removeGroupMember(pc, g, false, nil)
			} else {
				s.salvageQueued(pc, pc.id, nil)
			}
		}
	}
}

// salvageQueued rescues the events left in a dead connection's outbound
// queue — enqueued (and, for replayed backlog, already consumed from the
// durable cursor) but never written to the socket. They re-enter the
// durable backlog when that preserves order, i.e. when no older backlog
// is pending behind them; a non-durable target just loses its queue, as
// before. For peer links an unsalvageable queue is counted as dropped —
// never silently, never reordered.
func (s *Server) salvageQueued(pc *peerConn, key string, link *peerLink) {
	var evs []*event.Raw
	for {
		m, ok := pc.out.TryPop()
		if !ok {
			break
		}
		evs = append(evs, eventsOf(m)...)
	}
	if len(evs) == 0 {
		return
	}
	if s.store != nil && s.store.Pending(key) == 0 && s.storeBatchFor(key, evs) {
		if link != nil {
			link.spooled += uint64(len(evs))
		}
		s.log.Info("salvaged undelivered queue", "key", key, "events", len(evs))
	} else if link != nil {
		link.dropped += uint64(len(evs))
		s.counters.AddDroppedFor(metrics.DropLinkLost, uint64(len(evs)))
		s.log.Warn("peer link queue lost", "peer", link.id, "events", len(evs))
	}
}

func (s *Server) handleMessage(pc *peerConn, m transport.Message) {
	switch msg := m.(type) {
	case transport.Hello:
		s.setIdentity(pc, msg.Kind, msg.ID, msg.Addr)
		if msg.ID != "" {
			s.byID[routing.NodeID(msg.ID)] = pc
		}
		if msg.Kind == transport.PeerChildBroker {
			s.node.AddChild(routing.NodeID(msg.ID))
			// Replay known advertisements: a (re)joining child missed
			// any dissemination that happened before it connected
			// (Section 4.1: advertisements reach every node).
			for _, class := range s.ads.Classes() {
				if ad, ok := s.ads.Get(class); ok {
					s.sendTo(pc, transport.Advertise{Ad: ad})
				}
			}
			s.log.Info("child broker joined", "child", msg.ID, "addr", msg.Addr)
		}
		if msg.Kind == transport.PeerPublisher {
			// Publishers inject events here: grant an initial credit
			// window and meter replenishments to the core's actual
			// processing rate — the admission-control contract.
			pc.meter.Store(flow.NewMeter(s.cfg.FlowWindow))
			s.addGrant(pc, s.cfg.FlowWindow)
		}
	case transport.Publish:
		// Publishes normally coalesce in dispatchCore before reaching
		// handleMessage; this arm keeps direct calls correct.
		if msg.Event == nil {
			return
		}
		s.checkPublishEpoch(pc, msg.Epoch)
		s.flushPublishBatch([]*event.Raw{msg.Event}, "")
	case transport.PublishBatch:
		s.checkPublishEpoch(pc, msg.Epoch)
		s.flushPublishBatch(msg.Events, "")
	case transport.PeerHello:
		s.handlePeerHello(pc, msg)
	case transport.SubSet:
		s.handleSubSet(pc, msg)
	case transport.SubUpdate:
		s.handleSubUpdate(pc, msg)
	case transport.LinkState:
		s.handleLinkState(pc, msg)
	case transport.Forward:
		if pc.link == nil || msg.Event == nil {
			return
		}
		s.flushPublishBatch([]*event.Raw{msg.Event}, peering.LinkID(pc.link.id))
		s.grantTo(pc, 1)
	case transport.ForwardBatch:
		if pc.link == nil {
			return
		}
		s.flushPublishBatch(msg.Events, peering.LinkID(pc.link.id))
		s.grantTo(pc, len(msg.Events))
	case transport.Subscribe:
		if msg.Filter == nil {
			return
		}
		if msg.Group != "" {
			s.handleGroupSubscribe(pc, msg)
			return
		}
		if strings.HasPrefix(msg.SubscriberID, "@") {
			// Reserved namespace: a subscriber must not alias a peer
			// link's durable spool cursor ("@peer/…") or a child
			// broker's federation aggregate ("@child/…").
			s.log.Warn("rejecting reserved subscriber ID", "id", msg.SubscriberID)
			s.sendTo(pc, transport.SubscribeReply{Accepted: false, TargetAddr: ""})
			return
		}
		res := s.node.HandleSubscribe(msg.Filter, routing.NodeID(msg.SubscriberID), s.rng, time.Now())
		if res.Action == routing.ActionAccept {
			s.acceptLocalSub(pc, msg.SubscriberID, msg.Filter, res.Stored)
			if res.Up != nil && s.parent != nil {
				s.sendTo(s.parent, transport.ReqInsert{ChildID: s.cfg.ID, Filter: res.Up})
			}
			return
		}
		target, ok := s.byID[res.Target]
		if !ok || target.addr == "" {
			// Child vanished between covering search and reply: accept
			// locally rather than strand the subscriber.
			acc := s.node.HandleSubscribe(msg.Filter, routing.NodeID(msg.SubscriberID), s.rng, time.Now())
			if acc.Action == routing.ActionAccept {
				s.acceptLocalSub(pc, msg.SubscriberID, msg.Filter, acc.Stored)
			} else {
				s.sendTo(pc, transport.SubscribeReply{Accepted: false, TargetAddr: ""})
			}
			return
		}
		s.sendTo(pc, transport.SubscribeReply{Accepted: false, TargetAddr: target.addr})
	case transport.ReqInsert:
		if msg.Filter == nil {
			return
		}
		up := s.node.HandleReqInsert(msg.Filter, routing.NodeID(msg.ChildID), time.Now())
		if up != nil && s.parent != nil {
			s.sendTo(s.parent, transport.ReqInsert{ChildID: s.cfg.ID, Filter: up})
		}
		// The subtree's interest joins the federation plane too:
		// without this, events published at peer brokers would never
		// route toward subscribers living below this broker's children.
		// The core absorbs filters covered by ones already registered
		// for the child, so repeated inserts stay bounded. (Peer links
		// belong on hierarchy roots: events cross the federation at the
		// top and fan down — see docs/ARCHITECTURE.md.)
		s.fanUpdates(s.fed.Subscribe(childFedKey(msg.ChildID), msg.Filter))
	case transport.Renew:
		if msg.Filter == nil {
			return
		}
		// A group member renews on behalf of the whole group: the
		// subscription lives under the group's routing ID, not the
		// member's.
		if g := s.groupOf[pc]; g != nil {
			s.node.HandleRenew(msg.Filter, routing.NodeID(g.gid), time.Now())
			return
		}
		s.node.HandleRenew(msg.Filter, routing.NodeID(msg.ID), time.Now())
	case transport.GroupAck:
		if g := s.groupOf[pc]; g != nil {
			s.ackGroupDelivery(g, msg.Seq)
		}
	case transport.Unsubscribe:
		if msg.Filter == nil {
			return
		}
		if g := s.groupOf[pc]; g != nil {
			s.removeGroupMember(pc, g, true, msg.Filter)
			return
		}
		s.node.HandleUnsubscribe(msg.Filter, routing.NodeID(msg.ID))
		// Drop the durable cursor only when this was the subscriber's
		// last filter here — unsubscribing one of several must not
		// destroy the backlog the others are still owed.
		if !s.node.Table().HasID(routing.NodeID(msg.ID)) {
			if s.store != nil {
				s.store.Forget(msg.ID)
			}
			s.fed.Unsubscribe(msg.ID)
		}
	case transport.Advertise:
		if msg.Ad == nil {
			return
		}
		if err := s.ads.Put(msg.Ad); err != nil {
			s.log.Warn("rejecting advertisement", "class", msg.Ad.Class, "err", err)
			return
		}
		// Disseminate down the tree (Section 4.1: advertisements reach
		// every node) and across the federation — spanning-tree edges
		// only: the elected forest is acyclic, so excluding the arrival
		// link terminates the flood even when the configured links form
		// cycles. Standby links catch up on promotion (recomputeTopology
		// replays the advertisement set).
		for _, dst := range s.byID {
			if dst.kind == transport.PeerChildBroker {
				s.sendTo(dst, msg)
			}
		}
		for _, link := range s.peerLinks {
			if link.active && link.pc != nil && link.pc != pc {
				s.sendTo(link.pc, msg)
			}
		}
	}
}

// acceptLocalSub finishes an accepted subscription: durable cursor,
// reply, stored-backlog replay, and federation-plane registration of the
// subscriber's original filter.
func (s *Server) acceptLocalSub(pc *peerConn, subID string, original, stored *filter.Filter) {
	if s.store != nil {
		if _, _, err := s.store.Register(subID); err != nil {
			s.log.Warn("store register failed", "subscriber", subID, "err", err)
		}
	}
	s.sendTo(pc, transport.SubscribeReply{Accepted: true, Stored: stored})
	// Replay any backlog stored while this subscriber was away — after
	// the reply (the client discards frames until it), and before any
	// live event (the core enqueues both in order).
	s.replayStored(pc)
	// Propagate the original (stage-0) filter to peers: each hop stores
	// a hop-weakened form, exactly as the in-process mesh does.
	s.fanUpdates(s.fed.Subscribe(subID, original))
}

// flushPublishBatch matches a coalesced run of events in one table pass
// and fans the results out. Event copies bound for the same child broker
// leave as one PublishBatch frame (amortizing framing and syscalls), and
// events persisted for the same disconnected subscriber go to the store
// as one AppendBatch (amortizing locking and fsyncs). Connected
// subscribers are routed in event order, so per-subscriber FIFO — and
// the stored-backlog-first replay invariant — hold exactly as on the
// per-event path. Events also fan out to federation peer links with a
// matching interest (reverse-path forwarding), excluding the link the
// batch arrived on (fromPeer, "" for local publishes).
func (s *Server) flushPublishBatch(events []*event.Raw, fromPeer peering.LinkID) {
	if len(events) == 0 {
		return
	}
	s.fanPeers(events, fromPeer)
	s.views = s.views[:0]
	for _, ev := range events {
		s.views = append(s.views, ev)
	}
	routes := s.node.HandleEventBatch(s.views)
	if s.tracer.Enabled() {
		for _, ev := range events {
			if ev != nil {
				s.tracer.Observe(obs.HopMatch, ev.Stamp())
			}
		}
	}
	var childOrder, storeOrder []routing.NodeID
	var toChild, toStore map[routing.NodeID][]*event.Raw
	for i, ids := range routes {
		ev := events[i]
		if ev == nil {
			continue
		}
		for _, id := range ids {
			if g, isGroup := s.groups[string(id)]; isGroup {
				// A consumer group's events compete among its members
				// instead of fanning to each; see group.go.
				s.routeToGroup(g, ev)
				continue
			}
			dst, ok := s.byID[id]
			switch {
			case !ok:
				// Disconnected peer. A durable subscriber's events are
				// persisted for redelivery on reconnect; anything else is
				// left to lease expiry.
				if toStore == nil {
					toStore = make(map[routing.NodeID][]*event.Raw)
				}
				if _, seen := toStore[id]; !seen {
					storeOrder = append(storeOrder, id)
				}
				toStore[id] = append(toStore[id], ev)
			case dst.kind == transport.PeerChildBroker:
				if toChild == nil {
					toChild = make(map[routing.NodeID][]*event.Raw)
				}
				if _, seen := toChild[id]; !seen {
					childOrder = append(childOrder, id)
				}
				toChild[id] = append(toChild[id], ev)
			default:
				s.routeToSubscriber(dst, id, ev)
			}
		}
	}
	for _, id := range childOrder {
		evs := toChild[id]
		dst := s.byID[id]
		var m transport.Message
		if len(evs) == 1 {
			m = transport.Publish{Event: evs[0]}
		} else {
			m = transport.PublishBatch{Events: evs}
		}
		// The queue applies the flow policy: Block stalls the core (and,
		// through withheld grants, this broker's own senders); the drop
		// policies count every event the frame carried, exactly as the
		// per-event path would. A Stopped push means the child vanished
		// mid-route — its events are lost with the connection, counted.
		if out := dst.out.Push(m); out == flow.Stopped {
			s.counters.AddDroppedFor(metrics.DropConnClosed, uint64(len(evs)))
		} else if s.tracer.Enabled() {
			for _, ev := range evs {
				s.tracer.Observe(obs.HopForward, ev.Stamp())
			}
		}
	}
	for _, id := range storeOrder {
		s.storeBatchFor(string(id), toStore[id])
	}
}

// routeToSubscriber delivers one event to a connected subscriber under
// the flow policy, keeping any stored backlog ahead of live traffic.
func (s *Server) routeToSubscriber(dst *peerConn, id routing.NodeID, ev *event.Raw) {
	// A connected subscriber with a stored backlog (persisted during a
	// saturation spell) must drain it first, or later events overtake the
	// stored ones. Skip the replay attempt while the queue is still full —
	// scanning segments that cannot drain anywhere would stall the core
	// for nothing.
	if s.store != nil && s.store.Pending(string(id)) > 0 &&
		(dst.out.Full() || s.replayStored(dst) > 0) {
		// Still saturated: keep FIFO by storing the new event behind the
		// backlog — whatever the policy, reordering is never an option.
		if s.storeFor(string(id), ev) {
			s.counters.AddSpilled(1)
		} else {
			s.counters.AddDroppedFor(metrics.DropNoStore, 1)
		}
		return
	}
	// The queue applies the policy on saturation: Block stalls the core,
	// DropNewest/DropOldest shed (counted), SpillToStore persists via
	// the connection's spill hook. Stopped means the subscriber vanished
	// mid-route: persist for its return when the store knows it.
	if out := dst.out.Push(transport.Deliver{Event: ev}); out == flow.Stopped {
		if !s.storeFor(string(id), ev) {
			s.counters.AddDroppedFor(metrics.DropConnClosed, 1)
		}
	} else {
		s.tracer.Observe(obs.HopForward, ev.Stamp())
	}
}

// storeBatchFor persists a run of events for one unreachable subscriber
// in a single store batch; it reports whether the run was stored (false
// when the broker runs without a store or the ID has no durable cursor).
func (s *Server) storeBatchFor(subID string, evs []*event.Raw) bool {
	if s.store == nil || !s.store.Known(subID) {
		return false
	}
	n, bytes, err := s.store.AppendBatch(subID, evs)
	if err != nil {
		s.log.Warn("store append failed", "subscriber", subID, "err", err)
		s.counters.AddDroppedFor(metrics.DropStoreError, uint64(len(evs)-n))
	}
	if n > 0 {
		s.counters.AddStoreAppended(uint64(n))
		s.counters.AddStoredBytes(uint64(bytes))
	}
	return true
}

// storeFor persists an event for a subscriber the broker cannot reach
// right now (disconnected, or its outbound queue is saturated). It
// reports whether the event was stored: false when the broker runs
// without a store or the ID has no durable cursor (e.g. a child broker's
// ID, or a subscriber that never subscribed at this broker).
func (s *Server) storeFor(subID string, ev *event.Raw) bool {
	if s.store == nil || !s.store.Known(subID) {
		return false
	}
	_, n, err := s.store.Append(subID, ev)
	if err != nil {
		s.log.Warn("store append failed", "subscriber", subID, "err", err)
		s.counters.AddDroppedFor(metrics.DropStoreError, 1)
		return true // accounted for; don't double-count as a queue drop
	}
	s.counters.AddStoreAppended(1)
	s.counters.AddStoredBytes(uint64(n))
	return true
}

// replayStored redelivers a subscriber's stored backlog as Deliver
// frames, in original order, ahead of any new live event (the core
// goroutine enqueues both, so ordering holds). If the outbound queue
// saturates mid-replay the remainder stays pending — returned to the
// caller — until the next replay opportunity (another matching event, or
// a reconnect).
func (s *Server) replayStored(pc *peerConn) (remaining int) {
	if pc.id == "" {
		return 0
	}
	return s.replayQueue(pc, pc.id, func(ev *event.Raw) transport.Message {
		return transport.Deliver{Event: ev}
	})
}

// replayQueue drains the stored backlog under key into pc's outbound
// queue, wrapping each event with wrap (Deliver for subscribers, Forward
// for peer links). It returns the backlog still pending after the drain.
func (s *Server) replayQueue(pc *peerConn, key string, wrap func(*event.Raw) transport.Message) (remaining int) {
	if s.store == nil || s.store.Pending(key) == 0 {
		return 0
	}
	n, err := s.store.Replay(key, func(ev *event.Raw) bool {
		// Non-blocking, no policy: when the window fills the remainder
		// stays pending in the store for the next replay opportunity.
		return pc.out.TryPush(wrap(ev))
	})
	if err != nil {
		s.log.Warn("store replay failed", "key", key, "err", err)
	}
	if n > 0 {
		s.counters.AddStoreReplayed(uint64(n))
		s.log.Info("replayed stored backlog", "key", key, "events", n)
	}
	return s.store.Pending(key)
}

// FlowStats snapshots the broker's bounded queues — the core inlet
// ("inlet") plus every connection's outbound event queue ("out/<id>",
// with anonymous connections as "out/?") — ordered by name. It never
// touches the core goroutine: queue gauges are atomic and identities
// are read under s.mu, so the overload-diagnosis API stays responsive
// precisely when a Block-policy stall has the core waiting.
func (s *Server) FlowStats() []flow.Snapshot {
	out := []flow.Snapshot{s.inlet.Snapshot("inlet")}
	s.mu.Lock()
	type namedQueue struct {
		name string
		q    *flow.Queue[transport.Message]
	}
	queues := make([]namedQueue, 0, len(s.conns)+1)
	for pc := range s.conns {
		name := pc.id
		if name == "" {
			name = "?"
		}
		queues = append(queues, namedQueue{name, pc.out})
	}
	s.mu.Unlock()
	if s.parent != nil {
		queues = append(queues, namedQueue{"parent", s.parent.out})
	}
	for _, nq := range queues {
		out = append(out, nq.q.Snapshot("out/"+nq.name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ChildBrokers reports the currently connected child broker count via a
// round-trip through the core goroutine (used by tests and orchestration
// to await topology readiness).
func (s *Server) ChildBrokers() int {
	done := make(chan int, 1)
	if s.inlet.PushWait(coreEvent{query: done}) != flow.Enqueued {
		return 0
	}
	select {
	case n := <-done:
		return n
	case <-s.ctx.Done():
		return 0
	}
}
