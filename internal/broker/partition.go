package broker

import (
	"sort"

	"eventsys/internal/partition"
	"eventsys/internal/transport"
)

// Partitioned scale-out — all map mutation runs on the core goroutine.
//
// Brokers configured with the same ReplicaOf group split the event space
// into Partitions consistent-hash partitions, each owned by exactly one
// replica (rendezvous hashing, internal/partition). Ownership steers
// load, not correctness: interests are flooded to every broker, so any
// ingress broker delivers completely — an event arriving at the wrong
// replica is absorbed and processed in full. What ownership buys is the
// redirect: the absorbing replica answers with a PartitionRedirect
// carrying the whole current map, after which the publisher fans each
// event directly to its owner and the replicas share the matching and
// fan-out work instead of every broker doing all of it.
//
// The map needs no coordination round. Every replica's LSA already
// floods its listen address and group through the link-state database,
// and partition.New is a pure function of (partition count, replica
// set) — converged databases yield identical maps and identical epochs,
// the same way the spanning-tree election agrees without messages. The
// epoch travels on every Publish frame; a mismatch means the publisher
// holds a stale map and earns one redirect per epoch. Known limitation:
// link-state records have no age-out, so a permanently dead replica
// keeps its partitions until operators remove it from the peer set and
// the survivors re-announce.

// DefaultPartitions is the event-space partition count used when
// ReplicaOf is set without an explicit Partitions.
const DefaultPartitions = 64

// recomputePartitionMap re-derives the partition map from the link-state
// database: this broker plus every broker announcing the same replica
// group. Runs whenever the database changes (and once at startup); a map
// with an unchanged epoch is not reinstalled.
func (s *Server) recomputePartitionMap() {
	if s.cfg.ReplicaOf == "" {
		return
	}
	reps := []partition.Replica{{ID: s.cfg.ID, Addr: s.Addr()}}
	for _, r := range s.topo.GroupMembers(s.cfg.ReplicaOf) {
		if r.Origin != s.cfg.ID {
			reps = append(reps, partition.Replica{ID: r.Origin, Addr: r.Addr})
		}
	}
	m := partition.New(s.cfg.Partitions, reps)
	if old := s.pmap.Map(); old != nil && old.Epoch == m.Epoch {
		return
	}
	s.pmap.Install(m)
	s.log.Info("partition map installed", "epoch", m.Epoch,
		"replicas", len(m.Replicas), "partitions", m.Partitions)
}

// checkPublishEpoch compares a publisher's frame epoch against the
// current map. The events themselves are always absorbed — rejecting
// would lose them, and this broker delivers completely regardless — but
// a stale (or absent) epoch earns the publisher one PartitionRedirect
// per epoch carrying the full map, so its next publishes fan in to the
// owning replicas directly.
func (s *Server) checkPublishEpoch(pc *peerConn, epoch uint64) {
	if pc == nil || pc.kind != transport.PeerPublisher {
		return // broker-to-broker traffic carries no epoch contract
	}
	m := s.pmap.Map()
	if m == nil || epoch == m.Epoch {
		return
	}
	s.partAbsorbed++
	if pc.redirEpoch == m.Epoch {
		return
	}
	pc.redirEpoch = m.Epoch
	s.partRedirects++
	reps := make([]transport.ReplicaInfo, len(m.Replicas))
	for i, r := range m.Replicas {
		reps[i] = transport.ReplicaInfo{ID: r.ID, Addr: r.Addr}
	}
	s.sendTo(pc, transport.PartitionRedirect{
		Epoch:      m.Epoch,
		Partitions: uint32(m.Partitions),
		Replicas:   reps,
	})
	s.log.Info("publisher on stale partition epoch; redirecting",
		"publisher", pc.id, "had", epoch, "epoch", m.Epoch)
}

// PartitionStats is a point-in-time snapshot of the partition layer.
type PartitionStats struct {
	// Group is the configured replica group ("" = partitioning off);
	// Epoch the installed map's epoch; Partitions its partition count.
	Group      string
	Epoch      uint64
	Partitions int
	// Replicas lists the replica IDs in the map; Owned counts the
	// partitions this broker owns under it.
	Replicas []string
	Owned    int
	// Redirects counts PartitionRedirect frames sent; Absorbed counts
	// publish frames accepted despite a stale or missing epoch.
	Redirects uint64
	Absorbed  uint64
	// Groups counts consumer groups anchored at this broker; Members
	// their connected members.
	Groups  int
	Members int
}

// PartitionStats snapshots the partition layer via the core goroutine.
func (s *Server) PartitionStats() PartitionStats {
	st := PartitionStats{Group: s.cfg.ReplicaOf}
	s.coreQuery(func() {
		st.Redirects = s.partRedirects
		st.Absorbed = s.partAbsorbed
		st.Groups = len(s.groups)
		for _, g := range s.groups {
			st.Members += len(g.members)
		}
		m := s.pmap.Map()
		if m == nil {
			return
		}
		st.Epoch = m.Epoch
		st.Partitions = m.Partitions
		for _, r := range m.Replicas {
			st.Replicas = append(st.Replicas, r.ID)
		}
		sort.Strings(st.Replicas)
		for p := 0; p < m.Partitions; p++ {
			if m.Owns(s.cfg.ID, p) {
				st.Owned++
			}
		}
	})
	return st
}
