package broker

import (
	"sort"

	"eventsys/internal/event"
	"eventsys/internal/peering"
	"eventsys/internal/transport"
)

// Topology reactions — all run on the core goroutine. The broker keeps a
// link-state database (peering.TopologyView) over the federation's
// configured links and re-runs a deterministic spanning-tree election
// whenever the database changes: redundant configured links demote to
// connected standby edges, and when an active link dies with a standby
// alternative available, the election promotes the standby and fails the
// dead link's spooled traffic over to it (make-before-break: the orphaned
// spool is only re-routed after every promoted link's SubSet resync has
// landed, so re-matching sees the new paths' real interests).

// announceTopology records this broker's current adjacency (the peer
// links with a live connection) in the database under a fresh sequence
// number and floods the LSA to every connected link.
func (s *Server) announceTopology() {
	peers := make([]string, 0, len(s.peerLinks))
	for id, link := range s.peerLinks {
		if link.pc != nil {
			peers = append(peers, id)
		}
	}
	sort.Strings(peers)
	seq := s.topo.Announce(peers)
	s.floodLinkState(transport.LinkState{Origin: s.cfg.ID, Seq: seq, Peers: peers,
		Addr: s.Addr(), Part: s.cfg.ReplicaOf}, nil)
	s.recomputePartitionMap()
}

// floodLinkState sends an LSA to every connected federation link except
// the one it arrived on. Floods terminate despite cycles because only
// database-advancing records are re-flooded (see TopologyView.Merge).
func (s *Server) floodLinkState(m transport.LinkState, except *peerConn) {
	ids := make([]string, 0, len(s.peerLinks))
	for id := range s.peerLinks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		link := s.peerLinks[id]
		if link.pc == nil || link.pc == except {
			continue
		}
		s.sendCtrl(link, m)
	}
}

// handleLinkState folds a received LSA into the database, re-floods it
// if it advanced the view, and re-runs the election. A self-echo (a peer
// replaying this broker's own pre-restart record) forces a re-announce
// that out-sequences the stale record everywhere.
func (s *Server) handleLinkState(pc *peerConn, msg transport.LinkState) {
	if pc.link == nil || msg.Origin == "" {
		return
	}
	newer, selfEcho := s.topo.Merge(msg.Origin, msg.Seq, msg.Peers, msg.Addr, msg.Part)
	if selfEcho {
		s.announceTopology()
		s.recomputeTopology()
		return
	}
	if newer {
		s.floodLinkState(msg, pc)
		s.recomputeTopology()
		s.recomputePartitionMap()
	}
}

// topologyLinkDown reacts to a federation connection loss: re-announce
// the shrunk adjacency and re-elect — if the dead link was active and a
// standby path exists, the election starts a failover.
func (s *Server) topologyLinkDown() {
	s.announceTopology()
	s.recomputeTopology()
}

// recomputeTopology reconciles every peer link against the elected
// spanning forest:
//
//   - a connected link the forest wants that hasn't synced its current
//     connection is promoted: activate, full SubSet resync, advertisement
//     replay, spool replay;
//   - a connected active link the forest no longer wants is demoted to
//     standby: its interests are withdrawn so no new traffic matches it;
//   - a dead active link the forest no longer wants enters failover when
//     the election promoted replacements — its interests keep matching
//     (and spooling) events until the replacements' resyncs land, then
//     maybeCompleteFailover re-routes the spool. With no replacement the
//     link stays active and spooling, awaiting reconnect — the original
//     durable-link semantics.
func (s *Server) recomputeTopology() {
	// A pending resync whose link died resolves to nothing: drop it so
	// failover completion is not gated on a resync that can never land.
	for id := range s.pendingResync {
		if link := s.peerLinks[id]; link == nil || link.pc == nil {
			delete(s.pendingResync, id)
		}
	}
	want := s.topo.ActiveNeighbors()
	ids := make([]string, 0, len(s.peerLinks))
	for id := range s.peerLinks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		link := s.peerLinks[id]
		if !s.topo.Known(id) {
			// No record for the peer: the database knows nothing about it
			// (fresh after a restart, or a first connect racing the
			// peer's own LSA). Acting on ignorance here would demote a
			// recovered active link or fail over a link whose peer is
			// merely not re-announced yet.
			continue
		}
		switch {
		case want[id] && link.pc != nil && !link.synced:
			// Promotion — or, for an already-active link that just
			// reconnected, the resync its new connection is owed. Only a
			// genuine standby→active transition marks a failover target:
			// a reconnect-resync restores an old path, it does not open a
			// new one, and re-routing orphaned spools at it would send
			// events back toward where they came from.
			wasStandby := !link.active
			link.active, link.synced = true, true
			link.failover = false
			s.fed.SetActive(peering.LinkID(id), true)
			entries := s.fed.Sync(peering.LinkID(id))
			s.sendCtrl(link, transport.SubSet{Entries: entriesToWire(entries)})
			link.resyncs++
			s.counters.AddPeerResyncs(1)
			if link.pc != nil { // sendCtrl may have recycled the connection
				s.pendingResync[id] = struct{}{}
				if wasStandby {
					s.promoted[id] = struct{}{}
				}
				// Replay known advertisements: a link that connected as a
				// standby missed any dissemination since (Put is
				// idempotent on the far side).
				for _, class := range s.ads.Classes() {
					if ad, ok := s.ads.Get(class); ok {
						s.sendTo(link.pc, transport.Advertise{Ad: ad})
					}
				}
				s.replayPeerSpool(link)
				s.log.Info("peer link promoted to spanning tree", "peer", id)
			}
		case link.active && !want[id] && link.pc != nil:
			// Healthy demotion: drain what the spool still owes (order),
			// then withdraw the interests so no new traffic matches. A
			// link demoted before its resync landed stops being awaited —
			// a standby peer never answers — and stops being a failover
			// target.
			s.replayPeerSpool(link)
			s.fanUpdates(s.fed.Replace(peering.LinkID(id), nil))
			s.fed.SetActive(peering.LinkID(id), false)
			link.active, link.synced = false, false
			delete(s.pendingResync, id)
			delete(s.promoted, id)
			s.log.Info("peer link standing by", "peer", id)
		}
	}
	// Second pass, after every promotion landed in s.promoted: a dead
	// active link the forest dropped fails over once a promoted standby
	// exists to hand its traffic to; with none it stays active and keeps
	// spooling until the peer reconnects.
	for _, id := range ids {
		link := s.peerLinks[id]
		if s.topo.Known(id) && link.active && !want[id] && link.pc == nil &&
			!link.failover && len(s.promoted) > 0 {
			link.failover = true
			s.failovers++
			s.log.Warn("peer link dead; failing over", "peer", id)
		}
	}
	s.maybeCompleteFailover()
}

// maybeCompleteFailover finishes an in-progress failover once every
// promoted link's SubSet resync has landed: each dead link's orphaned
// spool drains in order, every event re-matching against the promoted
// links only — they carried no interests before their resync, so nothing
// was double-routed — and events no promoted path wants re-enter the
// spool to await the original peer's return.
func (s *Server) maybeCompleteFailover() {
	// Only the promoted standbys' resyncs gate completion — a concurrent
	// reconnect-resync on some unrelated link must not stall the handoff.
	for id := range s.promoted {
		if _, ok := s.pendingResync[id]; ok {
			return
		}
	}
	var failed []string
	for id, link := range s.peerLinks {
		if link.failover {
			failed = append(failed, id)
		}
	}
	if len(failed) == 0 {
		s.promoted = make(map[string]struct{})
		return
	}
	sort.Strings(failed)
	targets := make([]string, 0, len(s.promoted))
	for id := range s.promoted {
		if link := s.peerLinks[id]; link != nil && link.pc != nil && link.active {
			targets = append(targets, id)
		}
	}
	sort.Strings(targets)
	for _, id := range failed {
		link := s.peerLinks[id]
		var orphans []*event.Raw
		if s.store != nil {
			_, err := s.store.Replay(spoolKey(id), func(ev *event.Raw) bool {
				orphans = append(orphans, ev)
				return true
			})
			if err != nil {
				s.log.Warn("failover spool drain failed", "peer", id, "err", err)
			}
		}
		link.failover = false
		s.fanUpdates(s.fed.Replace(peering.LinkID(id), nil))
		s.fed.SetActive(peering.LinkID(id), false)
		link.active, link.synced = false, false
		var unmatched []*event.Raw
		rerouted := uint64(0)
		for _, ev := range orphans {
			routed := false
			for _, tid := range targets {
				if s.fed.MatchLink(ev, peering.LinkID(tid)) {
					s.forwardToPeer(s.peerLinks[tid], []*event.Raw{ev})
					routed = true
				}
			}
			if routed {
				rerouted++
			} else {
				unmatched = append(unmatched, ev)
			}
		}
		s.reroutes += rerouted
		if len(unmatched) > 0 && !s.storeBatchFor(spoolKey(id), unmatched) {
			link.dropped += uint64(len(unmatched))
		}
		s.log.Info("failover complete", "peer", id,
			"rerouted", rerouted, "respooled", len(unmatched))
	}
	s.promoted = make(map[string]struct{})
}

// TopologyStats is a point-in-time snapshot of the control plane and the
// elected topology.
type TopologyStats struct {
	// Self is this broker's ID; Brokers the number of brokers in the
	// link-state database; Edges the agreed undirected edge count.
	Self    string
	Brokers int
	Edges   int
	// ActivePeers are the links the election selected to carry traffic;
	// StandbyPeers the connected links held as failover paths.
	ActivePeers  []string
	StandbyPeers []string
	// PendingResync counts promoted links whose SubSet exchange is still
	// in flight; Failovers completed or in-progress dead-link handoffs;
	// Reroutes events re-routed from dead links' spools onto promoted
	// paths.
	PendingResync int
	Failovers     uint64
	Reroutes      uint64
	// Reconciles counts control-plane passes that changed the dial-worker
	// set; DeadLinkCloses connections closed by the heartbeat monitor.
	Reconciles     uint64
	DeadLinkCloses uint64
	// IntendedPeers is the runtime-mutable set of addresses this broker
	// keeps dialed.
	IntendedPeers []string
}

// TopologyStats snapshots the control plane via a round-trip through the
// core goroutine.
func (s *Server) TopologyStats() TopologyStats {
	st := TopologyStats{
		Self:           s.cfg.ID,
		Reconciles:     s.reconciles.Load(),
		DeadLinkCloses: s.deadLinks.Load(),
		IntendedPeers:  s.IntendedPeers(),
	}
	s.coreQuery(func() {
		st.Brokers = s.topo.Brokers()
		st.Edges = len(s.topo.Edges())
		st.PendingResync = len(s.pendingResync)
		st.Failovers = s.failovers
		st.Reroutes = s.reroutes
		for id, link := range s.peerLinks {
			switch {
			case link.active:
				st.ActivePeers = append(st.ActivePeers, id)
			case link.pc != nil:
				st.StandbyPeers = append(st.StandbyPeers, id)
			}
		}
		sort.Strings(st.ActivePeers)
		sort.Strings(st.StandbyPeers)
	})
	return st
}
