package broker

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// Consumer-group tests: competing delivery, durable backlog under the
// group cursor, and the redelivery contract — a member killed
// mid-stream loses nothing, survivors see no duplicates.

// groupMember joins the group on srv and collects what it processes.
func groupMember(t *testing.T, srv *Server, id, group string, col *collector) *Subscriber {
	t.Helper()
	sub, err := DialSubscriber(srv.Addr(), id,
		filter.MustParseFilter(`topic = "g"`),
		SubscriberOptions{Group: group}, col.add)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sub.Close() })
	return sub
}

func publishGroupEvents(t *testing.T, srv *Server, from, n int) {
	t.Helper()
	pub, err := DialPublisher(srv.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < n; i++ {
		ev := event.NewBuilder("Tick").Str("topic", "g").ID(uint64(from + i)).Build()
		if err := pub.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
}

// mergedIDs flattens several members' collected IDs.
func mergedIDs(cols ...*collector) []uint64 {
	var all []uint64
	for _, c := range cols {
		all = append(all, c.ids()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// requireExactly asserts the merged IDs are exactly 1..n, each once —
// no loss, no duplication.
func requireExactly(t *testing.T, all []uint64, n int) {
	t.Helper()
	if len(all) != n {
		t.Fatalf("processed %d events, want %d: %v", len(all), n, all)
	}
	for i, id := range all {
		if id != uint64(i+1) {
			t.Fatalf("merged IDs not exactly 1..%d: %v", n, all)
		}
	}
}

// TestConsumerGroupCompetingDelivery: three members share the stream —
// every event goes to exactly one member, and the round-robin spreads
// the load across all of them.
func TestConsumerGroupCompetingDelivery(t *testing.T) {
	srv := startPeer(t, "A", ServerConfig{})
	cols := [3]*collector{{}, {}, {}}
	for i, col := range cols {
		groupMember(t, srv, fmt.Sprintf("m%d", i), "workers", col)
	}
	const total = 30
	publishGroupEvents(t, srv, 1, total)
	waitFor(t, "the group to process every event", func() bool {
		return cols[0].len()+cols[1].len()+cols[2].len() == total
	})
	requireExactly(t, mergedIDs(cols[0], cols[1], cols[2]), total)
	for i, col := range cols {
		if col.len() == 0 {
			t.Errorf("member m%d processed nothing; round-robin did not spread", i)
		}
	}
	st := srv.PartitionStats()
	if st.Groups != 1 || st.Members != 3 {
		t.Fatalf("groups=%d members=%d, want 1/3", st.Groups, st.Members)
	}
}

// TestConsumerGroupRedelivery kills a member mid-stream: its handler
// wedges on the first delivery, so everything leased to it is
// unacknowledged and must redeliver to the surviving member — while
// everything the survivor already acknowledged must not. Exactly-once
// observation here is by construction: the wedged member never finishes
// (so never acks, so never counts), and acknowledged leases are closed.
func TestConsumerGroupRedelivery(t *testing.T) {
	srv := startPeer(t, "A", ServerConfig{DataDir: t.TempDir()})

	var live collector
	gate := make(chan struct{})
	var wedgedOnce sync.Once
	wedged := make(chan struct{})
	// The doomed member records nothing: its handler announces the wedge
	// and blocks until the test ends.
	doomed, err := DialSubscriber(srv.Addr(), "doomed",
		filter.MustParseFilter(`topic = "g"`),
		SubscriberOptions{Group: "workers"}, func(*event.Event) {
			wedgedOnce.Do(func() { close(wedged) })
			<-gate
		})
	if err != nil {
		t.Fatal(err)
	}
	defer close(gate)
	groupMember(t, srv, "live", "workers", &live)

	const total = 20
	publishGroupEvents(t, srv, 1, total)
	// Wait until the doomed member is provably wedged holding a lease,
	// and the survivor has drained its own share.
	<-wedged
	waitFor(t, "live member to drain its share", func() bool { return live.len() >= total/2-1 })

	// Kill the doomed member's connection without unsubscribing — the
	// broker must notice the death, forfeit its leases, and redeliver
	// every unacknowledged event to the survivor.
	doomed.conn.Close()
	waitFor(t, "redelivery to the survivor", func() bool { return live.len() == total })
	requireExactly(t, mergedIDs(&live), total)
	// The survivor acknowledged everything: no leases may stay open.
	waitFor(t, "all leases acknowledged", func() bool {
		open := -1
		srv.coreQuery(func() {
			for _, g := range srv.groups {
				open = g.leases.Outstanding()
			}
		})
		return open == 0
	})
}

// TestConsumerGroupDurableBacklog: a group whose members all died keeps
// its subscription, spills arrivals to the group cursor, and replays
// them — oldest first — to the next member that joins.
func TestConsumerGroupDurableBacklog(t *testing.T) {
	srv := startPeer(t, "A", ServerConfig{DataDir: t.TempDir()})
	var first collector
	m := groupMember(t, srv, "m1", "workers", &first)
	publishGroupEvents(t, srv, 1, 5)
	waitFor(t, "first member to drain", func() bool { return first.len() == 5 })

	// Abrupt death (no unsubscribe): the group must survive memberless.
	m.conn.Close()
	waitFor(t, "broker to see the death", func() bool {
		return srv.PartitionStats().Members == 0
	})
	if srv.PartitionStats().Groups != 1 {
		t.Fatal("group dissolved on member death; must survive for rejoin")
	}
	publishGroupEvents(t, srv, 6, 5)
	waitFor(t, "backlog to land in the store", func() bool {
		return srv.StoreStats().Appended >= 5
	})

	var second collector
	groupMember(t, srv, "m2", "workers", &second)
	waitFor(t, "backlog to replay to the newcomer", func() bool { return second.len() == 5 })
	ids := second.ids()
	for i, id := range ids {
		if id != uint64(6+i) {
			t.Fatalf("backlog replayed out of order: %v", ids)
		}
	}
}

// TestConsumerGroupLeaseExpiry: a member that goes silent without
// disconnecting (a wedged handler) forfeits its leases at the TTL sweep
// and the events redeliver to the healthy member.
func TestConsumerGroupLeaseExpiry(t *testing.T) {
	srv := startPeer(t, "A", ServerConfig{
		TTL:           200 * time.Millisecond,
		GroupLeaseTTL: 200 * time.Millisecond,
	})
	gate := make(chan struct{})
	defer close(gate)
	var wedgedOnce sync.Once
	wedged := make(chan struct{})
	_, err := DialSubscriber(srv.Addr(), "stuck",
		filter.MustParseFilter(`topic = "g"`),
		SubscriberOptions{Group: "workers", RenewEvery: 50 * time.Millisecond},
		func(*event.Event) {
			wedgedOnce.Do(func() { close(wedged) })
			<-gate
		})
	if err != nil {
		t.Fatal(err)
	}
	var live collector
	sub, err := DialSubscriber(srv.Addr(), "ok",
		filter.MustParseFilter(`topic = "g"`),
		SubscriberOptions{Group: "workers", RenewEvery: 50 * time.Millisecond}, live.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const total = 6
	publishGroupEvents(t, srv, 1, total)
	<-wedged
	// The stuck member holds at least one unacknowledged lease; the
	// sweep must expire it and hand the event to the healthy member.
	// (The stuck member's connection stays up the whole time — only the
	// lease deadline triggers this path.)
	waitFor(t, "expired leases to redeliver", func() bool { return live.len() == total })
	requireExactly(t, mergedIDs(&live), total)
}
