package broker

import (
	"fmt"
	"math/rand/v2"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/transport"
)

// Control-plane and failover tests: runtime re-peering, the spanning-tree
// election over redundant meshes, broker-death failover, and the
// wire-level link maintenance paths (duplicate connections, saturated
// control channels).

func TestJitterBackoff(t *testing.T) {
	rng := rand.New(rand.NewPCG(addrSeed("127.0.0.1:7001"), 0))
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		if got := jitterBackoff(rng, d); got < d/2 || got >= d {
			t.Fatalf("jitter %v outside [%v, %v)", got, d/2, d)
		}
	}
	// A delay too small to halve passes through instead of jittering to
	// zero (zero-floor jitter busy-dials).
	if got := jitterBackoff(rng, 1); got != 1 {
		t.Errorf("jitterBackoff(1ns) = %v, want 1ns", got)
	}
	// Same seed, same sequence: each worker's jitter stream is
	// reproducible under a fixed process seed.
	a := rand.New(rand.NewPCG(7, addrSeed("x")))
	b := rand.New(rand.NewPCG(7, addrSeed("x")))
	for i := 0; i < 10; i++ {
		if x, y := jitterBackoff(a, d), jitterBackoff(b, d); x != y {
			t.Fatalf("same seed diverged: %v vs %v", x, y)
		}
	}
}

// TestControlPlaneRuntimeRePeering drives the reconciler through a full
// add → use → remove cycle with no restart: AddPeer dials and federates,
// RemovePeer hangs up and forgets the intent.
func TestControlPlaneRuntimeRePeering(t *testing.T) {
	a := startPeer(t, "A", ServerConfig{})
	b := startPeer(t, "B", ServerConfig{})
	if got := b.IntendedPeers(); len(got) != 0 {
		t.Fatalf("fresh broker intends peers %v", got)
	}

	b.AddPeer(a.Addr())
	waitPeersUp(t, b, 1)
	waitPeersUp(t, a, 1)
	if got := b.IntendedPeers(); len(got) != 1 || got[0] != a.Addr() {
		t.Fatalf("intended peers = %v, want [%s]", got, a.Addr())
	}
	b.AddPeer(a.Addr()) // idempotent
	if got := b.IntendedPeers(); len(got) != 1 {
		t.Fatalf("re-adding an intended peer grew the set: %v", got)
	}

	// The runtime-added link carries traffic like a configured one.
	var got collector
	sub, err := DialSubscriber(a.Addr(), "carol",
		filter.MustParseFilter(`x = 1`), SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, "B to learn carol's interest", func() bool { return b.FederationFilters() == 1 })
	pub, err := DialPublisher(b.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(event.NewBuilder("T").Int("x", 1).ID(1).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery over the runtime-added link", func() bool { return got.len() == 1 })

	b.RemovePeer(a.Addr())
	if got := b.IntendedPeers(); len(got) != 0 {
		t.Fatalf("intended peers after remove = %v, want none", got)
	}
	waitFor(t, "B to hang up", func() bool {
		for _, ps := range b.PeerStats() {
			if ps.Up {
				return false
			}
		}
		return true
	})
	waitFor(t, "A to see the hangup", func() bool {
		for _, ps := range a.PeerStats() {
			if ps.Up {
				return false
			}
		}
		return true
	})
	if st := b.TopologyStats(); st.Reconciles < 2 {
		t.Errorf("reconciles = %d, want at least one start and one stop pass", st.Reconciles)
	}
}

// ringOf3 wires the smallest redundant mesh: A — B — C — A. The election
// must keep the two lexicographically lowest edges (A,B) and (A,C)
// active and hold (B,C) as a standby failover path.
func ringOf3(t *testing.T, cfgA, cfgB, cfgC ServerConfig) (a, b, c *Server) {
	t.Helper()
	a = startPeer(t, "A", cfgA)
	b = startPeer(t, "B", cfgB, a.Addr())
	c = startPeer(t, "C", cfgC, a.Addr(), b.Addr())
	waitPeersUp(t, a, 2)
	waitPeersUp(t, b, 2)
	waitPeersUp(t, c, 2)
	waitRingElected(t, a, b, c)
	return a, b, c
}

func waitRingElected(t *testing.T, a, b, c *Server) {
	t.Helper()
	waitFor(t, "the ring election to converge", func() bool {
		sa, sb, sc := a.TopologyStats(), b.TopologyStats(), c.TopologyStats()
		return fmt.Sprint(sa.ActivePeers) == "[B C]" &&
			fmt.Sprint(sb.ActivePeers) == "[A]" && fmt.Sprint(sb.StandbyPeers) == "[C]" &&
			fmt.Sprint(sc.ActivePeers) == "[A]" && fmt.Sprint(sc.StandbyPeers) == "[B]" &&
			sa.PendingResync+sb.PendingResync+sc.PendingResync == 0
	})
}

func TestRingElectsSpanningTree(t *testing.T) {
	a, b, c := ringOf3(t, ServerConfig{}, ServerConfig{}, ServerConfig{})
	for _, s := range []*Server{a, b, c} {
		st := s.TopologyStats()
		if st.Brokers != 3 || st.Edges != 3 {
			t.Errorf("%s database: %d brokers, %d edges, want 3 and 3", st.Self, st.Brokers, st.Edges)
		}
		if st.Failovers != 0 {
			t.Errorf("%s ran %d failovers on a healthy ring", st.Self, st.Failovers)
		}
	}
}

// TestBrokerDeathFailover is the PR's headline scenario: a ring loses a
// broker, the standby edge promotes, traffic keeps flowing exactly once
// and in order — then the broker returns and the original tree is
// restored, again without duplicates.
func TestBrokerDeathFailover(t *testing.T) {
	a, b, c := ringOf3(t, ServerConfig{}, ServerConfig{}, ServerConfig{})

	var got collector
	sub, err := DialSubscriber(b.Addr(), "carol",
		filter.MustParseFilter(`x = 1`), SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Carol's interest reaches C via the tree (B → A → C).
	waitFor(t, "C to learn carol's interest", func() bool { return c.FederationFilters() >= 1 })
	pub, err := DialPublisher(c.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(event.NewBuilder("T").Int("x", 1).ID(1).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-death delivery via the hub", func() bool { return got.len() == 1 })

	// Kill the hub. Both survivors lose their active link; the standby
	// (B,C) edge must promote and complete the failover handshake.
	addr := a.Addr()
	a.Close()
	waitFor(t, "C to fail over onto the standby edge", func() bool {
		st := c.TopologyStats()
		return st.Failovers >= 1 && st.PendingResync == 0 && fmt.Sprint(st.ActivePeers) == "[B]"
	})
	waitFor(t, "B to promote the standby edge", func() bool {
		st := b.TopologyStats()
		return st.PendingResync == 0 && fmt.Sprint(st.ActivePeers) == "[C]"
	})

	for id := uint64(2); id <= 3; id++ {
		if err := pub.Publish(event.NewBuilder("T").Int("x", 1).ID(id).Build()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "post-death delivery over the promoted edge", func() bool { return got.len() == 3 })
	if ids := got.ids(); fmt.Sprint(ids) != "[1 2 3]" {
		t.Fatalf("delivered %v, want [1 2 3] exactly once in order", ids)
	}

	// The hub returns on its old address: the survivors' dial workers
	// reconnect, the election restores the original tree, and the healed
	// (B,C) edge demotes — its interests withdrawn, so the next event
	// still arrives exactly once.
	a2 := startPeer(t, "A", ServerConfig{ListenAddr: addr})
	waitPeersUp(t, a2, 2)
	waitRingElected(t, a2, b, c)
	waitFor(t, "C to re-learn carol's interest via the restored hub", func() bool {
		return c.FederationFilters() >= 1
	})
	if err := pub.Publish(event.NewBuilder("T").Int("x", 1).ID(4).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restore delivery via the hub", func() bool { return got.len() == 4 })
	time.Sleep(20 * time.Millisecond) // a duplicate would trail the legitimate copy
	if ids := got.ids(); fmt.Sprint(ids) != "[1 2 3 4]" {
		t.Fatalf("delivered %v, want [1 2 3 4] exactly once in order", ids)
	}
}

// TestFailoverDrainsSpool pins the orphaned-spool re-route: events a dead
// active link spooled for replay must drain onto the promoted path at
// failover completion (when they match its freshly resynced interests)
// instead of waiting forever for a broker that is not coming back.
func TestFailoverDrainsSpool(t *testing.T) {
	dir := t.TempDir()
	a, b, c := ringOf3(t, ServerConfig{}, ServerConfig{},
		ServerConfig{DataDir: filepath.Join(dir, "C")})

	var got collector
	sub, err := DialSubscriber(b.Addr(), "carol",
		filter.MustParseFilter(`x = 1`), SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, "C to learn carol's interest", func() bool { return c.FederationFilters() >= 1 })

	// Seed C's spool for the A link — the state left behind when frames
	// queued for A were salvaged after its connection died mid-replay.
	evs := []*event.Raw{
		event.EncodeRaw(event.NewBuilder("T").Int("x", 1).ID(10).Build()),
		event.EncodeRaw(event.NewBuilder("T").Int("x", 1).ID(11).Build()),
		event.EncodeRaw(event.NewBuilder("T").Int("x", 2).ID(12).Build()), // matches no one: must re-spool
	}
	ok := c.coreQuery(func() {
		if !c.storeBatchFor(spoolKey("A"), evs) {
			t.Error("spool seed failed")
		}
	})
	if !ok {
		t.Fatal("core query failed")
	}

	a.Close()
	waitFor(t, "C to complete the failover", func() bool {
		st := c.TopologyStats()
		return st.Failovers >= 1 && st.PendingResync == 0 && fmt.Sprint(st.ActivePeers) == "[B]"
	})
	if st := c.TopologyStats(); st.Reroutes != 2 {
		t.Errorf("reroutes = %d, want 2 (the unmatched orphan re-spools)", st.Reroutes)
	}
	waitFor(t, "orphaned events to reach carol via the promoted edge", func() bool {
		return got.len() == 2
	})
	if ids := got.ids(); fmt.Sprint(ids) != "[10 11]" {
		t.Fatalf("delivered %v, want [10 11] in spool order", ids)
	}
}

// TestSendCtrlSaturationRecyclesLink pins the recycle path regression: a
// control-channel send that finds the channel saturated must detach the
// connection from the link (link.pc = nil, synced = false) while closing
// it — leaving the dead conn attached would shadow the redial and wedge
// the link until a TCP timeout.
func TestSendCtrlSaturationRecyclesLink(t *testing.T) {
	a := startPeer(t, "A", ServerConfig{})
	b := startPeer(t, "B", ServerConfig{}, a.Addr())
	defer b.Close()
	waitPeersUp(t, a, 1)
	waitPeersUp(t, b, 1)

	// Inside A's core: stop the writer so nothing drains, fill the
	// control channel, then send one more control frame.
	ok := a.coreQuery(func() {
		link := a.peerLinks["B"]
		pc := link.pc
		pc.close()
		<-pc.writerDone
		for pc.tryCtl(transport.PeerPing{}) {
		}
		a.sendCtrl(link, transport.PeerPing{})
		if link.pc != nil {
			t.Error("saturated control send left the dead connection attached to the link")
		}
		if link.synced {
			t.Error("recycled link still marked synced")
		}
	})
	if !ok {
		t.Fatal("core query failed")
	}
	// B's dial worker redials; the fresh connection must promote and
	// resync — proving the recycle left the link claimable.
	waitFor(t, "the link to recover on a fresh connection", func() bool {
		st := a.TopologyStats()
		return len(st.ActivePeers) == 1 && st.PendingResync == 0
	})
}

// fakePeer is a raw transport connection handshaking as a federation
// peer: it lets a test script exact wire sequences (duplicate handshakes,
// hand-built SubSets) that a real broker won't produce on demand.
type fakePeer struct {
	t    *testing.T
	conn net.Conn

	mu     sync.Mutex
	events []uint64
	closed chan struct{}
}

func dialFakePeer(t *testing.T, addr, id string) *fakePeer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fp := &fakePeer{t: t, conn: conn, closed: make(chan struct{})}
	t.Cleanup(func() { conn.Close() })
	fp.send(transport.PeerHello{ID: id})
	go fp.drain()
	return fp
}

func (fp *fakePeer) send(m transport.Message) {
	fp.t.Helper()
	if err := transport.WriteFrame(fp.conn, m); err != nil {
		fp.t.Fatalf("fake peer write: %v", err)
	}
}

// drain reads frames until the broker closes the connection, keeping the
// IDs of forwarded events and discarding control traffic.
func (fp *fakePeer) drain() {
	for {
		m, err := transport.ReadFrame(fp.conn)
		if err != nil {
			close(fp.closed)
			return
		}
		fp.mu.Lock()
		switch fw := m.(type) {
		case transport.Forward:
			fp.events = append(fp.events, fw.Event.EventID())
		case transport.ForwardBatch:
			for _, ev := range fw.Events {
				fp.events = append(fp.events, ev.EventID())
			}
		}
		fp.mu.Unlock()
	}
}

func (fp *fakePeer) ids() []uint64 {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return append([]uint64(nil), fp.events...)
}

func (fp *fakePeer) dead() bool {
	select {
	case <-fp.closed:
		return true
	default:
		return false
	}
}

// TestDuplicatePeerConnReplaced pins the latest-handshake-wins rule: a
// second connection claiming an already-connected peer ID replaces the
// first (which is closed), the link's learned interests survive the
// swap, and subsequent forwards leave on the new connection only.
func TestDuplicatePeerConnReplaced(t *testing.T) {
	b := startPeer(t, "B", ServerConfig{})
	p1 := dialFakePeer(t, b.Addr(), "X")
	waitPeersUp(t, b, 1)
	// X advertises its adjacency so the election trusts the edge, then
	// hands B one interest over the first connection.
	p1.send(transport.LinkState{Origin: "X", Seq: 1, Peers: []string{"B"}})
	p1.send(transport.SubSet{Entries: []transport.SubEntry{
		{Hops: 1, Filter: filter.MustParseFilter(`x = 1`)},
	}})
	waitFor(t, "B to learn X's interest", func() bool { return b.FederationFilters() == 1 })

	// Second handshake as the same peer: a reconnect racing its own
	// half-dead predecessor.
	p2 := dialFakePeer(t, b.Addr(), "X")
	waitFor(t, "the first connection to be closed", p1.dead)
	waitPeersUp(t, b, 1)
	if n := b.FederationFilters(); n != 1 {
		t.Fatalf("interests after replacement = %d, want 1 (state is link-keyed, not conn-keyed)", n)
	}

	pub, err := DialPublisher(b.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(event.NewBuilder("T").Int("x", 1).ID(5).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the forward to arrive on the replacement connection", func() bool {
		return len(p2.ids()) == 1
	})
	if ids := p2.ids(); ids[0] != 5 {
		t.Fatalf("replacement connection got event %d, want 5", ids[0])
	}
	if n := len(p1.ids()); n != 0 {
		t.Errorf("old connection received %d forwards after replacement", n)
	}
}
