package broker

import (
	"log/slog"
	"testing"

	"eventsys/internal/metrics"
	"eventsys/internal/transport"
)

// TestSendToCountsDrops: a message for a saturated peer is dropped and
// the drop lands in the broker's counters (surfacing through Stats()).
func TestSendToCountsDrops(t *testing.T) {
	s := &Server{
		cfg:      ServerConfig{ID: "b", Stage: 1},
		log:      slog.New(slog.DiscardHandler),
		counters: &metrics.Counters{},
	}
	pc := &peerConn{id: "slow", out: make(chan transport.Message, 1)}
	s.sendTo(pc, transport.Renew{ID: "a"}) // fills the queue
	if got := s.Stats().Dropped; got != 0 {
		t.Fatalf("Dropped after successful send = %d, want 0", got)
	}
	s.sendTo(pc, transport.Renew{ID: "b"}) // queue full: dropped
	s.sendTo(pc, transport.Renew{ID: "c"})
	if got := s.Stats().Dropped; got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
}
