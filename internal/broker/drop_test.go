package broker

import (
	"context"
	"log/slog"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/flow"
	"eventsys/internal/metrics"
	"eventsys/internal/transport"
)

// TestDropPolicyCountsDrops: events pushed at a saturated outbound
// queue under a drop policy land in the broker's counters (surfacing
// through Stats()), exactly one count per event — batches included.
func TestDropPolicyCountsDrops(t *testing.T) {
	s := &Server{
		cfg:      ServerConfig{ID: "b", Stage: 1, FlowPolicy: flow.DropNewest, FlowWindow: 1},
		log:      slog.New(slog.DiscardHandler),
		counters: &metrics.Counters{},
		ctx:      context.Background(),
	}
	pc := s.newPeerConn(nil)
	ev := event.EncodeRaw(event.NewBuilder("Stock").Str("symbol", "A").Build())
	if out := pc.out.Push(transport.Deliver{Event: ev}); out != flow.Enqueued {
		t.Fatalf("first push outcome %v, want enqueued", out)
	}
	if got := s.Stats().Dropped; got != 0 {
		t.Fatalf("Dropped after successful send = %d, want 0", got)
	}
	if out := pc.out.Push(transport.Deliver{Event: ev}); out != flow.Dropped {
		t.Fatalf("saturated push outcome %v, want dropped", out)
	}
	// A dropped batch counts every event it carried.
	pc.out.Push(transport.PublishBatch{Events: []*event.Raw{ev, ev}})
	if got := s.Stats().Dropped; got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

// TestControlChannelNeverShedsByPolicy: control frames ride the
// priority channel, untouched by the event policy; only a wedged writer
// (full channel) drops them, counted.
func TestControlChannelCountsOverflow(t *testing.T) {
	s := &Server{
		cfg:      ServerConfig{ID: "b", Stage: 1, FlowPolicy: flow.DropNewest, FlowWindow: 1},
		log:      slog.New(slog.DiscardHandler),
		counters: &metrics.Counters{},
		ctx:      context.Background(),
	}
	pc := s.newPeerConn(nil)
	for i := 0; i < ctlBuffer; i++ {
		s.sendTo(pc, transport.Renew{ID: "a"})
	}
	if got := s.Stats().Dropped; got != 0 {
		t.Fatalf("Dropped while channel had room = %d, want 0", got)
	}
	s.sendTo(pc, transport.Renew{ID: "b"})
	if got := s.Stats().Dropped; got != 1 {
		t.Fatalf("Dropped after overflow = %d, want 1", got)
	}
}
