package broker

import (
	"fmt"
	"net"
	"sync"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/transport"
	"eventsys/internal/typing"
)

// Publisher is a client that injects events (and advertisements) at a
// broker, normally the root. Safe for concurrent use.
//
// Publishers participate in credit-based admission control: the broker
// grants an event credit window on connect and replenishes it as its
// core actually processes events, so Publish blocks — instead of
// flooding a saturated hierarchy — once the window is exhausted. A
// broker that never grants leaves the publisher ungoverned (legacy
// behavior).
type Publisher struct {
	mu   sync.Mutex
	conn net.Conn
	seq  uint64

	gate   *flow.Gate
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// DialPublisher connects a publisher to the broker at addr.
func DialPublisher(addr, id string) (*Publisher, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
	}
	if err := transport.WriteFrame(c, transport.Hello{Kind: transport.PeerPublisher, ID: id}); err != nil {
		c.Close()
		return nil, fmt.Errorf("broker: publisher handshake: %w", err)
	}
	p := &Publisher{conn: c, gate: flow.NewGate(), closed: make(chan struct{})}
	p.wg.Add(1)
	go p.readLoop()
	return p, nil
}

// readLoop consumes the broker's credit grants, acknowledging the first
// one so the broker knows this publisher honors admission control.
func (p *Publisher) readLoop() {
	defer p.wg.Done()
	acked := false
	for {
		m, err := transport.ReadFrame(p.conn)
		if err != nil {
			return
		}
		if c, ok := m.(transport.Credit); ok {
			p.gate.Grant(int(c.Grant))
			if !acked {
				acked = true
				p.mu.Lock()
				_ = transport.WriteFrame(p.conn, transport.CreditAck{Window: c.Grant})
				p.mu.Unlock()
			}
		}
	}
}

// CreditWaits reports how often Publish had to wait for broker credit —
// the admission-control backpressure this publisher has experienced.
func (p *Publisher) CreditWaits() uint64 { return p.gate.Waits() }

// Publish sends one event. The event receives a publisher-local sequence
// ID when it has none. Publish blocks while the broker's credit window
// is exhausted (a saturated hierarchy throttles its publishers).
func (p *Publisher) Publish(e *event.Event) error {
	if e == nil {
		return fmt.Errorf("broker: nil event")
	}
	if !p.gate.Acquire(1, p.closed, nil) {
		return fmt.Errorf("broker: publisher closed")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.ID == 0 {
		p.seq++
		e.ID = p.seq
	}
	// The one and only encode of this event's life: brokers match, batch,
	// forward and persist these bytes without ever re-encoding them.
	return transport.WriteFrame(p.conn, transport.Publish{Event: event.EncodeRaw(e)})
}

// PublishBatch sends a run of events in one wire frame, amortizing
// framing and syscall cost; the broker processes them in slice order, so
// the batch is equivalent to (and faster than) publishing each event in
// sequence. Events without an ID receive publisher-local sequence IDs.
// Like Publish, it blocks while the broker's credit window is exhausted
// (a batch may overshoot the remaining window once; the deficit repays
// before the next send).
func (p *Publisher) PublishBatch(events []*event.Event) error {
	if len(events) == 0 {
		return nil
	}
	if !p.gate.Acquire(len(events), p.closed, nil) {
		return fmt.Errorf("broker: publisher closed")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	raws := make([]*event.Raw, len(events))
	for i, e := range events {
		if e == nil {
			return fmt.Errorf("broker: nil event in batch")
		}
		if e.ID == 0 {
			p.seq++
			e.ID = p.seq
		}
		raws[i] = event.EncodeRaw(e)
	}
	return transport.WriteFrame(p.conn, transport.PublishBatch{Events: raws})
}

// Advertise announces an event class schema; the broker disseminates it
// down the tree.
func (p *Publisher) Advertise(ad *typing.Advertisement) error {
	if err := ad.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return transport.WriteFrame(p.conn, transport.Advertise{Ad: ad})
}

// Close terminates the connection, waking any Publish blocked on
// credit.
func (p *Publisher) Close() error {
	var err error
	p.once.Do(func() {
		close(p.closed)
		p.mu.Lock()
		err = p.conn.Close()
		p.mu.Unlock()
		p.wg.Wait()
	})
	return err
}

// SubscriberOptions tune a subscriber client.
type SubscriberOptions struct {
	// RenewEvery sends lease renewals at this period; 0 disables them
	// (use with brokers running without TTL).
	RenewEvery time.Duration
	// Conformance is used for the client-side perfect filtering; nil
	// means exact type matching.
	Conformance filter.Conformance
	// MaxRedirects bounds the join-At walk (default 8).
	MaxRedirects int
	// CreditWindow is the event credit window this subscriber grants its
	// broker (0 = the flow default, 1024). The grant replenishes as the
	// handler consumes events, so a slow handler throttles the broker's
	// writer — which applies the broker's flow policy — instead of
	// letting TCP buffers absorb unbounded backlog. Negative disables
	// credit grants (legacy ungoverned delivery).
	CreditWindow int
}

// Subscriber is a client subscription: it walks the placement protocol
// from the root, stays connected to the accepting broker, applies the
// original filter end-to-end and hands matching events to the handler.
type Subscriber struct {
	id       string
	original *filter.Filter
	stored   *filter.Filter
	conn     net.Conn
	opts     SubscriberOptions

	wg      sync.WaitGroup
	closed  chan struct{}
	once    sync.Once
	writeMu sync.Mutex

	meter *flow.Meter // nil when credit grants are disabled

	mu        sync.Mutex
	delivered uint64
	received  uint64
}

// DialSubscriber subscribes via the broker at rootAddr, following
// redirects to the accepting node, and starts delivering matching events
// to handler on a dedicated goroutine.
func DialSubscriber(rootAddr, id string, f *filter.Filter, opts SubscriberOptions, handler func(*event.Event)) (*Subscriber, error) {
	if f == nil {
		return nil, fmt.Errorf("broker: nil filter")
	}
	if handler == nil {
		return nil, fmt.Errorf("broker: nil handler")
	}
	if opts.MaxRedirects <= 0 {
		opts.MaxRedirects = 8
	}
	sub := &Subscriber{id: id, original: f, opts: opts, closed: make(chan struct{})}

	addr := rootAddr
	for hop := 0; hop < opts.MaxRedirects; hop++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
		}
		if err := transport.WriteFrame(c, transport.Hello{Kind: transport.PeerSubscriber, ID: id}); err != nil {
			c.Close()
			return nil, fmt.Errorf("broker: subscriber handshake: %w", err)
		}
		if err := transport.WriteFrame(c, transport.Subscribe{SubscriberID: id, Filter: f}); err != nil {
			c.Close()
			return nil, fmt.Errorf("broker: subscribe: %w", err)
		}
		reply, err := readReply(c)
		if err != nil {
			c.Close()
			return nil, err
		}
		if reply.Accepted {
			sub.conn = c
			sub.stored = reply.Stored
			if opts.CreditWindow >= 0 {
				// Grant the broker its initial event window; the read
				// loop replenishes it as the handler consumes, making a
				// slow handler visible — and governable — at the broker.
				sub.meter = flow.NewMeter(opts.CreditWindow)
				if err := transport.WriteFrame(c, transport.Credit{Grant: uint32(sub.meter.Window())}); err != nil {
					c.Close()
					return nil, fmt.Errorf("broker: credit grant: %w", err)
				}
			}
			sub.wg.Add(1)
			go sub.readLoop(handler)
			if opts.RenewEvery > 0 {
				sub.wg.Add(1)
				go sub.renewLoop()
			}
			return sub, nil
		}
		c.Close()
		if reply.TargetAddr == "" {
			return nil, fmt.Errorf("broker: subscription rejected without redirect target")
		}
		addr = reply.TargetAddr
	}
	return nil, fmt.Errorf("broker: too many redirects (last target %s)", addr)
}

// readReply reads frames until the subscribe reply arrives (events for
// an earlier incarnation of this subscriber ID may interleave).
func readReply(c net.Conn) (transport.SubscribeReply, error) {
	deadline := time.Now().Add(10 * time.Second)
	_ = c.SetReadDeadline(deadline)
	defer c.SetReadDeadline(time.Time{})
	for {
		m, err := transport.ReadFrame(c)
		if err != nil {
			return transport.SubscribeReply{}, fmt.Errorf("broker: awaiting subscribe reply: %w", err)
		}
		if rep, ok := m.(transport.SubscribeReply); ok {
			return rep, nil
		}
	}
}

func (s *Subscriber) readLoop(handler func(*event.Event)) {
	defer s.wg.Done()
	fr := transport.NewFrameReader(s.conn)
	for {
		m, err := fr.ReadFrame()
		if err != nil {
			return
		}
		d, ok := m.(transport.Deliver)
		if !ok || d.Event == nil {
			continue
		}
		s.mu.Lock()
		s.received++
		s.mu.Unlock()
		// Perfect end-to-end filtering with the original filter, evaluated
		// over the raw wire view: an event that fails it is never decoded.
		if s.original.Matches(d.Event, s.opts.Conformance) {
			s.mu.Lock()
			s.delivered++
			s.mu.Unlock()
			// The process's only materialization of this event.
			handler(d.Event.Event())
		}
		// Replenish the broker's credit only after the handler returns:
		// delivery cost is the handler's cost, and a slow handler must
		// slow the grants. Every transmitted event repays credit,
		// whether or not it survived perfect filtering.
		if s.meter != nil {
			if g := s.meter.Consume(1); g > 0 {
				s.writeMu.Lock()
				err := transport.WriteFrame(s.conn, transport.Credit{Grant: uint32(g)})
				s.writeMu.Unlock()
				if err != nil {
					return
				}
			}
		}
	}
}

func (s *Subscriber) renewLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.RenewEvery)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.writeMu.Lock()
			err := transport.WriteFrame(s.conn, transport.Renew{ID: s.id, Filter: s.stored})
			s.writeMu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// Stats returns (received, delivered) counts: events reaching the client
// and events passing perfect filtering.
func (s *Subscriber) Stats() (received, delivered uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.delivered
}

// StoredFilter returns the weakened filter the accepting broker stores.
func (s *Subscriber) StoredFilter() *filter.Filter { return s.stored }

// Close unsubscribes and tears the connection down.
func (s *Subscriber) Close() error {
	var err error
	s.once.Do(func() {
		close(s.closed)
		s.writeMu.Lock()
		err = transport.WriteFrame(s.conn, transport.Unsubscribe{ID: s.id, Filter: s.stored})
		s.writeMu.Unlock()
		s.conn.Close()
		s.wg.Wait()
	})
	return err
}
