package broker

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/partition"
	"eventsys/internal/transport"
	"eventsys/internal/typing"
)

// Publisher is a client that injects events (and advertisements) at a
// broker, normally the root. Safe for concurrent use.
//
// Publishers participate in credit-based admission control: each broker
// connection grants an event credit window on connect and replenishes
// it as that broker's core actually processes events, so Publish blocks
// — instead of flooding a saturated hierarchy — once the window is
// exhausted. A broker that never grants leaves the publisher ungoverned
// (legacy behavior).
//
// Against a partitioned replica group the publisher becomes
// partition-aware: the first publish lands at the bootstrap broker,
// which absorbs it and answers with a PartitionRedirect carrying the
// group's partition map. From then on the publisher maintains one
// connection per owning replica and fans each event directly to its
// partition's owner, stamping frames with the map epoch; a broker whose
// map has moved on answers with a fresh redirect. Unpartitioned brokers
// never redirect, and the publisher stays on its single bootstrap
// connection.
type Publisher struct {
	id   string
	boot string // bootstrap broker address

	mu    sync.Mutex
	conns map[string]*pubConn
	seq   uint64

	pmap   atomic.Pointer[partition.Map] // nil until the first redirect
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// pubConn is one broker connection with its credit gate.
type pubConn struct {
	c    net.Conn
	gate *flow.Gate
}

// DialPublisher connects a publisher to the broker at addr.
func DialPublisher(addr, id string) (*Publisher, error) {
	p := &Publisher{
		id:     id,
		boot:   addr,
		conns:  make(map[string]*pubConn),
		closed: make(chan struct{}),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.dialLocked(addr); err != nil {
		return nil, err
	}
	return p, nil
}

// dialLocked opens, registers and starts reading a broker connection.
// Callers hold p.mu.
func (p *Publisher) dialLocked(addr string) (*pubConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
	}
	if err := transport.WriteFrame(c, transport.Hello{Kind: transport.PeerPublisher, ID: p.id}); err != nil {
		c.Close()
		return nil, fmt.Errorf("broker: publisher handshake: %w", err)
	}
	pc := &pubConn{c: c, gate: flow.NewGate()}
	p.conns[addr] = pc
	p.wg.Add(1)
	go p.readLoop(pc)
	return pc, nil
}

// connFor returns the connection to addr, dialing one on first use; a
// failed dial falls back to the bootstrap connection (whose broker
// absorbs misrouted events regardless).
func (p *Publisher) connFor(addr string) *pubConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pc, ok := p.conns[addr]; ok {
		return pc
	}
	pc, err := p.dialLocked(addr)
	if err != nil {
		return p.conns[p.boot]
	}
	return pc
}

// routeFor picks the connection for one event: its partition owner's
// under the current map, the bootstrap connection without one.
func (p *Publisher) routeFor(e event.View) (*pubConn, uint64) {
	m := p.pmap.Load()
	if m == nil || len(m.Replicas) == 0 {
		return p.connFor(p.boot), 0
	}
	r := m.OwnerOf(e)
	if r.Addr == "" {
		return p.connFor(p.boot), m.Epoch
	}
	return p.connFor(r.Addr), m.Epoch
}

// readLoop consumes one connection's broker frames: credit grants
// (acknowledging the first, so the broker knows this publisher honors
// admission control) and partition redirects, which install the
// broker's current partition map for every subsequent publish.
func (p *Publisher) readLoop(pc *pubConn) {
	defer p.wg.Done()
	acked := false
	for {
		m, err := transport.ReadFrame(pc.c)
		if err != nil {
			return
		}
		switch f := m.(type) {
		case transport.Credit:
			pc.gate.Grant(int(f.Grant))
			if !acked {
				acked = true
				p.mu.Lock()
				_ = transport.WriteFrame(pc.c, transport.CreditAck{Window: f.Grant})
				p.mu.Unlock()
			}
		case transport.PartitionRedirect:
			reps := make([]partition.Replica, len(f.Replicas))
			for i, r := range f.Replicas {
				reps[i] = partition.Replica{ID: r.ID, Addr: r.Addr}
			}
			pm := partition.New(int(f.Partitions), reps)
			// The owners are recomputed locally (partition.New is the
			// same pure function the brokers run); the wire epoch is
			// authoritative so stamped frames always echo the sender.
			pm.Epoch = f.Epoch
			p.pmap.Store(pm)
		}
	}
}

// CreditWaits reports how often Publish had to wait for broker credit —
// the admission-control backpressure this publisher has experienced,
// summed across its broker connections.
func (p *Publisher) CreditWaits() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n uint64
	for _, pc := range p.conns {
		n += pc.gate.Waits()
	}
	return n
}

// PartitionEpoch returns the partition-map epoch the publisher is
// currently routing under (0 before any redirect).
func (p *Publisher) PartitionEpoch() uint64 {
	if m := p.pmap.Load(); m != nil {
		return m.Epoch
	}
	return 0
}

// Publish sends one event to its partition owner (or the bootstrap
// broker when unpartitioned). The event receives a publisher-local
// sequence ID when it has none. Publish blocks while the target
// broker's credit window is exhausted (a saturated hierarchy throttles
// its publishers).
func (p *Publisher) Publish(e *event.Event) error {
	if e == nil {
		return fmt.Errorf("broker: nil event")
	}
	pc, epoch := p.routeFor(e)
	if !pc.gate.Acquire(1, p.closed, nil) {
		return fmt.Errorf("broker: publisher closed")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.ID == 0 {
		p.seq++
		e.ID = p.seq
	}
	// The one and only encode of this event's life: brokers match, batch,
	// forward and persist these bytes without ever re-encoding them.
	return transport.WriteFrame(pc.c, transport.Publish{Event: event.EncodeRaw(e), Epoch: epoch})
}

// PublishBatch sends a run of events in one wire frame per target
// broker, amortizing framing and syscall cost; each broker processes
// its run in slice order, so per-source order holds within every
// partition (cross-partition order is the price of fanning in). Events
// without an ID receive publisher-local sequence IDs. Like Publish, it
// blocks while a target's credit window is exhausted (a batch may
// overshoot the remaining window once; the deficit repays before the
// next send). On error, runs already written to other brokers stay
// written.
func (p *Publisher) PublishBatch(events []*event.Event) error {
	if len(events) == 0 {
		return nil
	}
	for _, e := range events {
		if e == nil {
			return fmt.Errorf("broker: nil event in batch")
		}
	}
	m := p.pmap.Load()
	if m == nil || len(m.Replicas) == 0 {
		return p.publishRun(p.connFor(p.boot), 0, events)
	}
	// Bucket per owning replica, preserving slice order within each.
	order := make([]*pubConn, 0, len(m.Replicas))
	buckets := make(map[*pubConn][]*event.Event, len(m.Replicas))
	for _, e := range events {
		pc, _ := p.routeFor(e)
		if _, seen := buckets[pc]; !seen {
			order = append(order, pc)
		}
		buckets[pc] = append(buckets[pc], e)
	}
	for _, pc := range order {
		if err := p.publishRun(pc, m.Epoch, buckets[pc]); err != nil {
			return err
		}
	}
	return nil
}

// publishRun sends one batch run to one broker under its credit gate.
func (p *Publisher) publishRun(pc *pubConn, epoch uint64, events []*event.Event) error {
	if !pc.gate.Acquire(len(events), p.closed, nil) {
		return fmt.Errorf("broker: publisher closed")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	raws := make([]*event.Raw, len(events))
	for i, e := range events {
		if e.ID == 0 {
			p.seq++
			e.ID = p.seq
		}
		raws[i] = event.EncodeRaw(e)
	}
	if len(raws) == 1 {
		return transport.WriteFrame(pc.c, transport.Publish{Event: raws[0], Epoch: epoch})
	}
	return transport.WriteFrame(pc.c, transport.PublishBatch{Events: raws, Epoch: epoch})
}

// Advertise announces an event class schema at the bootstrap broker;
// the brokers disseminate it to every node.
func (p *Publisher) Advertise(ad *typing.Advertisement) error {
	if err := ad.Validate(); err != nil {
		return err
	}
	pc := p.connFor(p.boot)
	p.mu.Lock()
	defer p.mu.Unlock()
	return transport.WriteFrame(pc.c, transport.Advertise{Ad: ad})
}

// Close terminates every broker connection, waking any Publish blocked
// on credit.
func (p *Publisher) Close() error {
	var err error
	p.once.Do(func() {
		close(p.closed)
		p.mu.Lock()
		for _, pc := range p.conns {
			if cerr := pc.c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
	return err
}

// SubscriberOptions tune a subscriber client.
type SubscriberOptions struct {
	// RenewEvery sends lease renewals at this period; 0 disables them
	// (use with brokers running without TTL).
	RenewEvery time.Duration
	// Conformance is used for the client-side perfect filtering; nil
	// means exact type matching.
	Conformance filter.Conformance
	// MaxRedirects bounds the join-At walk (default 8).
	MaxRedirects int
	// CreditWindow is the event credit window this subscriber grants its
	// broker (0 = the flow default, 1024). The grant replenishes as the
	// handler consumes events, so a slow handler throttles the broker's
	// writer — which applies the broker's flow policy — instead of
	// letting TCP buffers absorb unbounded backlog. Negative disables
	// credit grants (legacy ungoverned delivery).
	CreditWindow int
	// Group names a consumer group to join instead of subscribing
	// individually: the group's members split the matching stream —
	// each event goes to exactly one member — and share one durable
	// cursor under the group's identity. Every member must dial the
	// same broker (a group never splits across brokers; the placement
	// walk is bypassed). Deliveries are leased: the client acknowledges
	// each one after the handler returns, and unacknowledged events
	// redeliver to surviving members when this member dies or stalls
	// past the broker's lease TTL. At-least-once, unordered across
	// members. Empty (the default) subscribes individually.
	Group string
}

// Subscriber is a client subscription: it walks the placement protocol
// from the root, stays connected to the accepting broker, applies the
// original filter end-to-end and hands matching events to the handler.
type Subscriber struct {
	id       string
	original *filter.Filter
	stored   *filter.Filter
	conn     net.Conn
	opts     SubscriberOptions

	wg      sync.WaitGroup
	closed  chan struct{}
	once    sync.Once
	writeMu sync.Mutex

	meter *flow.Meter // nil when credit grants are disabled

	mu        sync.Mutex
	delivered uint64
	received  uint64
}

// DialSubscriber subscribes via the broker at rootAddr, following
// redirects to the accepting node, and starts delivering matching events
// to handler on a dedicated goroutine.
func DialSubscriber(rootAddr, id string, f *filter.Filter, opts SubscriberOptions, handler func(*event.Event)) (*Subscriber, error) {
	if f == nil {
		return nil, fmt.Errorf("broker: nil filter")
	}
	if handler == nil {
		return nil, fmt.Errorf("broker: nil handler")
	}
	if opts.MaxRedirects <= 0 {
		opts.MaxRedirects = 8
	}
	sub := &Subscriber{id: id, original: f, opts: opts, closed: make(chan struct{})}

	addr := rootAddr
	for hop := 0; hop < opts.MaxRedirects; hop++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
		}
		if err := transport.WriteFrame(c, transport.Hello{Kind: transport.PeerSubscriber, ID: id}); err != nil {
			c.Close()
			return nil, fmt.Errorf("broker: subscriber handshake: %w", err)
		}
		if err := transport.WriteFrame(c, transport.Subscribe{SubscriberID: id, Filter: f, Group: opts.Group}); err != nil {
			c.Close()
			return nil, fmt.Errorf("broker: subscribe: %w", err)
		}
		reply, err := readReply(c)
		if err != nil {
			c.Close()
			return nil, err
		}
		if reply.Accepted {
			sub.conn = c
			sub.stored = reply.Stored
			if opts.CreditWindow >= 0 {
				// Grant the broker its initial event window; the read
				// loop replenishes it as the handler consumes, making a
				// slow handler visible — and governable — at the broker.
				sub.meter = flow.NewMeter(opts.CreditWindow)
				if err := transport.WriteFrame(c, transport.Credit{Grant: uint32(sub.meter.Window())}); err != nil {
					c.Close()
					return nil, fmt.Errorf("broker: credit grant: %w", err)
				}
			}
			sub.wg.Add(1)
			go sub.readLoop(handler)
			if opts.RenewEvery > 0 {
				sub.wg.Add(1)
				go sub.renewLoop()
			}
			return sub, nil
		}
		c.Close()
		if reply.TargetAddr == "" {
			return nil, fmt.Errorf("broker: subscription rejected without redirect target")
		}
		addr = reply.TargetAddr
	}
	return nil, fmt.Errorf("broker: too many redirects (last target %s)", addr)
}

// readReply reads frames until the subscribe reply arrives (events for
// an earlier incarnation of this subscriber ID may interleave).
func readReply(c net.Conn) (transport.SubscribeReply, error) {
	deadline := time.Now().Add(10 * time.Second)
	_ = c.SetReadDeadline(deadline)
	defer c.SetReadDeadline(time.Time{})
	for {
		m, err := transport.ReadFrame(c)
		if err != nil {
			return transport.SubscribeReply{}, fmt.Errorf("broker: awaiting subscribe reply: %w", err)
		}
		if rep, ok := m.(transport.SubscribeReply); ok {
			return rep, nil
		}
	}
}

func (s *Subscriber) readLoop(handler func(*event.Event)) {
	defer s.wg.Done()
	fr := transport.NewFrameReader(s.conn)
	for {
		m, err := fr.ReadFrame()
		if err != nil {
			return
		}
		d, ok := m.(transport.Deliver)
		if !ok || d.Event == nil {
			continue
		}
		s.mu.Lock()
		s.received++
		s.mu.Unlock()
		// Perfect end-to-end filtering with the original filter, evaluated
		// over the raw wire view: an event that fails it is never decoded.
		if s.original.Matches(d.Event, s.opts.Conformance) {
			s.mu.Lock()
			s.delivered++
			s.mu.Unlock()
			// The process's only materialization of this event.
			handler(d.Event.Event())
		}
		// A group delivery (nonzero lease sequence) is acknowledged once
		// the handler has returned — whether or not the event survived
		// perfect filtering, or its lease would redeliver it forever.
		if d.Seq != 0 {
			s.writeMu.Lock()
			err := transport.WriteFrame(s.conn, transport.GroupAck{Seq: d.Seq})
			s.writeMu.Unlock()
			if err != nil {
				return
			}
		}
		// Replenish the broker's credit only after the handler returns:
		// delivery cost is the handler's cost, and a slow handler must
		// slow the grants. Every transmitted event repays credit,
		// whether or not it survived perfect filtering.
		if s.meter != nil {
			if g := s.meter.Consume(1); g > 0 {
				s.writeMu.Lock()
				err := transport.WriteFrame(s.conn, transport.Credit{Grant: uint32(g)})
				s.writeMu.Unlock()
				if err != nil {
					return
				}
			}
		}
	}
}

func (s *Subscriber) renewLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.RenewEvery)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.writeMu.Lock()
			err := transport.WriteFrame(s.conn, transport.Renew{ID: s.id, Filter: s.stored})
			s.writeMu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// Stats returns (received, delivered) counts: events reaching the client
// and events passing perfect filtering.
func (s *Subscriber) Stats() (received, delivered uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.delivered
}

// StoredFilter returns the weakened filter the accepting broker stores.
func (s *Subscriber) StoredFilter() *filter.Filter { return s.stored }

// Close unsubscribes and tears the connection down.
func (s *Subscriber) Close() error {
	var err error
	s.once.Do(func() {
		close(s.closed)
		s.writeMu.Lock()
		err = transport.WriteFrame(s.conn, transport.Unsubscribe{ID: s.id, Filter: s.stored})
		s.writeMu.Unlock()
		s.conn.Close()
		s.wg.Wait()
	})
	return err
}
