package broker

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/transport"
)

// collector accumulates delivered events behind a mutex.
type collector struct {
	mu     sync.Mutex
	events []*event.Event
}

func (c *collector) add(e *event.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collector) ids() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, len(c.events))
	for i, e := range c.events {
		out[i] = e.ID
	}
	return out
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// startPeer starts a stage-1 standalone broker that dials the given
// peers.
func startPeer(t *testing.T, id string, cfg ServerConfig, peers ...string) *Server {
	t.Helper()
	cfg.ID = id
	cfg.Stage = 1
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	cfg.Peers = peers
	srv, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// waitPeersUp polls until the broker reports n up peer links.
func waitPeersUp(t *testing.T, s *Server, n int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%s to see %d peers up", s.cfg.ID, n), func() bool {
		up := 0
		for _, ps := range s.PeerStats() {
			if ps.Up {
				up++
			}
		}
		return up == n
	})
}

func TestFederationTwoBrokerDelivery(t *testing.T) {
	a := startPeer(t, "A", ServerConfig{})
	b := startPeer(t, "B", ServerConfig{}, a.Addr())
	waitPeersUp(t, a, 1)
	waitPeersUp(t, b, 1)

	var got collector
	sub, err := DialSubscriber(b.Addr(), "carol",
		filter.MustParseFilter(`class = "Stock" && symbol = "X"`),
		SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// The subscription propagates A-ward; wait until A holds it.
	waitFor(t, "A to learn carol's interest", func() bool {
		return a.FederationFilters() == 1
	})

	pub, err := DialPublisher(a.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(event.NewBuilder("Stock").Str("symbol", "X").ID(1).Build()); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(event.NewBuilder("Stock").Str("symbol", "Y").ID(2).Build()); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(event.NewBuilder("Stock").Str("symbol", "X").ID(3).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "matching events to arrive", func() bool { return got.len() == 2 })
	if ids := got.ids(); fmt.Sprint(ids) != "[1 3]" {
		t.Errorf("delivered IDs = %v, want [1 3]", ids)
	}
	// Reverse-path metrics: A forwarded the two matching events.
	ps := a.PeerStats()
	if len(ps) != 1 || ps[0].Forwards != 2 || !ps[0].Up {
		t.Errorf("A peer stats = %+v, want 2 forwards on an up link", ps)
	}
}

func TestFederationLineNoEcho(t *testing.T) {
	// A - B - C; subscribers at A and C, publish at B: each edge broker
	// delivers once, and nothing bounces back.
	a := startPeer(t, "A", ServerConfig{})
	b := startPeer(t, "B", ServerConfig{}, a.Addr())
	c := startPeer(t, "C", ServerConfig{}, b.Addr())
	waitPeersUp(t, b, 2)
	waitPeersUp(t, c, 1)

	var atA, atC collector
	subA, err := DialSubscriber(a.Addr(), "alice", filter.MustParseFilter(`x = 1`), SubscriberOptions{}, atA.add)
	if err != nil {
		t.Fatal(err)
	}
	defer subA.Close()
	subC, err := DialSubscriber(c.Addr(), "carol", filter.MustParseFilter(`x = 1`), SubscriberOptions{}, atC.add)
	if err != nil {
		t.Fatal(err)
	}
	defer subC.Close()
	waitFor(t, "interests to flood", func() bool {
		// alice: local at A, interest at B and C; carol: local at C,
		// interest at B and A → 6 filters total.
		return a.FederationFilters()+b.FederationFilters()+c.FederationFilters() == 6
	})

	pub, err := DialPublisher(b.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(event.NewBuilder("T").Int("x", 1).ID(9).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both subscribers to receive", func() bool {
		return atA.len() == 1 && atC.len() == 1
	})
	// No echo: B forwarded one copy per link; A and C forwarded nothing.
	time.Sleep(20 * time.Millisecond)
	if atA.len() != 1 || atC.len() != 1 {
		t.Errorf("duplicate delivery: A=%d C=%d", atA.len(), atC.len())
	}
	for _, srv := range []*Server{a, c} {
		for _, ps := range srv.PeerStats() {
			if ps.Forwards != 0 {
				t.Errorf("%s forwarded %d events, want 0", srv.cfg.ID, ps.Forwards)
			}
		}
	}
}

func TestFederationCoveringSuppression(t *testing.T) {
	a := startPeer(t, "A", ServerConfig{})
	b := startPeer(t, "B", ServerConfig{}, a.Addr())
	waitPeersUp(t, b, 1)

	var got collector
	broad, err := DialSubscriber(b.Addr(), "broad",
		filter.MustParseFilter(`class = "Stock" && price < 100`), SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer broad.Close()
	waitFor(t, "broad to propagate", func() bool { return a.FederationFilters() == 1 })

	narrow, err := DialSubscriber(b.Addr(), "narrow",
		filter.MustParseFilter(`class = "Stock" && price < 10`), SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer narrow.Close()

	// The covered narrow filter must be suppressed, not propagated.
	waitFor(t, "suppression to register", func() bool {
		for _, ps := range b.PeerStats() {
			if ps.Suppressed == 1 && ps.Propagated == 1 {
				return true
			}
		}
		return false
	})
	if n := a.FederationFilters(); n != 1 {
		t.Errorf("A stores %d interests, want 1 (narrow pruned)", n)
	}
	// Both subscribers still receive through the covering filter.
	pub, err := DialPublisher(a.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(event.NewBuilder("Stock").Float("price", 5).ID(1).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both to receive", func() bool { return got.len() == 2 })
}

func TestFederationReconnectResync(t *testing.T) {
	// Without stores: a link drop loses nothing already learned, and a
	// subscription added while the link is down arrives via resync.
	a := startPeer(t, "A", ServerConfig{})
	b := startPeer(t, "B", ServerConfig{}, a.Addr())
	waitPeersUp(t, b, 1)
	waitPeersUp(t, a, 1)

	// Restart A on the same address: B's supervisor redials.
	addr := a.Addr()
	a.Close()
	waitFor(t, "B to see the link down", func() bool {
		ps := b.PeerStats()
		return len(ps) == 1 && !ps[0].Up
	})

	var got collector
	sub, err := DialSubscriber(b.Addr(), "carol", filter.MustParseFilter(`x = 1`), SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	a2 := startPeer(t, "A", ServerConfig{ListenAddr: addr})
	waitPeersUp(t, b, 1)
	// The resync must hand carol's interest to the fresh A.
	waitFor(t, "resynced interest at A", func() bool { return a2.FederationFilters() == 1 })

	pub, err := DialPublisher(a2.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(event.NewBuilder("T").Int("x", 1).ID(5).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery after resync", func() bool { return got.len() == 1 })
}

// TestFederationHierarchyBridge combines both deployment shapes: a
// two-stage hierarchy (root R1, leaf L1) whose root federates with a
// standalone peer R2. Interests from subscribers below L1 must cross
// ReqInsert → federation plane so that events published at R2 route
// R2 → R1 → L1; several subscribers below one child aggregate under one
// federation key and must all survive (a later child filter must not
// replace an earlier one).
func TestFederationHierarchyBridge(t *testing.T) {
	r1, err := Serve(ServerConfig{ID: "R1", Stage: 2, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r1.Close)
	l1, err := Serve(ServerConfig{ID: "L1", Stage: 1, ListenAddr: "127.0.0.1:0", ParentAddr: r1.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l1.Close)
	r2 := startPeer(t, "R2", ServerConfig{}, r1.Addr()) // R2 dials the root
	waitPeersUp(t, r2, 1)

	// Two subscribers at the leaf with disjoint interests; both must
	// reach R2 through the @child aggregate.
	var atStock, atBond collector
	subS, err := DialSubscriber(l1.Addr(), "stocker",
		filter.MustParseFilter(`class = "Stock" && symbol = "ACME" && price < 10`),
		SubscriberOptions{}, atStock.add)
	if err != nil {
		t.Fatal(err)
	}
	defer subS.Close()
	subB, err := DialSubscriber(l1.Addr(), "bonder",
		filter.MustParseFilter(`class = "Bond" && rate < 3 && issuer = "CH"`),
		SubscriberOptions{}, atBond.add)
	if err != nil {
		t.Fatal(err)
	}
	defer subB.Close()
	waitFor(t, "both subtree interests to reach R2", func() bool {
		return r2.FederationFilters() == 2
	})

	pub, err := DialPublisher(r2.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for _, ev := range []*event.Event{
		event.NewBuilder("Stock").Str("symbol", "ACME").Float("price", 5).ID(1).Build(),
		event.NewBuilder("Bond").Float("rate", 2).Str("issuer", "CH").ID(2).Build(),
		event.NewBuilder("Stock").Str("symbol", "ACME").Float("price", 50).ID(3).Build(),
	} {
		if err := pub.Publish(ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "federated events to reach the leaf's subscribers", func() bool {
		return atStock.len() == 1 && atBond.len() == 1
	})
	time.Sleep(20 * time.Millisecond)
	if ids := atStock.ids(); fmt.Sprint(ids) != "[1]" {
		t.Errorf("stocker delivered %v, want [1]", ids)
	}
	if ids := atBond.ids(); fmt.Sprint(ids) != "[2]" {
		t.Errorf("bonder delivered %v, want [2]", ids)
	}
}

// TestPeerQueueSalvagedOnDrop pins the dead-connection salvage path:
// Forward frames that were enqueued on a peer link (consuming the
// durable cursor when they came from a replay) but never written to the
// socket must re-enter the durable spool when the link drops, not
// vanish with the writer goroutine.
func TestPeerQueueSalvagedOnDrop(t *testing.T) {
	dir := t.TempDir()
	a := startPeer(t, "A", ServerConfig{DataDir: filepath.Join(dir, "A")})
	b := startPeer(t, "B", ServerConfig{DataDir: filepath.Join(dir, "B")}, a.Addr())
	defer b.Close()
	waitPeersUp(t, a, 1)

	// Inside the core: tear the connection down (the writer exits and
	// stops draining), then strand frames in the queue and drop the
	// peer — exactly the state after a peer dies mid-replay.
	const stranded = 3
	ok := a.coreQuery(func() {
		link := a.peerLinks["B"]
		pc := link.pc
		pc.close()
		<-pc.writerDone
		for i := 1; i <= stranded; i++ {
			if !pc.out.TryPush(transport.Forward{Event: event.EncodeRaw(event.NewBuilder("T").ID(uint64(i)).Build())}) {
				t.Error("stranding push refused")
			}
		}
		a.dropPeer(pc)
	})
	if !ok {
		t.Fatal("core query failed")
	}
	var ps PeerLinkStats
	for _, st := range a.PeerStats() {
		if st.Peer == "B" {
			ps = st
		}
	}
	if ps.Spooled != stranded || ps.Dropped != 0 {
		t.Fatalf("peer stats after drop = %+v, want %d salvaged into the spool", ps, stranded)
	}
}
