package broker

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/flow"
	"eventsys/internal/testutil"
)

// slowCollector is a collector whose add sleeps per event, modeling a
// slow consumer.
type slowCollector struct {
	collector
	delay time.Duration
}

func (c *slowCollector) add(e *event.Event) {
	time.Sleep(c.delay)
	c.collector.add(e)
}

// waitForLong is waitFor with a soak-scale deadline.
func waitForLong(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	testutil.WaitUntilFor(t, d, what, cond)
}

// assertAscending verifies the publisher's order survived end to end:
// delivered IDs are strictly increasing (drop policies may leave gaps,
// but nothing is ever reordered or duplicated).
func assertAscending(t *testing.T, ids []uint64) {
	t.Helper()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("delivery order violated at %d: id %d after %d", i, ids[i], ids[i-1])
		}
	}
}

// soak publishes n events through a 2-broker federation (publisher at
// A, one slow subscriber at B) under the given policy and returns the
// brokers and the subscriber's collector once publishing is done.
func soak(t *testing.T, policy flow.Policy, window, n int, delay time.Duration, dataDir string) (a, b *Server, got *slowCollector) {
	t.Helper()
	cfgA := ServerConfig{FlowPolicy: policy, FlowWindow: window}
	cfgB := ServerConfig{FlowPolicy: policy, FlowWindow: window}
	if dataDir != "" {
		cfgA.DataDir = filepath.Join(dataDir, "A")
		cfgB.DataDir = filepath.Join(dataDir, "B")
	}
	a = startPeer(t, "A", cfgA)
	b = startPeer(t, "B", cfgB, a.Addr())
	waitPeersUp(t, a, 1)
	waitPeersUp(t, b, 1)

	got = &slowCollector{delay: delay}
	sub, err := DialSubscriber(b.Addr(), "slow", filter.MustParseFilter(`class = "T"`),
		SubscriberOptions{CreditWindow: window}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sub.Close() })
	waitFor(t, "interest to reach A", func() bool { return a.FederationFilters() > 0 })

	pub, err := DialPublisher(a.Addr(), "fast")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })
	for i := 1; i <= n; i++ {
		e := event.NewBuilder("T").Int("n", int64(i)).ID(uint64(i)).Build()
		if err := pub.Publish(e); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	return a, b, got
}

// totalDropped sums drop counters across brokers.
func totalDropped(servers ...*Server) uint64 {
	var n uint64
	for _, s := range servers {
		n += s.Stats().Dropped
	}
	return n
}

// TestFederationBlockSoak is the end-to-end lossless-backpressure soak:
// a fast publisher against one slow subscriber across a 2-broker
// federation under the Block policy. Every event arrives, in publish
// order, with zero drops anywhere, and no event queue ever grows past
// the configured window — the overload lives in the publisher's stalled
// Publish calls, not in memory.
func TestFederationBlockSoak(t *testing.T) {
	const window, n = 32, 1500
	a, b, got := soak(t, flow.Block, window, n, 100*time.Microsecond, "")
	waitForLong(t, 30*time.Second, "all events to arrive", func() bool { return got.len() == n })

	ids := got.ids()
	if len(ids) != n {
		t.Fatalf("delivered %d events, want %d", len(ids), n)
	}
	assertAscending(t, ids)
	if ids[0] != 1 || ids[n-1] != uint64(n) {
		t.Fatalf("delivered range [%d, %d], want [1, %d]", ids[0], ids[n-1], n)
	}
	if d := totalDropped(a, b); d != 0 {
		t.Fatalf("Block policy dropped %d events, want 0", d)
	}
	for _, srv := range []*Server{a, b} {
		for _, qs := range srv.FlowStats() {
			if strings.HasPrefix(qs.Name, "out/") && qs.DepthMax > window {
				t.Fatalf("%s %s depth high-water %d exceeds window %d",
					srv.cfg.ID, qs.Name, qs.DepthMax, window)
			}
		}
	}
	// The stall had to surface somewhere: either a queue made a producer
	// wait or a writer ran out of credit.
	var stalls, waits uint64
	for _, srv := range []*Server{a, b} {
		st := srv.Stats()
		stalls += st.Stalled
		waits += st.CreditWaits
	}
	if stalls+waits == 0 {
		t.Fatal("soak saturated nothing: no stalls and no credit waits recorded")
	}
}

// TestFederationDropOldestSoak runs the same soak under DropOldest: the
// system sheds load instead of stalling, every shed event is counted
// exactly once, and what survives is still in publish order.
func TestFederationDropOldestSoak(t *testing.T) {
	const window, n = 16, 1200
	a, b, got := soak(t, flow.DropOldest, window, n, 300*time.Microsecond, "")

	// Quiesce: delivered + dropped accounts for every published event.
	waitForLong(t, 30*time.Second, "conservation to converge", func() bool {
		return uint64(got.len())+totalDropped(a, b) == uint64(n)
	})
	ids := got.ids()
	assertAscending(t, ids)
	if len(ids) == n {
		t.Log("nothing dropped; soak did not saturate (still a valid run)")
	}
	if got, want := uint64(len(ids))+totalDropped(a, b), uint64(n); got != want {
		t.Fatalf("delivered+dropped = %d, want %d (every drop counted exactly once)", got, want)
	}
}

// TestFederationSpillSoak runs the soak under SpillToStore with durable
// stores on both brokers: overflow spills to disk instead of dropping,
// replays in order behind the queue, and every event still arrives.
func TestFederationSpillSoak(t *testing.T) {
	const window, n = 16, 1200
	a, b, got := soak(t, flow.SpillToStore, window, n, 200*time.Microsecond, t.TempDir())
	waitForLong(t, 30*time.Second, "all events to arrive (spool included)", func() bool {
		return got.len() == n
	})

	ids := got.ids()
	if len(ids) != n {
		t.Fatalf("delivered %d events, want %d", len(ids), n)
	}
	assertAscending(t, ids)
	if d := totalDropped(a, b); d != 0 {
		t.Fatalf("SpillToStore dropped %d events, want 0", d)
	}
	var spilled uint64
	for _, srv := range []*Server{a, b} {
		spilled += srv.Stats().Spilled
	}
	if spilled == 0 {
		t.Fatal("soak did not spill; slow consumer never saturated the window")
	}
}

// TestFlowConservationChaos drives a saturating burst through a
// mixed-policy federation — DropOldest at the publisher's broker (no
// store: shedding is its only relief), SpillToStore at the subscriber's
// — and checks the dead-letter ledger: every published event is, at
// quiesce, delivered, counted dropped by exactly one queue, or still
// pending in a durable store. Nothing vanishes, nothing double-counts.
func TestFlowConservationChaos(t *testing.T) {
	const window, n, batch = 8, 3000, 250
	dir := t.TempDir()
	a := startPeer(t, "A", ServerConfig{FlowPolicy: flow.DropOldest, FlowWindow: window})
	b := startPeer(t, "B", ServerConfig{
		FlowPolicy: flow.SpillToStore, FlowWindow: window,
		DataDir: filepath.Join(dir, "B"), SyncEvery: -1,
	}, a.Addr())
	waitPeersUp(t, a, 1)
	waitPeersUp(t, b, 1)

	got := &slowCollector{delay: 150 * time.Microsecond}
	sub, err := DialSubscriber(b.Addr(), "slow", filter.MustParseFilter(`class = "T"`),
		SubscriberOptions{CreditWindow: window}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, "interest to reach A", func() bool { return a.FederationFilters() > 0 })

	pub, err := DialPublisher(a.Addr(), "burst")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	next := uint64(1)
	for next <= n {
		evs := make([]*event.Event, 0, batch)
		for len(evs) < batch && next <= n {
			evs = append(evs, event.NewBuilder("T").Int("n", int64(next)).ID(next).Build())
			next++
		}
		if err := pub.PublishBatch(evs); err != nil {
			t.Fatal(err)
		}
	}

	ledger := func() (delivered, dropped, pending uint64) {
		delivered = uint64(got.len())
		dropped = totalDropped(a, b)
		pending = uint64(b.store.Stats().Pending)
		return
	}
	waitForLong(t, 30*time.Second, "the ledger to balance", func() bool {
		d, x, p := ledger()
		return d+x+p == n
	})
	d, x, p := ledger()
	t.Logf("ledger: %d delivered + %d dropped + %d stored = %d published", d, x, p, n)
	if d+x+p != n {
		t.Fatalf("conservation violated: %d + %d + %d != %d", d, x, p, n)
	}
	assertAscending(t, got.ids())
	if d == n {
		t.Log("burst never saturated; drops and spills untested this run")
	}
}

// TestDropPolicyRepaysCredit pins the inlet's credit accounting: events
// shed by a drop policy are consumed all the same, so their credit must
// flow back to the sender. A leak here would let a few hundred drops
// bleed the publisher's window dry and wedge Publish forever — turning
// a shedding policy into a stall.
func TestDropPolicyRepaysCredit(t *testing.T) {
	const window, n = 8, 400 // n >> several windows: a leak wedges early
	srv := startPeer(t, "A", ServerConfig{FlowPolicy: flow.DropNewest, FlowWindow: window})
	pub, err := DialPublisher(srv.Addr(), "burst")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	done := make(chan error, 1)
	go func() {
		for i := 1; i <= n; i++ {
			e := event.NewBuilder("T").Int("n", int64(i)).ID(uint64(i)).Build()
			if err := pub.Publish(e); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("publisher wedged after credit leak: %d credit waits", pub.CreditWaits())
	}
}
