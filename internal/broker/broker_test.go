package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/testutil"
	"eventsys/internal/typing"
)

// cluster spins up a root (stage len(layout)) with layout[i] brokers per
// lower stage on loopback sockets, e.g. layout {2} = 1 root + 2 leaves.
type cluster struct {
	root    *Server
	brokers []*Server
}

func startCluster(t *testing.T, leafs int, ttl time.Duration) *cluster {
	t.Helper()
	root, err := Serve(ServerConfig{ID: "root", Stage: 2, ListenAddr: "127.0.0.1:0", TTL: ttl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{root: root}
	t.Cleanup(func() {
		for _, b := range cl.brokers {
			b.Close()
		}
		root.Close()
	})
	for i := 0; i < leafs; i++ {
		leaf, err := Serve(ServerConfig{
			ID: fmt.Sprintf("N1.%d", i+1), Stage: 1, ListenAddr: "127.0.0.1:0",
			ParentAddr: root.Addr(), TTL: ttl, Seed: uint64(i + 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.brokers = append(cl.brokers, leaf)
	}
	// Await topology readiness: the root must see every leaf.
	deadline := time.Now().Add(5 * time.Second)
	for root.ChildBrokers() < leafs {
		if time.Now().After(deadline) {
			t.Fatalf("root saw %d children, want %d", root.ChildBrokers(), leafs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cl
}

func stockAd(t *testing.T) *typing.Advertisement {
	t.Helper()
	ad, err := typing.NewAdvertisement("Stock", 3, "symbol", "price")
	if err != nil {
		t.Fatal(err)
	}
	ad.StageAttrs = []int{2, 2, 0}
	if err := ad.Validate(); err != nil {
		t.Fatal(err)
	}
	return ad
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	testutil.WaitUntil(t, what, cond)
}

// waitAds polls until every broker in the cluster has seen the class
// advertisement — the precondition for subscribing anywhere.
func waitAds(t *testing.T, cl *cluster, class string) {
	t.Helper()
	waitFor(t, "advertisement to reach every broker", func() bool {
		if !cl.root.HasAdvertisement(class) {
			return false
		}
		for _, b := range cl.brokers {
			if !b.HasAdvertisement(class) {
				return false
			}
		}
		return true
	})
}

func TestNetworkedPublishSubscribe(t *testing.T) {
	cl := startCluster(t, 2, 0)

	pub, err := DialPublisher(cl.root.Addr(), "pub1")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise(stockAd(t)); err != nil {
		t.Fatal(err)
	}
	// Let the advertisement reach the leaves before subscribing.
	waitAds(t, cl, "Stock")

	var count atomic.Uint64
	sub, err := DialSubscriber(cl.root.Addr(), "s1",
		filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10`),
		SubscriberOptions{}, func(e *event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for _, p := range []float64{5, 9.5, 12} {
		e := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", p).Build()
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Publish(event.NewBuilder("Stock").Str("symbol", "Bar").Float("price", 1).Build()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "2 deliveries", func() bool { return count.Load() == 2 })
	received, delivered := sub.Stats()
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	// Pre-filtering: with the Stock advert, the leaf stores
	// (symbol, price) filters, so only symbol=Foo price<10 traffic
	// reaches the client.
	if received != delivered {
		t.Logf("received %d > delivered %d (weaker pre-filter at the edge)", received, delivered)
	}
}

func TestSubscriberRedirectedToLeaf(t *testing.T) {
	cl := startCluster(t, 2, 0)
	pub, err := DialPublisher(cl.root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise(stockAd(t)); err != nil {
		t.Fatal(err)
	}
	waitAds(t, cl, "Stock")

	sub, err := DialSubscriber(cl.root.Addr(), "s1",
		filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 5`),
		SubscriberOptions{}, func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// The accepting broker must be one of the leaves: exactly one leaf
	// stores one filter.
	waitFor(t, "leaf stores the filter", func() bool {
		total := 0
		for _, b := range cl.brokers {
			total += b.Stats().Filters
		}
		return total == 1
	})
	// The req-Insert to the root is asynchronous in the TCP runtime.
	waitFor(t, "root stores the propagated filter", func() bool {
		return cl.root.Stats().Filters == 1
	})
}

func TestSimilarSubscriptionsShareLeaf(t *testing.T) {
	cl := startCluster(t, 2, 0)
	pub, err := DialPublisher(cl.root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise(stockAd(t)); err != nil {
		t.Fatal(err)
	}
	waitAds(t, cl, "Stock")

	mk := func(id, src string) *Subscriber {
		s, err := DialSubscriber(cl.root.Addr(), id, filter.MustParseFilter(src),
			SubscriberOptions{}, func(*event.Event) {})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	mk("s1", `class = "Stock" && symbol = "DEF" && price < 10`)
	mk("s2", `class = "Stock" && symbol = "DEF" && price < 11`)
	// Both filters land on the same leaf (covering search at the root),
	// so one leaf holds 2 filters and the other none.
	waitFor(t, "clustered placement", func() bool {
		counts := []int{cl.brokers[0].Stats().Filters, cl.brokers[1].Stats().Filters}
		return counts[0]+counts[1] == 2 && (counts[0] == 0 || counts[1] == 0)
	})
}

func TestUnsubscribeNetworked(t *testing.T) {
	cl := startCluster(t, 1, 0)
	pub, err := DialPublisher(cl.root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	var count atomic.Uint64
	sub, err := DialSubscriber(cl.root.Addr(), "s1",
		filter.MustParseFilter(`class = "Stock" && symbol = "A"`),
		SubscriberOptions{}, func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	pubE := func() {
		e := event.NewBuilder("Stock").Str("symbol", "A").Float("price", 1).Build()
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}
	pubE()
	waitFor(t, "first delivery", func() bool { return count.Load() == 1 })
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "leaf drops the filter", func() bool {
		return cl.brokers[0].Stats().Filters == 0
	})
	pubE()
	time.Sleep(50 * time.Millisecond)
	if count.Load() != 1 {
		t.Errorf("delivered after unsubscribe: %d", count.Load())
	}
}

func TestLeaseExpiryNetworked(t *testing.T) {
	const ttl = 60 * time.Millisecond
	cl := startCluster(t, 1, ttl)
	var count atomic.Uint64
	// RenewEvery 0: the client never renews, so the broker expires the
	// lease after 3×TTL and sweeps it.
	sub, err := DialSubscriber(cl.root.Addr(), "s1",
		filter.MustParseFilter(`class = "Stock" && symbol = "A"`),
		SubscriberOptions{}, func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, "lease expiry", func() bool {
		return cl.brokers[0].Stats().Filters == 0 && cl.root.Stats().Filters == 0
	})
}

func TestRenewalKeepsNetworkedLeaseAlive(t *testing.T) {
	const ttl = 80 * time.Millisecond
	cl := startCluster(t, 1, ttl)
	pub, err := DialPublisher(cl.root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	var count atomic.Uint64
	sub, err := DialSubscriber(cl.root.Addr(), "s1",
		filter.MustParseFilter(`class = "Stock" && symbol = "A"`),
		SubscriberOptions{RenewEvery: ttl / 2}, func(*event.Event) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Live well past 3×TTL thanks to renewals.
	time.Sleep(6 * ttl)
	e := event.NewBuilder("Stock").Str("symbol", "A").Float("price", 1).Build()
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery after renewals", func() bool { return count.Load() == 1 })
}

func TestConcurrentNetworkedTraffic(t *testing.T) {
	cl := startCluster(t, 2, 0)
	pub, err := DialPublisher(cl.root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const subs = 10
	var total atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub, err := DialSubscriber(cl.root.Addr(), fmt.Sprintf("s%d", i),
			filter.MustParseFilter(fmt.Sprintf(`class = "Stock" && symbol = "S%d"`, i%3)),
			SubscriberOptions{}, func(*event.Event) { total.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sub.Close() })
	}
	const events = 90
	want := uint64(0)
	for i := 0; i < events; i++ {
		sym := fmt.Sprintf("S%d", i%3)
		for j := 0; j < subs; j++ {
			if fmt.Sprintf("S%d", j%3) == sym {
				want++
			}
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			e := event.NewBuilder("Stock").Str("symbol", fmt.Sprintf("S%d", i%3)).Float("price", 1).Build()
			if err := pub.Publish(e); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	waitFor(t, "all deliveries", func() bool { return total.Load() == want })
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(ServerConfig{Stage: 1, ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("missing ID should fail")
	}
	if _, err := Serve(ServerConfig{ID: "x", Stage: 0, ListenAddr: "127.0.0.1:0"}); err == nil {
		t.Error("stage 0 should fail")
	}
	if _, err := Serve(ServerConfig{ID: "x", Stage: 1, ListenAddr: "256.0.0.1:99999"}); err == nil {
		t.Error("bad address should fail")
	}
	if _, err := Serve(ServerConfig{ID: "x", Stage: 1, ListenAddr: "127.0.0.1:0", ParentAddr: "127.0.0.1:1"}); err == nil {
		t.Error("unreachable parent should fail")
	}
}

func TestClientValidation(t *testing.T) {
	cl := startCluster(t, 1, 0)
	if _, err := DialSubscriber(cl.root.Addr(), "x", nil, SubscriberOptions{}, func(*event.Event) {}); err == nil {
		t.Error("nil filter should fail")
	}
	if _, err := DialSubscriber(cl.root.Addr(), "x",
		filter.MustParseFilter(`a = 1`), SubscriberOptions{}, nil); err == nil {
		t.Error("nil handler should fail")
	}
	pub, err := DialPublisher(cl.root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(nil); err == nil {
		t.Error("nil event should fail")
	}
}
