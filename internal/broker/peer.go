package broker

import (
	"sort"

	"eventsys/internal/event"
	"eventsys/internal/flow"
	"eventsys/internal/metrics"
	"eventsys/internal/obs"
	"eventsys/internal/peering"
	"eventsys/internal/transport"
)

// peerSpoolPrefix namespaces the durable-store cursors that back peer
// links' spill queues; peerChildPrefix namespaces child brokers'
// aggregate interests on the federation plane. Subscriber IDs starting
// with "@" are rejected to keep both namespaces unaliasable.
const (
	peerSpoolPrefix = "@peer/"
	peerChildPrefix = "@child/"
)

// spoolKey returns the durable-store cursor key of a peer link.
func spoolKey(peerID string) string { return peerSpoolPrefix + peerID }

// childFedKey returns the federation-plane local key aggregating a child
// broker's subtree interests.
func childFedKey(childID string) string { return peerChildPrefix + childID }

// peerLink is one federation link's connection-independent state. It is
// owned by the core goroutine; the subscription/interest state lives in
// the shared peering.Core under the same ID.
type peerLink struct {
	id   string
	addr string    // last advertised listen address (metadata)
	pc   *peerConn // nil while the link is down

	// active mirrors the peering.Core activation flag: the spanning-tree
	// election promoted this link to carry traffic. A dead active link
	// (pc == nil, active) keeps its interests and spools matching events
	// — either until the peer reconnects, or until failover hands the
	// spool to a promoted standby edge.
	active bool
	// synced records that the current connection received its SubSet;
	// cleared whenever a connection attaches or detaches so the election
	// knows a (re-)promoted link needs a fresh resync.
	synced bool
	// failover marks a dead link whose traffic is being handed over to
	// freshly promoted edges; cleared when the orphaned spool drains.
	failover bool

	forwards uint64 // events enqueued to this link
	spooled  uint64 // events spilled to the durable store for this link
	dropped  uint64 // events lost (saturated queue, no store)
	resyncs  uint64 // SubSet syncs sent on (re-)establishment
}

// PeerLinkStats is a point-in-time snapshot of one federation link.
type PeerLinkStats struct {
	// Peer is the remote broker's ID; Addr its last advertised address.
	Peer string
	Addr string
	// Up reports whether a connection is currently attached; Active
	// whether the spanning-tree election selected the link to carry
	// traffic (a connected non-active link is a standby failover edge).
	Up     bool
	Active bool
	// Interests is the number of filters learned from the peer; Sent the
	// number propagated to it (after covering pruning).
	Interests int
	Sent      int
	// Propagated and Suppressed count subscription entries offered to
	// the link: sent versus pruned by covering.
	Propagated uint64
	Suppressed uint64
	// Forwards counts events enqueued to the link; Spooled events
	// spilled to the durable store while the link was down or
	// saturated; Dropped events lost with no store to spill to.
	Forwards uint64
	Spooled  uint64
	Dropped  uint64
	// Resyncs counts SubSet exchanges sent on link (re-)establishment.
	Resyncs uint64
	// Pending is the spooled backlog not yet replayed to the peer.
	Pending int
}

// handlePeerHello attaches a connection to its federation link (creating
// the link on first contact), replies with this broker's own PeerHello
// when the peer dialed us, and runs the topology handshake: ship the
// link-state database, announce the new adjacency, and re-run the
// election. The SubSet resync and spool replay ride the promotion — a
// link that connects as a standby failover edge carries nothing until
// elected.
func (s *Server) handlePeerHello(pc *peerConn, msg transport.PeerHello) {
	if msg.ID == "" || msg.ID == s.cfg.ID {
		s.log.Warn("rejecting peer hello", "peer", msg.ID)
		pc.close()
		return
	}
	link := s.ensurePeerLink(msg.ID)
	link.addr = msg.Addr
	if link.pc != nil && link.pc != pc {
		// Latest handshake wins: a reconnecting peer may race its own
		// half-dead previous connection, which would otherwise shadow
		// the live one until a TCP timeout. The old connection keeps its
		// link reference so dropPeer salvages whatever its writer never
		// transmitted into the durable spool; it no longer owns the link
		// (link.pc != old pc), so the live link is not marked down.
		s.log.Warn("replacing duplicate peer connection", "peer", msg.ID)
		link.pc.close()
	}
	link.pc = pc
	link.synced = false
	pc.link = link
	s.setIdentity(pc, transport.PeerMeshBroker, msg.ID, pc.addr)
	if !pc.dialed {
		s.sendTo(pc, transport.PeerHello{ID: s.cfg.ID, Addr: s.Addr()})
	}
	// Events flow both ways on a federation link: grant the peer an
	// initial credit window (replenished as the core processes its
	// forwards); the peer's grants arrive symmetrically and gate this
	// side's writer.
	pc.meter.Store(flow.NewMeter(s.cfg.FlowWindow))
	s.addGrant(pc, s.cfg.FlowWindow)
	s.log.Info("peer link connected", "peer", msg.ID, "addr", msg.Addr)
	// Topology handshake: announce the grown adjacency everywhere, give
	// the new peer the whole database (it may be fresh from a restart),
	// and re-elect — promotion sends the SubSet and replays the spool.
	s.announceTopology()
	for _, r := range s.topo.Records() {
		s.sendCtrl(link, transport.LinkState{Origin: r.Origin, Seq: r.Seq, Peers: r.Peers,
			Addr: r.Addr, Part: r.Group})
	}
	s.recomputeTopology()
}

// ensurePeerLink returns the link for a peer ID, creating it (and its
// spool cursor) on first contact.
func (s *Server) ensurePeerLink(id string) *peerLink {
	link := s.peerLinks[id]
	if link != nil {
		return link
	}
	link = &peerLink{id: id}
	s.peerLinks[id] = link
	// New links start as standby edges: the election promotes them (and
	// only then do they receive or match subscription state). Links
	// recovered from a previous incarnation's persisted state override
	// this in loadPeerState — they must keep routing spooled traffic.
	s.fed.AddLink(peering.LinkID(id))
	s.fed.SetActive(peering.LinkID(id), false)
	if s.store != nil {
		if _, _, err := s.store.Register(spoolKey(id)); err != nil {
			s.log.Warn("peer spool register failed", "peer", id, "err", err)
		}
	}
	return link
}

func (s *Server) handleSubSet(pc *peerConn, msg transport.SubSet) {
	if pc.link == nil {
		return
	}
	ups := s.fed.Replace(peering.LinkID(pc.link.id), entriesFromWire(msg.Entries))
	s.persistPeerState(pc.link)
	s.fanUpdates(ups)
	// A promoted link's resync just landed: once every promotion from
	// the in-progress election has synced, failed-over spools can be
	// re-routed with full knowledge of the new paths' interests.
	if _, ok := s.pendingResync[pc.link.id]; ok {
		delete(s.pendingResync, pc.link.id)
		s.maybeCompleteFailover()
	}
}

func (s *Server) handleSubUpdate(pc *peerConn, msg transport.SubUpdate) {
	if pc.link == nil || msg.Entry.Filter == nil {
		return
	}
	ups := s.fed.Apply(peering.LinkID(pc.link.id),
		peering.Entry{Filter: msg.Entry.Filter, Hops: msg.Entry.Hops})
	// Incremental updates only mark the persisted state dirty; the
	// flusher rewrites it off the hot path (a subscription burst would
	// otherwise stall the core behind one file rewrite per update).
	s.markPeerDirty(pc.link)
	s.fanUpdates(ups)
}

// fanUpdates sends incremental subscription updates to their links. Down
// links are skipped — the SubSet resync on reconnect carries the full
// current state, so nothing is lost.
func (s *Server) fanUpdates(ups []peering.Update) {
	for _, u := range ups {
		link := s.peerLinks[string(u.Link)]
		if link == nil || link.pc == nil {
			continue
		}
		s.sendCtrl(link, transport.SubUpdate{Entry: transport.SubEntry{Hops: u.Hops, Filter: u.Filter}})
	}
}

// sendCtrl enqueues a control frame (SubSet/SubUpdate/LinkState) for a
// peer link. Control traffic must not be silently lost — a dropped
// update would under-deliver until the next resync — so a saturated
// control channel (a wedged writer: the writer drains control ahead of
// events) tears the connection down instead: the dialing side redials
// and the SubSet resync repairs the state. The link detaches from the
// dying connection immediately — close() only signals the read/write
// loops, so leaving link.pc set would let later sends in the same core
// batch feed a doomed queue instead of taking the down-link spool path.
// The connection keeps its link reference for dropPeer's salvage, and
// dropPeer runs the topology reaction when the gone event lands.
func (s *Server) sendCtrl(link *peerLink, m transport.Message) {
	if link.pc == nil {
		return
	}
	if !link.pc.tryCtl(m) {
		s.log.Warn("peer control channel saturated; recycling link", "peer", link.id)
		pc := link.pc
		link.pc = nil
		link.synced = false
		pc.close()
	}
}

// fanPeers routes a batch of events to the federation links whose
// interests match, excluding the arrival link (reverse-path forwarding).
// Matching events bound for the same link leave as one ForwardBatch.
func (s *Server) fanPeers(events []*event.Raw, from peering.LinkID) {
	if len(s.peerLinks) == 0 {
		return
	}
	var order []peering.LinkID
	var byLink map[peering.LinkID][]*event.Raw
	for _, ev := range events {
		if ev == nil {
			continue
		}
		for _, id := range s.fed.MatchLinks(ev, from) {
			if byLink == nil {
				byLink = make(map[peering.LinkID][]*event.Raw)
			}
			if _, seen := byLink[id]; !seen {
				order = append(order, id)
			}
			byLink[id] = append(byLink[id], ev)
		}
	}
	for _, id := range order {
		s.forwardToPeer(s.peerLinks[string(id)], byLink[id])
	}
}

// forwardToPeer sends a run of events down one federation link,
// preserving per-link FIFO: a down link spills to the durable spool, a
// pending spool drains ahead of new events (or the new events queue
// behind it), and a saturated queue applies the flow policy — Block
// waits for the peer's credit to free the queue, SpillToStore spools,
// the drop policies shed (counted) — but never reorders. Without a
// store a spill degrades to a counted drop — parity with the
// subscriber-queue accounting.
func (s *Server) forwardToPeer(link *peerLink, evs []*event.Raw) {
	if len(evs) == 0 {
		return
	}
	if link.pc == nil {
		s.spoolTo(link, evs)
		return
	}
	// A pending spool (spilled during a saturation spell or a previous
	// down period) must drain first or new events overtake it. Skip the
	// replay attempt while the queue is still full.
	if s.store != nil && s.store.Pending(spoolKey(link.id)) > 0 &&
		(link.pc.out.Full() || s.replayPeerSpool(link) > 0) {
		s.spoolTo(link, evs)
		return
	}
	var m transport.Message
	if len(evs) == 1 {
		m = transport.Forward{Event: evs[0]}
	} else {
		m = transport.ForwardBatch{Events: evs}
	}
	switch link.pc.out.Push(m) {
	case flow.Enqueued:
		link.forwards += uint64(len(evs))
		s.counters.AddPeerForwarded(uint64(len(evs)))
		if s.tracer.Enabled() {
			for _, ev := range evs {
				s.tracer.Observe(obs.HopForward, ev.Stamp())
			}
		}
	case flow.Stopped:
		// The link died mid-route: spool for the reconnect.
		s.spoolTo(link, evs)
	}
	// Spilled and Dropped were accounted by the queue's hooks.
}

// spoolTo persists events for a link the broker cannot reach right now;
// with no store (or an append failure) they are dropped and counted.
func (s *Server) spoolTo(link *peerLink, evs []*event.Raw) {
	if s.storeBatchFor(spoolKey(link.id), evs) {
		link.spooled += uint64(len(evs))
		s.counters.AddSpilled(uint64(len(evs)))
		return
	}
	link.dropped += uint64(len(evs))
	s.counters.AddDroppedFor(metrics.DropNoStore, uint64(len(evs)))
	s.log.Warn("peer link unreachable and no store; dropping", "peer", link.id, "events", len(evs))
}

// replayPeerSpool drains the link's durable spool as Forward frames, in
// original order, returning the backlog still pending.
func (s *Server) replayPeerSpool(link *peerLink) (remaining int) {
	if link.pc == nil {
		return 0
	}
	n := s.replayQueue(link.pc, spoolKey(link.id), func(ev *event.Raw) transport.Message {
		return transport.Forward{Event: ev}
	})
	return n
}

// entriesToWire converts peering entries to their wire form.
func entriesToWire(in []peering.Entry) []transport.SubEntry {
	out := make([]transport.SubEntry, len(in))
	for i, e := range in {
		out[i] = transport.SubEntry{Hops: e.Hops, Filter: e.Filter}
	}
	return out
}

// entriesFromWire converts wire entries to peering form, dropping any
// nil filters a hostile peer might send.
func entriesFromWire(in []transport.SubEntry) []peering.Entry {
	out := make([]peering.Entry, 0, len(in))
	for _, e := range in {
		if e.Filter == nil {
			continue
		}
		out = append(out, peering.Entry{Filter: e.Filter, Hops: e.Hops})
	}
	return out
}

// coreQuery runs fn inside the core goroutine and waits for it; it
// reports false when the broker is shutting down.
func (s *Server) coreQuery(fn func()) bool {
	done := make(chan struct{})
	if s.inlet.PushWait(coreEvent{call: func() { fn(); close(done) }}) != flow.Enqueued {
		return false
	}
	select {
	case <-done:
		return true
	case <-s.ctx.Done():
		return false
	}
}

// PeerStats snapshots every federation link (sorted by peer ID) via a
// round-trip through the core goroutine.
func (s *Server) PeerStats() []PeerLinkStats {
	var out []PeerLinkStats
	s.coreQuery(func() {
		stats := make(map[string]*PeerLinkStats, len(s.peerLinks))
		for id, link := range s.peerLinks {
			st := &PeerLinkStats{
				Peer:     id,
				Addr:     link.addr,
				Up:       link.pc != nil,
				Active:   link.active,
				Forwards: link.forwards,
				Spooled:  link.spooled,
				Dropped:  link.dropped,
				Resyncs:  link.resyncs,
			}
			if s.store != nil {
				st.Pending = s.store.Pending(spoolKey(id))
			}
			stats[id] = st
		}
		for _, ls := range s.fed.LinkStats() {
			if st, ok := stats[string(ls.Link)]; ok {
				st.Interests = ls.Interests
				st.Sent = ls.Sent
				st.Propagated = ls.Propagated
				st.Suppressed = ls.Suppressed
			}
		}
		out = make([]PeerLinkStats, 0, len(stats))
		for _, st := range stats {
			out = append(out, *st)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	})
	return out
}

// FederationFilters reports the broker's federation-plane filter count
// (local originals plus per-link interests) — the mesh's StoredFilters
// for one node.
func (s *Server) FederationFilters() int {
	n := 0
	s.coreQuery(func() { n = s.fed.FilterCount() })
	return n
}

// Advertised returns the event classes this broker has advertisements
// for, sorted (advertisements arrive via publishers or dissemination).
func (s *Server) Advertised() []string {
	return s.ads.Classes()
}
