package broker

import (
	"net"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/transport"
)

// rawSubscribe dials addr and runs the handshake + placement protocol by
// hand, following at most one redirect, returning the live connection to
// the accepting broker. Unlike DialSubscriber it gives the test direct
// control over the connection — in particular the ability to sever it
// without unsubscribing, like a crashing client.
func rawSubscribe(t *testing.T, addr, id string, f *filter.Filter) net.Conn {
	t.Helper()
	for hop := 0; hop < 8; hop++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteFrame(c, transport.Hello{Kind: transport.PeerSubscriber, ID: id}); err != nil {
			t.Fatal(err)
		}
		if err := transport.WriteFrame(c, transport.Subscribe{SubscriberID: id, Filter: f}); err != nil {
			t.Fatal(err)
		}
		reply, err := readReply(c)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Accepted {
			return c
		}
		c.Close()
		if reply.TargetAddr == "" {
			t.Fatal("rejected without redirect")
		}
		addr = reply.TargetAddr
	}
	t.Fatal("too many redirects")
	return nil
}

// readDeliver reads frames until a Deliver arrives.
func readDeliver(t *testing.T, c net.Conn) *event.Event {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	for {
		m, err := transport.ReadFrame(c)
		if err != nil {
			t.Fatalf("awaiting Deliver: %v", err)
		}
		if d, ok := m.(transport.Deliver); ok {
			return d.Event.Event()
		}
	}
}

// TestBrokerStoreSurvivesSubscriberDisconnectAndBrokerRestart: a leaf
// broker with a DataDir persists events for a disconnected subscriber,
// survives its own restart, and replays the backlog — in order, before
// live traffic — when the subscriber re-subscribes with the same ID.
func TestBrokerStoreSurvivesSubscriberDisconnectAndBrokerRestart(t *testing.T) {
	dataDir := t.TempDir()
	root, err := Serve(ServerConfig{ID: "root", Stage: 2, ListenAddr: "127.0.0.1:0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	leafCfg := ServerConfig{
		ID: "N1.1", Stage: 1, ListenAddr: "127.0.0.1:0",
		ParentAddr: root.Addr(), Seed: 2,
		DataDir: dataDir, SyncEvery: 1,
	}
	leaf, err := Serve(leafCfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "leaf joins", func() bool { return root.ChildBrokers() == 1 })

	pub, err := DialPublisher(root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise(stockAd(t)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "advertisement to reach the leaf", func() bool {
		return root.HasAdvertisement("Stock") && leaf.HasAdvertisement("Stock")
	})

	// A filter specific enough that the root's placement walk redirects
	// it down to the leaf (wildcard-ish filters stay high, Section 4.4).
	f := filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 10`)
	pubE := func(price float64) {
		e := event.NewBuilder("Stock").Str("symbol", "A").Float("price", price).Build()
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: subscribe, receive one live event, then crash (sever the
	// connection without unsubscribing).
	conn := rawSubscribe(t, root.Addr(), "s1", f)
	waitFor(t, "leaf stores the filter", func() bool { return leaf.Stats().Filters == 1 })
	pubE(1)
	if got := readDeliver(t, conn); got == nil {
		t.Fatal("no live delivery")
	}
	conn.Close()
	// Wait for the leaf's reader to drop the peer so the next events
	// miss the live path.
	waitFor(t, "leaf to drop the dead subscriber", func() bool {
		return leaf.ConnectedClients() == 0
	})
	// The leaf still routes for s1 (lease alive) but cannot reach it:
	// events go to the store.
	pubE(2)
	pubE(3)
	waitFor(t, "events persisted", func() bool { return leaf.Stats().StoreAppended == 2 })

	// Phase 2: restart the leaf broker. The stored backlog must survive.
	leaf.Close()
	leafCfg.ListenAddr = "127.0.0.1:0"
	leaf2, err := Serve(leafCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer leaf2.Close()
	waitFor(t, "restarted leaf rejoins", func() bool { return root.ChildBrokers() == 1 })
	waitFor(t, "advert re-dissemination to settle", func() bool {
		return leaf2.HasAdvertisement("Stock")
	})

	// Phase 3: the subscriber comes back with the same ID and
	// re-subscribes: the stored events replay first, then live delivery.
	conn2 := rawSubscribe(t, root.Addr(), "s1", f)
	defer conn2.Close()
	var prices []float64
	for i := 0; i < 2; i++ {
		e := readDeliver(t, conn2)
		v, _ := e.Lookup("price")
		prices = append(prices, v.Num())
	}
	if len(prices) != 2 || prices[0] != 2 || prices[1] != 3 {
		t.Fatalf("replayed prices = %v, want [2 3] in order", prices)
	}
	pubE(4)
	e := readDeliver(t, conn2)
	if v, _ := e.Lookup("price"); v.Num() != 4 {
		t.Fatalf("live event after replay = %v, want price 4", e)
	}
	if st := leaf2.Stats(); st.StoreReplayed != 2 {
		t.Fatalf("leaf StoreReplayed = %d, want 2", st.StoreReplayed)
	}
}
