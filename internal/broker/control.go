package broker

import (
	"context"
	"hash/fnv"
	"math/rand/v2"
	"net"
	"sort"
	"time"

	"eventsys/internal/obs"
	"eventsys/internal/transport"
)

// The federation control plane: the intended peer set (which addresses
// this broker should keep dialed) is a runtime-mutable object, and a
// reconciler loop continuously compares it against the running dial
// workers, starting one per missing address and cancelling one per
// removed address. Each worker owns a single peer address: dial,
// handshake, hand the connection to the core, wait for it to die, back
// off with seeded jitter, redial — until its context is cancelled.
//
// Liveness beyond TCP resets comes from the heartbeat loop: every
// federation connection carries periodic PeerPing frames, every inbound
// frame refreshes the connection's lastRecv stamp, and a connection
// silent past the dead-link timeout is closed — which feeds the same
// link-down / re-elect / failover path as any other disconnect.

// reconcileEvery is the reconciler's periodic safety-net scan; mutations
// wake it immediately via reconcileCh.
const reconcileEvery = 2 * time.Second

// defaultHeartbeat paces PeerPing frames when HeartbeatInterval is 0.
const defaultHeartbeat = 2 * time.Second

// peerWorker is one cancellable dial loop for one intended peer address.
type peerWorker struct {
	addr   string
	cancel context.CancelFunc
	done   chan struct{}
}

// AddPeer adds a peer address to the intended set; the reconciler starts
// a dial worker for it. Adding an address already intended is a no-op.
func (s *Server) AddPeer(addr string) {
	s.intentMu.Lock()
	s.intent[addr] = struct{}{}
	s.intentMu.Unlock()
	s.kickReconcile()
}

// RemovePeer removes a peer address from the intended set; the
// reconciler cancels its dial worker, closing any live connection (the
// usual link-down election then routes around the edge if the remaining
// topology allows). Only this side's dial intent is removed — a peer
// that dials us stays accepted.
func (s *Server) RemovePeer(addr string) {
	s.intentMu.Lock()
	delete(s.intent, addr)
	s.intentMu.Unlock()
	s.kickReconcile()
}

// SetPeers replaces the whole intended peer set (runtime re-peering:
// SIGHUP config re-reads land here).
func (s *Server) SetPeers(addrs []string) {
	s.intentMu.Lock()
	s.intent = make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		if a != "" {
			s.intent[a] = struct{}{}
		}
	}
	s.intentMu.Unlock()
	s.kickReconcile()
}

// IntendedPeers returns the intended peer addresses, sorted.
func (s *Server) IntendedPeers() []string {
	s.intentMu.Lock()
	out := make([]string, 0, len(s.intent))
	for a := range s.intent {
		out = append(out, a)
	}
	s.intentMu.Unlock()
	sort.Strings(out)
	return out
}

// kickReconcile wakes the reconciler without blocking (the 1-buffered
// channel coalesces bursts of mutations into one pass).
func (s *Server) kickReconcile() {
	select {
	case s.reconcileCh <- struct{}{}:
	default:
	}
}

// reconciler drives intended state to current state: one pass per wake
// or periodic tick, each pass diffing the intent map against the worker
// map.
func (s *Server) reconciler() {
	defer s.wg.Done()
	t := time.NewTicker(reconcileEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.reconcileCh:
		case <-t.C:
		}
		s.reconcile()
	}
}

// reconcile runs one diff pass. Cancelled workers close their live
// connection on the way out; the core observes the disconnect and
// re-elects as for any link death.
func (s *Server) reconcile() {
	s.intentMu.Lock()
	var stop []*peerWorker
	for addr, w := range s.workers {
		if _, ok := s.intent[addr]; !ok {
			delete(s.workers, addr)
			stop = append(stop, w)
		}
	}
	var start []*peerWorker
	for addr := range s.intent {
		if _, ok := s.workers[addr]; ok {
			continue
		}
		ctx, cancel := context.WithCancel(s.ctx)
		w := &peerWorker{addr: addr, cancel: cancel, done: make(chan struct{})}
		s.workers[addr] = w
		start = append(start, w)
		s.wg.Add(1)
		go s.runPeerWorker(ctx, w)
	}
	s.intentMu.Unlock()
	if len(stop)+len(start) > 0 {
		s.reconciles.Add(1)
		for _, w := range stop {
			s.log.Info("peer worker cancelled", "addr", w.addr)
			w.cancel()
		}
		for _, w := range start {
			s.log.Info("peer worker started", "addr", w.addr)
		}
	}
}

// runPeerWorker dials one peer address and keeps it dialed: on
// connection loss it backs off (with seeded jitter, so a fleet of
// brokers redialing a restarted hub spreads out instead of stampeding)
// and redials, until its context is cancelled. The PeerHello handshake
// and all link state changes happen in the core goroutine; the worker
// only owns the dial loop.
func (s *Server) runPeerWorker(ctx context.Context, w *peerWorker) {
	defer s.wg.Done()
	defer close(w.done)
	const maxBackoff = 2 * time.Second
	backoff := 50 * time.Millisecond
	rng := rand.New(rand.NewPCG(s.cfg.Seed, addrSeed(w.addr)))
	for {
		if ctx.Err() != nil {
			return
		}
		d := net.Dialer{Timeout: 3 * time.Second}
		c, err := d.DialContext(ctx, "tcp", w.addr)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(jitterBackoff(rng, backoff)):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 50 * time.Millisecond
		pc := s.newPeerConn(c)
		pc.kind, pc.dialed = transport.PeerMeshBroker, true
		if err := transport.WriteFrame(c, transport.PeerHello{ID: s.cfg.ID, Addr: s.Addr()}); err != nil {
			c.Close()
			continue
		}
		s.mu.Lock()
		s.conns[pc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go s.readLoop(pc)
		go s.writeLoop(pc)
		select {
		case <-pc.done:
		case <-ctx.Done():
			pc.close()
			return
		}
		// Brief jittered pause before redial so a crashed peer's port can
		// rebind — and so downstream brokers don't redial in lockstep.
		select {
		case <-ctx.Done():
			return
		case <-time.After(jitterBackoff(rng, 50*time.Millisecond)):
		}
	}
}

// jitterBackoff spreads a delay uniformly over [d/2, d): full pauses
// synchronize a fleet, zero-floor jitter can busy-dial.
func jitterBackoff(rng *rand.Rand, d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int64N(int64(half)))
}

// addrSeed folds a peer address into a per-worker RNG stream seed, so
// every worker's jitter sequence differs even under one process seed.
func addrSeed(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return h.Sum64()
}

// heartbeatEvery resolves the configured heartbeat interval (0 =
// default, negative = disabled).
func (s *Server) heartbeatEvery() time.Duration {
	switch {
	case s.cfg.HeartbeatInterval < 0:
		return 0
	case s.cfg.HeartbeatInterval == 0:
		return defaultHeartbeat
	default:
		return s.cfg.HeartbeatInterval
	}
}

// deadLinkAfter resolves the dead-link timeout (default 4× heartbeat).
func (s *Server) deadLinkAfter() time.Duration {
	if s.cfg.DeadLinkTimeout > 0 {
		return s.cfg.DeadLinkTimeout
	}
	return 4 * s.heartbeatEvery()
}

// heartbeatLoop pings every federation connection each interval and
// closes the ones that have been silent past the dead-link timeout. A
// ping needs no reply: both sides ping, so any healthy link sees
// inbound frames at least this often, and lastRecv (refreshed by every
// inbound frame) going stale means the peer — or the path to it — is
// gone even if the socket looks open.
func (s *Server) heartbeatLoop(every time.Duration) {
	defer s.wg.Done()
	dead := s.deadLinkAfter()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		now := obs.Nanotime()
		type target struct {
			pc *peerConn
			id string
		}
		var peers []target
		s.mu.Lock()
		for pc := range s.conns {
			if pc.kind == transport.PeerMeshBroker {
				peers = append(peers, target{pc, pc.id})
			}
		}
		s.mu.Unlock()
		for _, p := range peers {
			if now-p.pc.lastRecv.Load() > int64(dead) {
				s.log.Warn("peer link silent past dead-link timeout; closing", "peer", p.id)
				s.deadLinks.Add(1)
				p.pc.close()
				continue
			}
			// Best-effort: a full control channel means the writer is
			// wedged — the timeout will catch it.
			p.pc.tryCtl(transport.PeerPing{})
		}
	}
}
