package broker

import (
	"path/filepath"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// TestFederationChaosRestart kills and restarts the middle broker of an
// A–B–C federation mid-stream and asserts the durable machinery closes
// the gap exactly: every event published while B was down reaches the
// far-side subscriber after the restart — no loss, no duplicates, and in
// publish order. Three mechanisms combine to make that true:
//
//   - A spools matching events to its durable store while its B link is
//     down, and replays them as Forward frames, in order and ahead of
//     newer traffic, when B's supervisor redials;
//   - the restarted B recovers its peer links' learned interests from
//     DataDir/peers, so replayed events route onward to C even before
//     C's own link is re-established;
//   - SubSet resyncs on each re-established link repair subscription
//     state without disturbing the event stream.
func TestFederationChaosRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-broker restart harness")
	}
	dir := t.TempDir()
	mkdir := func(id string) string { return filepath.Join(dir, id) }

	// Chain A – B – C; B dials A and C dials B, so after B dies both
	// edges heal on their own: B's supervisor redials A, C's redials B.
	a := startPeer(t, "A", ServerConfig{DataDir: mkdir("A")})
	b := startPeer(t, "B", ServerConfig{DataDir: mkdir("B")}, a.Addr())
	c := startPeer(t, "C", ServerConfig{DataDir: mkdir("C")}, b.Addr())
	waitPeersUp(t, a, 1)
	waitPeersUp(t, b, 2)
	waitPeersUp(t, c, 1)

	var atA, atC collector
	subA, err := DialSubscriber(a.Addr(), "alice", filter.MustParseFilter(`x < 1000000`), SubscriberOptions{}, atA.add)
	if err != nil {
		t.Fatal(err)
	}
	defer subA.Close()
	subC, err := DialSubscriber(c.Addr(), "carol", filter.MustParseFilter(`class = "T"`), SubscriberOptions{}, atC.add)
	if err != nil {
		t.Fatal(err)
	}
	defer subC.Close()
	// alice: local at A, interests at B and C; carol: local at C,
	// interests at B and A.
	waitFor(t, "interests to flood the chain", func() bool {
		return a.FederationFilters()+b.FederationFilters()+c.FederationFilters() == 6
	})

	pub, err := DialPublisher(a.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	next := uint64(1)
	publish := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			ev := event.NewBuilder("T").Int("x", int64(next)).ID(next).Build()
			if err := pub.Publish(ev); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}

	// Phase 1: healthy chain; quiesce so nothing is in flight inside B
	// when it dies (events half-relayed by a dying broker are the crash
	// window the durable spool does not cover — the spool closes the
	// down-period gap).
	const p1, p2, p3 = 30, 40, 30
	publish(p1)
	waitFor(t, "phase 1 at both edges", func() bool {
		return atA.len() == p1 && atC.len() == p1
	})

	// Kill B. Both neighbors must see their link drop.
	bAddr := b.Addr()
	b.Close()
	for _, srv := range []*Server{a, c} {
		s := srv
		waitFor(t, s.cfg.ID+" to see the B link down", func() bool {
			for _, ps := range s.PeerStats() {
				if ps.Peer == "B" && !ps.Up {
					return true
				}
			}
			return false
		})
	}

	// Phase 2: published into the hole. alice (local) still gets them
	// live; carol's copies spool durably at A.
	publish(p2)
	waitFor(t, "phase 2 at alice", func() bool { return atA.len() == p1+p2 })
	waitFor(t, "phase 2 spooled at A", func() bool {
		for _, ps := range a.PeerStats() {
			if ps.Peer == "B" && ps.Pending == p2 {
				return true
			}
		}
		return false
	})

	// Restart B on the same address and data directory: its supervisor
	// redials A, C's supervisor redials it, and A replays the spool.
	b2 := startPeer(t, "B", ServerConfig{ListenAddr: bAddr, DataDir: mkdir("B")}, a.Addr())
	waitPeersUp(t, b2, 2)
	waitPeersUp(t, a, 1)
	waitPeersUp(t, c, 1)

	// Phase 3: post-recovery traffic queues behind the replayed backlog.
	publish(p3)

	total := p1 + p2 + p3
	waitFor(t, "carol to close the gap", func() bool { return atC.len() == total })
	waitFor(t, "alice to finish", func() bool { return atA.len() == total })
	// Settle, then assert exactness: nothing extra arrives (no duplicate
	// replay, no echo), and each subscriber saw publish order.
	time.Sleep(50 * time.Millisecond)
	for name, col := range map[string]*collector{"alice": &atA, "carol": &atC} {
		ids := col.ids()
		if len(ids) != total {
			t.Fatalf("%s delivered %d events, want exactly %d: %v", name, len(ids), total, ids)
		}
		for i, id := range ids {
			if id != uint64(i+1) {
				t.Fatalf("%s order broken at %d: got ID %d, want %d (full: %v)", name, i, id, i+1, ids)
			}
		}
	}

	// The durable path really carried phase 2: A spooled and replayed.
	for _, ps := range a.PeerStats() {
		if ps.Peer != "B" {
			continue
		}
		if ps.Spooled < p2 {
			t.Errorf("A spooled %d events for B, want >= %d", ps.Spooled, p2)
		}
		if ps.Pending != 0 {
			t.Errorf("A still has %d events pending for B after recovery", ps.Pending)
		}
		if ps.Resyncs < 2 {
			t.Errorf("A resynced %d times with B, want >= 2 (initial + post-restart)", ps.Resyncs)
		}
	}
}
