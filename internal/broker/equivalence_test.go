package broker

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/mesh"
	"eventsys/internal/typing"
	"eventsys/internal/workload"
)

// TestFederationMeshEquivalence is the federation's correctness oracle:
// on random acyclic topologies and random workloads, a TCP-federated set
// of brokers must deliver exactly the same event set per subscriber as
// the synchronous in-process mesh — which itself is oracle-checked
// against the centralized baseline in internal/mesh. Both run the same
// peering core; this test exercises the wire frames, the async SubUpdate
// propagation, the SubSet resyncs on link establishment, and reverse-
// path Forward routing on top of it.
func TestFederationMeshEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process federation harness")
	}
	for _, tc := range []struct {
		brokers, subs, events int
		seed                  uint64
	}{
		{1, 6, 80, 101},
		{3, 9, 100, 202},
		{3, 9, 100, 203},
		{5, 15, 120, 304},
		{5, 15, 120, 305},
	} {
		t.Run(fmt.Sprintf("n%d_seed%d", tc.brokers, tc.seed), func(t *testing.T) {
			runEquivalenceRound(t, tc.brokers, tc.subs, tc.events, tc.seed)
		})
	}
}

func runEquivalenceRound(t *testing.T, brokers, subs, events int, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	bib, err := workload.NewBiblio(seed, workload.DefaultBiblio())
	if err != nil {
		t.Fatal(err)
	}
	ad, err := bib.Generator().Advertisement(4)
	if err != nil {
		t.Fatal(err)
	}
	var ads typing.AdvertisementSet
	if err := ads.Put(ad); err != nil {
		t.Fatal(err)
	}

	// Random tree topology: broker i attaches to a random earlier broker.
	parent := make([]int, brokers)
	for i := 1; i < brokers; i++ {
		parent[i] = rng.IntN(i)
	}
	// Random placements and workload, shared by both systems.
	type subscription struct {
		id   string
		home int
		f    *filter.Filter
	}
	population := make([]subscription, subs)
	for k := range population {
		population[k] = subscription{
			id:   fmt.Sprintf("sub%02d", k),
			home: rng.IntN(brokers),
			f:    bib.Subscription(0.2, true),
		}
	}
	evs := make([]*event.Event, events)
	pubAt := make([]int, events)
	for i := range evs {
		evs[i] = bib.Event()
		pubAt[i] = rng.IntN(brokers)
	}

	// ---- In-process mesh reference (synchronous, deterministic). ----
	ref := mesh.New(mesh.Config{Ads: &ads, MaxStage: 3})
	ids := make([]mesh.BrokerID, brokers)
	for i := range ids {
		ids[i] = mesh.BrokerID(fmt.Sprintf("B%d", i))
		if err := ref.AddBroker(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < brokers; i++ {
		if err := ref.Connect(ids[parent[i]], ids[i]); err != nil {
			t.Fatal(err)
		}
	}

	// ---- TCP federation with the same shape. ----
	servers := make([]*Server, brokers)
	degree := make([]int, brokers) // up-links each broker must settle at
	for i := range servers {
		var peers []string
		if i > 0 {
			peers = []string{servers[parent[i]].Addr()} // edge dialed by the child side
			degree[i]++
			degree[parent[i]]++
		}
		servers[i] = startPeer(t, string(ids[i]), ServerConfig{PeerMaxStage: 3, Seed: seed + uint64(i)}, peers...)
	}
	for i := range servers {
		waitPeersUp(t, servers[i], degree[i])
	}
	// Advertise once; dissemination floods the acyclic peer graph.
	adPub, err := DialPublisher(servers[0].Addr(), "advertiser")
	if err != nil {
		t.Fatal(err)
	}
	if err := adPub.Advertise(ad); err != nil {
		t.Fatal(err)
	}
	adPub.Close()
	for _, srv := range servers {
		s := srv
		waitFor(t, "advertisement to reach "+s.cfg.ID, func() bool {
			return len(s.Advertised()) == 1
		})
	}

	// ---- Subscribe in lockstep: after each subscription, the federated
	// filter state must settle to exactly the mesh's count (both sides
	// run the same covering pruning over the same arrival order). ----
	fedFilters := func() int {
		n := 0
		for _, srv := range servers {
			n += srv.FederationFilters()
		}
		return n
	}
	collectors := make(map[string]*collector, subs)
	for _, sub := range population {
		if err := ref.Subscribe(ids[sub.home], sub.id, sub.f); err != nil {
			t.Fatal(err)
		}
		col := &collector{}
		collectors[sub.id] = col
		h, err := DialSubscriber(servers[sub.home].Addr(), sub.id, sub.f, SubscriberOptions{}, col.add)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		want := ref.StoredFilters()
		waitFor(t, fmt.Sprintf("federation state to settle at %d after %s", want, sub.id), func() bool {
			return fedFilters() == want
		})
	}

	// ---- Publish the shared workload and collect the reference sets.
	// The mesh assigns its own event IDs to clones; the generator IDs on
	// the originals key the comparison. ----
	expected := make(map[string][]uint64, subs)
	pubs := make([]*Publisher, brokers)
	for i := range pubs {
		p, err := DialPublisher(servers[i].Addr(), fmt.Sprintf("pub%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		pubs[i] = p
	}
	for i, ev := range evs {
		delivered, err := ref.Publish(ids[pubAt[i]], ev.Clone())
		if err != nil {
			t.Fatal(err)
		}
		for _, subID := range delivered {
			expected[subID] = append(expected[subID], ev.ID)
		}
		if err := pubs[pubAt[i]].Publish(ev); err != nil {
			t.Fatal(err)
		}
	}

	// ---- Every subscriber must converge on exactly the mesh's set. ----
	deadline := time.Now().Add(30 * time.Second)
	for _, sub := range population {
		want := expected[sub.id]
		col := collectors[sub.id]
		for col.len() < len(want) && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		got := col.ids()
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		wantSorted := append([]uint64(nil), want...)
		sort.Slice(wantSorted, func(i, j int) bool { return wantSorted[i] < wantSorted[j] })
		if fmt.Sprint(got) != fmt.Sprint(wantSorted) {
			t.Errorf("subscriber %s (home %s): delivered %v, mesh reference %v",
				sub.id, ids[sub.home], got, wantSorted)
		}
	}
}
