package broker

import (
	"fmt"
	"sync"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/index"
)

// startShardedCluster spins a root plus leaves running the sharded
// engine with a small MaxBatch, so wire-level batches and core
// coalescing both occur.
func startShardedCluster(t *testing.T, leafs int) *cluster {
	t.Helper()
	root, err := Serve(ServerConfig{
		ID: "root", Stage: 2, ListenAddr: "127.0.0.1:0", Seed: 1,
		Engine: index.KindSharded, Shards: 4, MaxBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{root: root}
	t.Cleanup(func() {
		for _, b := range cl.brokers {
			b.Close()
		}
		root.Close()
	})
	for i := 0; i < leafs; i++ {
		leaf, err := Serve(ServerConfig{
			ID: fmt.Sprintf("N1.%d", i+1), Stage: 1, ListenAddr: "127.0.0.1:0",
			ParentAddr: root.Addr(), Seed: uint64(i + 2),
			Engine: index.KindSharded, Shards: 2, MaxBatch: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.brokers = append(cl.brokers, leaf)
	}
	waitFor(t, "children joined", func() bool { return root.ChildBrokers() == leafs })
	return cl
}

// TestPublishBatchFrame publishes through the batched wire frame and
// checks every event arrives exactly once, in publish order, through a
// sharded-engine hierarchy.
func TestPublishBatchFrame(t *testing.T) {
	cl := startShardedCluster(t, 2)
	pub, err := DialPublisher(cl.root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Advertise(stockAd(t)); err != nil {
		t.Fatal(err)
	}
	waitAds(t, cl, "Stock")

	var mu sync.Mutex
	var got []uint64
	sub, err := DialSubscriber(cl.root.Addr(), "s1",
		filter.MustParseFilter(`class = "Stock" && symbol = "Foo"`),
		SubscriberOptions{}, func(e *event.Event) {
			mu.Lock()
			got = append(got, e.ID)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const batches, per = 10, 25
	want := 0
	for b := 0; b < batches; b++ {
		evs := make([]*event.Event, per)
		for i := range evs {
			sym := "Foo"
			if (b*per+i)%5 == 4 {
				sym = "Bar" // every 5th event must be filtered out
			} else {
				want++
			}
			evs[i] = event.NewBuilder("Stock").Str("symbol", sym).
				Float("price", float64(i)).Build()
		}
		if err := pub.PublishBatch(evs); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "batched deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= want
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != want {
		t.Fatalf("delivered %d events, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	// The root matched in coalesced passes: its batch counters must
	// account for every received event.
	st := cl.root.Stats()
	if st.BatchesMatched == 0 || st.BatchSizeSum != st.Received {
		t.Errorf("root batches=%d sizeSum=%d received=%d", st.BatchesMatched, st.BatchSizeSum, st.Received)
	}
	if st.BatchSizeSum < st.BatchesMatched {
		t.Errorf("sizeSum %d < batches %d", st.BatchSizeSum, st.BatchesMatched)
	}
}

// TestBatchStoreSpill publishes a batch for a disconnected durable
// subscriber: the run must land in the store via the batched append and
// replay in order on reconnect.
func TestBatchStoreSpill(t *testing.T) {
	dir := t.TempDir()
	root, err := Serve(ServerConfig{
		ID: "root", Stage: 1, ListenAddr: "127.0.0.1:0", Seed: 1,
		Engine: index.KindSharded, MaxBatch: 8, DataDir: dir, SyncEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	pub, err := DialPublisher(root.Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	f := filter.MustParseFilter(`class = "Job"`)
	// Subscribe and crash (sever without unsubscribing): the lease
	// (TTL 0) keeps routing to the ID, and the durable cursor survives.
	conn := rawSubscribe(t, root.Addr(), "worker", f)
	conn.Close()
	// Wait for the broker's reader to drop the peer, so the batch
	// misses the live path and spills to the store.
	waitFor(t, "broker to drop the dead subscriber", func() bool {
		return root.ConnectedClients() == 1 // just the publisher left
	})

	evs := make([]*event.Event, 12)
	for i := range evs {
		evs[i] = event.NewBuilder("Job").Int("n", int64(i+1)).Build()
	}
	if err := pub.PublishBatch(evs); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stored batch", func() bool { return root.Stats().StoreAppended == uint64(len(evs)) })

	var mu sync.Mutex
	var got []int64
	sub2, err := DialSubscriber(root.Addr(), "worker", f, SubscriberOptions{}, func(e *event.Event) {
		n, _ := e.Lookup("n")
		mu.Lock()
		got = append(got, n.IntVal())
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	waitFor(t, "replayed batch", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == len(evs)
	})
	mu.Lock()
	defer mu.Unlock()
	for i, n := range got {
		if n != int64(i+1) {
			t.Fatalf("replayed[%d] = %d, want %d", i, n, i+1)
		}
	}
}
