package broker

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"eventsys/internal/peering"
	"eventsys/internal/transport"
)

// Peer-link interest sets are persisted under DataDir/peers, one file
// per link, so a restarted broker can route events replayed by a
// reconnecting neighbor toward links that are not back up yet — without
// this, a middle broker restarting in a chain would drop the replayed
// backlog for want of the far side's interests, reopening the very gap
// the durable spool closed. Each file holds two ordinary wire frames
// (PeerHello carrying the peer's identity, then a SubSet with the
// interests), written to a temp file and renamed into place.

// peerStateDir returns the persistence directory ("" without a store).
func (s *Server) peerStateDir() string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, "peers")
}

// markPeerDirty schedules a rewrite of the link's persisted interest
// set; the flusher (or shutdown) performs it. Core-owned.
func (s *Server) markPeerDirty(link *peerLink) {
	if s.peerStateDir() == "" {
		return
	}
	s.peerDirty[link.id] = struct{}{}
}

// flushPeerState rewrites every dirty link's persisted interest set.
// Runs in core context.
func (s *Server) flushPeerState() {
	for id := range s.peerDirty {
		delete(s.peerDirty, id)
		if link := s.peerLinks[id]; link != nil {
			s.persistPeerState(link)
		}
	}
}

// peerStateFlusher periodically asks the core to flush dirty persisted
// peer state — a crash loses at most one debounce window of learned
// interests, which the next resync rewrites anyway.
func (s *Server) peerStateFlusher() {
	defer s.wg.Done()
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.post(coreEvent{call: s.flushPeerState})
		}
	}
}

// persistPeerState writes one link's current interest set; failures are
// logged, not fatal (the link still works, only restart recovery
// degrades).
func (s *Server) persistPeerState(link *peerLink) {
	dir := s.peerStateDir()
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.log.Warn("peer state dir", "err", err)
		return
	}
	entries := s.fed.Entries(peering.LinkID(link.id))
	path := filepath.Join(dir, hex.EncodeToString([]byte(link.id))+".subs")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		s.log.Warn("peer state create", "peer", link.id, "err", err)
		return
	}
	err = transport.WriteFrame(f, transport.PeerHello{ID: link.id, Addr: link.addr})
	if err == nil {
		err = transport.WriteFrame(f, transport.SubSet{Entries: entriesToWire(entries)})
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		s.log.Warn("peer state write", "peer", link.id, "err", err)
	}
}

// loadPeerState rebuilds persisted peer links at startup: each link is
// created in the down state with its interest set replayed into the
// federation core, and its spool cursor re-registered. Corrupt files are
// skipped (the next resync rewrites them).
func (s *Server) loadPeerState() error {
	dir := s.peerStateDir()
	if dir == "" {
		return nil
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.subs"))
	if err != nil {
		return err
	}
	for _, path := range names {
		id, addr, entries, err := readPeerState(path)
		if err != nil {
			s.log.Warn("skipping corrupt peer state", "path", path, "err", err)
			continue
		}
		link := s.ensurePeerLink(id)
		link.addr = addr
		s.fed.Replace(peering.LinkID(id), entries)
		// Recovered links start active (overriding ensurePeerLink's
		// standby default): the previous incarnation routed traffic over
		// them, so replayed events must keep matching their interests
		// before the neighbors reconnect. synced stays false — the
		// election resyncs on reconnect as usual.
		link.active = true
		s.fed.SetActive(peering.LinkID(id), true)
		s.log.Info("recovered peer link state", "peer", id, "interests", len(entries))
	}
	return nil
}

func readPeerState(path string) (id, addr string, entries []peering.Entry, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", "", nil, err
	}
	defer f.Close()
	m1, err := transport.ReadFrame(f)
	if err != nil {
		return "", "", nil, err
	}
	hello, ok := m1.(transport.PeerHello)
	if !ok || hello.ID == "" {
		return "", "", nil, fmt.Errorf("broker: %s: not a peer state file", path)
	}
	m2, err := transport.ReadFrame(f)
	if err != nil {
		return "", "", nil, err
	}
	ss, ok := m2.(transport.SubSet)
	if !ok {
		return "", "", nil, fmt.Errorf("broker: %s: missing interest set", path)
	}
	return hello.ID, hello.Addr, entriesFromWire(ss.Entries), nil
}
