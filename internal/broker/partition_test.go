package broker

import (
	"fmt"
	"sort"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// Partitioned scale-out tests: epoch agreement and publisher redirects,
// and the equivalence property — the same workload through one
// unpartitioned broker and through a partitioned replica group must
// reach every subscriber identically, with per-source order holding
// within each partition.

// startReplicas wires n federated brokers sharing the replica group
// "rg" in a chain and waits until every one has converged on the same
// partition map epoch.
func startReplicas(t *testing.T, n, partitions int) []*Server {
	t.Helper()
	reps := make([]*Server, n)
	for i := range reps {
		cfg := ServerConfig{ReplicaOf: "rg", Partitions: partitions}
		var peers []string
		if i > 0 {
			peers = []string{reps[i-1].Addr()}
		}
		reps[i] = startPeer(t, fmt.Sprintf("R%d", i), cfg, peers...)
	}
	waitFor(t, "replicas to agree on a partition epoch", func() bool {
		epoch := reps[0].PartitionStats().Epoch
		if epoch == 0 {
			return false
		}
		for _, r := range reps[1:] {
			st := r.PartitionStats()
			if st.Epoch != epoch || len(st.Replicas) != n {
				return false
			}
		}
		return true
	})
	return reps
}

func TestPartitionMapAgreementAndOwnership(t *testing.T) {
	reps := startReplicas(t, 3, 12)
	owned := 0
	for _, r := range reps {
		st := r.PartitionStats()
		if st.Group != "rg" || st.Partitions != 12 {
			t.Fatalf("%s stats = %+v", r.cfg.ID, st)
		}
		if st.Owned == 0 {
			t.Errorf("%s owns no partitions", r.cfg.ID)
		}
		owned += st.Owned
	}
	if owned != 12 {
		t.Fatalf("partitions owned across replicas = %d, want 12 (each exactly once)", owned)
	}
}

// TestPartitionRedirect drives the redirect-and-absorb contract: a
// publisher's first (epoch-0) publish is absorbed and fully delivered,
// earns exactly one PartitionRedirect, and flips the publisher onto the
// replica group's epoch for subsequent publishes.
func TestPartitionRedirect(t *testing.T) {
	reps := startReplicas(t, 2, 8)
	var got collector
	sub, err := DialSubscriber(reps[0].Addr(), "sub1",
		filter.MustParseFilter(`topic = "alpha"`), SubscriberOptions{}, got.add)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, "interest to reach both replicas", func() bool {
		return reps[1].FederationFilters() >= 1
	})

	pub, err := DialPublisher(reps[0].Addr(), "p")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if pub.PartitionEpoch() != 0 {
		t.Fatalf("publisher has an epoch before any publish")
	}
	if err := pub.Publish(event.NewBuilder("Tick").Str("topic", "alpha").Build()); err != nil {
		t.Fatal(err)
	}
	// The absorbed publish still delivers, and the redirect installs the
	// group's map at the publisher.
	waitFor(t, "absorbed publish to deliver", func() bool { return got.len() == 1 })
	epoch := reps[0].PartitionStats().Epoch
	waitFor(t, "publisher to install the partition map", func() bool {
		return pub.PartitionEpoch() == epoch
	})
	st := reps[0].PartitionStats()
	if st.Absorbed == 0 || st.Redirects != 1 {
		t.Fatalf("absorbed=%d redirects=%d, want absorbed>=1 redirects=1", st.Absorbed, st.Redirects)
	}
	// On-epoch publishes earn no further redirect.
	for i := 0; i < 5; i++ {
		if err := pub.Publish(event.NewBuilder("Tick").Str("topic", "alpha").Build()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "remaining deliveries", func() bool { return got.len() == 6 })
	for _, r := range reps {
		if n := r.PartitionStats().Redirects; n > 1 {
			t.Fatalf("%s sent %d redirects, want at most 1 total", r.cfg.ID, n)
		}
	}
}

// runTopicWorkload publishes total events round-robin over topics
// t0..t(topics-1) with ascending IDs. With wantFanIn it first publishes
// a warm-up event and waits for the redirect to install the partition
// map, so the measured stream takes stable partition-owner paths.
func runTopicWorkload(t *testing.T, addr string, topics, total int, wantFanIn bool) {
	t.Helper()
	pub, err := DialPublisher(addr, "loadgen")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if wantFanIn {
		if err := pub.Publish(event.NewBuilder("Tick").Str("topic", "warmup").ID(9999).Build()); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "publisher to go partition-aware", func() bool {
			return pub.PartitionEpoch() != 0
		})
	}
	var events []*event.Event
	for i := 0; i < total; i++ {
		events = append(events, event.NewBuilder("Tick").
			Str("topic", fmt.Sprintf("t%d", i%topics)).ID(uint64(i+1)).Build())
	}
	if err := pub.PublishBatch(events); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionEquivalence is the property test: one workload, two
// deployments — a single unpartitioned broker versus four partitioned
// replicas — must produce identical per-subscriber delivered sets, and
// within each topic (= partition key) the per-source publish order must
// survive the fan-in.
func TestPartitionEquivalence(t *testing.T) {
	const topics, total = 4, 200

	deliveredSets := func(servers []*Server, pubAddr string, wantFanIn bool) map[string][]uint64 {
		cols := make(map[string]*collector)
		for i := 0; i < topics; i++ {
			name := fmt.Sprintf("sub-t%d", i)
			col := &collector{}
			sub, err := DialSubscriber(servers[i%len(servers)].Addr(), name,
				filter.MustParseFilter(fmt.Sprintf(`topic = "t%d"`, i)),
				SubscriberOptions{}, col.add)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sub.Close() })
			cols[name] = col
		}
		// Every interest must be everywhere before publishing, or early
		// events legitimately miss not-yet-flooded subscribers.
		for _, srv := range servers {
			s := srv
			waitFor(t, s.cfg.ID+" to hold every interest", func() bool {
				return s.FederationFilters() >= topics
			})
		}
		runTopicWorkload(t, pubAddr, topics, total, wantFanIn)
		perTopic := total / topics
		out := make(map[string][]uint64)
		for name, col := range cols {
			c := col
			waitFor(t, name+" to receive its topic", func() bool { return c.len() == perTopic })
			out[name] = c.ids()
		}
		return out
	}

	// Partitioned deployment: four replicas, one subscriber per replica.
	reps := startReplicas(t, 4, 16)
	partitioned := deliveredSets(reps, reps[0].Addr(), true)

	// Baseline: one unpartitioned broker hosting everything.
	base := startPeer(t, "BASE", ServerConfig{})
	baseline := deliveredSets([]*Server{base}, base.Addr(), false)

	sortedCopy := func(a []uint64) []uint64 {
		c := append([]uint64(nil), a...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		return c
	}
	for name, want := range baseline {
		got := partitioned[name]
		if fmt.Sprint(sortedCopy(got)) != fmt.Sprint(sortedCopy(want)) {
			t.Fatalf("%s delivered sets differ:\npartitioned %v\nbaseline    %v", name, got, want)
		}
		// Per-source order within the partition: each subscriber's topic
		// is one partition key, so its IDs must arrive ascending.
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("%s out of order at %d: %v", name, i, got)
			}
		}
	}
}

// TestPartitionEpochChangesOnMembership pins the epoch contract: a
// replica joining the group moves every survivor to one agreed new
// epoch.
func TestPartitionEpochChangesOnMembership(t *testing.T) {
	reps := startReplicas(t, 2, 8)
	before := reps[0].PartitionStats().Epoch
	r2 := startPeer(t, "R9", ServerConfig{ReplicaOf: "rg", Partitions: 8}, reps[1].Addr())
	waitFor(t, "three replicas on one new epoch", func() bool {
		e := r2.PartitionStats().Epoch
		if e == 0 || e == before {
			return false
		}
		return reps[0].PartitionStats().Epoch == e && reps[1].PartitionStats().Epoch == e &&
			len(r2.PartitionStats().Replicas) == 3
	})
}
