// Package index provides event-to-subscription matching engines for
// broker nodes — the filtering data structures behind the paper's
// Section 4 filtering and forwarding tables.
//
// Four engines implement the Engine interface:
//
//   - NaiveTable is the algorithm of Figure 6: a table of <filter,
//     id-list> entries scanned linearly per event.
//   - CountingTable implements the classic counting algorithm the paper
//     alludes to ("efficient indexing and matching techniques can be
//     used"): per-attribute inverted indexes with hash lookup for
//     equality constraints, so matching cost scales with the number of
//     satisfied constraints instead of the number of filters.
//   - IndexedTable extends the counting scheme with a dedicated index
//     per operator class — grouped sorted threshold cores with
//     churn-absorbing delta buffers for ordering constraints,
//     per-operand-length hash postings for prefix/suffix, presence
//     lists, and paired access∧threshold groups for the dominant
//     two-constraint alarm shape — keeping per-event match cost near
//     constant (sub-microsecond medians) at million-subscription
//     populations.
//   - ShardedEngine partitions associations across N shards by
//     subscription-ID hash and matches shards in parallel, merging
//     results deterministically; Config.Shards composes it with any
//     inner kind for multi-core brokers.
//
// Engine selection is explicit: construct through New with a Config
// naming the Kind (the zero Config selects the naive table), so runtimes
// share one selection path instead of duplicating engine-picking logic.
//
// Concurrency and ownership: NaiveTable, CountingTable and IndexedTable
// are NOT safe for concurrent use — each instance is owned by exactly
// one goroutine (the broker core or actor that created it), and the
// counting engines additionally mutate per-call scratch state during
// Match. ShardedEngine
// IS safe for concurrent use: every shard carries its own mutex, mutating
// calls lock only the owning shard, and Match/MatchBatch lock each shard
// from its own worker goroutine. All engines return Match results sorted
// and deduplicated, so identical inputs yield identical outputs
// regardless of engine kind or shard count.
package index
