package index

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// engines returns fresh instances of every Engine implementation.
func engines(conf filter.Conformance) map[string]Engine {
	return map[string]Engine{
		"naive":    NewNaiveTable(conf),
		"counting": NewCountingTable(conf),
	}
}

func TestEngineBasicMatch(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10`)
			f2 := filter.MustParseFilter(`class = "Stock" && symbol = "Bar"`)
			f3 := filter.MustParseFilter(`class = "Auction"`)
			eng.Insert(f1, "n1")
			eng.Insert(f2, "n2")
			eng.Insert(f3, "n3")

			e := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 9).Build()
			ids, matched := eng.Match(e)
			if matched != 1 || len(ids) != 1 || ids[0] != "n1" {
				t.Errorf("Match = %v (%d), want [n1] (1)", ids, matched)
			}

			auction := event.NewBuilder("Auction").Str("product", "Vehicle").Build()
			ids, matched = eng.Match(auction)
			if matched != 1 || len(ids) != 1 || ids[0] != "n3" {
				t.Errorf("Match auction = %v (%d), want [n3]", ids, matched)
			}

			miss := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 12).Build()
			ids, matched = eng.Match(miss)
			if matched != 0 || len(ids) != 0 {
				t.Errorf("Match miss = %v (%d), want none", ids, matched)
			}
		})
	}
}

func TestEngineMultiIDAndDedup(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f := filter.MustParseFilter(`x = 1`)
			eng.Insert(f, "a")
			eng.Insert(f.Clone(), "b") // same filter identity
			eng.Insert(f, "a")         // duplicate id
			if eng.Len() != 1 {
				t.Fatalf("Len = %d, want 1 (dedup by filter)", eng.Len())
			}
			e := event.NewBuilder("T").Int("x", 1).Build()
			ids, matched := eng.Match(e)
			if matched != 1 || fmt.Sprint(ids) != "[a b]" {
				t.Errorf("Match = %v (%d), want [a b] (1)", ids, matched)
			}
		})
	}
}

func TestEngineRemove(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`x = 1`)
			f2 := filter.MustParseFilter(`x = 2`)
			eng.Insert(f1, "a")
			eng.Insert(f1, "b")
			eng.Insert(f2, "a")
			eng.Remove(f1, "a")
			e1 := event.NewBuilder("T").Int("x", 1).Build()
			ids, _ := eng.Match(e1)
			if fmt.Sprint(ids) != "[b]" {
				t.Errorf("after Remove: %v, want [b]", ids)
			}
			eng.Remove(f1, "b")
			if eng.Len() != 1 {
				t.Errorf("Len = %d, want 1 after filter fully removed", eng.Len())
			}
			ids, matched := eng.Match(e1)
			if matched != 0 || len(ids) != 0 {
				t.Errorf("removed filter still matches: %v", ids)
			}
			// Removing a nonexistent association is a no-op.
			eng.Remove(f1, "zzz")
			eng.Remove(filter.MustParseFilter(`y = 9`), "a")
		})
	}
}

func TestEngineRemoveID(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`x = 1`)
			f2 := filter.MustParseFilter(`x = 2`)
			eng.Insert(f1, "a")
			eng.Insert(f2, "a")
			eng.Insert(f2, "b")
			eng.RemoveID("a")
			if eng.Len() != 1 {
				t.Fatalf("Len = %d, want 1", eng.Len())
			}
			e2 := event.NewBuilder("T").Int("x", 2).Build()
			ids, _ := eng.Match(e2)
			if fmt.Sprint(ids) != "[b]" {
				t.Errorf("after RemoveID: %v, want [b]", ids)
			}
		})
	}
}

func TestEngineReinsertAfterRemove(t *testing.T) {
	// Exercises slot recycling in the counting table.
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`x = 1`)
			f2 := filter.MustParseFilter(`x = 2 && y > 3`)
			eng.Insert(f1, "a")
			eng.Remove(f1, "a")
			eng.Insert(f2, "b")
			e := event.NewBuilder("T").Int("x", 2).Int("y", 4).Build()
			ids, matched := eng.Match(e)
			if matched != 1 || fmt.Sprint(ids) != "[b]" {
				t.Errorf("Match = %v (%d), want [b]", ids, matched)
			}
			e1 := event.NewBuilder("T").Int("x", 1).Build()
			if ids, _ := eng.Match(e1); len(ids) != 0 {
				t.Errorf("recycled slot matched stale filter: %v", ids)
			}
		})
	}
}

func TestEngineClassConformance(t *testing.T) {
	conf := fakeConformance{"TechStock": {"Stock"}}
	for name, eng := range engines(conf) {
		t.Run(name, func(t *testing.T) {
			eng.Insert(filter.MustParseFilter(`class = "Stock" && price < 10`), "x")
			e := event.NewBuilder("TechStock").Float("price", 5).Build()
			ids, _ := eng.Match(e)
			if fmt.Sprint(ids) != "[x]" {
				t.Errorf("subtype event did not match supertype filter: %v", ids)
			}
		})
	}
}

type fakeConformance map[string][]string

func (f fakeConformance) Conforms(sub, super string) bool {
	if sub == super || super == filter.RootType {
		return true
	}
	for _, s := range f[sub] {
		if s == super {
			return true
		}
	}
	return false
}

func TestEngineDuplicateConstraint(t *testing.T) {
	// price > 1 && price > 1 needs the count to reach 2 via the same
	// value; guards against double-count bugs in either direction.
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f := &filter.Filter{Constraints: []filter.Constraint{
				filter.C("price", filter.OpGt, event.Int(1)),
				filter.C("price", filter.OpGt, event.Int(1)),
			}}
			eng.Insert(f, "a")
			e := event.NewBuilder("T").Int("price", 5).Build()
			ids, _ := eng.Match(e)
			if fmt.Sprint(ids) != "[a]" {
				t.Errorf("Match = %v, want [a]", ids)
			}
			lo := event.NewBuilder("T").Int("price", 0).Build()
			if ids, _ := eng.Match(lo); len(ids) != 0 {
				t.Errorf("Match = %v, want none", ids)
			}
		})
	}
}

func TestEngineDuplicateEqConstraint(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f := &filter.Filter{Constraints: []filter.Constraint{
				filter.C("x", filter.OpEq, event.Int(1)),
				filter.C("x", filter.OpEq, event.Int(1)),
			}}
			eng.Insert(f, "a")
			e := event.NewBuilder("T").Int("x", 1).Build()
			if ids, _ := eng.Match(e); fmt.Sprint(ids) != "[a]" {
				t.Errorf("Match = %v, want [a]", ids)
			}
		})
	}
}

// TestEnginesAgreeProperty cross-validates both engines against direct
// filter evaluation on random workloads, including inserts and removes.
func TestEnginesAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	naive := NewNaiveTable(nil)
	counting := NewCountingTable(nil)
	type assoc struct {
		f  *filter.Filter
		id string
	}
	var live []assoc
	for round := 0; round < 2000; round++ {
		switch {
		case len(live) == 0 || rng.IntN(3) > 0:
			f := randomIdxFilter(rng)
			id := fmt.Sprintf("id%d", rng.IntN(10))
			naive.Insert(f, id)
			counting.Insert(f, id)
			live = append(live, assoc{f, id})
		default:
			i := rng.IntN(len(live))
			naive.Remove(live[i].f, live[i].id)
			counting.Remove(live[i].f, live[i].id)
			live = append(live[:i], live[i+1:]...)
		}
		if naive.Len() != counting.Len() {
			t.Fatalf("round %d: Len diverged naive=%d counting=%d", round, naive.Len(), counting.Len())
		}
		e := randomIdxEvent(rng)
		nids, nm := naive.Match(e)
		cids, cm := counting.Match(e)
		if nm != cm || fmt.Sprint(nids) != fmt.Sprint(cids) {
			t.Fatalf("round %d: engines diverge on %s:\n naive    %v (%d)\n counting %v (%d)",
				round, e, nids, nm, cids, cm)
		}
		// Spot-check against direct evaluation.
		want := 0
		for _, f := range naive.Filters() {
			if f.Matches(e, nil) {
				want++
			}
		}
		if nm != want {
			t.Fatalf("round %d: matched=%d, direct evaluation=%d", round, nm, want)
		}
	}
}

func randomIdxFilter(rng *rand.Rand) *filter.Filter {
	f := &filter.Filter{}
	if rng.IntN(2) == 0 {
		f.Class = []string{"A", "B"}[rng.IntN(2)]
	}
	ops := []filter.Op{filter.OpEq, filter.OpEq, filter.OpNe, filter.OpLt, filter.OpGe, filter.OpPrefix, filter.OpAny}
	for range 1 + rng.IntN(3) {
		op := ops[rng.IntN(len(ops))]
		attr := []string{"w", "x", "y", "z"}[rng.IntN(4)]
		c := filter.Constraint{Attr: attr, Op: op}
		if op.NeedsOperand() {
			if op == filter.OpPrefix {
				c.Operand = event.String(string(rune('a' + rng.IntN(3))))
			} else if rng.IntN(2) == 0 {
				c.Operand = event.Int(int64(rng.IntN(5)))
			} else {
				c.Operand = event.String(string(rune('a' + rng.IntN(3))))
			}
		}
		f.Constraints = append(f.Constraints, c)
	}
	return f
}

func randomIdxEvent(rng *rand.Rand) *event.Event {
	b := event.NewBuilder([]string{"A", "B", "C"}[rng.IntN(3)])
	for _, attr := range []string{"w", "x", "y", "z"} {
		if rng.IntN(3) == 0 {
			continue
		}
		if rng.IntN(2) == 0 {
			b.Int(attr, int64(rng.IntN(5)))
		} else {
			b.Str(attr, string(rune('a'+rng.IntN(3))))
		}
	}
	return b.Build()
}

func TestNaiveTableIDs(t *testing.T) {
	nt := NewNaiveTable(nil)
	f := filter.MustParseFilter(`x = 1`)
	nt.Insert(f, "b")
	nt.Insert(f, "a")
	if got := fmt.Sprint(nt.IDs(f)); got != "[a b]" {
		t.Errorf("IDs = %s, want [a b]", got)
	}
	if got := nt.IDs(filter.MustParseFilter(`y = 1`)); got != nil {
		t.Errorf("IDs of absent filter = %v", got)
	}
}
