package index

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// engines returns fresh instances of every Engine implementation,
// including a sharded wrapper per inner kind (the generic engine tests
// must hold for any shard count).
func engines(conf filter.Conformance) map[string]Engine {
	return map[string]Engine{
		"naive":           NewNaiveTable(conf),
		"counting":        NewCountingTable(conf),
		"indexed":         NewIndexedTable(conf),
		"sharded":         NewSharded(conf, 4),
		"sharded-indexed": New(Config{Kind: KindIndexed, Conf: conf, Shards: 4}),
		"sharded-naive":   New(Config{Kind: KindNaive, Conf: conf, Shards: 2}),
	}
}

func TestEngineBasicMatch(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`class = "Stock" && symbol = "Foo" && price < 10`)
			f2 := filter.MustParseFilter(`class = "Stock" && symbol = "Bar"`)
			f3 := filter.MustParseFilter(`class = "Auction"`)
			eng.Insert(f1, "n1")
			eng.Insert(f2, "n2")
			eng.Insert(f3, "n3")

			e := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 9).Build()
			ids, matched := eng.Match(e)
			if matched != 1 || len(ids) != 1 || ids[0] != "n1" {
				t.Errorf("Match = %v (%d), want [n1] (1)", ids, matched)
			}

			auction := event.NewBuilder("Auction").Str("product", "Vehicle").Build()
			ids, matched = eng.Match(auction)
			if matched != 1 || len(ids) != 1 || ids[0] != "n3" {
				t.Errorf("Match auction = %v (%d), want [n3]", ids, matched)
			}

			miss := event.NewBuilder("Stock").Str("symbol", "Foo").Float("price", 12).Build()
			ids, matched = eng.Match(miss)
			if matched != 0 || len(ids) != 0 {
				t.Errorf("Match miss = %v (%d), want none", ids, matched)
			}
		})
	}
}

func TestEngineMultiIDAndDedup(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f := filter.MustParseFilter(`x = 1`)
			eng.Insert(f, "a")
			eng.Insert(f.Clone(), "b") // same filter identity
			eng.Insert(f, "a")         // duplicate id
			if eng.Len() != 1 {
				t.Fatalf("Len = %d, want 1 (dedup by filter)", eng.Len())
			}
			e := event.NewBuilder("T").Int("x", 1).Build()
			ids, matched := eng.Match(e)
			if fmt.Sprint(ids) != "[a b]" {
				t.Errorf("Match = %v, want [a b]", ids)
			}
			// Sharded engines count a filter once per shard holding one
			// of its IDs; single-table engines count it exactly once.
			if sharded := strings.HasPrefix(name, "sharded"); matched < 1 || (!sharded && matched != 1) {
				t.Errorf("matched = %d, want 1", matched)
			}
		})
	}
}

func TestEngineRemove(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`x = 1`)
			f2 := filter.MustParseFilter(`x = 2`)
			eng.Insert(f1, "a")
			eng.Insert(f1, "b")
			eng.Insert(f2, "a")
			eng.Remove(f1, "a")
			e1 := event.NewBuilder("T").Int("x", 1).Build()
			ids, _ := eng.Match(e1)
			if fmt.Sprint(ids) != "[b]" {
				t.Errorf("after Remove: %v, want [b]", ids)
			}
			eng.Remove(f1, "b")
			if eng.Len() != 1 {
				t.Errorf("Len = %d, want 1 after filter fully removed", eng.Len())
			}
			ids, matched := eng.Match(e1)
			if matched != 0 || len(ids) != 0 {
				t.Errorf("removed filter still matches: %v", ids)
			}
			// Removing a nonexistent association is a no-op.
			eng.Remove(f1, "zzz")
			eng.Remove(filter.MustParseFilter(`y = 9`), "a")
		})
	}
}

func TestEngineRemoveID(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`x = 1`)
			f2 := filter.MustParseFilter(`x = 2`)
			eng.Insert(f1, "a")
			eng.Insert(f2, "a")
			eng.Insert(f2, "b")
			eng.RemoveID("a")
			if eng.Len() != 1 {
				t.Fatalf("Len = %d, want 1", eng.Len())
			}
			e2 := event.NewBuilder("T").Int("x", 2).Build()
			ids, _ := eng.Match(e2)
			if fmt.Sprint(ids) != "[b]" {
				t.Errorf("after RemoveID: %v, want [b]", ids)
			}
		})
	}
}

func TestEngineReinsertAfterRemove(t *testing.T) {
	// Exercises slot recycling in the counting table.
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f1 := filter.MustParseFilter(`x = 1`)
			f2 := filter.MustParseFilter(`x = 2 && y > 3`)
			eng.Insert(f1, "a")
			eng.Remove(f1, "a")
			eng.Insert(f2, "b")
			e := event.NewBuilder("T").Int("x", 2).Int("y", 4).Build()
			ids, matched := eng.Match(e)
			if matched != 1 || fmt.Sprint(ids) != "[b]" {
				t.Errorf("Match = %v (%d), want [b]", ids, matched)
			}
			e1 := event.NewBuilder("T").Int("x", 1).Build()
			if ids, _ := eng.Match(e1); len(ids) != 0 {
				t.Errorf("recycled slot matched stale filter: %v", ids)
			}
		})
	}
}

func TestEngineClassConformance(t *testing.T) {
	conf := fakeConformance{"TechStock": {"Stock"}}
	for name, eng := range engines(conf) {
		t.Run(name, func(t *testing.T) {
			eng.Insert(filter.MustParseFilter(`class = "Stock" && price < 10`), "x")
			e := event.NewBuilder("TechStock").Float("price", 5).Build()
			ids, _ := eng.Match(e)
			if fmt.Sprint(ids) != "[x]" {
				t.Errorf("subtype event did not match supertype filter: %v", ids)
			}
		})
	}
}

type fakeConformance map[string][]string

func (f fakeConformance) Conforms(sub, super string) bool {
	if sub == super || super == filter.RootType {
		return true
	}
	for _, s := range f[sub] {
		if s == super {
			return true
		}
	}
	return false
}

func TestEngineDuplicateConstraint(t *testing.T) {
	// price > 1 && price > 1 needs the count to reach 2 via the same
	// value; guards against double-count bugs in either direction.
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f := &filter.Filter{Constraints: []filter.Constraint{
				filter.C("price", filter.OpGt, event.Int(1)),
				filter.C("price", filter.OpGt, event.Int(1)),
			}}
			eng.Insert(f, "a")
			e := event.NewBuilder("T").Int("price", 5).Build()
			ids, _ := eng.Match(e)
			if fmt.Sprint(ids) != "[a]" {
				t.Errorf("Match = %v, want [a]", ids)
			}
			lo := event.NewBuilder("T").Int("price", 0).Build()
			if ids, _ := eng.Match(lo); len(ids) != 0 {
				t.Errorf("Match = %v, want none", ids)
			}
		})
	}
}

func TestEngineDuplicateEqConstraint(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			f := &filter.Filter{Constraints: []filter.Constraint{
				filter.C("x", filter.OpEq, event.Int(1)),
				filter.C("x", filter.OpEq, event.Int(1)),
			}}
			eng.Insert(f, "a")
			e := event.NewBuilder("T").Int("x", 1).Build()
			if ids, _ := eng.Match(e); fmt.Sprint(ids) != "[a]" {
				t.Errorf("Match = %v, want [a]", ids)
			}
		})
	}
}

// TestEnginesAgreeProperty cross-validates every engine kind against
// direct filter evaluation on random workloads, including inserts,
// per-association removes, and whole-ID removes (which exercise the
// indexed engine's tombstone/rebuild lifecycle).
func TestEnginesAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	naive := NewNaiveTable(nil)
	others := map[string]Engine{
		"counting": NewCountingTable(nil),
		"indexed":  NewIndexedTable(nil),
		"sharded":  NewSharded(nil, 3),
	}
	type assoc struct {
		f  *filter.Filter
		id string
	}
	var live []assoc
	for round := 0; round < 2500; round++ {
		switch r := rng.IntN(10); {
		case len(live) == 0 || r < 6:
			f := randomIdxFilter(rng)
			id := fmt.Sprintf("id%d", rng.IntN(10))
			naive.Insert(f, id)
			for _, eng := range others {
				eng.Insert(f, id)
			}
			live = append(live, assoc{f, id})
		case r < 9:
			i := rng.IntN(len(live))
			naive.Remove(live[i].f, live[i].id)
			for _, eng := range others {
				eng.Remove(live[i].f, live[i].id)
			}
			live = append(live[:i], live[i+1:]...)
		default:
			id := fmt.Sprintf("id%d", rng.IntN(10))
			naive.RemoveID(id)
			for _, eng := range others {
				eng.RemoveID(id)
			}
			kept := live[:0]
			for _, a := range live {
				if a.id != id {
					kept = append(kept, a)
				}
			}
			live = kept
		}
		e := randomIdxEvent(rng)
		nids, nm := naive.Match(e)
		for name, eng := range others {
			if eng.Len() != naive.Len() {
				t.Fatalf("round %d: Len diverged naive=%d %s=%d", round, naive.Len(), name, eng.Len())
			}
			ids, m := eng.Match(e)
			if fmt.Sprint(nids) != fmt.Sprint(ids) {
				t.Fatalf("round %d: engines diverge on %s:\n naive %v (%d)\n %s %v (%d)",
					round, e, nids, nm, name, ids, m)
			}
			// The sharded engine's matched count legitimately differs
			// (per-shard sums); for single-table engines it must agree.
			if name != "sharded" && m != nm {
				t.Fatalf("round %d: matched count diverged naive=%d %s=%d", round, nm, name, m)
			}
		}
		// Spot-check against direct evaluation.
		want := 0
		for _, f := range naive.Filters() {
			if f.Matches(e, nil) {
				want++
			}
		}
		if nm != want {
			t.Fatalf("round %d: matched=%d, direct evaluation=%d", round, nm, want)
		}
	}
}

func randomIdxFilter(rng *rand.Rand) *filter.Filter {
	f := &filter.Filter{}
	if rng.IntN(2) == 0 {
		f.Class = []string{"A", "B"}[rng.IntN(2)]
	}
	ops := []filter.Op{
		filter.OpEq, filter.OpEq, filter.OpNe,
		filter.OpLt, filter.OpLe, filter.OpGt, filter.OpGe,
		filter.OpPrefix, filter.OpSuffix, filter.OpContains,
		filter.OpExists, filter.OpAny,
	}
	for range 1 + rng.IntN(3) {
		op := ops[rng.IntN(len(ops))]
		attr := []string{"w", "x", "y", "z"}[rng.IntN(4)]
		c := filter.Constraint{Attr: attr, Op: op}
		if op.NeedsOperand() {
			switch {
			case op == filter.OpPrefix || op == filter.OpSuffix || op == filter.OpContains:
				c.Operand = event.String(randomIdxStr(rng))
			case rng.IntN(2) == 0:
				c.Operand = event.Int(int64(rng.IntN(5)))
			default:
				c.Operand = event.String(randomIdxStr(rng))
			}
		}
		f.Constraints = append(f.Constraints, c)
	}
	return f
}

// randomIdxStr returns "", "a".."c", or a two-rune string; short strings
// make prefix/suffix/contains collisions (and misses) likely.
func randomIdxStr(rng *rand.Rand) string {
	n := rng.IntN(3)
	s := make([]rune, n)
	for i := range s {
		s[i] = rune('a' + rng.IntN(3))
	}
	return string(s)
}

func randomIdxEvent(rng *rand.Rand) *event.Event {
	b := event.NewBuilder([]string{"A", "B", "C"}[rng.IntN(3)])
	for _, attr := range []string{"w", "x", "y", "z"} {
		if rng.IntN(3) == 0 {
			continue
		}
		switch rng.IntN(5) {
		case 0, 1:
			b.Int(attr, int64(rng.IntN(5)))
		case 2:
			b.Float(attr, []float64{0, math.Copysign(0, -1), 2.5, math.NaN()}[rng.IntN(4)])
		default:
			b.Str(attr, randomIdxStr(rng))
		}
	}
	return b.Build()
}

func TestNaiveTableIDs(t *testing.T) {
	nt := NewNaiveTable(nil)
	f := filter.MustParseFilter(`x = 1`)
	nt.Insert(f, "b")
	nt.Insert(f, "a")
	if got := fmt.Sprint(nt.IDs(f)); got != "[a b]" {
		t.Errorf("IDs = %s, want [a b]", got)
	}
	if got := nt.IDs(filter.MustParseFilter(`y = 1`)); got != nil {
		t.Errorf("IDs of absent filter = %v", got)
	}
}
