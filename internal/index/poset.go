package index

import (
	"sort"

	"eventsys/internal/filter"
)

// Poset maintains filters under the covering partial order (Definition 2)
// as a DAG: parents cover children. It answers the placement protocol's
// central query — "the strongest stored filter covering f" (Figure 5) —
// by descending from the roots instead of scanning linearly, which is
// the standard scalable structure for subscription management in
// content-based systems (the paper's "collapsing subscriptions" relies
// on exactly this order).
//
// Poset is not safe for concurrent use.
type Poset struct {
	conf  filter.Conformance
	byKey map[string]*posetNode
	roots map[*posetNode]struct{}
}

type posetNode struct {
	key      string
	f        *filter.Filter
	ids      map[string]struct{}
	parents  map[*posetNode]struct{}
	children map[*posetNode]struct{}
}

// NewPoset returns an empty poset using conf for class conformance (nil
// means exact type matching).
func NewPoset(conf filter.Conformance) *Poset {
	return &Poset{
		conf:  conf,
		byKey: make(map[string]*posetNode),
		roots: make(map[*posetNode]struct{}),
	}
}

// Len reports the number of distinct stored filters.
func (p *Poset) Len() int { return len(p.byKey) }

// Insert associates id with f, placing f at its position in the covering
// order.
func (p *Poset) Insert(f *filter.Filter, id string) {
	key := f.Key()
	if n, ok := p.byKey[key]; ok {
		n.ids[id] = struct{}{}
		return
	}
	n := &posetNode{
		key:      key,
		f:        f.Clone(),
		ids:      map[string]struct{}{id: {}},
		parents:  make(map[*posetNode]struct{}),
		children: make(map[*posetNode]struct{}),
	}
	// Minimal coverers of f become parents; maximal covered become
	// children; direct parent→child edges shortcut by n are removed.
	preds := p.minimalCoverers(n.f)
	succs := p.maximalCovered(n.f, preds)
	for _, pred := range preds {
		for _, succ := range succs {
			delete(pred.children, succ)
			delete(succ.parents, pred)
		}
	}
	for _, pred := range preds {
		pred.children[n] = struct{}{}
		n.parents[pred] = struct{}{}
	}
	for _, succ := range succs {
		if len(succ.parents) == 0 {
			delete(p.roots, succ)
		}
		n.children[succ] = struct{}{}
		succ.parents[n] = struct{}{}
	}
	if len(n.parents) == 0 {
		p.roots[n] = struct{}{}
	}
	p.byKey[key] = n
}

// minimalCoverers returns the stored filters covering f that have no
// child also covering f (the tightest enclosing layer).
func (p *Poset) minimalCoverers(f *filter.Filter) []*posetNode {
	var out []*posetNode
	seen := make(map[*posetNode]bool)
	var visit func(n *posetNode)
	visit = func(n *posetNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		if !filter.Covers(n.f, f, p.conf) {
			return
		}
		deeper := false
		for c := range n.children {
			if filter.Covers(c.f, f, p.conf) {
				deeper = true
				visit(c)
			}
		}
		if !deeper {
			out = append(out, n)
		}
	}
	for r := range p.roots {
		visit(r)
	}
	return dedupNodes(out)
}

// maximalCovered returns the stored filters covered by f that are not
// below another covered filter, searching beneath the given predecessor
// layer (and the roots, when f has no predecessors). Nodes equivalent to
// f (mutual covering) are excluded: key-identical filters were handled
// by Insert, and linking equivalents both ways would create a cycle.
func (p *Poset) maximalCovered(f *filter.Filter, preds []*posetNode) []*posetNode {
	start := make([]*posetNode, 0, len(preds))
	if len(preds) == 0 {
		for r := range p.roots {
			start = append(start, r)
		}
	} else {
		for _, pr := range preds {
			for c := range pr.children {
				start = append(start, c)
			}
		}
	}
	var out []*posetNode
	seen := make(map[*posetNode]bool)
	var visit func(n *posetNode)
	visit = func(n *posetNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		if filter.Covers(f, n.f, p.conf) && !filter.Covers(n.f, f, p.conf) {
			out = append(out, n)
			return // maximal along this branch; do not descend
		}
		for c := range n.children {
			visit(c)
		}
	}
	for _, s := range start {
		visit(s)
	}
	return dedupNodes(out)
}

func dedupNodes(in []*posetNode) []*posetNode {
	seen := make(map[*posetNode]bool, len(in))
	out := in[:0:0]
	for _, n := range in {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Remove dissociates id from f; the node disappears (re-linking its
// parents to its children) with its last id.
func (p *Poset) Remove(f *filter.Filter, id string) {
	n, ok := p.byKey[f.Key()]
	if !ok {
		return
	}
	delete(n.ids, id)
	if len(n.ids) > 0 {
		return
	}
	delete(p.byKey, n.key)
	delete(p.roots, n)
	for parent := range n.parents {
		delete(parent.children, n)
	}
	for child := range n.children {
		delete(child.parents, n)
	}
	// Reconnect: each orphaned child attaches under n's parents (which
	// cover it transitively), unless another path already covers it.
	for child := range n.children {
		for parent := range n.parents {
			if !p.reachable(parent, child) {
				parent.children[child] = struct{}{}
				child.parents[parent] = struct{}{}
			}
		}
		if len(child.parents) == 0 {
			p.roots[child] = struct{}{}
		}
	}
}

// reachable reports whether b is reachable strictly below a.
func (p *Poset) reachable(a, b *posetNode) bool {
	for c := range a.children {
		if c == b || p.reachable(c, b) {
			return true
		}
	}
	return false
}

// StrongestCovering returns the strongest stored filter covering f —
// i.e. a covering filter with no stored child that also covers f — with
// its associated IDs (sorted). Ties break deterministically by filter
// key. ok is false when nothing covers f.
func (p *Poset) StrongestCovering(f *filter.Filter) (match *filter.Filter, ids []string, ok bool) {
	cands := p.minimalCoverers(f)
	if len(cands) == 0 {
		return nil, nil, false
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].key < cands[j].key })
	best := cands[0]
	out := make([]string, 0, len(best.ids))
	for id := range best.ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return best.f.Clone(), out, true
}

// Filters returns all stored filters in deterministic (key) order.
func (p *Poset) Filters() []*filter.Filter {
	keys := make([]string, 0, len(p.byKey))
	for k := range p.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*filter.Filter, len(keys))
	for i, k := range keys {
		out[i] = p.byKey[k].f
	}
	return out
}

// validate checks the structural invariants (tests only): acyclicity,
// edge symmetry, parents covering children, and root consistency.
func (p *Poset) validate() error {
	state := make(map[*posetNode]int) // 0 unvisited, 1 in stack, 2 done
	var dfs func(n *posetNode) error
	dfs = func(n *posetNode) error {
		switch state[n] {
		case 1:
			return errCycle
		case 2:
			return nil
		}
		state[n] = 1
		for c := range n.children {
			if _, ok := c.parents[n]; !ok {
				return errEdge
			}
			if !filter.Covers(n.f, c.f, p.conf) {
				return errOrder
			}
			if err := dfs(c); err != nil {
				return err
			}
		}
		state[n] = 2
		return nil
	}
	for _, n := range p.byKey {
		if len(n.parents) == 0 {
			if _, ok := p.roots[n]; !ok {
				return errRoot
			}
		}
		if err := dfs(n); err != nil {
			return err
		}
	}
	return nil
}

type posetErr string

func (e posetErr) Error() string { return string(e) }

const (
	errCycle posetErr = "index: poset cycle"
	errEdge  posetErr = "index: asymmetric poset edge"
	errOrder posetErr = "index: parent does not cover child"
	errRoot  posetErr = "index: orphan node missing from roots"
)
