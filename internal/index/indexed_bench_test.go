package index

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/workload"
)

// benchAlertPop caches populated engines and event streams across
// benchmark calibration rounds: populating a 1M-subscription engine
// takes seconds and must not be repeated for every b.N refinement.
var benchAlertPop = map[string]Engine{}
var benchAlertEvents []event.View

func alertEvents(b *testing.B) []event.View {
	b.Helper()
	if benchAlertEvents == nil {
		a, err := workload.NewAlerts(101, workload.DefaultAlerts())
		if err != nil {
			b.Fatal(err)
		}
		benchAlertEvents = make([]event.View, 8192)
		for i := range benchAlertEvents {
			benchAlertEvents[i] = a.Event()
		}
	}
	return benchAlertEvents
}

func alertEngine(b *testing.B, kind Kind, subs int) Engine {
	b.Helper()
	key := fmt.Sprintf("%s-%d", kind, subs)
	if eng, ok := benchAlertPop[key]; ok {
		return eng
	}
	a, err := workload.NewAlerts(7, workload.DefaultAlerts())
	if err != nil {
		b.Fatal(err)
	}
	eng := New(Config{Kind: kind})
	for i := 0; i < subs; i++ {
		eng.Insert(a.Subscription(), fmt.Sprintf("sub-%07d", i))
	}
	benchAlertPop[key] = eng
	return eng
}

// BenchmarkIndexedMatch is the headline curve for the predicate-indexed
// engine: per-event match cost on the alert workload (Zipf-skewed
// metric-equality, threshold-alarm and topic-prefix subscriptions) at
// 10k, 100k and 1M subscriptions, against the counting engine at 10k
// and 100k (its linear scan lists make 1M impractical to benchmark).
// Besides ns/op it reports p50-ns and p99-ns per-event latency from an
// individually-timed sample pass, since the tail (events whose value
// lands in the alarm bands) is far more expensive than the median.
func BenchmarkIndexedMatch(b *testing.B) {
	type cfg struct {
		kind Kind
		subs int
	}
	cases := []cfg{
		{KindCounting, 10_000},
		{KindCounting, 100_000},
		{KindIndexed, 10_000},
		{KindIndexed, 100_000},
		{KindIndexed, 1_000_000},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s-subs=%d", c.kind, c.subs), func(b *testing.B) {
			events := alertEvents(b)
			eng := alertEngine(b, c.kind, c.subs)
			// Percentile sample pass (untimed by the framework), after a
			// warmup pass so the percentiles reflect steady state rather
			// than a cold cache and a post-population GC.
			sample := len(events)
			if c.kind == KindCounting {
				sample = 512 // linear engine: keep setup bounded
			}
			for i := 0; i < sample; i++ {
				eng.Match(events[i%len(events)])
			}
			// A time.Now/Since pair has a fixed cost of its own (~100ns on
			// virtualized clocks); subtract the minimum observed empty-pair
			// cost so the percentiles reflect Match itself.
			overhead := time.Duration(1 << 62)
			for i := 0; i < 4096; i++ {
				start := time.Now()
				if d := time.Since(start); d < overhead {
					overhead = d
				}
			}
			lat := make([]time.Duration, sample)
			for i := 0; i < sample; i++ {
				start := time.Now()
				eng.Match(events[i%len(events)])
				if lat[i] = time.Since(start) - overhead; lat[i] < 0 {
					lat[i] = 0
				}
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			i := 0
			for b.Loop() {
				eng.Match(events[i%len(events)])
				i++
			}
			// After the loop: b.Loop's implicit ResetTimer clears extra
			// metrics recorded earlier.
			b.ReportMetric(float64(lat[sample*50/100].Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(lat[sample*99/100].Nanoseconds()), "p99-ns")
		})
	}
}

// BenchmarkIndexedChurn measures subscription turnover on a populated
// indexed engine: one Insert plus one RemoveID per op, exercising the
// delta buffers, tombstone accounting and amortized purge at steady
// state.
func BenchmarkIndexedChurn(b *testing.B) {
	const subs = 100_000
	a, err := workload.NewAlerts(7, workload.DefaultAlerts())
	if err != nil {
		b.Fatal(err)
	}
	eng := NewIndexedTable(nil)
	filters := make([]*filter.Filter, subs)
	for i := 0; i < subs; i++ {
		filters[i] = a.Subscription()
		eng.Insert(filters[i], fmt.Sprintf("sub-%07d", i))
	}
	b.ResetTimer()
	i := 0
	for b.Loop() {
		id := fmt.Sprintf("churn-%07d", i%subs)
		eng.Insert(filters[i%subs], id)
		eng.RemoveID(id)
		i++
	}
}
