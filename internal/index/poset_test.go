package index

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

func TestPosetBasicOrder(t *testing.T) {
	p := NewPoset(nil)
	top := filter.MustParseFilter(`class = "Stock"`)
	mid := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	bot := filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 10`)
	p.Insert(top, "t")
	p.Insert(bot, "b")
	p.Insert(mid, "m") // inserted between existing top and bottom
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	sub := filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 5`)
	got, ids, ok := p.StrongestCovering(sub)
	if !ok || fmt.Sprint(ids) != "[b]" {
		t.Fatalf("StrongestCovering = %s %v %v, want bot [b]", got, ids, ok)
	}
	// A filter only the class filter covers.
	sub2 := filter.MustParseFilter(`class = "Stock" && symbol = "Z"`)
	_, ids, ok = p.StrongestCovering(sub2)
	if !ok || fmt.Sprint(ids) != "[t]" {
		t.Fatalf("StrongestCovering = %v %v, want [t]", ids, ok)
	}
	// Nothing covers an Auction filter.
	if _, _, ok := p.StrongestCovering(filter.MustParseFilter(`class = "Auction"`)); ok {
		t.Fatal("uncovered filter reported as covered")
	}
}

func TestPosetDuplicateInsert(t *testing.T) {
	p := NewPoset(nil)
	f := filter.MustParseFilter(`x = 1`)
	p.Insert(f, "a")
	p.Insert(f.Clone(), "b")
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	_, ids, ok := p.StrongestCovering(filter.MustParseFilter(`x = 1`))
	if !ok || fmt.Sprint(ids) != "[a b]" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestPosetRemoveRelinks(t *testing.T) {
	p := NewPoset(nil)
	top := filter.MustParseFilter(`class = "Stock"`)
	mid := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	bot := filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 10`)
	p.Insert(top, "t")
	p.Insert(mid, "m")
	p.Insert(bot, "b")
	p.Remove(mid, "m")
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	// bot must now hang directly under top.
	sub := filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 5`)
	_, ids, ok := p.StrongestCovering(sub)
	if !ok || fmt.Sprint(ids) != "[b]" {
		t.Fatalf("after removal: %v %v", ids, ok)
	}
	// Removing an id that leaves others keeps the node.
	p.Insert(bot, "b2")
	p.Remove(bot, "b")
	_, ids, _ = p.StrongestCovering(sub)
	if fmt.Sprint(ids) != "[b2]" {
		t.Fatalf("ids = %v", ids)
	}
	// Removing an unknown filter is a no-op.
	p.Remove(filter.MustParseFilter(`zz = 1`), "x")
}

func TestPosetRootRemoval(t *testing.T) {
	p := NewPoset(nil)
	top := filter.MustParseFilter(`class = "Stock"`)
	bot := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	p.Insert(top, "t")
	p.Insert(bot, "b")
	p.Remove(top, "t")
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	// bot is now a root and still findable.
	_, ids, ok := p.StrongestCovering(filter.MustParseFilter(`class = "Stock" && symbol = "A" && price < 1`))
	if !ok || fmt.Sprint(ids) != "[b]" {
		t.Fatalf("after root removal: %v %v", ids, ok)
	}
}

func TestPosetEquivalentFilters(t *testing.T) {
	// Semantically equivalent but syntactically different filters must
	// not create a cycle.
	p := NewPoset(nil)
	a := filter.MustParseFilter(`x >= 5 && x <= 5`)
	b := filter.MustParseFilter(`x = 5`)
	p.Insert(a, "a")
	p.Insert(b, "b")
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	_, _, ok := p.StrongestCovering(filter.MustParseFilter(`x = 5`))
	if !ok {
		t.Fatal("equivalent filters not found")
	}
}

// TestPosetAgreesWithLinearProperty cross-validates the poset's
// strongest-covering answer against the linear search on random filter
// populations, including interleaved removals.
func TestPosetAgreesWithLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	for round := 0; round < 60; round++ {
		p := NewPoset(nil)
		var live []*filter.Filter
		var ids []string
		next := 0
		for i := 0; i < 30; i++ {
			if len(live) > 0 && rng.IntN(4) == 0 {
				j := rng.IntN(len(live))
				p.Remove(live[j], ids[j])
				live = append(live[:j], live[j+1:]...)
				ids = append(ids[:j], ids[j+1:]...)
				continue
			}
			f := randomPosetFilter(rng)
			id := fmt.Sprintf("id%d", next)
			next++
			p.Insert(f, id)
			live = append(live, f)
			ids = append(ids, id)
		}
		if err := p.validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for probe := 0; probe < 20; probe++ {
			q := randomPosetFilter(rng)
			got, _, ok := p.StrongestCovering(q)
			wantIdx := filter.StrongestCovering(live, q, nil)
			if ok != (wantIdx >= 0) {
				t.Fatalf("round %d: coverage disagreement for %s: poset=%v linear=%d",
					round, q, ok, wantIdx)
			}
			if !ok {
				continue
			}
			// The poset answer must cover q and be minimal: no live
			// filter covering q may be strictly below it.
			if !filter.Covers(got, q, nil) {
				t.Fatalf("round %d: poset answer %s does not cover %s", round, got, q)
			}
			for _, f := range live {
				if filter.Covers(f, q, nil) &&
					filter.Covers(got, f, nil) && !filter.Covers(f, got, nil) {
					t.Fatalf("round %d: %s is a strictly stronger coverer of %s than %s",
						round, f, q, got)
				}
			}
		}
	}
}

func randomPosetFilter(rng *rand.Rand) *filter.Filter {
	f := &filter.Filter{Class: []string{"A", "B"}[rng.IntN(2)]}
	attrs := []string{"x", "y", "z"}
	for _, a := range attrs {
		switch rng.IntN(4) {
		case 0: // absent
		case 1:
			f.Constraints = append(f.Constraints,
				filter.C(a, filter.OpEq, event.Int(int64(rng.IntN(4)))))
		case 2:
			f.Constraints = append(f.Constraints,
				filter.C(a, filter.OpLt, event.Int(int64(rng.IntN(8)))))
		default:
			f.Constraints = append(f.Constraints,
				filter.C(a, filter.OpGe, event.Int(int64(rng.IntN(8)))))
		}
	}
	return f
}

func BenchmarkPosetVsLinearPlacement(b *testing.B) {
	for _, n := range []int{100, 1000} {
		rng := rand.New(rand.NewPCG(7, uint64(n)))
		var live []*filter.Filter
		poset := NewPoset(nil)
		for i := 0; i < n; i++ {
			f := randomPosetFilter(rng)
			live = append(live, f)
			poset.Insert(f, fmt.Sprintf("id%d", i))
		}
		probes := make([]*filter.Filter, 64)
		for i := range probes {
			probes[i] = randomPosetFilter(rng)
		}
		b.Run(fmt.Sprintf("linear/n=%d", n), func(b *testing.B) {
			i := 0
			for b.Loop() {
				filter.StrongestCovering(live, probes[i%len(probes)], nil)
				i++
			}
		})
		b.Run(fmt.Sprintf("poset/n=%d", n), func(b *testing.B) {
			i := 0
			for b.Loop() {
				poset.StrongestCovering(probes[i%len(probes)])
				i++
			}
		})
	}
}
