package index

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/workload"
)

// population builds a reproducible subscription set and event stream.
func population(t testing.TB, seed uint64, subs, events int) ([]*filter.Filter, []string, []event.View) {
	t.Helper()
	bib, err := workload.NewBiblio(seed, workload.DefaultBiblio())
	if err != nil {
		t.Fatal(err)
	}
	filters := make([]*filter.Filter, subs)
	ids := make([]string, subs)
	for i := range filters {
		filters[i] = bib.Subscription(0.1, true)
		ids[i] = fmt.Sprintf("sub-%04d", i)
	}
	evs := make([]event.View, events)
	for i := range evs {
		evs[i] = bib.Event()
	}
	return filters, ids, evs
}

// TestShardedDeterministicMerge is the ordering contract of the batched
// pipeline: for every engine kind, the same subscription population and
// event set must yield identical per-event (and therefore
// per-subscriber) results for 1, 2, and 8 shards — and for the
// unsharded single-threaded engine of that kind.
func TestShardedDeterministicMerge(t *testing.T) {
	filters, ids, evs := population(t, 7, 500, 200)
	for _, kind := range []Kind{KindNaive, KindCounting, KindIndexed} {
		t.Run(kind.String(), func(t *testing.T) {
			want := New(Config{Kind: kind})
			for i, f := range filters {
				want.Insert(f, ids[i])
			}
			wantRes := MatchEach(want, evs)
			for _, shards := range []int{1, 2, 8} {
				eng, ok := New(Config{Kind: kind, Shards: shards}).(*ShardedEngine)
				if shards == 1 {
					// Shards=1 composes to the unsharded engine.
					if ok {
						t.Fatalf("Shards=1 built a ShardedEngine")
					}
					eng = NewShardedEngine(1, func() Engine { return New(Config{Kind: kind}) })
				} else if !ok || eng.Shards() != shards {
					t.Fatalf("Config{%v, Shards: %d} built %T", kind, shards, eng)
				}
				for i, f := range filters {
					eng.Insert(f, ids[i])
				}
				got := eng.MatchBatch(evs)
				for i := range evs {
					if !reflect.DeepEqual(got[i].IDs, wantRes[i].IDs) {
						t.Fatalf("shards=%d event %d: IDs = %v, want %v", shards, i, got[i].IDs, wantRes[i].IDs)
					}
					if (got[i].Matched > 0) != (wantRes[i].Matched > 0) {
						t.Fatalf("shards=%d event %d: matched = %d, unsharded says %d",
							shards, i, got[i].Matched, wantRes[i].Matched)
					}
				}
				// Per-event Match must agree with the batch path.
				for i := 0; i < len(evs); i += 37 {
					single, _ := eng.Match(evs[i])
					if !reflect.DeepEqual(single, got[i].IDs) {
						t.Fatalf("shards=%d event %d: Match = %v, MatchBatch = %v", shards, i, single, got[i].IDs)
					}
				}
			}
		})
	}
}

// TestShardedRemoveAndLen exercises the mutation paths and the
// deduplicating Len/Filters accounting across shards.
func TestShardedRemoveAndLen(t *testing.T) {
	eng := NewSharded(nil, 4)
	f := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	g := filter.MustParseFilter(`class = "Stock" && price < 10`)
	// The same filter under many IDs lands in several shards but counts
	// once.
	for i := 0; i < 16; i++ {
		eng.Insert(f, fmt.Sprintf("id%d", i))
	}
	eng.Insert(g, "id0")
	if n := eng.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	if n := len(eng.Filters()); n != 2 {
		t.Fatalf("Filters = %d entries, want 2", n)
	}
	e := event.NewBuilder("Stock").Str("symbol", "A").Float("price", 5).Build()
	ids, matched := eng.Match(e)
	if len(ids) != 16 || matched < 2 {
		t.Fatalf("Match = %d ids, %d matched; want 16 ids, >= 2 matched", len(ids), matched)
	}
	for i := 0; i < 16; i++ {
		eng.Remove(f, fmt.Sprintf("id%d", i))
	}
	if n := eng.Len(); n != 1 {
		t.Fatalf("Len after removes = %d, want 1", n)
	}
	eng.RemoveID("id0")
	if n := eng.Len(); n != 0 {
		t.Fatalf("Len after RemoveID = %d, want 0", n)
	}
	if ids, _ := eng.Match(e); len(ids) != 0 {
		t.Fatalf("Match after removal = %v, want none", ids)
	}
}

// TestShardedConcurrentChurn races concurrent Subscribe/Unsubscribe
// against batched matching; run under -race (the CI default) it verifies
// the per-shard locking discipline, and the final sequential pass
// verifies the engine is still consistent afterwards.
func TestShardedConcurrentChurn(t *testing.T) {
	filters, ids, evs := population(t, 11, 400, 64)
	eng := NewSharded(nil, 8)
	for i, f := range filters {
		eng.Insert(f, ids[i])
	}
	const (
		churners = 4
		matchers = 4
		rounds   = 200
	)
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 99))
			for r := 0; r < rounds; r++ {
				i := rng.IntN(len(filters))
				switch r % 3 {
				case 0:
					eng.Insert(filters[i], ids[i])
				case 1:
					eng.Remove(filters[i], ids[i])
				default:
					eng.RemoveID(ids[i])
				}
			}
		}(c)
	}
	for m := 0; m < matchers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for r := 0; r < rounds/10; r++ {
				rs := eng.MatchBatch(evs)
				if len(rs) != len(evs) {
					t.Errorf("MatchBatch returned %d results for %d events", len(rs), len(evs))
					return
				}
			}
		}(m)
	}
	wg.Wait()
	// Re-insert everything and cross-check against a fresh counting table.
	for i, f := range filters {
		eng.Insert(f, ids[i])
	}
	want := NewCountingTable(nil)
	for i, f := range filters {
		want.Insert(f, ids[i])
	}
	wantRes := MatchEach(want, evs)
	for i, r := range eng.MatchBatch(evs) {
		if !reflect.DeepEqual(r.IDs, wantRes[i].IDs) {
			t.Fatalf("post-churn event %d: IDs = %v, want %v", i, r.IDs, wantRes[i].IDs)
		}
	}
}

// TestKindSelection covers the explicit engine constructor and flag
// parsing.
func TestKindSelection(t *testing.T) {
	if _, ok := New(Config{}).(*NaiveTable); !ok {
		t.Error("zero Config should select the naive table")
	}
	if _, ok := New(Config{Kind: KindCounting}).(*CountingTable); !ok {
		t.Error("KindCounting should select the counting table")
	}
	eng, ok := New(Config{Kind: KindSharded, Shards: 3}).(*ShardedEngine)
	if !ok || eng.Shards() != 3 {
		t.Errorf("KindSharded/3 selected %T with %d shards", eng, eng.Shards())
	}
	if _, ok := New(Config{Kind: KindIndexed}).(*IndexedTable); !ok {
		t.Error("KindIndexed should select the indexed table")
	}
	if eng, ok := New(Config{Kind: KindIndexed, Shards: 2}).(*ShardedEngine); !ok || eng.Shards() != 2 {
		t.Error("KindIndexed with Shards: 2 should compose into a sharded engine")
	}
	if _, ok := New(Config{Kind: KindCounting, Shards: 1}).(*CountingTable); !ok {
		t.Error("Shards: 1 should stay unsharded")
	}
	for _, tc := range []struct {
		in   string
		want Kind
		err  bool
	}{
		{"naive", KindNaive, false},
		{"", KindNaive, false},
		{"counting", KindCounting, false},
		{"sharded", KindSharded, false},
		{"indexed", KindIndexed, false},
		{"quantum", 0, true},
	} {
		got, err := ParseKind(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
		if err == nil && got.String() != tc.in && tc.in != "" {
			t.Errorf("Kind(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
}

// TestShardLoads pins the per-shard load accounting: loads sum to the
// distinct live subscription count, re-inserting an existing (filter,
// id) association (a lease refresh) is idempotent, and Remove/RemoveID
// retire IDs exactly when their last association goes.
func TestShardLoads(t *testing.T) {
	eng := NewSharded(nil, 4)
	f := filter.MustParseFilter(`class = "Stock" && symbol = "A"`)
	g := filter.MustParseFilter(`class = "Stock" && price < 10`)
	sum := func() int {
		total := 0
		for _, n := range eng.ShardLoads() {
			total += n
		}
		return total
	}
	if got := eng.ShardLoads(); len(got) != 4 || sum() != 0 {
		t.Fatalf("empty engine: ShardLoads() = %v", got)
	}
	for i := 0; i < 32; i++ {
		eng.Insert(f, fmt.Sprintf("sub-%02d", i))
	}
	if sum() != 32 {
		t.Fatalf("after 32 inserts: loads %v sum to %d, want 32", eng.ShardLoads(), sum())
	}
	// A lease refresh re-inserts the same association; a second filter
	// under the same ID adds an association but not a subscriber.
	eng.Insert(f, "sub-00")
	eng.Insert(g, "sub-00")
	if sum() != 32 {
		t.Fatalf("after refresh + second filter: loads sum to %d, want 32", sum())
	}
	// The first Remove leaves sub-00 live under g; the second retires it.
	eng.Remove(f, "sub-00")
	if sum() != 32 {
		t.Fatalf("after removing one of two filters: loads sum to %d, want 32", sum())
	}
	eng.Remove(g, "sub-00")
	if sum() != 31 {
		t.Fatalf("after removing last filter: loads sum to %d, want 31", sum())
	}
	// Removing an association that was never inserted is a no-op.
	eng.Remove(g, "sub-01")
	if sum() != 31 {
		t.Fatalf("after spurious remove: loads sum to %d, want 31", sum())
	}
	eng.RemoveID("sub-02")
	if sum() != 30 {
		t.Fatalf("after RemoveID: loads sum to %d, want 30", sum())
	}
}

// TestShardSkewWarning drives the rate-limited skew diagnostic: a
// population hashed onto one hot shard warns once, the rate limiter
// suppresses the immediate repeat, and a balanced population (or a
// near-empty engine, via the floor) stays quiet.
func TestShardSkewWarning(t *testing.T) {
	var warnings []string
	eng := NewSharded(nil, 4)
	eng.SetWarn(func(msg string) { warnings = append(warnings, msg) })
	f := filter.MustParseFilter(`class = "Stock"`)

	// Collect IDs that all hash to the same shard.
	hot := eng.shardFor("seed")
	var hotIDs []string
	for i := 0; len(hotIDs) < skewFloor+4; i++ {
		id := fmt.Sprintf("sub-%05d", i)
		if eng.shardFor(id) == hot {
			hotIDs = append(hotIDs, id)
		}
	}

	// Below the floor no skew is reported, however lopsided.
	for _, id := range hotIDs[:skewFloor-1] {
		eng.Insert(f, id)
		eng.lastSkew.Store(0) // re-arm the rate limiter for each check
	}
	if len(warnings) != 0 {
		t.Fatalf("warned below the floor: %q", warnings)
	}

	// Crossing the floor with every other shard empty reports skew.
	for _, id := range hotIDs[skewFloor-1:] {
		eng.Insert(f, id)
		eng.lastSkew.Store(0)
	}
	if len(warnings) == 0 {
		t.Fatal("no warning for a fully skewed population above the floor")
	}

	// Without re-arming, the rate limiter swallows repeats. The loop
	// above left the limiter armed, so the first insert may warn once
	// more; the ones after it must not.
	eng.Insert(f, hotIDs[0])
	n := len(warnings)
	eng.Insert(f, hotIDs[1])
	eng.Insert(f, hotIDs[2])
	if len(warnings) != n {
		t.Fatalf("rate limiter let a repeat through: %d warnings, had %d", len(warnings), n)
	}

	// A balanced population stays quiet: spread enough IDs across all
	// shards that max <= 4x min.
	eng2 := NewSharded(nil, 4)
	eng2.SetWarn(func(msg string) { t.Fatalf("balanced population warned: %s", msg) })
	for i := 0; i < 400; i++ {
		eng2.Insert(f, fmt.Sprintf("even-%04d", i))
		eng2.lastSkew.Store(0)
	}
}
