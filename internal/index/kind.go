package index

import (
	"fmt"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// Kind names a matching-engine implementation.
type Kind int

const (
	// KindNaive selects the Figure 6 table: every filter evaluated
	// against every event. The default.
	KindNaive Kind = iota
	// KindCounting selects the counting index: matching cost scales with
	// satisfied constraints instead of stored filters.
	KindCounting
	// KindSharded selects the sharded parallel engine: counting shards
	// partitioned by subscription ID, matched concurrently.
	KindSharded
	// KindIndexed selects the predicate-indexed counting engine: sorted
	// threshold arrays, prefix/suffix postings and presence lists keep
	// matching logarithmic for the expressive (non-equality) predicates
	// too.
	KindIndexed
)

// String returns the flag-friendly engine name.
func (k Kind) String() string {
	switch k {
	case KindCounting:
		return "counting"
	case KindSharded:
		return "sharded"
	case KindIndexed:
		return "indexed"
	default:
		return "naive"
	}
}

// ParseKind maps a flag value ("naive", "counting", "sharded",
// "indexed") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "naive", "":
		return KindNaive, nil
	case "counting":
		return KindCounting, nil
	case "sharded":
		return KindSharded, nil
	case "indexed":
		return KindIndexed, nil
	default:
		return 0, fmt.Errorf("index: unknown engine %q (want naive, counting, sharded, or indexed)", s)
	}
}

// Config selects and parameterizes a matching engine. The zero value
// explicitly selects the naive table with exact type matching — there is
// no nil fallback; every runtime states its engine choice through New.
type Config struct {
	// Kind picks the engine implementation.
	Kind Kind
	// Conf resolves event class conformance (type-based subscribing);
	// nil means exact type names.
	Conf filter.Conformance
	// Shards is a modifier composable with Kind: any value above 1
	// partitions the selected engine into that many concurrently
	// matched shards (shards of counting tables, indexed tables, even
	// naive tables). For KindSharded — whose single-kind meaning is
	// "sharded counting" — 0 means GOMAXPROCS; for every other kind 0
	// and 1 select the unsharded engine.
	Shards int
	// Warn, when non-nil and the engine is sharded, receives the
	// rate-limited shard-skew diagnostic (ShardedEngine.SetWarn).
	// Ignored by unsharded engines.
	Warn func(msg string)
}

// New constructs the engine cfg selects. This is the single engine
// selection point shared by the overlay, the networked broker and the
// simulator.
func New(cfg Config) Engine {
	inner := func() Engine {
		switch cfg.Kind {
		case KindCounting, KindSharded:
			return NewCountingTable(cfg.Conf)
		case KindIndexed:
			return NewIndexedTable(cfg.Conf)
		default:
			return NewNaiveTable(cfg.Conf)
		}
	}
	if cfg.Kind == KindSharded || cfg.Shards > 1 {
		se := NewShardedEngine(cfg.Shards, inner)
		se.SetWarn(cfg.Warn)
		return se
	}
	return inner()
}

// MatchResult is one event's matching outcome: the associated IDs (sorted
// and deduplicated) and the number of filters evaluated to true.
type MatchResult struct {
	IDs     []string
	Matched int
}

// BatchMatcher is implemented by engines with a native batch path that
// amortizes per-call overhead (and, for ShardedEngine, matches the whole
// batch across shards in parallel).
type BatchMatcher interface {
	MatchBatch(events []event.View) []MatchResult
}

// MatchEach matches a batch of events through eng, using its native batch
// path when it has one and falling back to per-event Match otherwise.
// Results are positionally aligned with events.
func MatchEach(eng Engine, events []event.View) []MatchResult {
	if bm, ok := eng.(BatchMatcher); ok {
		return bm.MatchBatch(events)
	}
	out := make([]MatchResult, len(events))
	for i, e := range events {
		out[i].IDs, out[i].Matched = eng.Match(e)
	}
	return out
}
