package index

import (
	"fmt"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// Kind names a matching-engine implementation.
type Kind int

const (
	// KindNaive selects the Figure 6 table: every filter evaluated
	// against every event. The default.
	KindNaive Kind = iota
	// KindCounting selects the counting index: matching cost scales with
	// satisfied constraints instead of stored filters.
	KindCounting
	// KindSharded selects the sharded parallel engine: counting shards
	// partitioned by subscription ID, matched concurrently.
	KindSharded
)

// String returns the flag-friendly engine name.
func (k Kind) String() string {
	switch k {
	case KindCounting:
		return "counting"
	case KindSharded:
		return "sharded"
	default:
		return "naive"
	}
}

// ParseKind maps a flag value ("naive", "counting", "sharded") to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "naive", "":
		return KindNaive, nil
	case "counting":
		return KindCounting, nil
	case "sharded":
		return KindSharded, nil
	default:
		return 0, fmt.Errorf("index: unknown engine %q (want naive, counting, or sharded)", s)
	}
}

// Config selects and parameterizes a matching engine. The zero value
// explicitly selects the naive table with exact type matching — there is
// no nil fallback; every runtime states its engine choice through New.
type Config struct {
	// Kind picks the engine implementation.
	Kind Kind
	// Conf resolves event class conformance (type-based subscribing);
	// nil means exact type names.
	Conf filter.Conformance
	// Shards is the shard count for KindSharded; 0 means GOMAXPROCS.
	// Ignored by the other kinds.
	Shards int
}

// New constructs the engine cfg selects. This is the single engine
// selection point shared by the overlay, the networked broker and the
// simulator.
func New(cfg Config) Engine {
	switch cfg.Kind {
	case KindCounting:
		return NewCountingTable(cfg.Conf)
	case KindSharded:
		return NewSharded(cfg.Conf, cfg.Shards)
	default:
		return NewNaiveTable(cfg.Conf)
	}
}

// MatchResult is one event's matching outcome: the associated IDs (sorted
// and deduplicated) and the number of filters evaluated to true.
type MatchResult struct {
	IDs     []string
	Matched int
}

// BatchMatcher is implemented by engines with a native batch path that
// amortizes per-call overhead (and, for ShardedEngine, matches the whole
// batch across shards in parallel).
type BatchMatcher interface {
	MatchBatch(events []event.View) []MatchResult
}

// MatchEach matches a batch of events through eng, using its native batch
// path when it has one and falling back to per-event Match otherwise.
// Results are positionally aligned with events.
func MatchEach(eng Engine, events []event.View) []MatchResult {
	if bm, ok := eng.(BatchMatcher); ok {
		return bm.MatchBatch(events)
	}
	out := make([]MatchResult, len(events))
	for i, e := range events {
		out[i].IDs, out[i].Matched = eng.Match(e)
	}
	return out
}
