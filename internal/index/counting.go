package index

import (
	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// CountingTable implements the counting algorithm: each filter is broken
// into its constraints, constraints are indexed per attribute (equality
// constraints by value hash, others in per-attribute scan lists), and an
// event matches a filter when it satisfies all of the filter's
// constraints. Matching cost is proportional to the number of satisfied
// constraints, not to the number of filters, which is the scalability
// lever for large subscription populations.
type CountingTable struct {
	conf  filter.Conformance
	slots []*countSlot
	free  []int
	byKey map[string]int // filter key -> slot
	// byID is the reverse index id -> occupied slots: a disconnecting
	// subscriber with k filters costs O(k) to remove instead of a walk
	// over the whole table.
	byID  map[string]map[int]struct{}
	attrs map[string]*attrIndex
	// classOnly holds slots whose filters have zero attribute
	// constraints; they are candidates for every event.
	classOnly map[int]struct{}
	counts    []int // scratch, reused across Match calls
	stamp     []int
	curStamp  int
}

type countSlot struct {
	f     *filter.Filter
	key   string
	need  int // number of attribute constraints
	ids   map[string]struct{}
	alive bool
}

type attrIndex struct {
	// eq maps value keys to slots needing that equality, with the number
	// of identical constraints (duplicate constraints in one filter each
	// count).
	eq map[string][]slotCount
	// other holds non-equality constraints for linear evaluation.
	other []otherConstraint
	// seen stamps the Match round that already considered this
	// attribute: the first occurrence of a duplicated attribute name
	// wins, matching Lookup semantics.
	seen int
}

// slotCount is one posting entry: a slot plus the constraint
// multiplicity it earns per hit. int32 keeps the entry at 8 bytes —
// posting walks are bandwidth-bound at large populations, and 2^31
// slots is far beyond what a single table addresses.
type slotCount struct {
	slot int32
	n    int32
}

type otherConstraint struct {
	c    filter.Constraint
	slot int
}

var _ Engine = (*CountingTable)(nil)

// NewCountingTable returns an empty counting index using conf for class
// conformance (nil means exact type matching).
func NewCountingTable(conf filter.Conformance) *CountingTable {
	return &CountingTable{
		conf:      conf,
		byKey:     make(map[string]int),
		byID:      make(map[string]map[int]struct{}),
		attrs:     make(map[string]*attrIndex),
		classOnly: make(map[int]struct{}),
	}
}

// linkID records id -> slot in the reverse index.
func (t *CountingTable) linkID(id string, slot int) {
	set, ok := t.byID[id]
	if !ok {
		set = make(map[int]struct{})
		t.byID[id] = set
	}
	set[slot] = struct{}{}
}

// unlinkID removes id -> slot from the reverse index.
func (t *CountingTable) unlinkID(id string, slot int) {
	if set, ok := t.byID[id]; ok {
		delete(set, slot)
		if len(set) == 0 {
			delete(t.byID, id)
		}
	}
}

// Insert implements Engine.
func (t *CountingTable) Insert(f *filter.Filter, id string) {
	key := f.Key()
	if slot, ok := t.byKey[key]; ok {
		t.slots[slot].ids[id] = struct{}{}
		t.linkID(id, slot)
		return
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.slots[slot] = &countSlot{}
	} else {
		slot = len(t.slots)
		t.slots = append(t.slots, &countSlot{})
		t.counts = append(t.counts, 0)
		t.stamp = append(t.stamp, 0)
	}
	s := t.slots[slot]
	s.f = f.Clone()
	s.key = key
	s.need = len(f.Constraints)
	s.ids = map[string]struct{}{id: {}}
	s.alive = true
	t.byKey[key] = slot
	t.linkID(id, slot)
	if s.need == 0 {
		t.classOnly[slot] = struct{}{}
	}
	for _, c := range f.Constraints {
		ai, ok := t.attrs[c.Attr]
		if !ok {
			ai = &attrIndex{eq: make(map[string][]slotCount)}
			t.attrs[c.Attr] = ai
		}
		if hashableEq(c) {
			k := valueKey(c.Operand)
			found := false
			for i := range ai.eq[k] {
				if ai.eq[k][i].slot == int32(slot) {
					ai.eq[k][i].n++
					found = true
					break
				}
			}
			if !found {
				ai.eq[k] = append(ai.eq[k], slotCount{slot: int32(slot), n: 1})
			}
		} else {
			ai.other = append(ai.other, otherConstraint{c: c, slot: slot})
		}
	}
}

// Remove implements Engine.
func (t *CountingTable) Remove(f *filter.Filter, id string) {
	slot, ok := t.byKey[f.Key()]
	if !ok {
		return
	}
	s := t.slots[slot]
	if _, ok := s.ids[id]; !ok {
		return
	}
	delete(s.ids, id)
	t.unlinkID(id, slot)
	if len(s.ids) == 0 {
		t.dropSlot(slot)
	}
}

// RemoveID implements Engine in O(filters held by id): the reverse
// index names exactly the slots to visit, so a disconnecting subscriber
// never walks the whole table.
func (t *CountingTable) RemoveID(id string) {
	set := t.byID[id]
	delete(t.byID, id)
	for slot := range set {
		s := t.slots[slot]
		delete(s.ids, id)
		if len(s.ids) == 0 {
			t.dropSlot(slot)
		}
	}
}

// dropSlot tombstones a slot. Constraint entries pointing at it are
// filtered lazily during Match; the slot is recycled for the next insert.
func (t *CountingTable) dropSlot(slot int) {
	s := t.slots[slot]
	s.alive = false
	delete(t.byKey, s.key)
	delete(t.classOnly, slot)
	for _, c := range s.f.Constraints {
		ai := t.attrs[c.Attr]
		if ai == nil {
			continue
		}
		if hashableEq(c) {
			k := valueKey(c.Operand)
			scs := ai.eq[k]
			for i := 0; i < len(scs); i++ {
				if scs[i].slot == int32(slot) {
					scs[i] = scs[len(scs)-1]
					scs = scs[:len(scs)-1]
					break
				}
			}
			if len(scs) == 0 {
				delete(ai.eq, k)
			} else {
				ai.eq[k] = scs
			}
		} else {
			for i := 0; i < len(ai.other); i++ {
				if ai.other[i].slot == slot {
					ai.other[i] = ai.other[len(ai.other)-1]
					ai.other = ai.other[:len(ai.other)-1]
					i--
				}
			}
		}
	}
	t.free = append(t.free, slot)
}

// Match implements Engine using constraint counting. It evaluates the
// event view's attributes directly — a *event.Raw decodes each value on
// demand from the wire bytes, nothing is materialized.
func (t *CountingTable) Match(e event.View) ([]string, int) {
	t.curStamp++
	bump := func(slot, n int) {
		if t.stamp[slot] != t.curStamp {
			t.stamp[slot] = t.curStamp
			t.counts[slot] = 0
		}
		t.counts[slot] += n
	}
	consider := func(v event.Value, ai *attrIndex) {
		for _, sc := range ai.eq[valueKey(v)] {
			bump(int(sc.slot), int(sc.n))
		}
		for _, oc := range ai.other {
			if oc.c.MatchesValue(v) {
				bump(oc.slot, 1)
			}
		}
	}
	// The synthetic class attribute can also carry constraints when a
	// filter tests it as a plain string attribute; Lookup resolves it
	// before any explicit attribute of the same name, so it goes first.
	if ai, ok := t.attrs[event.TypeAttr]; ok {
		ai.seen = t.curStamp
		consider(event.String(e.Class()), ai)
	}
	for i, n := 0, e.NumAttrs(); i < n; i++ {
		name, v := e.AttrAt(i)
		if ai, ok := t.attrs[name]; ok && ai.seen != t.curStamp {
			ai.seen = t.curStamp
			consider(v, ai)
		}
	}
	var ids []string
	matched := 0
	collect := func(slot int) {
		s := t.slots[slot]
		if !s.alive {
			return
		}
		if !classOK(s.f, e, t.conf) {
			return
		}
		matched++
		for id := range s.ids {
			ids = append(ids, id)
		}
	}
	for slot, cnt := range t.counts {
		if t.stamp[slot] == t.curStamp && cnt >= t.slots[slot].need && t.slots[slot].need > 0 {
			collect(slot)
		}
	}
	for slot := range t.classOnly {
		collect(slot)
	}
	return dedupSorted(ids), matched
}

func classOK(f *filter.Filter, e event.View, conf filter.Conformance) bool {
	if f.Class == "" || f.Class == filter.RootType {
		return true
	}
	if conf == nil {
		conf = filter.ExactTypes{}
	}
	return conf.Conforms(e.Class(), f.Class)
}

// Filters implements Engine.
func (t *CountingTable) Filters() []*filter.Filter {
	out := make([]*filter.Filter, 0, len(t.byKey))
	for _, slot := range t.byKey {
		out = append(out, t.slots[slot].f)
	}
	return out
}

// Len implements Engine.
func (t *CountingTable) Len() int { return len(t.byKey) }
