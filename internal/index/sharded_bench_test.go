package index

import (
	"fmt"
	"testing"
)

// BenchmarkShardedMatch measures batched matching throughput against a
// 10k-subscription population across shard counts. shards=1 is the
// single-shard baseline the acceptance target compares against: with N
// cores the N-shard rows should approach N× the events/sec of the
// single-shard row (≥2x on 4+ cores). Per-subscriber results are
// identical for every row (TestShardedDeterministicMerge); only the
// wall-clock differs.
//
// Reproduce with:
//
//	go test -bench BenchmarkShardedMatch -benchtime 2s ./internal/index
func BenchmarkShardedMatch(b *testing.B) {
	const subs = 10_000
	const batch = 256
	filters, ids, evs := population(b, 3, subs, batch)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := NewSharded(nil, shards)
			for i, f := range filters {
				eng.Insert(f, ids[i])
			}
			b.ResetTimer()
			n := 0
			for b.Loop() {
				rs := eng.MatchBatch(evs)
				n += len(rs)
			}
			b.ReportMetric(float64(n*1e9)/float64(b.Elapsed().Nanoseconds()), "events/sec")
		})
	}
}

// BenchmarkShardedMatchSingle measures the per-event Match path (batch of
// one) for the overhead comparison with BenchmarkMatchingEngines.
func BenchmarkShardedMatchSingle(b *testing.B) {
	filters, ids, evs := population(b, 3, 10_000, 256)
	eng := NewSharded(nil, 0)
	for i, f := range filters {
		eng.Insert(f, ids[i])
	}
	b.ResetTimer()
	i := 0
	for b.Loop() {
		eng.Match(evs[i%len(evs)])
		i++
	}
}
