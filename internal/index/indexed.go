package index

import (
	"math"
	"sort"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// IndexedTable is the predicate-indexed counting engine (KindIndexed): it
// keeps the counting scheme of CountingTable — each filter occupies a
// slot with a satisfied-constraint counter, stamped scratch state, and
// tombstoned removal — but replaces the per-attribute linear scan lists
// with real per-operator index structures, so matching cost tracks the
// number of *satisfied* constraints for every predicate class the filter
// language offers, not just equality:
//
//   - OpEq: hash postings keyed by the normalized operand value (the
//     numeric family collapses to one key, so price = 5 matches both
//     Int(5) and Float(5) exactly like direct evaluation).
//   - OpLt/OpLe/OpGt/OpGe with numeric operands: per-operator sorted
//     threshold arrays. The constraints a numeric event value satisfies
//     form a binary-searchable prefix (Gt/Ge: thresholds below the
//     value) or suffix (Lt/Le: thresholds above it) of the sorted
//     operand array, so unsatisfied ordering constraints cost nothing.
//   - OpPrefix/OpSuffix: per-operand-length hash postings. A string of
//     length L has at most L+1 distinct prefixes, so the satisfied
//     prefix constraints are found with one O(1) lookup per operand
//     length present in the index (and symmetrically for suffixes),
//     without materializing any substring.
//   - OpExists/OpAny: per-attribute presence lists, bumped once for any
//     present value.
//   - OpContains, OpNe, and exotic residue (ordering over strings or
//     booleans, non-finite thresholds, mistyped pattern operands) stay
//     in a per-attribute scan list, which the indexed structures keep
//     small.
//
// Subscription churn is absorbed by a mutable delta buffer over the
// immutable sorted threshold cores: Insert appends to the delta (scanned
// linearly during Match while it is small) and merges it into the core
// when it crosses a fraction of the core size; Remove tombstones the
// slot and defers purging its threshold entries until enough garbage
// accumulates to amortize a rebuild. A tombstoned slot is recycled only
// after its last threshold entry is purged, so stale core entries can
// never bump a reused slot. Everything else (hash postings, presence and
// scan lists) is cleaned eagerly on removal, exactly like CountingTable.
//
// Like the other single-threaded engines, an IndexedTable is owned by
// one goroutine; wrap it in shards (Config{Kind: KindIndexed, Shards: N})
// for concurrent use.
type IndexedTable struct {
	conf  filter.Conformance
	slots []indexedSlot
	free  []int
	byKey map[string]int
	// byID is the reverse index id -> occupied slots, making RemoveID
	// (a disconnecting subscriber) O(filters of that id) instead of a
	// full-table walk.
	byID map[string]map[int]struct{}
	// attrs holds the per-attribute predicate indexes.
	attrs map[string]*predIndex
	// classOnly holds slots whose filters have zero attribute
	// constraints; they are candidates for every event.
	classOnly map[int]struct{}
	// oversize holds slots whose filters exceed the uint16 counting
	// range (need > 65535). Indexing such a filter would bump 64k+
	// postings per matching event — the same order of work as direct
	// evaluation — so these degenerate filters are evaluated directly.
	oversize map[int]struct{}

	// Match scratch. state packs each slot's round stamp, running count
	// and required count into 4 bytes, so crediting a constraint touches
	// exactly one word — at a million slots the state array dwarfs
	// L1/L2 and the random-access misses ARE the median match cost;
	// every byte shaved keeps more of it cache-resident. hits collects
	// slots whose count crossed need this round, so result collection
	// never walks (or re-misses) the slot table.
	state []slotState
	cur   uint16
	hits  []int

	// memo caches the last paired-attribute Lookup of the current Match
	// round: pair groups overwhelmingly share one partner attribute, so
	// one interface call serves them all.
	memoSet  bool
	memoOk   bool
	memoAttr string
	memoVal  event.Value

	// ordLive / ordDead track threshold entries referencing live and
	// tombstoned slots; their ratio triggers the amortized purge.
	ordLive int
	ordDead int

	// interned canonicalizes pair-partner attribute names so the memo
	// compare in the pairs walk short-circuits on pointer equality
	// instead of loading scattered string bytes.
	interned map[string]string
}

// slotState is the per-slot Match scratch: one 4-byte word per slot.
// A filter's satisfied-constraint credits can never exceed its need, so
// uint8 suffices for the counts; filters with more constraints than the
// packed range never enter the counting path (see IndexedTable.oversize).
type slotState struct {
	stamp uint16
	count uint8
	need  uint8
}

// maxIndexedNeed is the largest constraint count the packed counting
// state can track.
const maxIndexedNeed = 1<<8 - 1

type indexedSlot struct {
	f     *filter.Filter
	key   string
	need  int
	alive bool
	// ordRefs counts this slot's entries still present in threshold
	// cores and deltas; a tombstoned slot is recycled only at zero.
	ordRefs int
	ids     map[string]struct{}
}

// predIndex holds one attribute's per-operator structures. The eq
// postings are split by operand kind so the hot lookups use the
// specialized string/float64 map paths instead of hashing a whole
// event.Value struct: strings and numerics cover essentially all real
// equality constraints; booleans land in eqMisc.
type predIndex struct {
	eqStr   map[string]*postings
	eqNum   map[float64]*postings // finite numerics; -0 folded onto +0
	eqMisc  map[event.Value]*postings
	ord     [4]ordIndex // OpLt, OpLe, OpGt, OpGe in that order
	prefix  strIndex
	suffix  strIndex
	present postings
	scan    []scanEntry
	// seen stamps the Match round that already considered this
	// attribute: Lookup semantics say the first occurrence of a
	// duplicated attribute name wins, so later occurrences are skipped.
	seen uint16
}

// strIndex holds prefix (or suffix) postings as one map per operand
// length, ascending. A value of length L probes one map per length
// ≤ L — and because hierarchical namespaces put few distinct operands
// at the short lengths, those probes hit small, cache-hot maps instead
// of rescanning the big leaf-level map once per length.
type strIndex struct {
	lens []lenMap
}

// lenMap is one operand length's postings.
type lenMap struct {
	l int
	m map[string]*postings
}

// at returns (creating if asked) the postings map for operand length l.
func (si *strIndex) at(l int, create bool) map[string]*postings {
	i := sort.Search(len(si.lens), func(i int) bool { return si.lens[i].l >= l })
	if i < len(si.lens) && si.lens[i].l == l {
		return si.lens[i].m
	}
	if !create {
		return nil
	}
	si.lens = append(si.lens, lenMap{})
	copy(si.lens[i+1:], si.lens[i:])
	si.lens[i] = lenMap{l: l, m: make(map[string]*postings)}
	return si.lens[i].m
}

// dropLen removes an emptied length map.
func (si *strIndex) dropLen(l int) {
	i := sort.Search(len(si.lens), func(i int) bool { return si.lens[i].l >= l })
	if i < len(si.lens) && si.lens[i].l == l && len(si.lens[i].m) == 0 {
		si.lens = append(si.lens[:i], si.lens[i+1:]...)
	}
}

// postings is the payload behind one access predicate (one eq value, one
// prefix/suffix operand, or an attribute's presence): the slots bumped
// whenever the predicate is satisfied, plus paired threshold groups that
// bump their slots only when the partner ordering constraint also holds.
// pairs is a value slice: the groups behind a hot access predicate are
// walked on every hit, and embedding them saves a pointer chase (and its
// cache miss) per group.
type postings struct {
	scs   []slotCount
	pairs []pairGroup
}

// empty reports whether nothing hangs off this access predicate.
func (po *postings) empty() bool { return len(po.scs) == 0 && len(po.pairs) == 0 }

// pairGroup holds the paired two-constraint filters sharing one access
// predicate and one residual ordering constraint shape: filters of the
// form (access) && (battr <op> threshold). The thresholds live in the
// same core+delta ordIndex the global ordering indexes use, but are
// consulted only after the access predicate hit — so a subscription
// population dominated by selective-eq/prefix ∧ threshold conjunctions
// (the common alarm shape) costs zero bumps for filters whose access
// predicate the event misses, and zero for un-crossed thresholds too.
//
// The group is kept to 48 bytes: battr is interned (the pairs-walk memo
// compares it by pointer), lo/hi mirror the index's threshold bounds so
// the dominant nothing-crossed case is decided right here, and the
// ordIndex sits behind a pointer chased only when a bound says a
// threshold actually crossed.
type pairGroup struct {
	battr  string
	bop    int8 // ordSlot index: OpLt, OpLe, OpGt, OpGe
	lo, hi float64
	oi     *ordIndex
}

// ordIndex is one (attribute, ordering-operator) threshold index: an
// immutable sorted core plus a small sorted delta buffer absorbing
// churn. Both halves are binary-searchable; the delta folds into the
// core when it fills, so Match cost never degrades with insert volume.
type ordIndex struct {
	// lo/hi bound every threshold in core+delta (conservatively: stale
	// tombstoned extremes persist until a merge; merges recompute them
	// exactly). They lead the struct so the common no-threshold-crossed
	// probe is answered from the pairGroup's first cache line, without
	// touching the entry arrays at all — at large scale each array touch
	// is a cache miss, and most probes cross nothing.
	lo, hi float64
	core   ordCore
	delta  []ordEntry // sorted by threshold, capped at ordDeltaCap
}

// noteBound widens the bounds for a threshold about to be inserted.
func (oi *ordIndex) noteBound(v float64) {
	if oi.core.size()+len(oi.delta) == 0 {
		oi.lo, oi.hi = v, v
		return
	}
	if v < oi.lo {
		oi.lo = v
	}
	if v > oi.hi {
		oi.hi = v
	}
}

// ordCore stores the merged threshold entries grouped by distinct
// threshold: cuts holds the sorted unique thresholds, entries the
// postings ordered by threshold, and starts[i] the offset of cut i's
// group (starts has len(cuts)+1 entries). Real populations repeat
// operands heavily (alarm levels, price points), so cuts is usually
// orders of magnitude smaller than entries — the binary search touches
// a few hot cache lines instead of log2(entries) cold ones, and the
// satisfied range is one contiguous entries slice.
type ordCore struct {
	cuts    []float64
	starts  []int32
	entries []slotCount
}

// size reports the number of threshold entries in the core.
func (c *ordCore) size() int { return len(c.entries) }

// rangeGE returns the entries whose threshold is >= v.
func (c *ordCore) rangeGE(v float64) []slotCount {
	if len(c.entries) == 0 {
		return nil
	}
	i := sort.SearchFloat64s(c.cuts, v)
	return c.entries[c.starts[i]:]
}

// rangeGT returns the entries whose threshold is > v.
func (c *ordCore) rangeGT(v float64) []slotCount {
	if len(c.entries) == 0 {
		return nil
	}
	i := searchFloatGT(c.cuts, v)
	return c.entries[c.starts[i]:]
}

// rangeLE returns the entries whose threshold is <= v.
func (c *ordCore) rangeLE(v float64) []slotCount {
	if len(c.entries) == 0 {
		return nil
	}
	i := searchFloatGT(c.cuts, v)
	return c.entries[:c.starts[i]]
}

// rangeLT returns the entries whose threshold is < v.
func (c *ordCore) rangeLT(v float64) []slotCount {
	if len(c.entries) == 0 {
		return nil
	}
	i := sort.SearchFloat64s(c.cuts, v)
	return c.entries[:c.starts[i]]
}

// searchFloatGT returns the first index with cuts[i] > v.
func searchFloatGT(cuts []float64, v float64) int {
	return sort.Search(len(cuts), func(i int) bool { return cuts[i] > v })
}

// ordDeltaCap bounds the delta buffer. Inserting into the sorted delta
// shifts at most this many entries, and merging it into the core every
// ordDeltaCap inserts amortizes the rebuild to O(core/ordDeltaCap)
// entries moved per insert.
const ordDeltaCap = 512

// insertSorted places e into its sorted position.
func insertSorted(arr []ordEntry, e ordEntry) []ordEntry {
	i := sort.Search(len(arr), func(i int) bool { return arr[i].t > e.t })
	arr = append(arr, ordEntry{})
	copy(arr[i+1:], arr[i:])
	arr[i] = e
	return arr
}

type ordEntry struct {
	t    float64
	slot int32
	n    int32
}

type scanEntry struct {
	c    filter.Constraint
	slot int
	n    int
}

var _ Engine = (*IndexedTable)(nil)

// ordSlot maps an ordering operator to its ordIndex position, or -1.
func ordSlot(op filter.Op) int {
	switch op {
	case filter.OpLt:
		return 0
	case filter.OpLe:
		return 1
	case filter.OpGt:
		return 2
	case filter.OpGe:
		return 3
	default:
		return -1
	}
}

// NewIndexedTable returns an empty predicate-indexed table using conf
// for class conformance (nil means exact type matching).
func NewIndexedTable(conf filter.Conformance) *IndexedTable {
	return &IndexedTable{
		conf:      conf,
		byKey:     make(map[string]int),
		byID:      make(map[string]map[int]struct{}),
		attrs:     make(map[string]*predIndex),
		classOnly: make(map[int]struct{}),
		oversize:  make(map[int]struct{}),
		interned:  make(map[string]string),
	}
}

// intern returns the canonical copy of s.
func (t *IndexedTable) intern(s string) string {
	if v, ok := t.interned[s]; ok {
		return v
	}
	t.interned[s] = s
	return s
}

func (t *IndexedTable) attrIndexFor(name string) *predIndex {
	p, ok := t.attrs[name]
	if !ok {
		p = &predIndex{
			eqStr:  make(map[string]*postings),
			eqNum:  make(map[float64]*postings),
			eqMisc: make(map[event.Value]*postings),
		}
		t.attrs[name] = p
	}
	return p
}

// eqPostings returns (creating if asked) the postings behind one eq
// operand value, routed to the kind-specialized map. Callers guarantee
// the operand is hashable (hashableEq): numerics are finite.
func (p *predIndex) eqPostings(k event.Value, create bool) *postings {
	var po *postings
	switch {
	case k.Kind() == event.KindString:
		po = p.eqStr[k.Str()]
		if po == nil && create {
			po = &postings{}
			p.eqStr[k.Str()] = po
		}
	case k.IsNumeric():
		f := k.Num()
		if f == 0 {
			f = 0 // collapse -0 onto +0; they compare equal
		}
		po = p.eqNum[f]
		if po == nil && create {
			po = &postings{}
			p.eqNum[f] = po
		}
	default:
		po = p.eqMisc[k]
		if po == nil && create {
			po = &postings{}
			p.eqMisc[k] = po
		}
	}
	return po
}

// dropEqPostings removes an emptied eq operand entry.
func (p *predIndex) dropEqPostings(k event.Value) {
	switch {
	case k.Kind() == event.KindString:
		delete(p.eqStr, k.Str())
	case k.IsNumeric():
		f := k.Num()
		if f == 0 {
			f = 0
		}
		delete(p.eqNum, f)
	default:
		delete(p.eqMisc, k)
	}
}

// strPostings returns (creating if asked) the postings behind one
// prefix/suffix operand.
func strPostings(si *strIndex, op string, create bool) *postings {
	m := si.at(len(op), create)
	if m == nil {
		return nil
	}
	po := m[op]
	if po == nil && create {
		po = &postings{}
		m[op] = po
	}
	return po
}

// dropStrPostings removes an emptied operand entry and, when it was the
// last of its length, the length map.
func dropStrPostings(si *strIndex, op string) {
	if m := si.at(len(op), false); m != nil {
		delete(m, op)
		if len(m) == 0 {
			si.dropLen(len(op))
		}
	}
}

// indexable classifies a constraint: true selects a dedicated structure,
// false the scan residue.
func indexable(c filter.Constraint) bool {
	switch c.Op {
	case filter.OpExists, filter.OpAny:
		return true
	case filter.OpEq:
		// A NaN operand equals nothing (Compare: incomparable), but a
		// NaN hash key would wrongly match NaN event values; scan it.
		return !(c.Operand.IsNumeric() && math.IsNaN(c.Operand.Num()))
	case filter.OpLt, filter.OpLe, filter.OpGt, filter.OpGe:
		// Only finite numeric thresholds sort; string/bool ordering and
		// NaN operands keep their exact Compare semantics in the scan
		// list.
		return c.Operand.IsNumeric() && !math.IsNaN(c.Operand.Num())
	case filter.OpPrefix, filter.OpSuffix:
		return c.Operand.Kind() == event.KindString
	default:
		return false
	}
}

// Insert implements Engine.
func (t *IndexedTable) Insert(f *filter.Filter, id string) {
	key := f.Key()
	if slot, ok := t.byKey[key]; ok {
		t.slots[slot].ids[id] = struct{}{}
		t.linkID(id, slot)
		return
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = len(t.slots)
		t.slots = append(t.slots, indexedSlot{})
		t.state = append(t.state, slotState{})
	}
	s := &t.slots[slot]
	*s = indexedSlot{
		f:     f.Clone(),
		key:   key,
		need:  len(f.Constraints),
		alive: true,
		ids:   map[string]struct{}{id: {}},
	}
	t.byKey[key] = slot
	t.linkID(id, slot)
	if s.need == 0 {
		t.classOnly[slot] = struct{}{}
	}
	if s.need > maxIndexedNeed {
		// Beyond the packed counting range: evaluate directly instead of
		// bumping tens of thousands of postings per matching event.
		t.oversize[slot] = struct{}{}
		t.state[slot] = slotState{}
		return
	}
	t.state[slot] = slotState{need: uint8(s.need)}
	// Aggregate duplicate constraints within the filter first (so a
	// posting carries its multiplicity in one entry), then route each
	// group to its operator structure. This keeps Insert O(constraints)
	// instead of rescanning hot postings for duplicates.
	groups := aggregateConstraints(s.f.Constraints)
	if acc, res, ok := classifyPair(groups); ok {
		t.insertPair(slot, acc, res)
		return
	}
	for _, g := range groups {
		p := t.attrIndexFor(g.c.Attr)
		c := g.c
		switch {
		case indexable(c) && c.Op == filter.OpEq:
			po := p.eqPostings(c.Operand, true)
			po.scs = append(po.scs, slotCount{slot: int32(slot), n: int32(g.n)})
		case c.Op == filter.OpExists || c.Op == filter.OpAny:
			p.present.scs = append(p.present.scs, slotCount{slot: int32(slot), n: int32(g.n)})
		case indexable(c) && ordSlot(c.Op) >= 0:
			oi := &p.ord[ordSlot(c.Op)]
			oi.noteBound(c.Operand.Num())
			oi.delta = insertSorted(oi.delta, ordEntry{t: c.Operand.Num(), slot: int32(slot), n: int32(g.n)})
			s.ordRefs++
			t.ordLive++
			if len(oi.delta) >= ordDeltaCap {
				t.mergeOrd(oi)
			}
		case indexable(c) && c.Op == filter.OpPrefix:
			po := strPostings(&p.prefix, c.Operand.Str(), true)
			po.scs = append(po.scs, slotCount{slot: int32(slot), n: int32(g.n)})
		case indexable(c) && c.Op == filter.OpSuffix:
			po := strPostings(&p.suffix, c.Operand.Str(), true)
			po.scs = append(po.scs, slotCount{slot: int32(slot), n: int32(g.n)})
		default:
			p.scan = append(p.scan, scanEntry{c: c, slot: slot, n: g.n})
		}
	}
}

// accessGroup reports whether g can serve as the access predicate of a
// paired filter: a hash-, presence- or pattern-indexable constraint that
// gates consulting the partner threshold.
func accessGroup(g constraintGroup) bool {
	switch g.c.Op {
	case filter.OpEq:
		return hashableEq(g.c)
	case filter.OpPrefix, filter.OpSuffix:
		return g.c.Operand.Kind() == event.KindString
	case filter.OpExists, filter.OpAny:
		return true
	}
	return false
}

// classifyPair detects the paired two-constraint conjunction shape — one
// access predicate plus one indexable ordering constraint — which
// dominates realistic alarm populations. Paired filters bypass the
// global per-operator structures entirely: their threshold lives behind
// the access posting, so events that miss the access predicate (the
// overwhelming majority, for selective predicates) never touch the
// filter's slot at all.
func classifyPair(groups []constraintGroup) (acc, res constraintGroup, ok bool) {
	if len(groups) != 2 {
		return acc, res, false
	}
	for i := 0; i < 2; i++ {
		a, r := groups[i], groups[1-i]
		if accessGroup(a) && ordSlot(r.c.Op) >= 0 && indexable(r.c) {
			return a, r, true
		}
	}
	return acc, res, false
}

// insertPair indexes a paired filter: one threshold entry under the
// access predicate's pair group, crediting the filter's full need when
// both halves hold.
func (t *IndexedTable) insertPair(slot int, acc, res constraintGroup) {
	p := t.attrIndexFor(acc.c.Attr)
	var po *postings
	switch acc.c.Op {
	case filter.OpEq:
		po = p.eqPostings(acc.c.Operand, true)
	case filter.OpPrefix:
		po = strPostings(&p.prefix, acc.c.Operand.Str(), true)
	case filter.OpSuffix:
		po = strPostings(&p.suffix, acc.c.Operand.Str(), true)
	default: // OpExists, OpAny
		po = &p.present
	}
	bop := int8(ordSlot(res.c.Op))
	gi := -1
	for i := range po.pairs {
		if po.pairs[i].battr == res.c.Attr && po.pairs[i].bop == bop {
			gi = i
			break
		}
	}
	if gi < 0 {
		po.pairs = append(po.pairs, pairGroup{battr: t.intern(res.c.Attr), bop: bop, oi: &ordIndex{}})
		gi = len(po.pairs) - 1
	}
	g := &po.pairs[gi]
	s := &t.slots[slot]
	th := res.c.Operand.Num()
	if g.oi.core.size()+len(g.oi.delta) == 0 {
		g.lo, g.hi = th, th
	} else {
		if th < g.lo {
			g.lo = th
		}
		if th > g.hi {
			g.hi = th
		}
	}
	g.oi.noteBound(th)
	g.oi.delta = insertSorted(g.oi.delta, ordEntry{t: th, slot: int32(slot), n: int32(acc.n + res.n)})
	s.ordRefs++
	t.ordLive++
	if len(g.oi.delta) >= ordDeltaCap {
		t.mergeOrd(g.oi)
	}
}

type constraintGroup struct {
	c filter.Constraint
	n int
}

// aggregateConstraints groups a filter's constraints by (attr, op,
// operand identity), summing multiplicities. Filters are small, so the
// quadratic dedup is cheaper than hashing.
func aggregateConstraints(cs []filter.Constraint) []constraintGroup {
	groups := make([]constraintGroup, 0, len(cs))
outer:
	for _, c := range cs {
		for i := range groups {
			g := &groups[i]
			if g.c.Attr == c.Attr && g.c.Op == c.Op &&
				(!c.Op.NeedsOperand() || (g.c.Operand.Kind() == c.Operand.Kind() && g.c.Operand.Equal(c.Operand))) {
				g.n++
				continue outer
			}
		}
		groups = append(groups, constraintGroup{c: c, n: 1})
	}
	return groups
}

// linkID records id -> slot in the reverse index.
func (t *IndexedTable) linkID(id string, slot int) {
	set, ok := t.byID[id]
	if !ok {
		set = make(map[int]struct{})
		t.byID[id] = set
	}
	set[slot] = struct{}{}
}

// unlinkID removes id -> slot from the reverse index.
func (t *IndexedTable) unlinkID(id string, slot int) {
	if set, ok := t.byID[id]; ok {
		delete(set, slot)
		if len(set) == 0 {
			delete(t.byID, id)
		}
	}
}

// Remove implements Engine.
func (t *IndexedTable) Remove(f *filter.Filter, id string) {
	slot, ok := t.byKey[f.Key()]
	if !ok {
		return
	}
	s := &t.slots[slot]
	if _, ok := s.ids[id]; !ok {
		return
	}
	delete(s.ids, id)
	t.unlinkID(id, slot)
	if len(s.ids) == 0 {
		t.dropSlot(slot)
	}
}

// RemoveID implements Engine in O(filters held by id) via the reverse
// index.
func (t *IndexedTable) RemoveID(id string) {
	set := t.byID[id]
	if len(set) == 0 {
		delete(t.byID, id)
		return
	}
	delete(t.byID, id)
	for slot := range set {
		s := &t.slots[slot]
		delete(s.ids, id)
		if len(s.ids) == 0 {
			t.dropSlot(slot)
		}
	}
}

// dropSlot tombstones a slot: hash postings, presence and scan lists are
// cleaned eagerly; threshold entries are left for the amortized purge,
// and the slot is recycled once none remain.
func (t *IndexedTable) dropSlot(slot int) {
	s := &t.slots[slot]
	s.alive = false
	delete(t.byKey, s.key)
	delete(t.classOnly, slot)
	if _, ok := t.oversize[slot]; ok {
		// Nothing was indexed for an oversize filter.
		delete(t.oversize, slot)
		t.recycle(slot)
		return
	}
	groups := aggregateConstraints(s.f.Constraints)
	if _, _, ok := classifyPair(groups); ok {
		// The paired threshold entry is deferred garbage like any other
		// threshold entry: accounted here, swept by the amortized purge.
		t.ordLive--
		t.ordDead++
		groups = nil
	}
	for _, g := range groups {
		p := t.attrs[g.c.Attr]
		if p == nil {
			continue
		}
		c := g.c
		switch {
		case indexable(c) && c.Op == filter.OpEq:
			if po := p.eqPostings(c.Operand, false); po != nil {
				po.scs = dropSlotCount(po.scs, slot)
				if po.empty() {
					p.dropEqPostings(c.Operand)
				}
			}
		case c.Op == filter.OpExists || c.Op == filter.OpAny:
			p.present.scs = dropSlotCount(p.present.scs, slot)
		case indexable(c) && ordSlot(c.Op) >= 0:
			// Deferred: accounted as garbage, purged in bulk.
			t.ordLive--
			t.ordDead++
		case indexable(c) && c.Op == filter.OpPrefix:
			op := c.Operand.Str()
			if po := strPostings(&p.prefix, op, false); po != nil {
				po.scs = dropSlotCount(po.scs, slot)
				if po.empty() {
					dropStrPostings(&p.prefix, op)
				}
			}
		case indexable(c) && c.Op == filter.OpSuffix:
			op := c.Operand.Str()
			if po := strPostings(&p.suffix, op, false); po != nil {
				po.scs = dropSlotCount(po.scs, slot)
				if po.empty() {
					dropStrPostings(&p.suffix, op)
				}
			}
		default:
			for i := 0; i < len(p.scan); i++ {
				if p.scan[i].slot == slot {
					p.scan[i] = p.scan[len(p.scan)-1]
					p.scan = p.scan[:len(p.scan)-1]
					i--
				}
			}
		}
	}
	if s.ordRefs == 0 {
		t.recycle(slot)
	} else if t.ordDead >= 64 && t.ordDead*4 >= t.ordLive {
		t.purgeOrd()
	}
}

// recycle returns a fully-unreferenced tombstoned slot to the free list.
func (t *IndexedTable) recycle(slot int) {
	t.slots[slot] = indexedSlot{}
	t.free = append(t.free, slot)
}

// mergeOrd folds an index's delta buffer into its grouped core (both
// halves are already sorted, so this is a linear merge), dropping
// entries of tombstoned slots on the way and regrouping the survivors
// by distinct threshold.
func (t *IndexedTable) mergeOrd(oi *ordIndex) {
	old := oi.core
	core := ordCore{
		cuts:    make([]float64, 0, len(old.cuts)+len(oi.delta)),
		starts:  make([]int32, 1, len(old.cuts)+len(oi.delta)+1),
		entries: make([]slotCount, 0, old.size()+len(oi.delta)),
	}
	appendLive := func(th float64, sc slotCount) {
		if !t.slots[sc.slot].alive {
			t.releaseOrdRef(int(sc.slot))
			return
		}
		if n := len(core.cuts); n == 0 || core.cuts[n-1] != th {
			core.cuts = append(core.cuts, th)
			core.starts = append(core.starts, 0)
		}
		core.entries = append(core.entries, sc)
		core.starts[len(core.starts)-1] = int32(len(core.entries))
	}
	ci, ei, di := 0, 0, 0 // old cut, old entry, delta indexes
	for ei < len(old.entries) && di < len(oi.delta) {
		for int32(ei) >= old.starts[ci+1] {
			ci++
		}
		if d := oi.delta[di]; old.cuts[ci] <= d.t {
			appendLive(old.cuts[ci], old.entries[ei])
			ei++
		} else {
			appendLive(d.t, slotCount{slot: d.slot, n: d.n})
			di++
		}
	}
	for ; ei < len(old.entries); ei++ {
		for int32(ei) >= old.starts[ci+1] {
			ci++
		}
		appendLive(old.cuts[ci], old.entries[ei])
	}
	for ; di < len(oi.delta); di++ {
		d := oi.delta[di]
		appendLive(d.t, slotCount{slot: d.slot, n: d.n})
	}
	oi.core = core
	oi.delta = nil
	// The merge dropped tombstoned extremes: recompute exact bounds.
	if n := len(core.cuts); n > 0 {
		oi.lo, oi.hi = core.cuts[0], core.cuts[n-1]
	} else {
		oi.lo, oi.hi = 0, 0
	}
}

// purgeOrd sweeps every threshold index — global per-operator and
// paired — dropping entries of tombstoned slots and recycling slots
// whose last entry disappears. Access predicates left with neither
// postings nor pairs are removed along the way.
func (t *IndexedTable) purgeOrd() {
	for _, p := range t.attrs {
		for i := range p.ord {
			oi := &p.ord[i]
			if oi.core.size()+len(oi.delta) > 0 {
				t.mergeOrd(oi)
			}
		}
		t.purgePairs(&p.present)
		for k, po := range p.eqStr {
			t.purgePairs(po)
			if po.empty() {
				delete(p.eqStr, k)
			}
		}
		for k, po := range p.eqNum {
			t.purgePairs(po)
			if po.empty() {
				delete(p.eqNum, k)
			}
		}
		for k, po := range p.eqMisc {
			t.purgePairs(po)
			if po.empty() {
				delete(p.eqMisc, k)
			}
		}
		t.purgeStrIndex(&p.prefix)
		t.purgeStrIndex(&p.suffix)
	}
}

// purgeStrIndex purges the pairs behind every prefix/suffix operand,
// dropping emptied operands and length maps.
func (t *IndexedTable) purgeStrIndex(si *strIndex) {
	kept := si.lens[:0]
	for _, lm := range si.lens {
		for op, po := range lm.m {
			t.purgePairs(po)
			if po.empty() {
				delete(lm.m, op)
			}
		}
		if len(lm.m) > 0 {
			kept = append(kept, lm)
		}
	}
	si.lens = kept
}

// purgePairs merges every paired threshold group behind one access
// predicate and discards groups that end up empty.
func (t *IndexedTable) purgePairs(po *postings) {
	if len(po.pairs) == 0 {
		return
	}
	kept := po.pairs[:0]
	for i := range po.pairs {
		g := &po.pairs[i]
		if g.oi.core.size()+len(g.oi.delta) > 0 {
			t.mergeOrd(g.oi)
		}
		if g.oi.core.size()+len(g.oi.delta) > 0 {
			// The merge recomputed the index's exact bounds; refresh the
			// mirrored copies the pairs walk reads.
			g.lo, g.hi = g.oi.lo, g.oi.hi
			kept = append(kept, *g)
		}
	}
	if len(kept) == 0 {
		po.pairs = nil
	} else {
		po.pairs = kept
	}
}

// releaseOrdRef drops one threshold-entry reference of a tombstoned
// slot, recycling the slot when the last reference disappears.
func (t *IndexedTable) releaseOrdRef(slot int) {
	t.ordDead--
	s := &t.slots[slot]
	if s.ordRefs--; s.ordRefs == 0 {
		t.recycle(slot)
	}
}

// dropSlotCount removes a slot's entry from a posting list in place.
func dropSlotCount(scs []slotCount, slot int) []slotCount {
	for i := range scs {
		if scs[i].slot == int32(slot) {
			scs[i] = scs[len(scs)-1]
			return scs[:len(scs)-1]
		}
	}
	return scs
}

// bump credits n satisfied constraints to a slot. All per-slot scratch
// lives in one 4-byte slotState, so a bump costs a single (usually
// cache-missing) memory touch; the moment the count crosses the filter's
// need the slot is recorded as a hit, so no second pass over touched
// slots is necessary.
func (t *IndexedTable) bump(slot, n int) {
	st := &t.state[slot]
	if st.stamp != t.cur {
		st.stamp = t.cur
		st.count = 0
	}
	prev := st.count
	st.count += uint8(n)
	if st.need > 0 && st.count >= st.need && prev < st.need {
		t.hits = append(t.hits, slot)
	}
}

func (t *IndexedTable) bumpAll(scs []slotCount) {
	for _, sc := range scs {
		t.bump(int(sc.slot), int(sc.n))
	}
}

// bumpDeltaAbove credits delta entries whose threshold is above v
// (strictly, or inclusively with incl), walking back from the top of
// the sorted buffer: the walk costs O(satisfied entries + 1), never
// O(buffer), because it stops at the first unsatisfied threshold.
func (t *IndexedTable) bumpDeltaAbove(arr []ordEntry, v float64, incl bool) {
	for i := len(arr) - 1; i >= 0; i-- {
		if e := &arr[i]; e.t > v || (incl && e.t == v) {
			t.bump(int(e.slot), int(e.n))
		} else {
			return
		}
	}
}

// bumpDeltaBelow is the mirror walk from the bottom of the buffer.
func (t *IndexedTable) bumpDeltaBelow(arr []ordEntry, v float64, incl bool) {
	for i := range arr {
		if e := &arr[i]; e.t < v || (incl && e.t == v) {
			t.bump(int(e.slot), int(e.n))
		} else {
			return
		}
	}
}

// bumpOrdOp credits one ordering operator's satisfied thresholds in one
// core+delta index: a binary-searched prefix or suffix of the grouped
// core plus the sorted delta, so unsatisfied thresholds are never
// visited. The core search runs over the distinct-threshold array,
// which real populations keep tiny (operands repeat), so it stays
// within a few hot cache lines even when the entries number in the
// millions.
// The lo/hi pre-checks reject the (dominant) case where no threshold is
// crossed without touching the entry arrays — for a paired alarm group
// that turns the whole probe into two inline float compares.
func (t *IndexedTable) bumpOrdOp(oi *ordIndex, bop int8, v float64) {
	switch bop {
	case 0: // OpLt: v < threshold — the strict suffix of each sorted half.
		if oi.hi <= v {
			return
		}
		t.bumpAll(oi.core.rangeGT(v))
		t.bumpDeltaAbove(oi.delta, v, false)
	case 1: // OpLe: v <= threshold — suffix.
		if oi.hi < v {
			return
		}
		t.bumpAll(oi.core.rangeGE(v))
		t.bumpDeltaAbove(oi.delta, v, true)
	case 2: // OpGt: v > threshold — strict prefix.
		if oi.lo >= v {
			return
		}
		t.bumpAll(oi.core.rangeLT(v))
		t.bumpDeltaBelow(oi.delta, v, false)
	case 3: // OpGe: v >= threshold — prefix.
		if oi.lo > v {
			return
		}
		t.bumpAll(oi.core.rangeLE(v))
		t.bumpDeltaBelow(oi.delta, v, true)
	}
}

// matchOrd credits the global (unpaired) ordering constraints a numeric
// value satisfies.
func (t *IndexedTable) matchOrd(p *predIndex, v float64) {
	if math.IsNaN(v) {
		// NaN is incomparable: no ordering constraint is satisfied.
		return
	}
	for i := range p.ord {
		if oi := &p.ord[i]; oi.core.size()+len(oi.delta) > 0 {
			t.bumpOrdOp(oi, int8(i), v)
		}
	}
}

// bumpPostings credits an access-predicate hit: the unconditional
// postings, plus any paired threshold group whose partner ordering
// constraint the event also satisfies. Consecutive groups usually share
// one partner attribute, so its Lookup is memoized for the round.
func (t *IndexedTable) bumpPostings(e event.View, po *postings) {
	t.bumpAll(po.scs)
	for i := range po.pairs {
		g := &po.pairs[i]
		if !t.memoSet || t.memoAttr != g.battr {
			t.memoVal, t.memoOk = e.Lookup(g.battr)
			t.memoAttr, t.memoSet = g.battr, true
		}
		if !t.memoOk || !t.memoVal.IsNumeric() {
			continue
		}
		v := t.memoVal.Num()
		if math.IsNaN(v) {
			continue
		}
		// Mirrored bounds decide the dominant nothing-crossed case from
		// the group itself, without chasing the ordIndex pointer.
		switch g.bop {
		case 0:
			if g.hi <= v {
				continue
			}
		case 1:
			if g.hi < v {
				continue
			}
		case 2:
			if g.lo >= v {
				continue
			}
		case 3:
			if g.lo > v {
				continue
			}
		}
		t.bumpOrdOp(g.oi, g.bop, v)
	}
}

// consider credits every constraint on one attribute that the value
// satisfies.
func (t *IndexedTable) consider(e event.View, v event.Value, p *predIndex) {
	switch {
	case v.Kind() == event.KindString:
		if len(p.eqStr) > 0 {
			if po := p.eqStr[v.Str()]; po != nil {
				t.bumpPostings(e, po)
			}
		}
	case v.IsNumeric():
		if len(p.eqNum) > 0 {
			f := v.Num()
			if f == 0 {
				f = 0 // collapse -0 onto +0; they compare equal
			}
			// A NaN f misses every key here, which is exactly right.
			if po := p.eqNum[f]; po != nil {
				t.bumpPostings(e, po)
			}
		}
	default:
		if len(p.eqMisc) > 0 {
			if po := p.eqMisc[v]; po != nil {
				t.bumpPostings(e, po)
			}
		}
	}
	if !p.present.empty() {
		t.bumpPostings(e, &p.present)
	}
	if v.IsNumeric() {
		t.matchOrd(p, v.Num())
	}
	if v.Kind() == event.KindString {
		s := v.Str()
		for _, lm := range p.prefix.lens {
			if lm.l > len(s) {
				break // ascending: no longer operand can prefix s
			}
			if po := lm.m[s[:lm.l]]; po != nil {
				t.bumpPostings(e, po)
			}
		}
		for _, lm := range p.suffix.lens {
			if lm.l > len(s) {
				break
			}
			if po := lm.m[s[len(s)-lm.l:]]; po != nil {
				t.bumpPostings(e, po)
			}
		}
	}
	for _, se := range p.scan {
		if se.c.MatchesValue(v) {
			t.bump(se.slot, se.n)
		}
	}
}

// Match implements Engine: satisfied constraints are counted through the
// per-operator indexes; slots reaching their needed count are collected
// as they cross it — the full slot table is never walked.
func (t *IndexedTable) Match(e event.View) ([]string, int) {
	t.cur++
	if t.cur == 0 {
		// Stamp wrap (once per 2^16 matches): invalidate all stale stamps.
		// Amortized this is a fraction of a nanosecond per slot per match.
		for i := range t.state {
			t.state[i].stamp = 0
		}
		for _, p := range t.attrs {
			p.seen = 0
		}
		t.cur = 1
	}
	t.hits = t.hits[:0]
	t.memoSet = false
	// The synthetic class attribute can also carry constraints when a
	// filter tests it as a plain string attribute; Lookup resolves it
	// before any explicit attribute of the same name, so it goes first.
	if p, ok := t.attrs[event.TypeAttr]; ok {
		p.seen = t.cur
		t.consider(e, event.String(e.Class()), p)
	}
	for i, n := 0, e.NumAttrs(); i < n; i++ {
		name, v := e.AttrAt(i)
		if p, ok := t.attrs[name]; ok && p.seen != t.cur {
			p.seen = t.cur
			t.consider(e, v, p)
		}
	}
	var ids []string
	matched := 0
	collect := func(slot int) {
		s := &t.slots[slot]
		if !s.alive || !classOK(s.f, e, t.conf) {
			return
		}
		matched++
		for id := range s.ids {
			ids = append(ids, id)
		}
	}
	for _, slot := range t.hits {
		collect(slot)
	}
	for slot := range t.classOnly {
		collect(slot)
	}
	// Oversize filters (need beyond the packed counting range) are
	// evaluated directly; there are none in realistic populations.
	for slot := range t.oversize {
		s := &t.slots[slot]
		if s.alive && s.f.Matches(e, t.conf) {
			matched++
			for id := range s.ids {
				ids = append(ids, id)
			}
		}
	}
	return dedupSorted(ids), matched
}

// Filters implements Engine.
func (t *IndexedTable) Filters() []*filter.Filter {
	out := make([]*filter.Filter, 0, len(t.byKey))
	for _, slot := range t.byKey {
		out = append(out, t.slots[slot].f)
	}
	return out
}

// Len implements Engine.
func (t *IndexedTable) Len() int { return len(t.byKey) }
