package index

import (
	"fmt"
	"math"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// FuzzEngineEquivalence drives all four engine kinds with the same
// byte-derived script of inserts, removes, whole-ID removes and match
// probes; every probe must yield identical ID sets, and the naive result
// must agree with direct filter evaluation. The script bytes decode to a
// small op stream, so the fuzzer can reach delta merges, tombstone
// purges, NaN values and prefix/suffix collisions.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x90, 0x17, 0x30, 0x88, 0x21, 0xfe, 0x05})
	f.Add([]byte("insert-remove-match-churn-seed"))
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0x80, 0x7f, 0x33, 0xcc, 0x55, 0xaa, 0x12, 0x34})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := fuzzScript{data: data}
		naive := NewNaiveTable(nil)
		others := map[string]Engine{
			"counting": NewCountingTable(nil),
			"indexed":  NewIndexedTable(nil),
			"sharded":  NewSharded(nil, 2),
		}
		type assoc struct {
			f  *filter.Filter
			id string
		}
		var live []assoc
		for step := 0; !fz.done() && step < 200; step++ {
			switch fz.byte() % 8 {
			case 0, 1, 2, 3:
				flt := fz.filter()
				id := fmt.Sprintf("id%d", fz.byte()%8)
				naive.Insert(flt, id)
				for _, eng := range others {
					eng.Insert(flt, id)
				}
				live = append(live, assoc{flt, id})
			case 4:
				if len(live) == 0 {
					continue
				}
				i := int(fz.byte()) % len(live)
				naive.Remove(live[i].f, live[i].id)
				for _, eng := range others {
					eng.Remove(live[i].f, live[i].id)
				}
				live = append(live[:i], live[i+1:]...)
			case 5:
				id := fmt.Sprintf("id%d", fz.byte()%8)
				naive.RemoveID(id)
				for _, eng := range others {
					eng.RemoveID(id)
				}
				kept := live[:0]
				for _, a := range live {
					if a.id != id {
						kept = append(kept, a)
					}
				}
				live = kept
			default:
				e := fz.event()
				nids, nm := naive.Match(e)
				want := 0
				for _, ff := range naive.Filters() {
					if ff.Matches(e, nil) {
						want++
					}
				}
				if nm != want {
					t.Fatalf("step %d: naive matched=%d, direct evaluation=%d on %s", step, nm, want, e)
				}
				for name, eng := range others {
					ids, _ := eng.Match(e)
					if fmt.Sprint(ids) != fmt.Sprint(nids) {
						t.Fatalf("step %d: %s diverges on %s:\n naive %v\n %s %v",
							step, name, e, nids, name, ids)
					}
					if eng.Len() != naive.Len() {
						t.Fatalf("step %d: Len diverged naive=%d %s=%d", step, naive.Len(), name, eng.Len())
					}
				}
			}
		}
	})
}

// fuzzScript decodes fuzz bytes into filters, events and choices.
type fuzzScript struct {
	data []byte
	pos  int
}

func (f *fuzzScript) done() bool { return f.pos >= len(f.data) }

func (f *fuzzScript) byte() byte {
	if f.done() {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

// value derives an event value; a few byte codes map to adversarial
// numerics (NaN, ±0, infinities), the rest to small ints and strings.
func (f *fuzzScript) value() event.Value {
	b := f.byte()
	switch b {
	case 0xff:
		return event.Float(math.NaN())
	case 0xfe:
		return event.Float(math.Copysign(0, -1))
	case 0xfd:
		return event.Float(math.Inf(1))
	case 0xfc:
		return event.Float(math.Inf(-1))
	case 0xfb:
		return event.Bool(f.byte()%2 == 0)
	}
	if b%2 == 0 {
		return event.Int(int64(b % 16))
	}
	return event.String(f.str())
}

// str derives a short string over a 3-letter alphabet (length 0-3), so
// prefix/suffix/contains hits and misses are both common.
func (f *fuzzScript) str() string {
	n := int(f.byte() % 4)
	s := make([]byte, n)
	for i := range s {
		s[i] = 'a' + f.byte()%3
	}
	return string(s)
}

var fuzzOps = []filter.Op{
	filter.OpEq, filter.OpNe, filter.OpLt, filter.OpLe, filter.OpGt,
	filter.OpGe, filter.OpPrefix, filter.OpSuffix, filter.OpContains,
	filter.OpExists, filter.OpAny,
}

func (f *fuzzScript) filter() *filter.Filter {
	flt := &filter.Filter{}
	if f.byte()%2 == 0 {
		flt.Class = string(rune('A' + f.byte()%2))
	}
	for range 1 + f.byte()%3 {
		op := fuzzOps[int(f.byte())%len(fuzzOps)]
		c := filter.Constraint{
			Attr: string(rune('w' + f.byte()%4)),
			Op:   op,
		}
		if op.NeedsOperand() {
			c.Operand = f.value()
		}
		flt.Constraints = append(flt.Constraints, c)
	}
	return flt
}

func (f *fuzzScript) event() *event.Event {
	b := event.NewBuilder(string(rune('A' + f.byte()%3)))
	for range f.byte() % 4 {
		b.Val(string(rune('w'+f.byte()%4)), f.value())
	}
	return b.Build()
}
