package index

import (
	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// NaiveTable is the filtering and forwarding table of Figure 6: a list of
// <filter, id-list> entries, each event evaluated against every filter.
type NaiveTable struct {
	conf    filter.Conformance
	entries []*naiveEntry
	byKey   map[string]*naiveEntry
}

type naiveEntry struct {
	f   *filter.Filter
	ids map[string]struct{}
}

var _ Engine = (*NaiveTable)(nil)

// NewNaiveTable returns an empty table using conf for class conformance
// (nil means exact type matching).
func NewNaiveTable(conf filter.Conformance) *NaiveTable {
	return &NaiveTable{conf: conf, byKey: make(map[string]*naiveEntry)}
}

// Insert implements Engine.
func (t *NaiveTable) Insert(f *filter.Filter, id string) {
	key := f.Key()
	e, ok := t.byKey[key]
	if !ok {
		e = &naiveEntry{f: f.Clone(), ids: make(map[string]struct{})}
		t.byKey[key] = e
		t.entries = append(t.entries, e)
	}
	e.ids[id] = struct{}{}
}

// Remove implements Engine.
func (t *NaiveTable) Remove(f *filter.Filter, id string) {
	key := f.Key()
	e, ok := t.byKey[key]
	if !ok {
		return
	}
	delete(e.ids, id)
	if len(e.ids) == 0 {
		t.drop(key, e)
	}
}

// RemoveID implements Engine.
func (t *NaiveTable) RemoveID(id string) {
	for key, e := range t.byKey {
		delete(e.ids, id)
		if len(e.ids) == 0 {
			t.drop(key, e)
		}
	}
}

func (t *NaiveTable) drop(key string, e *naiveEntry) {
	delete(t.byKey, key)
	for i, x := range t.entries {
		if x == e {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return
		}
	}
}

// Match implements Engine: for each event, evaluate all filters in the
// table and collect the IDs of those that match (Figure 6).
func (t *NaiveTable) Match(e event.View) ([]string, int) {
	var ids []string
	matched := 0
	for _, entry := range t.entries {
		if entry.f.Matches(e, t.conf) {
			matched++
			for id := range entry.ids {
				ids = append(ids, id)
			}
		}
	}
	return dedupSorted(ids), matched
}

// Filters implements Engine.
func (t *NaiveTable) Filters() []*filter.Filter {
	out := make([]*filter.Filter, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.f
	}
	return out
}

// Len implements Engine.
func (t *NaiveTable) Len() int { return len(t.entries) }

// IDs returns the IDs associated with a filter (for tests and the
// subscription protocol, which must follow the child associated with a
// covering filter).
func (t *NaiveTable) IDs(f *filter.Filter) []string {
	e, ok := t.byKey[f.Key()]
	if !ok {
		return nil
	}
	ids := make([]string, 0, len(e.ids))
	for id := range e.ids {
		ids = append(ids, id)
	}
	return dedupSorted(ids)
}
