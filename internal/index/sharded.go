package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// ShardedEngine partitions filter associations across N shards by a hash
// of the subscription ID; each shard is an independent inner engine (a
// counting table by default — any Engine kind via NewShardedEngine)
// guarded by its own mutex. Match and MatchBatch evaluate every shard in
// parallel — one goroutine per shard — and merge the per-shard results
// into one sorted, deduplicated ID list per event, so the output is
// identical for any shard count (each ID lives in exactly one shard).
//
// Unlike the single-threaded engines, a ShardedEngine is safe for
// concurrent use: Insert, Remove and RemoveID lock only the owning shard,
// and matching locks each shard from its own worker. Subscription churn
// on one shard therefore never blocks matching on the others.
//
// Semantics note: Match's matched count sums per-shard counts, so a
// filter stored in k shards (the same filter text subscribed by IDs
// hashing to different shards) counts k times. The count is nonzero
// exactly when at least one stored filter matched, which is the only
// property the routing layer relies on.
type ShardedEngine struct {
	shards []*engineShard

	// warn, when set, receives the rate-limited shard-skew diagnostic
	// (see checkSkew); lastSkew is the unix-nano time of the last check.
	warn     func(string)
	lastSkew atomic.Int64
}

type engineShard struct {
	mu  sync.Mutex
	eng Engine
	// ids tracks live filter associations per subscription ID (ID →
	// filter keys), so the shard's load — len(ids), its distinct live
	// subscribers — is readable without an engine scan. It mirrors the
	// inner engines' set semantics: re-inserting an existing (filter,
	// id) association (a lease refresh) is idempotent, and removing one
	// never inserted is a no-op.
	ids map[string]map[string]struct{}
}

var (
	_ Engine       = (*ShardedEngine)(nil)
	_ BatchMatcher = (*ShardedEngine)(nil)
)

// NewSharded returns a sharded engine over counting tables with the
// given shard count (0 or negative means GOMAXPROCS) using conf for
// class conformance.
func NewSharded(conf filter.Conformance, shards int) *ShardedEngine {
	return NewShardedEngine(shards, func() Engine { return NewCountingTable(conf) })
}

// NewShardedEngine returns a sharded engine whose shards are built by
// mk — any Engine kind composes (counting, indexed, even naive). A
// shard count of 0 or below means GOMAXPROCS. Each inner engine is
// only ever driven under its shard's mutex, so single-goroutine inner
// implementations are safe.
func NewShardedEngine(shards int, mk func() Engine) *ShardedEngine {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	t := &ShardedEngine{shards: make([]*engineShard, shards)}
	for i := range t.shards {
		t.shards[i] = &engineShard{eng: mk(), ids: make(map[string]map[string]struct{})}
	}
	return t
}

// SetWarn installs the destination for the shard-skew diagnostic (nil
// disables it). The hook is called from whichever goroutine trips the
// check, at most once per skewWarnEvery, and must not call back into
// the engine.
func (t *ShardedEngine) SetWarn(fn func(string)) { t.warn = fn }

// ShardLoads reports the number of distinct live subscription IDs per
// shard, indexed by shard. The sum over shards is the engine's total
// live subscriptions (IDs are hashed to exactly one shard).
func (t *ShardedEngine) ShardLoads() []int {
	loads := make([]int, len(t.shards))
	for i, sh := range t.shards {
		sh.mu.Lock()
		loads[i] = len(sh.ids)
		sh.mu.Unlock()
	}
	return loads
}

const (
	// skewWarnEvery rate-limits the skew diagnostic: the full-sweep
	// check (and at most one warning) runs once per interval, however
	// hot the Insert path is.
	skewWarnEvery = time.Minute
	// skewFactor and skewFloor define reportable skew: the busiest
	// shard holds more than skewFactor times the quietest AND at least
	// skewFloor subscriptions — the floor keeps a near-empty engine
	// (where one early subscriber trivially "skews" an idle shard)
	// quiet.
	skewFactor = 4
	skewFloor  = 8
)

// checkSkew warns — at most once per skewWarnEvery — when shard loads
// are skewed enough that the parallel matching fan-out is effectively
// serialized onto a few hot shards (subscription IDs hashing unevenly,
// e.g. a shared prefix colliding). Called on Insert, where skew grows.
func (t *ShardedEngine) checkSkew() {
	if t.warn == nil || len(t.shards) < 2 {
		return
	}
	now := time.Now().UnixNano()
	last := t.lastSkew.Load()
	if now-last < int64(skewWarnEvery) || !t.lastSkew.CompareAndSwap(last, now) {
		return
	}
	loads := t.ShardLoads()
	minLoad, maxLoad := loads[0], loads[0]
	for _, n := range loads[1:] {
		if n < minLoad {
			minLoad = n
		}
		if n > maxLoad {
			maxLoad = n
		}
	}
	if maxLoad >= skewFloor && maxLoad > skewFactor*minLoad {
		t.warn(fmt.Sprintf(
			"index: shard load skew: busiest shard holds %d live subscriptions, quietest %d (>%dx across %d shards); subscription IDs are hashing unevenly",
			maxLoad, minLoad, skewFactor, len(loads)))
	}
}

// Shards reports the shard count.
func (t *ShardedEngine) Shards() int { return len(t.shards) }

// shardFor hashes a subscription ID to its owning shard (FNV-1a).
func (t *ShardedEngine) shardFor(id string) *engineShard {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return t.shards[h%uint64(len(t.shards))]
}

// Insert implements Engine.
func (t *ShardedEngine) Insert(f *filter.Filter, id string) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	sh.eng.Insert(f, id)
	keys, ok := sh.ids[id]
	if !ok {
		keys = make(map[string]struct{}, 1)
		sh.ids[id] = keys
	}
	keys[f.Key()] = struct{}{}
	sh.mu.Unlock()
	t.checkSkew()
}

// Remove implements Engine.
func (t *ShardedEngine) Remove(f *filter.Filter, id string) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	sh.eng.Remove(f, id)
	if keys, ok := sh.ids[id]; ok {
		delete(keys, f.Key())
		if len(keys) == 0 {
			delete(sh.ids, id)
		}
	}
	sh.mu.Unlock()
}

// RemoveID implements Engine.
func (t *ShardedEngine) RemoveID(id string) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	sh.eng.RemoveID(id)
	delete(sh.ids, id)
	sh.mu.Unlock()
}

// Match implements Engine by matching a batch of one.
func (t *ShardedEngine) Match(e event.View) ([]string, int) {
	r := t.MatchBatch([]event.View{e})[0]
	return r.IDs, r.Matched
}

// MatchBatch implements BatchMatcher: every shard matches the whole batch
// on its own goroutine, then per-event results merge in shard order.
// Shards hold disjoint ID sets, so the merged list is a plain sorted
// union and the outcome is deterministic for any shard count.
func (t *ShardedEngine) MatchBatch(events []event.View) []MatchResult {
	out := make([]MatchResult, len(events))
	if len(events) == 0 {
		return out
	}
	if len(t.shards) == 1 {
		sh := t.shards[0]
		sh.mu.Lock()
		for i, e := range events {
			out[i].IDs, out[i].Matched = sh.eng.Match(e)
		}
		sh.mu.Unlock()
		return out
	}
	if len(events) == 1 {
		// The common un-coalesced case: a goroutine per shard costs more
		// than the matching itself. Walk the shards serially instead.
		var ids []string
		matched := 0
		for _, sh := range t.shards {
			sh.mu.Lock()
			shardIDs, m := sh.eng.Match(events[0])
			sh.mu.Unlock()
			matched += m
			ids = append(ids, shardIDs...)
		}
		if len(ids) > 1 {
			sort.Strings(ids)
		}
		out[0] = MatchResult{IDs: ids, Matched: matched}
		return out
	}
	per := make([][]MatchResult, len(t.shards))
	var wg sync.WaitGroup
	for si, sh := range t.shards {
		wg.Add(1)
		go func(si int, sh *engineShard) {
			defer wg.Done()
			rs := make([]MatchResult, len(events))
			sh.mu.Lock()
			for i, e := range events {
				rs[i].IDs, rs[i].Matched = sh.eng.Match(e)
			}
			sh.mu.Unlock()
			per[si] = rs
		}(si, sh)
	}
	wg.Wait()
	for i := range events {
		var ids []string
		matched := 0
		for si := range per {
			r := per[si][i]
			matched += r.Matched
			ids = append(ids, r.IDs...)
		}
		if len(ids) > 1 {
			sort.Strings(ids)
		}
		out[i] = MatchResult{IDs: ids, Matched: matched}
	}
	return out
}

// Filters implements Engine, deduplicating filters stored in several
// shards by filter identity.
func (t *ShardedEngine) Filters() []*filter.Filter {
	seen := make(map[string]struct{})
	var out []*filter.Filter
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, f := range sh.eng.Filters() {
			if _, ok := seen[f.Key()]; ok {
				continue
			}
			seen[f.Key()] = struct{}{}
			out = append(out, f)
		}
		sh.mu.Unlock()
	}
	return out
}

// Len implements Engine: the number of distinct filters across shards.
func (t *ShardedEngine) Len() int {
	seen := make(map[string]struct{})
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, f := range sh.eng.Filters() {
			seen[f.Key()] = struct{}{}
		}
		sh.mu.Unlock()
	}
	return len(seen)
}
