package index

import (
	"math"
	"sort"
	"strconv"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// Engine matches events against a mutable set of filters, each associated
// with one or more opaque IDs (child node or subscriber identities).
type Engine interface {
	// Insert associates id with the filter, deduplicating by filter
	// identity: inserting an equal filter twice yields one entry with two
	// IDs (step 2 of the Figure 6 algorithm).
	Insert(f *filter.Filter, id string)
	// Remove dissociates id from the filter; the entry disappears with
	// its last ID.
	Remove(f *filter.Filter, id string)
	// RemoveID dissociates id from every filter.
	RemoveID(id string)
	// Match returns the IDs of all filters matching e, sorted and
	// deduplicated, and the number of distinct filters evaluated to true.
	// Matching runs against the event view — the decoded *event.Event or
	// the zero-copy *event.Raw — without materializing anything.
	Match(e event.View) (ids []string, matched int)
	// Filters returns the distinct stored filters.
	Filters() []*filter.Filter
	// Len reports the number of distinct stored filters.
	Len() int
}

// dedupSorted sorts and deduplicates an ID slice in place.
func dedupSorted(ids []string) []string {
	if len(ids) < 2 {
		return ids
	}
	sort.Strings(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// hashableEq reports whether an equality constraint can live in a hash
// posting. A NaN operand equals nothing (Compare reports it
// incomparable), but its hash key would wrongly match NaN event values,
// so it must be evaluated directly.
func hashableEq(c filter.Constraint) bool {
	return c.Op == filter.OpEq && !(c.Operand.IsNumeric() && math.IsNaN(c.Operand.Num()))
}

// valueKey returns a hashable identity for a value such that Equal values
// (including Int/Float cross-kind equality) share a key.
func valueKey(v event.Value) string {
	switch v.Kind() {
	case event.KindString:
		return "s:" + v.Str()
	case event.KindBool:
		if v.BoolVal() {
			return "b:1"
		}
		return "b:0"
	case event.KindInt, event.KindFloat:
		n := v.Num()
		if n == 0 {
			n = 0 // collapse -0 onto +0; they compare equal
		}
		return "n:" + strconv.FormatFloat(n, 'g', -1, 64)
	default:
		return "?"
	}
}
