package index

import (
	"fmt"
	"math"
	"testing"

	"eventsys/internal/event"
	"eventsys/internal/filter"
)

// TestIndexedDeltaMerge pushes enough ordering constraints through one
// (attribute, operator) index to overflow the delta buffer several times
// and verifies matching stays exact across the merges.
func TestIndexedDeltaMerge(t *testing.T) {
	it := NewIndexedTable(nil)
	naive := NewNaiveTable(nil)
	n := ordDeltaCap*2 + 57
	for i := 0; i < n; i++ {
		f := &filter.Filter{Constraints: []filter.Constraint{
			filter.C("price", filter.OpGt, event.Float(float64(i))),
		}}
		id := fmt.Sprintf("s%04d", i)
		it.Insert(f, id)
		naive.Insert(f, id)
	}
	p := it.attrs["price"]
	if p.ord[2].core.size() == 0 {
		t.Fatalf("delta never merged into core: core=%d delta=%d",
			p.ord[2].core.size(), len(p.ord[2].delta))
	}
	if len(p.ord[2].delta) >= ordDeltaCap {
		t.Fatalf("delta exceeded cap: %d", len(p.ord[2].delta))
	}
	for _, v := range []float64{-1, 0.5, float64(n) / 2, float64(n) + 10} {
		e := event.NewBuilder("T").Float("price", v).Build()
		nids, _ := naive.Match(e)
		iids, _ := it.Match(e)
		if fmt.Sprint(nids) != fmt.Sprint(iids) {
			t.Fatalf("price=%v: naive %d ids, indexed %d ids", v, len(nids), len(iids))
		}
	}
}

// TestIndexedTombstonePurge removes most subscriptions and checks that
// (a) tombstoned threshold entries never resurrect matches, and (b) the
// amortized purge eventually reclaims the dead entries and their slots.
func TestIndexedTombstonePurge(t *testing.T) {
	it := NewIndexedTable(nil)
	n := 600
	for i := 0; i < n; i++ {
		f := &filter.Filter{Constraints: []filter.Constraint{
			filter.C("load", filter.OpGe, event.Float(float64(i))),
		}}
		it.Insert(f, fmt.Sprintf("s%04d", i))
	}
	// Remove every subscription but the last 10.
	for i := 0; i < n-10; i++ {
		it.RemoveID(fmt.Sprintf("s%04d", i))
	}
	if it.Len() != 10 {
		t.Fatalf("Len = %d, want 10", it.Len())
	}
	e := event.NewBuilder("T").Float("load", float64(n)).Build()
	ids, matched := it.Match(e)
	if len(ids) != 10 || matched != 10 {
		t.Fatalf("Match after churn = %d ids (%d matched), want 10", len(ids), matched)
	}
	// The purge threshold (ordDead*4 >= ordLive) was crossed long ago;
	// dead entries must be mostly reclaimed and slots recycled.
	if it.ordDead >= 64 && it.ordDead*4 >= it.ordLive {
		t.Errorf("purge never ran: ordDead=%d ordLive=%d", it.ordDead, it.ordLive)
	}
	if len(it.free) == 0 {
		t.Error("no tombstoned slots were recycled")
	}
	// Recycled slots must be reusable without ghost matches.
	f := &filter.Filter{Constraints: []filter.Constraint{
		filter.C("load", filter.OpLt, event.Float(5)),
	}}
	it.Insert(f, "fresh")
	lo := event.NewBuilder("T").Float("load", 1).Build()
	ids, _ = it.Match(lo)
	if fmt.Sprint(ids) != "[fresh]" {
		t.Fatalf("Match after reuse = %v, want [fresh]", ids)
	}
}

// TestIndexedSlotHeldByOrdRefs verifies a tombstoned slot is not recycled
// while threshold cores still reference it, and is recycled once a merge
// releases the last reference.
func TestIndexedSlotHeldByOrdRefs(t *testing.T) {
	it := NewIndexedTable(nil)
	f := &filter.Filter{Constraints: []filter.Constraint{
		filter.C("x", filter.OpLt, event.Float(10)),
	}}
	it.Insert(f, "a")
	it.Remove(f, "a")
	if len(it.free) != 0 {
		t.Fatalf("slot recycled while threshold entry still live")
	}
	// Force the delta to merge; the dead entry is dropped and the slot
	// becomes reusable.
	it.mergeOrd(&it.attrs["x"].ord[0])
	if len(it.free) != 1 {
		t.Fatalf("slot not recycled after merge: free=%v", it.free)
	}
	if it.ordDead != 0 {
		t.Fatalf("ordDead = %d, want 0", it.ordDead)
	}
}

// TestIndexedPrefixSuffixEdges covers the per-length prefix/suffix
// lookups: empty operands (match every string), operands longer than the
// value, and overlapping lengths.
func TestIndexedPrefixSuffixEdges(t *testing.T) {
	it := NewIndexedTable(nil)
	naive := NewNaiveTable(nil)
	mk := func(op filter.Op, operand, id string) {
		f := &filter.Filter{Constraints: []filter.Constraint{
			filter.C("topic", op, event.String(operand)),
		}}
		it.Insert(f, id)
		naive.Insert(f, id)
	}
	mk(filter.OpPrefix, "", "p-empty")
	mk(filter.OpPrefix, "a", "p-a")
	mk(filter.OpPrefix, "ab", "p-ab")
	mk(filter.OpPrefix, "abcdef", "p-long")
	mk(filter.OpSuffix, "", "s-empty")
	mk(filter.OpSuffix, "b", "s-b")
	mk(filter.OpSuffix, "ab", "s-ab")
	for _, v := range []string{"", "a", "ab", "ba", "abc", "abcdef", "zab"} {
		e := event.NewBuilder("T").Str("topic", v).Build()
		nids, _ := naive.Match(e)
		iids, _ := it.Match(e)
		if fmt.Sprint(nids) != fmt.Sprint(iids) {
			t.Errorf("topic=%q: naive %v, indexed %v", v, nids, iids)
		}
	}
}

// TestIndexedNaN checks NaN semantics end to end: NaN event values and
// NaN operands satisfy no equality or ordering constraint, in every
// engine.
func TestIndexedNaN(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			ops := []filter.Op{filter.OpEq, filter.OpLt, filter.OpLe, filter.OpGt, filter.OpGe}
			for i, op := range ops {
				eng.Insert(&filter.Filter{Constraints: []filter.Constraint{
					filter.C("v", op, event.Float(5)),
				}}, fmt.Sprintf("num%d", i))
				eng.Insert(&filter.Filter{Constraints: []filter.Constraint{
					filter.C("v", op, event.Float(math.NaN())),
				}}, fmt.Sprintf("nan%d", i))
			}
			nan := event.NewBuilder("T").Float("v", math.NaN()).Build()
			if ids, _ := eng.Match(nan); len(ids) != 0 {
				t.Errorf("NaN value matched %v, want none", ids)
			}
			five := event.NewBuilder("T").Float("v", 5).Build()
			ids, _ := eng.Match(five)
			if fmt.Sprint(ids) != "[num0 num2 num4]" { // Eq, Le, Ge at 5
				t.Errorf("v=5 matched %v, want [num0 num2 num4]", ids)
			}
		})
	}
}

// TestIndexedCrossKindEq verifies Int/Float cross-kind equality and ±0
// collapse in the eq postings.
func TestIndexedCrossKindEq(t *testing.T) {
	for name, eng := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			eng.Insert(&filter.Filter{Constraints: []filter.Constraint{
				filter.C("x", filter.OpEq, event.Int(5)),
			}}, "int5")
			eng.Insert(&filter.Filter{Constraints: []filter.Constraint{
				filter.C("x", filter.OpEq, event.Float(0)),
			}}, "zero")
			e := event.NewBuilder("T").Float("x", 5).Build()
			if ids, _ := eng.Match(e); fmt.Sprint(ids) != "[int5]" {
				t.Errorf("Float(5) matched %v, want [int5]", ids)
			}
			neg := event.NewBuilder("T").Float("x", math.Copysign(0, -1)).Build()
			if ids, _ := eng.Match(neg); fmt.Sprint(ids) != "[zero]" {
				t.Errorf("Float(-0) matched %v, want [zero]", ids)
			}
		})
	}
}

// TestIndexedScanResidue routes inherently unindexable constraints
// (contains, string ordering, not-equal) through the scan list.
func TestIndexedScanResidue(t *testing.T) {
	it := NewIndexedTable(nil)
	naive := NewNaiveTable(nil)
	add := func(f *filter.Filter, id string) {
		it.Insert(f, id)
		naive.Insert(f, id)
	}
	add(&filter.Filter{Constraints: []filter.Constraint{
		filter.C("s", filter.OpContains, event.String("bc")),
	}}, "contains")
	add(&filter.Filter{Constraints: []filter.Constraint{
		filter.C("s", filter.OpGt, event.String("m")),
	}}, "str-gt")
	add(&filter.Filter{Constraints: []filter.Constraint{
		filter.C("s", filter.OpNe, event.String("abc")),
	}}, "ne")
	if got := len(it.attrs["s"].scan); got != 3 {
		t.Fatalf("scan residue has %d entries, want 3", got)
	}
	for _, v := range []string{"abc", "abcd", "xyz", "m", "n"} {
		e := event.NewBuilder("T").Str("s", v).Build()
		nids, _ := naive.Match(e)
		iids, _ := it.Match(e)
		if fmt.Sprint(nids) != fmt.Sprint(iids) {
			t.Errorf("s=%q: naive %v, indexed %v", v, nids, iids)
		}
	}
}

// TestIndexedRemoveIDReverseIndex checks RemoveID visits only the slots
// of the departing id (the byID reverse index stays exact through
// inserts and removes).
func TestIndexedRemoveIDReverseIndex(t *testing.T) {
	it := NewIndexedTable(nil)
	for i := 0; i < 20; i++ {
		f := &filter.Filter{Constraints: []filter.Constraint{
			filter.C("x", filter.OpEq, event.Int(int64(i))),
		}}
		it.Insert(f, "keep")
		if i%2 == 0 {
			it.Insert(f, "drop")
		}
	}
	if got := len(it.byID["drop"]); got != 10 {
		t.Fatalf("byID[drop] = %d slots, want 10", got)
	}
	it.RemoveID("drop")
	if _, ok := it.byID["drop"]; ok {
		t.Error("byID entry survived RemoveID")
	}
	if it.Len() != 20 {
		t.Fatalf("Len = %d, want 20 (filters still held by keep)", it.Len())
	}
	it.RemoveID("keep")
	if it.Len() != 0 {
		t.Fatalf("Len = %d, want 0", it.Len())
	}
	// Idempotent on absent ids.
	it.RemoveID("ghost")
}

// TestIndexedPairGroups covers the access-predicate pairing fast path:
// two-constraint (access ∧ threshold) filters must be indexed as pair
// groups behind the access posting — not in the global per-operator
// structures — match exactly, honor the mirrored threshold bounds, and
// be reclaimed by the amortized purge.
func TestIndexedPairGroups(t *testing.T) {
	it := NewIndexedTable(nil)
	naive := NewNaiveTable(nil)
	add := func(id string, cs ...filter.Constraint) {
		f := &filter.Filter{Constraints: cs}
		it.Insert(f, id)
		naive.Insert(f, id)
	}
	n := 100
	for i := 0; i < n; i++ {
		add(fmt.Sprintf("ceil%02d", i),
			filter.C("metric", filter.OpEq, event.String("cpu")),
			filter.C("value", filter.OpGe, event.Float(90+float64(i)/10)))
		add(fmt.Sprintf("floor%02d", i),
			filter.C("metric", filter.OpEq, event.String("cpu")),
			filter.C("value", filter.OpLe, event.Float(1+float64(i)/10)))
	}
	add("pfx",
		filter.C("topic", filter.OpPrefix, event.String("a/b")),
		filter.C("value", filter.OpGt, event.Float(50)))

	// Paired filters bypass the global ordering indexes entirely.
	p := it.attrs["value"]
	if p != nil {
		for i := range p.ord {
			if got := p.ord[i].core.size() + len(p.ord[i].delta); got != 0 {
				t.Fatalf("global ord[%d] has %d entries; paired filters must not land there", i, got)
			}
		}
	}
	po := it.attrs["metric"].eqStr["cpu"]
	if po == nil || len(po.pairs) != 2 {
		t.Fatalf("metric=cpu postings should carry 2 pair groups (Ge, Le), got %+v", po)
	}
	for _, g := range po.pairs {
		if g.battr != "value" {
			t.Fatalf("pair group partner = %q, want value", g.battr)
		}
		if g.lo != g.oi.lo || g.hi != g.oi.hi {
			t.Fatalf("mirrored bounds [%g,%g] diverge from index bounds [%g,%g]",
				g.lo, g.hi, g.oi.lo, g.oi.hi)
		}
	}

	ev := func(metric string, v float64) event.View {
		return event.NewBuilder("T").Str("metric", metric).Str("topic", "a/b/c").Float("value", v).Build()
	}
	for _, v := range []float64{0.5, 1.05, 50, 90.05, 99, 200} {
		e := ev("cpu", v)
		nids, _ := naive.Match(e)
		iids, _ := it.Match(e)
		if fmt.Sprint(nids) != fmt.Sprint(iids) {
			t.Errorf("value=%v: naive %v, indexed %v", v, nids, iids)
		}
	}
	// An event missing the access predicate must match nothing paired.
	if ids, _ := it.Match(ev("mem", 99)); fmt.Sprint(ids) != "[pfx]" {
		t.Errorf("metric=mem value=99 matched %v, want [pfx] only", ids)
	}

	// Removing all ceiling filters defers their threshold entries to the
	// amortized purge; it must have fired at least once along the way.
	for i := 0; i < n; i++ {
		it.RemoveID(fmt.Sprintf("ceil%02d", i))
		naive.RemoveID(fmt.Sprintf("ceil%02d", i))
	}
	if it.ordDead >= 64 && it.ordDead*4 >= it.ordLive {
		t.Fatalf("purge never ran: ordDead=%d ordLive=%d", it.ordDead, it.ordLive)
	}
	// Tombstones below the trigger threshold wait for the next purge; a
	// full sweep must reclaim the emptied Ge pair group and its slots.
	it.purgeOrd()
	po = it.attrs["metric"].eqStr["cpu"]
	if po == nil || len(po.pairs) != 1 {
		t.Fatalf("after purge, metric=cpu should keep 1 pair group, got %+v", po)
	}
	if len(it.free) == 0 {
		t.Error("no tombstoned paired slots were recycled")
	}
	e := ev("cpu", 99)
	nids, _ := naive.Match(e)
	iids, _ := it.Match(e)
	if fmt.Sprint(nids) != fmt.Sprint(iids) {
		t.Errorf("after churn value=99: naive %v, indexed %v", nids, iids)
	}
}
