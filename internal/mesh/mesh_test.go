package mesh

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"eventsys/internal/baseline"
	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/typing"
	"eventsys/internal/workload"
)

// lineMesh builds A - B - C.
func lineMesh(t *testing.T, cfg Config) *Mesh {
	t.Helper()
	m := New(cfg)
	for _, id := range []BrokerID{"A", "B", "C"} {
		if err := m.AddBroker(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Connect("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := m.Connect("B", "C"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeshBasicRouting(t *testing.T) {
	m := lineMesh(t, Config{})
	if err := m.Subscribe("C", "carol", filter.MustParseFilter(`class = "Stock" && symbol = "X"`)); err != nil {
		t.Fatal(err)
	}
	got, err := m.Publish("A", event.NewBuilder("Stock").Str("symbol", "X").Build())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[carol]" {
		t.Errorf("delivered = %v, want [carol]", got)
	}
	got, err = m.Publish("A", event.NewBuilder("Stock").Str("symbol", "Y").Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("delivered = %v, want none", got)
	}
}

func TestMeshPublishAnywhere(t *testing.T) {
	m := lineMesh(t, Config{})
	if err := m.Subscribe("B", "bob", filter.MustParseFilter(`x = 1`)); err != nil {
		t.Fatal(err)
	}
	for _, at := range []BrokerID{"A", "B", "C"} {
		got, err := m.Publish(at, event.NewBuilder("T").Int("x", 1).Build())
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != "[bob]" {
			t.Errorf("publish at %s delivered %v", at, got)
		}
	}
}

func TestMeshNoEchoToOrigin(t *testing.T) {
	m := lineMesh(t, Config{})
	if err := m.Subscribe("A", "alice", filter.MustParseFilter(`x = 1`)); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe("C", "carol", filter.MustParseFilter(`x = 1`)); err != nil {
		t.Fatal(err)
	}
	got, err := m.Publish("B", event.NewBuilder("T").Int("x", 1).Build())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[alice carol]" {
		t.Errorf("delivered = %v", got)
	}
	// Each broker received the event exactly once (acyclic graph).
	for _, st := range m.Stats() {
		if st.Received > 1 {
			t.Errorf("broker %s received %d copies", st.NodeID, st.Received)
		}
	}
}

func TestMeshCycleRejected(t *testing.T) {
	m := lineMesh(t, Config{})
	if err := m.Connect("A", "C"); err == nil {
		t.Fatal("cycle A-B-C-A should be rejected")
	}
	if err := m.Connect("A", "A"); err == nil {
		t.Fatal("self loop should be rejected")
	}
	if err := m.Connect("A", "Z"); err == nil {
		t.Fatal("unknown broker should be rejected")
	}
}

func TestMeshValidation(t *testing.T) {
	m := New(Config{})
	if err := m.AddBroker(""); err == nil {
		t.Error("empty id should fail")
	}
	if err := m.AddBroker("A"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddBroker("A"); err == nil {
		t.Error("duplicate broker should fail")
	}
	if err := m.Subscribe("Z", "s", filter.MustParseFilter(`x = 1`)); err == nil {
		t.Error("unknown broker should fail")
	}
	if err := m.Subscribe("A", "s", nil); err == nil {
		t.Error("nil filter should fail")
	}
	if err := m.Subscribe("A", "s", filter.MustParseFilter(`x = 1`)); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe("A", "s", filter.MustParseFilter(`x = 2`)); err == nil {
		t.Error("duplicate subscriber should fail")
	}
	if _, err := m.Publish("Z", event.New("T")); err == nil {
		t.Error("publish at unknown broker should fail")
	}
}

func TestMeshCoveringPruning(t *testing.T) {
	m := lineMesh(t, Config{})
	// A broad filter first, then a covered narrower one at the same
	// broker: the narrow filter must not propagate (pruned).
	if err := m.Subscribe("C", "broad", filter.MustParseFilter(`class = "Stock" && price < 100`)); err != nil {
		t.Fatal(err)
	}
	before := m.StoredFilters()
	if err := m.Subscribe("C", "narrow", filter.MustParseFilter(`class = "Stock" && price < 10`)); err != nil {
		t.Fatal(err)
	}
	after := m.StoredFilters()
	// Only the local filter is added; no per-link state grows.
	if after-before != 1 {
		t.Errorf("narrow subscription added %d filters, want 1 (pruned remotes)", after-before)
	}
	// Both still receive what they want.
	got, err := m.Publish("A", event.NewBuilder("Stock").Float("price", 5).Build())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[broad narrow]" {
		t.Errorf("delivered = %v", got)
	}
}

// biblioAds builds the evaluation advertisement for weakening tests.
func biblioAds(t *testing.T, stages int) *typing.AdvertisementSet {
	t.Helper()
	var ads typing.AdvertisementSet
	ad, err := typing.NewAdvertisement("Biblio", stages, "year", "conference", "author", "title")
	if err != nil {
		t.Fatal(err)
	}
	if err := ads.Put(ad); err != nil {
		t.Fatal(err)
	}
	return &ads
}

func TestMeshDistanceWeakening(t *testing.T) {
	ads := biblioAds(t, 4)
	m := lineMesh(t, Config{Ads: ads, MaxStage: 3})
	f := filter.MustParseFilter(`class = "Biblio" && year = 2002 && conference = "ICDCS" && author = "Eugster" && title = "Cake"`)
	if err := m.Subscribe("C", "carol", f); err != nil {
		t.Fatal(err)
	}
	// B is 1 hop from carol: it stores the stage-1 weakening (title
	// dropped). A is 2 hops: stage-2 (author dropped too).
	// Publish events differing only in dropped attributes: they travel
	// toward C and are rejected only near/at the edge.
	e := event.NewBuilder("Biblio").Int("year", 2002).Str("conference", "ICDCS").
		Str("author", "Eugster").Str("title", "OtherTitle").Build()
	got, err := m.Publish("A", e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("delivered = %v, want none (title mismatch)", got)
	}
	// The event crossed A and B (their weakened filters match) but died
	// at C's perfect filter.
	for _, st := range m.Stats() {
		if st.Received != 1 {
			t.Errorf("broker %s received %d, want 1", st.NodeID, st.Received)
		}
	}
	// A fully matching event is delivered.
	e2 := event.NewBuilder("Biblio").Int("year", 2002).Str("conference", "ICDCS").
		Str("author", "Eugster").Str("title", "Cake").Build()
	got, err = m.Publish("A", e2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[carol]" {
		t.Errorf("delivered = %v", got)
	}
	// An event differing in a near-edge attribute (author) is dropped at
	// B (stage-1 filter still has author), never reaching C.
	e3 := event.NewBuilder("Biblio").Int("year", 2002).Str("conference", "ICDCS").
		Str("author", "Other").Str("title", "Cake").Build()
	if got, _ := m.Publish("A", e3); len(got) != 0 {
		t.Errorf("delivered = %v, want none", got)
	}
	var cReceived uint64
	for _, st := range m.Stats() {
		if st.NodeID == "C" {
			cReceived = st.Received
		}
	}
	if cReceived != 2 {
		t.Errorf("C received %d events, want 2 (e3 pre-filtered at B)", cReceived)
	}
}

// TestMeshOracleProperty cross-validates random topologies and workloads
// against the centralized baseline.
func TestMeshOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	for round := 0; round < 30; round++ {
		ads := biblioAds(t, 4)
		maxStage := rng.IntN(4) // 0 disables weakening
		m := New(Config{Ads: ads, MaxStage: maxStage})
		central := baseline.NewCentralized(nil, nil)

		// Random tree of 2–10 brokers.
		n := 2 + rng.IntN(9)
		ids := make([]BrokerID, n)
		for i := range ids {
			ids[i] = BrokerID(fmt.Sprintf("B%d", i))
			if err := m.AddBroker(ids[i]); err != nil {
				t.Fatal(err)
			}
			if i > 0 {
				if err := m.Connect(ids[i], ids[rng.IntN(i)]); err != nil {
					t.Fatal(err)
				}
			}
		}
		bib, err := workload.NewBiblio(uint64(round), workload.DefaultBiblio())
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 10; s++ {
			f := bib.Subscription(0.2, true)
			id := fmt.Sprintf("sub%d", s)
			if err := m.Subscribe(ids[rng.IntN(n)], id, f); err != nil {
				t.Fatal(err)
			}
			central.Subscribe(id, f)
		}
		for e := 0; e < 60; e++ {
			ev := bib.Event()
			got, err := m.Publish(ids[rng.IntN(n)], ev)
			if err != nil {
				t.Fatal(err)
			}
			want := central.Publish(ev)
			sort.Strings(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("round %d event %d: mesh %v vs oracle %v\n  event %s",
					round, e, got, want, ev)
			}
		}
	}
}

func TestMeshStarTopology(t *testing.T) {
	m := New(Config{})
	hub := BrokerID("hub")
	if err := m.AddBroker(hub); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := BrokerID(fmt.Sprintf("leaf%d", i))
		if err := m.AddBroker(id); err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(hub, id); err != nil {
			t.Fatal(err)
		}
		if err := m.Subscribe(id, fmt.Sprintf("s%d", i),
			filter.MustParseFilter(fmt.Sprintf(`x = %d`, i%2))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Publish("leaf0", event.NewBuilder("T").Int("x", 0).Build())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[s0 s2 s4]" {
		t.Errorf("delivered = %v", got)
	}
}

func TestMeshBrokersListing(t *testing.T) {
	m := lineMesh(t, Config{})
	got := m.Brokers()
	if fmt.Sprint(got) != "[A B C]" {
		t.Errorf("Brokers = %v", got)
	}
}
