// Package mesh implements the non-hierarchical broker configuration the
// paper mentions but does not develop (Section 4, footnote 1:
// "Non-hierarchical configurations can also be used, but they have a
// higher complexity"). Brokers form an acyclic peer-to-peer graph;
// subscriptions flood outward from their home broker with reverse-path
// state, and events follow the reverse paths back — the classic
// server-to-server protocol of SIENA-style systems [CRW00], which the
// paper cites as the scalable architecture class.
//
// Multi-stage weakening generalizes to distance: a subscription
// propagated h hops from its subscriber is stored in its stage-h
// weakened form (clamped to the advertisement's top stage), so remote
// brokers hold cheap, broad filters and precision increases as events
// approach the subscriber — the same gradient the hierarchy builds, on
// an arbitrary acyclic topology. Covering-based pruning suppresses
// propagation of filters already covered by what a link carries.
//
// The implementation is deterministic and synchronous (like the
// simulator): Publish walks the graph in the calling goroutine. A Mesh
// is safe for concurrent use through a single mutex; throughput-oriented
// deployments should shard by class or wrap brokers in actors as
// internal/overlay does for the hierarchy.
package mesh

import (
	"fmt"
	"sort"
	"sync"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/metrics"
	"eventsys/internal/typing"
	"eventsys/internal/weaken"
)

// BrokerID identifies a mesh broker.
type BrokerID string

// Mesh is an acyclic graph of brokers.
type Mesh struct {
	mu       sync.Mutex
	conf     filter.Conformance
	weak     *weaken.Weakener
	maxStage int
	brokers  map[BrokerID]*broker
	// parentOf implements union-find for acyclicity checking.
	parentOf  map[BrokerID]BrokerID
	collector *metrics.Collector
	seq       uint64
	delivered uint64
}

type broker struct {
	id        BrokerID
	neighbors []BrokerID
	// interests[n] holds the filters received from neighbor n: an event
	// matching any of them is forwarded to n (reverse-path forwarding).
	interests map[BrokerID][]*filter.Filter
	// sent[n] holds the filters this broker has propagated to neighbor
	// n, for covering-based pruning.
	sent map[BrokerID][]*filter.Filter
	// locals are this broker's own subscribers with their original
	// (perfect) filters.
	locals   map[string]*filter.Filter
	counters *metrics.Counters
}

// Config parameterizes a Mesh.
type Config struct {
	// Conformance resolves type subtyping; nil = exact names.
	Conformance filter.Conformance
	// Ads supplies advertisements for distance-based weakening; nil
	// disables weakening (full filters everywhere).
	Ads *typing.AdvertisementSet
	// MaxStage clamps the hop-distance weakening stage (defaults to the
	// advertisement stage count when Ads is set; otherwise 0 = off).
	MaxStage int
}

// New creates an empty mesh.
func New(cfg Config) *Mesh {
	conf := cfg.Conformance
	if conf == nil {
		conf = filter.ExactTypes{}
	}
	m := &Mesh{
		conf:      conf,
		maxStage:  cfg.MaxStage,
		brokers:   make(map[BrokerID]*broker),
		parentOf:  make(map[BrokerID]BrokerID),
		collector: &metrics.Collector{},
	}
	if cfg.Ads != nil {
		m.weak = weaken.New(cfg.Ads, conf)
	}
	return m
}

// AddBroker registers a broker.
func (m *Mesh) AddBroker(id BrokerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		return fmt.Errorf("mesh: empty broker id")
	}
	if _, dup := m.brokers[id]; dup {
		return fmt.Errorf("mesh: broker %q already exists", id)
	}
	m.brokers[id] = &broker{
		id:        id,
		interests: make(map[BrokerID][]*filter.Filter),
		sent:      make(map[BrokerID][]*filter.Filter),
		locals:    make(map[string]*filter.Filter),
		counters:  m.collector.Counters(string(id), 1),
	}
	m.parentOf[id] = id
	return nil
}

// find is union-find root lookup with path compression.
func (m *Mesh) find(id BrokerID) BrokerID {
	for m.parentOf[id] != id {
		m.parentOf[id] = m.parentOf[m.parentOf[id]]
		id = m.parentOf[id]
	}
	return id
}

// Connect links two brokers. Connections that would close a cycle are
// rejected: reverse-path forwarding requires an acyclic graph.
func (m *Mesh) Connect(a, b BrokerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ba, ok := m.brokers[a]
	if !ok {
		return fmt.Errorf("mesh: unknown broker %q", a)
	}
	bb, ok := m.brokers[b]
	if !ok {
		return fmt.Errorf("mesh: unknown broker %q", b)
	}
	if a == b {
		return fmt.Errorf("mesh: cannot connect %q to itself", a)
	}
	ra, rb := m.find(a), m.find(b)
	if ra == rb {
		return fmt.Errorf("mesh: connecting %q-%q would create a cycle", a, b)
	}
	m.parentOf[ra] = rb
	ba.neighbors = append(ba.neighbors, b)
	bb.neighbors = append(bb.neighbors, a)
	return nil
}

// Subscribe attaches a subscriber with its original filter at a broker
// and floods the (progressively weakened) filter through the mesh.
func (m *Mesh) Subscribe(at BrokerID, subscriberID string, f *filter.Filter) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	home, ok := m.brokers[at]
	if !ok {
		return fmt.Errorf("mesh: unknown broker %q", at)
	}
	if f == nil {
		return fmt.Errorf("mesh: nil filter")
	}
	if _, dup := home.locals[subscriberID]; dup {
		return fmt.Errorf("mesh: subscriber %q already attached at %q", subscriberID, at)
	}
	home.locals[subscriberID] = f.Clone()
	home.counters.SetFilters(home.filterCount())
	// Flood to every neighbor with hop distance 1.
	for _, n := range home.neighbors {
		m.propagate(home, n, f, 1)
	}
	return nil
}

// propagate sends filter f (weakened for hop distance h) from broker src
// to its neighbor dst, recursing onward. Covering pruning: skip when a
// filter already sent on that link covers the new one.
func (m *Mesh) propagate(src *broker, dstID BrokerID, f *filter.Filter, hops int) {
	wf := m.weakenFor(f, hops)
	for _, g := range src.sent[dstID] {
		if filter.Covers(g, wf, m.conf) {
			return // link already carries a superset toward src
		}
	}
	src.sent[dstID] = append(src.sent[dstID], wf)
	dst := m.brokers[dstID]
	dst.interests[src.id] = append(dst.interests[src.id], wf)
	dst.counters.SetFilters(dst.filterCount())
	for _, n := range dst.neighbors {
		if n == src.id {
			continue
		}
		m.propagate(dst, n, f, hops+1)
	}
}

// weakenFor returns the filter weakened for hop distance h.
func (m *Mesh) weakenFor(f *filter.Filter, hops int) *filter.Filter {
	if m.weak == nil || m.maxStage <= 0 {
		return f.Clone()
	}
	stage := hops
	if stage > m.maxStage {
		stage = m.maxStage
	}
	return m.weak.Filter(f, stage)
}

// filterCount reports the broker's total stored filters (local + per
// link), the quantity LC counts.
func (b *broker) filterCount() int {
	n := len(b.locals)
	for _, fs := range b.interests {
		n += len(fs)
	}
	return n
}

// Publish injects an event at a broker and returns the IDs of
// subscribers it was delivered to (after perfect filtering), sorted.
func (m *Mesh) Publish(at BrokerID, e *event.Event) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	src, ok := m.brokers[at]
	if !ok {
		return nil, fmt.Errorf("mesh: unknown broker %q", at)
	}
	m.seq++
	e.ID = m.seq
	var delivered []string
	m.walk(src, "", e, &delivered)
	sort.Strings(delivered)
	m.delivered += uint64(len(delivered))
	return delivered, nil
}

// walk processes the event at broker b, having arrived from neighbor
// `from` ("" for the publishing broker), and forwards along matching
// links.
func (m *Mesh) walk(b *broker, from BrokerID, e *event.Event, delivered *[]string) {
	b.counters.AddReceived(1)
	matchedAny := false
	// Local subscribers: perfect filtering with original filters.
	for id, f := range b.locals {
		if f.Matches(e, m.conf) {
			matchedAny = true
			b.counters.AddDelivered(1)
			*delivered = append(*delivered, id)
		}
	}
	// Reverse-path forwarding: neighbor n gets the event when any filter
	// received from n matches.
	for _, n := range b.neighbors {
		if n == from {
			continue
		}
		match := false
		for _, f := range b.interests[n] {
			if f.Matches(e, m.conf) {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		matchedAny = true
		b.counters.AddForwarded(1)
		m.walk(m.brokers[n], b.id, e, delivered)
	}
	if matchedAny {
		b.counters.AddMatched(1)
	}
}

// Stats snapshots every broker's counters.
func (m *Mesh) Stats() []metrics.NodeStats {
	return m.collector.Snapshot()
}

// StoredFilters returns the total number of filters stored across all
// brokers (pruning effectiveness metric).
func (m *Mesh) StoredFilters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, b := range m.brokers {
		total += b.filterCount()
	}
	return total
}

// Brokers returns the broker IDs, sorted.
func (m *Mesh) Brokers() []BrokerID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]BrokerID, 0, len(m.brokers))
	for id := range m.brokers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
