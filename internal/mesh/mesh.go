// Package mesh implements the non-hierarchical broker configuration the
// paper mentions but does not develop (Section 4, footnote 1:
// "Non-hierarchical configurations can also be used, but they have a
// higher complexity"). Brokers form an acyclic peer-to-peer graph;
// subscriptions flood outward from their home broker with reverse-path
// state, and events follow the reverse paths back — the classic
// server-to-server protocol of SIENA-style systems [CRW00], which the
// paper cites as the scalable architecture class.
//
// Multi-stage weakening generalizes to distance: a subscription
// propagated h hops from its subscriber is stored in its stage-h
// weakened form (clamped to the advertisement's top stage), so remote
// brokers hold cheap, broad filters and precision increases as events
// approach the subscriber — the same gradient the hierarchy builds, on
// an arbitrary acyclic topology. Covering-based pruning suppresses
// propagation of filters already covered by what a link carries.
//
// The routing and weakening state lives in internal/peering's
// transport-agnostic Core (one per broker); this package supplies the
// in-process transport — synchronous recursion — while internal/broker
// carries the very same core state over TCP peer links.
//
// The implementation is deterministic and synchronous (like the
// simulator): Publish walks the graph in the calling goroutine. A Mesh
// is safe for concurrent use through a single mutex; throughput-oriented
// deployments should shard by class or wrap brokers in actors as
// internal/overlay does for the hierarchy — or run the networked broker
// federation, which shares this package's semantics.
package mesh

import (
	"fmt"
	"sort"
	"sync"

	"eventsys/internal/event"
	"eventsys/internal/filter"
	"eventsys/internal/metrics"
	"eventsys/internal/peering"
	"eventsys/internal/typing"
)

// BrokerID identifies a mesh broker.
type BrokerID string

// Mesh is an acyclic graph of brokers.
type Mesh struct {
	mu  sync.Mutex
	cfg peering.Config

	brokers map[BrokerID]*broker
	// parentOf implements union-find for acyclicity checking.
	parentOf  map[BrokerID]BrokerID
	collector *metrics.Collector
	seq       uint64
	delivered uint64
}

type broker struct {
	id        BrokerID
	neighbors []BrokerID
	core      *peering.Core
	counters  *metrics.Counters
}

// Config parameterizes a Mesh.
type Config struct {
	// Conformance resolves type subtyping; nil = exact names.
	Conformance filter.Conformance
	// Ads supplies advertisements for distance-based weakening; nil
	// disables weakening (full filters everywhere).
	Ads *typing.AdvertisementSet
	// MaxStage clamps the hop-distance weakening stage (defaults to the
	// advertisement stage count when Ads is set; otherwise 0 = off).
	MaxStage int
}

// New creates an empty mesh.
func New(cfg Config) *Mesh {
	conf := cfg.Conformance
	if conf == nil {
		conf = filter.ExactTypes{}
	}
	return &Mesh{
		cfg: peering.Config{
			Conformance: conf,
			Ads:         cfg.Ads,
			MaxStage:    cfg.MaxStage,
		},
		brokers:   make(map[BrokerID]*broker),
		parentOf:  make(map[BrokerID]BrokerID),
		collector: &metrics.Collector{},
	}
}

// AddBroker registers a broker.
func (m *Mesh) AddBroker(id BrokerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		return fmt.Errorf("mesh: empty broker id")
	}
	if _, dup := m.brokers[id]; dup {
		return fmt.Errorf("mesh: broker %q already exists", id)
	}
	m.brokers[id] = &broker{
		id:       id,
		core:     peering.New(m.cfg),
		counters: m.collector.Counters(string(id), 1),
	}
	m.parentOf[id] = id
	return nil
}

// find is union-find root lookup with path compression.
func (m *Mesh) find(id BrokerID) BrokerID {
	for m.parentOf[id] != id {
		m.parentOf[id] = m.parentOf[m.parentOf[id]]
		id = m.parentOf[id]
	}
	return id
}

// Connect links two brokers. Connections that would close a cycle are
// rejected: reverse-path forwarding requires an acyclic graph.
func (m *Mesh) Connect(a, b BrokerID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ba, ok := m.brokers[a]
	if !ok {
		return fmt.Errorf("mesh: unknown broker %q", a)
	}
	bb, ok := m.brokers[b]
	if !ok {
		return fmt.Errorf("mesh: unknown broker %q", b)
	}
	if a == b {
		return fmt.Errorf("mesh: cannot connect %q to itself", a)
	}
	ra, rb := m.find(a), m.find(b)
	if ra == rb {
		return fmt.Errorf("mesh: connecting %q-%q would create a cycle", a, b)
	}
	m.parentOf[ra] = rb
	ba.neighbors = append(ba.neighbors, b)
	bb.neighbors = append(bb.neighbors, a)
	ba.core.AddLink(peering.LinkID(b))
	bb.core.AddLink(peering.LinkID(a))
	return nil
}

// Subscribe attaches a subscriber with its original filter at a broker
// and floods the (progressively weakened) filter through the mesh.
func (m *Mesh) Subscribe(at BrokerID, subscriberID string, f *filter.Filter) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	home, ok := m.brokers[at]
	if !ok {
		return fmt.Errorf("mesh: unknown broker %q", at)
	}
	if f == nil {
		return fmt.Errorf("mesh: nil filter")
	}
	if home.core.HasLocal(subscriberID) {
		return fmt.Errorf("mesh: subscriber %q already attached at %q", subscriberID, at)
	}
	m.carry(home, home.core.Subscribe(subscriberID, f))
	home.counters.SetFilters(home.core.FilterCount())
	return nil
}

// carry is the in-process transport: it delivers each update to the
// neighbor's core and recurses on the onward updates the neighbor emits.
func (m *Mesh) carry(src *broker, updates []peering.Update) {
	for _, u := range updates {
		dst := m.brokers[BrokerID(u.Link)]
		onward := dst.core.Apply(peering.LinkID(src.id), u.Entry)
		dst.counters.SetFilters(dst.core.FilterCount())
		m.carry(dst, onward)
	}
}

// Publish injects an event at a broker and returns the IDs of
// subscribers it was delivered to (after perfect filtering), sorted.
func (m *Mesh) Publish(at BrokerID, e *event.Event) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	src, ok := m.brokers[at]
	if !ok {
		return nil, fmt.Errorf("mesh: unknown broker %q", at)
	}
	m.seq++
	e.ID = m.seq
	var delivered []string
	m.walk(src, "", e, &delivered)
	sort.Strings(delivered)
	m.delivered += uint64(len(delivered))
	return delivered, nil
}

// walk processes the event at broker b, having arrived from neighbor
// `from` ("" for the publishing broker), and forwards along matching
// links.
func (m *Mesh) walk(b *broker, from BrokerID, e *event.Event, delivered *[]string) {
	b.counters.AddReceived(1)
	matchedAny := false
	// Local subscribers: perfect filtering with original filters.
	for _, id := range b.core.MatchLocals(e) {
		matchedAny = true
		b.counters.AddDelivered(1)
		*delivered = append(*delivered, id)
	}
	// Reverse-path forwarding: neighbor n gets the event when any filter
	// received from n matches.
	for _, n := range b.core.MatchLinks(e, peering.LinkID(from)) {
		matchedAny = true
		b.counters.AddForwarded(1)
		m.walk(m.brokers[BrokerID(n)], b.id, e, delivered)
	}
	if matchedAny {
		b.counters.AddMatched(1)
	}
}

// Stats snapshots every broker's counters.
func (m *Mesh) Stats() []metrics.NodeStats {
	return m.collector.Snapshot()
}

// StoredFilters returns the total number of filters stored across all
// brokers (pruning effectiveness metric).
func (m *Mesh) StoredFilters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, b := range m.brokers {
		total += b.core.FilterCount()
	}
	return total
}

// PropagationStats sums every broker's subscription-propagation counters:
// entries carried over links versus entries suppressed by covering (the
// federation plane's state economy).
func (m *Mesh) PropagationStats() (propagated, suppressed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range m.brokers {
		for _, ls := range b.core.LinkStats() {
			propagated += ls.Propagated
			suppressed += ls.Suppressed
		}
	}
	return propagated, suppressed
}

// Brokers returns the broker IDs, sorted.
func (m *Mesh) Brokers() []BrokerID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]BrokerID, 0, len(m.brokers))
	for id := range m.brokers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
